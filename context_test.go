package instcmp

import (
	"context"
	"testing"
	"time"
)

// bigPair builds two related instances large enough that neither algorithm
// finishes before its first cancellation poll when the context is already
// canceled.
func bigPair() (*Instance, *Instance) {
	l, r := NewInstance(), NewInstance()
	l.AddRelation("R", "A", "B")
	r.AddRelation("R", "A", "B")
	for i := 0; i < 30; i++ {
		l.Append("R", Const(Nullf(i%9)), Null("L"+Nullf(i%9)+Nullf(i/9)))
		r.Append("R", Const(Nullf(i%9)), Null("R"+Nullf(i%9)+Nullf(i/9)))
	}
	return l, r
}

// TestCompareContextCanceled: a canceled context makes both algorithms stop
// as an anytime operation — nil error, Result.Stopped = StoppedCanceled, and
// a well-formed (partial) explanation.
func TestCompareContextCanceled(t *testing.T) {
	l, r := bigPair()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, algo := range []Algorithm{AlgoSignature, AlgoExact} {
		res, err := CompareContext(ctx, l, r, &Options{Algorithm: algo})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if res.Stopped != StoppedCanceled {
			t.Errorf("%v: Stopped = %q, want %q", algo, res.Stopped, StoppedCanceled)
		}
		if res.Score < 0 || res.Score > 1 {
			t.Errorf("%v: canceled score out of range: %v", algo, res.Score)
		}
		if res.LeftValueMapping == nil || res.RightValueMapping == nil {
			t.Errorf("%v: canceled result missing value mappings", algo)
		}
	}
}

// TestCompareContextBackgroundMatchesCompare: with a background context,
// CompareContext is exactly Compare — same score, no Stopped reason.
func TestCompareContextBackgroundMatchesCompare(t *testing.T) {
	l, r := bigPair()
	for _, algo := range []Algorithm{AlgoSignature, AlgoExact} {
		opt := &Options{Algorithm: algo, ExactMaxNodes: 50000}
		plain, err := Compare(l, r, opt)
		if err != nil {
			t.Fatal(err)
		}
		viaCtx, err := CompareContext(context.Background(), l, r, opt)
		if err != nil {
			t.Fatal(err)
		}
		if plain.Score != viaCtx.Score {
			t.Errorf("%v: CompareContext score %v != Compare score %v", algo, viaCtx.Score, plain.Score)
		}
		if viaCtx.Stopped != plain.Stopped {
			t.Errorf("%v: Stopped mismatch: %q vs %q", algo, viaCtx.Stopped, plain.Stopped)
		}
	}
}

// TestCompareContextPromptReturn: cancelling mid-comparison returns within
// the engines' bounded poll interval, not after the full (exponential)
// search.
func TestCompareContextPromptReturn(t *testing.T) {
	l, r := bigPair()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := CompareContext(ctx, l, r, &Options{Algorithm: AlgoExact})
	cancel()
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("canceled comparison ran %v", elapsed)
	}
	if res.Exhaustive {
		t.Log("note: search finished before the cancel (fast machine); no assertion")
	} else if res.Stopped != StoppedCanceled {
		t.Errorf("Stopped = %q, want %q", res.Stopped, StoppedCanceled)
	}
	if res.Stats.WarmScore >= 0 && res.Score < res.Stats.WarmScore {
		t.Errorf("canceled score %v below warm incumbent %v", res.Score, res.Stats.WarmScore)
	}
}

// TestCompareStatsPhases: the unified stats record per-phase wall time and
// match-construction counters for both algorithms.
func TestCompareStatsPhases(t *testing.T) {
	l, r := bigPair()
	for _, algo := range []Algorithm{AlgoSignature, AlgoExact} {
		opt := &Options{Algorithm: algo, ExactMaxNodes: 50000}
		res, err := Compare(l, r, opt)
		if err != nil {
			t.Fatal(err)
		}
		s := res.Stats
		if s.SearchTime <= 0 {
			t.Errorf("%v: SearchTime = %v", algo, s.SearchTime)
		}
		if s.PairAttempts == 0 {
			t.Errorf("%v: PairAttempts = 0", algo)
		}
		if s.ScoreEvals == 0 {
			t.Errorf("%v: ScoreEvals = 0", algo)
		}
		if algo == AlgoSignature && s.Nodes != 0 {
			t.Errorf("signature run reports %d exact nodes", s.Nodes)
		}
		if algo == AlgoExact && s.Nodes == 0 {
			t.Error("exact run reports 0 nodes")
		}
	}
}

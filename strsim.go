package instcmp

import "instcmp/internal/strsim"

// String-similarity metrics for Options.ConstSimilarity (the paper's
// Sec. 9 extension: give conflicting constants partial credit in partial
// matches instead of 0). All are symmetric, normalized to [0, 1], and
// return 1 exactly for equal strings.

// Levenshtein is the normalized edit-distance similarity.
func Levenshtein(a, b string) float64 { return strsim.Levenshtein(a, b) }

// JaroWinkler is the Jaro-Winkler similarity (prefix-boosted Jaro), the
// classic record-linkage metric.
func JaroWinkler(a, b string) float64 { return strsim.JaroWinkler(a, b) }

// TrigramJaccard is the Jaccard similarity of rune-trigram sets.
func TrigramJaccard(a, b string) float64 { return strsim.TrigramJaccard(a, b) }

// SimilarityThreshold wraps a metric so values below the threshold drop to
// 0, keeping vaguely similar constants from earning credit.
func SimilarityThreshold(f func(a, b string) float64, threshold float64) func(a, b string) float64 {
	return strsim.Thresholded(f, threshold)
}

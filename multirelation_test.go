package instcmp_test

// Integration tests for multi-relation comparisons, where the paper's
// formalism is most demanding: a labeled null used as a surrogate key in
// one relation and as a foreign reference in another must be interpreted
// consistently by a single pair of value mappings (Fig. 4's data-exchange
// instance).

import (
	"math"
	"testing"

	"instcmp"
)

func c(s string) instcmp.Value  { return instcmp.Const(s) }
func nu(s string) instcmp.Value { return instcmp.Null(s) }

// paperIg builds the ground instance of Fig. 3.
func paperIg() *instcmp.Instance {
	in := instcmp.NewInstance()
	in.AddRelation("Conference", "Id", "Name", "Year", "Place", "Org")
	in.AddRelation("Paper", "Authors", "Title", "ConfId")
	in.Append("Conference", c("1"), c("VLDB"), c("1975"), c("Framingham"), c("VLDB End."))
	in.Append("Conference", c("2"), c("VLDB"), c("1976"), c("Brussels"), c("VLDB End."))
	in.Append("Conference", c("3"), c("SIGMOD"), c("1975"), c("San Jose"), c("ACM"))
	in.Append("Paper", c("Zloof"), c("Query-By-Example"), c("1"))
	in.Append("Paper", c("Chen"), c("The Entity-Relationship"), c("1"))
	in.Append("Paper", c("Rappaport"), c("File Structure Design"), c("3"))
	return in
}

// paperIn builds the data-exchange instance of Fig. 4: surrogate keys N1,
// N2 spanning Conference and Paper, plus an unknown place N3.
func paperIn() *instcmp.Instance {
	in := instcmp.NewInstance()
	in.AddRelation("Conference", "Id", "Name", "Year", "Place", "Org")
	in.AddRelation("Paper", "Authors", "Title", "ConfId")
	in.Append("Conference", nu("N1"), c("VLDB"), c("1975"), nu("N3"), c("VLDB End."))
	in.Append("Conference", nu("N2"), c("VLDB"), c("1976"), c("Brussels"), c("VLDB End."))
	in.Append("Conference", c("3"), c("SIGMOD"), c("1975"), c("San Jose"), c("ACM"))
	in.Append("Paper", c("Zloof"), c("Query-By-Example"), nu("N1"))
	in.Append("Paper", c("Chen"), c("The Entity-Relationship"), nu("N1"))
	in.Append("Paper", c("Rappaport"), c("File Structure Design"), c("3"))
	return in
}

// TestFig4CrossRelationConsistency: comparing I_n against the ground I_g,
// the surrogate null N1 must map to "1" consistently across Conference and
// Paper, yielding a perfect match except for the λ-scored null cells.
func TestFig4CrossRelationConsistency(t *testing.T) {
	res, err := instcmp.Compare(paperIn(), paperIg(), &instcmp.Options{
		Mode:      instcmp.OneToOne,
		Algorithm: instcmp.AlgoSignature,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 6 {
		t.Fatalf("pairs = %d, want all 6 tuples matched", len(res.Pairs))
	}
	if got := res.LeftValueMapping[nu("N1")]; got != c("1") {
		t.Errorf("h_l(N1) = %v, want 1", got)
	}
	if got := res.LeftValueMapping[nu("N2")]; got != c("2") {
		t.Errorf("h_l(N2) = %v, want 2", got)
	}
	if got := res.LeftValueMapping[nu("N3")]; got != c("Framingham") {
		t.Errorf("h_l(N3) = %v, want Framingham", got)
	}
	// 4 null cells scored λ (N1 twice in Paper, once in Conference; N2
	// and N3 once each = 5 cells); everything else exact: check range.
	if res.Score <= 0.8 || res.Score >= 1 {
		t.Errorf("score = %v, want high but below 1", res.Score)
	}
}

// TestCrossRelationConflictBlocksMatch: if the Paper relation forces N1 to
// one conference while Conference data forces it to another, tuples cannot
// all be matched.
func TestCrossRelationConflictBlocksMatch(t *testing.T) {
	left := instcmp.NewInstance()
	left.AddRelation("Conf", "Id", "Name")
	left.AddRelation("Paper", "Title", "ConfId")
	left.Append("Conf", nu("K"), c("VLDB"))
	left.Append("Paper", c("QBE"), nu("K"))

	right := instcmp.NewInstance()
	right.AddRelation("Conf", "Id", "Name")
	right.AddRelation("Paper", "Title", "ConfId")
	right.Append("Conf", c("1"), c("VLDB"))
	right.Append("Paper", c("QBE"), c("2")) // broken foreign key

	res, err := instcmp.Compare(left, right, &instcmp.Options{
		Mode:      instcmp.OneToOne,
		Algorithm: instcmp.AlgoExact,
	})
	if err != nil {
		t.Fatal(err)
	}
	// K cannot be both 1 and 2: the optimum matches only one pair.
	if len(res.Pairs) != 1 {
		t.Errorf("pairs = %d, want 1 (cross-relation conflict)", len(res.Pairs))
	}
}

// TestIsomorphicMultiRelation: null renaming across relations preserves
// score 1.
func TestIsomorphicMultiRelation(t *testing.T) {
	in := paperIn()
	res, err := instcmp.Compare(in, in.RenameNulls("z·"), &instcmp.Options{Mode: instcmp.OneToOne})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Score-1) > 1e-9 {
		t.Errorf("isomorphic multi-relation score = %v, want 1", res.Score)
	}
	if !instcmp.IsIsomorphic(in, in.RenameNulls("z·")) {
		t.Error("IsIsomorphic disagrees")
	}
}

// TestEmptyRelationsDontBreakScoring: relations with no tuples contribute
// size 0 and must not divide by zero or block matches elsewhere.
func TestEmptyRelations(t *testing.T) {
	l := instcmp.NewInstance()
	l.AddRelation("A", "X")
	l.AddRelation("B", "Y")
	l.Append("A", c("v"))
	r := l.Clone()
	res, err := instcmp.Compare(l, r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Score-1) > 1e-9 {
		t.Errorf("score with empty relation = %v, want 1", res.Score)
	}
}

// TestHomomorphismChecksOnPaperInstances: I_n maps homomorphically into
// I_g (Fig. 4 is a universal-solution-style instance for Fig. 3) but not
// vice versa.
func TestHomomorphismChecksOnPaperInstances(t *testing.T) {
	if !instcmp.HasHomomorphism(paperIn(), paperIg()) {
		t.Error("I_n should map into I_g")
	}
	if instcmp.HasHomomorphism(paperIg(), paperIn()) {
		t.Error("ground I_g cannot map into I_n (constants 1, 2, Framingham missing)")
	}
}

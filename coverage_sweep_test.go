package instcmp_test

// Small sweep over public surface left uncovered by the behavioral tests:
// rendering helpers, the exported Normalize, and totality validation.

import (
	"strings"
	"testing"

	"instcmp"
	"instcmp/internal/cleaning"
	"instcmp/internal/match"
	"instcmp/internal/unify"
	"instcmp/internal/versioning"
)

func TestNormalizePublic(t *testing.T) {
	l := instcmp.NewInstance()
	l.AddRelation("R", "A")
	l.Append("R", instcmp.Null("N1"))
	r := instcmp.NewInstance()
	r.AddRelation("R", "A")
	r.Append("R", instcmp.Null("N1")) // same null name and same tuple id space

	nl, nr, err := instcmp.Normalize(l, r, false)
	if err != nil {
		t.Fatal(err)
	}
	for v := range nl.Vars() {
		if nr.Vars()[v] {
			t.Errorf("normalized instances share null %v", v)
		}
	}
	// Original inputs untouched.
	if !l.Vars()[instcmp.Null("N1")] || !r.Vars()[instcmp.Null("N1")] {
		t.Error("Normalize mutated its inputs")
	}

	// Schema mismatch without alignment is an error.
	bad := instcmp.NewInstance()
	bad.AddRelation("S", "B")
	if _, _, err := instcmp.Normalize(l, bad, false); err == nil {
		t.Error("schema mismatch not reported")
	}
	if _, _, err := instcmp.Normalize(l, bad, true); err != nil {
		t.Errorf("aligned normalize failed: %v", err)
	}
}

func TestCheckTotalityPositive(t *testing.T) {
	l := instcmp.NewInstance()
	l.AddRelation("R", "A")
	l.Append("R", instcmp.Const("x"))
	r := l.Clone()
	mode := match.Mode{RequireLeftTotal: true, RequireRightTotal: true}
	e, err := match.NewEnv(l, r, mode)
	if err != nil {
		t.Fatal(err)
	}
	if !e.TryAddPair(match.Pair{L: match.Ref{Rel: 0, Idx: 0}, R: match.Ref{Rel: 0, Idx: 0}}) {
		t.Fatal("pair refused")
	}
	if err := e.CheckTotality(); err != nil {
		t.Errorf("total mapping failed totality check: %v", err)
	}
}

func TestStringersAndMisc(t *testing.T) {
	if unify.Left.String() != "left" || unify.Right.String() != "right" {
		t.Error("Side.String wrong")
	}
	u := unify.New()
	if u.Registered(instcmp.Null("nope")) {
		t.Error("unregistered null reported registered")
	}
	fd := cleaning.FD{Relation: "R", Lhs: "A", Rhs: "B"}
	if got := fd.String(); !strings.Contains(got, "A -> B") {
		t.Errorf("FD.String = %q", got)
	}
	// versioning's unknown-variant error carries the variant name.
	_, err := versioning.MakeVariant(instcmp.NewInstance(), versioning.Variant("zz"), 0, 1)
	if err == nil || !strings.Contains(err.Error(), "zz") {
		t.Errorf("variant error = %v", err)
	}
}

module instcmp

go 1.22

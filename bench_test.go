package instcmp_test

// One benchmark per table and figure of the paper's evaluation (Sec. 7).
// Each bench regenerates its experiment at a bench-friendly scale and
// reports the relevant shape metrics (scores, diffs, phase splits) through
// b.ReportMetric, so `go test -bench=. -benchmem` reproduces the paper's
// story end to end. cmd/experiments runs the same code at full scale.

import (
	"fmt"
	"testing"
	"time"

	"instcmp"
	"instcmp/internal/datasets"
	"instcmp/internal/exact"
	"instcmp/internal/experiments"
	"instcmp/internal/generator"
	"instcmp/internal/match"
	"instcmp/internal/signature"
)

const benchSeed = 42

var benchCfg = experiments.Config{Seed: benchSeed}

// BenchmarkTable1Datasets measures dataset synthesis (Table 1 statistics).
func BenchmarkTable1Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable1(benchCfg, 2000); err != nil {
			b.Fatal(err)
		}
	}
}

// benchScore runs one Table 2/3 configuration per iteration and reports
// the signature score and its difference from the reference.
func benchScore(b *testing.B, name datasets.Name, rows int, noise generator.Noise, mode match.Mode) {
	b.Helper()
	base, err := datasets.Generate(name, rows, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	noise.Seed = benchSeed
	sc := generator.Make(base, noise)
	ref, err := sc.BestKnownScore(0.5, mode)
	if err != nil {
		b.Fatal(err)
	}
	var sig *signature.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sig, err = signature.Run(sc.Source, sc.Target, mode, signature.Options{Lambda: 0.5})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	diff := ref - sig.Score
	if diff < 0 {
		diff = -diff
	}
	b.ReportMetric(sig.Score, "sig-score")
	b.ReportMetric(diff, "score-diff")
	if diff > 0.01 {
		b.Errorf("score diff %v exceeds the paper's 1%% band", diff)
	}
}

// BenchmarkTable2 reproduces Table 2 (modCell 5%, 1-to-1) per dataset/size.
func BenchmarkTable2(b *testing.B) {
	for _, name := range []datasets.Name{datasets.Doct, datasets.Bike, datasets.Git} {
		for _, rows := range []int{500, 1000} {
			b.Run(fmt.Sprintf("%s/%d", name, rows), func(b *testing.B) {
				benchScore(b, name, rows, experiments.Table2Noise, match.OneToOne)
			})
		}
	}
}

// BenchmarkTable2Exact measures the exact algorithm on the Table 2 workload
// at a paper-scale size it finishes exhaustively (the branch-and-bound's
// optimistic-score pruning handles the 1-to-1 modCell workload well; the
// n-to-m powerset search of Table 3 remains budget-bound, per Thm. 5.11).
func BenchmarkTable2Exact(b *testing.B) {
	b.ReportAllocs()
	base, err := datasets.Generate(datasets.Doct, 500, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	noise := experiments.Table2Noise
	noise.Seed = benchSeed
	sc := generator.Make(base, noise)
	for i := 0; i < b.N; i++ {
		res, err := exact.Run(sc.Source, sc.Target, match.OneToOne,
			exact.Options{Lambda: 0.5, Timeout: 2 * time.Minute})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Exhaustive {
			b.Fatal("exact search did not finish at bench size")
		}
	}
}

// BenchmarkExactParallel measures the exact engine's warm-start and worker
// variants on a workload the cold engine of PR 1 cannot finish: Doct 100
// rows with Table-3-style noise (5% cells nulled, 10% random and 10%
// redundant tuples) in the general n-to-m mode. The general search's
// first descent greedily includes every consistent pair — a poor leaf —
// so a cold run burns its whole budget proving nothing, while the
// signature warm start hands the search an incumbent that meets the
// root's optimistic bound and certifies the optimum at node 1. Scores are
// identical across all variants; only wall-clock (and Exhaustive, for the
// budget-capped cold run) differs. The nowarm variant is the PR-1 engine
// (same canonical DFS, empty incumbent) under a 10-second budget;
// Exhaustive is not asserted there because it never finishes.
func BenchmarkExactParallel(b *testing.B) {
	base, err := datasets.Generate(datasets.Doct, 100, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	sc := generator.Make(base, generator.Noise{
		CellPct: 0.05, RandomPct: 0.1, RedundantPct: 0.1, Seed: benchSeed,
	})
	for _, v := range []struct {
		name       string
		opt        exact.Options
		exhaustive bool
	}{
		{"warm/workers=1", exact.Options{Lambda: 0.5, Workers: 1, Timeout: 2 * time.Minute}, true},
		{"warm/workers=4", exact.Options{Lambda: 0.5, Workers: 4, Timeout: 2 * time.Minute}, true},
		{"nowarm/workers=1", exact.Options{Lambda: 0.5, Workers: 1, NoWarmStart: true, Timeout: 10 * time.Second}, false},
	} {
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := exact.Run(sc.Source, sc.Target, match.ManyToMany, v.opt)
				if err != nil {
					b.Fatal(err)
				}
				if v.exhaustive && !res.Exhaustive {
					b.Fatal("warm-started search did not finish at bench size")
				}
			}
		})
	}
}

// BenchmarkTable3 reproduces Table 3 (addRandomAndRedundant, n-to-m).
func BenchmarkTable3(b *testing.B) {
	for _, name := range []datasets.Name{datasets.Doct, datasets.Bike, datasets.Git} {
		for _, rows := range []int{500, 1000} {
			b.Run(fmt.Sprintf("%s/%d", name, rows), func(b *testing.B) {
				benchScore(b, name, rows, experiments.Table3Noise, match.ManyToMany)
			})
		}
	}
}

// BenchmarkTable4Ablation reproduces Table 4 (phase split of the signature
// algorithm) and reports the SB-step share.
func BenchmarkTable4Ablation(b *testing.B) {
	var rows []experiments.Table4Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.RunTable4(benchCfg, 1000)
		if err != nil {
			b.Fatal(err)
		}
	}
	minSB := 100.0
	for _, r := range rows {
		if r.PctSig < minSB {
			minSB = r.PctSig
		}
	}
	b.ReportMetric(minSB, "min-%SB")
	if minSB < 90 {
		b.Errorf("signature step found only %.1f%% of matches", minSB)
	}
}

// BenchmarkTable5Cleaning reproduces Table 5 (cleaning metrics) and asserts
// the F1 ranking with high Sig scores.
func BenchmarkTable5Cleaning(b *testing.B) {
	var rows []experiments.Table5Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.RunTable5(benchCfg, 5000)
		if err != nil {
			b.Fatal(err)
		}
	}
	f1 := map[string]float64{}
	for _, r := range rows {
		f1[r.System] = r.F1
		if r.SigScore < 0.95 {
			b.Errorf("%s: sig score %v below Table 5 band", r.System, r.SigScore)
		}
	}
	b.ReportMetric(f1["Llunatic"], "f1-llunatic")
	b.ReportMetric(f1["Sampling"], "f1-sampling")
	if !(f1["Llunatic"] > f1["Sampling"]) {
		b.Error("F1 ranking collapsed")
	}
}

// BenchmarkTable6Exchange reproduces Table 6 (data exchange vs core gold).
func BenchmarkTable6Exchange(b *testing.B) {
	var rows []experiments.Table6Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.RunTable6(benchCfg, []int{400})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.Scenario {
		case "Doct-W":
			b.ReportMetric(r.SigScore, "sig-wrong")
			if r.SigScore > 0.05 || r.RowScore < 0.9 {
				b.Errorf("wrong-mapping shape broken: %+v", r)
			}
		case "Doct-U1":
			b.ReportMetric(r.SigScore, "sig-u1")
		case "Doct-U2":
			b.ReportMetric(r.SigScore, "sig-u2")
		}
	}
}

// BenchmarkTable7Versioning reproduces Table 7 (diff vs signature).
func BenchmarkTable7Versioning(b *testing.B) {
	var rows []experiments.Table7Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.RunTable7(benchCfg, 120)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Variant == "S" && (r.Sig.Matched != r.TO || r.Diff.Matched >= r.TO/2) {
			b.Errorf("%s-S shape broken: %+v", r.Dataset, r)
		}
		if r.Variant == "C" && (r.Sig.Matched != r.TO || r.Diff.Matched != 0) {
			b.Errorf("%s-C shape broken: %+v", r.Dataset, r)
		}
	}
}

// BenchmarkFigure8 reproduces Figure 8 (score diff vs C%).
func BenchmarkFigure8(b *testing.B) {
	var pts []experiments.Fig8Point
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = experiments.RunFigure8(benchCfg, 500, []float64{0.05, 0.25, 0.50})
		if err != nil {
			b.Fatal(err)
		}
	}
	worst := 0.0
	for _, p := range pts {
		if p.Diff > worst {
			worst = p.Diff
		}
	}
	b.ReportMetric(worst, "max-score-diff")
	if worst > 0.02 {
		b.Errorf("Figure 8 diff %v exceeds band", worst)
	}
}

// BenchmarkAblationNullAttrs reproduces the tech-report ablation on the
// number of null-bearing attributes.
func BenchmarkAblationNullAttrs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblationNullAttrs(benchCfg, 500); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSignatureScaling measures raw signature throughput across
// instance sizes (the scalability story of Tables 2-3's Sig T(s) column),
// sequential and with the parallel pipeline at 4 workers. The score is
// bit-identical across the workers axis; only wall-clock differs.
func BenchmarkSignatureScaling(b *testing.B) {
	for _, rows := range []int{1000, 5000, 20000} {
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("rows-%d/workers-%d", rows, workers), func(b *testing.B) {
				b.ReportAllocs()
				base, err := datasets.Generate(datasets.Doct, rows, benchSeed)
				if err != nil {
					b.Fatal(err)
				}
				noise := experiments.Table2Noise
				noise.Seed = benchSeed
				sc := generator.Make(base, noise)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := signature.Run(sc.Source, sc.Target, match.OneToOne,
						signature.Options{Lambda: 0.5, Workers: workers}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkSignatureParallel measures the parallel signature pipeline on the
// workload it targets: the Git dataset's wide 19-attribute relation, where
// per-row signature hashing, pattern scans, and completion probes dominate.
// Subbenchmarks sweep the worker count; every variant is verified to
// produce the sequential score (worker invariance is the pipeline's
// contract, see DESIGN.md §12). Speedup over workers-1 is the tentpole
// metric; on a single-CPU machine the parallel variants only add pipeline
// overhead, so interpret ratios together with the recorded GOMAXPROCS.
func BenchmarkSignatureParallel(b *testing.B) {
	base, err := datasets.Generate(datasets.Git, 2000, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	noise := experiments.Table2Noise
	noise.Seed = benchSeed
	sc := generator.Make(base, noise)
	seq, err := signature.Run(sc.Source, sc.Target, match.OneToOne, signature.Options{Lambda: 0.5, Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			var res *signature.Result
			for i := 0; i < b.N; i++ {
				res, err = signature.Run(sc.Source, sc.Target, match.OneToOne,
					signature.Options{Lambda: 0.5, Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
			}
			if res.Score != seq.Score {
				b.Fatalf("workers=%d: score %v, sequential %v", workers, res.Score, seq.Score)
			}
			if workers > 1 && res.Stats.ScanBlocks == 0 {
				b.Fatalf("workers=%d: parallel scan never engaged", workers)
			}
		})
	}
}

// BenchmarkExactVsSignatureCrossover demonstrates the complexity gap
// (Thm. 5.11) on the hard n-to-m setting: the exact powerset search grows
// superpolynomially with instance size (budget-capped runs report as
// skipped) while the signature algorithm stays near-linear.
func BenchmarkExactVsSignatureCrossover(b *testing.B) {
	for _, rows := range []int{10, 20, 40} {
		base, err := datasets.Generate(datasets.Doct, rows, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		noise := experiments.Table3Noise
		noise.Seed = benchSeed
		sc := generator.Make(base, noise)
		b.Run(fmt.Sprintf("exact/rows-%d", rows), func(b *testing.B) {
			var nodes int64
			exhausted := true
			for i := 0; i < b.N; i++ {
				res, err := exact.Run(sc.Source, sc.Target, match.ManyToMany,
					exact.Options{Lambda: 0.5, Timeout: 20 * time.Second})
				if err != nil {
					b.Fatal(err)
				}
				nodes, exhausted = res.Nodes, res.Exhaustive
			}
			b.ReportMetric(float64(nodes), "nodes")
			if !exhausted {
				b.Logf("rows-%d: budget hit after %d nodes (the exponential wall)", rows, nodes)
			}
		})
		b.Run(fmt.Sprintf("signature/rows-%d", rows), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := signature.Run(sc.Source, sc.Target, match.ManyToMany,
					signature.Options{Lambda: 0.5}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSignatureDesignAblations measures the cost/benefit of the
// implementation's refinements over the paper's literal greedy (DESIGN.md
// calls these out): the sub-signature rescue round, the perfect-first
// round, and the net-gain guard.
func BenchmarkSignatureDesignAblations(b *testing.B) {
	base, err := datasets.Generate(datasets.Git, 1000, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	noise := experiments.Table3Noise
	noise.Seed = benchSeed
	sc := generator.Make(base, noise)
	variants := []struct {
		name string
		opt  signature.Options
	}{
		{"full", signature.Options{Lambda: 0.5}},
		{"no-rescue", signature.Options{Lambda: 0.5, DisableRescue: true}},
		{"single-round", signature.Options{Lambda: 0.5, SingleRound: true}},
		{"no-gain-guard", signature.Options{Lambda: 0.5, NoGainGuard: true}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var res *signature.Result
			for i := 0; i < b.N; i++ {
				res, err = signature.Run(sc.Source, sc.Target, match.ManyToMany, v.opt)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Score, "sig-score")
			pctSB := 100 * float64(res.Stats.SigMatches) /
				float64(res.Stats.SigMatches+res.Stats.CompatMatches)
			b.ReportMetric(pctSB, "%SB")
		})
	}
}

// BenchmarkPreparedCompare measures the Prepare/Compare split against the
// one-shot path on the same pair: "oneshot" pays normalization and coding
// every call, "prepared" pays them once outside the loop — the shape of a
// resident registry serving repeated comparisons.
func BenchmarkPreparedCompare(b *testing.B) {
	base, err := datasets.Generate(datasets.Bike, 2000, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	noise := experiments.Table2Noise
	noise.Seed = benchSeed
	sc := generator.Make(base, noise)
	opt := &instcmp.Options{Mode: instcmp.OneToOne, Algorithm: instcmp.AlgoSignature}
	b.Run("oneshot", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := instcmp.Compare(sc.Source, sc.Target, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("prepared", func(b *testing.B) {
		b.ReportAllocs()
		lp, err := instcmp.Prepare(sc.Source)
		if err != nil {
			b.Fatal(err)
		}
		rp, err := instcmp.Prepare(sc.Target)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := instcmp.ComparePrepared(lp, rp, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCompareAPI measures the public API end to end, normalization
// included.
func BenchmarkCompareAPI(b *testing.B) {
	b.ReportAllocs()
	base, err := datasets.Generate(datasets.Bike, 2000, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	noise := experiments.Table2Noise
	noise.Seed = benchSeed
	sc := generator.Make(base, noise)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := instcmp.Compare(sc.Source, sc.Target, &instcmp.Options{
			Mode:      instcmp.OneToOne,
			Algorithm: instcmp.AlgoSignature,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

package instcmp_test

import (
	"os"
	"path/filepath"
	"testing"

	"instcmp"
)

// TestCSVRoundTripThroughPublicAPI drives the CSV entry points end to end:
// save an instance with nulls, reload it, and compare against the original.
func TestCSVRoundTripThroughPublicAPI(t *testing.T) {
	in := instcmp.NewInstance()
	in.AddRelation("Conf", "Name", "Year")
	in.AddRelation("Paper", "Title", "ConfId")
	in.Append("Conf", instcmp.Const("VLDB"), instcmp.Null("N1"))
	in.Append("Paper", instcmp.Const("QBE"), instcmp.Null("N1"))

	dir := t.TempDir()
	if err := instcmp.SaveCSVDir(dir, in); err != nil {
		t.Fatal(err)
	}
	back, err := instcmp.LoadCSVDir(dir, instcmp.CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !instcmp.IsIsomorphic(in, back) {
		t.Fatalf("round trip lost information:\n%s\nvs\n%s", in, back)
	}
	s, err := instcmp.Similarity(in, back)
	if err != nil {
		t.Fatal(err)
	}
	if s != 1 {
		t.Errorf("similarity after round trip = %v, want 1", s)
	}
}

func TestLoadCSVSingleFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "conf.csv")
	if err := os.WriteFile(path, []byte("Name,Org\nVLDB,_:N1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	in, err := instcmp.LoadCSV(path, instcmp.CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rel := in.Relation("conf")
	if rel == nil || rel.Cardinality() != 1 {
		t.Fatalf("loaded instance wrong: %s", in)
	}
	if rel.Tuples[0].Values[1] != instcmp.Null("N1") {
		t.Error("null marker lost")
	}
	if _, err := instcmp.LoadCSV(filepath.Join(t.TempDir(), "missing.csv"), instcmp.CSVOptions{}); err == nil {
		t.Error("missing file not reported")
	}
}

func TestAlgorithmString(t *testing.T) {
	for a, want := range map[instcmp.Algorithm]string{
		instcmp.AlgoAuto:      "auto",
		instcmp.AlgoSignature: "signature",
		instcmp.AlgoExact:     "exact",
	} {
		if got := a.String(); got != want {
			t.Errorf("Algorithm(%d).String() = %q, want %q", a, got, want)
		}
	}
}

func TestCompareUnknownAlgorithm(t *testing.T) {
	l := instcmp.NewInstance()
	l.AddRelation("R", "A")
	if _, err := instcmp.Compare(l, l.Clone(), &instcmp.Options{Algorithm: instcmp.Algorithm(99)}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestCompareNilInstances(t *testing.T) {
	l := instcmp.NewInstance()
	l.AddRelation("R", "A")
	if _, err := instcmp.Compare(nil, l, nil); err == nil {
		t.Error("nil left accepted")
	}
	if _, err := instcmp.Compare(l, nil, nil); err == nil {
		t.Error("nil right accepted")
	}
}

package instcmp_test

import (
	"math"
	"testing"

	"instcmp"
)

func people(rows ...[3]string) *instcmp.Instance {
	in := instcmp.NewInstance()
	in.AddRelation("P", "Name", "Dept", "City")
	for _, r := range rows {
		vals := make([]instcmp.Value, 3)
		for i, s := range r {
			vals[i] = instcmp.Const(s)
		}
		in.Append("P", vals...)
	}
	return in
}

// TestPartialWithStringSimilarity: a typo'd constant earns its Levenshtein
// similarity under partial matching with ConstSimilarity, scores 0 without.
func TestPartialWithStringSimilarity(t *testing.T) {
	l := people([3]string{"alice", "sales", "Boston"})
	r := people([3]string{"alice", "sales", "Bostom"}) // one-letter typo

	strict, err := instcmp.Compare(l, r, &instcmp.Options{Mode: instcmp.OneToOne})
	if err != nil {
		t.Fatal(err)
	}
	if strict.Score != 0 {
		t.Fatalf("complete-match score = %v, want 0", strict.Score)
	}

	partial, err := instcmp.Compare(l, r, &instcmp.Options{
		Mode:          instcmp.OneToOne,
		Algorithm:     instcmp.AlgoSignature,
		Partial:       true,
		MinPartialSig: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := (2.0 + 2.0) / 6; math.Abs(partial.Score-want) > 1e-9 {
		t.Fatalf("partial score = %v, want %v", partial.Score, want)
	}

	fuzzy, err := instcmp.Compare(l, r, &instcmp.Options{
		Mode:            instcmp.OneToOne,
		Algorithm:       instcmp.AlgoSignature,
		Partial:         true,
		MinPartialSig:   2,
		ConstSimilarity: instcmp.Levenshtein,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim := instcmp.Levenshtein("Boston", "Bostom") // 5/6
	want := (2 + sim + 2 + sim) / 6
	if math.Abs(fuzzy.Score-want) > 1e-9 {
		t.Fatalf("fuzzy score = %v, want %v", fuzzy.Score, want)
	}
	if !(fuzzy.Score > partial.Score) {
		t.Error("string similarity should raise the partial score")
	}
}

// TestPartialThresholdKeepsJunkOut: thresholding zeroes weak similarities.
func TestPartialThresholdKeepsJunkOut(t *testing.T) {
	// Boston vs Bosnia: Levenshtein similarity 0.5 — real but below a
	// strict 0.8 threshold.
	l := people([3]string{"alice", "sales", "Boston"})
	r := people([3]string{"alice", "sales", "Bosnia"})
	opts := func(f func(a, b string) float64) *instcmp.Options {
		return &instcmp.Options{
			Mode: instcmp.OneToOne, Algorithm: instcmp.AlgoSignature,
			Partial: true, MinPartialSig: 2, ConstSimilarity: f,
		}
	}
	raw, err := instcmp.Compare(l, r, opts(instcmp.Levenshtein))
	if err != nil {
		t.Fatal(err)
	}
	thr, err := instcmp.Compare(l, r, opts(instcmp.SimilarityThreshold(instcmp.Levenshtein, 0.8)))
	if err != nil {
		t.Fatal(err)
	}
	if !(thr.Score < raw.Score) {
		t.Errorf("threshold did not reduce junk credit: %v vs %v", thr.Score, raw.Score)
	}
	if want := 4.0 / 6; math.Abs(thr.Score-want) > 1e-9 {
		t.Errorf("thresholded score = %v, want %v", thr.Score, want)
	}
}

// TestPartialMatchExplanation: partial pairs still appear in the result's
// mapping so the conflicting tuples can be inspected.
func TestPartialMatchExplanation(t *testing.T) {
	l := people(
		[3]string{"alice", "sales", "Boston"},
		[3]string{"bob", "hr", "Berlin"},
	)
	r := people(
		[3]string{"alice", "sales", "Bostom"},
		[3]string{"carol", "it", "Madrid"},
	)
	res, err := instcmp.Compare(l, r, &instcmp.Options{
		Mode: instcmp.OneToOne, Algorithm: instcmp.AlgoSignature,
		Partial: true, MinPartialSig: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 1 {
		t.Fatalf("pairs = %v, want the alice pair only", res.Pairs)
	}
	if len(res.LeftUnmatched) != 1 || len(res.RightUnmatched) != 1 {
		t.Errorf("unmatched = %v / %v", res.LeftUnmatched, res.RightUnmatched)
	}
}

// TestExportedMetricsSane spot-checks the re-exported metrics.
func TestExportedMetricsSane(t *testing.T) {
	if instcmp.Levenshtein("a", "a") != 1 || instcmp.JaroWinkler("a", "a") != 1 || instcmp.TrigramJaccard("a", "a") != 1 {
		t.Error("identity similarity must be 1")
	}
	if instcmp.Levenshtein("abc", "xyz") != 0 {
		t.Error("disjoint Levenshtein must be 0")
	}
}

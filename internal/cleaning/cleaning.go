// Package cleaning is the data-repair substrate of the paper's Table 5
// experiment: functional dependencies, BART-style error injection, four
// repair strategies modeled after the systems the paper evaluates
// (Holistic, HoloClean, Llunatic, Sampling), and the three quality metrics
// the table compares (F1 on error cells, F1 over the whole instance, and
// the signature similarity score).
//
// The original systems are external; the strategies here are simplified
// stand-ins that produce the same kinds of outputs — correct constants,
// wrong constants, and labeled nulls marking unresolved conflicts — which
// is what the metric comparison exercises. See DESIGN.md ("Substitutions").
package cleaning

import (
	"fmt"
	"math/rand"
	"sort"

	"instcmp/internal/model"
)

// FD is a unary functional dependency Lhs -> Rhs within one relation.
type FD struct {
	Relation string
	Lhs, Rhs string
}

func (f FD) String() string { return fmt.Sprintf("%s: %s -> %s", f.Relation, f.Lhs, f.Rhs) }

// Violation is one violating group: tuples agreeing on the LHS value but
// holding more than one distinct constant on the RHS.
type Violation struct {
	FD       FD
	LhsValue model.Value
	// Rows are the positions (within the relation) of the group.
	Rows []int
	// Values are the distinct RHS constants with their frequencies.
	Values map[model.Value]int
}

// FindViolations returns all violating groups of the given FDs, in
// deterministic order.
func FindViolations(in *model.Instance, fds []FD) []Violation {
	var out []Violation
	for _, fd := range fds {
		rel := in.Relation(fd.Relation)
		if rel == nil {
			continue
		}
		li, ri := rel.AttrIndex(fd.Lhs), rel.AttrIndex(fd.Rhs)
		if li < 0 || ri < 0 {
			continue
		}
		groups := map[model.Value][]int{}
		for ti := range rel.Tuples {
			l := rel.Tuples[ti].Values[li]
			if l.IsNull() {
				continue // nulls on the LHS constrain nothing here
			}
			groups[l] = append(groups[l], ti)
		}
		keys := make([]model.Value, 0, len(groups))
		for k := range groups {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i].Raw() < keys[j].Raw() })
		for _, l := range keys {
			rows := groups[l]
			vals := map[model.Value]int{}
			for _, ti := range rows {
				if v := rel.Tuples[ti].Values[ri]; v.IsConst() {
					vals[v]++
				}
			}
			if len(vals) > 1 {
				out = append(out, Violation{FD: fd, LhsValue: l, Rows: rows, Values: vals})
			}
		}
	}
	return out
}

// InjectErrors returns a dirty copy of a clean instance: for each FD, rate
// fraction of the RHS cells are overwritten with a wrong constant (BART-
// style random typos within/outside the attribute domain). The returned
// cell set records every corrupted cell for F1 computation.
func InjectErrors(clean *model.Instance, fds []FD, rate float64, seed int64) (*model.Instance, map[Cell]bool) {
	rng := rand.New(rand.NewSource(seed))
	dirty := clean.Clone()
	errs := map[Cell]bool{}
	for _, fd := range fds {
		rel := dirty.Relation(fd.Relation)
		if rel == nil {
			continue
		}
		ri := rel.AttrIndex(fd.Rhs)
		if ri < 0 {
			continue
		}
		// Collect the attribute's domain to draw plausible wrong values.
		var domain []model.Value
		seen := map[model.Value]bool{}
		for ti := range rel.Tuples {
			if v := rel.Tuples[ti].Values[ri]; v.IsConst() && !seen[v] {
				seen[v] = true
				domain = append(domain, v)
			}
		}
		for ti := range rel.Tuples {
			if rng.Float64() >= rate {
				continue
			}
			orig := rel.Tuples[ti].Values[ri]
			wrong := orig
			for attempts := 0; wrong == orig && attempts < 20; attempts++ {
				if len(domain) > 1 && rng.Intn(4) > 0 {
					wrong = domain[rng.Intn(len(domain))]
				} else {
					wrong = model.Constf("typo_%d", rng.Intn(1<<30))
				}
			}
			if wrong == orig {
				continue
			}
			rel.Tuples[ti].Values[ri] = wrong
			errs[Cell{fd.Relation, ti, ri}] = true
		}
	}
	return dirty, errs
}

// Cell addresses one cell of an instance by relation name, tuple position,
// and attribute position.
type Cell struct {
	Relation string
	Row, Col int
}

// System names a repair strategy.
type System string

// The four repair strategies of Table 5, modeled after the cited systems.
const (
	// Holistic repairs each violating group to its most frequent value
	// and falls back to a labeled null on ties (Chu et al., ICDE 2013).
	Holistic System = "Holistic"
	// HoloClean repairs probabilistically: values are sampled with
	// probability proportional to their squared frequency, approximating
	// probabilistic inference (Rekatsinas et al., PVLDB 2017).
	HoloClean System = "HoloClean"
	// Llunatic repairs to the dominant value when the group's partial
	// order determines it and otherwise marks the conflict with a
	// labeled null for user resolution (Geerts et al., VLDBJ 2020).
	Llunatic System = "Llunatic"
	// Sampling draws a uniform sample from the space of violation-free
	// repairs: any value of the group may win (Beskales et al., PVLDB
	// 2010).
	Sampling System = "Sampling"
)

// Systems lists the strategies in Table 5 order.
var Systems = []System{Holistic, HoloClean, Llunatic, Sampling}

// Repair runs the named strategy on a dirty instance and returns the
// repaired copy. Strategies repair every violating group of every FD; the
// group's cells all receive the chosen value (or one fresh labeled null per
// group).
func Repair(dirty *model.Instance, fds []FD, sys System, seed int64) (*model.Instance, error) {
	switch sys {
	case Holistic, HoloClean, Llunatic, Sampling:
	default:
		return nil, fmt.Errorf("cleaning: unknown system %q", sys)
	}
	rng := rand.New(rand.NewSource(seed))
	out := dirty.Clone()
	for _, v := range FindViolations(out, fds) {
		rel := out.Relation(v.FD.Relation)
		ri := rel.AttrIndex(v.FD.Rhs)
		top, second, total := topValues(v.Values)

		// Each strategy chooses a winning constant for the group, or
		// no winner (conflict marked with labeled nulls). Repairs are
		// cell-minimal, as in the modeled systems: with a winning
		// constant, only cells holding other values change; without
		// one, only the cells dissenting from the most frequent value
		// are replaced by fresh nulls (a constant beside a null is
		// not a violation).
		var winner model.Value
		haveWinner := true
		switch sys {
		case Holistic:
			// The MCF heuristic commits to the most frequent
			// value only when it clearly dominates the conflict
			// hypergraph; otherwise it leaves variables for user
			// intervention.
			if v.Values[top] > v.Values[second] && float64(v.Values[top]) >= 0.88*float64(total) {
				winner = top
			} else {
				haveWinner = false
			}
		case HoloClean:
			// Probabilistic inference: the majority value wins
			// with probability proportional to its observed
			// frequency; otherwise the suspect cells keep low
			// posterior mass on every candidate and are marked
			// uncertain. Cells already holding the majority value
			// are never touched (their posterior is dominated by
			// the observation).
			if weightedDraw(rng, v.Values, 1) == top {
				winner = top
			} else {
				haveWinner = false
			}
		case Llunatic:
			// The partial order determines the value when one
			// candidate strictly dominates (strict majority);
			// otherwise lluns (labeled nulls) mark the conflict.
			if 2*v.Values[top] > total && v.Values[top] > v.Values[second] {
				winner = top
			} else {
				haveWinner = false
			}
		case Sampling:
			// A uniform sample from the space of V-instance
			// repairs: any candidate value may win; when a
			// minority value is drawn, the sampled V-instance
			// keeps the majority cells and turns the rest into
			// variables.
			drawn := weightedDraw(rng, v.Values, 0)
			if drawn == top {
				winner = top
			} else {
				haveWinner = false
			}
		}
		for _, ti := range v.Rows {
			cur := rel.Tuples[ti].Values[ri]
			if cur.IsNull() {
				continue
			}
			switch {
			case haveWinner && cur != winner:
				rel.Tuples[ti].Values[ri] = winner
			case !haveWinner && cur != top:
				rel.Tuples[ti].Values[ri] = out.FreshNull(string(sys[0]))
			}
		}
	}
	return out, nil
}

// topValues returns the most and second-most frequent values (ties broken
// by value for determinism) and the total count.
func topValues(values map[model.Value]int) (top, second model.Value, total int) {
	keys := make([]model.Value, 0, len(values))
	for v, c := range values {
		keys = append(keys, v)
		total += c
	}
	sort.Slice(keys, func(i, j int) bool {
		if values[keys[i]] != values[keys[j]] {
			return values[keys[i]] > values[keys[j]]
		}
		return keys[i].Raw() < keys[j].Raw()
	})
	top = keys[0]
	if len(keys) > 1 {
		second = keys[1]
	}
	return top, second, total
}

// weightedDraw samples a value with probability proportional to
// frequency^power (power 0: uniform over distinct candidate values;
// power 1: proportional to observed frequency).
func weightedDraw(rng *rand.Rand, values map[model.Value]int, power int) model.Value {
	keys := make([]model.Value, 0, len(values))
	for v := range values {
		keys = append(keys, v)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Raw() < keys[j].Raw() })
	weights := make([]float64, len(keys))
	var sum float64
	for i, v := range keys {
		w := 1.0
		for p := 0; p < power; p++ {
			w *= float64(values[v])
		}
		weights[i] = w
		sum += w
	}
	x := rng.Float64() * sum
	for i, w := range weights {
		x -= w
		if x <= 0 {
			return keys[i]
		}
	}
	return keys[len(keys)-1]
}

// Metrics are the three quality measures of Table 5.
type Metrics struct {
	// F1 is the standard data-cleaning F-measure restricted to cells
	// that are erroneous in the dirty instance: precision over changed
	// cells, recall over error cells. A labeled null never equals the
	// gold constant, so nulls count as wrong (the problem Table 5
	// demonstrates).
	F1 float64
	// F1Inst is the F-measure over every cell of the instance against
	// the gold (the fraction of cells equal to gold, as precision =
	// recall here).
	F1Inst float64
}

// Evaluate computes F1 and F1-Instance of a repaired instance against the
// clean gold, given the dirty instance and the injected error cells.
func Evaluate(gold, dirty, repaired *model.Instance, errs map[Cell]bool) Metrics {
	var changedCorrect, changed, errorsFixed float64
	var cellsEqual, cells float64
	for _, rel := range gold.Relations() {
		drel := dirty.Relation(rel.Name)
		rrel := repaired.Relation(rel.Name)
		for ti := range rel.Tuples {
			for vi := range rel.Tuples[ti].Values {
				g := rel.Tuples[ti].Values[vi]
				d := drel.Tuples[ti].Values[vi]
				r := rrel.Tuples[ti].Values[vi]
				cells++
				if r == g {
					cellsEqual++
				}
				if r != d { // the system changed this cell
					changed++
					if r == g {
						changedCorrect++
					}
				}
				if errs[Cell{rel.Name, ti, vi}] && r == g {
					errorsFixed++
				}
			}
		}
	}
	var m Metrics
	nerr := float64(len(errs))
	if changed > 0 && nerr > 0 {
		p := changedCorrect / changed
		r := errorsFixed / nerr
		if p+r > 0 {
			m.F1 = 2 * p * r / (p + r)
		}
	}
	if cells > 0 {
		m.F1Inst = cellsEqual / cells
	}
	return m
}

package cleaning

import (
	"math/rand"
	"testing"

	"instcmp/internal/datasets"
	"instcmp/internal/model"
)

func busFDList() []FD {
	var fds []FD
	for _, fd := range datasets.BusFDs() {
		fds = append(fds, FD{Relation: "Bus", Lhs: fd[0], Rhs: fd[1]})
	}
	return fds
}

func TestFindViolationsCleanData(t *testing.T) {
	clean := datasets.BusData(1000, rand.New(rand.NewSource(1)))
	if v := FindViolations(clean, busFDList()); len(v) != 0 {
		t.Fatalf("clean data has %d violations", len(v))
	}
}

func TestInjectErrorsCreatesViolations(t *testing.T) {
	clean := datasets.BusData(1000, rand.New(rand.NewSource(1)))
	dirty, errs := InjectErrors(clean, busFDList(), 0.05, 2)
	if len(errs) == 0 {
		t.Fatal("no errors injected")
	}
	if len(FindViolations(dirty, busFDList())) == 0 {
		t.Fatal("errors created no violations")
	}
	// The clean instance must be untouched.
	if len(FindViolations(clean, busFDList())) != 0 {
		t.Fatal("InjectErrors mutated the clean instance")
	}
	// Every recorded error cell really differs from the gold.
	for cell := range errs {
		g := clean.Relation(cell.Relation).Tuples[cell.Row].Values[cell.Col]
		d := dirty.Relation(cell.Relation).Tuples[cell.Row].Values[cell.Col]
		if g == d {
			t.Fatalf("cell %v recorded as error but unchanged", cell)
		}
	}
}

func TestRepairRemovesConstantConflicts(t *testing.T) {
	clean := datasets.BusData(2000, rand.New(rand.NewSource(3)))
	dirty, _ := InjectErrors(clean, busFDList(), 0.05, 4)
	for _, sys := range Systems {
		rep, err := Repair(dirty, busFDList(), sys, 5)
		if err != nil {
			t.Fatal(err)
		}
		// After repair no group may hold two distinct constants
		// (groups repaired to a labeled null are conflict-free too).
		if v := FindViolations(rep, busFDList()); len(v) != 0 {
			t.Errorf("%s left %d violations", sys, len(v))
		}
	}
}

func TestRepairUnknownSystem(t *testing.T) {
	clean := datasets.BusData(100, rand.New(rand.NewSource(3)))
	if _, err := Repair(clean, busFDList(), System("nope"), 1); err == nil {
		t.Error("unknown system accepted")
	}
}

func TestEvaluatePerfectRepair(t *testing.T) {
	clean := datasets.BusData(1000, rand.New(rand.NewSource(5)))
	dirty, errs := InjectErrors(clean, busFDList(), 0.05, 6)
	m := Evaluate(clean, dirty, clean, errs) // "repair" = the gold itself
	if m.F1 < 0.999 || m.F1Inst < 0.999 {
		t.Errorf("perfect repair scored F1=%v F1Inst=%v", m.F1, m.F1Inst)
	}
	none := Evaluate(clean, dirty, dirty, errs) // no repair at all
	if none.F1 != 0 {
		t.Errorf("no-op repair F1 = %v, want 0", none.F1)
	}
	if none.F1Inst >= 1 || none.F1Inst < 0.9 {
		t.Errorf("no-op F1Inst = %v, want slightly below 1", none.F1Inst)
	}
}

func TestTable5Shape(t *testing.T) {
	// The core claim behind Table 5: F1 separates the systems sharply
	// (nulls and wrong constants count as failures), while F1-Inst stays
	// near 1 for all of them.
	clean := datasets.BusData(4000, rand.New(rand.NewSource(7)))
	dirty, errs := InjectErrors(clean, busFDList(), 0.05, 8)
	f1 := map[System]float64{}
	for _, sys := range Systems {
		rep, err := Repair(dirty, busFDList(), sys, 9)
		if err != nil {
			t.Fatal(err)
		}
		m := Evaluate(clean, dirty, rep, errs)
		f1[sys] = m.F1
		if m.F1Inst < 0.98 {
			t.Errorf("%s: F1Inst = %v, want >= 0.98", sys, m.F1Inst)
		}
	}
	if !(f1[Llunatic] > f1[HoloClean] && f1[Llunatic] > f1[Holistic]) {
		t.Errorf("Llunatic should lead: %v", f1)
	}
	if !(f1[Sampling] < f1[Holistic] && f1[Sampling] < f1[HoloClean]) {
		t.Errorf("Sampling should trail: %v", f1)
	}
	if f1[Llunatic] < 0.9 {
		t.Errorf("Llunatic F1 = %v, want >= 0.9", f1[Llunatic])
	}
	if f1[Sampling] > 0.7 {
		t.Errorf("Sampling F1 = %v, want <= 0.7", f1[Sampling])
	}
}

func TestFindViolationsIgnoresNulls(t *testing.T) {
	in := model.NewInstance()
	in.AddRelation("R", "K", "V")
	in.Append("R", model.Const("k1"), model.Const("a"))
	in.Append("R", model.Const("k1"), model.Null("N1")) // null RHS: no conflict
	in.Append("R", model.Null("N2"), model.Const("b"))  // null LHS: skipped
	fds := []FD{{Relation: "R", Lhs: "K", Rhs: "V"}}
	if v := FindViolations(in, fds); len(v) != 0 {
		t.Errorf("violations with nulls = %v, want none", v)
	}
}

// Package linttest runs an analyzer over a fixture directory and checks its
// findings against expectation comments, in the style of
// golang.org/x/tools/go/analysis/analysistest: a line that should be
// flagged carries a comment
//
//	// want "regexp"
//
// and the test fails on any finding without a matching want, or any want
// without a matching finding. Clean fixtures simply carry no want comments,
// so every fixture package doubles as a failing and a passing case.
package linttest

import (
	"fmt"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"instcmp/internal/lint"
	"instcmp/internal/lint/load"
)

// expectation is one parsed want comment.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

const wantMarker = "// want "

// parseWants extracts the want expectations of the fixture's files.
func parseWants(pass *lint.Pass) ([]*expectation, error) {
	var out []*expectation
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, wantMarker) {
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				for _, q := range splitQuoted(strings.TrimPrefix(text, wantMarker)) {
					s, err := strconv.Unquote(q)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(s)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want pattern %q: %v", pos, s, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return out, nil
}

// splitQuoted splits `"a" "b"` into its quoted tokens.
func splitQuoted(s string) []string {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if !strings.HasPrefix(s, `"`) {
			return out
		}
		end := 1
		for end < len(s) && s[end] != '"' {
			if s[end] == '\\' {
				end++
			}
			end++
		}
		if end >= len(s) {
			return out
		}
		out = append(out, s[:end+1])
		s = s[end+1:]
	}
}

// Run loads the fixture directory, runs the analyzer (with the standard
// suppression-directive handling), and verifies the findings against the
// fixture's want comments.
func Run(t *testing.T, fixtureDir string, a *lint.Analyzer) {
	t.Helper()
	pass, err := load.Dir(fixtureDir)
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	wants, err := parseWants(pass)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Analyze(pass, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	for _, d := range diags {
		pos := pass.Fset.Position(d.Pos)
		if !matchWant(wants, pos, d.Message) {
			t.Errorf("%s: unexpected finding [%s]: %s", pos, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

func matchWant(wants []*expectation, pos token.Position, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.pattern.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// Package wgdiscipline enforces worker-pool hygiene module-wide
// (DESIGN.md §16). Every parallel stage in the engine — the exact search's
// subtree pool, the signature produce/commit scheduler, parallel scoring,
// lake fan-out, the serve worker pool — follows the same shape: Add before
// go, one Wait on every path out, close only what no worker still writes,
// and never share a mutable loop variable with a goroutine. Each rule
// guards a failure mode the race detector only sees on lucky schedules:
//
//   - WaitGroup.Add inside the spawned goroutine races the Wait: the main
//     goroutine can reach Wait before the worker ran Add and return while
//     work is still in flight.
//   - An Add with no Wait (or a return path that skips the Wait) leaks
//     goroutines past the function's lifetime — with the engine's
//     env-clone workers, that is a use-after-return of shared scratch.
//   - close(ch) while spawned workers still send on ch is a panic on a
//     schedule where a worker loses the race.
//   - A goroutine capturing a variable that the enclosing loop reassigns
//     reads whatever iteration the scheduler lands on (loop-DECLARED
//     variables are per-iteration since go1.22 and are fine; flagged is
//     the var declared before the loop and written inside it).
package wgdiscipline

import (
	"go/ast"
	"go/token"
	"go/types"

	"instcmp/internal/lint"
	"instcmp/internal/lint/flow"
)

// Analyzer is the wgdiscipline invariant checker.
var Analyzer = &lint.Analyzer{
	Name: "wgdiscipline",
	Doc: "worker-pool hygiene: Add before go, Wait on all return paths, no close " +
		"of channels workers still write, no shared loop variables in go closures",
	Run: run,
}

func run(pass *lint.Pass) ([]lint.Diagnostic, error) {
	var diags []lint.Diagnostic
	flow.EachBody(pass, func(b flow.Body) {
		diags = append(diags, checkAddPlacement(pass, b)...)
		diags = append(diags, checkWaitCoverage(pass, b)...)
		diags = append(diags, checkCloseRaces(pass, b)...)
		diags = append(diags, checkLoopCapture(pass, b)...)
	})
	return diags, nil
}

// wgCall resolves a call to Add/Done/Wait on a sync.WaitGroup value and
// returns the waitgroup variable, or nil.
func wgCall(pass *lint.Pass, call *ast.CallExpr, method string) *types.Var {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return nil
	}
	v := flow.RootVar(pass, sel.X)
	if v == nil || !flow.IsNamed(pass.TypeOf(sel.X), "sync", "WaitGroup") {
		return nil
	}
	return v
}

// checkAddPlacement flags wg.Add called inside a go-spawned function
// literal on a waitgroup declared outside it: the spawning side can reach
// Wait before the goroutine was scheduled, so the Add must happen before
// the go statement.
func checkAddPlacement(pass *lint.Pass, b flow.Body) []lint.Diagnostic {
	var diags []lint.Diagnostic
	for _, lit := range flow.GoLits(b.Body) {
		flow.WalkSkipLits(lit.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			wg := wgCall(pass, call, "Add")
			if wg == nil || flow.Within(wg.Pos(), lit) {
				return true
			}
			diags = append(diags, lint.Diagnostic{
				Pos: call.Pos(),
				Message: "WaitGroup.Add inside the spawned goroutine races Wait; " +
					"Add before the go statement",
			})
			return true
		})
	}
	return diags
}

// checkWaitCoverage flags waitgroups that are Added but never Waited, and
// return paths positioned after an Add with no Wait in between (a deferred
// Wait covers every path).
func checkWaitCoverage(pass *lint.Pass, b flow.Body) []lint.Diagnostic {
	// Track waitgroups declared in this body: fields and parameters have a
	// lifecycle the function alone cannot prove anything about.
	type usage struct {
		adds, waits []token.Pos
		deferred    bool
		name        string
	}
	track := map[*types.Var]*usage{}
	flow.WalkSkipLits(b.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if wg := wgCall(pass, call, "Add"); wg != nil && flow.Within(wg.Pos(), b.Body) {
			u := track[wg]
			if u == nil {
				u = &usage{name: wg.Name()}
				track[wg] = u
			}
			u.adds = append(u.adds, call.Pos())
		}
		return true
	})
	if len(track) == 0 {
		return nil
	}
	// Waits count wherever they appear — main body, deferred closure, or a
	// fan-in goroutine (the close-race rule audits those separately).
	ast.Inspect(b.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(inner ast.Node) bool {
					if call, ok := inner.(*ast.CallExpr); ok {
						if wg := wgCall(pass, call, "Wait"); wg != nil && track[wg] != nil {
							track[wg].deferred = true
						}
					}
					return true
				})
			}
			if wg := wgCall(pass, n.Call, "Wait"); wg != nil && track[wg] != nil {
				track[wg].deferred = true
			}
		case *ast.CallExpr:
			if wg := wgCall(pass, n, "Wait"); wg != nil && track[wg] != nil {
				track[wg].waits = append(track[wg].waits, n.Pos())
			}
		}
		return true
	})
	var diags []lint.Diagnostic
	for _, u := range track {
		if len(u.waits) == 0 && !u.deferred {
			diags = append(diags, lint.Diagnostic{
				Pos: u.adds[0],
				Message: "WaitGroup " + u.name + " is Added but never Waited; " +
					"spawned goroutines outlive the function",
			})
			continue
		}
		if u.deferred {
			continue
		}
		for _, ret := range returnPoints(b.Body) {
			if latestBefore(u.adds, ret) > latestBefore(u.waits, ret) {
				diags = append(diags, lint.Diagnostic{
					Pos: ret,
					Message: "return path after " + u.name + ".Add skips " + u.name +
						".Wait; goroutines spawned above are still running",
				})
			}
		}
	}
	return diags
}

// returnPoints lists the body's explicit returns (outside nested literals)
// plus the implicit fall-off-the-end point when the last statement is not a
// return.
func returnPoints(body *ast.BlockStmt) []token.Pos {
	var out []token.Pos
	flow.WalkSkipLits(body, func(n ast.Node) bool {
		if r, ok := n.(*ast.ReturnStmt); ok {
			out = append(out, r.Pos())
		}
		return true
	})
	if n := len(body.List); n == 0 {
		return out
	} else if _, ok := body.List[n-1].(*ast.ReturnStmt); !ok {
		out = append(out, body.Rbrace)
	}
	return out
}

// latestBefore returns the largest position in ps strictly before pos, or
// token.NoPos.
func latestBefore(ps []token.Pos, pos token.Pos) token.Pos {
	best := token.NoPos
	for _, p := range ps {
		if p < pos && p > best {
			best = p
		}
	}
	return best
}

// checkCloseRaces flags close(ch) on a channel that go-spawned workers in
// the same body still send on, unless a WaitGroup.Wait is positioned
// between spawn and close (in the main body, or earlier in the same fan-in
// goroutine for the go func() { wg.Wait(); close(ch) }() shape).
func checkCloseRaces(pass *lint.Pass, b flow.Body) []lint.Diagnostic {
	// Channels sent to inside go-spawned literals.
	sentInWorker := map[*types.Var]bool{}
	for _, lit := range flow.GoLits(b.Body) {
		flow.WalkSkipLits(lit.Body, func(n ast.Node) bool {
			if send, ok := n.(*ast.SendStmt); ok {
				if v := flow.RootVar(pass, send.Chan); v != nil {
					sentInWorker[v] = true
				}
			}
			return true
		})
	}
	if len(sentInWorker) == 0 {
		return nil
	}
	var diags []lint.Diagnostic
	// check inspects one region (the main body or one goroutine literal)
	// for close calls; a Wait earlier in the same region clears them.
	check := func(region ast.Node) {
		flow.WalkSkipLits(region, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "close" || len(call.Args) != 1 {
				return true
			}
			if _, isBuiltin := pass.ObjectOf(id).(*types.Builtin); !isBuiltin {
				return true
			}
			ch := flow.RootVar(pass, call.Args[0])
			if ch == nil || !sentInWorker[ch] {
				return true
			}
			waited := flow.Scan(region, func(inner ast.Node) bool {
				c, ok := inner.(*ast.CallExpr)
				return ok && c.Pos() < call.Pos() && wgCall(pass, c, "Wait") != nil
			})
			if !waited {
				diags = append(diags, lint.Diagnostic{
					Pos: call.Pos(),
					Message: "close(" + ch.Name() + ") while spawned workers still send on it " +
						"panics on an unlucky schedule; Wait for the workers first",
				})
			}
			return true
		})
	}
	check(b.Body)
	for _, lit := range flow.GoLits(b.Body) {
		check(lit.Body)
	}
	return diags
}

// checkLoopCapture flags goroutine literals inside a loop that capture a
// variable declared before the loop and reassigned inside it — the one
// loop-capture shape go1.22 per-iteration variables did not fix.
func checkLoopCapture(pass *lint.Pass, b flow.Body) []lint.Diagnostic {
	var diags []lint.Diagnostic
	flow.WalkSkipLits(b.Body, func(n ast.Node) bool {
		var loopBody *ast.BlockStmt
		switch loop := n.(type) {
		case *ast.ForStmt:
			loopBody = loop.Body
		case *ast.RangeStmt:
			loopBody = loop.Body
		default:
			return true
		}
		loopPos := n.Pos()
		// Variables assigned (as plain identifiers) anywhere in the loop,
		// including its header, outside goroutine literals.
		assigned := map[*types.Var]bool{}
		flow.WalkSkipLits(n, func(inner ast.Node) bool {
			switch s := inner.(type) {
			case *ast.AssignStmt:
				for _, lhs := range s.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if v, ok := pass.ObjectOf(id).(*types.Var); ok {
							assigned[v] = true
						}
					}
				}
			case *ast.IncDecStmt:
				if id, ok := s.X.(*ast.Ident); ok {
					if v, ok := pass.ObjectOf(id).(*types.Var); ok {
						assigned[v] = true
					}
				}
			}
			return true
		})
		for _, lit := range flow.GoLits(loopBody) {
			seen := map[*types.Var]bool{}
			ast.Inspect(lit.Body, func(inner ast.Node) bool {
				id, ok := inner.(*ast.Ident)
				if !ok {
					return true
				}
				v, ok := pass.Info.Uses[id].(*types.Var)
				if !ok || seen[v] || flow.Within(v.Pos(), lit) {
					return true
				}
				// Declared before the loop, reassigned inside it, read by
				// the goroutine: the classic shared-variable capture.
				if v.Pos() < loopPos && assigned[v] {
					seen[v] = true
					diags = append(diags, lint.Diagnostic{
						Pos: id.Pos(),
						Message: "goroutine captures " + v.Name() + ", which the enclosing " +
							"loop reassigns; pass it as an argument or declare it per-iteration",
					})
				}
				return true
			})
		}
		return true
	})
	return diags
}

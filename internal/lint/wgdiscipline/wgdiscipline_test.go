package wgdiscipline

import (
	"testing"

	"instcmp/internal/lint/linttest"
)

func TestWgDiscipline(t *testing.T) {
	linttest.Run(t, "testdata/fixture", Analyzer)
}

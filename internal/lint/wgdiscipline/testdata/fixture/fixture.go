// Package fixture exercises the wgdiscipline analyzer: each worker-pool
// hygiene rule has at least one flagged shape and the clean counterpart
// the engine's own pools use.
package fixture

import "sync"

func process(int) {}

// goodPool is the engine's canonical shape: Add before go, results by
// index, one Wait before anything reads them.
func goodPool(items []int) int {
	var wg sync.WaitGroup
	results := make([]int, len(items))
	for i, it := range items {
		wg.Add(1)
		go func(i, it int) {
			defer wg.Done()
			results[i] = it * 2
		}(i, it)
	}
	wg.Wait()
	total := 0
	for _, r := range results {
		total += r
	}
	return total
}

// addInsideGo moves the Add into the goroutine, racing the Wait.
func addInsideGo(items []int) {
	var wg sync.WaitGroup
	for range items {
		go func() {
			wg.Add(1) // want "races Wait"
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// leak Adds but never Waits: the workers outlive the function.
func leak(items []int) {
	var wg sync.WaitGroup
	for range items {
		wg.Add(1) // want "never Waited"
		go func() { defer wg.Done() }()
	}
}

// earlyReturn has a return path between Add and Wait.
func earlyReturn(items []int, bail bool) {
	var wg sync.WaitGroup
	wg.Add(len(items))
	for range items {
		go func() { defer wg.Done() }()
	}
	if bail {
		return // want "skips"
	}
	wg.Wait()
}

// deferredWait covers every return path, including the early one.
func deferredWait(items []int, bail bool) {
	var wg sync.WaitGroup
	defer wg.Wait()
	wg.Add(len(items))
	for range items {
		go func() { defer wg.Done() }()
	}
	if bail {
		return
	}
	process(len(items))
}

// closeTooEarly closes the results channel while workers still send.
func closeTooEarly(items []int) {
	ch := make(chan int)
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func(it int) {
			defer wg.Done()
			ch <- it
		}(it)
	}
	close(ch) // want "still send"
	wg.Wait()
}

// fanIn is the approved closer: a dedicated goroutine Waits, then closes,
// so the range below terminates without racing the workers.
func fanIn(items []int) []int {
	ch := make(chan int)
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func(it int) {
			defer wg.Done()
			ch <- it
		}(it)
	}
	go func() {
		wg.Wait()
		close(ch)
	}()
	out := make([]int, 0, len(items))
	for v := range ch {
		out = append(out, v)
	}
	return out
}

// sharedCapture reassigns a pre-loop variable that the goroutine reads:
// the one capture shape go1.22 per-iteration variables did not fix.
func sharedCapture(items []int) {
	var wg sync.WaitGroup
	var last int
	for _, it := range items {
		last = it
		wg.Add(1)
		go func() {
			defer wg.Done()
			process(last) // want "reassigns"
		}()
	}
	wg.Wait()
}

// perIteration captures the loop-declared variable, which go1.22 scopes
// per iteration; clean.
func perIteration(items []int) {
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			process(it)
		}()
	}
	wg.Wait()
}

// indexCapture captures a classic three-clause loop variable — also
// per-iteration since go1.22; clean.
func indexCapture(items []int) {
	var wg sync.WaitGroup
	for i := 0; i < len(items); i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			process(items[i])
		}()
	}
	wg.Wait()
}

// allowedLeak is the justified escape hatch.
func allowedLeak() {
	var wg sync.WaitGroup
	//instlint:allow wgdiscipline -- fire-and-forget telemetry, bounded by process lifetime
	wg.Add(1)
	go func() { defer wg.Done() }()
}

// Package atomicfield enforces consistent atomicity (DESIGN.md §11): a
// struct field that is accessed through the function-style sync/atomic API
// anywhere in the package must be accessed that way everywhere. A single
// plain read or write of such a field is a data race — the race detector
// only catches it when the schedule cooperates, and on weakly-ordered
// hardware it silently yields torn or stale values in the shared search
// state.
//
// The engine itself uses the typed atomics (atomic.Uint64, atomic.Bool),
// which make this mistake unrepresentable; this analyzer guards the
// function-style escape hatch so it stays safe if it ever appears.
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"

	"instcmp/internal/lint"
)

// Analyzer is the atomicfield invariant checker.
var Analyzer = &lint.Analyzer{
	Name: "atomicfield",
	Doc:  "fields accessed via sync/atomic must be accessed atomically everywhere",
	Run:  run,
}

func run(pass *lint.Pass) ([]lint.Diagnostic, error) {
	// Pass 1: collect fields that appear as &field arguments of
	// sync/atomic calls, and remember those selector nodes as exempt.
	atomicFields := map[*types.Var]bool{}
	exempt := map[*ast.SelectorExpr]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				field, sel := addressedField(pass, arg)
				if field != nil {
					atomicFields[field] = true
					exempt[sel] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil, nil
	}
	// Pass 2: flag every other access to those fields.
	var diags []lint.Diagnostic
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || exempt[sel] {
				return true
			}
			field, ok := pass.ObjectOf(sel.Sel).(*types.Var)
			if !ok || !atomicFields[field] {
				return true
			}
			diags = append(diags, lint.Diagnostic{
				Pos: sel.Pos(),
				Message: "field " + field.Name() + " is accessed with sync/atomic elsewhere; " +
					"this plain access races with it — use the atomic API (or a typed atomic) here too",
			})
			return true
		})
	}
	return diags, nil
}

// isAtomicCall reports whether the call targets the sync/atomic package.
func isAtomicCall(pass *lint.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := pass.ObjectOf(id).(*types.PkgName)
	return ok && pkg.Imported().Path() == "sync/atomic"
}

// addressedField unwraps &x.f and returns the struct field var and its
// selector node, or nil.
func addressedField(pass *lint.Pass, arg ast.Expr) (*types.Var, *ast.SelectorExpr) {
	un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return nil, nil
	}
	sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	v, ok := pass.ObjectOf(sel.Sel).(*types.Var)
	if !ok || !v.IsField() {
		return nil, nil
	}
	return v, sel
}

// Package fixture seeds atomicfield violations and legal patterns.
package fixture

import "sync/atomic"

type counter struct {
	n     int64 // accessed atomically: every access must stay atomic
	hits  int64 // accessed atomically
	limit int64 // never accessed atomically: plain access is fine
	typed atomic.Int64
}

func (c *counter) bump()       { atomic.AddInt64(&c.n, 1) }
func (c *counter) read() int64 { return atomic.LoadInt64(&c.n) }
func (c *counter) record()     { atomic.StoreInt64(&c.hits, 1) }

func (c *counter) racyRead() int64 {
	return c.n // want "plain access races"
}

func (c *counter) racyWrite() {
	c.hits = 0 // want "plain access races"
}

func (c *counter) racyCompare(limit int64) bool {
	return c.n > limit // want "plain access races"
}

func (c *counter) plainOnly() int64 {
	c.limit++ // limit has no atomic accesses anywhere: exempt
	return c.limit
}

func (c *counter) typedOnly() int64 {
	// Typed atomics cannot be accessed non-atomically; nothing to flag.
	c.typed.Add(1)
	return c.typed.Load()
}

func (c *counter) resetBeforeStart() {
	//instlint:allow atomicfield -- single-goroutine setup phase, no readers yet
	c.hits = 0
}

package atomicfield_test

import (
	"testing"

	"instcmp/internal/lint/atomicfield"
	"instcmp/internal/lint/linttest"
)

func TestAtomicfield(t *testing.T) {
	linttest.Run(t, "testdata/fixture", atomicfield.Analyzer)
}

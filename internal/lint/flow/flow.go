// Package flow holds the shared AST/dataflow helpers of the determinism
// suite (nondet, immutpub, wgdiscipline — DESIGN.md §16). The three
// analyzers reason about the same structures — access paths rooted at a
// variable, function bodies with nested literals, package-qualified calls,
// goroutine spawns — and this package keeps that reasoning in one place so
// the analyzers stay small statements of their invariants.
package flow

import (
	"go/ast"
	"go/token"
	"go/types"

	"instcmp/internal/lint"
)

// Body is one function body under analysis: a declaration or a literal,
// with the name analyzers use in messages and exemption checks ("" for a
// literal).
type Body struct {
	Name string
	Type *ast.FuncType
	Body *ast.BlockStmt
	// Decl is the enclosing declaration: for a FuncDecl, itself; for a
	// FuncLit, the declaration it syntactically sits in (nil at file
	// scope). Exemptions that cover a constructor extend to its literals.
	Decl *ast.FuncDecl
}

// EachBody invokes fn for every function body of the pass — declarations
// and function literals — exactly once each.
func EachBody(pass *lint.Pass, fn func(b Body)) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fd.Body != nil {
				fn(Body{Name: fd.Name.Name, Type: fd.Type, Body: fd.Body, Decl: fd})
			}
			ast.Inspect(fd, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					fn(Body{Type: lit.Type, Body: lit.Body, Decl: fd})
				}
				return true
			})
		}
		// Literals in file-scope var initializers.
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			ast.Inspect(gd, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					fn(Body{Type: lit.Type, Body: lit.Body})
				}
				return true
			})
		}
	}
}

// Scan walks a subtree, skipping nested function literals (their bodies run
// on their own schedule and are analyzed as bodies of their own), and
// reports whether pred holds anywhere.
func Scan(root ast.Node, pred func(ast.Node) bool) bool {
	found := false
	WalkSkipLits(root, func(n ast.Node) bool {
		if pred(n) {
			found = true
		}
		return !found
	})
	return found
}

// WalkSkipLits walks a subtree like ast.Inspect but never descends into
// function literals below the root. The root itself may be a literal.
func WalkSkipLits(root ast.Node, visit func(ast.Node) bool) {
	if root == nil {
		return
	}
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if n == root {
			return visit(n)
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return visit(n)
	})
}

// PkgFunc resolves a call to pkg.Name where pkg is an imported package
// identifier; it returns the import path and selected name, or "" when the
// call is anything else (method call, local call, conversion).
func PkgFunc(pass *lint.Pass, call *ast.CallExpr) (path, name string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := pass.ObjectOf(id).(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}

// Deref removes one pointer layer, if any.
func Deref(t types.Type) types.Type {
	if ptr, ok := t.(*types.Pointer); ok {
		return ptr.Elem()
	}
	return t
}

// Named returns the named type of t (through one pointer), or nil.
func Named(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	n, _ := Deref(t).(*types.Named)
	return n
}

// IsNamed reports whether t (through one pointer) is the named type
// pkgPath.name.
func IsNamed(t types.Type, pkgPath, name string) bool {
	n := Named(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// Steps returns the access-path steps of an expression, innermost root
// first: for p.Code[i].Masks it yields p, p.Code, p.Code[i],
// p.Code[i].Masks. Parens and unary * / & are transparent. A non-path
// expression yields just itself.
func Steps(e ast.Expr) []ast.Expr {
	var steps []ast.Expr
	var walk func(ast.Expr)
	walk = func(e ast.Expr) {
		switch x := e.(type) {
		case *ast.ParenExpr:
			walk(x.X)
			return
		case *ast.StarExpr:
			walk(x.X)
			return
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				walk(x.X)
				return
			}
		case *ast.SelectorExpr:
			walk(x.X)
		case *ast.IndexExpr:
			walk(x.X)
		}
		steps = append(steps, e)
	}
	walk(e)
	return steps
}

// RootVar resolves the innermost step of an access path to the variable it
// denotes, or nil (calls, literals, package names).
func RootVar(pass *lint.Pass, e ast.Expr) *types.Var {
	steps := Steps(e)
	id, ok := steps[0].(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := pass.ObjectOf(id).(*types.Var)
	return v
}

// Write is one mutation site: an assignment target, an inc/dec operand, or
// the map argument of a delete call.
type Write struct {
	Target ast.Expr
	Pos    token.Pos
	// Tok is the assignment token (=, +=, ++, …); delete reports MAP.
	Tok token.Token
}

// Writes collects every mutation site in the subtree, skipping nested
// function literals.
func Writes(pass *lint.Pass, root ast.Node) []Write {
	var out []Write
	WalkSkipLits(root, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				out = append(out, Write{Target: lhs, Pos: s.TokPos, Tok: s.Tok})
			}
		case *ast.IncDecStmt:
			out = append(out, Write{Target: s.X, Pos: s.TokPos, Tok: s.Tok})
		case *ast.CallExpr:
			if id, ok := s.Fun.(*ast.Ident); ok && id.Name == "delete" && len(s.Args) == 2 {
				if _, isBuiltin := pass.ObjectOf(id).(*types.Builtin); isBuiltin {
					out = append(out, Write{Target: s.Args[0], Pos: s.Pos(), Tok: token.MAP})
				}
			}
		}
		return true
	})
	return out
}

// IsIntegral reports whether the expression has an integer type — the one
// accumulation domain where order cannot change the result bit for bit.
func IsIntegral(pass *lint.Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// IsAppendOf reports whether the expression is append(target, …) for the
// same variable as target (the grow-a-collection shape).
func IsAppendOf(pass *lint.Pass, e ast.Expr, target *types.Var) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if _, isBuiltin := pass.ObjectOf(id).(*types.Builtin); !isBuiltin {
		return false
	}
	if target == nil {
		return true
	}
	return RootVar(pass, call.Args[0]) == target
}

// GoLits returns every function literal the subtree launches as a
// goroutine (go func(){…}(…)), skipping nested literals' own bodies.
func GoLits(root ast.Node) []*ast.FuncLit {
	var out []*ast.FuncLit
	WalkSkipLits(root, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
			out = append(out, lit)
		}
		return true
	})
	return out
}

// Within reports whether pos falls inside the node's source range.
func Within(pos token.Pos, n ast.Node) bool {
	return n != nil && n.Pos() <= pos && pos < n.End()
}

// Package fixture seeds floatscore violations and legal patterns.
package fixture

import "math"

func sameScore(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

func lessEps(a, b, eps float64) bool { return a < b-eps }

func bad(a, b float64, scores []float64) bool {
	if a == b { // want "raw == on float64"
		return true
	}
	if scores[0] != scores[1] { // want "raw != on float64"
		return false
	}
	if a < b-1e-9 { // want "inline epsilon"
		return false
	}
	return a+1e-12 >= b // want "inline epsilon"
}

func good(a, b float64, n int) bool {
	if a == 0 || b != 0 { // exact-zero checks are well-defined
		return true
	}
	if float64(n) == a { // want "raw == on float64"
		return false
	}
	if sameScore(a, b) { // the documented bit-pattern helper
		return true
	}
	if lessEps(a, b, 1e-9) { // named epsilon through the helper
		return false
	}
	//instlint:allow floatscore -- exercising the justified-suppression path
	return a == b
}

func ordering(a, b float64) bool {
	return a > b || a <= 0.5 // plain orderings are legal
}

func ints(a, b int) bool {
	return a == b // integer equality is out of scope
}

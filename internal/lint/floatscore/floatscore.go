// Package floatscore enforces the engine's float-comparison discipline
// (DESIGN.md §11): similarity scores are float64s whose bit-identical
// reproducibility across worker counts is pinned by the regress goldens, so
// ad-hoc comparisons that blur or hide that contract are banned in the
// scoring and search packages.
//
// Two shapes are flagged:
//
//   - Raw == / != between two float64 expressions. Equality on computed
//     floats either wants bit-pattern identity (score.SameScore) or a
//     documented tolerance (score.LessEps with a named epsilon); a bare
//     operator does not say which, and reads as a bug. Comparisons against
//     the constant 0 are exempt — the engine's zero checks (empty
//     denominators, unset options) are exact by construction.
//
//   - Ordering comparisons (< <= > >=) with an inline epsilon literal, such
//     as `a < b-1e-9`. These encode a tolerance policy at the use site;
//     they must go through the named helpers so every tolerance is
//     documented in one place (score.LessEps, score.PerfectEps,
//     score.GainEps). Plain ordering without an epsilon stays legal: the
//     branch-and-bound incumbent comparisons are ordinary float orderings
//     and are deterministic as-is.
package floatscore

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"math"

	"instcmp/internal/lint"
)

// inlineEpsilonBound classifies a float literal as an inline tolerance:
// anything nonzero below this magnitude only ever appears as an epsilon.
const inlineEpsilonBound = 1e-6

// Analyzer is the floatscore invariant checker.
var Analyzer = &lint.Analyzer{
	Name: "floatscore",
	Doc:  "forbid raw ==/!= on float64 scores and inline-epsilon orderings; use score.SameScore / score.LessEps",
	Run:  run,
}

func run(pass *lint.Pass) ([]lint.Diagnostic, error) {
	var diags []lint.Diagnostic
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			switch be.Op {
			case token.EQL, token.NEQ:
				if isFloat(pass, be.X) && isFloat(pass, be.Y) &&
					!isZeroConst(pass, be.X) && !isZeroConst(pass, be.Y) {
					diags = append(diags, lint.Diagnostic{
						Pos: be.OpPos,
						Message: "raw " + be.Op.String() + " on float64 values; compare bit patterns " +
							"(score.SameScore) or use an epsilon helper (score.LessEps)",
					})
				}
			case token.LSS, token.LEQ, token.GTR, token.GEQ:
				if (isFloat(pass, be.X) || isFloat(pass, be.Y)) &&
					(hasInlineEpsilon(pass, be.X) || hasInlineEpsilon(pass, be.Y)) {
					diags = append(diags, lint.Diagnostic{
						Pos: be.OpPos,
						Message: "inline epsilon in float64 comparison; use score.LessEps " +
							"with a named, documented epsilon",
					})
				}
			}
			return true
		})
	}
	return diags, nil
}

// isFloat reports whether the expression's type is a floating-point kind.
func isFloat(pass *lint.Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isZeroConst reports whether the expression is the constant zero.
func isZeroConst(pass *lint.Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	return constant.Sign(tv.Value) == 0
}

// hasInlineEpsilon reports whether the expression's subtree contains a
// nonzero numeric literal with magnitude below inlineEpsilonBound.
func hasInlineEpsilon(pass *lint.Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		lit, ok := n.(*ast.BasicLit)
		if !ok {
			return true
		}
		tv, ok := pass.Info.Types[lit]
		if !ok || tv.Value == nil {
			return true
		}
		v := tv.Value
		if v.Kind() != constant.Float && v.Kind() != constant.Int {
			return true
		}
		f, _ := constant.Float64Val(v)
		if f != 0 && math.Abs(f) < inlineEpsilonBound {
			found = true
		}
		return true
	})
	return found
}

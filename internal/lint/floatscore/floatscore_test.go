package floatscore_test

import (
	"testing"

	"instcmp/internal/lint/floatscore"
	"instcmp/internal/lint/linttest"
)

func TestFloatscore(t *testing.T) {
	linttest.Run(t, "testdata/fixture", floatscore.Analyzer)
}

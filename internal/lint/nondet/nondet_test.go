package nondet

import (
	"testing"

	"instcmp/internal/lint/linttest"
)

func TestNondet(t *testing.T) {
	linttest.Run(t, "testdata/fixture", Analyzer)
}

// Package nondet flags sources of run-to-run nondeterminism in the
// engine's score-affecting packages (DESIGN.md §16). The scores and stats
// the paper's similarity measures produce are pinned bit-identical across
// runs and across worker counts (internal/regress); that guarantee dies
// quietly the moment a hot path consults something the runtime is allowed
// to vary. Four such sources are banned here:
//
//  1. Map keys collected into a slice that is never sorted before use:
//     collection order is Go's randomized map order, and every later
//     iteration, hash, or fold over the slice inherits it. (maporder bans
//     the order-sensitive range itself; this rule checks the other half of
//     the collect-then-sort remedy.)
//  2. time.Now and math/rand in scoring or sketching code: wall-clock and
//     PRNG values braid scheduling luck into results. Deadline checks that
//     only trigger anytime degradation carry a justified allow.
//  3. select statements with two or more value-binding receive cases: when
//     several cases are ready the runtime picks pseudo-randomly, so the
//     binding order — and any fold over the received values — varies.
//  4. Goroutine results folded in channel-arrival order: ranging over a
//     channel and appending (or float-accumulating) folds values in
//     completion order, which the scheduler owns. Store results by task
//     index and fold in task order instead (the produce/commit scheduler
//     and the exact reduction are the in-tree exemplars).
package nondet

import (
	"go/ast"
	"go/token"
	"go/types"

	"instcmp/internal/lint"
	"instcmp/internal/lint/flow"
)

// Analyzer is the nondet invariant checker.
var Analyzer = &lint.Analyzer{
	Name: "nondet",
	Doc: "forbid nondeterminism sources in score-affecting code: unsorted map-key " +
		"collection, wall-clock/PRNG reads, multi-ready selects, arrival-order folds",
	Run: run,
}

func run(pass *lint.Pass) ([]lint.Diagnostic, error) {
	var diags []lint.Diagnostic
	flow.EachBody(pass, func(b flow.Body) {
		diags = append(diags, checkUnsortedKeys(pass, b)...)
		diags = append(diags, checkSelects(pass, b)...)
		diags = append(diags, checkArrivalFolds(pass, b)...)
	})
	for _, f := range pass.Files {
		diags = append(diags, checkClockAndRand(pass, f)...)
	}
	return diags, nil
}

// checkUnsortedKeys flags slices grown from a map range that no later
// statement of the same body sorts: for k := range m { s = append(s, k) }
// with no sort.X(s…) / slices.Sort*(s…) afterwards.
func checkUnsortedKeys(pass *lint.Pass, b flow.Body) []lint.Diagnostic {
	type collection struct {
		obj  *types.Var
		pos  token.Pos // the range statement
		name string
	}
	var collected []collection
	flow.WalkSkipLits(b.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		flow.WalkSkipLits(rs.Body, func(inner ast.Node) bool {
			as, ok := inner.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return true
			}
			id, ok := as.Lhs[0].(*ast.Ident)
			if !ok {
				return true
			}
			obj, ok := pass.ObjectOf(id).(*types.Var)
			if !ok || !flow.IsAppendOf(pass, as.Rhs[0], obj) {
				return true
			}
			collected = append(collected, collection{obj: obj, pos: rs.For, name: id.Name})
			return true
		})
		return true
	})
	var diags []lint.Diagnostic
	for _, c := range collected {
		if sortedAfter(pass, b.Body, c.obj, c.pos) {
			continue
		}
		diags = append(diags, lint.Diagnostic{
			Pos: c.pos,
			Message: "map keys collected into " + c.name + " are never sorted; every " +
				"iteration or hash over them inherits randomized map order — sort before use",
		})
	}
	return diags
}

// sortedAfter reports whether the body contains, after pos, a call into
// package sort or slices with the collected slice among its arguments.
// Nested literals count: a sort inside a closure still sorts.
func sortedAfter(pass *lint.Pass, body ast.Node, obj *types.Var, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		path, _ := flow.PkgFunc(pass, call)
		if path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if flow.RootVar(pass, arg) == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// checkClockAndRand flags time.Now calls and any use of math/rand (v1 or
// v2) in the file.
func checkClockAndRand(pass *lint.Pass, f *ast.File) []lint.Diagnostic {
	var diags []lint.Diagnostic
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch path, name := flow.PkgFunc(pass, call); {
		case path == "time" && name == "Now":
			diags = append(diags, lint.Diagnostic{
				Pos: call.Pos(),
				Message: "time.Now in a score-affecting package: wall-clock reads braid " +
					"scheduling into results — budget with counters, or justify the allow",
			})
		case path == "math/rand" || path == "math/rand/v2":
			diags = append(diags, lint.Diagnostic{
				Pos: call.Pos(),
				Message: "math/rand in a score-affecting package: scores and sketches must " +
					"be reproducible — derive pseudo-randomness from seeded splitmix64 instead",
			})
		}
		return true
	})
	return diags
}

// checkSelects flags select statements in which two or more cases bind a
// received value: with several cases ready, the runtime chooses
// pseudo-randomly, so the winners vary run to run.
func checkSelects(pass *lint.Pass, b flow.Body) []lint.Diagnostic {
	var diags []lint.Diagnostic
	flow.WalkSkipLits(b.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		binding := 0
		for _, cl := range sel.Body.List {
			comm, ok := cl.(*ast.CommClause)
			if !ok || comm.Comm == nil {
				continue
			}
			if as, ok := comm.Comm.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
				if un, ok := as.Rhs[0].(*ast.UnaryExpr); ok && un.Op == token.ARROW {
					binding++
				}
			}
		}
		if binding >= 2 {
			diags = append(diags, lint.Diagnostic{
				Pos: sel.Select,
				Message: "select with multiple value-binding receives resolves ready cases " +
					"pseudo-randomly; commit results in task order through one channel instead",
			})
		}
		return true
	})
	return diags
}

// checkArrivalFolds flags range-over-channel loops whose body folds the
// received values in arrival order: appends, or non-integer compound
// accumulation. Integer counters commute exactly and index-targeted stores
// (results[r.idx] = r) are arrival-order-proof; both pass.
func checkArrivalFolds(pass *lint.Pass, b flow.Body) []lint.Diagnostic {
	var diags []lint.Diagnostic
	flow.WalkSkipLits(b.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isChan := t.Underlying().(*types.Chan); !isChan {
			return true
		}
		folds := false
		flow.WalkSkipLits(rs.Body, func(inner ast.Node) bool {
			as, ok := inner.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return true
			}
			switch as.Tok {
			case token.ASSIGN, token.DEFINE:
				if flow.IsAppendOf(pass, as.Rhs[0], nil) {
					folds = true
				}
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				if !flow.IsIntegral(pass, as.Lhs[0]) {
					folds = true
				}
			}
			return !folds
		})
		if folds {
			diags = append(diags, lint.Diagnostic{
				Pos: rs.For,
				Message: "goroutine results folded in channel-arrival order, which the " +
					"scheduler owns; store by task index and fold in task order",
			})
		}
		return true
	})
	return diags
}

// Package fixture exercises the nondet analyzer: every flagged line
// carries a want comment; the clean shapes document the deterministic
// remedies the engine actually uses.
package fixture

import (
	"math/rand"
	"sort"
	"time"
)

// collectSorted is the approved shape: keys collected from a map range are
// sorted before anything iterates or hashes them.
func collectSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// collectUnsorted leaks map order into the returned slice.
func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want "never sorted"
		keys = append(keys, k)
	}
	return keys
}

// collectSortSlice is clean: sort.Slice counts as sorting the collection.
func collectSortSlice(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// clock reads the wall clock in a score path.
func clock() int64 {
	return time.Now().UnixNano() // want "time.Now"
}

// clockAllowed is the deadline-degradation shape, justified.
func clockAllowed() int64 {
	//instlint:allow nondet -- deadline checks only trigger anytime degradation, never scores
	return time.Now().UnixNano()
}

// clockDocAllowed pins the doc-comment directive placement: the directive
// is the FIRST line of the comment block, with explanation lines between
// it and the flagged statement; the allow must still be honored.
func clockDocAllowed() int64 {
	//instlint:allow nondet -- wall-clock feeds a stats field read by humans,
	// never a score; the comment block explains this at length, and the
	// directive sits at its head rather than directly above the call.
	return time.Now().UnixNano()
}

// prng draws from the global PRNG.
func prng() int {
	return rand.Intn(10) // want "math/rand"
}

// multiReady binds from whichever of two result channels is ready first.
func multiReady(a, b chan int) int {
	select { // want "pseudo-randomly"
	case x := <-a:
		return x
	case y := <-b:
		return y
	}
}

// ctxStyle is the approved cancel-or-result shape: only one case binds a
// value, the other observes closure.
func ctxStyle(done chan struct{}, results chan int) int {
	select {
	case <-done:
		return 0
	case r := <-results:
		return r
	}
}

type result struct {
	idx   int
	score float64
}

// arrivalFold folds worker results in arrival order.
func arrivalFold(ch chan result) []result {
	var out []result
	for r := range ch { // want "arrival order"
		out = append(out, r)
	}
	return out
}

// arrivalSum accumulates floats in arrival order.
func arrivalSum(ch chan float64) float64 {
	total := 0.0
	for v := range ch { // want "arrival order"
		total += v
	}
	return total
}

// indexedFold is the approved shape: results land at their task index, so
// arrival order cannot matter.
func indexedFold(ch chan result, n int) []float64 {
	out := make([]float64, n)
	count := 0
	for r := range ch {
		out[r.idx] = r.score
		count++
		if count == n {
			break
		}
	}
	return out
}

// countDrain only counts — integer accumulation commutes exactly.
func countDrain(ch chan struct{}) int {
	n := 0
	for range ch {
		n++
	}
	return n
}

// Package fixture seeds maporder violations and legal patterns.
package fixture

import "sort"

func sumScores(scores map[string]float64) float64 {
	total := 0.0
	for _, s := range scores { // want "map iteration order"
		total += s
	}
	return total
}

func sumSorted(scores map[string]float64) float64 {
	keys := make([]string, 0, len(scores))
	for k := range scores { // want "map iteration order"
		keys = append(keys, k) // the append itself runs in map order; the
	} // analyzer cannot see the later sort, so this builder loop needs a
	sort.Strings(keys) // justified allow directive (next function).
	total := 0.0
	for _, k := range keys { // ranging the sorted slice is clean
		total += scores[k]
	}
	return total
}

//instlint:allow maporder -- keys slice is fully sorted before any order-sensitive use
func sumSortedAllowed(scores map[string]float64) float64 {
	keys := make([]string, 0, len(scores))
	//instlint:allow maporder -- append order irrelevant: sorted before use below
	for k := range scores {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	total := 0.0
	for _, k := range keys {
		total += scores[k]
	}
	return total
}

func countIntersection(a, b map[string]bool) int {
	n := 0
	for v := range a { // exactly-commutative integer counting: exempt
		if b[v] {
			n++
		}
	}
	return n
}

func markAll(src map[int]bool, dst map[int]bool) {
	for k := range src { // distinct-key inserts keyed by the loop var: exempt
		dst[k] = true
	}
}

func firstKey(m map[int]string) (best int) {
	for k := range m { // want "map iteration order"
		if k > best {
			best = k
		}
	}
	return best
}

func overSlice(xs []float64) float64 {
	t := 0.0
	for _, x := range xs { // slices iterate deterministically: out of scope
		t += x
	}
	return t
}

// invertedProbe mirrors the sketch index's band probe: buckets are looked
// up by key, and only slices are ranged — clean.
func invertedProbe(buckets map[uint64][]int32, keys []uint64) []int32 {
	var cands []int32
	for _, key := range keys { // keyed bucket lookups, not a map range
		cands = append(cands, buckets[key]...)
	}
	return cands
}

// invertedScanAll ranges the bucket map itself: the candidate list would
// come out in map order.
func invertedScanAll(buckets map[uint64][]int32) []int32 {
	var cands []int32
	for _, bucket := range buckets { // want "map iteration order"
		cands = append(cands, bucket...)
	}
	return cands
}

// profileFeatures mirrors schemamap's column profiling: distinct values
// accumulate in first-seen scan order over tuple slices, with the map used
// only as a membership guard — sketch input order stays deterministic.
func profileFeatures(rows [][]uint64) []uint64 {
	seen := map[uint64]bool{}
	var feats []uint64
	for _, row := range rows { // slices scan deterministically
		for _, v := range row {
			if !seen[v] {
				seen[v] = true
				feats = append(feats, v)
			}
		}
	}
	return feats
}

// profileFeaturesFromSet builds the feature stream by ranging the dedup set
// instead: the sketch would hash values in map order.
func profileFeaturesFromSet(seen map[uint64]bool) []uint64 {
	var feats []uint64
	for v := range seen { // want "map iteration order"
		feats = append(feats, v)
	}
	return feats
}

// widenedScan mirrors the dynamic index's widened probe: iterate the sorted
// mirror slice, never the map it mirrors.
func widenedScan(names []string, estimates map[string]float64) []float64 {
	out := make([]float64, 0, len(names))
	for _, n := range names { // sorted mirror slice: deterministic
		out = append(out, estimates[n])
	}
	return out
}

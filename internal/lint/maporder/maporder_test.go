package maporder_test

import (
	"testing"

	"instcmp/internal/lint/linttest"
	"instcmp/internal/lint/maporder"
)

func TestMaporder(t *testing.T) {
	linttest.Run(t, "testdata/fixture", maporder.Analyzer)
}

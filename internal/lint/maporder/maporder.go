// Package maporder bans map iteration in the engine's deterministic hot
// paths (DESIGN.md §11). Go randomizes map iteration order per run, so any
// `range` over a map inside scoring or search code is a determinism leak:
// it can reorder float accumulation (float addition does not commute
// bitwise), candidate generation, or greedy tie-breaking, and break the
// bit-identical golden scores pinned by internal/regress.
//
// A map range is accepted only when its body is provably order-insensitive:
// every statement is an exactly-commutative accumulation (integer ++/--/+=,
// possibly under a call-free if) or a constant-valued map insert keyed by
// the loop variable. Anything else — float accumulation, appends, calls —
// must iterate sorted keys (or a slice built in insertion order) instead,
// or carry a justified //instlint:allow directive.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"

	"instcmp/internal/lint"
)

// Analyzer is the maporder invariant checker.
var Analyzer = &lint.Analyzer{
	Name: "maporder",
	Doc:  "forbid order-sensitive map iteration in deterministic hot paths; sort keys first",
	Run:  run,
}

func run(pass *lint.Pass) ([]lint.Diagnostic, error) {
	var diags []lint.Diagnostic
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if orderInsensitive(pass, rs) {
				return true
			}
			diags = append(diags, lint.Diagnostic{
				Pos: rs.For,
				Message: "map iteration order is randomized; this loop's effects depend on it " +
					"— sort the keys first or accumulate into position-indexed state",
			})
			return true
		})
	}
	return diags, nil
}

// orderInsensitive reports whether every statement of the range body is an
// exactly-commutative accumulation, so any iteration order produces the
// same final state.
func orderInsensitive(pass *lint.Pass, rs *ast.RangeStmt) bool {
	keyVar := rangeVarObj(pass, rs.Key)
	for _, st := range rs.Body.List {
		if !insensitiveStmt(pass, st, keyVar) {
			return false
		}
	}
	return true
}

// rangeVarObj resolves the range key variable, or nil.
func rangeVarObj(pass *lint.Pass, key ast.Expr) types.Object {
	id, ok := key.(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.ObjectOf(id)
}

func insensitiveStmt(pass *lint.Pass, st ast.Stmt, keyVar types.Object) bool {
	switch s := st.(type) {
	case *ast.IncDecStmt:
		return isIntegral(pass, s.X)
	case *ast.AssignStmt:
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 || hasCall(s.Rhs[0]) {
			return false
		}
		switch s.Tok {
		case token.ADD_ASSIGN:
			// Integer sums commute exactly; float sums do not (the whole
			// point of this analyzer).
			return isIntegral(pass, s.Lhs[0])
		case token.ASSIGN:
			// m[k] = <constant or key-derived value>: distinct keys write
			// distinct slots, so order cannot matter.
			ix, ok := s.Lhs[0].(*ast.IndexExpr)
			if !ok {
				return false
			}
			if _, isMap := pass.TypeOf(ix.X).Underlying().(*types.Map); !isMap {
				return false
			}
			id, ok := ix.Index.(*ast.Ident)
			return ok && keyVar != nil && pass.ObjectOf(id) == keyVar
		}
		return false
	case *ast.IfStmt:
		if s.Init != nil || hasCall(s.Cond) {
			return false
		}
		for _, inner := range s.Body.List {
			if !insensitiveStmt(pass, inner, keyVar) {
				return false
			}
		}
		switch e := s.Else.(type) {
		case nil:
		case *ast.BlockStmt:
			for _, inner := range e.List {
				if !insensitiveStmt(pass, inner, keyVar) {
					return false
				}
			}
		default:
			return insensitiveStmt(pass, e, keyVar)
		}
		return true
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE && s.Label == nil
	}
	return false
}

// isIntegral reports whether the expression has an integer type.
func isIntegral(pass *lint.Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// hasCall reports whether the expression's subtree contains any call (calls
// may observe or mutate state, which makes order visible). Conversions
// count too: staying conservative keeps the exemption sound.
func hasCall(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); ok {
			found = true
		}
		return !found
	})
	return found
}

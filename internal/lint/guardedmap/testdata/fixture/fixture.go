// Package fixture seeds guardedmap violations and the registry's legal
// locking patterns.
package fixture

import "sync"

// cache pairs a mutex with a map: every access to m must hold mu.
type cache struct {
	mu sync.RWMutex
	m  map[string]int
	n  int // non-map fields are not the mutex's business here
}

// newCache builds the map in a literal: no field selection, nothing to
// guard yet.
func newCache() *cache {
	return &cache{m: map[string]int{}}
}

// get takes the read lock first: fine.
func (c *cache) get(k string) (int, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.m[k]
	return v, ok
}

// put takes the write lock first: fine.
func (c *cache) put(k string, v int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[k] = v
}

// racyGet reads the map with no lock anywhere.
func (c *cache) racyGet(k string) int {
	return c.m[k] // want "guarded by the struct's mutex"
}

// racyLen: len() of a guarded map is still a map read.
func (c *cache) racyLen() int {
	return len(c.m) // want "guarded by the struct's mutex"
}

// lateLock touches the map before the lock it eventually takes.
func (c *cache) lateLock(k string) int {
	v := c.m[k] // want "guarded by the struct's mutex"
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[k] = v + 1
	return v
}

// sizeLocked follows the ...Locked convention: the caller holds the lock.
func (c *cache) sizeLocked() int {
	return len(c.m)
}

// expensivePrepOutsideLock mirrors Registry.Register: work before the lock
// is fine as long as the map access comes after.
func (c *cache) expensivePrepOutsideLock(k string) {
	v := len(k) * 2
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[k] = v
}

// touchAllowed carries the justified escape hatch.
func (c *cache) touchAllowed() int {
	//instlint:allow guardedmap -- single-goroutine init, no readers yet
	return len(c.m)
}

// plain has a map but no mutex: not this analyzer's concern.
type plain struct {
	m map[string]int
}

func (p *plain) get(k string) int { return p.m[k] }

// counterOnly has a mutex but no map: also out of scope.
type counterOnly struct {
	mu sync.Mutex
	n  int
}

func (c *counterOnly) bump() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// invindex mirrors lakeindex.Dynamic: a sketch map plus an inverted bucket
// map behind one RWMutex, with a sorted mirror slice.
type invindex struct {
	mu       sync.RWMutex
	sketches map[string]int
	buckets  map[uint64][]string
	names    []string
}

// add computes nothing under the lock beyond the map links: fine.
func (d *invindex) add(name string, keys []uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.sketches[name] = len(keys)
	for _, k := range keys {
		d.buckets[k] = append(d.buckets[k], name)
	}
}

// racyProbe reads a bucket without any lock.
func (d *invindex) racyProbe(k uint64) []string {
	return d.buckets[k] // want "guarded by the struct's mutex"
}

// racyContains reads the sketch map before taking the lock.
func (d *invindex) racyContains(name string) bool {
	_, ok := d.sketches[name] // want "guarded by the struct's mutex"
	d.mu.RLock()
	defer d.mu.RUnlock()
	return ok
}

// removeLocked follows the ...Locked convention: both maps may be touched.
func (d *invindex) removeLocked(name string) {
	delete(d.sketches, name)
	for k, bucket := range d.buckets {
		if len(bucket) == 0 {
			delete(d.buckets, k)
		}
	}
}

// remove holds the write lock across the helper: fine.
func (d *invindex) remove(name string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.removeLocked(name)
}

// Package guardedmap enforces the registry's locking invariant (DESIGN.md
// §13): in a struct that pairs a sync.Mutex/RWMutex with map fields, the
// mutex is there to guard the maps — every function that touches such a map
// field must take the mutex first. A bare map access races with concurrent
// writers, and unlike a torn counter the failure mode is a runtime throw
// ("concurrent map read and map write") that kills the whole process.
//
// The check is positional within one function body: a map-field access is
// guarded when a Lock or RLock call on one of the owning struct's mutex
// fields appears earlier in the same body. Functions whose name ends in
// "Locked" are exempt — that suffix is the repo's convention for "caller
// holds the lock". Struct literals (the make-the-map constructor shape) do
// not select the field and are naturally out of scope.
package guardedmap

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"instcmp/internal/lint"
)

// Analyzer is the guardedmap invariant checker.
var Analyzer = &lint.Analyzer{
	Name: "guardedmap",
	Doc:  "map fields of a mutex-bearing struct must be accessed with the mutex held",
	Run:  run,
}

func run(pass *lint.Pass) ([]lint.Diagnostic, error) {
	// Pass 1: find structs that pair a mutex with maps; record which field
	// vars are the guarded maps and which are their mutexes.
	guarded := map[*types.Var]bool{}
	mutexes := map[*types.Var]bool{}
	scopes := []*types.Scope{pass.Pkg.Scope()}
	for len(scopes) > 0 {
		sc := scopes[len(scopes)-1]
		scopes = scopes[:len(scopes)-1]
		for i := 0; i < sc.NumChildren(); i++ {
			scopes = append(scopes, sc.Child(i))
		}
		for _, name := range sc.Names() {
			tn, ok := sc.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			var mus, maps []*types.Var
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				if isMutex(f.Type()) {
					mus = append(mus, f)
				}
				if _, ok := f.Type().Underlying().(*types.Map); ok {
					maps = append(maps, f)
				}
			}
			if len(mus) == 0 || len(maps) == 0 {
				continue
			}
			for _, f := range mus {
				mutexes[f] = true
			}
			for _, f := range maps {
				guarded[f] = true
			}
		}
	}
	if len(guarded) == 0 {
		return nil, nil
	}
	// Pass 2: inside each function body, map-field accesses must follow a
	// Lock/RLock on one of the struct's mutexes.
	var diags []lint.Diagnostic
	check := func(name string, body *ast.BlockStmt) {
		if body == nil || strings.HasSuffix(name, "Locked") {
			return
		}
		firstLock := token.NoPos
		ast.Inspect(body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && isLockCall(pass, call, mutexes) {
				if !firstLock.IsValid() || call.Pos() < firstLock {
					firstLock = call.Pos()
				}
			}
			return true
		})
		ast.Inspect(body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			field, ok := pass.ObjectOf(sel.Sel).(*types.Var)
			if !ok || !guarded[field] {
				return true
			}
			if firstLock.IsValid() && firstLock < sel.Pos() {
				return true
			}
			diags = append(diags, lint.Diagnostic{
				Pos: sel.Pos(),
				Message: "map field " + field.Name() + " is guarded by the struct's mutex; " +
					"take Lock/RLock before touching it (or name the helper ...Locked)",
			})
			return true
		})
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if fd, ok := n.(*ast.FuncDecl); ok {
				check(fd.Name.Name, fd.Body)
				return false // literals inside share the decl's lock scope
			}
			return true
		})
	}
	return diags, nil
}

// isMutex reports whether t is sync.Mutex or sync.RWMutex (possibly via a
// pointer).
func isMutex(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// isLockCall reports whether the call is x.mu.Lock() or x.mu.RLock() on one
// of the tracked mutex fields.
func isLockCall(pass *lint.Pass, call *ast.CallExpr, mutexes map[*types.Var]bool) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
		return false
	}
	inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	field, ok := pass.ObjectOf(inner.Sel).(*types.Var)
	return ok && mutexes[field]
}

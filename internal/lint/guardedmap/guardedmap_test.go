package guardedmap_test

import (
	"testing"

	"instcmp/internal/lint/guardedmap"
	"instcmp/internal/lint/linttest"
)

func TestGuardedmap(t *testing.T) {
	linttest.Run(t, "testdata/fixture", guardedmap.Analyzer)
}

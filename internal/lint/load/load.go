// Package load parses and type-checks the module's packages for instlint.
// Package discovery shells out to `go list -json` (so build constraints and
// pattern expansion match the toolchain exactly). The load happens once per
// run: every analyzer of the suite fans out over the same *lint.Pass, so
// adding an analyzer costs its analysis, never another parse or type check.
//
// Stdlib imports resolve through compiled export data from the build cache
// (`go list -export -deps` names the files; the gc importer reads them),
// which skips re-type-checking the standard library from source — the
// dominant cost of a lint run. When export data is unavailable (cold or
// disabled build cache), the loader falls back to the source importer,
// which resolves from GOROOT/src — no network, no dependency on
// golang.org/x/tools either way.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"instcmp/internal/lint"
)

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Pass       *lint.Pass
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Imports    []string
}

// goList expands the patterns into the module's packages.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-json=ImportPath,Dir,Name,GoFiles,Imports"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var out []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		p := &listedPackage{}
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		out = append(out, p)
	}
	return out, nil
}

// chainImporter resolves module-local imports from the already-checked
// package set and everything else through the outside importer (export
// data when available, source otherwise).
type chainImporter struct {
	local map[string]*types.Package
	std   types.Importer
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := c.local[path]; ok {
		return p, nil
	}
	return c.std.Import(path)
}

// exportData maps every package in the patterns' transitive closure to its
// compiled export-data file via `go list -export -deps`. Packages without
// export data stay absent from the map — unsafe (special-cased before the
// lookup) and test-only module packages (never imported) — and an absent
// path a type check does reach surfaces as that import's error rather than
// a silent source-importer fallback: mixing export-data imports with
// source imports would materialize two distinct types.Package values for
// one path and break type identity.
func exportData(dir string, patterns []string) (map[string]string, error) {
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Export"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list -export: %v\n%s", err, stderr.String())
	}
	type exported struct {
		ImportPath string
		Export     string
	}
	out := map[string]string{}
	dec := json.NewDecoder(&stdout)
	for {
		p := &exported{}
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list -export: decoding output: %v", err)
		}
		if p.Export != "" {
			out[p.ImportPath] = p.Export
		}
	}
	return out, nil
}

// outsideImporter returns the importer for packages outside the module:
// the gc importer over build-cache export data when `go list -export` can
// provide it for the full dependency closure, else the source importer.
func outsideImporter(fset *token.FileSet, dir string, patterns []string) types.Importer {
	exports, err := exportData(dir, patterns)
	if err != nil {
		return importer.ForCompiler(fset, "source", nil)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// parseDir parses the named files of one directory into one package's
// syntax trees.
func parseDir(fset *token.FileSet, dir string, files []string) ([]*ast.File, error) {
	var out []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// Packages loads, parses, and type-checks the packages matched by the go
// list patterns, rooted at dir (the module root or any directory inside
// it). Only non-test files are analyzed: the enforced invariants live in
// engine code, and test files routinely violate them on purpose (fixtures,
// equality assertions on scores).
func Packages(dir string, patterns []string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	byPath := make(map[string]*listedPackage, len(listed))
	for _, p := range listed {
		byPath[p.ImportPath] = p
	}

	fset := token.NewFileSet()
	imp := &chainImporter{
		local: map[string]*types.Package{},
		std:   outsideImporter(fset, dir, patterns),
	}

	var out []*Package
	// check type-checks one listed package after its module-local imports,
	// in dependency order.
	checking := map[string]bool{}
	var check func(p *listedPackage) error
	check = func(p *listedPackage) error {
		if _, done := imp.local[p.ImportPath]; done || checking[p.ImportPath] {
			return nil
		}
		checking[p.ImportPath] = true
		for _, dep := range p.Imports {
			if d, ok := byPath[dep]; ok {
				if err := check(d); err != nil {
					return err
				}
			}
		}
		files, err := parseDir(fset, p.Dir, p.GoFiles)
		if err != nil {
			return err
		}
		info := newInfo()
		conf := types.Config{Importer: imp}
		pkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return fmt.Errorf("type-checking %s: %v", p.ImportPath, err)
		}
		imp.local[p.ImportPath] = pkg
		out = append(out, &Package{
			ImportPath: p.ImportPath,
			Dir:        p.Dir,
			Pass:       &lint.Pass{Fset: fset, Files: files, Pkg: pkg, Info: info},
		})
		return nil
	}
	for _, p := range listed {
		if err := check(p); err != nil {
			return nil, err
		}
	}
	// Dependency-order loading may emit packages out of listing order;
	// restore a stable, reader-friendly order.
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

// Dir loads a single directory as one package outside the module's package
// graph — the fixture loader behind linttest. Every .go file in the
// directory is part of the package; imports resolve from the standard
// library only, so fixtures are self-contained.
func Dir(dir string) (*lint.Pass, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("load: no .go files in %s", dir)
	}
	fset := token.NewFileSet()
	files, err := parseDir(fset, dir, names)
	if err != nil {
		return nil, err
	}
	info := newInfo()
	conf := types.Config{Importer: &chainImporter{
		local: map[string]*types.Package{},
		std:   fixtureImporter(fset, dir, files),
	}}
	pkg, err := conf.Check(files[0].Name.Name, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %s: %v", dir, err)
	}
	return &lint.Pass{Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

// fixtureImporter resolves a fixture's stdlib imports, preferring export
// data for the fixture's import list (fixtures are self-contained, so the
// list is exactly what the files declare).
func fixtureImporter(fset *token.FileSet, dir string, files []*ast.File) types.Importer {
	var deps []string
	seen := map[string]bool{}
	for _, f := range files {
		for _, im := range f.Imports {
			p, err := strconv.Unquote(im.Path.Value)
			if err != nil || seen[p] || p == "unsafe" {
				continue
			}
			seen[p] = true
			deps = append(deps, p)
		}
	}
	if len(deps) == 0 {
		return importer.ForCompiler(fset, "source", nil)
	}
	sort.Strings(deps)
	return outsideImporter(fset, dir, deps)
}

// Package lint is the spine of instlint, the repository's custom static-
// analysis suite (DESIGN.md §11). It defines the Analyzer/Pass/Diagnostic
// contract the per-invariant analyzers implement, mirroring the shape of
// golang.org/x/tools/go/analysis — the container this repo builds in has no
// module proxy access, so the framework is reimplemented on the standard
// library (go/ast + go/types) rather than vendored.
//
// Each analyzer machine-checks one invariant the engine's correctness or
// determinism rests on: bit-identical float scores across worker counts,
// order-insensitive map iteration in scoring paths, balanced Mark/Undo
// search-state discipline, context-poll coverage in scan loops, and
// atomic-only access to fields shared with sync/atomic.
//
// # Suppression directives
//
// A finding can be suppressed with a justified directive on the flagged
// line or the line directly above it:
//
//	//instlint:allow <analyzer> -- <justification>
//
// The justification is mandatory: a directive without one is itself
// reported as a finding, so every suppression documents why the invariant
// holds anyway.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one invariant checker. Run inspects the package in pass and
// returns its findings; the driver handles suppression directives, output,
// and exit status.
type Analyzer struct {
	// Name is the analyzer's identifier, used in output and in
	// //instlint:allow directives.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Run performs the analysis.
	Run func(*Pass) ([]Diagnostic, error)
}

// Pass is the analysis input for one package: its syntax, type information,
// and file set, shared by every analyzer that runs on the package.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// TypeOf returns the type of an expression, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Info.TypeOf(e)
}

// ObjectOf returns the object an identifier denotes (definition or use),
// or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	return p.Info.ObjectOf(id)
}

// Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	// Analyzer is filled in by the driver.
	Analyzer string
}

// directive is one parsed //instlint:allow comment.
type directive struct {
	line      int // line the comment sits on
	groupEnd  int // last line of the comment group the directive is part of
	analyzers []string
	justified bool
	pos       token.Pos
}

const directivePrefix = "//instlint:allow"

// parseDirectives extracts the //instlint:allow directives of a file.
func parseDirectives(fset *token.FileSet, f *ast.File) []directive {
	var out []directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, directivePrefix) {
				continue
			}
			rest := strings.TrimPrefix(text, directivePrefix)
			d := directive{
				line:     fset.Position(c.Pos()).Line,
				groupEnd: fset.Position(cg.End()).Line,
				pos:      c.Pos(),
			}
			names, justification, found := strings.Cut(rest, "--")
			d.justified = found && strings.TrimSpace(justification) != ""
			for _, name := range strings.Fields(names) {
				d.analyzers = append(d.analyzers, strings.TrimSuffix(name, ","))
			}
			out = append(out, d)
		}
	}
	return out
}

// Analyze runs the analyzers over the pass, applies suppression directives,
// and returns the surviving findings sorted by position. Malformed
// directives (no analyzer name, or a missing "-- justification") are
// reported under the pseudo-analyzer "directive".
func Analyze(pass *Pass, analyzers []*Analyzer) ([]Diagnostic, error) {
	// allowed[line] -> analyzer names suppressed on that line.
	allowed := map[int]map[string]bool{}
	var diags []Diagnostic
	for _, f := range pass.Files {
		for _, d := range parseDirectives(pass.Fset, f) {
			if len(d.analyzers) == 0 || !d.justified {
				diags = append(diags, Diagnostic{
					Pos:      d.pos,
					Analyzer: "directive",
					Message:  "malformed directive: want //instlint:allow <analyzer> -- <justification>",
				})
				continue
			}
			for _, name := range d.analyzers {
				// A directive shields its own line and the next — inline
				// and standalone-line-above placement — plus the line
				// after its whole comment group, so a directive written
				// anywhere inside a doc comment covers the declaration or
				// statement the comment documents, not just the comment
				// line that happens to follow it.
				for _, line := range []int{d.line, d.line + 1, d.groupEnd + 1} {
					if allowed[line] == nil {
						allowed[line] = map[string]bool{}
					}
					allowed[line][name] = true
				}
			}
		}
	}
	for _, a := range analyzers {
		found, err := a.Run(pass)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		for _, d := range found {
			d.Analyzer = a.Name
			line := pass.Fset.Position(d.Pos).Line
			if allowed[line][a.Name] {
				continue
			}
			diags = append(diags, d)
		}
	}
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// Package immutpub enforces publish-immutability (DESIGN.md §16): the
// engine's shared resident state — instcmp.Prepared, match.PreparedSide,
// model.CodedRelation, a published lakeindex.Index — is documented as
// immutable after construction, and the whole Prepare/Compare and
// sketch-index architecture leans on it: any number of goroutines compare,
// rank, and probe the same prepared state with no locks because nobody
// writes it. A single post-publish field write is a data race the race
// detector only catches on schedules the tests happen to produce; this
// analyzer refuses it module-wide at review time.
//
// The check is a field-write reachability approximation over access paths:
// an assignment (or ++/--, delete, mutating-method call) whose access path
// passes through a pointer to a published type is a violation unless the
// enclosing function is one of the type's registered constructors in its
// defining package. Writes through value copies (v := *p; v.X = …) mutate
// the copy, not published state, and pass. Legitimate lazy caches carry a
// justified //instlint:allow immutpub.
package immutpub

import (
	"go/ast"
	"go/types"
	"strings"

	"instcmp/internal/lint"
	"instcmp/internal/lint/flow"
)

// Target is one published type with its construction-phase allowlist.
type Target struct {
	// Pkg is the defining package's import path.
	Pkg string
	// Name is the type name.
	Name string
	// Ctors are the function and method names in the defining package
	// allowed to write fields reachable from the type: the constructors
	// and the helpers that run before the value is published.
	Ctors []string
}

// DefaultTargets are the published types of the engine. The allowlists
// name exactly the functions that run before a reference escapes.
var DefaultTargets = []Target{
	{Pkg: "instcmp", Name: "Prepared", Ctors: []string{"Prepare", "prepareOwned", "WithRelationName"}},
	{Pkg: "instcmp/internal/match", Name: "PreparedSide", Ctors: []string{"PrepareSide", "WithRelations"}},
	{Pkg: "instcmp/internal/model", Name: "CodedRelation", Ctors: []string{"Code", "Remap"}},
	{Pkg: "instcmp/internal/lakeindex", Name: "Index", Ctors: []string{"Build", "Read"}},
}

// mutatingPrefixes mark method names treated as mutators when called on a
// published value from outside its defining package (method bodies are not
// visible across packages, so the name is the signal).
var mutatingPrefixes = []string{
	"Set", "Add", "Remove", "Delete", "Reset", "Clear", "Insert", "Append", "Push", "Pop", "Store", "Put",
}

// Analyzer checks the engine's published types.
var Analyzer = New(DefaultTargets)

// New builds an immutpub analyzer over a target set; the fixture tests use
// it with fixture-local types.
func New(targets []Target) *lint.Analyzer {
	return &lint.Analyzer{
		Name: "immutpub",
		Doc: "published prepared/index state is immutable after construction; " +
			"no field writes or mutating methods outside the constructors",
		Run: func(pass *lint.Pass) ([]lint.Diagnostic, error) {
			return run(pass, targets)
		},
	}
}

func run(pass *lint.Pass, targets []Target) ([]lint.Diagnostic, error) {
	var diags []lint.Diagnostic
	flow.EachBody(pass, func(b flow.Body) {
		exempt := exemptions(pass, b, targets)
		for _, w := range flow.Writes(pass, b.Body) {
			if _, ok := w.Target.(*ast.Ident); ok {
				continue // rebinding a variable is not a field write
			}
			if t := pathTarget(pass, writeSteps(w.Target), targets); t != nil && !exempt[t.Name] {
				diags = append(diags, lint.Diagnostic{
					Pos: w.Pos,
					Message: "write to state reachable from published " + t.Pkg + "." + t.Name +
						"; published state is immutable — move this into its constructor " +
						"or justify an //instlint:allow immutpub",
				})
			}
		}
		flow.WalkSkipLits(b.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !hasMutatingName(sel.Sel.Name) {
				return true
			}
			fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
			if !ok {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil {
				return true // package function, not a method
			}
			if _, isPtr := sig.Recv().Type().(*types.Pointer); !isPtr {
				return true // value receiver cannot mutate the published state
			}
			if t := pathTarget(pass, flow.Steps(sel.X), targets); t != nil && !exempt[t.Name] {
				diags = append(diags, lint.Diagnostic{
					Pos: call.Pos(),
					Message: "call to pointer-receiver mutator " + sel.Sel.Name + " on published " +
						t.Pkg + "." + t.Name + "; published state is immutable — " +
						"construct a new value instead",
				})
			}
			return true
		})
	})
	return diags, nil
}

// exemptions reports which targets the enclosing function may write: its
// name (or its declaration's name, for literals inside a constructor) is on
// the target's ctor allowlist and the pass is the defining package.
func exemptions(pass *lint.Pass, b flow.Body, targets []Target) map[string]bool {
	name := b.Name
	if name == "" && b.Decl != nil {
		name = b.Decl.Name.Name
	}
	out := map[string]bool{}
	for _, t := range targets {
		if pass.Pkg.Path() != t.Pkg {
			continue
		}
		for _, ctor := range t.Ctors {
			if name == ctor {
				out[t.Name] = true
				break
			}
		}
	}
	return out
}

// writeSteps returns the access-path steps whose pointees a write to e can
// mutate: every step but the last. Writing the final step itself only
// rebinds a reference — a slice slot or map entry of type *T holds a
// pointer, so codes[i] = in.Code(rel) stores into the local slice, never
// into a CodedRelation. An explicit dereference target (*p = v) overwrites
// the pointee and keeps the full path.
func writeSteps(e ast.Expr) []ast.Expr {
	steps := flow.Steps(e)
	if isDeref(e) {
		return steps
	}
	return steps[:len(steps)-1]
}

// isDeref reports whether the expression is a dereference (*p, possibly
// parenthesized).
func isDeref(e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			return true
		default:
			return false
		}
	}
}

// pathTarget reports the published type the access-path steps pass through
// via a pointer step — p.Code[i].Masks roots at *PreparedSide and traverses
// *CodedRelation; either match publishes the write — or nil.
func pathTarget(pass *lint.Pass, steps []ast.Expr, targets []Target) *Target {
	for _, step := range steps {
		t := pass.TypeOf(step)
		if t == nil {
			continue
		}
		ptr, ok := t.(*types.Pointer)
		if !ok {
			continue
		}
		for i := range targets {
			if flow.IsNamed(ptr, targets[i].Pkg, targets[i].Name) {
				return &targets[i]
			}
		}
	}
	return nil
}

func hasMutatingName(name string) bool {
	for _, p := range mutatingPrefixes {
		if strings.HasPrefix(name, p) {
			// SetupX / Additional / Popular should not trip the prefix:
			// require the next rune, if any, to be uppercase or a digit.
			rest := name[len(p):]
			if rest == "" || rest[0] >= 'A' && rest[0] <= 'Z' || rest[0] >= '0' && rest[0] <= '9' {
				return true
			}
		}
	}
	return false
}

// Package fixture exercises the immutpub analyzer against a fixture-local
// published type (the test registers Box with constructor NewBox, mirroring
// how the real analyzer registers Prepared/PreparedSide/CodedRelation/
// Index against their constructors).
package fixture

// Inner is state reachable from a published Box.
type Inner struct {
	Rows  []int
	ByKey map[string]int
}

// Box is the fixture's published type: immutable after NewBox returns.
type Box struct {
	Name   string
	Count  int
	Inner  *Inner
	Labels map[string]string
}

// NewBox is the registered constructor: its writes are construction.
func NewBox(name string) *Box {
	b := &Box{Name: name, Labels: map[string]string{}}
	b.Count = 1
	b.Inner = &Inner{ByKey: map[string]int{}}
	b.Inner.Rows = append(b.Inner.Rows, 0)
	b.Labels["origin"] = name
	// Construction may use helpers via closures; the exemption covers them.
	fill := func() { b.Inner.ByKey[name] = 1 }
	fill()
	return b
}

// mutateField writes a field after publish.
func mutateField(b *Box) {
	b.Count = 2 // want "immutable"
}

// mutateDeep writes through the reachable graph.
func mutateDeep(b *Box) {
	b.Inner.Rows[0] = 7 // want "immutable"
}

// mutateMap writes and deletes through a published map.
func mutateMap(b *Box) {
	b.Labels["k"] = "v"        // want "immutable"
	delete(b.Labels, "origin") // want "immutable"
}

// mutateIncrement bumps a counter in place.
func mutateIncrement(b *Box) {
	b.Count++ // want "immutable"
}

// mutateAppend grows a reachable slice.
func mutateAppend(b *Box) {
	b.Inner.Rows = append(b.Inner.Rows, 1) // want "immutable"
}

// SetName is a pointer-receiver mutator; calling it on published state is
// flagged at the call site.
func (b *Box) SetName(name string) {
	b.Name = name // want "immutable"
}

// callMutator takes a mutating method on a published value.
func callMutator(b *Box) {
	b.SetName("x") // want "mutator"
}

// readOnly only reads; reads are free.
func readOnly(b *Box) int {
	n := b.Count
	for _, r := range b.Inner.Rows {
		n += r
	}
	return n
}

// copyThenWrite mutates a value copy — the copy is private, not the
// published state.
func copyThenWrite(b *Box) Box {
	v := *b
	v.Count = 9
	v.Name = "copy"
	return v
}

// lazyCache is the justified escape hatch for legitimate post-publish
// writes.
func lazyCache(b *Box) {
	//instlint:allow immutpub -- fixture lazy cache: idempotent fill, race-benign by design
	b.Labels["cache"] = "warm"
}

// storeRef stores a published reference into a local slice slot: the slot
// holds a pointer, so this rebinds the slot, never the pointee.
func storeRef(b *Box, out []*Box) {
	out[0] = b
}

// derefWrite overwrites the whole pointee through an explicit dereference.
func derefWrite(b *Box) {
	*b = Box{} // want "immutable"
}

// rebind only rebinds the local variable, not published state.
func rebind(b *Box) *Box {
	b = NewBox("fresh")
	return b
}

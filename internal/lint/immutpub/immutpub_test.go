package immutpub

import (
	"testing"

	"instcmp/internal/lint/linttest"
)

func TestImmutPub(t *testing.T) {
	a := New([]Target{
		{Pkg: "fixture", Name: "Box", Ctors: []string{"NewBox"}},
	})
	linttest.Run(t, "testdata/fixture", a)
}

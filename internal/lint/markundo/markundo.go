// Package markundo enforces the search-state discipline of the exact
// engine (DESIGN.md §11): a checkpoint taken with Env.Mark() must be rolled
// back with Undo on every path that leaves the enclosing function after the
// environment has been mutated under it. The branch-and-bound search leans
// on this invariant everywhere — a leaked mark means a leaked tuple pair
// and unifier merges, which corrupts every score evaluated afterwards.
//
// The analyzer recognizes any "markable" type structurally: a type with a
// Mark() method whose result feeds an Undo (or Rollback) method of the same
// type — match.Env and unify.Unifier both qualify, as do fixture doubles.
// It then walks each function with a branch-sensitive interpreter:
//
//   - m := env.Mark() begins tracking m as open.
//   - A mutating call on (or passing) env turns m dirty. Mutators used
//     directly as an if condition get polarity: `if env.TryAddPair(p)`
//     dirties only the then branch, `if !env.TryAddPair(p)` only the
//     fall-through — which is exactly why the engine's
//     mark/try/undo-on-success idiom is sound and accepted.
//   - env.Undo(m) (or Rollback, or a deferred Undo) closes m.
//   - A return, a loop-body exit, or falling off the function end while
//     some mark is dirty is reported.
//
// Marks that escape (stored, passed to other functions, captured by
// closures, returned) stop being tracked: responsibility moved elsewhere.
package markundo

import (
	"go/ast"
	"go/token"
	"go/types"

	"instcmp/internal/lint"
)

// Analyzer is the markundo invariant checker.
var Analyzer = &lint.Analyzer{
	Name: "markundo",
	Doc:  "every Env.Mark() must reach an Undo/Rollback on all mutated exit paths of the enclosing function",
	Run:  run,
}

// undoNames are the methods that close a mark.
var undoNames = map[string]bool{"Undo": true, "Rollback": true}

// readonlyNames are Env methods known not to mutate match state; calls to
// them never dirty an open mark. Everything not listed is treated as a
// mutator — staying conservative keeps the check sound for new methods.
var readonlyNames = map[string]bool{
	"Mark": true, "Pairs": true, "NumPairs": true, "FlatL": true, "FlatR": true,
	"LeftRow": true, "RightRow": true, "LeftMask": true, "RightMask": true,
	"LeftImage": true, "RightImage": true, "LeftDegree": true, "RightDegree": true,
	"LeftTuple": true, "RightTuple": true, "NumLeftTuples": true, "NumRightTuples": true,
	"Has": true, "ModeAllows": true, "CheckTotality": true, "IsComplete": true,
	"ValueMapping": true, "Clone": true, "Stats": true, "WouldAccept": true,
}

type markState int

const (
	stOpen  markState = iota // mark taken, environment not mutated under it
	stDirty                  // environment mutated under the open mark
)

// markInfo tracks one live mark variable.
type markInfo struct {
	env     string // ExprString of the receiver the mark was taken from
	state   markState
	declPos token.Pos
}

// state maps tracked mark variables to their status. Copied at branches.
type state map[types.Object]*markInfo

func (s state) clone() state {
	out := make(state, len(s))
	for k, v := range s {
		c := *v
		out[k] = &c
	}
	return out
}

// merge folds another branch's exit state in, keeping the worse status per
// variable (a variable closed or never declared in one branch but dirty in
// the other must stay dirty).
func (s state) merge(o state) {
	for k, v := range o {
		cur, ok := s[k]
		if !ok {
			c := *v
			s[k] = &c
			continue
		}
		if v.state > cur.state {
			cur.state = v.state
		}
	}
}

type checker struct {
	pass  *lint.Pass
	diags []lint.Diagnostic
	// markable caches the structural Mark/Undo detection per type.
	markable map[types.Type]bool
}

func run(pass *lint.Pass) ([]lint.Diagnostic, error) {
	c := &checker{pass: pass, markable: map[types.Type]bool{}}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					c.checkFunc(fn.Body)
				}
			case *ast.FuncLit:
				c.checkFunc(fn.Body)
			}
			return true
		})
	}
	return c.diags, nil
}

func (c *checker) report(pos token.Pos, msg string) {
	c.diags = append(c.diags, lint.Diagnostic{Pos: pos, Message: msg})
}

// checkFunc interprets one function body. Nested FuncLits are skipped here
// (run visits them as their own functions); marks they capture are treated
// as escaping.
func (c *checker) checkFunc(body *ast.BlockStmt) {
	st := state{}
	terminated := c.walkStmts(body.List, st)
	if !terminated {
		for obj, mi := range st {
			if mi.state == stDirty {
				c.report(mi.declPos, "mark "+obj.Name()+" is not undone before the function exits; "+
					"call "+mi.env+".Undo("+obj.Name()+") on every mutated path")
			}
		}
	}
}

// walkStmts interprets a statement list, mutating st to the fall-through
// state. It reports true when control cannot fall off the end of the list.
func (c *checker) walkStmts(list []ast.Stmt, st state) bool {
	for _, s := range list {
		if c.walkStmt(s, st) {
			return true
		}
	}
	return false
}

func (c *checker) walkStmt(s ast.Stmt, st state) (terminates bool) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		c.walkAssign(s, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						if !c.trackIfMark(name, vs.Values[i], st) {
							c.exprEffects(vs.Values[i], st)
						}
					}
				}
			}
		}
	case *ast.ExprStmt:
		if isPanic(s.X) {
			c.exprEffects(s.X, st)
			return true
		}
		c.exprEffects(s.X, st)
	case *ast.DeferStmt:
		// A deferred Undo covers every exit path at once.
		for _, obj := range c.undoTargets(s.Call, st) {
			delete(st, obj)
		}
		c.escapeInto(s.Call, st)
	case *ast.GoStmt:
		c.escapeInto(s.Call, st)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.exprEffects(r, st)
		}
		for obj, mi := range st {
			if mi.state == stDirty {
				c.report(s.Return, "return leaks mutations made under mark "+obj.Name()+
					"; call "+mi.env+".Undo("+obj.Name()+") before returning")
			}
		}
		return true
	case *ast.IfStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, st)
		}
		thenSt, elseSt := st.clone(), st.clone()
		c.condEffects(s.Cond, st, thenSt, elseSt)
		thenTerm := c.walkStmts(s.Body.List, thenSt)
		elseTerm := false
		if s.Else != nil {
			elseTerm = c.walkStmt(s.Else, elseSt)
		}
		clear(st)
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			st.merge(elseSt)
		case elseTerm:
			st.merge(thenSt)
		default:
			st.merge(thenSt)
			st.merge(elseSt)
		}
	case *ast.BlockStmt:
		return c.walkStmts(s.List, st)
	case *ast.ForStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, st)
		}
		if s.Cond != nil {
			c.exprEffects(s.Cond, st)
		}
		bodySt := st.clone()
		c.walkStmts(s.Body.List, bodySt)
		if s.Post != nil {
			c.walkStmt(s.Post, bodySt)
		}
		c.loopExit(s.For, st, bodySt)
	case *ast.RangeStmt:
		c.exprEffects(s.X, st)
		bodySt := st.clone()
		c.walkStmts(s.Body.List, bodySt)
		c.loopExit(s.For, st, bodySt)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		c.walkCases(s, st)
	case *ast.LabeledStmt:
		return c.walkStmt(s.Stmt, st)
	case *ast.BranchStmt:
		// break/continue/goto leave the list; leak detection for the loop
		// body happens at loopExit, so no per-branch check here.
		return true
	case *ast.IncDecStmt:
		c.exprEffects(s.X, st)
	case *ast.SendStmt:
		c.exprEffects(s.Chan, st)
		c.exprEffects(s.Value, st)
	}
	return false
}

// loopExit folds a loop body's exit state into the surrounding state and
// reports marks declared inside the body that end an iteration dirty: the
// next iteration (or the loop exit) would run with leaked state.
func (c *checker) loopExit(loopPos token.Pos, st, bodySt state) {
	for obj, mi := range bodySt {
		if _, outer := st[obj]; !outer && mi.state == stDirty {
			c.report(loopPos, "mark "+obj.Name()+" does not reach "+mi.env+
				".Undo on every path through the loop body")
			delete(bodySt, obj)
		}
	}
	st.merge(bodySt)
}

// walkCases handles switch/type-switch/select uniformly: every clause runs
// on a copy of the entry state and non-terminating clauses merge back, as
// does the implicit no-match path when there is no default clause.
func (c *checker) walkCases(s ast.Stmt, st state) {
	var body *ast.BlockStmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, st)
		}
		if s.Tag != nil {
			c.exprEffects(s.Tag, st)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, st)
		}
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	merged := state{}
	for _, cl := range body.List {
		var stmts []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			stmts = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			}
			stmts = cl.Body
		}
		clSt := st.clone()
		if !c.walkStmts(stmts, clSt) {
			merged.merge(clSt)
		}
	}
	if !hasDefault {
		merged.merge(st)
	}
	clear(st)
	st.merge(merged)
}

// walkAssign tracks new marks and applies expression effects.
func (c *checker) walkAssign(s *ast.AssignStmt, st state) {
	justTracked := map[ast.Expr]bool{}
	for i, rhs := range s.Rhs {
		var lhs ast.Expr
		if len(s.Lhs) == len(s.Rhs) {
			lhs = s.Lhs[i]
		}
		if id, ok := lhs.(*ast.Ident); ok && s.Tok == token.DEFINE && c.trackIfMark(id, rhs, st) {
			justTracked[lhs] = true
			continue
		}
		c.exprEffects(rhs, st)
	}
	// Reassigning or shadowing a tracked variable ends its tracking.
	for _, lhs := range s.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && !justTracked[lhs] {
			if obj := c.pass.ObjectOf(id); obj != nil {
				delete(st, obj)
			}
		}
	}
}

// trackIfMark begins tracking lhs when rhs is a Mark() call on a markable
// receiver, reporting whether it did.
func (c *checker) trackIfMark(lhs *ast.Ident, rhs ast.Expr, st state) bool {
	call, ok := rhs.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Mark" || len(call.Args) != 0 {
		return false
	}
	if !c.isMarkable(c.pass.TypeOf(sel.X)) {
		return false
	}
	if lhs.Name == "_" {
		return true
	}
	obj := c.pass.ObjectOf(lhs)
	if obj == nil {
		return false
	}
	st[obj] = &markInfo{env: types.ExprString(sel.X), state: stOpen, declPos: lhs.Pos()}
	return true
}

// condEffects applies an if condition's effects with mutator polarity: a
// bare mutator call dirties only the then branch, a negated one only the
// else branch; a mutator buried in a compound condition dirties both.
func (c *checker) condEffects(cond ast.Expr, st, thenSt, elseSt state) {
	if env, ok := c.mutatorCall(cond); ok {
		dirtyEnv(thenSt, env)
		return
	}
	if neg, ok := cond.(*ast.UnaryExpr); ok && neg.Op == token.NOT {
		if env, ok := c.mutatorCall(neg.X); ok {
			dirtyEnv(elseSt, env)
			return
		}
	}
	// Compound (or effect-free) condition: fall back to plain effects on
	// every branch state.
	for _, s := range []state{st, thenSt, elseSt} {
		c.exprEffects(cond, s)
	}
}

// mutatorCall reports whether the expression is exactly one mutating call
// on a markable receiver, returning the receiver's rendering.
func (c *checker) mutatorCall(e ast.Expr) (string, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if !c.isMarkable(c.pass.TypeOf(sel.X)) {
		return "", false
	}
	name := sel.Sel.Name
	if readonlyNames[name] || undoNames[name] {
		return "", false
	}
	return types.ExprString(sel.X), true
}

// exprEffects applies the mark-relevant effects of evaluating an
// expression: mutator calls dirty matching open marks, Undo calls close
// them, and any other use of a tracked mark variable ends its tracking
// (the mark escaped).
func (c *checker) exprEffects(e ast.Expr, st state) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Closures are analyzed as their own functions; captured
			// marks escape.
			c.escapeIdents(n.Body, st)
			return false
		case *ast.CallExpr:
			c.callEffects(n, st)
		case *ast.Ident:
			// A bare use of a tracked mark outside Undo argument position
			// (handled in callEffects before descending here) means the
			// mark escaped: stored, compared, or passed along.
			if obj := c.pass.ObjectOf(n); obj != nil {
				delete(st, obj)
			}
		}
		return true
	})
}

// callEffects applies one call's effects and removes Undo-argument
// identifiers from escape consideration by closing them first.
func (c *checker) callEffects(call *ast.CallExpr, st state) {
	for _, obj := range c.undoTargets(call, st) {
		delete(st, obj)
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && c.isMarkable(c.pass.TypeOf(sel.X)) {
		name := sel.Sel.Name
		if !readonlyNames[name] && !undoNames[name] {
			dirtyEnv(st, types.ExprString(sel.X))
		}
	}
	// Passing the environment itself into any call may mutate it
	// (signature.RunEnvContext(ctx, env, ...) does exactly that).
	for _, arg := range call.Args {
		if c.isMarkable(c.pass.TypeOf(arg)) {
			dirtyEnv(st, types.ExprString(arg))
		}
	}
}

// undoTargets returns the tracked marks closed by this call if it is an
// Undo/Rollback on a markable receiver.
func (c *checker) undoTargets(call *ast.CallExpr, st state) []types.Object {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !undoNames[sel.Sel.Name] || !c.isMarkable(c.pass.TypeOf(sel.X)) {
		return nil
	}
	var out []types.Object
	for _, arg := range call.Args {
		if id, ok := arg.(*ast.Ident); ok {
			if obj := c.pass.ObjectOf(id); obj != nil {
				if _, tracked := st[obj]; tracked {
					out = append(out, obj)
				}
			}
		}
	}
	return out
}

// escapeInto ends tracking for marks referenced anywhere under the node.
func (c *checker) escapeInto(call *ast.CallExpr, st state) {
	c.escapeIdents(call, st)
}

func (c *checker) escapeIdents(n ast.Node, st state) {
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := c.pass.ObjectOf(id); obj != nil {
				delete(st, obj)
			}
		}
		return true
	})
}

// dirtyEnv marks every open mark taken from the given receiver rendering
// as mutated.
func dirtyEnv(st state, env string) {
	for _, mi := range st {
		if mi.env == env {
			mi.state = stDirty
		}
	}
}

// isMarkable reports whether t (or *t) has a Mark() method whose result
// type is the parameter of an Undo or Rollback method — the structural
// signature of the engine's checkpoint/rollback protocol.
func (c *checker) isMarkable(t types.Type) bool {
	if t == nil {
		return false
	}
	if v, ok := c.markable[t]; ok {
		return v
	}
	c.markable[t] = false // cut recursion
	ms := types.NewMethodSet(t)
	if _, isPtr := t.Underlying().(*types.Pointer); !isPtr {
		ms = types.NewMethodSet(types.NewPointer(t))
	}
	var markResult types.Type
	if m := lookupMethod(ms, "Mark"); m != nil {
		sig := m.Type().(*types.Signature)
		if sig.Params().Len() == 0 && sig.Results().Len() == 1 {
			markResult = sig.Results().At(0).Type()
		}
	}
	ok := false
	if markResult != nil {
		for name := range undoNames {
			if u := lookupMethod(ms, name); u != nil {
				sig := u.Type().(*types.Signature)
				if sig.Params().Len() == 1 && types.Identical(sig.Params().At(0).Type(), markResult) {
					ok = true
					break
				}
			}
		}
	}
	c.markable[t] = ok
	return ok
}

func lookupMethod(ms *types.MethodSet, name string) types.Object {
	for i := 0; i < ms.Len(); i++ {
		if m := ms.At(i); m.Obj().Name() == name {
			return m.Obj()
		}
	}
	return nil
}

func isPanic(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

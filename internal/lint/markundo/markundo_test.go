package markundo_test

import (
	"testing"

	"instcmp/internal/lint/linttest"
	"instcmp/internal/lint/markundo"
)

func TestMarkundo(t *testing.T) {
	linttest.Run(t, "testdata/fixture", markundo.Analyzer)
}

// Package fixture seeds markundo violations and the engine's legal
// checkpoint/rollback idioms against a structural double of match.Env.
package fixture

// Mark is a checkpoint token, mirroring match.Mark.
type Mark struct{ pairs, trail int }

// Env is a structural double of match.Env: Mark/Undo plus one boolean
// mutator and one readonly accessor.
type Env struct {
	pairs []int
	trail []int
}

func (e *Env) Mark() Mark                { return Mark{len(e.pairs), len(e.trail)} }
func (e *Env) Undo(m Mark)               { e.pairs = e.pairs[:m.pairs]; e.trail = e.trail[:m.trail] }
func (e *Env) TryAddPair(p int) bool     { e.pairs = append(e.pairs, p); return p >= 0 }
func (e *Env) Add(p int)                 { e.pairs = append(e.pairs, p) }
func (e *Env) Pairs() []int              { return e.pairs }
func (e *Env) WouldAccept(p int) bool    { return p >= 0 }
func consume(e *Env, m Mark) (int, Mark) { return len(e.pairs), m }

// earlyReturnLeak is the satellite-required seed: the success path returns
// with the environment still mutated under m.
func earlyReturnLeak(e *Env, p int) bool {
	m := e.Mark()
	if e.TryAddPair(p) {
		return true // want "return leaks mutations made under mark m"
	}
	e.Undo(m)
	return false
}

// fallOffEndLeak rolls back on one branch only and falls off the end
// dirty on the other.
func fallOffEndLeak(e *Env, p int) {
	m := e.Mark() // want "mark m is not undone before the function exits"
	e.Add(p)
	if p < 0 {
		e.Undo(m)
	}
}

// loopIterationLeak re-marks every iteration but only undoes on one branch.
func loopIterationLeak(e *Env, ps []int) {
	for _, p := range ps { // want "mark m does not reach e.Undo on every path"
		m := e.Mark()
		if e.TryAddPair(p) {
			e.Undo(m)
		} else {
			e.Add(-p)
		}
	}
}

// conditionalUndo is the engine's core idiom: TryAddPair mutates only when
// it returns true, so Undo is needed only inside the success branch.
func conditionalUndo(e *Env, p int) {
	m := e.Mark()
	if e.TryAddPair(p) {
		e.Add(p)
		e.Undo(m)
	}
}

// negatedEarlyReturn is the other half of the idiom: a false TryAddPair
// leaves the environment untouched, so the early return is clean.
func negatedEarlyReturn(e *Env, p int) bool {
	m := e.Mark()
	if !e.TryAddPair(p) {
		return false
	}
	e.Add(p)
	e.Undo(m)
	return true
}

// deferredUndo covers every exit path with one deferred rollback.
func deferredUndo(e *Env, ps []int) int {
	m := e.Mark()
	defer e.Undo(m)
	n := 0
	for _, p := range ps {
		if !e.TryAddPair(p) {
			return n
		}
		n++
	}
	return n
}

// readonlyOnly never mutates, so the mark can be dropped without Undo.
func readonlyOnly(e *Env, p int) int {
	_ = e.Mark()
	if e.WouldAccept(p) {
		return len(e.Pairs())
	}
	return 0
}

// escapedMark hands the mark to a helper; responsibility moves with it.
func escapedMark(e *Env, p int) int {
	m := e.Mark()
	e.Add(p)
	n, _ := consume(e, m)
	return n
}

// allowedLeak shows the escape hatch for deliberate state hand-off.
func allowedLeak(e *Env, p int) bool {
	m := e.Mark()
	if e.TryAddPair(p) {
		//instlint:allow markundo -- caller rolls back via the mark it passed in
		return true
	}
	e.Undo(m)
	return false
}

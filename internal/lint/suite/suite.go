// Package suite wires the instlint analyzers to the packages whose
// invariants they enforce. Scoping lives here, not in the analyzers:
// each analyzer states a rule; the suite states where the rule is law
// (DESIGN.md §11 maps each entry to the PR that introduced its invariant).
package suite

import (
	"strings"

	"instcmp/internal/lint"
	"instcmp/internal/lint/atomicfield"
	"instcmp/internal/lint/ctxpoll"
	"instcmp/internal/lint/floatscore"
	"instcmp/internal/lint/guardedmap"
	"instcmp/internal/lint/immutpub"
	"instcmp/internal/lint/maporder"
	"instcmp/internal/lint/markundo"
	"instcmp/internal/lint/nondet"
	"instcmp/internal/lint/wgdiscipline"
)

// Scoped pairs an analyzer with the import-path suffixes it applies to.
// A nil Paths means every package.
type Scoped struct {
	Analyzer *lint.Analyzer
	Paths    []string
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []Scoped {
	return []Scoped{
		// Score comparison discipline: everywhere scores flow.
		{floatscore.Analyzer, []string{
			"internal/score", "internal/exact", "internal/signature",
			"internal/lake", "internal/compat", "internal/match",
		}},
		// Determinism hot paths: scoring, search, signatures, compat
		// closure, lake ranking, the sketch index (bucket probes and
		// widened scans must not depend on map order), and schema-mapping
		// discovery (profiles, fast-path fixed point, assignment input).
		{maporder.Analyzer, []string{
			"internal/score", "internal/exact", "internal/signature",
			"internal/compat", "internal/lake", "internal/lakeindex",
			"internal/schemamap",
		}},
		// Mark/Undo trail discipline: the branch-and-bound search.
		{markundo.Analyzer, []string{"internal/exact"}},
		// Cancellation latency and context reach: the long-running scan
		// paths, plus the server (a request's ctx must reach the engine).
		{ctxpoll.Analyzer, []string{
			"internal/exact", "internal/signature", "internal/lake",
			"internal/serve",
		}},
		// Nondeterminism sources (clock, PRNG, unsorted key collection,
		// multi-ready selects, arrival-order folds): the packages whose
		// outputs the regress goldens pin bit-identical.
		{nondet.Analyzer, []string{
			"internal/score", "internal/exact", "internal/signature",
			"internal/lake", "internal/lakeindex", "internal/schemamap",
			"internal/match",
		}},
		// Publish-immutability of prepared/index state: module-wide, so a
		// caller in cmd/ or serve cannot mutate what the engine published.
		{immutpub.Analyzer, nil},
		// Worker-pool hygiene: module-wide.
		{wgdiscipline.Analyzer, nil},
		// Atomicity consistency: module-wide.
		{atomicfield.Analyzer, nil},
		// Mutex-guarded maps (the serve registry's invariant): module-wide.
		{guardedmap.Analyzer, nil},
	}
}

// For returns the analyzers that apply to a package import path.
func For(importPath string) []*lint.Analyzer {
	var out []*lint.Analyzer
	for _, s := range Analyzers() {
		if s.Paths == nil {
			out = append(out, s.Analyzer)
			continue
		}
		for _, p := range s.Paths {
			if importPath == p || strings.HasSuffix(importPath, "/"+p) {
				out = append(out, s.Analyzer)
				break
			}
		}
	}
	return out
}

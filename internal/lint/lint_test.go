package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parse builds a minimal Pass over one source string. The fake analyzers in
// this file work on syntax alone, so no type information is needed.
func parse(t *testing.T, src string) *Pass {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "directive.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing test source: %v", err)
	}
	return &Pass{Fset: fset, Files: []*ast.File{f}}
}

// flagAssignments is a fake analyzer flagging every assignment statement,
// so the tests can place findings on chosen lines.
var flagAssignments = &Analyzer{
	Name: "fake",
	Doc:  "flags every assignment",
	Run: func(pass *Pass) ([]Diagnostic, error) {
		var out []Diagnostic
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if as, ok := n.(*ast.AssignStmt); ok {
					out = append(out, Diagnostic{Pos: as.Pos(), Message: "assignment"})
				}
				return true
			})
		}
		return out, nil
	},
}

// TestDirectivePlacement pins the placements an //instlint:allow directive
// must honor: inline on the flagged line, on the standalone line directly
// above a flagged statement inside a block, and anywhere inside a doc
// comment whose declaration (or commented statement) is flagged — including
// as the first line of a multi-line doc comment, where the directive's own
// line is not adjacent to the flagged one.
func TestDirectivePlacement(t *testing.T) {
	src := `package p

func covered() {
	x := 1 //instlint:allow fake -- inline placement
	//instlint:allow fake -- line directly above, inside a block
	y := 2
	println(x, y)
}

//instlint:allow fake -- first line of a doc comment
// docComment's assignment below is still covered: the directive shields
// the line after its whole comment group, not just its own next line.
var z = 3

func uncovered() {
	w := 4
	println(w)
}
`
	pass := parse(t, src)
	diags, err := Analyze(pass, []*Analyzer{flagAssignments})
	if err != nil {
		t.Fatal(err)
	}
	// var z = 3 is a GenDecl, not an AssignStmt, so only the w := 4 finding
	// may survive; re-shape the doc-comment case as an assignment too.
	for _, d := range diags {
		pos := pass.Fset.Position(d.Pos)
		if !strings.Contains(srcLine(src, pos.Line), "w := 4") {
			t.Errorf("finding on line %d survived a directive that should cover it: %s", pos.Line, d.Message)
		}
	}
	if len(diags) != 1 {
		t.Fatalf("want exactly the uncovered finding to survive, got %d: %v", len(diags), diags)
	}
}

// TestDirectiveDocCommentGroup pins the doc-comment group case against a
// statement-level finding: a directive on the FIRST line of a multi-line
// comment block directly above a flagged statement inside a function body.
func TestDirectiveDocCommentGroup(t *testing.T) {
	src := `package p

func f() {
	//instlint:allow fake -- leading line of the comment block
	// explaining why the invariant holds here; the flagged statement
	// follows the block, two lines below the directive itself.
	x := 1
	println(x)
}
`
	pass := parse(t, src)
	diags, err := Analyze(pass, []*Analyzer{flagAssignments})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		pos := pass.Fset.Position(diags[0].Pos)
		t.Fatalf("directive at the head of the comment block was not honored; finding survived at line %d", pos.Line)
	}
}

// TestDirectiveMalformed keeps the malformed-directive finding intact: a
// directive without a justification is itself a finding, wherever placed.
func TestDirectiveMalformed(t *testing.T) {
	src := `package p

//instlint:allow fake
var x = 1
`
	pass := parse(t, src)
	diags, err := Analyze(pass, []*Analyzer{})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Analyzer != "directive" {
		t.Fatalf("want one malformed-directive finding, got %v", diags)
	}
}

// srcLine returns the 1-indexed line of src.
func srcLine(src string, n int) string {
	lines := strings.Split(src, "\n")
	if n < 1 || n > len(lines) {
		return ""
	}
	return lines[n-1]
}

package ctxpoll_test

import (
	"testing"

	"instcmp/internal/lint/ctxpoll"
	"instcmp/internal/lint/linttest"
)

func TestCtxpoll(t *testing.T) {
	linttest.Run(t, "testdata/fixture", ctxpoll.Analyzer)
}

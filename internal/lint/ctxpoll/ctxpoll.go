// Package ctxpoll enforces the engine's cancellation latency contract
// (DESIGN.md §11): long-running scan loops in the search and signature
// paths must poll for cancellation, or a context cancel can go unanswered
// for the rest of a multi-second pass.
//
// "Long-running" is approximated structurally: an outermost loop is
// suspicious when its per-iteration work contains another loop — directly
// nested, or via a call to a package-local function that itself loops
// (computed as a fixed point). A suspicious loop must contain a poll:
//
//   - ctx.Err() or ctx.Done() on a context.Context,
//   - .Load() on a stop/cancel/done/abort-named atomic flag, or
//   - a call to a package-local function that (transitively) polls.
//
// Flat loops are exempt — their latency is one iteration's work. Function
// literals are analyzed as functions of their own (goroutine bodies run on
// their own schedule), not as part of the enclosing loop.
//
// A second rule guards the other end of the contract: polling is useless if
// the request's context never reaches the engine. In a function that holds
// a request-scoped context — a context.Context parameter, or an
// *http.Request parameter (r.Context()) — the analyzer flags
//
//   - context.Background() / context.TODO(), which mint a fresh
//     uncancelable context while the real one is in scope, and
//   - calls to a function F whose package also exports FContext and F
//     itself takes no context: the ctx-less wrapper silently substitutes
//     context.Background().
//
// Ctx-less wrappers themselves (func Run(...) { return RunContext(
// context.Background(), ...) }) carry no context parameter and stay exempt
// — that is the one place Background belongs.
package ctxpoll

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"instcmp/internal/lint"
)

// Analyzer is the ctxpoll invariant checker.
var Analyzer = &lint.Analyzer{
	Name: "ctxpoll",
	Doc: "nested scan loops must poll for cancellation, and in-scope request " +
		"contexts must reach the engine (no Background/TODO or ctx-less wrappers)",
	Run: run,
}

// stopNames are substrings identifying an atomic cancellation flag.
var stopNames = []string{"stop", "cancel", "done", "abort"}

type analysis struct {
	pass    *lint.Pass
	decls   map[*types.Func]*ast.FuncDecl
	polling map[*types.Func]bool
	loopy   map[*types.Func]bool
	diags   []lint.Diagnostic
}

func run(pass *lint.Pass) ([]lint.Diagnostic, error) {
	a := &analysis{
		pass:    pass,
		decls:   map[*types.Func]*ast.FuncDecl{},
		polling: map[*types.Func]bool{},
		loopy:   map[*types.Func]bool{},
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				a.decls[obj] = fd
			}
		}
	}
	a.classify()
	for _, f := range pass.Files {
		// Keep descending after a FuncDecl/FuncLit so nested literals are
		// found; checkBody itself skips literal subtrees, so each body is
		// loop-checked exactly once.
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					a.checkBody(n.Body)
					a.checkCtxReach(n.Type, n.Body)
				}
			case *ast.FuncLit:
				a.checkBody(n.Body)
				a.checkCtxReach(n.Type, n.Body)
			}
			return true
		})
	}
	return a.diags, nil
}

// classify computes the polling and loopy function sets to a fixed point:
// calling a polling (loopy) function makes the caller polling (loopy).
func (a *analysis) classify() {
	for changed := true; changed; {
		changed = false
		for obj, fd := range a.decls {
			if !a.polling[obj] && a.scan(fd.Body, func(n ast.Node) bool { return a.polls(n) }) {
				a.polling[obj] = true
				changed = true
			}
			if !a.loopy[obj] && a.scan(fd.Body, func(n ast.Node) bool { return a.loops(n) }) {
				a.loopy[obj] = true
				changed = true
			}
		}
	}
}

// scan walks a subtree, skipping function literals, and reports whether
// pred holds for any node.
func (a *analysis) scan(root ast.Node, pred func(ast.Node) bool) bool {
	if root == nil {
		return false
	}
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if pred(n) {
			found = true
			return false
		}
		return true
	})
	return found
}

// polls reports whether the node is a cancellation poll.
func (a *analysis) polls(n ast.Node) bool {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return false
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		switch sel.Sel.Name {
		case "Err", "Done":
			if isContext(a.pass.TypeOf(sel.X)) {
				return true
			}
		case "Load":
			if isStopName(lastName(sel.X)) {
				return true
			}
		}
	}
	if fn := a.localCallee(call); fn != nil && a.polling[fn] {
		return true
	}
	return false
}

// loops reports whether the node introduces per-iteration work: a loop
// statement or a call to a loopy package-local function.
func (a *analysis) loops(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.ForStmt, *ast.RangeStmt:
		return true
	case *ast.CallExpr:
		if fn := a.localCallee(n); fn != nil && a.loopy[fn] {
			return true
		}
	}
	return false
}

// localCallee resolves a call to a function or method declared in the
// package being analyzed, or nil.
func (a *analysis) localCallee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := a.pass.ObjectOf(id).(*types.Func)
	if !ok || fn.Pkg() != a.pass.Pkg {
		return nil
	}
	return fn
}

// checkBody reports every suspicious outermost loop without a poll.
// Nested loops are part of their outermost loop's iteration work; a poll
// anywhere in the nest satisfies the contract.
func (a *analysis) checkBody(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // analyzed as its own function by run
		case *ast.ForStmt:
			parts := []ast.Node{n.Body}
			if n.Cond != nil {
				parts = append(parts, n.Cond)
			}
			if n.Post != nil {
				parts = append(parts, n.Post)
			}
			a.checkLoop(n.For, parts)
			return false
		case *ast.RangeStmt:
			// The range expression is evaluated once, before iteration —
			// it is setup cost, not per-iteration work.
			a.checkLoop(n.For, []ast.Node{n.Body})
			return false
		}
		return true
	})
}

func (a *analysis) checkLoop(pos token.Pos, parts []ast.Node) {
	suspicious, polled := false, false
	for _, p := range parts {
		if p == nil {
			continue
		}
		if a.scan(p, func(n ast.Node) bool { return a.loops(n) }) {
			suspicious = true
		}
		if a.scan(p, func(n ast.Node) bool { return a.polls(n) }) {
			polled = true
		}
	}
	if suspicious && !polled {
		a.diags = append(a.diags, lint.Diagnostic{
			Pos: pos,
			Message: "nested scan loop never polls for cancellation; " +
				"check ctx.Err()/canceled()/stop.Load() every batch of iterations",
		})
	}
}

// checkCtxReach enforces the reach half of the cancellation contract: a
// function holding a request-scoped context (a context.Context or
// *http.Request parameter) must not discard it — neither by minting a fresh
// context.Background()/TODO() nor by calling a ctx-less wrapper F when the
// callee's package also provides FContext. Function literals are judged by
// their own parameter lists, like everywhere else in this analyzer.
func (a *analysis) checkCtxReach(ft *ast.FuncType, body *ast.BlockStmt) {
	if body == nil || !a.holdsRequestContext(ft) {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // its own params decide its own duty
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name := a.freshContext(call); name != "" {
			a.diags = append(a.diags, lint.Diagnostic{
				Pos: call.Pos(),
				Message: name + " mints a fresh context while a request-scoped one " +
					"is in scope; thread the ctx (or r.Context()) through instead",
			})
			return true
		}
		if fn, sib := a.ctxlessWrapper(call); fn != nil {
			a.diags = append(a.diags, lint.Diagnostic{
				Pos: call.Pos(),
				Message: "call to " + fn.Name() + " drops the in-scope context; " +
					"call " + sib.Name() + " with the request context instead",
			})
		}
		return true
	})
}

// holdsRequestContext reports whether the function's parameters carry a
// request-scoped context: a context.Context, or an *http.Request (whose
// Context method yields one).
func (a *analysis) holdsRequestContext(ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		t := a.pass.TypeOf(field.Type)
		if isContext(t) || isHTTPRequest(t) {
			return true
		}
	}
	return false
}

// freshContext returns "context.Background" or "context.TODO" when the call
// mints a fresh context, else "".
func (a *analysis) freshContext(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pkg, ok := a.pass.ObjectOf(id).(*types.PkgName)
	if !ok || pkg.Imported().Path() != "context" {
		return ""
	}
	return "context." + sel.Sel.Name
}

// ctxlessWrapper resolves a call to a package-level function F that takes
// no context itself while its package also provides FContext — the
// one-shot wrapper shape whose body substitutes context.Background(). It
// returns (F, FContext), or nils.
func (a *analysis) ctxlessWrapper(call *ast.CallExpr) (fn, sibling *types.Func) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil, nil
	}
	f, ok := a.pass.ObjectOf(id).(*types.Func)
	if !ok || f.Pkg() == nil {
		return nil, nil
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return nil, nil
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContext(sig.Params().At(i).Type()) {
			return nil, nil // already context-aware
		}
	}
	sib, ok := f.Pkg().Scope().Lookup(f.Name() + "Context").(*types.Func)
	if !ok {
		return nil, nil
	}
	return f, sib
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// isHTTPRequest reports whether t is *net/http.Request.
func isHTTPRequest(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Request" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}

// lastName extracts the final identifier of an expression like s.stop.
func lastName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return ""
}

func isStopName(name string) bool {
	l := strings.ToLower(name)
	for _, s := range stopNames {
		if strings.Contains(l, s) {
			return true
		}
	}
	return false
}

// Package fixture seeds ctxpoll violations and the engine's legal polling
// patterns.
package fixture

import (
	"context"
	"net/http"
	"sync/atomic"
)

type runner struct{ ctx context.Context }

// canceled is a polling helper: calling it counts as a poll anywhere.
func (r *runner) canceled() bool { return r.ctx.Err() != nil }

// inner is a loopy helper: calling it from a loop makes that loop nested.
func inner(row []int) int {
	t := 0
	for _, v := range row {
		t += v
	}
	return t
}

// scanUnpolled is the satellite-required seed: a nested scan loop with no
// cancellation poll anywhere.
func scanUnpolled(rows [][]int) int {
	total := 0
	for _, row := range rows { // want "never polls for cancellation"
		for _, v := range row {
			total += v
		}
	}
	return total
}

// callsLoopy hides the inner loop behind a package-local call; the fixed
// point still sees it.
func callsLoopy(rows [][]int) int {
	total := 0
	for _, row := range rows { // want "never polls for cancellation"
		total += inner(row)
	}
	return total
}

// scanCtx polls the context directly.
func scanCtx(ctx context.Context, rows [][]int) int {
	total := 0
	for _, row := range rows {
		if ctx.Err() != nil {
			return total
		}
		for _, v := range row {
			total += v
		}
	}
	return total
}

// scanHelper polls through a package-local helper, like the engine's
// batched canceled() checks.
func scanHelper(r *runner, rows [][]int) int {
	total := 0
	for i, row := range rows {
		if i%1024 == 0 && r.canceled() {
			return total
		}
		total += inner(row)
	}
	return total
}

// scanStopFlag polls an atomic stop flag, like exact's shared.stop.
type worker struct{ stop atomic.Bool }

func (w *worker) drain(rows [][]int) int {
	total := 0
	for _, row := range rows {
		if w.stop.Load() {
			return total
		}
		total += inner(row)
	}
	return total
}

// flatLoop has no nested work: latency is one iteration, exempt.
func flatLoop(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// boundedScan is deliberately unpolled and carries the justified escape
// hatch the engine uses for provably tiny scans.
func boundedScan(grid *[8][8]int) int {
	t := 0
	//instlint:allow ctxpoll -- 8x8 worst case, completes in nanoseconds
	for _, row := range grid {
		for _, v := range row {
			t += v
		}
	}
	return t
}

// workerLoopUnpolled seeds the parallel-pipeline shape: a worker goroutine
// draining a token channel, doing nested per-block row work, and never
// polling. The FuncLit is analyzed as its own function, so the claim loop
// itself must carry the diagnostic.
func workerLoopUnpolled(tokens chan struct{}, blocks [][]int, out chan<- int) {
	go func() {
		for range tokens { // want "never polls for cancellation"
			t := 0
			for _, v := range blocks[0] {
				t += v
			}
			out <- t
		}
	}()
}

// workerLoopPolled is the compliant variant every produce closure in the
// signature pipeline follows: the block body polls the context before the
// nested scan.
func workerLoopPolled(ctx context.Context, tokens chan struct{}, blocks [][]int, out chan<- int) {
	go func() {
		for range tokens {
			if ctx.Err() != nil {
				return
			}
			t := 0
			for _, v := range blocks[0] {
				t += v
			}
			out <- t
		}
	}()
}

// goroutineBody: the literal is its own function; its polled loop is fine
// and the spawning loop is flat.
func goroutineBody(ctx context.Context, rows [][]int, out chan<- int) {
	for i := range rows {
		row := rows[i]
		go func() {
			t := 0
			for _, v := range row {
				if ctx.Err() != nil {
					return
				}
				t += v
			}
			out <- t
		}()
	}
}

// process/processContext is the engine's one-shot wrapper shape. process
// itself holds no context, so its Background() is the legal idiom — the
// reach rule must stay quiet here.
func processContext(ctx context.Context, rows [][]int) int {
	total := 0
	for _, row := range rows {
		if ctx.Err() != nil {
			return total
		}
		total += inner(row)
	}
	return total
}

func process(rows [][]int) int {
	return processContext(context.Background(), rows)
}

// reachFresh holds a ctx and mints a fresh one anyway: the cancel signal
// dies here.
func reachFresh(ctx context.Context, rows [][]int) int {
	return processContext(context.Background(), rows) // want "mints a fresh context"
}

// reachTODO: context.TODO is the same bug wearing a different name.
func reachTODO(ctx context.Context, rows [][]int) int {
	return processContext(context.TODO(), rows) // want "mints a fresh context"
}

// reachWrapper drops its ctx by calling the ctx-less wrapper of a
// context-aware sibling.
func reachWrapper(ctx context.Context, rows [][]int) int {
	return process(rows) // want "drops the in-scope context"
}

// reachHandler: an *http.Request parameter counts as an in-scope context —
// r.Context() is one call away.
func reachHandler(w http.ResponseWriter, r *http.Request, rows [][]int) int {
	return process(rows) // want "drops the in-scope context"
}

// reachHandlerOK threads the request context like the serve handlers do.
func reachHandlerOK(w http.ResponseWriter, r *http.Request, rows [][]int) int {
	return processContext(r.Context(), rows)
}

// reachThreaded passes its ctx on: nothing to flag (WithTimeout derives,
// it does not discard).
func reachThreaded(ctx context.Context, rows [][]int) int {
	ctx, cancel := context.WithTimeout(ctx, 0)
	defer cancel()
	return processContext(ctx, rows)
}

// reachLiteral: a context-less closure inside a ctx-bearing function is
// judged by its own (empty) parameter list.
func reachLiteral(ctx context.Context, rows [][]int) func() int {
	return func() int { return process(rows) }
}

// reachAllowed carries the justified escape hatch.
func reachAllowed(ctx context.Context, rows [][]int) int {
	//instlint:allow ctxpoll -- detached audit pass, must outlive the request
	return processContext(context.Background(), rows)
}

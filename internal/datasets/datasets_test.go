package datasets

import (
	"math/rand"
	"testing"

	"instcmp/internal/model"
)

func TestGenerateAllDatasets(t *testing.T) {
	wantArity := map[Name]int{Doct: 5, Bike: 9, Git: 19, Bus: 25, Iris: 5, Nba: 11}
	for _, name := range All {
		in, err := Generate(name, 500, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		st := in.Stats()
		if st.Tuples != 500 {
			t.Errorf("%s: rows = %d, want 500", name, st.Tuples)
		}
		if st.MaxArity != wantArity[name] {
			t.Errorf("%s: arity = %d, want %d", name, st.MaxArity, wantArity[name])
		}
		if name == Doct {
			if st.NullCells == 0 {
				t.Errorf("Doct must contain nulls")
			}
		} else if st.NullCells != 0 {
			t.Errorf("%s: unexpected nulls (%d)", name, st.NullCells)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(Bike, 200, 42)
	b, _ := Generate(Bike, 200, 42)
	if a.String() != b.String() {
		t.Error("same seed produced different instances")
	}
	c, _ := Generate(Bike, 200, 43)
	if a.String() == c.String() {
		t.Error("different seeds produced identical instances")
	}
}

func TestGenerateDefaultsToTable1Rows(t *testing.T) {
	in, err := Generate(Iris, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := in.NumTuples(); got != 120 {
		t.Errorf("Iris default rows = %d, want 120", got)
	}
}

func TestGenerateUnknown(t *testing.T) {
	if _, err := Generate("nope", 10, 1); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestBusFDsHold(t *testing.T) {
	in := BusData(2000, rand.New(rand.NewSource(7)))
	rel := in.Relation("Bus")
	for _, fd := range BusFDs() {
		li, ri := rel.AttrIndex(fd[0]), rel.AttrIndex(fd[1])
		if li < 0 || ri < 0 {
			t.Fatalf("FD attributes missing: %v", fd)
		}
		seen := map[model.Value]model.Value{}
		for _, tu := range rel.Tuples {
			l, r := tu.Values[li], tu.Values[ri]
			if prev, ok := seen[l]; ok && prev != r {
				t.Fatalf("FD %v violated in clean data: %v -> %v and %v", fd, l, prev, r)
			}
			seen[l] = r
		}
	}
}

func TestDistinctValueShapes(t *testing.T) {
	// Table 1 ratios (distinct values per row): Doct ≈ 2.2, Bike ≈ 2.4,
	// Git ≈ 3.9, Nba ≈ 0.3, Iris ≈ 0.6. Check loose bands so the
	// synthetic data exercises comparable index/bucket shapes.
	type band struct{ lo, hi float64 }
	bands := map[Name]band{
		Doct: {1.2, 3.5},
		Bike: {1.4, 3.6},
		Git:  {2.4, 5.5},
		Nba:  {0.1, 1.0},
		Iris: {0.3, 1.2},
	}
	for name, b := range bands {
		rows := DefaultRows[name]
		in, err := Generate(name, rows, 1)
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(in.Stats().DistinctVals) / float64(rows)
		if ratio < b.lo || ratio > b.hi {
			t.Errorf("%s: distinct/rows = %.2f, want in [%.1f, %.1f]", name, ratio, b.lo, b.hi)
		}
	}
}

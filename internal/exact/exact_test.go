package exact

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"instcmp/internal/compat"
	"instcmp/internal/match"
	"instcmp/internal/model"
	"instcmp/internal/score"
)

func c(s string) model.Value { return model.Const(s) }
func n(s string) model.Value { return model.Null(s) }

const lambda = 0.5

// bruteForce enumerates every subset of compatible pairs, filters the ones
// that form a consistent complete match under the mode, and returns the
// maximum score. Exponential; for tiny instances only.
func bruteForce(t *testing.T, l, r *model.Instance, mode match.Mode) float64 {
	t.Helper()
	env, err := match.NewEnv(l, r, mode)
	if err != nil {
		t.Fatal(err)
	}
	var pairs []match.Pair
	for ri := range l.Relations() {
		cands := compat.Candidates(l.Relations()[ri], r.Relations()[ri], nil, nil)
		for li, cs := range cands {
			for _, ci := range cs {
				pairs = append(pairs, match.Pair{
					L: match.Ref{Rel: ri, Idx: li},
					R: match.Ref{Rel: ri, Idx: ci},
				})
			}
		}
	}
	if len(pairs) > 18 {
		t.Fatalf("bruteForce: %d pairs is too many", len(pairs))
	}
	best := -1.0
	for mask := 0; mask < 1<<len(pairs); mask++ {
		mk := env.Mark()
		ok := true
		for i, p := range pairs {
			if mask&(1<<i) == 0 {
				continue
			}
			if !env.TryAddPair(p) {
				ok = false
				break
			}
		}
		if ok {
			if s := score.Match(env, lambda); s > best {
				best = s
			}
		}
		env.Undo(mk)
	}
	if best < 0 {
		best = score.Match(env, lambda) // empty mapping
	}
	return best
}

func build(rows [][]model.Value) *model.Instance {
	in := model.NewInstance()
	attrs := []string{"A", "B", "C"}
	if len(rows) > 0 {
		attrs = attrs[:len(rows[0])]
	}
	in.AddRelation("R", attrs...)
	for _, row := range rows {
		in.Append("R", row...)
	}
	return in
}

func run(t *testing.T, l, r *model.Instance, mode match.Mode) *Result {
	t.Helper()
	res, err := Run(l, r, mode, Options{Lambda: lambda})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhaustive {
		t.Fatal("search unexpectedly hit its budget")
	}
	return res
}

func TestIdenticalGroundInstances(t *testing.T) {
	l := build([][]model.Value{{c("a"), c("b")}, {c("x"), c("y")}})
	r := build([][]model.Value{{c("a"), c("b")}, {c("x"), c("y")}})
	if got := run(t, l, r, match.OneToOne).Score; math.Abs(got-1) > 1e-9 {
		t.Errorf("identical instances score %v, want 1", got)
	}
}

func TestIsomorphicInstancesScoreOne(t *testing.T) {
	l := build([][]model.Value{{n("N1"), c("b")}, {n("N2"), n("N3")}})
	r := build([][]model.Value{{n("V1"), c("b")}, {n("V2"), n("V3")}})
	if got := run(t, l, r, match.OneToOne).Score; math.Abs(got-1) > 1e-9 {
		t.Errorf("isomorphic instances score %v, want 1 (Eq. 2)", got)
	}
}

func TestNonIsomorphicBelowOne(t *testing.T) {
	// Sec. 3's example: I = {(N1),(N2)} vs I'' = {(N5),(N5)}.
	l := build([][]model.Value{{n("N1")}, {n("N2")}})
	r := build([][]model.Value{{n("N5")}, {n("N5")}})
	got := run(t, l, r, match.OneToOne).Score
	if got >= 1 {
		t.Errorf("non-isomorphic instances score %v, want < 1 (Eq. 3)", got)
	}
	if got <= 0 {
		t.Errorf("similar instances score %v, want > 0", got)
	}
}

func TestDisjointGroundZero(t *testing.T) {
	l := build([][]model.Value{{c("a"), c("b")}})
	r := build([][]model.Value{{c("x"), c("y")}})
	if got := run(t, l, r, match.OneToOne).Score; got != 0 {
		t.Errorf("disjoint ground instances score %v, want 0 (Eq. 4)", got)
	}
}

// TestExample31 reproduces Ex. 3.1/Fig. 6: the optimal match maps t1->t4 and
// t2->t5 with score (12+4λ)/24, in particular it must not settle for the
// inferior N4->1975 alternative.
func TestExample31(t *testing.T) {
	l := model.NewInstance()
	l.AddRelation("Conf", "Id", "Name", "Year", "Org")
	l.Append("Conf", n("N1"), c("VLDB"), c("1975"), c("VLDB End."))
	l.Append("Conf", n("N2"), c("VLDB"), n("N4"), c("VLDB End."))
	l.Append("Conf", n("N3"), c("SIGMOD"), c("1977"), c("ACM"))
	r := model.NewInstance()
	r.AddRelation("Conf", "Id", "Name", "Year", "Org")
	r.Append("Conf", n("Va"), c("VLDB"), c("1975"), c("VLDB End."))
	r.Append("Conf", n("Vb"), c("VLDB"), c("1976"), n("Vc"))
	r.Append("Conf", c("3"), c("ICDE"), c("1984"), c("IEEE"))

	res := run(t, l, r, match.OneToOne)
	want := (12 + 4*lambda) / 24
	if math.Abs(res.Score-want) > 1e-9 {
		t.Errorf("Ex 3.1 score = %v, want %v", res.Score, want)
	}
	if len(res.Pairs) != 2 {
		t.Errorf("Ex 3.1 match size = %d, want 2", len(res.Pairs))
	}
}

func TestMatchesBruteForceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	modes := []match.Mode{match.OneToOne, match.Functional, match.ManyToMany}
	for trial := 0; trial < 30; trial++ {
		mk := func(side string) *model.Instance {
			rows := make([][]model.Value, 3)
			for i := range rows {
				rows[i] = make([]model.Value, 2)
				for j := range rows[i] {
					if rng.Intn(3) == 0 {
						rows[i][j] = model.Nullf("%s%d_%d_%d", side, trial, i, j)
					} else {
						rows[i][j] = model.Constf("c%d", rng.Intn(3))
					}
				}
			}
			return build(rows)
		}
		l, r := mk("L"), mk("R")
		mode := modes[trial%len(modes)]
		want := bruteForce(t, l, r, mode)
		got := run(t, l, r, mode).Score
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d mode %v: exact %v != brute force %v\nleft:\n%sright:\n%s",
				trial, mode, got, want, l, r)
		}
	}
}

func TestGeneralModeCanBeatInjective(t *testing.T) {
	// One left tuple explains two identical right tuples only in n-to-m.
	l := build([][]model.Value{{c("a"), c("b")}})
	r := build([][]model.Value{{c("a"), c("b")}, {c("a"), c("b")}})
	inj := run(t, l, r, match.OneToOne).Score
	gen := run(t, l, r, match.ManyToMany).Score
	if gen <= inj {
		t.Errorf("n-to-m score %v should exceed 1-to-1 score %v here", gen, inj)
	}
	if math.Abs(gen-1) > 1e-9 {
		t.Errorf("duplicate-explained score = %v, want 1", gen)
	}
}

func TestBudgetStopsSearch(t *testing.T) {
	rows := make([][]model.Value, 8)
	for i := range rows {
		rows[i] = []model.Value{n(model.Nullf("L%d", i).Raw()), c("k")}
	}
	l := build(rows)
	rows2 := make([][]model.Value, 8)
	for i := range rows2 {
		rows2[i] = []model.Value{n(model.Nullf("R%d", i).Raw()), c("k")}
	}
	r := build(rows2)
	// Pin the legacy single-threaded cold-start engine: the warm start
	// solves this degenerate instance at node 1 (every pair is perfect),
	// and the parallel node budget is only batch-accurate.
	res, err := Run(l, r, match.ManyToMany,
		Options{Lambda: lambda, MaxNodes: 50, Workers: 1, NoWarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exhaustive {
		t.Error("64-pair general search cannot finish in 50 nodes")
	}
	if res.Nodes > 52 {
		t.Errorf("budget overshot: %d nodes", res.Nodes)
	}
	if res.Score < 0 || res.Score > 1 {
		t.Errorf("budgeted score out of range: %v", res.Score)
	}
}

func TestTimeoutStopsSearch(t *testing.T) {
	rows := make([][]model.Value, 10)
	rows2 := make([][]model.Value, 10)
	for i := range rows {
		rows[i] = []model.Value{n(model.Nullf("L%d", i).Raw()), n(model.Nullf("LL%d", i).Raw())}
		rows2[i] = []model.Value{n(model.Nullf("R%d", i).Raw()), n(model.Nullf("RR%d", i).Raw())}
	}
	start := time.Now()
	res, err := Run(build(rows), build(rows2), match.ManyToMany,
		Options{Lambda: lambda, Timeout: 50 * time.Millisecond, NoWarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("timeout ignored: ran %v", elapsed)
	}
	if res.Exhaustive {
		t.Log("note: search finished within the timeout (machine is fast); no assertion")
	}
}

func TestResultEnvHoldsBestMatch(t *testing.T) {
	l := build([][]model.Value{{c("a"), n("N1")}})
	r := build([][]model.Value{{c("a"), c("v")}})
	res := run(t, l, r, match.OneToOne)
	if res.Env.NumPairs() != 1 {
		t.Fatalf("env pairs = %d, want 1", res.Env.NumPairs())
	}
	if !res.Env.IsComplete() {
		t.Error("result env match is not complete")
	}
	if got := score.Match(res.Env, lambda); math.Abs(got-res.Score) > 1e-9 {
		t.Errorf("env score %v != result score %v", got, res.Score)
	}
}

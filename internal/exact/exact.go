// Package exact implements the paper's exact instance-comparison algorithm
// (Sec. 6.1, Alg. 1): enumerate every tuple mapping assembled from
// compatible tuple pairs (Alg. 2), keep the consistent ones, and return the
// instance match with the maximum Def. 5.3 score.
//
// The enumeration is organized as a depth-first branch-and-bound search.
// In the functional (left-injective) modes the search assigns to each left
// tuple one compatible partner or none; in the general mode it
// includes/excludes each compatible pair. A global unifier detects value-
// mapping inconsistencies between pairs (the paper's step 2) and is rolled
// back on backtracking. The instance-comparison problem is NP-hard
// (Thm. 5.11), so the search carries a node/time budget; results indicate
// whether the search space was exhausted.
//
// Two engine-level accelerations sit on top of the plain DFS, neither of
// which changes the returned score (see DESIGN.md §9 for the argument):
//
//   - Warm start: the signature algorithm (Sec. 6.2) runs first on the same
//     environment and its match — re-inserted in the search's canonical
//     order so its score is bit-identical to the corresponding leaf's —
//     seeds the incumbent, so the suffix bounds prune from node 1 instead
//     of only after the first full descent.
//   - Parallel search: the tree is cut at a configurable prefix depth into
//     independent subtree tasks executed by workers that own cloned
//     environments; the incumbent is shared through an atomic
//     bits-of-float64 CAS and task results are reduced in canonical task
//     order, so the worker count never changes the returned score.
//
// The search runs on the comparison's integer-coded rows: candidate
// generation probes compat.CodedIndex, the static per-pair bounds read
// ValueIDs and precomputed ground masks, and the suffix bounds accumulate
// in flat arrays indexed by flattened tuple position.
package exact

import (
	"context"
	"expvar"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"instcmp/internal/compat"
	"instcmp/internal/match"
	"instcmp/internal/model"
	"instcmp/internal/score"
	"instcmp/internal/signature"
)

// Result.Stopped reasons. A stopped search still returns the best incumbent
// found so far (at minimum the warm start's match, when enabled).
const (
	// StoppedTimeout: the Options.Timeout deadline passed.
	StoppedTimeout = "timeout"
	// StoppedNodeBudget: the Options.MaxNodes budget was exhausted.
	StoppedNodeBudget = "node-budget"
	// StoppedCanceled: the context passed to RunContext was canceled.
	StoppedCanceled = "canceled"
)

// Internal trip codes backing Result.Stopped; stopNone means the search ran
// to exhaustion.
const (
	stopNone int32 = iota
	stopTimeout
	stopNodeBudget
	stopCanceled
)

func stoppedString(code int32) string {
	switch code {
	case stopTimeout:
		return StoppedTimeout
	case stopNodeBudget:
		return StoppedNodeBudget
	case stopCanceled:
		return StoppedCanceled
	default:
		return ""
	}
}

// vars exports cumulative search counters for long-running processes
// (expvar key "instcmp.exact"): runs, nodes, prunes, improvements,
// exhaustive, stopped_timeout, stopped_node_budget, stopped_canceled.
var vars = expvar.NewMap("instcmp.exact")

// Options configures an exact run.
type Options struct {
	// Lambda is the null-to-constant penalty of Def. 5.5.
	Lambda float64
	// MaxNodes bounds the number of search-tree nodes (0 = no bound).
	// Under parallel execution the bound is enforced within one flush
	// batch per worker (workers publish node counts every nodeFlushBatch
	// nodes); with Workers = 1 it is exact, as before.
	MaxNodes int64
	// Timeout bounds wall-clock time (0 = no bound). The warm-start
	// signature run is polynomial and not counted against it.
	Timeout time.Duration
	// Workers is the number of parallel search workers: 0 = GOMAXPROCS,
	// 1 = single-threaded. The returned score is identical for every
	// worker count; only wall-clock time (and, under a budget, how much
	// of the space gets explored) changes.
	Workers int
	// SplitDepth is the prefix depth at which the search tree is cut into
	// subtree tasks when more than one worker runs (0 = automatic: the
	// shallowest depth whose decision count reaches ~8 tasks per worker).
	SplitDepth int
	// NoWarmStart disables seeding the incumbent with the signature
	// algorithm's match (ablation switch; the warm start never changes
	// the returned score, only how fast the search converges).
	NoWarmStart bool
}

// Result is the outcome of an exact search.
type Result struct {
	Env   *match.Env
	Score float64
	// Pairs is the best tuple mapping found.
	Pairs []match.Pair
	// Exhaustive reports whether the whole search space was explored; if
	// false the score is a lower bound on the true similarity.
	Exhaustive bool
	// Nodes is the number of search-tree nodes visited, summed over all
	// workers (task-prefix enumeration included).
	Nodes int64
	// Prunes counts subtrees cut by the optimistic suffix bounds, summed
	// over all workers.
	Prunes int64
	// Improvements counts incumbent improvements recorded by searchers
	// (per task under parallel execution, so the count depends on worker
	// scheduling; the score never does).
	Improvements int64
	// WarmScore is the warm-start incumbent the search began from, -1
	// when the warm start was disabled or not applicable. Warm-started
	// budget-capped runs therefore never report less than WarmScore.
	WarmScore float64
	// SigStats is the warm-start signature run's phase breakdown, nil
	// when the warm start was disabled or not applicable.
	SigStats *signature.Stats
	// Stopped reports why a non-exhaustive search stopped: one of
	// StoppedTimeout, StoppedNodeBudget, StoppedCanceled. Empty when
	// Exhaustive.
	Stopped string
	// EnvStats aggregates the pair-attempt counters of the root
	// environment and every worker clone.
	EnvStats match.EnvStats
}

// Run executes the exact algorithm. The returned environment holds the best
// match re-applied, so callers can extract value mappings and explanations.
func Run(left, right *model.Instance, mode match.Mode, opt Options) (*Result, error) {
	return RunContext(context.Background(), left, right, mode, opt)
}

// RunContext is Run with a cancellation context. Cancellation is polled in
// the node loop alongside the deadline — every soloPollInterval nodes
// single-threaded, every nodeFlushBatch nodes per parallel worker — so a
// canceled search returns promptly with the best incumbent found so far and
// Result.Stopped = StoppedCanceled. The context also bounds the warm-start
// signature run.
func RunContext(ctx context.Context, left, right *model.Instance, mode match.Mode, opt Options) (*Result, error) {
	env, err := match.NewEnv(left, right, mode)
	if err != nil {
		return nil, err
	}
	return RunEnvContext(ctx, env, opt)
}

// RunPreparedContext is RunContext over prepared instances: the environment
// is assembled from the two sides' resident codings (match.NewEnvPrepared)
// instead of normalizing and interning from scratch. The search — including
// its warm start — is bit-identical to RunContext on the same instances.
func RunPreparedContext(ctx context.Context, left, right *match.PreparedSide, mode match.Mode, opt Options) (*Result, error) {
	env, err := match.NewEnvPrepared(left, right, mode)
	if err != nil {
		return nil, err
	}
	return RunEnvContext(ctx, env, opt)
}

// RunEnvContext executes the exact search on a caller-supplied environment
// whose tuple mapping must be empty. It is the engine entry point shared by
// the one-shot and the prepared paths; the returned Result aliases env.
func RunEnvContext(ctx context.Context, env *match.Env, opt Options) (*Result, error) {
	if env.NumPairs() != 0 {
		return nil, fmt.Errorf("exact: RunEnvContext requires an empty tuple mapping, got %d pairs", env.NumPairs())
	}
	p := newProblem(ctx, env, opt.Lambda)
	sh := &shared{maxN: opt.MaxNodes, ctx: ctx}
	sh.best.Store(math.Float64bits(-1))
	if opt.Timeout > 0 {
		//instlint:allow nondet -- wall-clock deadline only triggers anytime degradation (Stopped=timeout with the best-so-far score); it never feeds a score
		sh.deadline = time.Now().Add(opt.Timeout)
	}

	best, bestPairs := -1.0, []match.Pair(nil)
	warmScore := -1.0
	var sigStats *signature.Stats
	// The ctx.Err() guard also protects canonicalize: a canceled
	// newProblem returns a truncated candidate structure that must not be
	// indexed by a warm-start match.
	if !opt.NoWarmStart && ctx.Err() == nil {
		if wp, ws, st, ok := warmStart(ctx, env, p); ok {
			best, bestPairs, warmScore = ws, wp, ws
			sigStats = st
			sh.offer(ws)
		}
	}
	// A context canceled before (or during) the warm start skips the
	// search entirely; the result is the incumbent found so far.
	if ctx.Err() != nil {
		sh.trip(stopCanceled)
	}

	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	switch {
	case sh.stop.Load():
		// Pre-tripped: nothing to search.
	case workers == 1:
		s := &searcher{p: p, sh: sh, env: env, solo: true, best: best}
		s.search(0)
		s.publish()
		if s.best > best {
			best, bestPairs = s.best, s.bestPairs
		}
	default:
		for _, tr := range searchParallel(env, p, sh, best, workers, opt.SplitDepth) {
			if tr.score > best {
				best, bestPairs = tr.score, tr.pairs
			}
		}
	}

	// Re-apply the best mapping so the returned Env reflects it.
	env.Undo(match.Mark{})
	reason := sh.reason.Load()
	res := &Result{
		Env:          env,
		Exhaustive:   reason == stopNone,
		Nodes:        sh.nodes.Load(),
		Prunes:       sh.prunes.Load(),
		Improvements: sh.improved.Load(),
		WarmScore:    warmScore,
		SigStats:     sigStats,
		Stopped:      stoppedString(reason),
	}
	if !env.Replay(bestPairs) {
		panic("exact: best mapping no longer applies")
	}
	res.Pairs = env.Pairs()
	res.Score = score.Match(env, opt.Lambda)
	res.EnvStats = env.Stats
	res.EnvStats.Add(sh.cloneStats)
	publishRun(res)
	return res, nil
}

// publishRun feeds the run's aggregate counters into the package expvars.
func publishRun(res *Result) {
	vars.Add("runs", 1)
	vars.Add("nodes", res.Nodes)
	vars.Add("prunes", res.Prunes)
	vars.Add("improvements", res.Improvements)
	if res.Exhaustive {
		vars.Add("exhaustive", 1)
	} else {
		vars.Add("stopped_"+statKey(res.Stopped), 1)
	}
}

// statKey converts a Stopped reason to an expvar key fragment.
func statKey(reason string) string {
	if reason == StoppedNodeBudget {
		return "node_budget"
	}
	return reason
}

// problem is the immutable description of one search: the candidate
// structures and bounds, computed once and shared read-only by every
// worker.
type problem struct {
	lambda float64
	// functional selects the per-left-tuple search; general mode works on
	// the flat pair list.
	functional bool
	// Functional search state: per left tuple, its candidate partners,
	// indexed by flattened left-tuple position.
	lefts []leftChoice
	// General search state: the flattened compatible pair list.
	pairs []match.Pair
	// pairOpt[i] is the optimistic score of pairs[i].
	pairOpt []float64
	// suffix[i] is an upper bound on the numerator contribution still
	// obtainable from pairs[i:] (general mode).
	suffix []float64
	// leftSuffix[i] bounds the contribution of lefts[i:] (functional).
	leftSuffix []float64
	denom      float64
}

// levels returns the depth of the full search tree.
func (p *problem) levels() int {
	if p.functional {
		return len(p.lefts)
	}
	return len(p.pairs)
}

type leftChoice struct {
	ref   match.Ref
	cands []match.Ref
	// opts[i] is the optimistic score of matching cands[i].
	opts  []float64
	arity float64
	// bestOpt is the largest optimistic pair score among the candidates:
	// an upper bound on what matching this tuple can contribute per side.
	bestOpt float64
}

// shared is the cross-worker mutable state: the incumbent, the aggregated
// node count, and the budget trip-wire.
type shared struct {
	// best holds math.Float64bits of the best score found so far; workers
	// raise it with a CAS loop (offer) and read it for pruning. It only
	// ever increases, and every stored value is some leaf's score (or the
	// warm start's), so pruning against it never cuts a strictly better
	// leaf — which is what makes the returned score independent of worker
	// count and timing.
	best  atomic.Uint64
	nodes atomic.Int64
	// prunes and improved aggregate the searchers' local stat counters
	// (published alongside nodes; they never influence the search).
	prunes   atomic.Int64
	improved atomic.Int64
	// stop trips once the node or time budget is exceeded or the context
	// is canceled, and makes every worker unwind; a tripped search
	// reports Exhaustive = false. reason records the first trip's cause.
	stop     atomic.Bool
	reason   atomic.Int32
	maxN     int64
	deadline time.Time
	// ctx carries caller cancellation; never nil (context.Background for
	// the ctx-less entry points).
	ctx context.Context

	// cloneStats aggregates the env counters of finished worker clones.
	mu         sync.Mutex
	cloneStats match.EnvStats
}

// addCloneStats merges a worker clone's env counters into the run total.
func (sh *shared) addCloneStats(st match.EnvStats) {
	sh.mu.Lock()
	sh.cloneStats.Add(st)
	sh.mu.Unlock()
}

// trip stops the whole search, recording the first cause to win.
func (sh *shared) trip(code int32) {
	sh.reason.CompareAndSwap(stopNone, code)
	sh.stop.Store(true)
}

func (sh *shared) incumbent() float64 { return math.Float64frombits(sh.best.Load()) }

// offer raises the shared incumbent to sc if it improves it.
func (sh *shared) offer(sc float64) {
	for {
		old := sh.best.Load()
		if sc <= math.Float64frombits(old) {
			return
		}
		if sh.best.CompareAndSwap(old, math.Float64bits(sc)) {
			return
		}
	}
}

// searcher is one search executor: the solo searcher of a single-threaded
// run (and of task enumeration), or one parallel worker. It owns an
// environment; everything else is shared.
type searcher struct {
	p   *problem
	sh  *shared
	env *match.Env
	// committedUB is a running upper bound on the numerator contribution
	// of the pairs currently in the environment (2 x optimistic score
	// each), maintained incrementally.
	committedUB float64
	// solo marks the single-threaded searcher: budget checks skip the
	// atomics and count exactly per node, preserving the sequential
	// engine's behavior bit for bit.
	solo bool
	// nodes counts visited nodes: the running total when solo, the count
	// since the last flush for a parallel worker.
	nodes int64
	// prunes and improved are searcher-local stat counters, published to
	// the shared totals by publish().
	prunes   int64
	improved int64
	stopped  bool
	// best/bestPairs track the best leaf seen by this searcher (per task
	// for parallel workers, which reset them in runTask).
	best      float64
	bestPairs []match.Pair
}

// nodeFlushBatch is how many nodes a parallel worker accumulates before
// publishing them to the shared counter and re-checking the budget; the
// node budget is therefore enforced within workers x nodeFlushBatch nodes.
const nodeFlushBatch = 64

// soloPollInterval is how many nodes the single-threaded searcher visits
// between deadline/cancellation polls: the poll interval that bounds how
// far a solo search can overshoot its Timeout or outlive its context.
const soloPollInterval = 1024

// budgetExceeded checks the node/time budget and the context; once it
// trips, it stays tripped (for every worker) so the whole search unwinds
// immediately and the result is marked inexact.
func (s *searcher) budgetExceeded() bool {
	if s.stopped {
		return true
	}
	s.nodes++
	if s.solo {
		if s.sh.maxN > 0 && s.nodes > s.sh.maxN {
			s.trip(stopNodeBudget)
			return true
		}
		if s.nodes%soloPollInterval == 0 {
			//instlint:allow nondet -- deadline poll: trips the anytime timeout stop, never a score
			if !s.sh.deadline.IsZero() && time.Now().After(s.sh.deadline) {
				s.trip(stopTimeout)
				return true
			}
			if s.sh.ctx.Err() != nil {
				s.trip(stopCanceled)
				return true
			}
		}
		return false
	}
	if s.sh.stop.Load() {
		s.stopped = true
		return true
	}
	if s.nodes >= nodeFlushBatch {
		return s.flush()
	}
	return false
}

// flush publishes the worker's node count and re-checks the budget and the
// context.
func (s *searcher) flush() bool {
	n := s.sh.nodes.Add(s.nodes)
	s.nodes = 0
	if s.sh.maxN > 0 && n > s.sh.maxN {
		s.trip(stopNodeBudget)
		return true
	}
	//instlint:allow nondet -- deadline poll: trips the anytime timeout stop, never a score
	if !s.sh.deadline.IsZero() && time.Now().After(s.sh.deadline) {
		s.trip(stopTimeout)
		return true
	}
	if s.sh.ctx.Err() != nil {
		s.trip(stopCanceled)
		return true
	}
	return false
}

// trip stops this searcher and the whole shared search.
func (s *searcher) trip(code int32) {
	s.stopped = true
	s.sh.trip(code)
}

// publish flushes the searcher's remaining stat counters into the shared
// totals (once, when the searcher is done).
func (s *searcher) publish() {
	s.sh.nodes.Add(s.nodes)
	s.sh.prunes.Add(s.prunes)
	s.sh.improved.Add(s.improved)
	s.nodes, s.prunes, s.improved = 0, 0, 0
}

// incumbent is the pruning threshold: the searcher's own best, raised by
// the shared incumbent when other workers run.
func (s *searcher) incumbent() float64 {
	if s.solo {
		return s.best
	}
	if g := s.sh.incumbent(); g > s.best {
		return g
	}
	return s.best
}

// evaluate scores the current mapping and records it if it is the best.
func (s *searcher) evaluate() {
	var sc float64
	if s.p.denom == 0 {
		sc = 1
	} else {
		sc = score.Match(s.env, s.p.lambda)
	}
	if sc > s.best {
		s.best = sc
		s.improved++
		s.bestPairs = append([]match.Pair(nil), s.env.Pairs()...)
		if !s.solo {
			s.sh.offer(sc)
		}
	}
}

// search runs the mode's DFS from level i on the current environment.
func (s *searcher) search(i int) {
	if s.p.functional {
		s.searchFunctional(i)
	} else {
		s.searchGeneral(i)
	}
}

// searchFunctional assigns each left tuple (in order) one candidate or none.
// Right-injectivity, when required by the mode, is enforced by TryAddPair.
func (s *searcher) searchFunctional(i int) {
	if s.budgetExceeded() {
		return
	}
	if i == len(s.p.lefts) {
		s.evaluate()
		return
	}
	// Optimistic bound: committed pairs contribute at most their
	// optimistic scores (⊓ growth only lowers them), remaining left
	// tuples at most 2·bestOpt each.
	if s.p.denom > 0 && (s.committedUB+s.p.leftSuffix[i])/s.p.denom <= s.incumbent() {
		s.prunes++
		return
	}
	lc := &s.p.lefts[i]
	for ci, r := range lc.cands {
		m := s.env.Mark()
		if s.env.TryAddPair(match.Pair{L: lc.ref, R: r}) {
			opt := 2 * lc.opts[ci]
			s.committedUB += opt
			s.searchFunctional(i + 1)
			s.committedUB -= opt
			s.env.Undo(m)
		}
	}
	// The unmatched branch: Def. 5.3 can prefer leaving a tuple out.
	s.searchFunctional(i + 1)
}

// searchGeneral includes or excludes each compatible pair.
func (s *searcher) searchGeneral(i int) {
	if s.budgetExceeded() {
		return
	}
	if i == len(s.p.pairs) {
		s.evaluate()
		return
	}
	if s.p.denom > 0 && (s.committedUB+s.p.suffix[i])/s.p.denom <= s.incumbent() {
		s.prunes++
		return
	}
	m := s.env.Mark()
	if s.env.TryAddPair(s.p.pairs[i]) {
		opt := 2 * s.p.pairOpt[i]
		s.committedUB += opt
		s.searchGeneral(i + 1)
		s.committedUB -= opt
		s.env.Undo(m)
	}
	s.searchGeneral(i + 1)
}

// optScore is a static upper bound on a pair's Def. 5.5 score within any
// complete match: equal constants score exactly 1, null-null cells at most
// 1 (⊓ ≥ 1 each side), null-constant cells at most λ. Rows from a
// compatible pair never hold unequal constants at an attribute, so the
// both-ground case contributes exactly 1.
func optScore(lrow, rrow []model.ValueID, lmask, rmask uint64, lambda float64) float64 {
	s := 0.0
	for i := range lrow {
		bit := uint64(1) << i
		switch {
		case lmask&bit != 0 && rmask&bit != 0:
			s++
		case lmask&bit == 0 && rmask&bit == 0:
			s++
		default:
			s += lambda
		}
	}
	return s
}

// newProblem runs CompatibleTuples per relation and prepares the search
// structures for the environment's mode. Cancellation is polled every
// soloPollInterval left rows — candidate generation is quadratic and can
// dominate short deadlines. A canceled build stops enumerating but still
// produces internally consistent (truncated) structures; RunContext never
// searches or canonicalizes against them, because its pre-search ctx.Err()
// check trips first.
func newProblem(ctx context.Context, env *match.Env, lambda float64) *problem {
	p := &problem{
		lambda:     lambda,
		functional: env.Mode.LeftInjective,
		denom:      float64(env.Left.Size() + env.Right.Size()),
	}
	rows := 0
build:
	for ri := range env.LRels {
		lcode, rcode := env.LCode[ri], env.RCode[ri]
		ix := compat.NewCodedIndex(rcode, nil, env.In)
		arity := float64(lcode.Arity)
		for li := 0; li < lcode.Rows(); li++ {
			if rows%soloPollInterval == 0 && ctx.Err() != nil {
				break build
			}
			rows++
			lrow, lmask := lcode.Row(li), lcode.Masks[li]
			// The index reuses its candidate buffer; copy before
			// sorting and storing.
			cs := append([]int(nil), ix.Candidates(lrow, lmask)...)
			lref := match.Ref{Rel: ri, Idx: li}
			// Order candidates by immediate affinity (shared
			// constants first) so good solutions surface early and
			// tighten the bound.
			sort.SliceStable(cs, func(a, b int) bool {
				return sharedConsts(lrow, rcode.Row(cs[a]), lmask&rcode.Masks[cs[a]]) >
					sharedConsts(lrow, rcode.Row(cs[b]), lmask&rcode.Masks[cs[b]])
			})
			lc := leftChoice{ref: lref, arity: arity}
			lc.cands = make([]match.Ref, len(cs))
			lc.opts = make([]float64, len(cs))
			for i, ci := range cs {
				lc.cands[i] = match.Ref{Rel: ri, Idx: ci}
				opt := optScore(lrow, rcode.Row(ci), lmask, rcode.Masks[ci], lambda)
				lc.opts[i] = opt
				if opt > lc.bestOpt {
					lc.bestOpt = opt
				}
				p.pairs = append(p.pairs, match.Pair{L: lref, R: lc.cands[i]})
				p.pairOpt = append(p.pairOpt, opt)
			}
			p.lefts = append(p.lefts, lc)
		}
	}
	// Suffix bound for the functional search: matching lefts[j] adds at
	// most 2·bestOpt to the numerator (its own tuple score plus its
	// partner's).
	p.leftSuffix = make([]float64, len(p.lefts)+1)
	for i := len(p.lefts) - 1; i >= 0; i-- {
		p.leftSuffix[i] = p.leftSuffix[i+1] + 2*p.lefts[i].bestOpt
	}
	// Suffix bound for the general search: a pair can contribute at most
	// its optimistic score to each endpoint's tuple score, but tuples
	// repeat across pairs, so count each tuple's best remaining pair
	// only.
	p.suffix = make([]float64, len(p.pairs)+1)
	bestL := make([]float64, env.NumLeftTuples())
	bestR := make([]float64, env.NumRightTuples())
	for i := len(p.pairs) - 1; i >= 0; i-- {
		pr := p.pairs[i]
		fl, fr := env.FlatL(pr.L), env.FlatR(pr.R)
		add := 0.0
		if opt := p.pairOpt[i]; opt > bestL[fl] {
			add += opt - bestL[fl]
			bestL[fl] = opt
		}
		if opt := p.pairOpt[i]; opt > bestR[fr] {
			add += opt - bestR[fr]
			bestR[fr] = opt
		}
		p.suffix[i] = p.suffix[i+1] + add
	}
	return p
}

// sharedConsts counts attributes where both rows hold the same constant;
// both is the intersection of the rows' ground masks.
func sharedConsts(a, b []model.ValueID, both uint64) int {
	n := 0
	for i := range a {
		if both&(1<<i) != 0 && a[i] == b[i] {
			n++
		}
	}
	return n
}

// warmStart runs the signature algorithm on the search's own environment
// and converts its match into an incumbent. The pairs are re-inserted in
// the search's canonical order (left-tuple order in the functional modes,
// candidate-pair order in the general mode), so the incumbent score is
// bit-identical to the score evaluate() would produce at the corresponding
// leaf — which is what keeps warm-started scores equal to cold ones. The
// environment is returned with an empty mapping either way. The context
// bounds the signature run itself; a canceled warm start still seeds the
// partial match it grew (any prefix of the greedy match is valid).
func warmStart(ctx context.Context, env *match.Env, p *problem) (pairs []match.Pair, sc float64, st *signature.Stats, ok bool) {
	m := env.Mark()
	sig, err := signature.RunEnvContext(ctx, env, signature.Options{Lambda: p.lambda})
	if err != nil {
		env.Undo(m)
		return nil, 0, nil, false
	}
	canon := append([]match.Pair(nil), env.Pairs()...)
	env.Undo(m)
	if !p.canonicalize(env, canon) {
		return nil, 0, nil, false
	}
	if !env.Replay(canon) {
		// Cannot happen for a complete signature match; bail out
		// rather than seed an incumbent no leaf reproduces.
		return nil, 0, nil, false
	}
	if p.denom == 0 {
		sc = 1
	} else {
		sc = score.Match(env, p.lambda)
	}
	pairs = append([]match.Pair(nil), env.Pairs()...)
	env.Undo(m)
	stats := sig.Stats
	return pairs, sc, &stats, true
}

// canonicalize sorts a match's pairs into the DFS insertion order of the
// search and verifies every pair is a known candidate. It reports false
// when some pair is outside the candidate structures (impossible for a
// sound CompatibleTuples; checked defensively because the warm start's
// score equality depends on it).
func (p *problem) canonicalize(env *match.Env, pairs []match.Pair) bool {
	if p.functional {
		//instlint:allow ctxpoll -- one candidate-list scan per warm-start pair, runs once per search; dwarfed by the newProblem build, which does poll
		for _, pr := range pairs {
			lc := &p.lefts[env.FlatL(pr.L)]
			found := false
			for _, r := range lc.cands {
				if r == pr.R {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		sort.Slice(pairs, func(a, b int) bool {
			return env.FlatL(pairs[a].L) < env.FlatL(pairs[b].L)
		})
		return true
	}
	idx := make(map[match.Pair]int, len(p.pairs))
	for i, pr := range p.pairs {
		idx[pr] = i
	}
	for _, pr := range pairs {
		if _, ok := idx[pr]; !ok {
			return false
		}
	}
	sort.Slice(pairs, func(a, b int) bool { return idx[pairs[a]] < idx[pairs[b]] })
	return true
}

// task is one unit of parallel work: the decision prefix identifying a
// subtree. In functional mode decisions[j] is the candidate index chosen
// for left tuple j (-1 = left unmatched); in general mode decisions[j] is
// 1 to include pair j and 0 to exclude it.
type task struct {
	decisions []int32
}

type taskResult struct {
	score float64
	pairs []match.Pair
}

// searchParallel cuts the tree at a prefix depth into subtree tasks and
// runs them on a worker pool. Tasks are enumerated in canonical DFS order
// and results reduced in that same order, so the outcome is a function of
// the task results alone, not of scheduling.
func searchParallel(env *match.Env, p *problem, sh *shared, warm float64, workers, splitDepth int) []taskResult {
	depth := splitDepth
	if depth <= 0 {
		depth = p.autoSplitDepth(workers)
	}
	if depth > p.levels() {
		depth = p.levels()
	}

	// Enumerate feasible prefixes on the root environment, pruning with
	// the warm incumbent; enumeration nodes count against the budget.
	enum := &searcher{p: p, sh: sh, env: env, solo: true, best: warm}
	var tasks []task
	enum.enumerate(0, depth, nil, func(dec []int32) {
		tasks = append(tasks, task{decisions: append([]int32(nil), dec...)})
	})
	enum.publish()
	if enum.stopped || len(tasks) == 0 {
		return nil
	}

	results := make([]taskResult, len(tasks))
	for i := range results {
		// Tasks left unrun by a budget trip must not win the reduction.
		results[i].score = math.Inf(-1)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := &searcher{p: p, sh: sh, env: env.Clone()}
			for {
				ti := int(next.Add(1)) - 1
				if ti >= len(tasks) || sh.stop.Load() {
					break
				}
				results[ti] = ws.runTask(tasks[ti])
			}
			ws.publish()
			sh.addCloneStats(ws.env.Stats)
		}()
	}
	wg.Wait()
	return results
}

// autoSplitDepth picks the shallowest split depth whose decision count
// reaches about eight tasks per worker, so the pool stays busy without
// generating an excessive prefix enumeration.
func (p *problem) autoSplitDepth(workers int) int {
	target := 8 * workers
	if target < 16 {
		target = 16
	}
	prod := 1
	if p.functional {
		for i := range p.lefts {
			prod *= len(p.lefts[i].cands) + 1
			if prod >= target {
				return i + 1
			}
		}
		return len(p.lefts)
	}
	for i := range p.pairs {
		prod *= 2
		if prod >= target {
			return i + 1
		}
	}
	return len(p.pairs)
}

// enumerate walks the prefix levels of the tree in DFS order, emitting the
// decision vector of every feasible, unpruned prefix of the given depth
// (or of a complete assignment, when the tree is shallower).
func (s *searcher) enumerate(i, depth int, dec []int32, emit func([]int32)) {
	if s.budgetExceeded() {
		return
	}
	if i == depth || i == s.p.levels() {
		emit(dec)
		return
	}
	if s.p.functional {
		if s.p.denom > 0 && (s.committedUB+s.p.leftSuffix[i])/s.p.denom <= s.incumbent() {
			s.prunes++
			return
		}
		lc := &s.p.lefts[i]
		for ci, r := range lc.cands {
			m := s.env.Mark()
			if s.env.TryAddPair(match.Pair{L: lc.ref, R: r}) {
				opt := 2 * lc.opts[ci]
				s.committedUB += opt
				s.enumerate(i+1, depth, append(dec, int32(ci)), emit)
				s.committedUB -= opt
				s.env.Undo(m)
			}
		}
		s.enumerate(i+1, depth, append(dec, -1), emit)
		return
	}
	if s.p.denom > 0 && (s.committedUB+s.p.suffix[i])/s.p.denom <= s.incumbent() {
		s.prunes++
		return
	}
	m := s.env.Mark()
	if s.env.TryAddPair(s.p.pairs[i]) {
		opt := 2 * s.p.pairOpt[i]
		s.committedUB += opt
		s.enumerate(i+1, depth, append(dec, 1), emit)
		s.committedUB -= opt
		s.env.Undo(m)
	}
	s.enumerate(i+1, depth, append(dec, 0), emit)
}

// runTask replays the task's prefix decisions into the worker's
// environment and searches the subtree below them, returning the subtree's
// best leaf. Replay cannot fail: feasibility was established during
// enumeration on an environment in the identical state.
func (s *searcher) runTask(t task) taskResult {
	m := s.env.Mark()
	s.best, s.bestPairs = math.Inf(-1), nil
	for level, d := range t.decisions {
		if s.p.functional {
			if d < 0 {
				continue
			}
			lc := &s.p.lefts[level]
			if !s.env.TryAddPair(match.Pair{L: lc.ref, R: lc.cands[d]}) {
				panic("exact: task prefix replay failed")
			}
			s.committedUB += 2 * lc.opts[d]
		} else {
			if d == 0 {
				continue
			}
			if !s.env.TryAddPair(s.p.pairs[level]) {
				panic("exact: task prefix replay failed")
			}
			s.committedUB += 2 * s.p.pairOpt[level]
		}
	}
	s.search(len(t.decisions))
	s.env.Undo(m)
	s.committedUB = 0
	return taskResult{score: s.best, pairs: s.bestPairs}
}

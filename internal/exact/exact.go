// Package exact implements the paper's exact instance-comparison algorithm
// (Sec. 6.1, Alg. 1): enumerate every tuple mapping assembled from
// compatible tuple pairs (Alg. 2), keep the consistent ones, and return the
// instance match with the maximum Def. 5.3 score.
//
// The enumeration is organized as a depth-first branch-and-bound search.
// In the functional (left-injective) modes the search assigns to each left
// tuple one compatible partner or none; in the general mode it
// includes/excludes each compatible pair. A global unifier detects value-
// mapping inconsistencies between pairs (the paper's step 2) and is rolled
// back on backtracking. The instance-comparison problem is NP-hard
// (Thm. 5.11), so the search carries a node/time budget; results indicate
// whether the search space was exhausted.
//
// The search runs on the comparison's integer-coded rows: candidate
// generation probes compat.CodedIndex, the static per-pair bounds read
// ValueIDs and precomputed ground masks, and the suffix bounds accumulate
// in flat arrays indexed by flattened tuple position.
package exact

import (
	"sort"
	"time"

	"instcmp/internal/compat"
	"instcmp/internal/match"
	"instcmp/internal/model"
	"instcmp/internal/score"
)

// Options configures an exact run.
type Options struct {
	// Lambda is the null-to-constant penalty of Def. 5.5.
	Lambda float64
	// MaxNodes bounds the number of search-tree nodes (0 = no bound).
	MaxNodes int64
	// Timeout bounds wall-clock time (0 = no bound).
	Timeout time.Duration
}

// Result is the outcome of an exact search.
type Result struct {
	Env   *match.Env
	Score float64
	// Pairs is the best tuple mapping found.
	Pairs []match.Pair
	// Exhaustive reports whether the whole search space was explored; if
	// false the score is a lower bound on the true similarity.
	Exhaustive bool
	// Nodes is the number of search-tree nodes visited.
	Nodes int64
}

// Run executes the exact algorithm. The returned environment holds the best
// match re-applied, so callers can extract value mappings and explanations.
func Run(left, right *model.Instance, mode match.Mode, opt Options) (*Result, error) {
	env, err := match.NewEnv(left, right, mode)
	if err != nil {
		return nil, err
	}
	s := &searcher{
		env:    env,
		lambda: opt.Lambda,
		maxN:   opt.MaxNodes,
	}
	if opt.Timeout > 0 {
		s.deadline = time.Now().Add(opt.Timeout)
	}
	s.collectPairs()
	s.denom = float64(left.Size() + right.Size())
	s.best = -1
	s.exhausted = true
	if mode.LeftInjective {
		s.searchFunctional(0)
	} else {
		s.searchGeneral(0)
	}

	// Re-apply the best mapping so the returned Env reflects it.
	env.Undo(match.Mark{})
	res := &Result{Env: env, Exhaustive: s.exhausted, Nodes: s.nodes}
	for _, p := range s.bestPairs {
		if !env.TryAddPair(p) {
			panic("exact: best mapping no longer applies")
		}
	}
	res.Pairs = env.Pairs()
	res.Score = score.Match(env, opt.Lambda)
	return res, nil
}

type searcher struct {
	env    *match.Env
	lambda float64

	// Functional search state: per left tuple, its candidate partners.
	lefts []leftChoice
	// General search state: the flattened compatible pair list.
	pairs []match.Pair
	// pairOpt[i] is the optimistic score of pairs[i].
	pairOpt []float64
	// suffix[i] is an upper bound on the numerator contribution still
	// obtainable from pairs[i:] (general mode).
	suffix []float64
	// leftSuffix[i] bounds the contribution of lefts[i:] (functional).
	leftSuffix []float64
	// committedUB is a running upper bound on the numerator contribution
	// of the pairs currently in the environment (2 x optimistic score
	// each), maintained incrementally.
	committedUB float64

	denom     float64
	best      float64
	bestPairs []match.Pair
	nodes     int64
	maxN      int64
	deadline  time.Time
	exhausted bool
	stopped   bool
}

type leftChoice struct {
	ref   match.Ref
	cands []match.Ref
	// opts[i] is the optimistic score of matching cands[i].
	opts  []float64
	arity float64
	// bestOpt is the largest optimistic pair score among the candidates:
	// an upper bound on what matching this tuple can contribute per side.
	bestOpt float64
}

// optScore is a static upper bound on a pair's Def. 5.5 score within any
// complete match: equal constants score exactly 1, null-null cells at most
// 1 (⊓ ≥ 1 each side), null-constant cells at most λ. Rows from a
// compatible pair never hold unequal constants at an attribute, so the
// both-ground case contributes exactly 1.
func optScore(lrow, rrow []model.ValueID, lmask, rmask uint64, lambda float64) float64 {
	s := 0.0
	for i := range lrow {
		bit := uint64(1) << i
		switch {
		case lmask&bit != 0 && rmask&bit != 0:
			s++
		case lmask&bit == 0 && rmask&bit == 0:
			s++
		default:
			s += lambda
		}
	}
	return s
}

// collectPairs runs CompatibleTuples per relation and prepares the search
// structures for the configured mode.
func (s *searcher) collectPairs() {
	for ri := range s.env.LRels {
		lcode, rcode := s.env.LCode[ri], s.env.RCode[ri]
		ix := compat.NewCodedIndex(rcode, nil, s.env.In)
		arity := float64(lcode.Arity)
		for li := 0; li < lcode.Rows(); li++ {
			lrow, lmask := lcode.Row(li), lcode.Masks[li]
			// The index reuses its candidate buffer; copy before
			// sorting and storing.
			cs := append([]int(nil), ix.Candidates(lrow, lmask)...)
			lref := match.Ref{Rel: ri, Idx: li}
			// Order candidates by immediate affinity (shared
			// constants first) so good solutions surface early and
			// tighten the bound.
			sort.SliceStable(cs, func(a, b int) bool {
				return sharedConsts(lrow, rcode.Row(cs[a]), lmask&rcode.Masks[cs[a]]) >
					sharedConsts(lrow, rcode.Row(cs[b]), lmask&rcode.Masks[cs[b]])
			})
			lc := leftChoice{ref: lref, arity: arity}
			lc.cands = make([]match.Ref, len(cs))
			lc.opts = make([]float64, len(cs))
			for i, ci := range cs {
				lc.cands[i] = match.Ref{Rel: ri, Idx: ci}
				opt := optScore(lrow, rcode.Row(ci), lmask, rcode.Masks[ci], s.lambda)
				lc.opts[i] = opt
				if opt > lc.bestOpt {
					lc.bestOpt = opt
				}
				s.pairs = append(s.pairs, match.Pair{L: lref, R: lc.cands[i]})
				s.pairOpt = append(s.pairOpt, opt)
			}
			s.lefts = append(s.lefts, lc)
		}
	}
	// Suffix bound for the functional search: matching lefts[j] adds at
	// most 2·bestOpt to the numerator (its own tuple score plus its
	// partner's).
	s.leftSuffix = make([]float64, len(s.lefts)+1)
	for i := len(s.lefts) - 1; i >= 0; i-- {
		s.leftSuffix[i] = s.leftSuffix[i+1] + 2*s.lefts[i].bestOpt
	}
	// Suffix bound for the general search: a pair can contribute at most
	// its optimistic score to each endpoint's tuple score, but tuples
	// repeat across pairs, so count each tuple's best remaining pair
	// only.
	s.suffix = make([]float64, len(s.pairs)+1)
	bestL := make([]float64, s.env.NumLeftTuples())
	bestR := make([]float64, s.env.NumRightTuples())
	for i := len(s.pairs) - 1; i >= 0; i-- {
		p := s.pairs[i]
		fl, fr := s.env.FlatL(p.L), s.env.FlatR(p.R)
		add := 0.0
		if opt := s.pairOpt[i]; opt > bestL[fl] {
			add += opt - bestL[fl]
			bestL[fl] = opt
		}
		if opt := s.pairOpt[i]; opt > bestR[fr] {
			add += opt - bestR[fr]
			bestR[fr] = opt
		}
		s.suffix[i] = s.suffix[i+1] + add
	}
}

// sharedConsts counts attributes where both rows hold the same constant;
// both is the intersection of the rows' ground masks.
func sharedConsts(a, b []model.ValueID, both uint64) int {
	n := 0
	for i := range a {
		if both&(1<<i) != 0 && a[i] == b[i] {
			n++
		}
	}
	return n
}

// budgetExceeded checks the node/time budget; once it trips, it stays
// tripped so the whole search unwinds immediately and the result is marked
// inexact.
func (s *searcher) budgetExceeded() bool {
	if s.stopped {
		return true
	}
	s.nodes++
	if s.maxN > 0 && s.nodes > s.maxN {
		s.stopped, s.exhausted = true, false
		return true
	}
	if !s.deadline.IsZero() && s.nodes%1024 == 0 && time.Now().After(s.deadline) {
		s.stopped, s.exhausted = true, false
		return true
	}
	return false
}

// evaluate scores the current mapping and records it if it is the best.
func (s *searcher) evaluate() {
	var sc float64
	if s.denom == 0 {
		sc = 1
	} else {
		sc = score.Match(s.env, s.lambda)
	}
	if sc > s.best {
		s.best = sc
		s.bestPairs = append(s.bestPairs[:0], s.env.Pairs()...)
	}
}

// searchFunctional assigns each left tuple (in order) one candidate or none.
// Right-injectivity, when required by the mode, is enforced by TryAddPair.
func (s *searcher) searchFunctional(i int) {
	if s.budgetExceeded() {
		return
	}
	if i == len(s.lefts) {
		s.evaluate()
		return
	}
	// Optimistic bound: committed pairs contribute at most their
	// optimistic scores (⊓ growth only lowers them), remaining left
	// tuples at most 2·bestOpt each.
	if s.denom > 0 && (s.committedUB+s.leftSuffix[i])/s.denom <= s.best {
		return
	}
	lc := s.lefts[i]
	for ci, r := range lc.cands {
		m := s.env.Mark()
		if s.env.TryAddPair(match.Pair{L: lc.ref, R: r}) {
			opt := 2 * lc.opts[ci]
			s.committedUB += opt
			s.searchFunctional(i + 1)
			s.committedUB -= opt
			s.env.Undo(m)
		}
	}
	// The unmatched branch: Def. 5.3 can prefer leaving a tuple out.
	s.searchFunctional(i + 1)
}

// searchGeneral includes or excludes each compatible pair.
func (s *searcher) searchGeneral(i int) {
	if s.budgetExceeded() {
		return
	}
	if i == len(s.pairs) {
		s.evaluate()
		return
	}
	if s.denom > 0 && (s.committedUB+s.suffix[i])/s.denom <= s.best {
		return
	}
	m := s.env.Mark()
	if s.env.TryAddPair(s.pairs[i]) {
		opt := 2 * s.pairOpt[i]
		s.committedUB += opt
		s.searchGeneral(i + 1)
		s.committedUB -= opt
		s.env.Undo(m)
	}
	s.searchGeneral(i + 1)
}

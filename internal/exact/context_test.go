package exact

import (
	"context"
	"testing"
	"time"

	"instcmp/internal/match"
	"instcmp/internal/model"
)

// hardInstances builds a pair of instances whose general-mode search space
// (rows² pairs, 2^(rows²) subsets) cannot be exhausted in test time: an
// all-null left against a mixed null/constant right, so the warm start cannot
// reach the root's optimistic bound (constants only earn λ against nulls) and
// the search actually descends.
func hardInstances(rows int) (*model.Instance, *model.Instance) {
	l := make([][]model.Value, rows)
	r := make([][]model.Value, rows)
	for i := range l {
		l[i] = []model.Value{n(model.Nullf("L%d", i).Raw()), n(model.Nullf("LL%d", i).Raw())}
		r[i] = []model.Value{n(model.Nullf("R%d", i).Raw()), c(model.Constf("k%d", i).Raw())}
	}
	return build(l), build(r)
}

// TestContextPreCanceled: a context canceled before the call returns promptly
// with the warm incumbent and Stopped = StoppedCanceled; no search runs.
func TestContextPreCanceled(t *testing.T) {
	l, r := hardInstances(12)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	res, err := RunContext(ctx, l, r, match.ManyToMany, Options{Lambda: lambda, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("pre-canceled run took %v", elapsed)
	}
	if res.Stopped != StoppedCanceled {
		t.Errorf("Stopped = %q, want %q", res.Stopped, StoppedCanceled)
	}
	if res.Exhaustive {
		t.Error("canceled run reported exhaustive")
	}
}

// TestContextCancelMidSearch: cancellation mid-search returns promptly
// (within the node-loop poll interval) for both the solo and the parallel
// engine, keeping the best incumbent found so far — at minimum the warm
// start's match.
func TestContextCancelMidSearch(t *testing.T) {
	l, r := hardInstances(12)
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(30 * time.Millisecond)
			cancel()
		}()
		start := time.Now()
		res, err := RunContext(ctx, l, r, match.ManyToMany, Options{Lambda: lambda, Workers: workers})
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		elapsed := time.Since(start)
		if res.Exhaustive {
			t.Logf("workers=%d: search finished before the cancel (fast machine); no assertion", workers)
			continue
		}
		if res.Stopped != StoppedCanceled {
			t.Errorf("workers=%d: Stopped = %q, want %q", workers, res.Stopped, StoppedCanceled)
		}
		// Polls happen at least every soloPollInterval (solo) or
		// nodeFlushBatch (parallel) nodes, each node being microseconds:
		// seconds of overshoot would mean cancellation is broken.
		if elapsed > 5*time.Second {
			t.Errorf("workers=%d: canceled search ran %v", workers, elapsed)
		}
		if res.WarmScore >= 0 && res.Score < res.WarmScore {
			t.Errorf("workers=%d: canceled score %v below warm incumbent %v", workers, res.Score, res.WarmScore)
		}
	}
}

// TestTimeoutOvershootBounded pins the Options.Timeout contract: the solo
// engine polls the deadline every soloPollInterval nodes, so the search stops
// within a bounded overshoot of the deadline rather than running the tree to
// the end.
func TestTimeoutOvershootBounded(t *testing.T) {
	l, r := hardInstances(12)
	const budget = 50 * time.Millisecond
	start := time.Now()
	res, err := RunContext(context.Background(), l, r, match.ManyToMany,
		Options{Lambda: lambda, Timeout: budget, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if res.Exhaustive {
		t.Fatal("12-row all-null general search cannot be exhausted within the timeout")
	}
	if res.Stopped != StoppedTimeout {
		t.Errorf("Stopped = %q, want %q", res.Stopped, StoppedTimeout)
	}
	// soloPollInterval nodes between deadline polls, microseconds per node:
	// the overshoot must stay far below seconds even on a loaded CI box.
	if elapsed > budget+2*time.Second {
		t.Errorf("timeout overshot: ran %v against a %v budget", elapsed, budget)
	}
	if res.WarmScore >= 0 && res.Score < res.WarmScore {
		t.Errorf("timed-out score %v below warm incumbent %v", res.Score, res.WarmScore)
	}
}

// TestStatsPopulated: an exhaustive run reports its node, prune, improvement,
// and pair-attempt counters, and collecting them does not change the score.
func TestStatsPopulated(t *testing.T) {
	l := build([][]model.Value{{c("a"), n("N1")}, {c("x"), n("N2")}})
	r := build([][]model.Value{{c("a"), c("b")}, {c("x"), n("V1")}})
	// Cold run: the first leaf always improves on the empty incumbent, so
	// Improvements must be positive (a warm-started run may start optimal).
	res, err := Run(l, r, match.OneToOne, Options{Lambda: lambda, Workers: 1, NoWarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes == 0 {
		t.Error("Nodes = 0 after a real search")
	}
	if res.Improvements == 0 {
		t.Error("Improvements = 0 after finding a best leaf")
	}
	if res.EnvStats.PairAttempts == 0 {
		t.Error("EnvStats.PairAttempts = 0 after a search that adds pairs")
	}
	par, err := Run(l, r, match.OneToOne, Options{Lambda: lambda, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if par.Score != res.Score {
		t.Errorf("stats collection perturbed the score: %v vs %v", par.Score, res.Score)
	}
	if par.EnvStats.PairAttempts == 0 {
		t.Error("parallel EnvStats.PairAttempts = 0: worker clones not aggregated")
	}
}

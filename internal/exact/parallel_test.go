package exact

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"instcmp/internal/match"
	"instcmp/internal/model"
)

// randomInstance builds a noisy instance for engine-equivalence tests:
// enough overlap that matches exist, enough nulls that the search branches.
func randomInstance(rng *rand.Rand, side string, rows, cols, vals int, nullPct float64) *model.Instance {
	in := model.NewInstance()
	attrs := make([]string, cols)
	for j := range attrs {
		attrs[j] = string(rune('A' + j))
	}
	in.AddRelation("R", attrs...)
	for i := 0; i < rows; i++ {
		row := make([]model.Value, cols)
		for j := range row {
			if rng.Float64() < nullPct {
				row[j] = model.Nullf("%s_%d_%d", side, i, j)
			} else {
				row[j] = model.Constf("c%d", rng.Intn(vals))
			}
		}
		in.Append("R", row...)
	}
	return in
}

// TestEngineVariantsBitIdentical is the tentpole's core promise: the score
// is bit-identical (==, not approximately equal) across worker counts and
// with/without the warm start.
func TestEngineVariantsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	modes := []match.Mode{match.OneToOne, match.Functional, match.ManyToMany}
	for trial := 0; trial < 12; trial++ {
		rows := 4 + trial%3
		l := randomInstance(rng, "L", rows, 3, 4, 0.3)
		r := randomInstance(rng, "R", rows, 3, 4, 0.3)
		mode := modes[trial%len(modes)]

		variants := []Options{
			{Lambda: lambda, Workers: 1},
			{Lambda: lambda, Workers: 1, NoWarmStart: true},
			{Lambda: lambda, Workers: 4},
			{Lambda: lambda, Workers: 4, NoWarmStart: true},
			{Lambda: lambda, Workers: 4, SplitDepth: 1},
			{Lambda: lambda, Workers: 2, SplitDepth: 3},
		}
		var ref *Result
		for vi, opt := range variants {
			res, err := Run(l, r, mode, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Exhaustive {
				t.Fatalf("trial %d variant %d: unbudgeted search not exhaustive", trial, vi)
			}
			if vi == 0 {
				ref = res
				continue
			}
			if res.Score != ref.Score {
				t.Fatalf("trial %d mode %v variant %+v: score %v != reference %v",
					trial, mode, opt, res.Score, ref.Score)
			}
		}
	}
}

// TestWarmStartSeedsIncumbent: a warm-started search reports the signature
// score it started from, and on instances where the signature is optimal
// the search just certifies it.
func TestWarmStartSeedsIncumbent(t *testing.T) {
	l := build([][]model.Value{{c("a"), c("b")}, {c("x"), n("N1")}})
	r := build([][]model.Value{{c("a"), c("b")}, {c("x"), n("V1")}})
	res, err := Run(l, r, match.OneToOne, Options{Lambda: lambda, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.WarmScore-1) > 1e-9 {
		t.Errorf("WarmScore = %v, want 1 (signature finds the isomorphism)", res.WarmScore)
	}
	if res.Score != 1 {
		t.Errorf("score = %v, want 1", res.Score)
	}
	cold, err := Run(l, r, match.OneToOne, Options{Lambda: lambda, Workers: 1, NoWarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if cold.WarmScore != -1 {
		t.Errorf("cold WarmScore = %v, want -1", cold.WarmScore)
	}
	if res.Nodes >= cold.Nodes {
		t.Errorf("warm start did not prune: %d warm nodes vs %d cold", res.Nodes, cold.Nodes)
	}
}

// TestBudgetExpiredReturnsWarmMatch pins the satellite-2 fix: when the
// budget expires before the search improves on the warm start, the result
// carries the signature match, not an empty mapping.
func TestBudgetExpiredReturnsWarmMatch(t *testing.T) {
	// Ex. 3.1: the signature match scores (12+4λ)/24, the root's optimistic
	// bound is higher, so a 1-node budget trips before the first leaf.
	l := model.NewInstance()
	l.AddRelation("Conf", "Id", "Name", "Year", "Org")
	l.Append("Conf", n("N1"), c("VLDB"), c("1975"), c("VLDB End."))
	l.Append("Conf", n("N2"), c("VLDB"), n("N4"), c("VLDB End."))
	l.Append("Conf", n("N3"), c("SIGMOD"), c("1977"), c("ACM"))
	r := model.NewInstance()
	r.AddRelation("Conf", "Id", "Name", "Year", "Org")
	r.Append("Conf", n("Va"), c("VLDB"), c("1975"), c("VLDB End."))
	r.Append("Conf", n("Vb"), c("VLDB"), c("1976"), n("Vc"))
	r.Append("Conf", c("3"), c("ICDE"), c("1984"), c("IEEE"))
	res, err := Run(l, r, match.OneToOne, Options{Lambda: lambda, MaxNodes: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exhaustive {
		t.Fatal("one-node budget cannot be exhaustive here")
	}
	if res.WarmScore < 0 {
		t.Fatal("warm start did not run")
	}
	if len(res.Pairs) == 0 {
		t.Error("budget-expired result lost the warm-start match")
	}
	if res.Score != res.WarmScore {
		t.Errorf("budget-expired score = %v, want the warm score %v", res.Score, res.WarmScore)
	}

	// Same budget without the warm start: the old empty-mapping behavior.
	cold, err := Run(l, r, match.OneToOne,
		Options{Lambda: lambda, MaxNodes: 1, Workers: 1, NoWarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(cold.Pairs) != 0 {
		t.Errorf("cold 1-node search returned %d pairs, want 0", len(cold.Pairs))
	}
	if cold.Score >= res.Score {
		t.Errorf("warm budget-expired score %v should beat cold %v here", res.Score, cold.Score)
	}
}

// TestParallelBudget pins the satellite-3 semantics: under parallel
// execution the node budget is honored within one flush batch per worker
// plus one task transition, and no goroutines leak.
func TestParallelBudget(t *testing.T) {
	before := runtime.NumGoroutine()
	rows := make([][]model.Value, 10)
	rows2 := make([][]model.Value, 10)
	for i := range rows {
		rows[i] = []model.Value{n(model.Nullf("L%d", i).Raw()), n(model.Nullf("LL%d", i).Raw())}
		rows2[i] = []model.Value{n(model.Nullf("R%d", i).Raw()), n(model.Nullf("RR%d", i).Raw())}
	}
	const workers, maxNodes = 4, 2000
	res, err := Run(build(rows), build(rows2), match.ManyToMany,
		Options{Lambda: lambda, MaxNodes: maxNodes, Workers: workers, NoWarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exhaustive {
		t.Fatal("100-pair general search cannot finish in 2000 nodes")
	}
	// Every worker may overshoot by at most one unflushed batch, plus one
	// batch of enumeration slack.
	slack := int64((workers + 1) * nodeFlushBatch)
	if res.Nodes > maxNodes+slack {
		t.Errorf("parallel budget overshot: %d nodes > %d + %d", res.Nodes, maxNodes, slack)
	}
	// Workers must all have exited (wg.Wait in searchParallel); allow the
	// runtime a moment to retire them before counting.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutine leak: %d before, %d after", before, after)
	}
}

// TestParallelTimeout: the deadline stops a parallel search promptly.
func TestParallelTimeout(t *testing.T) {
	rows := make([][]model.Value, 12)
	rows2 := make([][]model.Value, 12)
	for i := range rows {
		rows[i] = []model.Value{n(model.Nullf("L%d", i).Raw()), n(model.Nullf("LL%d", i).Raw())}
		rows2[i] = []model.Value{n(model.Nullf("R%d", i).Raw()), n(model.Nullf("RR%d", i).Raw())}
	}
	start := time.Now()
	res, err := Run(build(rows), build(rows2), match.ManyToMany,
		Options{Lambda: lambda, Timeout: 50 * time.Millisecond, Workers: 4, NoWarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("parallel timeout ignored: ran %v", elapsed)
	}
	if res.Exhaustive {
		t.Log("note: search finished within the timeout (machine is fast); no assertion")
	}
}

// TestSplitDepthVariantsExhaustive: extreme split depths (every level a
// task boundary / no split at all) still explore the full space.
func TestSplitDepthVariantsExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	l := randomInstance(rng, "L", 4, 2, 3, 0.3)
	r := randomInstance(rng, "R", 4, 2, 3, 0.3)
	ref, err := Run(l, r, match.OneToOne, Options{Lambda: lambda, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, depth := range []int{1, 2, 100} {
		res, err := Run(l, r, match.OneToOne,
			Options{Lambda: lambda, Workers: 3, SplitDepth: depth})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Exhaustive {
			t.Fatalf("depth %d: not exhaustive", depth)
		}
		if res.Score != ref.Score {
			t.Fatalf("depth %d: score %v != %v", depth, res.Score, ref.Score)
		}
	}
}

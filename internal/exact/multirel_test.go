package exact

import (
	"math"
	"math/rand"
	"testing"

	"instcmp/internal/match"
	"instcmp/internal/model"
	"instcmp/internal/signature"
)

// Multi-relation exact search: cross-relation null constraints must be
// honored by the search's global unifier, and the signature algorithm must
// stay a lower bound.

func mkExchange(key1, key2 model.Value, place model.Value) *model.Instance {
	in := model.NewInstance()
	in.AddRelation("Conf", "Id", "Name", "Place")
	in.AddRelation("Paper", "Title", "ConfId")
	in.Append("Conf", key1, c("VLDB"), place)
	in.Append("Conf", key2, c("SIGMOD"), c("SJ"))
	in.Append("Paper", c("QBE"), key1)
	in.Append("Paper", c("ER"), key2)
	return in
}

func TestExactCrossRelationSurrogates(t *testing.T) {
	l := mkExchange(n("N1"), n("N2"), n("N3"))
	r := mkExchange(c("1"), c("2"), c("Rome"))
	res, err := Run(l, r, match.OneToOne, Options{Lambda: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhaustive {
		t.Fatal("budget hit on tiny instance")
	}
	if len(res.Pairs) != 4 {
		t.Fatalf("pairs = %d, want all 4 tuples matched", len(res.Pairs))
	}
	// N1 must map to 1 (the join with Paper forces it), N2 to 2.
	if got := res.Env.U.Representative(n("N1")); got != c("1") {
		t.Errorf("N1 -> %v, want 1", got)
	}
	if got := res.Env.U.Representative(n("N2")); got != c("2") {
		t.Errorf("N2 -> %v, want 2", got)
	}
	// Pair scores: Conf(N1,VLDB,N3) -> λ+1+λ = 2; Conf(N2,SIGMOD,SJ) ->
	// λ+1+1 = 2.5; each Paper pair -> 1+λ = 1.5. Tuple scores double the
	// pair scores (both endpoints), normalized by size 10+10.
	want := 2 * (2 + 2.5 + 1.5 + 1.5) / 20.0
	if math.Abs(res.Score-want) > 1e-9 {
		t.Errorf("score = %v, want %v", res.Score, want)
	}
}

func TestExactCrossRelationConflict(t *testing.T) {
	l := mkExchange(n("N1"), n("N2"), c("Rome"))
	// Break the join on the right: Paper references different ids.
	r := model.NewInstance()
	r.AddRelation("Conf", "Id", "Name", "Place")
	r.AddRelation("Paper", "Title", "ConfId")
	r.Append("Conf", c("1"), c("VLDB"), c("Rome"))
	r.Append("Conf", c("2"), c("SIGMOD"), c("SJ"))
	r.Append("Paper", c("QBE"), c("9"))
	r.Append("Paper", c("ER"), c("8"))
	res, err := Run(l, r, match.OneToOne, Options{Lambda: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// N1 can serve the Conf pair or the Paper pair, not both; same for
	// N2. The optimum matches all four tuples anyway? No: matching
	// Conf(N1..)->Conf(1..) binds N1=1, then Paper(QBE,N1) needs a
	// Paper with ConfId 1 — absent. The optimum picks, per null, the
	// more valuable side (Conf pairs have arity 3 > 2).
	if len(res.Pairs) != 2 {
		t.Fatalf("pairs = %d, want 2 (one per null)", len(res.Pairs))
	}
	for _, p := range res.Pairs {
		if res.Env.LRels[p.L.Rel].Name != "Conf" {
			t.Errorf("optimum should prefer the wider Conf pairs, got %s", res.Env.LRels[p.L.Rel].Name)
		}
	}
}

func TestSignatureLowerBoundsExactMultiRelation(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 15; trial++ {
		mk := func(side string) *model.Instance {
			in := model.NewInstance()
			in.AddRelation("A", "X", "Y")
			in.AddRelation("B", "Z")
			key := model.Nullf("%s%d", side, trial)
			for i := 0; i < 2+rng.Intn(2); i++ {
				v := model.Constf("c%d", rng.Intn(3))
				if rng.Intn(3) == 0 {
					in.Append("A", key, v)
				} else {
					in.Append("A", model.Constf("k%d", rng.Intn(3)), v)
				}
			}
			in.Append("B", key)
			return in
		}
		l, r := mk("L"), mk("R")
		ex, err := Run(l, r, match.ManyToMany, Options{Lambda: 0.5, MaxNodes: 2_000_000})
		if err != nil {
			t.Fatal(err)
		}
		if !ex.Exhaustive {
			continue
		}
		sig, err := signature.Run(l, r, match.ManyToMany, signature.Options{Lambda: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		if sig.Score > ex.Score+1e-9 {
			t.Fatalf("trial %d: signature %v above exact %v\n%s\n%s", trial, sig.Score, ex.Score, l, r)
		}
	}
}

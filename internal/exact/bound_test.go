package exact

// Tests pinning the soundness of the branch-and-bound's pruning: an
// exhaustive exact run must dominate every known complete match, across
// workloads and modes. A bound bug (pruning the optimum away) shows up here
// as exact < reference.

import (
	"math/rand"
	"testing"

	"instcmp/internal/datasets"
	"instcmp/internal/generator"
	"instcmp/internal/match"
	"instcmp/internal/model"
	"instcmp/internal/signature"
)

func TestExactDominatesReferences(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		base := datasets.Doctors(60, rand.New(rand.NewSource(seed)))
		for _, tc := range []struct {
			mode  match.Mode
			noise generator.Noise
		}{
			{match.OneToOne, generator.Noise{CellPct: 0.05, NullReuse: 0.3, Seed: seed}},
			{match.OneToOne, generator.Noise{CellPct: 0.30, Seed: seed}},
			{match.Functional, generator.Noise{CellPct: 0.10, Seed: seed}},
		} {
			sc := generator.Make(base, tc.noise)
			ex, err := Run(sc.Source, sc.Target, tc.mode, Options{Lambda: 0.5, MaxNodes: 30_000_000})
			if err != nil {
				t.Fatal(err)
			}
			if !ex.Exhaustive {
				continue // no optimality claim without exhaustion
			}
			ref, err := sc.BestKnownScore(0.5, tc.mode)
			if err != nil {
				t.Fatal(err)
			}
			if ex.Score < ref-1e-9 {
				t.Errorf("seed %d mode %v: exhaustive exact %v below constructed match %v (bound pruned the optimum)",
					seed, tc.mode, ex.Score, ref)
			}
			sig, err := signature.Run(sc.Source, sc.Target, tc.mode, signature.Options{Lambda: 0.5})
			if err != nil {
				t.Fatal(err)
			}
			if ex.Score < sig.Score-1e-9 {
				t.Errorf("seed %d mode %v: exhaustive exact %v below signature %v",
					seed, tc.mode, ex.Score, sig.Score)
			}
		}
	}
}

func TestOptScoreBounds(t *testing.T) {
	c := model.Const
	n := model.Null
	cases := []struct {
		l, r []model.Value
		want float64
	}{
		{[]model.Value{c("a"), c("b")}, []model.Value{c("a"), c("b")}, 2},
		{[]model.Value{c("a"), n("N")}, []model.Value{c("a"), c("b")}, 1.5},
		{[]model.Value{n("N"), n("M")}, []model.Value{n("V"), c("b")}, 1.5},
		{[]model.Value{n("N")}, []model.Value{n("V")}, 1},
	}
	in := model.NewInterner()
	code := func(vals []model.Value) (row []model.ValueID, mask uint64) {
		for a, v := range vals {
			row = append(row, in.Intern(v))
			if v.IsConst() {
				mask |= 1 << a
			}
		}
		return row, mask
	}
	for _, tc := range cases {
		lrow, lmask := code(tc.l)
		rrow, rmask := code(tc.r)
		if got := optScore(lrow, rrow, lmask, rmask, 0.5); got != tc.want {
			t.Errorf("optScore(%v, %v) = %v, want %v", tc.l, tc.r, got, tc.want)
		}
	}
}

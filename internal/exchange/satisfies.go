package exchange

import (
	"instcmp/internal/hom"
	"instcmp/internal/model"
)

// Satisfies checks (source, target) |= Σ: for every tgd and every binding
// of its body against the source, the head — with body variables fixed to
// their bound values and existential variables free — embeds
// homomorphically into the target. This is the solution check of data
// exchange (Fagin et al.): Chase always produces a satisfying target, and
// Satisfies lets the evaluation verify externally produced solutions too.
//
// Source bindings may themselves be labeled nulls (incomplete sources);
// they act as fixed values of the constraint, so both the materialized
// head and the target are checked with those nulls frozen into reserved
// constants, while the head's existential nulls remain free.
func (m Mapping) Satisfies(source, target *model.Instance) (bool, error) {
	if err := m.Validate(source, target); err != nil {
		return false, err
	}
	frozenTarget := freezeNulls(target)
	for _, tgd := range m {
		exVars := existentialVars(tgd)
		for _, b := range matchBody(source, tgd.Body) {
			head := model.NewInstance()
			ex := map[string]model.Value{}
			for _, x := range exVars {
				ex[x] = head.FreshNull("sx_")
			}
			for _, h := range tgd.Head {
				if head.Relation(h.Rel) == nil {
					t := target.Relation(h.Rel)
					head.AddRelation(t.Name, t.Attrs...)
				}
				vals := make([]model.Value, len(h.Args))
				for i, arg := range h.Args {
					switch {
					case !arg.isVar():
						vals[i] = model.Const(arg.Const)
					case b[arg.Var] != (model.Value{}):
						vals[i] = freezeValue(b[arg.Var])
					default:
						vals[i] = ex[arg.Var]
					}
				}
				head.Append(h.Rel, vals...)
			}
			if !hom.Exists(head, frozenTarget) {
				return false, nil
			}
		}
	}
	return true, nil
}

// freezeValue turns a labeled null into a reserved constant so it can only
// match itself.
func freezeValue(v model.Value) model.Value {
	if v.IsConst() {
		return v
	}
	return model.Const("\x00frozen:" + v.Raw())
}

// freezeNulls clones an instance with every null frozen per freezeValue.
func freezeNulls(in *model.Instance) *model.Instance {
	out := in.Clone()
	for _, rel := range out.Relations() {
		for ti := range rel.Tuples {
			for vi, v := range rel.Tuples[ti].Values {
				rel.Tuples[ti].Values[vi] = freezeValue(v)
			}
		}
	}
	return out
}

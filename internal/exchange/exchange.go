// Package exchange is the data-exchange substrate of the paper's Table 6
// experiment: source-to-target tuple-generating dependencies (s-t tgds), a
// naive chase producing universal solutions with fresh labeled nulls for
// existential variables, and core solutions computed by folding (package
// hom). The Doctors scenarios mirror the paper's setup: a gold (core)
// solution, two correct but increasingly redundant user mappings (U1, U2),
// and a wrong mapping that populates the target from the wrong source
// relation.
package exchange

import (
	"fmt"
	"sort"
	"strings"

	"instcmp/internal/hom"
	"instcmp/internal/model"
)

// Term is one argument of an atom: a variable or a constant.
type Term struct {
	Var   string
	Const string
}

// V returns a variable term.
func V(name string) Term { return Term{Var: name} }

// C returns a constant term.
func C(s string) Term { return Term{Const: s} }

func (t Term) isVar() bool { return t.Var != "" }

// Atom is a relational atom R(t1, ..., tn).
type Atom struct {
	Rel  string
	Args []Term
}

// A builds an atom.
func A(rel string, args ...Term) Atom { return Atom{Rel: rel, Args: args} }

// TGD is a source-to-target tuple-generating dependency
// ∀x̄ (body(x̄) → ∃ȳ head(x̄, ȳ)): head variables that do not occur in the
// body are existential and chase into fresh labeled nulls.
type TGD struct {
	Body []Atom
	Head []Atom
}

// Mapping is a schema mapping Σ: a set of s-t tgds.
type Mapping []TGD

// Validate checks that every tgd's atoms match the source and target
// schemas' relations and arities.
func (m Mapping) Validate(source, target *model.Instance) error {
	check := func(a Atom, in *model.Instance, side string) error {
		rel := in.Relation(a.Rel)
		if rel == nil {
			return fmt.Errorf("exchange: %s relation %q not in schema", side, a.Rel)
		}
		if rel.Arity() != len(a.Args) {
			return fmt.Errorf("exchange: atom %s/%d does not match arity %d", a.Rel, len(a.Args), rel.Arity())
		}
		return nil
	}
	for _, tgd := range m {
		for _, a := range tgd.Body {
			if err := check(a, source, "source"); err != nil {
				return err
			}
		}
		for _, a := range tgd.Head {
			if err := check(a, target, "target"); err != nil {
				return err
			}
		}
	}
	return nil
}

// Chase runs the naive (oblivious) chase of the mapping over the source,
// materializing the head of every tgd for every body match. Existential
// variables become fresh labeled nulls, one per variable per body binding
// (Skolemization over the full binding). The result is a universal solution
// for (source, Σ). The target argument provides the target schema (its
// relations are cloned empty, its tuples ignored).
func Chase(source *model.Instance, targetSchema *model.Instance, m Mapping) (*model.Instance, error) {
	if err := m.Validate(source, targetSchema); err != nil {
		return nil, err
	}
	out := model.NewInstance()
	for _, rel := range targetSchema.Relations() {
		out.AddRelation(rel.Name, rel.Attrs...)
	}
	seen := map[string]bool{} // dedupe fully identical emitted tuples
	for ti, tgd := range m {
		exVars := existentialVars(tgd)
		bindings := matchBody(source, tgd.Body)
		for _, b := range bindings {
			// Fresh nulls for this binding's existential variables.
			ex := map[string]model.Value{}
			for _, x := range exVars {
				ex[x] = out.FreshNull(fmt.Sprintf("E%d_%s_", ti, x))
			}
			for _, h := range tgd.Head {
				vals := make([]model.Value, len(h.Args))
				for i, arg := range h.Args {
					switch {
					case !arg.isVar():
						vals[i] = model.Const(arg.Const)
					case b[arg.Var] != (model.Value{}):
						vals[i] = b[arg.Var]
					default:
						vals[i] = ex[arg.Var]
					}
				}
				key := h.Rel + "\x00" + (&model.Tuple{Values: vals}).ValueKey()
				if len(exVars) == 0 {
					// Fully determined tuples dedupe (set
					// semantics); tuples with fresh nulls
					// are unique by construction.
					if seen[key] {
						continue
					}
					seen[key] = true
				}
				out.Append(h.Rel, vals...)
			}
		}
	}
	return out, nil
}

// existentialVars returns head variables that never occur in the body, in
// deterministic order.
func existentialVars(tgd TGD) []string {
	inBody := map[string]bool{}
	for _, a := range tgd.Body {
		for _, t := range a.Args {
			if t.isVar() {
				inBody[t.Var] = true
			}
		}
	}
	set := map[string]bool{}
	for _, a := range tgd.Head {
		for _, t := range a.Args {
			if t.isVar() && !inBody[t.Var] {
				set[t.Var] = true
			}
		}
	}
	vars := make([]string, 0, len(set))
	for v := range set {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	return vars
}

// matchBody enumerates all bindings of the body's variables against the
// source instance (nested-loop join, atom by atom).
func matchBody(source *model.Instance, body []Atom) []map[string]model.Value {
	bindings := []map[string]model.Value{{}}
	for _, atom := range body {
		rel := source.Relation(atom.Rel)
		var next []map[string]model.Value
		for _, b := range bindings {
			for ti := range rel.Tuples {
				nb := extend(b, atom, &rel.Tuples[ti])
				if nb != nil {
					next = append(next, nb)
				}
			}
		}
		bindings = next
		if len(bindings) == 0 {
			return nil
		}
	}
	return bindings
}

// extend unifies an atom with a tuple under an existing binding, returning
// the extended binding or nil on mismatch.
func extend(b map[string]model.Value, atom Atom, t *model.Tuple) map[string]model.Value {
	nb := b
	copied := false
	for i, arg := range atom.Args {
		v := t.Values[i]
		if !arg.isVar() {
			if v != model.Const(arg.Const) {
				return nil
			}
			continue
		}
		if bound, ok := nb[arg.Var]; ok {
			if bound != v {
				return nil
			}
			continue
		}
		if !copied {
			nb = make(map[string]model.Value, len(b)+1)
			for k, val := range b {
				nb[k] = val
			}
			copied = true
		}
		nb[arg.Var] = v
	}
	if !copied && len(atom.Args) > 0 {
		// All arguments matched without new bindings; reuse b.
		return b
	}
	return nb
}

// CoreSolution chases the mapping and minimizes the result to its core —
// the paper's gold standard for Table 6.
func CoreSolution(source, targetSchema *model.Instance, m Mapping) (*model.Instance, error) {
	sol, err := Chase(source, targetSchema, m)
	if err != nil {
		return nil, err
	}
	return hom.Core(sol), nil
}

// RowScore is the baseline metric of Table 6: the row-count ratio
// min(|solution|, |gold|) / max(|solution|, |gold|). It is blind to
// content, which is exactly the weakness the experiment demonstrates.
func RowScore(solution, gold *model.Instance) float64 {
	s, g := float64(solution.NumTuples()), float64(gold.NumTuples())
	if s == 0 && g == 0 {
		return 1
	}
	if s > g {
		s, g = g, s
	}
	if g == 0 {
		return 0
	}
	return s / g
}

// MissingRows counts gold tuples with no compatible tuple in the solution
// (no solution tuple could represent them under any value mapping) —
// Table 6's "Miss. Rows" column.
func MissingRows(solution, gold *model.Instance) int {
	missing := 0
	for _, grel := range gold.Relations() {
		srel := solution.Relation(grel.Name)
		for gi := range grel.Tuples {
			found := false
			if srel != nil {
				for si := range srel.Tuples {
					if compatibleTuples(&grel.Tuples[gi], &srel.Tuples[si]) {
						found = true
						break
					}
				}
			}
			if !found {
				missing++
			}
		}
	}
	return missing
}

// compatibleTuples is c-compatibility: no attribute holds two distinct
// constants. (Full pair compatibility lives in package compat; this local
// check avoids the import for a simple diagnostic.)
func compatibleTuples(a, b *model.Tuple) bool {
	for i, v := range a.Values {
		w := b.Values[i]
		if v.IsConst() && w.IsConst() && v != w {
			return false
		}
	}
	return true
}

// Describe renders a mapping for logs and docs.
func (m Mapping) Describe() string {
	var b strings.Builder
	for i, tgd := range m {
		if i > 0 {
			b.WriteString("\n")
		}
		for j, a := range tgd.Body {
			if j > 0 {
				b.WriteString(" ∧ ")
			}
			writeAtom(&b, a)
		}
		b.WriteString(" → ")
		for j, a := range tgd.Head {
			if j > 0 {
				b.WriteString(" ∧ ")
			}
			writeAtom(&b, a)
		}
	}
	return b.String()
}

func writeAtom(b *strings.Builder, a Atom) {
	b.WriteString(a.Rel)
	b.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		if t.isVar() {
			b.WriteString(t.Var)
		} else {
			fmt.Fprintf(b, "%q", t.Const)
		}
	}
	b.WriteByte(')')
}

package exchange

import (
	"testing"

	"instcmp/internal/model"
)

func TestSatisfiesChaseResult(t *testing.T) {
	ex := NewDoctorsExchange(60, 3)
	for _, m := range []Mapping{ex.Gold, ex.U1, ex.U2, ex.Wrong} {
		sol, err := Chase(ex.Source, ex.TargetSchema, m)
		if err != nil {
			t.Fatal(err)
		}
		ok, err := m.Satisfies(ex.Source, sol)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("chase result does not satisfy its own mapping:\n%s", m.Describe())
		}
	}
}

func TestSatisfiesCoreStillSatisfies(t *testing.T) {
	// The core of a universal solution is a solution too.
	ex := NewDoctorsExchange(40, 5)
	core, err := CoreSolution(ex.Source, ex.TargetSchema, ex.U1)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := ex.U1.Satisfies(ex.Source, core)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("core of a solution must satisfy the mapping")
	}
}

func TestSatisfiesDetectsMissingFacts(t *testing.T) {
	ex := NewDoctorsExchange(20, 7)
	sol, err := Chase(ex.Source, ex.TargetSchema, ex.Gold)
	if err != nil {
		t.Fatal(err)
	}
	// Drop one Doctor tuple: some MD row loses its export.
	rel := sol.Relation("Doctor")
	rel.Tuples = rel.Tuples[1:]
	ok, err := ex.Gold.Satisfies(ex.Source, sol)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("mutilated solution still satisfies the mapping")
	}
}

func TestSatisfiesCrossSolution(t *testing.T) {
	// A solution of the richer mapping U2 satisfies the weaker Gold
	// mapping (U2 ⊇ Gold), but a Wrong-mapping solution does not.
	ex := NewDoctorsExchange(30, 9)
	u2, err := Chase(ex.Source, ex.TargetSchema, ex.U2)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := ex.Gold.Satisfies(ex.Source, u2); !ok {
		t.Error("U2 solution should satisfy the gold mapping")
	}
	w, err := Chase(ex.Source, ex.TargetSchema, ex.Wrong)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := ex.Gold.Satisfies(ex.Source, w); ok {
		t.Error("wrong-mapping solution should not satisfy the gold mapping")
	}
}

func TestSatisfiesWithNullSourceBindings(t *testing.T) {
	// An incomplete source: the bound null must appear (frozen) in the
	// target for the constraint to hold.
	src := model.NewInstance()
	src.AddRelation("S", "A", "B")
	src.Append("S", model.Null("N1"), model.Const("b"))
	tgtSchema := model.NewInstance()
	tgtSchema.AddRelation("T", "X", "Y")
	m := Mapping{{
		Body: []Atom{A("S", V("a"), V("b"))},
		Head: []Atom{A("T", V("a"), V("b"))},
	}}

	good, err := Chase(src, tgtSchema, m)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := m.Satisfies(src, good); !ok {
		t.Error("chase of incomplete source should satisfy")
	}

	// A target holding a DIFFERENT null is not a verbatim occurrence of
	// the bound null and must be rejected.
	bad := model.NewInstance()
	bad.AddRelation("T", "X", "Y")
	bad.Append("T", model.Null("Other"), model.Const("b"))
	if ok, _ := m.Satisfies(src, bad); ok {
		t.Error("different null accepted for a bound source null")
	}

	// A constant cannot stand in for the bound null either (the source
	// null is a fixed value of the constraint).
	bad2 := model.NewInstance()
	bad2.AddRelation("T", "X", "Y")
	bad2.Append("T", model.Const("a"), model.Const("b"))
	if ok, _ := m.Satisfies(src, bad2); ok {
		t.Error("constant accepted for a bound source null")
	}
}

func TestSatisfiesValidates(t *testing.T) {
	src := mkSource()
	bad := Mapping{{
		Body: []Atom{A("Nope", V("a"))},
		Head: []Atom{A("T", V("a"), V("a"), V("a"))},
	}}
	if _, err := bad.Satisfies(src, mkTarget()); err == nil {
		t.Error("invalid mapping accepted")
	}
}

package exchange

import (
	"math/rand"

	"instcmp/internal/model"
)

// DoctorsExchange is the paper's Table 6 setup: a Doctors source, a target
// schema, and four schema mappings — the gold mapping (whose core solution
// is the evaluation standard), two correct user mappings with increasing
// redundancy (U2 mild, U1 heavy), and a wrong mapping that populates the
// target from an unrelated source relation.
type DoctorsExchange struct {
	Source       *model.Instance
	TargetSchema *model.Instance
	Gold         Mapping
	U1, U2       Mapping
	Wrong        Mapping
}

// NewDoctorsExchange builds the scenario with the given number of source
// doctor rows, deterministically from the seed.
//
// Source schema:
//
//	MD(Name, Spec, Hosp, City)    — one row per doctor, names unique
//	Senior(Name)                  — ~35% of the doctors
//	Office(Code, Street, OCity)   — unrelated facility data (wrong mapping)
//
// Target schema:
//
//	Doctor(Id, Name, Spec)
//	Practice(Id, Hosp, City)
//
// Gold: MD(n,s,h,c) → ∃i Doctor(i,n,s) ∧ Practice(i,h,c).
// U2 adds a redundant Doctor export for senior doctors; U1 additionally
// re-exports every doctor with unknown id and spec. Wrong populates the
// target from Office, so its solution shares no constants with the gold
// core.
func NewDoctorsExchange(rows int, seed int64) *DoctorsExchange {
	rng := rand.New(rand.NewSource(seed))
	src := model.NewInstance()
	src.AddRelation("MD", "Name", "Spec", "Hosp", "City")
	src.AddRelation("Senior", "Name")
	src.AddRelation("Office", "Code", "Street", "OCity")
	for i := 0; i < rows; i++ {
		name := model.Constf("dr_%d", i)
		src.Append("MD",
			name,
			model.Constf("spec_%d", rng.Intn(60)),
			model.Constf("hosp_%d", rng.Intn(rows/8+1)),
			model.Constf("city_%d", rng.Intn(200)),
		)
		if rng.Float64() < 0.35 {
			src.Append("Senior", name)
		}
		src.Append("Office",
			model.Constf("off_%d", i),
			model.Constf("street_%d", rng.Intn(rows/2+1)),
			model.Constf("ocity_%d", rng.Intn(150)),
		)
	}

	tgt := model.NewInstance()
	tgt.AddRelation("Doctor", "Id", "Name", "Spec")
	tgt.AddRelation("Practice", "Id", "Hosp", "City")

	copyRule := TGD{
		Body: []Atom{A("MD", V("n"), V("s"), V("h"), V("c"))},
		Head: []Atom{
			A("Doctor", V("i"), V("n"), V("s")),
			A("Practice", V("i"), V("h"), V("c")),
		},
	}
	seniorRule := TGD{
		Body: []Atom{
			A("MD", V("n"), V("s"), V("h"), V("c")),
			A("Senior", V("n")),
		},
		Head: []Atom{A("Doctor", V("j"), V("n"), V("s"))},
	}
	reexportRule := TGD{
		Body: []Atom{A("MD", V("n"), V("s"), V("h"), V("c"))},
		Head: []Atom{A("Doctor", V("j"), V("n"), V("k"))},
	}
	wrongRule := TGD{
		Body: []Atom{A("Office", V("o"), V("st"), V("c"))},
		Head: []Atom{
			A("Doctor", V("i"), V("o"), V("st")),
			A("Practice", V("i"), V("c"), V("c2")),
		},
	}

	return &DoctorsExchange{
		Source:       src,
		TargetSchema: tgt,
		Gold:         Mapping{copyRule},
		U2:           Mapping{copyRule, seniorRule},
		U1:           Mapping{copyRule, seniorRule, reexportRule},
		Wrong:        Mapping{wrongRule},
	}
}

package exchange

import (
	"strings"
	"testing"

	"instcmp/internal/hom"
	"instcmp/internal/match"
	"instcmp/internal/model"
	"instcmp/internal/signature"
)

func mkSource() *model.Instance {
	src := model.NewInstance()
	src.AddRelation("S", "A", "B")
	src.Append("S", model.Const("a1"), model.Const("b1"))
	src.Append("S", model.Const("a2"), model.Const("b2"))
	return src
}

func mkTarget() *model.Instance {
	tgt := model.NewInstance()
	tgt.AddRelation("T", "X", "Y", "Z")
	return tgt
}

func TestChaseCopiesWithExistentials(t *testing.T) {
	m := Mapping{{
		Body: []Atom{A("S", V("a"), V("b"))},
		Head: []Atom{A("T", V("a"), V("b"), V("z"))},
	}}
	out, err := Chase(mkSource(), mkTarget(), m)
	if err != nil {
		t.Fatal(err)
	}
	rel := out.Relation("T")
	if rel.Cardinality() != 2 {
		t.Fatalf("chase produced %d tuples, want 2", rel.Cardinality())
	}
	nulls := map[model.Value]bool{}
	for _, tu := range rel.Tuples {
		if !tu.Values[2].IsNull() {
			t.Errorf("existential position not a null: %v", tu)
		}
		nulls[tu.Values[2]] = true
	}
	if len(nulls) != 2 {
		t.Error("existential nulls must be fresh per binding")
	}
}

func TestChaseSharedExistentialAcrossHeadAtoms(t *testing.T) {
	tgt := model.NewInstance()
	tgt.AddRelation("T1", "I", "A")
	tgt.AddRelation("T2", "I", "B")
	m := Mapping{{
		Body: []Atom{A("S", V("a"), V("b"))},
		Head: []Atom{A("T1", V("i"), V("a")), A("T2", V("i"), V("b"))},
	}}
	out, err := Chase(mkSource(), tgt, m)
	if err != nil {
		t.Fatal(err)
	}
	t1, t2 := out.Relation("T1"), out.Relation("T2")
	for i := range t1.Tuples {
		if t1.Tuples[i].Values[0] != t2.Tuples[i].Values[0] {
			t.Error("existential must be shared across head atoms of one binding")
		}
	}
}

func TestChaseJoinBody(t *testing.T) {
	src := model.NewInstance()
	src.AddRelation("R", "A", "B")
	src.AddRelation("Q", "B", "C")
	src.Append("R", model.Const("a"), model.Const("b"))
	src.Append("Q", model.Const("b"), model.Const("c"))
	src.Append("Q", model.Const("zzz"), model.Const("c2")) // join misses
	tgt := model.NewInstance()
	tgt.AddRelation("T", "X", "Y", "Z")
	m := Mapping{{
		Body: []Atom{A("R", V("a"), V("b")), A("Q", V("b"), V("c"))},
		Head: []Atom{A("T", V("a"), V("b"), V("c"))},
	}}
	out, err := Chase(src, tgt, m)
	if err != nil {
		t.Fatal(err)
	}
	rel := out.Relation("T")
	if rel.Cardinality() != 1 {
		t.Fatalf("join chase produced %d tuples, want 1", rel.Cardinality())
	}
	want := []model.Value{model.Const("a"), model.Const("b"), model.Const("c")}
	for i, v := range want {
		if rel.Tuples[0].Values[i] != v {
			t.Errorf("value %d = %v, want %v", i, rel.Tuples[0].Values[i], v)
		}
	}
}

func TestChaseConstantInBodyFilters(t *testing.T) {
	m := Mapping{{
		Body: []Atom{A("S", C("a1"), V("b"))},
		Head: []Atom{A("T", V("b"), V("b"), V("z"))},
	}}
	out, err := Chase(mkSource(), mkTarget(), m)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Relation("T").Cardinality(); got != 1 {
		t.Errorf("constant filter produced %d tuples, want 1", got)
	}
}

func TestChaseDedupesGroundHeads(t *testing.T) {
	src := mkSource()
	src.Append("S", model.Const("a1"), model.Const("b1")) // duplicate row
	m := Mapping{{
		Body: []Atom{A("S", V("a"), V("b"))},
		Head: []Atom{A("T", V("a"), V("b"), C("k"))},
	}}
	out, err := Chase(src, mkTarget(), m)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Relation("T").Cardinality(); got != 2 {
		t.Errorf("ground heads not deduped: %d tuples, want 2", got)
	}
}

func TestValidate(t *testing.T) {
	bad := Mapping{{
		Body: []Atom{A("Nope", V("a"))},
		Head: []Atom{A("T", V("a"), V("a"), V("a"))},
	}}
	if err := bad.Validate(mkSource(), mkTarget()); err == nil {
		t.Error("unknown body relation accepted")
	}
	badArity := Mapping{{
		Body: []Atom{A("S", V("a"))},
		Head: []Atom{A("T", V("a"), V("a"), V("a"))},
	}}
	if err := badArity.Validate(mkSource(), mkTarget()); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestChaseIsUniversal(t *testing.T) {
	// The chase result must have a homomorphism into any other solution;
	// in particular into its own core.
	ex := NewDoctorsExchange(60, 1)
	sol, err := Chase(ex.Source, ex.TargetSchema, ex.U1)
	if err != nil {
		t.Fatal(err)
	}
	core := hom.Core(sol)
	if !hom.Exists(sol, core) || !hom.Exists(core, sol) {
		t.Fatal("solution and its core must be homomorphically equivalent")
	}
	if core.NumTuples() >= sol.NumTuples() {
		t.Errorf("U1 core (%d) should be smaller than its chase (%d)",
			core.NumTuples(), sol.NumTuples())
	}
}

func TestDoctorsScenarioShape(t *testing.T) {
	ex := NewDoctorsExchange(80, 2)
	gold, err := CoreSolution(ex.Source, ex.TargetSchema, ex.Gold)
	if err != nil {
		t.Fatal(err)
	}
	// Gold core: one Doctor + one Practice tuple per source row.
	if got := gold.NumTuples(); got != 160 {
		t.Errorf("gold core tuples = %d, want 160", got)
	}

	u1, _ := Chase(ex.Source, ex.TargetSchema, ex.U1)
	u2, _ := Chase(ex.Source, ex.TargetSchema, ex.U2)
	w, _ := Chase(ex.Source, ex.TargetSchema, ex.Wrong)
	if !(u1.NumTuples() > u2.NumTuples() && u2.NumTuples() > gold.NumTuples()) {
		t.Errorf("redundancy ordering violated: U1=%d U2=%d gold=%d",
			u1.NumTuples(), u2.NumTuples(), gold.NumTuples())
	}

	// U1 and U2 are universal solutions: hom into the gold core exists.
	if !hom.Exists(u1, gold) || !hom.Exists(u2, gold) {
		t.Error("correct mappings must produce universal solutions")
	}
	if hom.Exists(w, gold) {
		t.Error("wrong mapping should not map into the gold core")
	}

	// Metrics shape of Table 6.
	if MissingRows(w, gold) != gold.NumTuples() {
		t.Errorf("wrong solution should miss every gold row, got %d/%d",
			MissingRows(w, gold), gold.NumTuples())
	}
	if MissingRows(u1, gold) != 0 || MissingRows(u2, gold) != 0 {
		t.Error("correct solutions should miss no gold rows")
	}
	if rs := RowScore(w, gold); rs < 0.9 {
		t.Errorf("wrong solution row score = %v, want ~1 (the metric's blind spot)", rs)
	}

	// Signature scores: wrong ≈ 0, correct high, U2 >= U1.
	// Both solutions and the gold are chased from the same source, so
	// their null namespaces collide; rename the gold apart (the public
	// Compare API does this automatically).
	goldR := gold.RenameNulls("g·")
	sigScore := func(sol *model.Instance) float64 {
		res, err := signature.Run(sol, goldR, match.Functional, signature.Options{Lambda: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		return res.Score
	}
	sw, s1, s2 := sigScore(w), sigScore(u1), sigScore(u2)
	if sw > 0.05 {
		t.Errorf("wrong mapping sig score = %v, want ~0", sw)
	}
	if s1 < 0.7 || s2 < 0.7 {
		t.Errorf("correct mapping sig scores too low: U1=%v U2=%v", s1, s2)
	}
	if s2 < s1 {
		t.Errorf("U2 (%v) should score at least U1 (%v)", s2, s1)
	}
}

func TestRowScore(t *testing.T) {
	a := mkSource()
	b := mkSource()
	if RowScore(a, b) != 1 {
		t.Error("equal sizes should score 1")
	}
	b.Append("S", model.Const("x"), model.Const("y"))
	if got := RowScore(a, b); got <= 0.5 || got >= 1 {
		t.Errorf("row score = %v, want 2/3", got)
	}
	empty := model.NewInstance()
	empty.AddRelation("S", "A", "B")
	if RowScore(empty, a) != 0 {
		t.Error("empty vs non-empty should score 0")
	}
	if RowScore(empty, empty.Clone()) != 1 {
		t.Error("empty vs empty should score 1")
	}
}

func TestDescribe(t *testing.T) {
	ex := NewDoctorsExchange(5, 1)
	d := ex.Gold.Describe()
	if !strings.Contains(d, "MD(") || !strings.Contains(d, "→") {
		t.Errorf("Describe output unexpected: %s", d)
	}
}

package match

import (
	"sync"
	"testing"

	"instcmp/internal/model"
	"instcmp/internal/unify"
)

func cloneFixture(t *testing.T) *Env {
	t.Helper()
	l := model.NewInstance()
	l.AddRelation("R", "A", "B")
	l.Append("R", model.Null("N1"), model.Const("b"))
	l.Append("R", model.Null("N2"), model.Const("c"))
	l.Append("R", model.Const("x"), model.Null("N3"))
	r := model.NewInstance()
	r.AddRelation("R", "A", "B")
	r.Append("R", model.Null("V1"), model.Const("b"))
	r.Append("R", model.Null("V2"), model.Const("c"))
	r.Append("R", model.Const("x"), model.Null("V3"))
	env, err := NewEnv(l, r, ManyToMany)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestCloneIsIndependent(t *testing.T) {
	env := cloneFixture(t)
	if !env.TryAddPair(Pair{L: Ref{Idx: 0}, R: Ref{Idx: 0}}) {
		t.Fatal("seed pair refused")
	}
	cl := env.Clone()
	if cl.NumPairs() != 1 || !cl.Has(Pair{L: Ref{Idx: 0}, R: Ref{Idx: 0}}) {
		t.Fatal("clone did not carry the current mapping")
	}

	// Mutations on the clone are invisible to the original and vice versa.
	if !cl.TryAddPair(Pair{L: Ref{Idx: 1}, R: Ref{Idx: 1}}) {
		t.Fatal("clone pair refused")
	}
	if env.NumPairs() != 1 {
		t.Errorf("original gained a pair from the clone: %d", env.NumPairs())
	}
	if !env.TryAddPair(Pair{L: Ref{Idx: 2}, R: Ref{Idx: 2}}) {
		t.Fatal("original pair refused after clone")
	}
	if cl.NumPairs() != 2 || cl.Has(Pair{L: Ref{Idx: 2}, R: Ref{Idx: 2}}) {
		t.Error("clone saw the original's new pair")
	}

	// Undo on the clone must not disturb the original's unifier state.
	cl.Undo(Mark{})
	if cl.NumPairs() != 0 {
		t.Errorf("clone undo left %d pairs", cl.NumPairs())
	}
	if env.NumPairs() != 2 {
		t.Errorf("original pairs = %d after clone undo, want 2", env.NumPairs())
	}
	if !env.U.SameClass(model.Null("N1"), model.Null("V1")) {
		t.Error("original lost a unification after clone undo")
	}
}

// TestCloneConcurrentSearch drives several clones concurrently under -race:
// clones share only immutable data, so parallel add/undo cycles must not
// race.
func TestCloneConcurrentSearch(t *testing.T) {
	env := cloneFixture(t)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := env.Clone()
			for iter := 0; iter < 200; iter++ {
				m := cl.Mark()
				for i := 0; i < 3; i++ {
					cl.TryAddPair(Pair{L: Ref{Idx: i}, R: Ref{Idx: (i + w) % 3}})
				}
				for _, p := range cl.Pairs() {
					cl.U.SideCountID(cl.LeftRow(p.L)[0], unify.Left)
				}
				cl.Undo(m)
			}
		}(w)
	}
	wg.Wait()
	if env.NumPairs() != 0 {
		t.Errorf("root env mutated by clones: %d pairs", env.NumPairs())
	}
}

func TestReplayAllOrNothing(t *testing.T) {
	env := cloneFixture(t)
	good := []Pair{{L: Ref{Idx: 0}, R: Ref{Idx: 0}}, {L: Ref{Idx: 1}, R: Ref{Idx: 1}}}
	if !env.Replay(good) {
		t.Fatal("consistent replay refused")
	}
	if env.NumPairs() != 2 {
		t.Fatalf("replay applied %d pairs, want 2", env.NumPairs())
	}
	env.Undo(Mark{})

	// A replay containing an inconsistent pair must roll back entirely:
	// matching t0 (N1,b) with r1 (V2,c) conflicts on the constant cell.
	bad := []Pair{{L: Ref{Idx: 1}, R: Ref{Idx: 1}}, {L: Ref{Idx: 0}, R: Ref{Idx: 1}}}
	if env.Replay(bad) {
		t.Fatal("inconsistent replay accepted")
	}
	if env.NumPairs() != 0 {
		t.Errorf("failed replay left %d pairs behind", env.NumPairs())
	}
}

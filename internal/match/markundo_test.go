package match

import (
	"fmt"
	"math/rand"
	"testing"

	"instcmp/internal/model"
)

// randomEnvInstances builds a pair of same-schema instances with a mix of
// constants and side-disjoint labeled nulls.
func randomEnvInstances(rng *rand.Rand, rows int) (*model.Instance, *model.Instance) {
	build := func(prefix string) *model.Instance {
		in := model.NewInstance()
		in.AddRelation("R", "A", "B", "C")
		for i := 0; i < rows; i++ {
			vals := make([]model.Value, 3)
			for a := range vals {
				switch rng.Intn(3) {
				case 0:
					vals[a] = model.Const(fmt.Sprintf("c%d", rng.Intn(6)))
				case 1:
					vals[a] = model.Const(fmt.Sprintf("c%d", rng.Intn(3)))
				default:
					vals[a] = model.Null(fmt.Sprintf("%sN%d", prefix, rng.Intn(rows)))
				}
			}
			in.Append("R", vals...)
		}
		return in
	}
	return build("l"), build("r")
}

// TestMarkUndoAgainstReference drives the dense image tables through random
// TryAddPair/Mark/Undo sequences and cross-checks every observable —
// NumPairs, Has, degrees, images — against a naive map-based reference
// maintained from the accepted-pairs log.
func TestMarkUndoAgainstReference(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		left, right := randomEnvInstances(rng, 8)
		mode := []Mode{OneToOne, Functional, ManyToMany}[rng.Intn(3)]
		env, err := NewEnv(left, right, mode)
		if err != nil {
			t.Fatal(err)
		}

		type frame struct {
			mark  Mark
			pairs []Pair // reference pair log at mark time
		}
		var accepted []Pair
		var stack []frame

		check := func(step int) {
			t.Helper()
			if env.NumPairs() != len(accepted) {
				t.Fatalf("seed %d step %d: NumPairs %d, reference %d", seed, step, env.NumPairs(), len(accepted))
			}
			refSet := map[Pair]bool{}
			degL := map[Ref]int{}
			degR := map[Ref]int{}
			for _, p := range accepted {
				refSet[p] = true
				degL[p.L]++
				degR[p.R]++
			}
			for ti := 0; ti < len(left.Relations()[0].Tuples); ti++ {
				for tj := 0; tj < len(right.Relations()[0].Tuples); tj++ {
					p := Pair{L: Ref{Rel: 0, Idx: ti}, R: Ref{Rel: 0, Idx: tj}}
					if env.Has(p) != refSet[p] {
						t.Fatalf("seed %d step %d: Has(%v) = %v, reference %v", seed, step, p, env.Has(p), refSet[p])
					}
				}
				lr := Ref{Rel: 0, Idx: ti}
				if env.LeftDegree(lr) != degL[lr] {
					t.Fatalf("seed %d step %d: LeftDegree(%v) = %d, reference %d", seed, step, lr, env.LeftDegree(lr), degL[lr])
				}
				if len(env.LeftImage(lr)) != degL[lr] {
					t.Fatalf("seed %d step %d: LeftImage(%v) has %d entries, reference %d", seed, step, lr, len(env.LeftImage(lr)), degL[lr])
				}
			}
			for tj := 0; tj < len(right.Relations()[0].Tuples); tj++ {
				rr := Ref{Rel: 0, Idx: tj}
				if env.RightDegree(rr) != degR[rr] {
					t.Fatalf("seed %d step %d: RightDegree(%v) = %d, reference %d", seed, step, rr, env.RightDegree(rr), degR[rr])
				}
			}
			if !env.IsComplete() {
				t.Fatalf("seed %d step %d: match not complete after TryAddPair-only growth", seed, step)
			}
		}

		nL, nR := len(left.Relations()[0].Tuples), len(right.Relations()[0].Tuples)
		for step := 0; step < 300; step++ {
			switch op := rng.Intn(10); {
			case op < 6: // try a random pair
				p := Pair{L: Ref{Rel: 0, Idx: rng.Intn(nL)}, R: Ref{Rel: 0, Idx: rng.Intn(nR)}}
				would := env.WouldAccept(p)
				if env.TryAddPair(p) {
					if !would {
						t.Fatalf("seed %d step %d: WouldAccept(%v) = false but TryAddPair succeeded", seed, step, p)
					}
					accepted = append(accepted, p)
				} else if would {
					t.Fatalf("seed %d step %d: WouldAccept(%v) = true but TryAddPair failed", seed, step, p)
				}
			case op < 8: // push a checkpoint
				stack = append(stack, frame{mark: env.Mark(), pairs: append([]Pair(nil), accepted...)})
			default: // pop to a random earlier checkpoint
				if len(stack) == 0 {
					continue
				}
				k := rng.Intn(len(stack))
				env.Undo(stack[k].mark)
				accepted = append(accepted[:0], stack[k].pairs...)
				stack = stack[:k]
			}
			check(step)
		}

		// Zero Mark rolls everything back (the exact search relies on it).
		env.Undo(Mark{})
		accepted = accepted[:0]
		check(-1)
	}
}

package match

import (
	"testing"

	"instcmp/internal/model"
)

func partialEnv(t *testing.T) *Env {
	t.Helper()
	l := model.NewInstance()
	l.AddRelation("R", "A", "B", "C")
	l.Append("R", c("alice"), c("sales"), c("100"))
	l.Append("R", c("bob"), n("N1"), n("N1"))
	r := model.NewInstance()
	r.AddRelation("R", "A", "B", "C")
	r.Append("R", c("alice"), c("sales"), c("200"))
	r.Append("R", c("bob"), c("x"), c("y"))
	e, err := NewEnv(l, r, OneToOne)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestTryAddPartialPairAcceptsConflicts(t *testing.T) {
	e := partialEnv(t)
	added, conflicts := e.TryAddPartialPair(Pair{Ref{0, 0}, Ref{0, 0}}, 2)
	if !added || conflicts != 1 {
		t.Fatalf("added=%v conflicts=%d, want true/1", added, conflicts)
	}
	if e.NumPairs() != 1 {
		t.Error("pair not recorded")
	}
	// The conflicting cells stay un-unified: different constants.
	if e.U.SameClass(c("100"), c("200")) {
		t.Error("conflicting constants were merged")
	}
}

func TestTryAddPartialPairFloor(t *testing.T) {
	e := partialEnv(t)
	// Floor of 3 shared constants: only 2 agree, pair refused.
	added, conflicts := e.TryAddPartialPair(Pair{Ref{0, 0}, Ref{0, 0}}, 3)
	if added {
		t.Fatal("pair accepted below the shared-constant floor")
	}
	if conflicts != 1 {
		t.Errorf("conflicts = %d, want 1", conflicts)
	}
	if e.NumPairs() != 0 {
		t.Error("refused pair left state behind")
	}
}

func TestTryAddPartialPairMergeFailureCountsAsConflict(t *testing.T) {
	e := partialEnv(t)
	// (bob, N1, N1) vs (bob, x, y): N1 cannot equal both x and y — one
	// merge fails, one succeeds; the tuples still share the constant bob.
	added, conflicts := e.TryAddPartialPair(Pair{Ref{0, 1}, Ref{0, 1}}, 1)
	if !added || conflicts != 1 {
		t.Fatalf("added=%v conflicts=%d, want true/1", added, conflicts)
	}
}

func TestTryAddPartialPairFullyCompatibleBypassesFloor(t *testing.T) {
	l := model.NewInstance()
	l.AddRelation("R", "A")
	l.Append("R", n("N9"))
	r := model.NewInstance()
	r.AddRelation("R", "A")
	r.Append("R", c("v"))
	e, err := NewEnv(l, r, OneToOne)
	if err != nil {
		t.Fatal(err)
	}
	// Zero shared constants, zero conflicts: accepted regardless of floor.
	added, conflicts := e.TryAddPartialPair(Pair{Ref{0, 0}, Ref{0, 0}}, 5)
	if !added || conflicts != 0 {
		t.Errorf("added=%v conflicts=%d, want true/0", added, conflicts)
	}
}

func TestTryAddPartialPairRespectsMode(t *testing.T) {
	e := partialEnv(t)
	if added, _ := e.TryAddPartialPair(Pair{Ref{0, 0}, Ref{0, 0}}, 1); !added {
		t.Fatal("setup failed")
	}
	// Left-injectivity: the same left tuple cannot take a second partner.
	if added, _ := e.TryAddPartialPair(Pair{Ref{0, 0}, Ref{0, 1}}, 1); added {
		t.Error("mode restriction bypassed")
	}
}

func TestAccessors(t *testing.T) {
	e := partialEnv(t)
	p := Pair{Ref{0, 0}, Ref{0, 0}}
	if e.Has(p) {
		t.Error("Has on empty mapping")
	}
	e.TryAddPartialPair(p, 1)
	if !e.Has(p) {
		t.Error("Has misses recorded pair")
	}
	if got := e.Pairs(); len(got) != 1 || got[0] != p {
		t.Errorf("Pairs = %v", got)
	}
	if img := e.LeftImage(p.L); len(img) != 1 || img[0] != p.R {
		t.Errorf("LeftImage = %v", img)
	}
	if img := e.RightImage(p.R); len(img) != 1 || img[0] != p.L {
		t.Errorf("RightImage = %v", img)
	}
}

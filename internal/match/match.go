// Package match implements the formalism of Section 4 of the paper: value
// mappings, tuple mappings with injectivity/totality classes, and complete
// instance matches. Its central type, Env, is the shared working state of
// both the exact and the signature algorithm: the two instances, the value
// unifier, and the tuple mapping grown so far, with exact rollback.
//
// Env runs on the integer-coded representation of internal/model: NewEnv
// interns every constant and null of the comparison once into dense ValueID
// codes and recodes both instances' tuples as flat []ValueID rows. The
// per-pair hot path — ModeAllows, TryAddPair, Undo — then works exclusively
// on arrays indexed by flattened tuple positions (one dense index space per
// side, relations concatenated) and never touches a Go map or allocates per
// probe.
package match

import (
	"errors"
	"fmt"

	"instcmp/internal/model"
	"instcmp/internal/unify"
)

// Mode restricts the tuple mappings an algorithm may construct and the
// totality conditions a finished match is validated against (Sec. 4.2).
type Mode struct {
	// LeftInjective forbids matching one left tuple to two right tuples
	// (the paper's "left injective", i.e. the mapping is functional on I).
	LeftInjective bool
	// RightInjective forbids matching one right tuple to two left tuples.
	RightInjective bool
	// RequireLeftTotal demands every left tuple be matched (validation).
	RequireLeftTotal bool
	// RequireRightTotal demands every right tuple be matched (validation).
	RequireRightTotal bool
}

// Preset modes for the scenarios discussed in Sec. 4.3 and used in Sec. 7.
var (
	// OneToOne is the fully-injective mode (Table 2: "functional and
	// injective (1 to 1)"; data versioning, constraint-based repair).
	OneToOne = Mode{LeftInjective: true, RightInjective: true}
	// Functional is the left-injective mode (universal-vs-core data
	// exchange comparison).
	Functional = Mode{LeftInjective: true}
	// ManyToMany places no injectivity restriction (Table 3:
	// "non-functional and non-injective (n to m)"; universal-vs-universal).
	ManyToMany = Mode{}
)

func (m Mode) String() string {
	switch {
	case m.LeftInjective && m.RightInjective:
		return "1-to-1"
	case m.LeftInjective:
		return "functional"
	case m.RightInjective:
		return "co-functional"
	default:
		return "n-to-m"
	}
}

// Ref addresses one tuple of one side of a comparison by relation index and
// position. Positions are stable because Env never reorders tuples.
type Ref struct {
	Rel int
	Idx int
}

// Pair is one element of a tuple mapping: a left tuple matched to a right
// tuple of the same relation.
type Pair struct {
	L, R Ref
}

// Env is the mutable state of an in-progress instance match between a fixed
// left and right instance. All mutation happens through TryAddPair and is
// reversible with Mark/Undo, which the exact algorithm uses for
// backtracking and the signature algorithm for tentative compatibility
// probes.
type Env struct {
	Left, Right *model.Instance
	LRels       []*model.Relation
	RRels       []*model.Relation
	// LCode and RCode are the integer-coded images of LRels and RRels,
	// built once by NewEnv over the shared interner In.
	LCode, RCode []*model.CodedRelation
	In           *model.Interner
	U            *unify.Unifier
	Mode         Mode

	// lBase/rBase map a Ref to its flattened per-side tuple index:
	// flat = base[ref.Rel] + ref.Idx. The flat index spaces are dense,
	// so the image tables below are plain slices.
	lBase, rBase []int
	nL, nR       int

	pairs    []Pair
	leftImg  [][]Ref // flat left index -> matched right refs
	rightImg [][]Ref // flat right index -> matched left refs

	// attrOrders holds each relation's lexicographic attribute order
	// (model.AttrOrder), filled eagerly by both constructors. Environments
	// built from prepared sides alias the PreparedSide's slice, so the
	// contents are shared read-only state and must never be mutated.
	attrOrders [][]int

	// Stats counts the match-construction work done through this
	// environment (see instcmp.ComparisonStats). Counters are plain ints:
	// an Env is single-goroutine state, and parallel engines aggregate the
	// counters of their per-worker clones on completion.
	Stats EnvStats
}

// EnvStats counts the pair-level work performed on one environment. The
// counters never influence any decision the algorithms make; they exist for
// observability only.
type EnvStats struct {
	// PairAttempts counts TryAddPair/TryAddPartialPair calls.
	PairAttempts int64
	// PairRejects counts attempts rejected by the mode or by a
	// unification conflict.
	PairRejects int64
	// ScoreEvals counts pair-score evaluations (score.PairScoreP).
	ScoreEvals int64
}

// Add accumulates another environment's counters (used to merge per-worker
// clones into one total).
func (s *EnvStats) Add(o EnvStats) {
	s.PairAttempts += o.PairAttempts
	s.PairRejects += o.PairRejects
	s.ScoreEvals += o.ScoreEvals
}

// ErrSchemaMismatch is returned when the two instances do not share a
// relational schema. (Sec. 4 discusses padding with fresh-null columns to
// align differing schemas; see model.AddNullColumn and package versioning.)
var ErrSchemaMismatch = errors.New("match: instances have different schemas")

// ErrSharedNulls is returned when the two instances share a labeled null,
// violating the Vars(I) ∩ Vars(I') = ∅ precondition. Callers can rename with
// model.RenameNulls.
var ErrSharedNulls = errors.New("match: instances share labeled nulls")

// ErrTooManyAttributes is returned for relations wider than 64 attributes:
// the candidate indexes and signature maps encode attribute sets as uint64
// bitmasks.
var ErrTooManyAttributes = errors.New("match: relations with more than 64 attributes are not supported")

// NewEnv validates the comparison preconditions, interns both instances into
// the integer-coded representation, and returns a fresh environment with an
// empty tuple mapping.
func NewEnv(left, right *model.Instance, mode Mode) (*Env, error) {
	if !model.SameSchema(left, right) {
		return nil, ErrSchemaMismatch
	}
	for _, rel := range left.Relations() {
		if rel.Arity() > 64 {
			return nil, fmt.Errorf("%w: %s has %d", ErrTooManyAttributes, rel.Name, rel.Arity())
		}
	}
	// Register nulls in sorted order so union-find representatives (and
	// therefore reported value mappings) are deterministic. Interning goes
	// by side block — left sorted nulls, left constants in scan order, then
	// the right side the same way — so that one side's coding is a pure
	// function of that instance alone. That per-side layout is what lets
	// NewEnvPrepared adopt a PreparedSide's self-coding verbatim for the
	// left block and remap the right block through a translation table,
	// while staying bit-identical to this constructor.
	in := model.NewInterner()
	u := unify.NewInterned(in)
	for _, v := range left.SortedVars() {
		u.AddNull(v, unify.Left)
	}
	e := &Env{
		Left:  left,
		Right: right,
		LRels: left.Relations(),
		RRels: right.Relations(),
		In:    in,
		U:     u,
		Mode:  mode,
	}
	code := func(rels []*model.Relation) []*model.CodedRelation {
		codes := make([]*model.CodedRelation, len(rels))
		for i, rel := range rels {
			codes[i] = in.Code(rel)
		}
		return codes
	}
	e.LCode = code(e.LRels)
	for _, v := range right.SortedVars() {
		if u.Registered(v) {
			return nil, fmt.Errorf("%w: %v", ErrSharedNulls, v)
		}
		u.AddNull(v, unify.Right)
	}
	e.RCode = code(e.RRels)
	e.lBase, e.nL = flatBases(e.LRels)
	e.rBase, e.nR = flatBases(e.RRels)
	e.attrOrders = make([][]int, len(e.LRels))
	for i, rel := range e.LRels {
		e.attrOrders[i] = model.AttrOrder(rel)
	}
	e.leftImg = make([][]Ref, e.nL)
	e.rightImg = make([][]Ref, e.nR)
	return e, nil
}

// AttrOrder returns the cached lexicographic attribute order of a relation
// (left and right agree: comparisons require equal schemas). The slice is
// shared read-only state; callers must not mutate it.
func (e *Env) AttrOrder(ri int) []int { return e.attrOrders[ri] }

// Clone returns an independent copy of the environment: the immutable
// comparison data (instances, coded relations, interner, flat index bases)
// is shared, while the mutable match state — unifier, tuple mapping, image
// tables — is deep-copied. Clones can be extended and rolled back
// concurrently with each other and with the original, which is what the
// parallel exact search hands each worker.
func (e *Env) Clone() *Env {
	ne := *e
	// Clones start with fresh counters so per-worker totals can be summed
	// with the original's without double counting.
	ne.Stats = EnvStats{}
	ne.U = e.U.Clone()
	ne.pairs = append([]Pair(nil), e.pairs...)
	ne.leftImg = cloneImages(e.leftImg)
	ne.rightImg = cloneImages(e.rightImg)
	return &ne
}

func cloneImages(img [][]Ref) [][]Ref {
	out := make([][]Ref, len(img))
	for i, refs := range img {
		if len(refs) > 0 {
			out[i] = append([]Ref(nil), refs...)
		}
	}
	return out
}

// Replay extends the match with a sequence of pairs, all-or-nothing: when
// any pair is rejected the environment is rolled back to its prior state
// and Replay reports false. Search engines use it to re-establish a match
// (a warm-start incumbent, a subtree-task prefix) in a fresh or cloned
// environment.
func (e *Env) Replay(pairs []Pair) bool {
	m := e.Mark()
	for _, p := range pairs {
		if !e.TryAddPair(p) {
			e.Undo(m)
			return false
		}
	}
	return true
}

// FlatL returns the dense per-side index of a left tuple (relations
// concatenated in schema order).
func (e *Env) FlatL(ref Ref) int { return e.lBase[ref.Rel] + ref.Idx }

// FlatR returns the dense per-side index of a right tuple.
func (e *Env) FlatR(ref Ref) int { return e.rBase[ref.Rel] + ref.Idx }

// NumLeftTuples returns the size of the left flat index space.
func (e *Env) NumLeftTuples() int { return e.nL }

// NumRightTuples returns the size of the right flat index space.
func (e *Env) NumRightTuples() int { return e.nR }

// LeftTuple returns the left tuple addressed by ref.
func (e *Env) LeftTuple(ref Ref) *model.Tuple {
	return &e.LRels[ref.Rel].Tuples[ref.Idx]
}

// RightTuple returns the right tuple addressed by ref.
func (e *Env) RightTuple(ref Ref) *model.Tuple {
	return &e.RRels[ref.Rel].Tuples[ref.Idx]
}

// LeftRow returns the coded row of a left tuple.
func (e *Env) LeftRow(ref Ref) []model.ValueID {
	return e.LCode[ref.Rel].Row(ref.Idx)
}

// RightRow returns the coded row of a right tuple.
func (e *Env) RightRow(ref Ref) []model.ValueID {
	return e.RCode[ref.Rel].Row(ref.Idx)
}

// LeftMask returns the ground mask of a left tuple.
func (e *Env) LeftMask(ref Ref) uint64 { return e.LCode[ref.Rel].Masks[ref.Idx] }

// RightMask returns the ground mask of a right tuple.
func (e *Env) RightMask(ref Ref) uint64 { return e.RCode[ref.Rel].Masks[ref.Idx] }

// Pairs returns the current tuple mapping. The slice is shared; callers
// must not mutate it.
func (e *Env) Pairs() []Pair { return e.pairs }

// NumPairs returns the size of the current tuple mapping.
func (e *Env) NumPairs() int { return len(e.pairs) }

// LeftImage returns m(t) for a left tuple: the right tuples it is matched to.
func (e *Env) LeftImage(ref Ref) []Ref { return e.leftImg[e.FlatL(ref)] }

// RightImage returns m(t') for a right tuple.
func (e *Env) RightImage(ref Ref) []Ref { return e.rightImg[e.FlatR(ref)] }

// LeftDegree returns |m(t)| for a left tuple.
func (e *Env) LeftDegree(ref Ref) int { return len(e.leftImg[e.FlatL(ref)]) }

// RightDegree returns |m(t')| for a right tuple.
func (e *Env) RightDegree(ref Ref) int { return len(e.rightImg[e.FlatR(ref)]) }

// Has reports whether the pair is already part of the mapping. It scans the
// smaller of the two endpoints' images — degrees are tiny in practice, and
// the scan keeps the per-pair bookkeeping free of map probes.
func (e *Env) Has(p Pair) bool {
	li, ri := e.leftImg[e.FlatL(p.L)], e.rightImg[e.FlatR(p.R)]
	if len(li) <= len(ri) {
		for _, r := range li {
			if r == p.R {
				return true
			}
		}
		return false
	}
	for _, l := range ri {
		if l == p.L {
			return true
		}
	}
	return false
}

// ModeAllows reports whether adding the pair would respect the mode's
// injectivity restrictions given the current mapping.
func (e *Env) ModeAllows(p Pair) bool {
	fl, fr := e.FlatL(p.L), e.FlatR(p.R)
	if e.Mode.LeftInjective && len(e.leftImg[fl]) > 0 {
		return false
	}
	if e.Mode.RightInjective && len(e.rightImg[fr]) > 0 {
		return false
	}
	return !e.Has(p)
}

// Mark is a checkpoint capturing the environment state for Undo.
type Mark struct {
	umark int
	nvals int
}

// Mark returns a checkpoint for Undo.
func (e *Env) Mark() Mark {
	return Mark{umark: e.U.Mark(), nvals: len(e.pairs)}
}

// Undo rolls the environment back to a checkpoint, removing every pair and
// unifier merge added after it.
func (e *Env) Undo(m Mark) {
	e.U.Undo(m.umark)
	for len(e.pairs) > m.nvals {
		p := e.pairs[len(e.pairs)-1]
		e.pairs = e.pairs[:len(e.pairs)-1]
		fl, fr := e.FlatL(p.L), e.FlatR(p.R)
		e.leftImg[fl] = pop(e.leftImg[fl])
		e.rightImg[fr] = pop(e.rightImg[fr])
	}
}

func pop(s []Ref) []Ref { return s[:len(s)-1] }

// addPair records an accepted pair in the dense image tables.
func (e *Env) addPair(p Pair) {
	e.pairs = append(e.pairs, p)
	fl, fr := e.FlatL(p.L), e.FlatR(p.R)
	e.leftImg[fl] = append(e.leftImg[fl], p.R)
	e.rightImg[fr] = append(e.rightImg[fr], p.L)
}

// TryAddPair attempts to extend the match with a pair, unifying the two
// tuples cell by cell. It returns false and leaves the environment
// unchanged when the mode forbids the pair, the relations differ, or the
// unification hits a constant conflict (the pair is incompatible with the
// current match, Sec. 6.1 step 2).
func (e *Env) TryAddPair(p Pair) bool {
	e.Stats.PairAttempts++
	if p.L.Rel != p.R.Rel || !e.ModeAllows(p) {
		e.Stats.PairRejects++
		return false
	}
	lrow, rrow := e.LeftRow(p.L), e.RightRow(p.R)
	um := e.U.Mark()
	for i := range lrow {
		if !e.U.MergeID(lrow[i], rrow[i]) {
			e.U.Undo(um)
			e.Stats.PairRejects++
			return false
		}
	}
	e.addPair(p)
	return true
}

// TryAddPartialPair extends the match with a possibly partial pair
// (Sec. 6.3): cells that cannot be unified are left unmerged and will score
// 0. The pair is accepted when it is fully compatible, or when the tuples
// agree on at least minShared constant attributes. It returns whether the
// pair was added and the number of conflicting cells.
func (e *Env) TryAddPartialPair(p Pair, minShared int) (added bool, conflicts int) {
	e.Stats.PairAttempts++
	if p.L.Rel != p.R.Rel || !e.ModeAllows(p) {
		e.Stats.PairRejects++
		return false, 0
	}
	if minShared < 1 {
		minShared = 1
	}
	lrow, rrow := e.LeftRow(p.L), e.RightRow(p.R)
	null := e.In.NullFlags()
	um := e.U.Mark()
	shared := 0
	for i := range lrow {
		lv, rv := lrow[i], rrow[i]
		if !null[lv] && !null[rv] {
			if lv == rv {
				shared++
			} else {
				conflicts++
			}
			continue
		}
		if !e.U.MergeID(lv, rv) {
			conflicts++
		}
	}
	if conflicts > 0 && shared < minShared {
		e.U.Undo(um)
		e.Stats.PairRejects++
		return false, conflicts
	}
	e.addPair(p)
	return true, conflicts
}

// WouldAccept reports whether TryAddPair would succeed, without mutating
// the environment (the signature algorithm's IsCompatible check).
func (e *Env) WouldAccept(p Pair) bool {
	m := e.Mark()
	ok := e.TryAddPair(p)
	if ok {
		e.Undo(m)
	}
	return ok
}

// CheckTotality validates the mode's totality requirements against the
// current mapping. It returns nil when they hold.
func (e *Env) CheckTotality() error {
	if e.Mode.RequireLeftTotal {
		for ri, r := range e.LRels {
			for ti := range r.Tuples {
				if len(e.leftImg[e.lBase[ri]+ti]) == 0 {
					return fmt.Errorf("match: left tuple t%d unmatched but mode requires left-total", r.Tuples[ti].ID)
				}
			}
		}
	}
	if e.Mode.RequireRightTotal {
		for ri, r := range e.RRels {
			for ti := range r.Tuples {
				if len(e.rightImg[e.rBase[ri]+ti]) == 0 {
					return fmt.Errorf("match: right tuple t%d unmatched but mode requires right-total", r.Tuples[ti].ID)
				}
			}
		}
	}
	return nil
}

// ValueMapping materializes one side's value mapping h from the unifier:
// every value of that side's active domain maps to its class
// representative. Identity entries are included so the result is total on
// the active domain (Def. 4.1). This is a decode-boundary helper: it works
// in caller-facing Values, not IDs.
func (e *Env) ValueMapping(side unify.Side) map[model.Value]model.Value {
	src := e.Left
	if side == unify.Right {
		src = e.Right
	}
	h := map[model.Value]model.Value{}
	for v := range src.ActiveDomain() {
		h[v] = e.U.Representative(v)
	}
	return h
}

// IsComplete verifies Def. 4.3: h_l(t) = h_r(t') for every matched pair.
// It always holds for matches grown through TryAddPair and exists as an
// invariant check for tests and for externally supplied matches.
func (e *Env) IsComplete() bool {
	for _, p := range e.pairs {
		lrow, rrow := e.LeftRow(p.L), e.RightRow(p.R)
		for i := range lrow {
			if !e.U.SameClassID(lrow[i], rrow[i]) {
				return false
			}
		}
	}
	return true
}

package match

import (
	"errors"
	"testing"

	"instcmp/internal/model"
	"instcmp/internal/unify"
)

func c(s string) model.Value { return model.Const(s) }
func n(s string) model.Value { return model.Null(s) }

func pairInstances() (*model.Instance, *model.Instance) {
	l := model.NewInstance()
	l.AddRelation("R", "A", "B")
	l.Append("R", c("a"), n("N1"))
	l.Append("R", c("b"), n("N1"))
	l.Append("R", n("N2"), c("x"))
	r := model.NewInstance()
	r.AddRelation("R", "A", "B")
	r.Append("R", c("a"), c("v"))
	r.Append("R", c("b"), c("w"))
	r.Append("R", c("q"), c("x"))
	return l, r
}

func TestNewEnvValidation(t *testing.T) {
	l, r := pairInstances()
	if _, err := NewEnv(l, r, ManyToMany); err != nil {
		t.Fatalf("valid pair rejected: %v", err)
	}
	bad := model.NewInstance()
	bad.AddRelation("S", "A", "B")
	if _, err := NewEnv(l, bad, ManyToMany); !errors.Is(err, ErrSchemaMismatch) {
		t.Errorf("schema mismatch not detected: %v", err)
	}
	shared := model.NewInstance()
	shared.AddRelation("R", "A", "B")
	shared.Append("R", n("N1"), c("y"))
	if _, err := NewEnv(l, shared, ManyToMany); !errors.Is(err, ErrSharedNulls) {
		t.Errorf("shared nulls not detected: %v", err)
	}
}

func TestTryAddPairConflict(t *testing.T) {
	l, r := pairInstances()
	e, err := NewEnv(l, r, ManyToMany)
	if err != nil {
		t.Fatal(err)
	}
	// (t0, u0) binds N1 -> v.
	if !e.TryAddPair(Pair{Ref{0, 0}, Ref{0, 0}}) {
		t.Fatal("compatible pair refused")
	}
	// (t1, u1) would need N1 -> w: conflicts with N1 -> v.
	if e.TryAddPair(Pair{Ref{0, 1}, Ref{0, 1}}) {
		t.Fatal("conflicting pair accepted")
	}
	if e.NumPairs() != 1 {
		t.Errorf("pairs = %d, want 1", e.NumPairs())
	}
	// Constant conflict within a single pair: (t0:a,..) vs (u1:b,..).
	if e.TryAddPair(Pair{Ref{0, 0}, Ref{0, 1}}) {
		t.Fatal("constant-conflicting pair accepted")
	}
	// (t2, u2) binds N2 -> q, compatible.
	if !e.TryAddPair(Pair{Ref{0, 2}, Ref{0, 2}}) {
		t.Fatal("independent pair refused")
	}
	if !e.IsComplete() {
		t.Error("grown match must be complete")
	}
}

func TestModeEnforcement(t *testing.T) {
	l := model.NewInstance()
	l.AddRelation("R", "A")
	l.Append("R", n("N1"))
	l.Append("R", n("N2"))
	r := model.NewInstance()
	r.AddRelation("R", "A")
	r.Append("R", n("V1"))
	r.Append("R", n("V2"))

	e, _ := NewEnv(l, r, OneToOne)
	if !e.TryAddPair(Pair{Ref{0, 0}, Ref{0, 0}}) {
		t.Fatal("first pair refused")
	}
	if e.TryAddPair(Pair{Ref{0, 0}, Ref{0, 1}}) {
		t.Error("left-injectivity violated")
	}
	if e.TryAddPair(Pair{Ref{0, 1}, Ref{0, 0}}) {
		t.Error("right-injectivity violated")
	}
	if !e.TryAddPair(Pair{Ref{0, 1}, Ref{0, 1}}) {
		t.Error("disjoint pair refused")
	}

	e2, _ := NewEnv(l, r, ManyToMany)
	for _, p := range []Pair{{Ref{0, 0}, Ref{0, 0}}, {Ref{0, 0}, Ref{0, 1}}, {Ref{0, 1}, Ref{0, 0}}} {
		if !e2.TryAddPair(p) {
			t.Errorf("n-to-m mode refused %v", p)
		}
	}
	if e2.TryAddPair(Pair{Ref{0, 0}, Ref{0, 0}}) {
		t.Error("duplicate pair accepted")
	}
	if got := e2.LeftDegree(Ref{0, 0}); got != 2 {
		t.Errorf("left degree = %d, want 2", got)
	}
	if got := e2.RightDegree(Ref{0, 0}); got != 2 {
		t.Errorf("right degree = %d, want 2", got)
	}
}

func TestUndoRestoresMapping(t *testing.T) {
	l, r := pairInstances()
	e, _ := NewEnv(l, r, ManyToMany)
	if !e.TryAddPair(Pair{Ref{0, 0}, Ref{0, 0}}) {
		t.Fatal("setup failed")
	}
	m := e.Mark()
	if !e.TryAddPair(Pair{Ref{0, 2}, Ref{0, 2}}) {
		t.Fatal("setup failed")
	}
	e.Undo(m)
	if e.NumPairs() != 1 {
		t.Errorf("pairs after undo = %d, want 1", e.NumPairs())
	}
	if e.LeftDegree(Ref{0, 2}) != 0 || e.RightDegree(Ref{0, 2}) != 0 {
		t.Error("degrees not restored")
	}
	if e.U.SameClass(n("N2"), c("q")) {
		t.Error("unifier merge not rolled back")
	}
	// The undone pair must be addable again.
	if !e.TryAddPair(Pair{Ref{0, 2}, Ref{0, 2}}) {
		t.Error("pair not re-addable after undo")
	}
}

func TestWouldAcceptDoesNotMutate(t *testing.T) {
	l, r := pairInstances()
	e, _ := NewEnv(l, r, ManyToMany)
	p := Pair{Ref{0, 0}, Ref{0, 0}}
	if !e.WouldAccept(p) {
		t.Fatal("WouldAccept = false for compatible pair")
	}
	if e.NumPairs() != 0 {
		t.Error("WouldAccept mutated the mapping")
	}
	if e.U.SameClass(n("N1"), c("v")) {
		t.Error("WouldAccept leaked a merge")
	}
}

func TestValueMappingTotality(t *testing.T) {
	l, r := pairInstances()
	e, _ := NewEnv(l, r, ManyToMany)
	e.TryAddPair(Pair{Ref{0, 0}, Ref{0, 0}})
	hl := e.ValueMapping(unify.Left)
	if len(hl) != len(l.ActiveDomain()) {
		t.Errorf("h_l not total: %d entries for %d values", len(hl), len(l.ActiveDomain()))
	}
	if hl[n("N1")] != c("v") {
		t.Errorf("h_l(N1) = %v, want v", hl[n("N1")])
	}
	if hl[c("a")] != c("a") {
		t.Error("h_l must preserve constants")
	}
	if hl[n("N2")] != n("N2") {
		t.Error("untouched null must map to itself")
	}
}

func TestCheckTotality(t *testing.T) {
	l, r := pairInstances()
	mode := Mode{RequireLeftTotal: true, RequireRightTotal: true}
	e, _ := NewEnv(l, r, mode)
	if err := e.CheckTotality(); err == nil {
		t.Error("empty mapping passed totality check")
	}
	e.TryAddPair(Pair{Ref{0, 0}, Ref{0, 0}})
	e.TryAddPair(Pair{Ref{0, 2}, Ref{0, 2}})
	if err := e.CheckTotality(); err == nil {
		t.Error("partial mapping passed totality check")
	}
}

func TestArityLimit(t *testing.T) {
	attrs := make([]string, 65)
	for i := range attrs {
		attrs[i] = string(rune('A')) + string(rune('a'+i%26)) + string(rune('0'+i/26))
	}
	wide := model.NewInstance()
	wide.AddRelation("W", attrs...)
	if _, err := NewEnv(wide, wide.Clone(), ManyToMany); !errors.Is(err, ErrTooManyAttributes) {
		t.Errorf("65-attribute relation accepted: %v", err)
	}
}

func TestModeString(t *testing.T) {
	cases := map[string]Mode{
		"1-to-1":        OneToOne,
		"functional":    Functional,
		"n-to-m":        ManyToMany,
		"co-functional": {RightInjective: true},
	}
	for want, mode := range cases {
		if got := mode.String(); got != want {
			t.Errorf("Mode%+v.String() = %q, want %q", mode, got, want)
		}
	}
}

package match

// This file implements the Prepare half of the engine's two-phase
// Prepare/Compare API. A PreparedSide is everything about ONE instance that
// a comparison needs and that does not depend on the partner: the relation
// list, the sorted null inventory, the instance's self-coded integer rows,
// and the signature algorithm's per-relation attribute orders. Preparing is
// done once per instance; NewEnvPrepared then assembles a comparison
// environment from two prepared sides without re-normalizing or re-interning
// either one.
//
// The joint ID space of a comparison is built by block: the left side's
// self-coding is adopted verbatim (its interner is cloned, one map copy over
// the distinct values), and the right side's distinct values are interned
// into the clone in self-ID order, yielding a translation table that remaps
// the right side's coded rows with a flat int32 rewrite. Because NewEnv
// interns in exactly the same order — left sorted nulls, left constants in
// scan order, right sorted nulls, right constants in scan order — the joint
// interner, the coded rows, and therefore every downstream decision are
// bit-identical between the one-shot and the prepared path (pinned by the
// prepared-equivalence suite and the regress goldens).

import (
	"fmt"

	"instcmp/internal/model"
	"instcmp/internal/unify"
)

// PreparedSide is the partner-independent half of a comparison over one
// instance. It is immutable after PrepareSide returns and may be shared by
// any number of concurrent comparisons: environments clone the interner and
// remap (or alias) the coded relations, never mutating the prepared state.
type PreparedSide struct {
	// Inst is the prepared instance. The preparing caller owns it and must
	// not mutate it while the PreparedSide is in use.
	Inst *model.Instance
	// Rels is Inst's relation list in schema order.
	Rels []*model.Relation
	// In is the self-interner: this instance's values coded alone, sorted
	// nulls first (IDs 0..len(Vars)-1), then constants in scan order.
	In *model.Interner
	// Code holds the self-coded image of each relation, aligned with Rels.
	Code []*model.CodedRelation
	// Vars is the instance's labeled nulls in sorted order; Vars[i] has
	// self-ID i.
	Vars []model.Value
	// Orders caches each relation's lexicographic attribute order, the pure
	// schema-derived state the signature algorithm re-derived per run before
	// the Prepare/Compare split.
	Orders [][]int

	nTuples int
}

// PrepareSide validates and codes one instance for reuse across
// comparisons. It does not clone: the caller promises not to mutate inst
// while the prepared side is live (instcmp.Prepare snapshots first).
func PrepareSide(inst *model.Instance) (*PreparedSide, error) {
	rels := inst.Relations()
	for _, rel := range rels {
		if rel.Arity() > 64 {
			return nil, fmt.Errorf("%w: %s has %d", ErrTooManyAttributes, rel.Name, rel.Arity())
		}
	}
	p := &PreparedSide{
		Inst:   inst,
		Rels:   rels,
		In:     model.NewInterner(),
		Vars:   inst.SortedVars(),
		Code:   make([]*model.CodedRelation, len(rels)),
		Orders: make([][]int, len(rels)),
	}
	for _, v := range p.Vars {
		p.In.Intern(v)
	}
	for i, rel := range rels {
		p.Code[i] = p.In.Code(rel)
		p.Orders[i] = model.AttrOrder(rel)
		p.nTuples += len(rel.Tuples)
	}
	return p, nil
}

// NumTuples returns the total tuple count of the prepared instance.
func (p *PreparedSide) NumTuples() int { return p.nTuples }

// WithRelations returns a view of the prepared side over a renamed schema:
// the coded rows, interner, null inventory, and attribute orders are shared
// (none of them depend on relation names), only the instance and relation
// list differ. The caller must pass relations with identical attribute
// lists in identical order; lake ranking uses this to align a
// single-relation candidate's table name with the example's without
// re-preparing the candidate.
func (p *PreparedSide) WithRelations(inst *model.Instance) *PreparedSide {
	v := *p
	v.Inst = inst
	v.Rels = inst.Relations()
	return &v
}

// NewEnvPrepared assembles a comparison environment from two prepared
// sides, reusing their codings: the left side's coded relations are aliased
// as-is, the right side's are remapped into the joint ID space through one
// translation table. The result is indistinguishable from
// NewEnv(l.Inst, r.Inst, mode) — same interner contents, same coded rows,
// same unifier registrations — at a fraction of the cost.
func NewEnvPrepared(l, r *PreparedSide, mode Mode) (*Env, error) {
	if !model.SameSchema(l.Inst, r.Inst) {
		return nil, ErrSchemaMismatch
	}
	for _, v := range r.Vars {
		if _, shared := l.In.Lookup(v); shared {
			return nil, fmt.Errorf("%w: %v", ErrSharedNulls, v)
		}
	}
	in := l.In.Clone()
	u := unify.NewInterned(in)
	for i := range l.Vars {
		u.AddNullID(model.ValueID(i), unify.Left)
	}
	// Extend the joint space with the right side's values in self-ID order
	// (sorted nulls first, then constants in scan order — the same
	// introduction sequence NewEnv produces), recording the translation.
	table := make([]model.ValueID, r.In.Len())
	for id := range table {
		table[id] = in.Intern(r.In.ValueOf(model.ValueID(id)))
	}
	for i := range r.Vars {
		u.AddNullID(table[i], unify.Right)
	}
	e := &Env{
		Left:       l.Inst,
		Right:      r.Inst,
		LRels:      l.Rels,
		RRels:      r.Rels,
		LCode:      l.Code,
		In:         in,
		U:          u,
		Mode:       mode,
		attrOrders: l.Orders,
	}
	e.RCode = make([]*model.CodedRelation, len(r.Code))
	for i, c := range r.Code {
		e.RCode[i] = c.Remap(table)
	}
	e.lBase, e.nL = flatBases(e.LRels)
	e.rBase, e.nR = flatBases(e.RRels)
	e.leftImg = make([][]Ref, e.nL)
	e.rightImg = make([][]Ref, e.nR)
	return e, nil
}

// flatBases computes the flattened per-side index bases: flat index of
// (rel, idx) is base[rel] + idx.
func flatBases(rels []*model.Relation) (base []int, n int) {
	base = make([]int, len(rels))
	for i, rel := range rels {
		base[i] = n
		n += len(rel.Tuples)
	}
	return base, n
}

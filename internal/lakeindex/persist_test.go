package lakeindex

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func buildTestIndex(t *testing.T, n int) (*Index, []uint64) {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	entries, query := syntheticLake(n, 8, rng)
	ix, err := Build(entries)
	if err != nil {
		t.Fatal(err)
	}
	return ix, query
}

func TestPersistRoundTrip(t *testing.T) {
	ix, query := buildTestIndex(t, 60)
	path := filepath.Join(t.TempDir(), "lake.idx")
	if err := ix.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != ix.Len() {
		t.Fatalf("round-trip lost entries: %d vs %d", got.Len(), ix.Len())
	}
	for _, name := range ix.Names() {
		a, _ := ix.Entry(name)
		b, ok := got.Entry(name)
		if !ok {
			t.Fatalf("entry %q missing after round-trip", name)
		}
		if !a.Sketch.Equal(b.Sketch) || a.Features != b.Features {
			t.Fatalf("entry %q changed in round-trip", name)
		}
	}
	// The reloaded index must retrieve identically: same hits, same order.
	q := NewSketch(query)
	want, _ := ix.Shortlist(q, 20)
	have, _ := got.Shortlist(q, 20)
	if len(want) != len(have) {
		t.Fatalf("shortlist sizes differ: %d vs %d", len(want), len(have))
	}
	for i := range want {
		if want[i] != have[i] {
			t.Fatalf("shortlist[%d] differs after reload: %+v vs %+v", i, want[i], have[i])
		}
	}
}

func TestPersistRoundTripsReadFlags(t *testing.T) {
	// The read options a lake was loaded under travel with the index, so a
	// query under different options can detect the mismatch instead of
	// silently comparing incompatible sketches.
	for _, flags := range []ReadFlags{0, FlagAnonymousNulls} {
		ix, _ := buildTestIndex(t, 5)
		ix = ix.WithFlags(flags)
		var buf bytes.Buffer
		if err := ix.Write(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Flags() != flags {
			t.Errorf("flags = %v after round-trip, want %v", got.Flags(), flags)
		}
	}
}

func TestReadFlagsString(t *testing.T) {
	if got := ReadFlags(0).String(); got != "none" {
		t.Errorf("ReadFlags(0) = %q", got)
	}
	if got := FlagAnonymousNulls.String(); got != "anon-nulls" {
		t.Errorf("FlagAnonymousNulls = %q", got)
	}
}

func TestReadRejectsNonIndexFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-an-index")
	if err := os.WriteFile(path, []byte("relation,attr\n1,2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := ReadFile(path)
	if !errors.Is(err, ErrNotIndex) {
		t.Errorf("err = %v, want ErrNotIndex", err)
	}
}

func TestReadRejectsShortFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stub")
	if err := os.WriteFile(path, []byte("LK"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); !errors.Is(err, ErrNotIndex) {
		t.Errorf("err = %v, want ErrNotIndex", err)
	}
}

func TestReadRejectsVersionMismatch(t *testing.T) {
	ix, _ := buildTestIndex(t, 5)
	var buf bytes.Buffer
	if err := ix.Write(&buf); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name   string
		offset int
	}{
		{"format version", 4},
		{"seed version", 8},
		{"sketch width", 12},
		{"band count", 16},
	} {
		data := append([]byte(nil), buf.Bytes()...)
		data[tc.offset]++
		_, err := Read(bytes.NewReader(data))
		if !errors.Is(err, ErrVersion) {
			t.Errorf("%s bumped: err = %v, want ErrVersion", tc.name, err)
		}
	}
}

func TestReadRejectsCorruption(t *testing.T) {
	ix, _ := buildTestIndex(t, 10)
	var buf bytes.Buffer
	if err := ix.Write(&buf); err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte: the checksum must catch it.
	data := append([]byte(nil), buf.Bytes()...)
	data[len(data)-3] ^= 0xff
	if _, err := Read(bytes.NewReader(data)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bit flip: err = %v, want ErrCorrupt", err)
	}
	// Truncate the payload: caught before the checksum even runs.
	if _, err := Read(bytes.NewReader(buf.Bytes()[:len(buf.Bytes())-10])); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncation: err = %v, want ErrCorrupt", err)
	}
	// Declare more bytes than exist (payload length sits at offset 24).
	data = append([]byte(nil), buf.Bytes()...)
	data[24] = 0xff
	if _, err := Read(bytes.NewReader(data)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("length lie: err = %v, want ErrCorrupt", err)
	}
}

func TestWriteFileAtomicReplacesExisting(t *testing.T) {
	ix, _ := buildTestIndex(t, 5)
	path := filepath.Join(t.TempDir(), "lake.idx")
	if err := os.WriteFile(path, []byte("old garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ix.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 5 {
		t.Errorf("reloaded %d entries, want 5", got.Len())
	}
	// No temp files left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory has %d entries, want just the index", len(entries))
	}
}

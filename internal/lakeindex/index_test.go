package lakeindex

import (
	"math/rand"
	"strconv"
	"testing"
)

// syntheticLake builds n entries: the first `related` are perturbed variants
// of a base feature set (decreasing overlap), the rest are unrelated random
// sets. Returns the entries and the query features.
func syntheticLake(n, related int, rng *rand.Rand) ([]Entry, []uint64) {
	base := randomFeatures(800, rng)
	entries := make([]Entry, 0, n)
	for i := 0; i < n; i++ {
		var feats []uint64
		if i < related {
			// Overlap decays from ~95% to ~50% across the related block.
			keep := 760 - (i*320)/max(related, 1)
			feats = append(append([]uint64(nil), base[:keep]...), randomFeatures(800-keep, rng)...)
		} else {
			feats = randomFeatures(800, rng)
		}
		entries = append(entries, Entry{
			Name:     "cand-" + strconv.Itoa(i),
			Sketch:   NewSketch(feats),
			Features: uint64(len(feats)),
		})
	}
	return entries, base
}

func TestBuildRejectsBadEntries(t *testing.T) {
	sk := NewSketch([]uint64{1, 2, 3})
	if _, err := Build([]Entry{{Name: "", Sketch: sk}}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := Build([]Entry{{Name: "a", Sketch: nil}}); err == nil {
		t.Error("nil sketch accepted")
	}
	if _, err := Build([]Entry{{Name: "a", Sketch: sk}, {Name: "a", Sketch: sk}}); err == nil {
		t.Error("duplicate name accepted")
	}
}

func TestShortlistFindsRelatedCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	entries, query := syntheticLake(400, 12, rng)
	ix, err := Build(entries)
	if err != nil {
		t.Fatal(err)
	}
	hits, st := ix.Shortlist(NewSketch(query), 40)
	if len(hits) != 40 {
		t.Fatalf("shortlist size = %d, want 40", len(hits))
	}
	inShort := map[string]bool{}
	for _, h := range hits {
		inShort[h.Name] = true
	}
	for i := 0; i < 12; i++ {
		if name := "cand-" + strconv.Itoa(i); !inShort[name] {
			t.Errorf("related %s missing from shortlist (probed=%d widened=%v)", name, st.Probed, st.Widened)
		}
	}
	// Hits are sorted by estimate desc; the strongly-related block should
	// dominate the top.
	for i := 1; i < len(hits); i++ {
		if hits[i].Estimate > hits[i-1].Estimate {
			t.Fatalf("hits not sorted by estimate: %v > %v at %d", hits[i].Estimate, hits[i-1].Estimate, i)
		}
	}
}

func TestShortlistWidensWhenBandingUnderDelivers(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	// All candidates unrelated to the query: banding should find nothing
	// and the probe must widen to a full estimate scan, not return empty.
	entries, _ := syntheticLake(50, 0, rng)
	ix, err := Build(entries)
	if err != nil {
		t.Fatal(err)
	}
	hits, st := ix.Shortlist(NewSketch(randomFeatures(800, rng)), 20)
	if !st.Widened {
		t.Errorf("expected widened probe on an unrelated lake (probed=%d)", st.Probed)
	}
	if len(hits) != 20 {
		t.Errorf("widened shortlist size = %d, want 20", len(hits))
	}
}

func TestShortlistTargetClamping(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	entries, query := syntheticLake(10, 3, rng)
	ix, err := Build(entries)
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range []int{0, -1, 100} {
		hits, _ := ix.Shortlist(NewSketch(query), target)
		if len(hits) != 10 {
			t.Errorf("target %d: got %d hits, want all 10", target, len(hits))
		}
	}
}

func TestIndexLookups(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	entries, _ := syntheticLake(5, 0, rng)
	ix, err := Build(entries)
	if err != nil {
		t.Fatal(err)
	}
	if !ix.Contains("cand-3") || ix.Contains("nope") {
		t.Error("Contains wrong")
	}
	if e, ok := ix.Entry("cand-2"); !ok || e.Name != "cand-2" || e.Features != 800 {
		t.Errorf("Entry(cand-2) = %+v, %v", e, ok)
	}
	names := ix.Names()
	if len(names) != 5 || names[0] != "cand-0" {
		t.Errorf("Names() = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			t.Errorf("Names() not sorted: %v", names)
		}
	}
}

package lakeindex

import (
	"math/rand"
	"strconv"
	"sync"
	"testing"
)

func TestDynamicAddRemoveReplace(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	d := NewDynamic()
	a := NewSketch(randomFeatures(300, rng))
	b := NewSketch(randomFeatures(300, rng))

	d.Add("x", a)
	if !d.Contains("x") || d.Len() != 1 {
		t.Fatalf("after Add: Contains=%v Len=%d", d.Contains("x"), d.Len())
	}
	// Replacing must drop the old sketch's buckets: a query equal to the old
	// sketch should no longer find "x" through banding alone.
	d.Add("x", b)
	if d.Len() != 1 {
		t.Fatalf("replace changed Len to %d", d.Len())
	}
	hits, _ := d.Shortlist(b, 1)
	if len(hits) != 1 || hits[0].Name != "x" || hits[0].Estimate != 1 {
		t.Fatalf("replaced sketch not retrievable: %+v", hits)
	}
	if !d.Remove("x") || d.Contains("x") || d.Len() != 0 {
		t.Fatal("Remove did not unindex")
	}
	if d.Remove("x") {
		t.Error("second Remove reported true")
	}
	// All buckets must be gone, or churn would leak memory in a long-running
	// registry.
	if len(d.buckets) != 0 || len(d.names) != 0 {
		t.Errorf("leftovers after removal: %d buckets, %d names", len(d.buckets), len(d.names))
	}
}

func TestDynamicMatchesStaticIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	entries, query := syntheticLake(200, 10, rng)
	ix, err := Build(entries)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDynamic()
	// Insert in shuffled order with some churn: every candidate gets added,
	// a third are removed and re-added.
	perm := rng.Perm(len(entries))
	for _, i := range perm {
		d.Add(entries[i].Name, entries[i].Sketch)
	}
	for i := 0; i < len(entries); i += 3 {
		d.Remove(entries[i].Name)
	}
	for i := 0; i < len(entries); i += 3 {
		d.Add(entries[i].Name, entries[i].Sketch)
	}
	if d.Len() != ix.Len() {
		t.Fatalf("Len: dynamic %d vs static %d", d.Len(), ix.Len())
	}

	q := NewSketch(query)
	for _, target := range []int{10, 40, 0} {
		want, _ := ix.Shortlist(q, target)
		have, _ := d.Shortlist(q, target)
		if len(want) != len(have) {
			t.Fatalf("target %d: %d vs %d hits", target, len(have), len(want))
		}
		for i := range want {
			if want[i] != have[i] {
				t.Errorf("target %d: hit[%d] dynamic %+v vs static %+v", target, i, have[i], want[i])
			}
		}
	}
}

func TestDynamicConcurrentChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	entries, query := syntheticLake(64, 8, rng)
	d := NewDynamic()
	// Stable block that is never removed: probes must always see it.
	for _, e := range entries[:16] {
		d.Add(e.Name, e.Sketch)
	}
	q := NewSketch(query)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			block := entries[16+12*w : 16+12*(w+1)]
			for round := 0; round < 50; round++ {
				for _, e := range block {
					d.Add(e.Name+"-"+strconv.Itoa(w), e.Sketch)
				}
				for _, e := range block {
					d.Remove(e.Name + "-" + strconv.Itoa(w))
				}
			}
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 100; round++ {
				hits, _ := d.Shortlist(q, 16)
				if len(hits) < 16 {
					t.Errorf("probe lost the stable block: %d hits", len(hits))
					return
				}
				seen := make(map[string]bool, len(hits))
				for _, h := range hits {
					if seen[h.Name] {
						t.Errorf("duplicate hit %q", h.Name)
						return
					}
					seen[h.Name] = true
				}
			}
		}()
	}
	wg.Wait()
	if d.Len() != 16 {
		t.Errorf("after churn Len = %d, want the 16 stable entries", d.Len())
	}
}

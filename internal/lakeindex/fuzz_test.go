package lakeindex

import (
	"bytes"
	"errors"
	"testing"
)

// fuzzIndexBytes serializes a small deterministic index for seeding.
func fuzzIndexBytes(flags ReadFlags) []byte {
	entries := []Entry{
		{Name: "alpha", Sketch: NewSketch([]uint64{1, 2, 3, 4}), Features: 4},
		{Name: "beta", Sketch: NewSketch([]uint64{2, 3, 5, 7, 11}), Features: 5},
		{Name: "gamma", Sketch: NewSketch(nil), Features: 0},
	}
	ix, err := Build(entries)
	if err != nil {
		panic(err)
	}
	var buf bytes.Buffer
	if err := ix.WithFlags(flags).Write(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzRead: arbitrary bytes must either decode into a well-formed index or
// fail with one of the three categorized errors — never panic, never return
// an index that does not round-trip. The decoder trusts nothing before the
// magic, version, geometry, and checksum all pass, so this target hammers
// exactly the path an attacker-supplied or disk-corrupted index file takes.
func FuzzRead(f *testing.F) {
	valid := fuzzIndexBytes(0)
	f.Add(valid)
	f.Add(fuzzIndexBytes(FlagAnonymousNulls))
	f.Add([]byte{})
	f.Add(valid[:17])                                           // header truncated
	f.Add(valid[:40])                                           // payload missing
	f.Add(append([]byte("NOPE"), valid[4:]...))                 // bad magic
	f.Add(append([]byte("LKIX\x01\x00\x00\x00"), valid[8:]...)) // old format version
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)-1] ^= 0xff
	f.Add(corrupt) // checksum mismatch
	long := append([]byte(nil), valid...)
	long[24], long[25], long[26], long[27] = 0xff, 0xff, 0xff, 0xff
	f.Add(long) // implausible payload length
	f.Fuzz(func(t *testing.T, data []byte) {
		ix, err := Read(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrNotIndex) && !errors.Is(err, ErrVersion) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("uncategorized decode error: %v", err)
			}
			return
		}
		// A successful decode must re-serialize deterministically and
		// round-trip to an identical index.
		var first bytes.Buffer
		if err := ix.Write(&first); err != nil {
			t.Fatalf("re-serializing a decoded index failed: %v", err)
		}
		back, err := Read(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-reading a re-serialized index failed: %v", err)
		}
		if back.Len() != ix.Len() || back.Flags() != ix.Flags() {
			t.Fatalf("round trip changed shape: %d/%v -> %d/%v",
				ix.Len(), ix.Flags(), back.Len(), back.Flags())
		}
		for _, name := range ix.Names() {
			if name == "" {
				t.Fatal("decoded index holds an empty candidate name")
			}
			a, _ := ix.Entry(name)
			b, ok := back.Entry(name)
			if !ok {
				t.Fatalf("entry %q lost in round trip", name)
			}
			if !a.Sketch.Equal(b.Sketch) || a.Features != b.Features {
				t.Fatalf("entry %q changed in round trip", name)
			}
		}
		var second bytes.Buffer
		if err := back.Write(&second); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatal("serialization is not deterministic")
		}
	})
}

package lakeindex

import (
	"math"
	"math/rand"
	"testing"
)

// randomFeatures returns n distinct pseudo-random feature hashes.
func randomFeatures(n int, rng *rand.Rand) []uint64 {
	seen := make(map[uint64]bool, n)
	out := make([]uint64, 0, n)
	for len(out) < n {
		f := rng.Uint64()
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	return out
}

// jaccard computes the exact Jaccard similarity of two feature slices.
func jaccard(a, b []uint64) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	in := make(map[uint64]bool, len(a))
	for _, f := range a {
		in[f] = true
	}
	inter := 0
	for _, f := range b {
		if in[f] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

func TestSketchDeterministicAndOrderInsensitive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	feats := randomFeatures(500, rng)
	s1 := NewSketch(feats)
	s2 := NewSketch(feats)
	if !s1.Equal(s2) {
		t.Fatal("same features, different sketches")
	}
	// Shuffle and duplicate: min() commutes and is idempotent.
	shuffled := append([]uint64(nil), feats...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	shuffled = append(shuffled, feats[:100]...)
	if !s1.Equal(NewSketch(shuffled)) {
		t.Fatal("sketch depends on feature order or duplication")
	}
}

func TestSketchEstimateTracksJaccard(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	base := randomFeatures(1000, rng)
	for _, keep := range []float64{1.0, 0.8, 0.5, 0.2, 0.0} {
		n := int(keep * float64(len(base)))
		variant := append([]uint64(nil), base[:n]...)
		variant = append(variant, randomFeatures(len(base)-n, rng)...)
		got := NewSketch(base).Estimate(NewSketch(variant))
		want := jaccard(base, variant)
		// Standard error at K=128 is ~sqrt(J(1-J)/128) <= 0.045; allow 4σ.
		if math.Abs(got-want) > 0.18 {
			t.Errorf("keep=%.1f: estimate %.3f vs exact %.3f", keep, got, want)
		}
	}
}

func TestSketchEstimateIdentityAndEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := NewSketch(randomFeatures(200, rng))
	if got := s.Estimate(s); got != 1 {
		t.Errorf("self-estimate = %v, want 1", got)
	}
	empty := NewSketch(nil)
	if got := empty.Estimate(NewSketch(nil)); got != 1 {
		t.Errorf("empty-vs-empty = %v, want 1 (matches the prefilter's empty-set convention)", got)
	}
	if got := empty.Estimate(s); got > 0.05 {
		t.Errorf("empty-vs-full = %v, want ~0", got)
	}
}

func TestBandKeysDistinguishBands(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := NewSketch(randomFeatures(300, rng))
	keys := s.BandKeys()
	seen := map[uint64]bool{}
	for _, k := range keys {
		if seen[k] {
			t.Fatalf("band key collision within one sketch: %x", k)
		}
		seen[k] = true
	}
	// Identical sketches must produce identical keys (that is the index).
	if NewSketch(randomFeatures(300, rand.New(rand.NewSource(4)))).BandKeys() != keys {
		t.Fatal("band keys are not deterministic")
	}
}

func TestHighSimilarityPairsShareABand(t *testing.T) {
	// At J = 0.9, P(no shared band) = (1-0.9^4)^32 ≈ 4e-5 per pair; 50
	// pairs together stay far below any flaky threshold.
	rng := rand.New(rand.NewSource(5))
	misses := 0
	for trial := 0; trial < 50; trial++ {
		base := randomFeatures(1000, rng)
		variant := append([]uint64(nil), base[:900]...)
		variant = append(variant, randomFeatures(100, rng)...)
		a, b := NewSketch(base).BandKeys(), NewSketch(variant).BandKeys()
		shared := false
		for i := range a {
			if a[i] == b[i] {
				shared = true
				break
			}
		}
		if !shared {
			misses++
		}
	}
	if misses > 2 {
		t.Errorf("%d/50 high-similarity pairs share no band; banding is broken", misses)
	}
}

package lakeindex

// Persisted index format (little-endian throughout):
//
//	offset size
//	0      4    magic "LKIX"
//	4      4    uint32 FormatVersion (file layout)
//	8      4    uint32 SeedVersion   (hash + permutation semantics)
//	12     4    uint32 K             (sketch width)
//	16     4    uint32 Bands
//	20     4    uint32 ReadFlags     (read options the lake was loaded under)
//	24     8    uint64 payload length in bytes
//	32     8    uint64 FNV-1a checksum of the payload
//	40     …    payload
//
// payload:
//
//	uint32 entry count, then per entry:
//	uint32 name length, name bytes, uint64 feature count, K × uint64 sketch
//
// Only sketches are persisted; the banded inverted index is rebuilt at load
// time (linear in the entry count, microseconds for thousand-entry lakes),
// which keeps the file small and makes the banding geometry upgradeable
// without a format change. Every load verifies magic, versions, geometry,
// and the payload checksum before trusting a single byte, so a truncated,
// corrupted, or stale file is rejected with a clear error — callers fall
// back to a full scan, they never crash on a bad index.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// FormatVersion is the persisted file layout version. Version 2 added the
// ReadFlags header word; version-1 files are rejected with ErrVersion (the
// rebuild advice stands — their flags are unknowable).
const FormatVersion = 2

var magic = [4]byte{'L', 'K', 'I', 'X'}

// maxNameLen bounds a persisted candidate name; anything longer marks a
// corrupt or hostile file.
const maxNameLen = 1 << 16

// Load failure categories, matchable with errors.Is.
var (
	// ErrNotIndex marks a file that is not a lake index at all.
	ErrNotIndex = errors.New("not a lake index file")
	// ErrVersion marks an index written under a different format or seed
	// version; the index must be rebuilt.
	ErrVersion = errors.New("index version mismatch")
	// ErrCorrupt marks a structurally damaged index file (bad checksum,
	// truncation, impossible lengths); the index must be rebuilt.
	ErrCorrupt = errors.New("index file corrupted")
)

// fnvSum is the running FNV-1a checksum the payload is verified with.
func fnvSum(data []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range data {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// Write serializes the index.
func (ix *Index) Write(w io.Writer) error {
	payload := ix.payload()
	var header [40]byte
	copy(header[0:4], magic[:])
	binary.LittleEndian.PutUint32(header[4:8], FormatVersion)
	binary.LittleEndian.PutUint32(header[8:12], SeedVersion)
	binary.LittleEndian.PutUint32(header[12:16], K)
	binary.LittleEndian.PutUint32(header[16:20], Bands)
	binary.LittleEndian.PutUint32(header[20:24], uint32(ix.flags))
	binary.LittleEndian.PutUint64(header[24:32], uint64(len(payload)))
	binary.LittleEndian.PutUint64(header[32:40], fnvSum(payload))
	if _, err := w.Write(header[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// payload renders the entry section.
func (ix *Index) payload() []byte {
	n := 4
	for _, e := range ix.entries {
		n += 4 + len(e.Name) + 8 + K*8
	}
	buf := make([]byte, 0, n)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ix.entries)))
	for _, e := range ix.entries {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(e.Name)))
		buf = append(buf, e.Name...)
		buf = binary.LittleEndian.AppendUint64(buf, e.Features)
		for _, v := range e.Sketch.vals {
			buf = binary.LittleEndian.AppendUint64(buf, v)
		}
	}
	return buf
}

// WriteFile atomically persists the index next to the lake: the bytes go to
// a temporary file in the same directory first and are renamed into place,
// so a crash mid-write can never leave a half-written index under the real
// name (it would fail the checksum anyway, but it should not even exist).
func (ix *Index) WriteFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".lakeindex-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	bw := bufio.NewWriter(tmp)
	if err := ix.Write(bw); err != nil {
		tmp.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Read deserializes and verifies an index.
func Read(r io.Reader) (*Index, error) {
	var header [40]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return nil, fmt.Errorf("lakeindex: %w: header too short: %v", ErrNotIndex, err)
	}
	if [4]byte(header[0:4]) != magic {
		return nil, fmt.Errorf("lakeindex: %w: bad magic %q", ErrNotIndex, header[0:4])
	}
	if v := binary.LittleEndian.Uint32(header[4:8]); v != FormatVersion {
		return nil, fmt.Errorf("lakeindex: %w: file format %d, this build reads %d — rebuild the index", ErrVersion, v, FormatVersion)
	}
	if v := binary.LittleEndian.Uint32(header[8:12]); v != SeedVersion {
		return nil, fmt.Errorf("lakeindex: %w: sketch seeds v%d, this build uses v%d — rebuild the index", ErrVersion, v, SeedVersion)
	}
	if k := binary.LittleEndian.Uint32(header[12:16]); k != K {
		return nil, fmt.Errorf("lakeindex: %w: sketch width %d, this build uses %d — rebuild the index", ErrVersion, k, K)
	}
	if b := binary.LittleEndian.Uint32(header[16:20]); b != Bands {
		return nil, fmt.Errorf("lakeindex: %w: %d bands, this build uses %d — rebuild the index", ErrVersion, b, Bands)
	}
	flags := ReadFlags(binary.LittleEndian.Uint32(header[20:24]))
	plen := binary.LittleEndian.Uint64(header[24:32])
	if plen > 1<<32 {
		return nil, fmt.Errorf("lakeindex: %w: implausible payload length %d", ErrCorrupt, plen)
	}
	// Size the buffer by what actually arrives, not by the header's claim:
	// a hostile 40-byte header must not be able to demand a multi-gigabyte
	// allocation before the first payload byte is read (found by FuzzRead).
	payload, err := io.ReadAll(io.LimitReader(r, int64(plen)))
	if err != nil {
		return nil, fmt.Errorf("lakeindex: %w: payload unreadable: %v", ErrCorrupt, err)
	}
	if uint64(len(payload)) != plen {
		return nil, fmt.Errorf("lakeindex: %w: payload truncated: got %d of %d bytes", ErrCorrupt, len(payload), plen)
	}
	if sum := fnvSum(payload); sum != binary.LittleEndian.Uint64(header[32:40]) {
		return nil, fmt.Errorf("lakeindex: %w: checksum mismatch", ErrCorrupt)
	}
	entries, err := parsePayload(payload)
	if err != nil {
		return nil, err
	}
	ix, err := Build(entries)
	if err != nil {
		return nil, fmt.Errorf("lakeindex: %w: %v", ErrCorrupt, err)
	}
	return ix.WithFlags(flags), nil
}

// parsePayload decodes the checksummed entry section.
func parsePayload(p []byte) ([]Entry, error) {
	take := func(n int) ([]byte, error) {
		if len(p) < n {
			return nil, fmt.Errorf("lakeindex: %w: payload truncated inside an entry", ErrCorrupt)
		}
		b := p[:n]
		p = p[n:]
		return b, nil
	}
	cb, err := take(4)
	if err != nil {
		return nil, err
	}
	count := binary.LittleEndian.Uint32(cb)
	// Cheap plausibility bound before allocating: every entry occupies at
	// least its fixed fields plus a one-byte name.
	if uint64(count)*uint64(4+1+8+K*8) > uint64(len(p)) {
		return nil, fmt.Errorf("lakeindex: %w: implausible entry count %d for %d payload bytes", ErrCorrupt, count, len(p))
	}
	entries := make([]Entry, 0, count)
	for i := uint32(0); i < count; i++ {
		nb, err := take(4)
		if err != nil {
			return nil, err
		}
		nameLen := binary.LittleEndian.Uint32(nb)
		if nameLen == 0 || nameLen > maxNameLen {
			return nil, fmt.Errorf("lakeindex: %w: entry %d has name length %d", ErrCorrupt, i, nameLen)
		}
		name, err := take(int(nameLen))
		if err != nil {
			return nil, err
		}
		fb, err := take(8)
		if err != nil {
			return nil, err
		}
		sk := &Sketch{}
		vb, err := take(K * 8)
		if err != nil {
			return nil, err
		}
		for j := range sk.vals {
			sk.vals[j] = binary.LittleEndian.Uint64(vb[j*8:])
		}
		entries = append(entries, Entry{
			Name:     string(name),
			Features: binary.LittleEndian.Uint64(fb),
			Sketch:   sk,
		})
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("lakeindex: %w: %d trailing bytes after last entry", ErrCorrupt, len(p))
	}
	return entries, nil
}

// ReadFile loads and verifies a persisted index.
func ReadFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(bufio.NewReader(f))
}

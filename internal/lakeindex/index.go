package lakeindex

import (
	"fmt"
	"sort"
)

// Entry is one indexed candidate: its name, sketch, and the size of the
// feature set the sketch summarizes (kept for diagnostics and for weighting
// heuristics later; it does not influence retrieval).
type Entry struct {
	Name     string
	Sketch   *Sketch
	Features uint64
}

// Hit is one shortlist member: a candidate name with its estimated Jaccard
// overlap against the query sketch.
type Hit struct {
	Name     string
	Estimate float64
}

// ProbeStats reports how a shortlist was assembled.
type ProbeStats struct {
	// Probed is the number of distinct candidates the banded inverted index
	// returned for the query (before ranking and truncation).
	Probed int
	// Widened reports that banding returned fewer candidates than asked for,
	// so every indexed sketch was estimated instead (an O(n·K) word scan —
	// still far cheaper than n real comparisons).
	Widened bool
}

// Searcher is the retrieval interface lake ranking consumes: the static
// Index and the registry-resident Dynamic both implement it.
type Searcher interface {
	// Shortlist returns up to target candidates ranked by estimated overlap
	// with the query (estimate descending, name ascending on ties).
	// target <= 0 means every indexed candidate.
	Shortlist(q *Sketch, target int) ([]Hit, ProbeStats)
	// Contains reports whether a candidate name is indexed. Lake ranking
	// treats un-indexed candidates as shortlisted unconditionally, so a
	// stale index degrades to extra comparisons, never to lost candidates.
	Contains(name string) bool
}

// ReadFlags records how the indexed instances were read from their source
// (the csvio.ReadOptions that shaped the feature stream). Sketches built
// under different read options describe different feature sets — e.g.
// AnonymousNulls turns empty cells into labeled nulls, which are excluded
// from features — so probing an index with mismatched flags silently
// mis-ranks. The flags are persisted in the index header; queries compare
// them and degrade to a full scan on mismatch.
type ReadFlags uint32

// Read-option flags persisted with an index.
const (
	// FlagAnonymousNulls: instances were read with empty CSV cells turned
	// into fresh labeled nulls.
	FlagAnonymousNulls ReadFlags = 1 << 0
)

func (f ReadFlags) String() string {
	if f&FlagAnonymousNulls != 0 {
		return "anon-nulls"
	}
	return "none"
}

// Index is an immutable sketch index over a fixed candidate set, built once
// (Build) or loaded from a persisted file (ReadFile). It is safe for
// concurrent probing.
type Index struct {
	// entries are sorted by name; byName maps a name to its position.
	entries []Entry
	byName  map[string]int32
	// buckets is the inverted index: band bucket key → positions of the
	// entries whose sketch falls in that bucket, in entry order.
	buckets map[uint64][]int32
	// flags records the read options the indexed instances were loaded
	// under; persisted and round-tripped by Write/Read.
	flags ReadFlags
}

// WithFlags returns a copy of the index recording the read options the
// indexed instances were loaded under; the receiver is unchanged. Derive
// the flagged index before WriteFile so queries can detect a mismatch.
// (A published Index is immutable — internal/lint/immutpub — so the flags
// travel by construction, never by post-publish mutation.)
func (ix *Index) WithFlags(f ReadFlags) *Index {
	out := *ix
	out.flags = f
	return &out
}

// Flags returns the read options recorded at build time.
func (ix *Index) Flags() ReadFlags { return ix.flags }

// Build constructs an index over the entries. Entry names must be distinct
// and non-empty; sketches must be non-nil.
func Build(entries []Entry) (*Index, error) {
	es := append([]Entry(nil), entries...)
	sort.Slice(es, func(i, j int) bool { return es[i].Name < es[j].Name })
	ix := &Index{
		entries: es,
		byName:  make(map[string]int32, len(es)),
		buckets: make(map[uint64][]int32),
	}
	for i, e := range es {
		if e.Name == "" {
			return nil, fmt.Errorf("lakeindex: entry %d has an empty name", i)
		}
		if e.Sketch == nil {
			return nil, fmt.Errorf("lakeindex: entry %q has no sketch", e.Name)
		}
		if _, dup := ix.byName[e.Name]; dup {
			return nil, fmt.Errorf("lakeindex: duplicate entry %q", e.Name)
		}
		ix.byName[e.Name] = int32(i)
		for _, key := range e.Sketch.BandKeys() {
			ix.buckets[key] = append(ix.buckets[key], int32(i))
		}
	}
	return ix, nil
}

// Len returns the number of indexed candidates.
func (ix *Index) Len() int { return len(ix.entries) }

// Names returns the indexed candidate names in sorted order.
func (ix *Index) Names() []string {
	out := make([]string, len(ix.entries))
	for i, e := range ix.entries {
		out[i] = e.Name
	}
	return out
}

// Contains reports whether the name is indexed.
func (ix *Index) Contains(name string) bool {
	_, ok := ix.byName[name]
	return ok
}

// Entry returns the indexed entry for a name.
func (ix *Index) Entry(name string) (Entry, bool) {
	i, ok := ix.byName[name]
	if !ok {
		return Entry{}, false
	}
	return ix.entries[i], true
}

// Shortlist implements Searcher: probe the banded buckets, widen to a full
// sketch scan if banding under-delivers, rank by estimate, truncate.
func (ix *Index) Shortlist(q *Sketch, target int) ([]Hit, ProbeStats) {
	if target <= 0 || target > len(ix.entries) {
		target = len(ix.entries)
	}
	var st ProbeStats
	// Band probe: every candidate sharing at least one band bucket with the
	// query. seen is positional, so dedup needs no map iteration and the
	// candidate list comes out in deterministic entry order.
	seen := make([]bool, len(ix.entries))
	cands := make([]int32, 0, 2*target)
	for _, key := range q.BandKeys() {
		for _, i := range ix.buckets[key] {
			if !seen[i] {
				seen[i] = true
				cands = append(cands, i)
			}
		}
	}
	st.Probed = len(cands)
	if len(cands) < target {
		// Banding found too few: estimate everything. The probe set is a
		// subset of "everything", so this strictly widens the shortlist.
		st.Widened = true
		cands = cands[:0]
		for i := range ix.entries {
			cands = append(cands, int32(i))
		}
	}
	hits := make([]Hit, 0, len(cands))
	for _, i := range cands {
		e := &ix.entries[i]
		hits = append(hits, Hit{Name: e.Name, Estimate: q.Estimate(e.Sketch)})
	}
	sortHits(hits)
	if len(hits) > target {
		hits = hits[:target]
	}
	return hits, st
}

// sortHits orders hits by estimate descending, name ascending — the total
// deterministic order every retrieval path shares.
func sortHits(hits []Hit) {
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Estimate != hits[j].Estimate {
			return hits[i].Estimate > hits[j].Estimate
		}
		return hits[i].Name < hits[j].Name
	})
}

package lakeindex

import (
	"sort"
	"sync"
)

// Dynamic is a sketch index whose candidate set churns: the resident
// registry of instcmp-serve adds a sketch when an instance is registered and
// removes it when the instance is deleted, and concurrent /rank requests
// probe it the whole time.
//
// It follows the registry's RWMutex discipline (DESIGN.md §13): the maps are
// touched only under mu, probes take the read lock and never block each
// other, and the expensive work — sketching an instance — happens outside
// any lock (the caller builds the Sketch first, Add only links it in).
// Alongside the maps it keeps a sorted name slice, so the widened probe path
// iterates deterministically without ranging over a map.
type Dynamic struct {
	mu sync.RWMutex
	// sketches maps candidate name → sketch.
	sketches map[string]*Sketch
	// buckets is the inverted index: band bucket key → names, in insertion
	// order. Removal recomputes the sketch's band keys and filters exactly
	// those buckets, so churn cost is O(Bands · bucket size).
	buckets map[uint64][]string
	// names mirrors the sketches keys in sorted order for deterministic
	// widened scans.
	names []string
}

// NewDynamic returns an empty dynamic index.
func NewDynamic() *Dynamic {
	return &Dynamic{
		sketches: make(map[string]*Sketch),
		buckets:  make(map[uint64][]string),
	}
}

// Len returns the number of indexed candidates.
func (d *Dynamic) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.sketches)
}

// Contains reports whether the name is indexed.
func (d *Dynamic) Contains(name string) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	_, ok := d.sketches[name]
	return ok
}

// Add indexes a sketch under the name, replacing any previous sketch for it.
// Compute the sketch before calling: Add itself is O(Bands) under the write
// lock.
func (d *Dynamic) Add(name string, sk *Sketch) {
	keys := sk.BandKeys()
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.sketches[name]; dup {
		d.removeLocked(name)
	}
	d.sketches[name] = sk
	for _, key := range keys {
		d.buckets[key] = append(d.buckets[key], name)
	}
	i := sort.SearchStrings(d.names, name)
	d.names = append(d.names, "")
	copy(d.names[i+1:], d.names[i:])
	d.names[i] = name
}

// Remove unindexes the name and reports whether it was indexed.
func (d *Dynamic) Remove(name string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.sketches[name]; !ok {
		return false
	}
	d.removeLocked(name)
	return true
}

// removeLocked drops the name from the sketch map, its band buckets, and the
// sorted name slice. Caller holds the write lock.
func (d *Dynamic) removeLocked(name string) {
	sk := d.sketches[name]
	delete(d.sketches, name)
	for _, key := range sk.BandKeys() {
		bucket := d.buckets[key]
		kept := bucket[:0]
		for _, n := range bucket {
			if n != name {
				kept = append(kept, n)
			}
		}
		if len(kept) == 0 {
			delete(d.buckets, key)
		} else {
			d.buckets[key] = kept
		}
	}
	if i := sort.SearchStrings(d.names, name); i < len(d.names) && d.names[i] == name {
		d.names = append(d.names[:i], d.names[i+1:]...)
	}
}

// Shortlist implements Searcher over the live candidate set. The returned
// hits are a consistent snapshot: the read lock is held across the whole
// probe, so a concurrent Register/Delete orders entirely before or after it.
func (d *Dynamic) Shortlist(q *Sketch, target int) ([]Hit, ProbeStats) {
	keys := q.BandKeys()
	d.mu.RLock()
	defer d.mu.RUnlock()
	if target <= 0 || target > len(d.sketches) {
		target = len(d.sketches)
	}
	var st ProbeStats
	seen := make(map[string]bool, 2*target)
	cands := make([]string, 0, 2*target)
	for _, key := range keys {
		for _, name := range d.buckets[key] {
			if !seen[name] {
				seen[name] = true
				cands = append(cands, name)
			}
		}
	}
	st.Probed = len(cands)
	if len(cands) < target {
		st.Widened = true
		cands = d.names
	}
	hits := make([]Hit, 0, len(cands))
	for _, name := range cands {
		hits = append(hits, Hit{Name: name, Estimate: q.Estimate(d.sketches[name])})
	}
	sortHits(hits)
	if len(hits) > target {
		hits = hits[:target]
	}
	return hits, st
}

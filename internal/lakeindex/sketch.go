// Package lakeindex implements sub-linear candidate retrieval for lake
// ranking: a compact per-instance MinHash sketch over the engine's canonical
// sketch-feature stream (instcmp.Prepared.SketchFeatures), plus an inverted
// index from banded sketch buckets (LSH-style) to candidates. Ranking a
// query against a large lake becomes: estimate Jaccard overlap from sketches
// to build a small shortlist, then run the real signature comparison only on
// the shortlist — instead of comparing the query against every candidate.
//
// The index is persistable (a versioned binary file with a header checksum,
// see persist.go) so cold starts skip both re-parsing and re-sketching the
// lake, and a mutex-guarded Dynamic variant (dynamic.go) lives inside
// long-running registries where candidates churn.
//
// Guarantees are probabilistic by construction: a sketch estimates the
// Jaccard similarity of two feature sets with standard error
// ~sqrt(J(1-J)/K) (≈0.044 at K=128), and banding at 32 bands × 4 rows makes
// a candidate with J ≥ 0.5 share at least one band with probability
// ≥ 1-(1-0.5^4)^32 ≈ 0.87 — the shortlist machinery widens to estimating
// every sketch whenever banding alone returns fewer candidates than asked
// for, so low-similarity lakes degrade to an O(n·K) word scan, never to a
// wrong early cutoff.
package lakeindex

import "math"

// Sketch and banding geometry. These parameters are baked into persisted
// index files; changing any of them requires bumping FormatVersion (the file
// layout) or SeedVersion (the hash semantics) in persist.go so stale files
// are rejected instead of silently misread.
const (
	// K is the number of MinHash permutations per sketch.
	K = 128
	// Bands and BandRows split the K sketch components into Bands bands of
	// BandRows components each for the inverted index.
	Bands    = 32
	BandRows = K / Bands
	// SeedVersion versions the permutation seeds AND the upstream feature
	// hashing (model.ValueHash + signature.SketchFeatures). Bump it whenever
	// either changes, so old index files fail loudly.
	SeedVersion = 1
)

// emptySlot is the sketch component of a permutation that saw no features.
// Two empty instances sketch identically (estimate 1), matching the lake
// prefilter's convention that two empty constant sets have overlap 1.
const emptySlot = math.MaxUint64

// seeds holds the K permutation seeds, derived deterministically from
// SeedVersion by a splitmix64 stream.
var seeds = func() [K]uint64 {
	var s [K]uint64
	// golden-ratio increment of splitmix64; the multiply wraps (runtime
	// uint64 arithmetic), seeding a distinct stream per SeedVersion.
	gamma := uint64(0x9e3779b97f4a7c15)
	x := gamma * uint64(SeedVersion+1)
	for i := range s {
		x += 0x9e3779b97f4a7c15
		s[i] = mix64(x)
	}
	return s
}()

// mix64 is the splitmix64 finalizer: a cheap 64-bit permutation with good
// avalanche, applied per (feature, seed) pair.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Sketch is a K-permutation MinHash summary of one instance's feature set.
// It is immutable after NewSketch and safe to share across goroutines.
type Sketch struct {
	vals [K]uint64
}

// NewSketch folds a feature-hash stream (instcmp.Prepared.SketchFeatures)
// into a sketch. Order and duplicates in the stream do not affect the
// result: min() commutes and repeated features are idempotent.
func NewSketch(features []uint64) *Sketch {
	s := &Sketch{}
	for i := range s.vals {
		s.vals[i] = emptySlot
	}
	for _, f := range features {
		for i := range s.vals {
			if h := mix64(f ^ seeds[i]); h < s.vals[i] {
				s.vals[i] = h
			}
		}
	}
	return s
}

// Estimate returns the MinHash estimate of the Jaccard similarity between
// the two sketched feature sets: the fraction of agreeing components.
func (s *Sketch) Estimate(t *Sketch) float64 {
	eq := 0
	for i := range s.vals {
		if s.vals[i] == t.vals[i] {
			eq++
		}
	}
	return float64(eq) / K
}

// BandKeys returns the sketch's Bands bucket keys: band b hashes components
// [b*BandRows, (b+1)*BandRows) together with the band number, so equal rows
// in different bands land in different buckets.
func (s *Sketch) BandKeys() [Bands]uint64 {
	var keys [Bands]uint64
	for b := 0; b < Bands; b++ {
		h := uint64(14695981039346656037)
		h ^= uint64(b) + 1
		h *= 1099511628211
		for r := 0; r < BandRows; r++ {
			h ^= s.vals[b*BandRows+r]
			h *= 1099511628211
		}
		keys[b] = h
	}
	return keys
}

// Equal reports whether two sketches are component-wise identical (used by
// the serialization round-trip tests).
func (s *Sketch) Equal(t *Sketch) bool { return s.vals == t.vals }

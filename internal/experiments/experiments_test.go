package experiments

import (
	"testing"
	"time"
)

// Small-scale shape tests: each experiment must reproduce the paper's
// qualitative results at reduced size. Full-size runs live in
// cmd/experiments and the root benchmark harness.

var testCfg = Config{Seed: 42, ExactTimeout: 30 * time.Second}

func TestRunTable1(t *testing.T) {
	rows, err := RunTable1(testCfg, 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("table 1 rows = %d, want 6", len(rows))
	}
	attrs := map[string]int{"Doct": 5, "Bike": 9, "Git": 19, "Bus": 25, "Iris": 5, "Nba": 11}
	for _, r := range rows {
		if r.Rows != 300 {
			t.Errorf("%s rows = %d", r.Dataset, r.Rows)
		}
		if attrs[r.Dataset] != r.Attrs {
			t.Errorf("%s attrs = %d, want %d", r.Dataset, r.Attrs, attrs[r.Dataset])
		}
		if r.DistinctVal <= 0 {
			t.Errorf("%s distinct = %d", r.Dataset, r.DistinctVal)
		}
	}
}

func TestRunTable2Shape(t *testing.T) {
	cfg := testCfg
	cfg.ExactMaxRows = 0 // by-construction reference only, at test scale
	rows, err := RunTable2(cfg, []int{120})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 datasets x 1 size", len(rows))
	}
	for _, r := range rows {
		if !r.ByConstruction {
			t.Errorf("%s: expected by-construction reference", r.Dataset)
		}
		if r.SigScore <= 0 || r.SigScore >= 1 {
			t.Errorf("%s: sig score %v out of expected band", r.Dataset, r.SigScore)
		}
		// The paper's headline: score difference below 1%.
		if r.Diff > 0.01 {
			t.Errorf("%s: diff %v > 0.01", r.Dataset, r.Diff)
		}
		if r.Source.Nulls == 0 || r.Target.Nulls == 0 {
			t.Errorf("%s: modCell should inject nulls: %+v", r.Dataset, r)
		}
	}
}

func TestRunTable2WithExact(t *testing.T) {
	cfg := testCfg
	cfg.ExactMaxRows = 60
	cfg.ExactMaxNodes = 5_000_000
	rows, err := RunTable2(cfg, []int{50})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.ByConstruction && r.ExExhaustive {
			t.Errorf("%s: exhaustive exact should not be overridden", r.Dataset)
		}
		if r.ExScore < r.SigScore-1e-9 {
			t.Errorf("%s: reference %v below signature %v", r.Dataset, r.ExScore, r.SigScore)
		}
		if r.ExTime <= 0 {
			t.Errorf("%s: exact time not recorded", r.Dataset)
		}
	}
}

func TestRunTable3Shape(t *testing.T) {
	cfg := testCfg
	rows, err := RunTable3(cfg, []int{120})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// addRandomAndRedundant adds ~20% tuples.
		if r.Source.Tuples <= 120 {
			t.Errorf("%s: source tuples = %d, want > 120", r.Dataset, r.Source.Tuples)
		}
		if r.Diff > 0.02 {
			t.Errorf("%s: diff %v > 0.02", r.Dataset, r.Diff)
		}
	}
}

func TestRunFigure8Shape(t *testing.T) {
	pts, err := RunFigure8(testCfg, 150, []float64{0.05, 0.25, 0.50})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 9 {
		t.Fatalf("points = %d, want 3 datasets x 3 percentages", len(pts))
	}
	for _, p := range pts {
		// Figure 8's y-axis tops out below 0.008 at 1k rows; allow a
		// wider band at this tiny scale.
		if p.Diff > 0.05 {
			t.Errorf("%s at %.0f%%: diff %v too large", p.Dataset, p.CellPct*100, p.Diff)
		}
	}
}

func TestRunTable4Shape(t *testing.T) {
	rows, err := RunTable4(testCfg, 200)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Table 4: the signature-based step discovers the vast
		// majority of matches (>= 98% in the paper).
		if r.PctSig < 90 {
			t.Errorf("%s: signature step found only %.1f%%", r.Dataset, r.PctSig)
		}
		if r.PctSig+r.PctExact < 99.9 || r.PctSig+r.PctExact > 100.1 {
			t.Errorf("%s: percentages do not sum to 100: %v + %v", r.Dataset, r.PctSig, r.PctExact)
		}
		if r.ScoreFinal < r.ScoreSig-1e-9 {
			t.Errorf("%s: completion step lowered the score %v -> %v", r.Dataset, r.ScoreSig, r.ScoreFinal)
		}
	}
}

func TestRunTable5Shape(t *testing.T) {
	rows, err := RunTable5(testCfg, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 systems", len(rows))
	}
	f1 := map[string]float64{}
	sig := map[string]float64{}
	for _, r := range rows {
		f1[r.System], sig[r.System] = r.F1, r.SigScore
		if r.F1Inst < 0.97 {
			t.Errorf("%s: F1Inst = %v, want ~1", r.System, r.F1Inst)
		}
		if r.SigScore < 0.9 {
			t.Errorf("%s: sig score = %v, want >= 0.9 (Table 5 band)", r.System, r.SigScore)
		}
	}
	// The table's story: F1 penalizes nulls hard; Sig preserves the
	// ranking while staying high.
	if !(f1["Llunatic"] > f1["Sampling"]) {
		t.Errorf("F1 ranking broken: %v", f1)
	}
	if !(sig["Llunatic"] >= sig["Sampling"]) {
		t.Errorf("Sig ranking broken: %v", sig)
	}
}

func TestRunTable6Shape(t *testing.T) {
	rows, err := RunTable6(testCfg, []int{150})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 scenarios", len(rows))
	}
	byName := map[string]Table6Row{}
	for _, r := range rows {
		byName[r.Scenario] = r
	}
	w, u1, u2 := byName["Doct-W"], byName["Doct-U1"], byName["Doct-U2"]
	if w.SigScore > 0.05 {
		t.Errorf("wrong mapping sig = %v, want ~0", w.SigScore)
	}
	if w.RowScore < 0.9 {
		t.Errorf("wrong mapping row score = %v, want ~1 (the blind spot)", w.RowScore)
	}
	if w.MissingRows != w.Gold.Tuples {
		t.Errorf("wrong mapping should miss all %d gold rows, got %d", w.Gold.Tuples, w.MissingRows)
	}
	if w.SolutionUniversal {
		t.Error("wrong solution must not be universal")
	}
	for _, r := range []Table6Row{u1, u2} {
		if r.MissingRows != 0 {
			t.Errorf("%s: missing rows = %d, want 0", r.Scenario, r.MissingRows)
		}
		if !r.SolutionUniversal {
			t.Errorf("%s: solution should be universal", r.Scenario)
		}
		if r.SigScore < 0.7 {
			t.Errorf("%s: sig = %v, want high", r.Scenario, r.SigScore)
		}
	}
	if !(u2.SigScore >= u1.SigScore) {
		t.Errorf("U2 (%v) should score >= U1 (%v)", u2.SigScore, u1.SigScore)
	}
	if !(u1.RowScore < u2.RowScore) {
		t.Errorf("row scores should order U1 (%v) < U2 (%v)", u1.RowScore, u2.RowScore)
	}
}

func TestRunTable7Shape(t *testing.T) {
	rows, err := RunTable7(testCfg, 120)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 2 datasets x 4 variants", len(rows))
	}
	for _, r := range rows {
		switch r.Variant {
		case "S":
			if r.Sig.Matched != r.TO || r.Sig.LeftNonMatch != 0 {
				t.Errorf("%s-S: sig %+v, want all matched", r.Dataset, r.Sig)
			}
			if r.Diff.Matched >= r.TO/2 {
				t.Errorf("%s-S: diff matched %d of %d; should collapse", r.Dataset, r.Diff.Matched, r.TO)
			}
		case "R":
			if r.Sig.Matched != r.TM || r.Sig.LeftNonMatch != r.TO-r.TM {
				t.Errorf("%s-R: sig %+v", r.Dataset, r.Sig)
			}
			if r.Diff.Matched != r.TM {
				t.Errorf("%s-R: diff should match all survivors, got %+v", r.Dataset, r.Diff)
			}
		case "RS":
			if r.Sig.Matched != r.TM {
				t.Errorf("%s-RS: sig %+v", r.Dataset, r.Sig)
			}
			if r.Diff.Matched >= r.TM/2 {
				t.Errorf("%s-RS: diff matched %d; should collapse", r.Dataset, r.Diff.Matched)
			}
		case "C":
			if r.Sig.Matched != r.TO {
				t.Errorf("%s-C: sig %+v, want all matched via null padding", r.Dataset, r.Sig)
			}
			if r.Diff.Matched != 0 {
				t.Errorf("%s-C: diff matched %d, want 0", r.Dataset, r.Diff.Matched)
			}
		}
	}
}

func TestRunAblationNullAttrs(t *testing.T) {
	pts, err := RunAblationNullAttrs(testCfg, 150)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 9 {
		t.Fatalf("points = %d, want one per Bike attribute", len(pts))
	}
	for _, p := range pts {
		if p.Diff > 0.05 {
			t.Errorf("k=%d: diff %v too large", p.NullAttrs, p.Diff)
		}
		if p.SigTime <= 0 {
			t.Errorf("k=%d: time not recorded", p.NullAttrs)
		}
	}
}

package experiments

import (
	"testing"
	"time"
)

func TestConfigDefaults(t *testing.T) {
	var cfg Config
	if got := cfg.lambda(); got != 0.5 {
		t.Errorf("default λ = %v, want 0.5", got)
	}
	cfg.Lambda = 0.3
	if got := cfg.lambda(); got != 0.3 {
		t.Errorf("λ override = %v", got)
	}
	opts := cfg.exactOpts()
	if opts.Timeout != 5*time.Minute {
		t.Errorf("default exact timeout = %v", opts.Timeout)
	}
	cfg.ExactTimeout = time.Second
	cfg.ExactMaxNodes = 7
	opts = cfg.exactOpts()
	if opts.Timeout != time.Second || opts.MaxNodes != 7 || opts.Lambda != 0.3 {
		t.Errorf("exact opts = %+v", opts)
	}
}

func TestSideStats(t *testing.T) {
	rows, err := RunTable1(Config{Seed: 1}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
}

// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. 7). Each RunTableN/RunFigureN function returns typed rows
// that cmd/experiments renders in the paper's layout and that the benchmark
// harness asserts shape properties on. Absolute timings depend on the
// machine; the shape — who wins, by what order of magnitude, where the
// scores land — is what reproduction targets (see EXPERIMENTS.md).
package experiments

import (
	"time"

	"instcmp/internal/datasets"
	"instcmp/internal/exact"
	"instcmp/internal/generator"
	"instcmp/internal/match"
	"instcmp/internal/model"
	"instcmp/internal/score"
	"instcmp/internal/signature"
)

// Config controls experiment scale and budgets.
type Config struct {
	// Seed drives every generator; equal seeds reproduce runs exactly.
	Seed int64
	// Lambda is the null-to-constant penalty (0 means score.DefaultLambda).
	Lambda float64
	// ExactMaxRows runs the exact algorithm only on configurations whose
	// per-side row count is at most this; larger configurations report
	// the score by construction instead, exactly like the paper's
	// 8-hour-timeout entries (marked with *).
	ExactMaxRows int
	// ExactTimeout bounds each exact run (0 = a generous default).
	ExactTimeout time.Duration
	// ExactMaxNodes bounds each exact run's search nodes (0 = unbounded).
	ExactMaxNodes int64
	// ExactWorkers is the exact search's worker count (0 = GOMAXPROCS).
	ExactWorkers int
	// ExactNoWarmStart disables the exact search's signature warm start
	// (ablation; never changes scores, only wall-clock time).
	ExactNoWarmStart bool
	// SigWorkers is the signature pipeline's worker count inside each
	// comparison (0 = GOMAXPROCS, 1 = sequential). Scores are
	// bit-identical for every value; only wall-clock time changes.
	SigWorkers int
}

func (c Config) lambda() float64 {
	if c.Lambda == 0 {
		return score.DefaultLambda
	}
	return c.Lambda
}

// sigOpts bundles the signature-algorithm options every experiment uses.
func (c Config) sigOpts() signature.Options {
	return signature.Options{Lambda: c.lambda(), Workers: c.SigWorkers}
}

func (c Config) exactOpts() exact.Options {
	to := c.ExactTimeout
	if to == 0 {
		to = 5 * time.Minute
	}
	return exact.Options{
		Lambda:      c.lambda(),
		Timeout:     to,
		MaxNodes:    c.ExactMaxNodes,
		Workers:     c.ExactWorkers,
		NoWarmStart: c.ExactNoWarmStart,
	}
}

// Table1Row is one line of Table 1: dataset statistics.
type Table1Row struct {
	Dataset     string
	Rows        int
	DistinctVal int
	Attrs       int
}

// RunTable1 regenerates Table 1 (statistics of the original datasets).
// rows scales every dataset; 0 uses the paper's sizes.
func RunTable1(cfg Config, rows int) ([]Table1Row, error) {
	var out []Table1Row
	for _, name := range datasets.All {
		in, err := datasets.Generate(name, rows, cfg.Seed)
		if err != nil {
			return nil, err
		}
		st := in.Stats()
		out = append(out, Table1Row{
			Dataset:     string(name),
			Rows:        st.Tuples,
			DistinctVal: st.DistinctVals,
			Attrs:       st.MaxArity,
		})
	}
	return out, nil
}

// SideStats summarizes one side of a comparison scenario the way Tables 2
// and 3 report them (#T, #C, #V).
type SideStats struct {
	Tuples, Consts, Nulls int
}

func sideStats(in *model.Instance) SideStats {
	st := in.Stats()
	return SideStats{Tuples: st.Tuples, Consts: st.ConstCells, Nulls: st.NullCells}
}

// ScoreRow is one line of Table 2 or Table 3: exact-vs-signature scores and
// timings for one dataset at one size.
type ScoreRow struct {
	Dataset        string
	Rows           int
	Source, Target SideStats
	// ExScore is the reference score: the exact algorithm's when it ran,
	// otherwise the score by construction (ByConstruction true, the
	// paper's * rows).
	ExScore        float64
	ByConstruction bool
	// ExExhaustive reports whether the exact run explored its full
	// search space within its budget.
	ExExhaustive bool
	SigScore     float64
	Diff         float64
	SigTime      time.Duration
	ExTime       time.Duration
}

// scoreRow runs one Table 2/3 configuration.
func scoreRow(cfg Config, name datasets.Name, rows int, noise generator.Noise, mode match.Mode) (ScoreRow, error) {
	base, err := datasets.Generate(name, rows, cfg.Seed)
	if err != nil {
		return ScoreRow{}, err
	}
	noise.Seed = cfg.Seed + int64(rows)
	sc := generator.Make(base, noise)

	row := ScoreRow{
		Dataset: string(name),
		Rows:    rows,
		Source:  sideStats(sc.Source),
		Target:  sideStats(sc.Target),
	}

	start := time.Now()
	sig, err := signature.Run(sc.Source, sc.Target, mode, cfg.sigOpts())
	if err != nil {
		return ScoreRow{}, err
	}
	row.SigTime = time.Since(start)
	row.SigScore = sig.Score

	if cfg.ExactMaxRows > 0 && rows <= cfg.ExactMaxRows {
		start = time.Now()
		ex, err := exact.Run(sc.Source, sc.Target, mode, cfg.exactOpts())
		if err != nil {
			return ScoreRow{}, err
		}
		row.ExTime = time.Since(start)
		row.ExScore = ex.Score
		row.ExExhaustive = ex.Exhaustive
		// A budget-capped exact run can trail the constructed
		// reference; report the best lower bound we hold. An
		// exhaustive run IS the optimum and is never overridden.
		if !ex.Exhaustive {
			if ref, err := sc.BestKnownScore(cfg.lambda(), mode); err == nil && ref > row.ExScore {
				row.ExScore = ref
				row.ByConstruction = true
			}
		}
	} else {
		ref, err := sc.BestKnownScore(cfg.lambda(), mode)
		if err != nil {
			return ScoreRow{}, err
		}
		row.ExScore = ref
		row.ByConstruction = true
	}
	row.Diff = row.ExScore - row.SigScore
	if row.Diff < 0 {
		row.Diff = -row.Diff
	}
	return row, nil
}

// Table2Noise is the paper's Table 2 workload: modCell with C%=5.
var Table2Noise = generator.Noise{CellPct: 0.05, NullReuse: 0.3}

// RunTable2 regenerates Table 2: Exact vs Signature under modCell 5% noise
// with functional and injective (1-to-1) mappings, for the Doct, Bike, and
// Git datasets at the given sizes.
func RunTable2(cfg Config, sizes []int) ([]ScoreRow, error) {
	return runScoreTable(cfg, sizes, Table2Noise, match.OneToOne)
}

// Table3Noise is the paper's Table 3 workload: modCell 5% plus 10% random
// and 10% redundant tuples.
var Table3Noise = generator.Noise{CellPct: 0.05, NullReuse: 0.3, RandomPct: 0.10, RedundantPct: 0.10}

// RunTable3 regenerates Table 3: Exact vs Signature under
// addRandomAndRedundant noise with non-functional, non-injective (n-to-m)
// mappings.
func RunTable3(cfg Config, sizes []int) ([]ScoreRow, error) {
	return runScoreTable(cfg, sizes, Table3Noise, match.ManyToMany)
}

func runScoreTable(cfg Config, sizes []int, noise generator.Noise, mode match.Mode) ([]ScoreRow, error) {
	var out []ScoreRow
	for _, name := range []datasets.Name{datasets.Doct, datasets.Bike, datasets.Git} {
		for _, rows := range sizes {
			row, err := scoreRow(cfg, name, rows, noise, mode)
			if err != nil {
				return nil, err
			}
			out = append(out, row)
		}
	}
	return out, nil
}

// Fig8Point is one point of Figure 8: signature score difference versus the
// fraction of changed cells.
type Fig8Point struct {
	Dataset string
	CellPct float64
	Diff    float64
}

// RunFigure8 regenerates Figure 8: the impact of C% on the signature
// algorithm's score difference, on 1k-row instances (rows parameter; 0
// means the paper's 1000).
func RunFigure8(cfg Config, rows int, pcts []float64) ([]Fig8Point, error) {
	if rows == 0 {
		rows = 1000
	}
	if len(pcts) == 0 {
		pcts = []float64{0.01, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50}
	}
	var out []Fig8Point
	for _, name := range []datasets.Name{datasets.Bike, datasets.Doct, datasets.Git} {
		base, err := datasets.Generate(name, rows, cfg.Seed)
		if err != nil {
			return nil, err
		}
		for _, pct := range pcts {
			noise := generator.Noise{CellPct: pct, NullReuse: 0.3, Seed: cfg.Seed + int64(pct*1000)}
			sc := generator.Make(base, noise)
			gold, err := sc.BestKnownScore(cfg.lambda(), match.OneToOne)
			if err != nil {
				return nil, err
			}
			sig, err := signature.Run(sc.Source, sc.Target, match.OneToOne, cfg.sigOpts())
			if err != nil {
				return nil, err
			}
			d := gold - sig.Score
			if d < 0 {
				d = -d
			}
			out = append(out, Fig8Point{Dataset: string(name), CellPct: pct, Diff: d})
		}
	}
	return out, nil
}

// Table4Row is one line of Table 4: the signature algorithm's ablation —
// how many matches each phase discovers and the score after each phase.
type Table4Row struct {
	Dataset    string
	PctSig     float64 // % of matches from the signature-based step
	PctExact   float64 // % of matches from the completion step
	ScoreSig   float64 // score using only signature-based matches
	ScoreFinal float64
}

// RunTable4 regenerates Table 4 on 1k-row addRandomAndRedundant scenarios.
func RunTable4(cfg Config, rows int) ([]Table4Row, error) {
	if rows == 0 {
		rows = 1000
	}
	var out []Table4Row
	for _, name := range []datasets.Name{datasets.Doct, datasets.Bike, datasets.Git} {
		base, err := datasets.Generate(name, rows, cfg.Seed)
		if err != nil {
			return nil, err
		}
		noise := Table3Noise
		noise.Seed = cfg.Seed
		sc := generator.Make(base, noise)
		sig, err := signature.Run(sc.Source, sc.Target, match.ManyToMany, cfg.sigOpts())
		if err != nil {
			return nil, err
		}
		total := sig.Stats.SigMatches + sig.Stats.CompatMatches
		row := Table4Row{
			Dataset:    string(name),
			ScoreSig:   sig.Stats.ScoreAfterSig,
			ScoreFinal: sig.Score,
		}
		if total > 0 {
			row.PctSig = 100 * float64(sig.Stats.SigMatches) / float64(total)
			row.PctExact = 100 * float64(sig.Stats.CompatMatches) / float64(total)
		}
		out = append(out, row)
	}
	return out, nil
}

package experiments

import (
	"time"

	"instcmp"
	"instcmp/internal/cleaning"
	"instcmp/internal/datasets"
	"instcmp/internal/exchange"
	"instcmp/internal/generator"
	"instcmp/internal/match"
	"instcmp/internal/signature"
	"instcmp/internal/versioning"
)

// Table5Row is one line of Table 5: a cleaning system's quality under the
// three metrics.
type Table5Row struct {
	Dataset  string
	System   string
	F1       float64
	F1Inst   float64
	SigScore float64
}

// RunTable5 regenerates Table 5: clean Bus data, inject 5% FD errors, run
// the four repair strategies, and evaluate each repair against the gold
// with F1, F1-Instance, and the signature score. rows 0 means the paper's
// 20000.
func RunTable5(cfg Config, rows int) ([]Table5Row, error) {
	if rows == 0 {
		rows = datasets.DefaultRows[datasets.Bus]
	}
	clean, err := datasets.Generate(datasets.Bus, rows, cfg.Seed)
	if err != nil {
		return nil, err
	}
	var fds []cleaning.FD
	for _, fd := range datasets.BusFDs() {
		fds = append(fds, cleaning.FD{Relation: "Bus", Lhs: fd[0], Rhs: fd[1]})
	}
	dirty, errs := cleaning.InjectErrors(clean, fds, 0.05, cfg.Seed+1)

	var out []Table5Row
	for _, sys := range cleaning.Systems {
		repaired, err := cleaning.Repair(dirty, fds, sys, cfg.Seed+2)
		if err != nil {
			return nil, err
		}
		m := cleaning.Evaluate(clean, dirty, repaired, errs)
		// Repair-vs-gold comparison uses complete fully-injective
		// matches (Sec. 4.3, "Constraint-based Data Repair"). The
		// public Compare normalizes the shared null/tuple namespaces.
		res, err := instcmp.Compare(repaired, clean, &instcmp.Options{
			Mode:      instcmp.OneToOne,
			Algorithm: instcmp.AlgoSignature,
			Lambda:    cfg.lambda(),
		})
		if err != nil {
			return nil, err
		}
		out = append(out, Table5Row{
			Dataset:  "Bus",
			System:   string(sys),
			F1:       m.F1,
			F1Inst:   m.F1Inst,
			SigScore: res.Score,
		})
	}
	return out, nil
}

// Table6Row is one line of Table 6: a data-exchange solution compared
// against the gold core solution.
type Table6Row struct {
	Scenario          string
	Solution, Gold    SideStats
	MissingRows       int
	RowScore          float64
	SigScore          float64
	SolutionUniversal bool // hom(solution -> gold core) exists
	Elapsed           time.Duration
}

// RunTable6 regenerates Table 6 for the Doctors exchange scenario at the
// given source sizes (0 sizes means [1000, 2000] — scaled-down versions of
// the paper's 5627/21981-row instances; pass larger sizes to approach them).
func RunTable6(cfg Config, sizes []int) ([]Table6Row, error) {
	if len(sizes) == 0 {
		sizes = []int{1000, 2000}
	}
	var out []Table6Row
	for _, rows := range sizes {
		ex := exchange.NewDoctorsExchange(rows, cfg.Seed)
		gold, err := exchange.CoreSolution(ex.Source, ex.TargetSchema, ex.Gold)
		if err != nil {
			return nil, err
		}
		goldR := gold.RenameNulls("g·")
		cases := []struct {
			name string
			m    exchange.Mapping
		}{
			{"Doct-W", ex.Wrong},
			{"Doct-U1", ex.U1},
			{"Doct-U2", ex.U2},
		}
		for _, c := range cases {
			sol, err := exchange.Chase(ex.Source, ex.TargetSchema, c.m)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			sig, err := signature.Run(sol, goldR, match.Functional, cfg.sigOpts())
			if err != nil {
				return nil, err
			}
			out = append(out, Table6Row{
				Scenario:          c.name,
				Solution:          sideStats(sol),
				Gold:              sideStats(gold),
				MissingRows:       exchange.MissingRows(sol, gold),
				RowScore:          exchange.RowScore(sol, gold),
				SigScore:          sig.Score,
				SolutionUniversal: instcmp.HasHomomorphism(sol, goldR),
				Elapsed:           time.Since(start),
			})
		}
	}
	return out, nil
}

// Table7Row is one line of Table 7: diff vs signature on one versioning
// variant.
type Table7Row struct {
	Dataset   string
	Variant   string
	TO, TM    int // original / modified tuple counts
	Diff, Sig versioning.DiffStats
}

// RunTable7 regenerates Table 7: the Iris and NBA datasets, their
// S/R/RS/C variants, and the matched / left / right non-matching tuple
// counts for the diff baseline and the signature algorithm. rows scales the
// datasets (0 = paper sizes: Iris 120, NBA 9360).
func RunTable7(cfg Config, rows int) ([]Table7Row, error) {
	// Removal fractions implied by the paper's Table 7 row counts:
	// Iris 120 -> 99 (17.5%), NBA 9360 -> 9043 (3.39%).
	removeFrac := map[datasets.Name]float64{
		datasets.Iris: 0.175,
		datasets.Nba:  0.0339,
	}
	var out []Table7Row
	for _, name := range []datasets.Name{datasets.Iris, datasets.Nba} {
		base, err := datasets.Generate(name, rows, cfg.Seed)
		if err != nil {
			return nil, err
		}
		for _, variant := range versioning.Variants {
			mod, err := versioning.MakeVariant(base, variant, removeFrac[name], cfg.Seed+7)
			if err != nil {
				return nil, err
			}
			res, err := instcmp.Compare(base, mod, &instcmp.Options{
				Mode:         instcmp.OneToOne,
				Algorithm:    instcmp.AlgoSignature,
				Lambda:       cfg.lambda(),
				AlignSchemas: true,
			})
			if err != nil {
				return nil, err
			}
			out = append(out, Table7Row{
				Dataset: string(name),
				Variant: string(variant),
				TO:      base.NumTuples(),
				TM:      mod.NumTuples(),
				Diff:    versioning.LineDiff(base, mod),
				Sig: versioning.DiffStats{
					Matched:       len(res.Pairs),
					LeftNonMatch:  len(res.LeftUnmatched),
					RightNonMatch: len(res.RightUnmatched),
				},
			})
		}
	}
	return out, nil
}

// NullAttrsPoint is one point of the null-attribute ablation (the tech-
// report companion of Sec. 7.1): signature runtime and score difference as
// the noise concentrates in more attributes.
type NullAttrsPoint struct {
	Dataset   string
	NullAttrs int
	Diff      float64
	SigTime   time.Duration
}

// RunAblationNullAttrs measures how the number of null-bearing attributes
// affects the signature algorithm: the same cell budget (5% of all cells)
// is spread over 1..k attributes of the Bike dataset.
func RunAblationNullAttrs(cfg Config, rows int) ([]NullAttrsPoint, error) {
	if rows == 0 {
		rows = 1000
	}
	base, err := datasets.Generate(datasets.Bike, rows, cfg.Seed)
	if err != nil {
		return nil, err
	}
	arity := base.Relations()[0].Arity()
	var out []NullAttrsPoint
	for k := 1; k <= arity; k++ {
		// Spread the same overall cell budget (5% of all cells) over
		// the first k attributes.
		pct := 0.05 * float64(arity) / float64(k)
		if pct > 1 {
			pct = 1
		}
		cols := make([]int, k)
		for i := range cols {
			cols[i] = i
		}
		sc := generator.Make(base, generator.Noise{
			CellPct:   pct,
			NullShare: 1.0, // this ablation is about null placement
			Columns:   cols,
			Seed:      cfg.Seed + int64(k),
		})
		gold, err := sc.GoldScore(cfg.lambda())
		if err != nil {
			return nil, err
		}
		start := time.Now()
		sig, err := signature.Run(sc.Source, sc.Target, match.OneToOne, cfg.sigOpts())
		if err != nil {
			return nil, err
		}
		d := gold - sig.Score
		if d < 0 {
			d = -d
		}
		out = append(out, NullAttrsPoint{
			Dataset:   string(datasets.Bike),
			NullAttrs: k,
			Diff:      d,
			SigTime:   time.Since(start),
		})
	}
	return out, nil
}

package lake

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"instcmp"
	"instcmp/internal/datasets"
	"instcmp/internal/generator"
	"instcmp/internal/versioning"
)

// generatedLake builds a prepared example plus n prepared candidates cycling
// through five scenario shapes: shuffled clones, near/mid/far noise variants
// (modCell and addRandomAndRedundant), and unrelated datasets. Instances are
// kept tiny (24 rows) so 1k-candidate lakes stay cheap to prepare and rank.
func generatedLake(tb testing.TB, n int, seed int64) (*instcmp.Prepared, []PreparedCandidate) {
	tb.Helper()
	base := datasets.IrisData(24, rand.New(rand.NewSource(seed)))
	example, err := instcmp.Prepare(base)
	if err != nil {
		tb.Fatal(err)
	}
	lake := make([]PreparedCandidate, 0, n)
	for i := 0; i < n; i++ {
		var (
			inst  *instcmp.Instance
			shape string
		)
		switch i % 5 {
		case 0:
			shape = "clone"
			inst, err = versioning.MakeVariant(base, versioning.Shuffled, 0, int64(i))
			if err != nil {
				tb.Fatal(err)
			}
		case 1:
			shape = "near"
			inst = generator.Make(base, generator.Noise{CellPct: 0.03, Seed: int64(i)}).Target
		case 2:
			shape = "mid"
			inst = generator.Make(base, generator.Noise{CellPct: 0.15, Seed: int64(i)}).Target
		case 3:
			shape = "far"
			inst = generator.Make(base, generator.Noise{
				CellPct: 0.35, RandomPct: 0.3, RedundantPct: 0.2, Seed: int64(i),
			}).Target
		case 4:
			shape = "unrelated"
			inst = datasets.NbaData(24, rand.New(rand.NewSource(seed+int64(i))))
		}
		p, err := instcmp.Prepare(inst)
		if err != nil {
			tb.Fatal(err)
		}
		lake = append(lake, PreparedCandidate{
			Name:     fmt.Sprintf("c%04d-%s", i, shape),
			Prepared: p,
		})
	}
	return example, lake
}

// topNames returns the first k result names.
func topNames(res []Result, k int) []string {
	if k > len(res) {
		k = len(res)
	}
	names := make([]string, k)
	for i := range names {
		names[i] = res[i].Name
	}
	return names
}

// TestIndexedRecallMatchesOracle is the satellite-3 property: on generated
// lakes of every shape mix and size, the indexed ranking's top-10 is
// IDENTICAL (names and scores) to the full-scan oracle's at default options —
// recall 1.0, not "mostly right".
func TestIndexedRecallMatchesOracle(t *testing.T) {
	sizes := []int{50, 200, 1000}
	if testing.Short() {
		sizes = []int{50, 200}
	}
	opt := Options{Workers: runtime.GOMAXPROCS(0)}
	for _, n := range sizes {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			example, lake := generatedLake(t, n, int64(n))
			ix, err := BuildIndex(lake)
			if err != nil {
				t.Fatal(err)
			}
			oracle, err := RankPreparedContext(context.Background(), example, lake, opt)
			if err != nil {
				t.Fatal(err)
			}
			indexed, st, err := RankIndexedContext(context.Background(), example, lake, ix, opt)
			if err != nil {
				t.Fatal(err)
			}
			if len(indexed) != n || len(oracle) != n {
				t.Fatalf("result sizes: indexed %d, oracle %d, want %d", len(indexed), len(oracle), n)
			}
			// A lake no larger than the shortlist must degrade to a full scan.
			if wantFull := n <= max(4*DefaultTopK, DefaultMinShortlist); st.FullScan != wantFull {
				t.Errorf("FullScan = %v, want %v (n=%d)", st.FullScan, wantFull, n)
			}
			for i := 0; i < DefaultTopK; i++ {
				a, b := indexed[i], oracle[i]
				a.Stats, b.Stats = nil, nil
				if a != b {
					t.Errorf("top-%d differs: indexed %+v vs oracle %+v (probed=%d widened=%v shortlist=%d)",
						i, a, b, st.Probed, st.Widened, st.ShortlistSize)
				}
			}
		})
	}
}

// TestRankTieBreakDeterministic is the satellite-1 regression: candidates
// with bit-identical scores (clones of the same base registered under
// different names) must come out in name order on every path — sequential,
// parallel, and indexed — instead of in input order.
func TestRankTieBreakDeterministic(t *testing.T) {
	base := datasets.IrisData(30, rand.New(rand.NewSource(7)))
	example, err := instcmp.Prepare(base)
	if err != nil {
		t.Fatal(err)
	}
	// Clones deliberately appear in non-alphabetical input order.
	var lake []PreparedCandidate
	for i, name := range []string{"z-clone", "a-clone", "m-clone"} {
		inst, err := versioning.MakeVariant(base, versioning.Shuffled, 0, int64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		p, err := instcmp.Prepare(inst)
		if err != nil {
			t.Fatal(err)
		}
		lake = append(lake, PreparedCandidate{Name: name, Prepared: p})
	}
	for i := 0; i < 5; i++ {
		inst := generator.Make(base, generator.Noise{CellPct: 0.1 + 0.1*float64(i), Seed: int64(i)}).Target
		p, err := instcmp.Prepare(inst)
		if err != nil {
			t.Fatal(err)
		}
		lake = append(lake, PreparedCandidate{Name: fmt.Sprintf("noise-%d", i), Prepared: p})
	}

	want := []string{"a-clone", "m-clone", "z-clone"}
	check := func(path string, res []Result) {
		t.Helper()
		got := topNames(res, 3)
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s: top-3 = %v, want ties in name order %v", path, got, want)
				return
			}
		}
	}

	seq, err := RankPreparedContext(context.Background(), example, lake, Options{})
	if err != nil {
		t.Fatal(err)
	}
	check("sequential", seq)

	par, err := RankPreparedContext(context.Background(), example, lake, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	check("parallel", par)
	for i := range seq {
		a, b := seq[i], par[i]
		a.Stats, b.Stats = nil, nil
		if a != b {
			t.Errorf("parallel rank %d differs from sequential: %+v vs %+v", i, b, a)
		}
	}

	// TopK=1, MinShortlist=2 → shortlist of 4 over 8 candidates: the indexed
	// path genuinely reorders its input and must still agree at the top.
	ix, err := BuildIndex(lake)
	if err != nil {
		t.Fatal(err)
	}
	indexed, st, err := RankIndexedContext(context.Background(), example, lake, ix, Options{TopK: 1, MinShortlist: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.FullScan {
		t.Fatal("indexed path unexpectedly fell back to a full scan")
	}
	check("indexed", indexed)
}

func TestIndexedFallsBackToFullScan(t *testing.T) {
	example, lake := generatedLake(t, 20, 3)
	oracle, err := RankPreparedContext(context.Background(), example, lake, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildIndex(lake)
	if err != nil {
		t.Fatal(err)
	}
	// nil index: transparent full scan.
	res, st, err := RankIndexedContext(context.Background(), example, lake, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !st.FullScan || st.ShortlistSize != len(lake) {
		t.Errorf("nil index: stats %+v, want full scan over %d", st, len(lake))
	}
	compareResults(t, "nil index", res, oracle)

	// Lake smaller than the shortlist: the index is ignored.
	res, st, err = RankIndexedContext(context.Background(), example, lake, ix, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !st.FullScan {
		t.Errorf("small lake: stats %+v, want full scan", st)
	}
	compareResults(t, "small lake", res, oracle)
}

func compareResults(t *testing.T, path string, got, want []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", path, len(got), len(want))
	}
	for i := range want {
		a, b := got[i], want[i]
		a.Stats, b.Stats = nil, nil
		if a != b {
			t.Errorf("%s: rank %d = %+v, want %+v", path, i, a, b)
		}
	}
}

// TestIndexedForceShortlistsUnindexed pins the staleness rule: a candidate
// the index has never seen is compared unconditionally, so registering a new
// dataset before rebuilding the index costs comparisons, never recall.
func TestIndexedForceShortlistsUnindexed(t *testing.T) {
	example, lake := generatedLake(t, 200, 9)
	// Index everything except the candidates the oracle ranks highest.
	oracle, err := RankPreparedContext(context.Background(), example, lake, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	missing := map[string]bool{oracle[0].Name: true, oracle[1].Name: true}
	var partial []PreparedCandidate
	for _, c := range lake {
		if !missing[c.Name] {
			partial = append(partial, c)
		}
	}
	ix, err := BuildIndex(partial)
	if err != nil {
		t.Fatal(err)
	}
	indexed, st, err := RankIndexedContext(context.Background(), example, lake, ix, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st.Unindexed != 2 {
		t.Errorf("Unindexed = %d, want 2", st.Unindexed)
	}
	for i := 0; i < DefaultTopK; i++ {
		a, b := indexed[i], oracle[i]
		a.Stats, b.Stats = nil, nil
		if a != b {
			t.Errorf("top-%d with stale index = %+v, want %+v", i, a, b)
		}
	}
}

func TestIndexedNilExample(t *testing.T) {
	_, lake := generatedLake(t, 100, 5)
	ix, err := BuildIndex(lake)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := RankIndexedContext(context.Background(), nil, lake, ix, Options{}); err == nil {
		t.Error("nil example accepted")
	}
}

// BenchmarkLake1k is the PR's headline number (BENCH_PR7.json): ranking a
// 1000-candidate lake by full scan versus through the sketch index. The
// indexed run also reports its top-10 recall against the full-scan oracle as
// a custom metric, pinning that the speedup is not paid for with accuracy.
func BenchmarkLake1k(b *testing.B) {
	example, lake := generatedLake(b, 1000, 1000)
	ix, err := BuildIndex(lake)
	if err != nil {
		b.Fatal(err)
	}
	opt := Options{Workers: runtime.GOMAXPROCS(0)}
	oracle, err := RankPreparedContext(context.Background(), example, lake, opt)
	if err != nil {
		b.Fatal(err)
	}
	oracleTop := topNames(oracle, DefaultTopK)

	b.Run("fullscan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := RankPreparedContext(context.Background(), example, lake, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("indexed", func(b *testing.B) {
		var last []Result
		for i := 0; i < b.N; i++ {
			res, _, err := RankIndexedContext(context.Background(), example, lake, ix, opt)
			if err != nil {
				b.Fatal(err)
			}
			last = res
		}
		b.StopTimer()
		hits := 0
		got := map[string]bool{}
		for _, name := range topNames(last, DefaultTopK) {
			got[name] = true
		}
		for _, name := range oracleTop {
			if got[name] {
				hits++
			}
		}
		b.ReportMetric(float64(hits)/float64(DefaultTopK), "top10_recall")
	})
}

package lake

// This file implements sketch-indexed ranking: instead of running a full
// signature comparison against every candidate (RankPreparedContext's full
// scan), the example is sketched once, the lake's sketch index is probed for
// a shortlist of max(4*TopK, MinShortlist) likely candidates, and only the
// shortlist receives real comparisons. Candidates outside the shortlist are
// reported Pruned with score 0, exactly like prefilter-pruned candidates.
// The full scan remains both the fallback (nil index, tiny lake) and the
// oracle the recall tests hold the indexed ranking to.

import (
	"context"
	"fmt"
	"time"

	"instcmp"
	"instcmp/internal/lakeindex"
)

// IndexStats reports how an indexed ranking used the sketch index; it is
// the ranking-level companion of the per-candidate Result.Stats. The same
// quantities feed the cumulative expvar counters under "instcmp.lake"
// (index_probes, index_probed_candidates, shortlist_size, index_widened,
// full_scan_fallbacks, sketch_build_ns), so a service degrading to full
// scans is observable without touching per-request stats.
type IndexStats struct {
	// FullScan reports that the ranking fell back to comparing every
	// candidate (nil index, or a lake no larger than the shortlist).
	FullScan bool
	// Probed is the number of distinct candidates the banded inverted index
	// returned before ranking and truncation.
	Probed int
	// Widened reports that band probing under-delivered and every indexed
	// sketch was estimated instead.
	Widened bool
	// ShortlistSize is the number of candidates that received a real
	// comparison.
	ShortlistSize int
	// Unindexed counts lake candidates missing from the index; they are
	// force-shortlisted (a stale index must cost comparisons, not recall).
	Unindexed int
	// SketchBuild is the time spent sketching the example.
	SketchBuild time.Duration
}

// RankIndexedContext ranks a prepared lake through a sketch index. The
// result ordering follows the same deterministic comparator as every other
// ranking path (score desc, overlap desc, name asc; degraded candidates
// last), so whenever the true top-K candidates land in the shortlist — which
// the recall tests pin on generated lakes — the top of an indexed ranking is
// identical to the full-scan oracle's at a fraction of the comparisons.
//
// Index-pruned candidates report Pruned = true with score and overlap 0:
// their overlap was never measured (that is the point of the index). A nil
// index, or a lake that does not outnumber the shortlist, degrades to
// RankPreparedContext transparently (IndexStats.FullScan).
func RankIndexedContext(ctx context.Context, example *instcmp.Prepared, lake []PreparedCandidate, idx lakeindex.Searcher, opt Options) ([]Result, IndexStats, error) {
	var st IndexStats
	topK := opt.TopK
	if topK <= 0 {
		topK = DefaultTopK
	}
	minShort := opt.MinShortlist
	if minShort <= 0 {
		minShort = DefaultMinShortlist
	}
	target := max(4*topK, minShort)
	if idx == nil || len(lake) <= target {
		st.FullScan = true
		st.ShortlistSize = len(lake)
		vars.Add("full_scan_fallbacks", 1)
		res, err := RankPreparedContext(ctx, example, lake, opt)
		return res, st, err
	}
	if example == nil {
		return nil, st, fmt.Errorf("lake: RankIndexed requires a non-nil prepared example")
	}

	//instlint:allow nondet -- stopwatch feeds IndexedStats.SketchBuild, a human-facing duration, never a score or ranking input
	start := time.Now()
	query := lakeindex.NewSketch(example.SketchFeatures())
	st.SketchBuild = time.Since(start)

	inLake := make(map[string]bool, len(lake))
	for _, cand := range lake {
		inLake[cand.Name] = true
	}
	// The index may cover names outside this lake (a registry indexes every
	// registered instance, including the example itself), and those hits
	// would silently shrink the shortlist below target. Re-probe with a
	// doubled target until target lake members are retrieved or the index is
	// exhausted (a probe returning fewer hits than asked for has seen
	// everything).
	var hits []lakeindex.Hit
	var ps lakeindex.ProbeStats
	//instlint:allow ctxpoll -- at most log(index size) probes, each a bounded sketch scan costing microseconds; the comparisons that follow poll ctx
	for probeTarget := target; ; probeTarget *= 2 {
		hits, ps = idx.Shortlist(query, probeTarget)
		members := 0
		for _, h := range hits {
			if inLake[h.Name] {
				members++
			}
		}
		if members >= target || len(hits) < probeTarget {
			break
		}
	}
	st.Probed = ps.Probed
	st.Widened = ps.Widened

	// Shortlist the best target lake members, in hit (estimate) order.
	shortlisted := make(map[string]bool, target)
	for _, h := range hits {
		if inLake[h.Name] {
			shortlisted[h.Name] = true
			if len(shortlisted) >= target {
				break
			}
		}
	}
	short := make([]PreparedCandidate, 0, target)
	var rest []Result
	for _, cand := range lake {
		switch {
		case shortlisted[cand.Name]:
			short = append(short, cand)
		case !idx.Contains(cand.Name):
			// The index has never seen this candidate (it was added after
			// the index was built): shortlist it unconditionally rather
			// than dropping it on evidence the index does not have.
			st.Unindexed++
			short = append(short, cand)
		default:
			rest = append(rest, Result{Name: cand.Name, Pruned: true})
		}
	}
	st.ShortlistSize = len(short)

	out, err := RankPreparedContext(ctx, example, short, opt)
	if err != nil {
		return nil, st, err
	}
	out = append(out, rest...)
	sortResults(out)

	vars.Add("index_probes", 1)
	vars.Add("index_probed_candidates", int64(st.Probed))
	vars.Add("shortlist_size", int64(st.ShortlistSize))
	if st.Widened {
		vars.Add("index_widened", 1)
	}
	vars.Add("sketch_build_ns", int64(st.SketchBuild))
	return out, st, nil
}

// BuildIndex sketches every candidate of a prepared lake and builds the
// static index over them — the one-stop constructor lakefind and tests use.
func BuildIndex(lake []PreparedCandidate) (*lakeindex.Index, error) {
	entries := make([]lakeindex.Entry, 0, len(lake))
	for _, cand := range lake {
		if cand.Prepared == nil {
			return nil, fmt.Errorf("lake: candidate %q has no prepared instance", cand.Name)
		}
		feats := cand.Prepared.SketchFeatures()
		entries = append(entries, lakeindex.Entry{
			Name:     cand.Name,
			Sketch:   lakeindex.NewSketch(feats),
			Features: uint64(len(feats)),
		})
	}
	return lakeindex.Build(entries)
}

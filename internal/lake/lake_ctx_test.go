package lake

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"instcmp"
)

// smallInstance builds a single-relation, single-tuple instance R(A, B) with
// the given values.
func smallInstance(a, b instcmp.Value) *instcmp.Instance {
	in := instcmp.NewInstance()
	in.AddRelation("R", "A", "B")
	in.Append("R", a, b)
	return in
}

// TestRankExplicitZeroLambda pins that Options.ExplicitZeroLambda reaches the
// comparison: the example's null matched against a constant earns λ per cell,
// so the candidate scores (1+λ)/2 — 0.75 at the default λ = 0.5 and exactly
// 0.5 at λ = 0, which Options.Lambda = 0 alone cannot request.
func TestRankExplicitZeroLambda(t *testing.T) {
	example := smallInstance(instcmp.Const("x"), instcmp.Null("N1"))
	cands := []Candidate{{Name: "c", Instance: smallInstance(instcmp.Const("x"), instcmp.Const("y"))}}

	def, err := Rank(example, cands, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(def[0].Score-0.75) > 1e-9 {
		t.Errorf("default-λ score = %v, want 0.75", def[0].Score)
	}

	zero, err := Rank(example, cands, Options{ExplicitZeroLambda: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(zero[0].Score-0.5) > 1e-9 {
		t.Errorf("λ=0 score = %v, want 0.5", zero[0].Score)
	}
}

// wideInstance builds a single-relation instance whose relation has the given
// arity. Arities above 64 make match.NewEnv fail with an error that names the
// arity, which the error-ordering test below uses to tell candidates apart.
func wideInstance(arity int) *instcmp.Instance {
	attrs := make([]string, arity)
	row := make([]instcmp.Value, arity)
	for i := range attrs {
		attrs[i] = fmt.Sprintf("a%d", i)
		row[i] = instcmp.Const(fmt.Sprintf("v%d", i))
	}
	out := instcmp.NewInstance()
	out.AddRelation("R", attrs...)
	out.Append("R", row...)
	return out
}

// TestRankReturnsFirstErrorByCandidateOrder pins the documented fail-fast
// guarantee: when several candidates fail, Rank returns the error of the
// lowest-index failing candidate, for both the sequential and the concurrent
// path. The two failing candidates have distinct arities (65 vs 66), so their
// ErrTooManyAttributes messages are distinguishable even though alignName
// erases relation-name differences.
func TestRankReturnsFirstErrorByCandidateOrder(t *testing.T) {
	example := wideInstance(2)
	cands := []Candidate{
		{Name: "ok-0", Instance: wideInstance(2)},
		{Name: "bad-65", Instance: wideInstance(65)},
		{Name: "ok-2", Instance: wideInstance(2)},
		{Name: "bad-66", Instance: wideInstance(66)},
		{Name: "ok-4", Instance: wideInstance(2)},
	}
	for _, workers := range []int{1, 4} {
		// The concurrent path schedules candidates nondeterministically;
		// repeat to give a wrong ordering a chance to surface.
		for iter := 0; iter < 20; iter++ {
			_, err := Rank(example, cands, Options{Workers: workers})
			if err == nil {
				t.Fatalf("workers=%d: expected an error", workers)
			}
			if !strings.Contains(err.Error(), "has 65") {
				t.Fatalf("workers=%d iter=%d: got error %q, want the index-1 candidate's (arity 65)", workers, iter, err)
			}
		}
	}
}

// TestRankPerCandidateTimeoutDegrades: a candidate that exceeds its own
// comparison budget is degraded — TimedOut, score 0, ranked with the pruned
// candidates — instead of failing the ranking.
func TestRankPerCandidateTimeoutDegrades(t *testing.T) {
	example, cands := buildLake(t)
	// 1ns: every per-candidate context is already expired when the
	// comparison starts, so every unpruned candidate degrades.
	res, err := Rank(example, cands, Options{PerCandidateTimeout: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(cands) {
		t.Fatalf("results = %d, want %d", len(res), len(cands))
	}
	for _, r := range res {
		if !r.TimedOut {
			t.Errorf("candidate %s not marked TimedOut", r.Name)
		}
		if r.Score != 0 {
			t.Errorf("timed-out candidate %s has score %v", r.Name, r.Score)
		}
		if r.Stats == nil {
			t.Errorf("timed-out candidate %s lost its stats", r.Name)
		}
		if r.Overlap == 0 {
			t.Errorf("timed-out candidate %s lost its prefilter overlap", r.Name)
		}
	}
}

// TestRankPerCandidateTimeoutGenerous: a budget no candidate hits must leave
// the ranking identical to an unbudgeted run.
func TestRankPerCandidateTimeoutGenerous(t *testing.T) {
	example, cands := buildLake(t)
	plain, err := Rank(example, cands, Options{})
	if err != nil {
		t.Fatal(err)
	}
	budgeted, err := Rank(example, cands, Options{PerCandidateTimeout: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		a, b := plain[i], budgeted[i]
		a.Stats, b.Stats = nil, nil
		if a != b {
			t.Errorf("rank %d differs under a generous budget: %+v vs %+v", i, a, b)
		}
	}
}

// TestRankContextCanceled: cancelling the overall context fails the ranking
// with ctx.Err(), unlike a per-candidate timeout.
func TestRankContextCanceled(t *testing.T) {
	example, cands := buildLake(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		_, err := RankContext(ctx, example, cands, Options{Workers: workers})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}

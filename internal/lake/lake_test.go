package lake

import (
	"context"
	"math/rand"
	"runtime"
	"testing"

	"instcmp"
	"instcmp/internal/datasets"
	"instcmp/internal/generator"
	"instcmp/internal/versioning"
)

// buildLake assembles a lake of candidates around one base table: a near
// copy (light noise), a distant version (heavy noise), a shuffled clone, an
// unrelated dataset, and a schema-modified version.
func buildLake(t *testing.T) (*instcmp.Instance, []Candidate) {
	t.Helper()
	base := datasets.IrisData(100, rand.New(rand.NewSource(4)))

	near := generator.Make(base, generator.Noise{CellPct: 0.02, Seed: 1}).Target
	far := generator.Make(base, generator.Noise{CellPct: 0.40, Seed: 2}).Target
	clone, err := versioning.MakeVariant(base, versioning.Shuffled, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	dropped, err := versioning.MakeVariant(base, versioning.ColumnsRemoved, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	unrelated := datasets.NbaData(100, rand.New(rand.NewSource(5)))

	return base, []Candidate{
		{Name: "unrelated", Instance: unrelated},
		{Name: "far-version", Instance: far},
		{Name: "clone", Instance: clone},
		{Name: "near-version", Instance: near},
		{Name: "column-dropped", Instance: dropped},
	}
}

func TestRankOrdersByCloseness(t *testing.T) {
	example, cands := buildLake(t)
	res, err := Rank(example, cands, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("results = %d", len(res))
	}
	pos := map[string]int{}
	for i, r := range res {
		pos[r.Name] = i
	}
	if pos["clone"] != 0 {
		t.Errorf("clone should rank first: %v", res)
	}
	if !(pos["near-version"] < pos["far-version"]) {
		t.Errorf("near should beat far: %v", res)
	}
	if pos["unrelated"] != 4 {
		t.Errorf("unrelated should rank last: %v", res)
	}
	if res[pos["clone"]].Score < 0.999 {
		t.Errorf("clone score = %v, want 1", res[pos["clone"]].Score)
	}
	// NBA stat lines share some numeric strings with Iris measurements,
	// so the score is small but not zero.
	if res[pos["unrelated"]].Score > 0.3 {
		t.Errorf("unrelated score = %v, want small", res[pos["unrelated"]].Score)
	}
}

func TestRankPrefilterPrunes(t *testing.T) {
	example, cands := buildLake(t)
	res, err := Rank(example, cands, Options{MinValueOverlap: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	var prunedNames []string
	for _, r := range res {
		if r.Pruned {
			prunedNames = append(prunedNames, r.Name)
			if r.Score != 0 {
				t.Errorf("pruned candidate %s has score %v", r.Name, r.Score)
			}
		}
	}
	if len(prunedNames) == 0 {
		t.Fatal("prefilter pruned nothing; expected the unrelated dataset out")
	}
	for _, name := range prunedNames {
		if name != "unrelated" {
			t.Errorf("prefilter wrongly pruned %s", name)
		}
	}
	// Pruned entries sort after scored ones.
	if res[len(res)-1].Name != "unrelated" {
		t.Errorf("pruned candidate not last: %v", res)
	}
}

// TestRankParallelMatchesSequential: the worker pool must produce the same
// ranking as the sequential path (run with -race to check for data races).
// TestRankParallelMatchesSequential pins the property cmd/lakefind's
// Workers = GOMAXPROCS default relies on: the ranking (names, scores,
// overlaps, prune decisions, and order) is identical for every worker
// count.
func TestRankParallelMatchesSequential(t *testing.T) {
	example, cands := buildLake(t)
	seq, err := Rank(example, cands, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, runtime.GOMAXPROCS(0), 16} {
		par, err := Rank(example, cands, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if len(seq) != len(par) {
			t.Fatalf("workers=%d: lengths differ: %d vs %d", workers, len(seq), len(par))
		}
		for i := range seq {
			// Stats pointers differ per run; compare everything else.
			a, b := seq[i], par[i]
			a.Stats, b.Stats = nil, nil
			if a != b {
				t.Errorf("workers=%d rank %d differs: %+v vs %+v", workers, i, a, b)
			}
		}
	}
}

// BenchmarkRank measures lake ranking sequentially and at the lakefind
// default worker count (alignName + normalization + signature comparison
// per surviving candidate).
func BenchmarkRank(b *testing.B) {
	base := datasets.IrisData(100, rand.New(rand.NewSource(4)))
	var cands []Candidate
	for i := 0; i < 8; i++ {
		c := generator.Make(base, generator.Noise{CellPct: 0.05 * float64(i%4), Seed: int64(i)}).Target
		cands = append(cands, Candidate{Name: string(rune('a' + i)), Instance: c})
	}
	for name, workers := range map[string]int{"workers=1": 1, "workers=max": runtime.GOMAXPROCS(0)} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Rank(base, cands, Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func TestRankEmptyLake(t *testing.T) {
	example, _ := buildLake(t)
	res, err := Rank(example, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Errorf("results = %v", res)
	}
}

func TestRankSchemaMismatchHandledByAlignment(t *testing.T) {
	example, cands := buildLake(t)
	for _, r := range cands {
		if r.Name == "column-dropped" {
			res, err := Rank(example, []Candidate{r}, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if res[0].Score < 0.5 {
				t.Errorf("dropped-column candidate score = %v, want high", res[0].Score)
			}
		}
	}
}

// TestRankPreparedMatchesRankContext pins the resident-registry path: a
// ranking over pre-prepared instances must be identical (names, scores,
// overlaps, prune and timeout decisions, order) to the one-shot Rank over
// the same raw instances.
func TestRankPreparedMatchesRankContext(t *testing.T) {
	example, cands := buildLake(t)
	oneShot, err := Rank(example, cands, Options{})
	if err != nil {
		t.Fatal(err)
	}

	exPrep, err := instcmp.Prepare(example)
	if err != nil {
		t.Fatal(err)
	}
	var pcands []PreparedCandidate
	for _, c := range cands {
		p, err := instcmp.Prepare(c.Instance)
		if err != nil {
			t.Fatal(err)
		}
		pcands = append(pcands, PreparedCandidate{Name: c.Name, Prepared: p})
	}
	resident, err := RankPreparedContext(context.Background(), exPrep, pcands, Options{})
	if err != nil {
		t.Fatal(err)
	}

	if len(oneShot) != len(resident) {
		t.Fatalf("lengths differ: %d vs %d", len(oneShot), len(resident))
	}
	for i := range oneShot {
		a, b := oneShot[i], resident[i]
		a.Stats, b.Stats = nil, nil
		if a != b {
			t.Errorf("rank %d differs: one-shot %+v vs resident %+v", i, a, b)
		}
	}
}

// BenchmarkRankPrepared measures the win of the resident path: "oneshot"
// pays normalization + interning for the example and every candidate per
// ranking, "resident" prepares everything once and only runs the matcher.
func BenchmarkRankPrepared(b *testing.B) {
	base := datasets.IrisData(100, rand.New(rand.NewSource(4)))
	var cands []Candidate
	for i := 0; i < 8; i++ {
		c := generator.Make(base, generator.Noise{CellPct: 0.05 * float64(i%4), Seed: int64(i)}).Target
		cands = append(cands, Candidate{Name: string(rune('a' + i)), Instance: c})
	}
	b.Run("oneshot", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Rank(base, cands, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("resident", func(b *testing.B) {
		exPrep, err := instcmp.Prepare(base)
		if err != nil {
			b.Fatal(err)
		}
		var pcands []PreparedCandidate
		for _, c := range cands {
			p, err := instcmp.Prepare(c.Instance)
			if err != nil {
				b.Fatal(err)
			}
			pcands = append(pcands, PreparedCandidate{Name: c.Name, Prepared: p})
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := RankPreparedContext(context.Background(), exPrep, pcands, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Package lake implements the data-lake discovery application of the
// paper's introduction: given a user-provided example instance, find and
// rank the datasets of a lake by instance similarity — without relying on
// shared keys, and tolerating labeled nulls in either side.
//
// Ranking every candidate with a full instance match would be wasteful, so
// candidates first pass two cheap filters: schema compatibility (attribute
// overlap after alignment) and a constant-overlap prefilter (weighted
// Jaccard of value samples), mirroring how the signature algorithm itself
// prunes by shared constants. Only survivors get a full signature
// comparison.
package lake

import (
	"context"
	"expvar"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"instcmp"
	"instcmp/internal/model"
	"instcmp/internal/score"
)

// vars exports cumulative ranking counters for long-running processes
// (expvar key "instcmp.lake"): rankings, candidates, pruned, timed_out.
var vars = expvar.NewMap("instcmp.lake")

// Options tunes the search.
type Options struct {
	// MinValueOverlap is the constant-overlap prefilter threshold in
	// [0, 1]; candidates below it are reported with Pruned = true and
	// score 0. Zero disables the prefilter.
	MinValueOverlap float64
	// MaxSample caps the number of distinct constants sampled per
	// instance for the prefilter (0 = 1000).
	MaxSample int
	// Lambda is the scoring penalty (0 = default; use ExplicitZeroLambda
	// to request λ = 0).
	Lambda float64
	// ExplicitZeroLambda forces λ = 0: nulls matched to constants score
	// nothing. Without it, Lambda = 0 silently means the default penalty.
	ExplicitZeroLambda bool
	// Mode restricts tuple mappings (zero value = n-to-m, the right
	// default for discovery: candidate tables may merge or split rows).
	Mode instcmp.Mode
	// Workers runs full comparisons concurrently (0 or 1 = sequential).
	// Comparisons are independent — prepared instances are immutable and
	// comparing never mutates them, so many comparisons may share the
	// prepared example at once — and candidates therefore parallelize
	// trivially, and the ranking is identical for every worker count
	// (results land in per-candidate slots and are sorted with a
	// deterministic comparator). cmd/lakefind defaults to GOMAXPROCS.
	Workers int
	// SigWorkers is the signature pipeline's worker count inside each
	// candidate comparison (1 = sequential). 0 keeps candidates sequential
	// too: the ranking already fans out across candidates, and nesting
	// per-comparison workers on top oversubscribes the machine. Set it
	// explicitly for lakes with few large datasets, where per-comparison
	// parallelism is the only parallelism available. Scores are identical
	// for every value.
	SigWorkers int
	// PerCandidateTimeout bounds each candidate's full comparison (0 = no
	// bound). The comparison problem is NP-hard and even the polynomial
	// signature algorithm can be slow on pathological candidates, so
	// without a per-candidate budget one bad dataset stalls the whole
	// ranking. A candidate that exceeds its budget degrades to its
	// prefilter overlap: TimedOut = true, score 0, ranked with the pruned
	// candidates instead of failing the ranking.
	PerCandidateTimeout time.Duration
	// TopK is how many top candidates the caller cares about when ranking
	// through a sketch index (RankIndexedContext); together with
	// MinShortlist it sizes the shortlist that receives real comparisons as
	// max(4*TopK, MinShortlist). 0 means DefaultTopK. Plain RankContext /
	// RankPreparedContext ignore it (they compare everything).
	TopK int
	// MinShortlist floors the indexed shortlist size (0 = DefaultMinShortlist).
	MinShortlist int
	// DiscoverMapping compares each candidate under a discovered attribute
	// mapping when its schema disagrees with the example's (renamed or
	// reordered columns — the common drift across a heterogeneous lake),
	// instead of padding every non-identical column pair apart. Results
	// carry the per-candidate mapping confidence.
	DiscoverMapping bool
}

// Indexed shortlist sizing defaults: the shortlist is max(4*TopK,
// MinShortlist) candidates, so a top-10 query compares at least 64
// candidates — enough slack that the MinHash estimate (standard error ~0.044
// at K=128) would have to misrank a true top-10 candidate past 54 closer
// ones to break recall.
const (
	DefaultTopK         = 10
	DefaultMinShortlist = 64
)

// Result is one ranked candidate.
type Result struct {
	Name string
	// Score is the instance similarity against the example (0 when
	// pruned or timed out).
	Score float64
	// Overlap is the prefilter's constant-overlap estimate.
	Overlap float64
	// Pruned reports that the candidate never reached full comparison.
	Pruned bool
	// TimedOut reports that the candidate's comparison exceeded
	// Options.PerCandidateTimeout and was degraded to its prefilter
	// overlap.
	TimedOut bool
	// Mapping is the discovered schema mapping the comparison ran under
	// (Options.DiscoverMapping with a drifted candidate), nil otherwise.
	Mapping *instcmp.SchemaMapping
	// Stats is the candidate's comparison record (nil when pruned).
	Stats *instcmp.ComparisonStats
}

// Candidate names one dataset of the lake.
type Candidate struct {
	Name     string
	Instance *instcmp.Instance
}

// PreparedCandidate names one dataset of the lake held in prepared form, as
// a long-lived registry (e.g. instcmp-serve) keeps it: the candidate's
// normalization and coding are paid once at registration, not once per
// ranking.
type PreparedCandidate struct {
	Name     string
	Prepared *instcmp.Prepared
}

// Rank scores every candidate against the example and returns them ranked
// best first (pruned and timed-out candidates last, by overlap).
func Rank(example *instcmp.Instance, lake []Candidate, opt Options) ([]Result, error) {
	return RankContext(context.Background(), example, lake, opt)
}

// candidateSource is the internal shape both entry points rank over: the
// instance feeds the constant-overlap prefilter, and prepare is invoked only
// for candidates that survive it (so pruned candidates never pay for
// coding).
type candidateSource struct {
	name    string
	inst    *instcmp.Instance
	prepare func() (*instcmp.Prepared, error)
}

// singleRelName returns the example's relation name when it has exactly one
// relation — the name single-table candidates are aligned to — and ""
// otherwise (multi-relation names are meaningful and never rewritten).
func singleRelName(example *instcmp.Instance) string {
	if rels := example.Relations(); len(rels) == 1 {
		return rels[0].Name
	}
	return ""
}

// RankContext is Rank with a cancellation context covering the whole
// ranking: when ctx is canceled the ranking aborts and returns ctx.Err().
// Independently, Options.PerCandidateTimeout budgets each candidate's own
// comparison; exceeding it degrades that one candidate instead of failing
// the ranking.
//
// The example is prepared once (lazily, on the first candidate to survive
// the prefilter) and that prepared form is reused across all candidates, so
// the example's normalization and coding cost is paid once per ranking
// rather than once per comparison.
func RankContext(ctx context.Context, example *instcmp.Instance, lake []Candidate, opt Options) ([]Result, error) {
	prepExample := sync.OnceValues(func() (*instcmp.Prepared, error) {
		return instcmp.Prepare(example)
	})
	wantName := singleRelName(example)
	srcs := make([]candidateSource, len(lake))
	for i, cand := range lake {
		srcs[i] = candidateSource{
			name: cand.Name,
			inst: cand.Instance,
			prepare: func() (*instcmp.Prepared, error) {
				p, err := instcmp.Prepare(cand.Instance)
				if err != nil || wantName == "" {
					return p, err
				}
				return p.WithRelationName(wantName), nil
			},
		}
	}
	return rankSources(ctx, example, prepExample, srcs, opt)
}

// RankPreparedContext is RankContext over a lake of prepared candidates and
// a prepared example: rankings are identical (same scores, same order, same
// degradation rules), but no instance is re-normalized or re-coded —
// single-relation name alignment is a constant-cost view over the
// candidate's prepared state. This is the entry point for resident
// registries serving many rankings over the same lake.
func RankPreparedContext(ctx context.Context, example *instcmp.Prepared, lake []PreparedCandidate, opt Options) ([]Result, error) {
	srcs, err := preparedSources(example, lake)
	if err != nil {
		return nil, err
	}
	prepExample := func() (*instcmp.Prepared, error) { return example, nil }
	return rankSources(ctx, example.Instance(), prepExample, srcs, opt)
}

// preparedSources validates a prepared lake and converts it to the internal
// candidate shape, aligning single-relation names to the example's. Shared
// by the full-scan and indexed prepared entry points.
func preparedSources(example *instcmp.Prepared, lake []PreparedCandidate) ([]candidateSource, error) {
	if example == nil {
		return nil, fmt.Errorf("lake: RankPrepared requires a non-nil prepared example")
	}
	wantName := singleRelName(example.Instance())
	srcs := make([]candidateSource, len(lake))
	for i, cand := range lake {
		if cand.Prepared == nil {
			return nil, fmt.Errorf("lake: candidate %q has no prepared instance", cand.Name)
		}
		p := cand.Prepared
		if wantName != "" {
			p = p.WithRelationName(wantName)
		}
		srcs[i] = candidateSource{
			name:    cand.Name,
			inst:    p.Instance(),
			prepare: func() (*instcmp.Prepared, error) { return p, nil },
		}
	}
	return srcs, nil
}

// rankSources runs the ranking proper: prefilter, budgeted full
// comparisons, deterministic ordering.
func rankSources(ctx context.Context, example *instcmp.Instance, prepExample func() (*instcmp.Prepared, error), lake []candidateSource, opt Options) ([]Result, error) {
	if opt.MaxSample == 0 {
		opt.MaxSample = 1000
	}
	// 0 means "sequential inside each comparison" here, unlike
	// instcmp.Options.SigWorkers where 0 means GOMAXPROCS: candidate-level
	// parallelism is the default way a ranking saturates the machine.
	sigWorkers := opt.SigWorkers
	if sigWorkers == 0 {
		sigWorkers = 1
	}
	exSample := sampleConsts(example, opt.MaxSample)
	out := make([]Result, len(lake))
	errs := make([]error, len(lake))
	rank := func(i int) {
		cand := lake[i]
		r := Result{Name: cand.name}
		r.Overlap = jaccard(exSample, sampleConsts(cand.inst, opt.MaxSample))
		if opt.MinValueOverlap > 0 && r.Overlap < opt.MinValueOverlap {
			r.Pruned = true
			out[i] = r
			return
		}
		cctx := ctx
		if opt.PerCandidateTimeout > 0 {
			var cancel context.CancelFunc
			cctx, cancel = context.WithTimeout(ctx, opt.PerCandidateTimeout)
			defer cancel()
		}
		exPrep, err := prepExample()
		if err != nil {
			errs[i] = err
			return
		}
		candPrep, err := cand.prepare()
		if err != nil {
			errs[i] = err
			return
		}
		res, err := instcmp.ComparePreparedContext(cctx, exPrep, candPrep, &instcmp.Options{
			Mode:               opt.Mode,
			Lambda:             opt.Lambda,
			ExplicitZeroLambda: opt.ExplicitZeroLambda,
			Algorithm:          instcmp.AlgoSignature,
			AlignSchemas:       true,
			DiscoverMapping:    opt.DiscoverMapping,
			SigWorkers:         sigWorkers,
		})
		if err != nil {
			errs[i] = err
			return
		}
		r.Stats = &res.Stats
		r.Mapping = res.Mapping
		if res.Stopped != "" {
			if ctx.Err() != nil {
				// The overall context was canceled: fail the
				// ranking, not the candidate.
				errs[i] = ctx.Err()
				return
			}
			// The candidate blew its own budget: degrade it to the
			// prefilter overlap, like a pruned candidate but marked
			// so callers can tell the difference.
			r.TimedOut = true
			out[i] = r
			return
		}
		r.Score = res.Score
		out[i] = r
	}
	// Rank fails as a whole when any comparison fails, so once an error is
	// recorded there is no point launching further comparisons: the loops
	// below fail fast. Results computed before the error are still written
	// to their out slots, keeping the (discarded) partial state
	// deterministic, and the first error by candidate order is returned.
	// That ordering guarantee holds in the concurrent path because
	// launches happen strictly in candidate order: when the fail-fast
	// break stops launching, the launched candidates form a prefix
	// [0..k] of the lake, every one of them runs to completion under
	// wg.Wait, and the scan below returns the lowest-index error of that
	// prefix — no unlaunched candidate has a smaller index than a
	// launched one (pinned by TestRankReturnsFirstErrorByCandidateOrder).
	var failed atomic.Bool
	if opt.Workers > 1 {
		var wg sync.WaitGroup
		sem := make(chan struct{}, opt.Workers)
		for i := range lake {
			if failed.Load() || ctx.Err() != nil {
				break
			}
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				rank(i)
				if errs[i] != nil {
					failed.Store(true)
				}
			}(i)
		}
		wg.Wait()
	} else {
		for i := range lake {
			if ctx.Err() != nil {
				break
			}
			rank(i)
			if errs[i] != nil {
				break
			}
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sortResults(out)
	vars.Add("rankings", 1)
	vars.Add("candidates", int64(len(out)))
	for _, r := range out {
		if r.Pruned {
			vars.Add("pruned", 1)
		}
		if r.TimedOut {
			vars.Add("timed_out", 1)
		}
	}
	return out, nil
}

// sortResults pins the one deterministic ranking order every path —
// sequential, parallel, indexed — must agree on: scored candidates first by
// (score desc, overlap desc, name asc), degraded candidates (pruned or timed
// out) last by (overlap desc, name asc). Before the name tie-break,
// equal-score candidates kept their input order only by accident of the
// sequential fold, which the indexed path (which reorders its input around
// the shortlist) would have broken.
func sortResults(out []Result) {
	degraded := func(r Result) bool { return r.Pruned || r.TimedOut }
	sort.SliceStable(out, func(i, j int) bool {
		if degraded(out[i]) != degraded(out[j]) {
			return !degraded(out[i])
		}
		// Bit-level inequality: the ranking must not merge scores the
		// golden tests distinguish (floatscore bans raw float !=).
		if !score.SameScore(out[i].Score, out[j].Score) {
			return out[i].Score > out[j].Score
		}
		if !score.SameScore(out[i].Overlap, out[j].Overlap) {
			return out[i].Overlap > out[j].Overlap
		}
		return out[i].Name < out[j].Name
	})
}

// sampleConsts collects up to max distinct constants of the instance, in
// first-seen order (deterministic).
func sampleConsts(in *model.Instance, max int) map[model.Value]bool {
	set := make(map[model.Value]bool, max)
	//instlint:allow ctxpoll -- capped at max distinct constants (default 1000); one sample costs microseconds and the rank loop around it polls ctx
	for _, rel := range in.Relations() {
		for _, t := range rel.Tuples {
			for _, v := range t.Values {
				if v.IsConst() && !set[v] {
					set[v] = true
					if len(set) >= max {
						return set
					}
				}
			}
		}
	}
	return set
}

func jaccard(a, b map[model.Value]bool) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter := 0
	for v := range a {
		if b[v] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

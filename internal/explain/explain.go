// Package explain turns a comparison result into a structured change
// report: which tuples were added, removed, or updated, and what happened
// inside each updated tuple cell by cell (a constant replaced by a null, a
// null instantiated to a constant, a null renamed, or — in partial matches
// — a constant changed). This is the versioning-facing deliverable of the
// paper's abstract: the similarity computation "returns a mapping between
// the instances' tuples, which explains the score".
package explain

import (
	"fmt"
	"sort"
	"strings"

	"instcmp"
	"instcmp/internal/model"
)

// CellKind classifies what happened to one cell between the left and right
// occurrence of a matched tuple pair.
type CellKind int

// Cell change kinds.
const (
	// Unchanged: equal constants on both sides.
	Unchanged CellKind = iota
	// NullRenamed: labeled nulls on both sides, equated by the match.
	NullRenamed
	// ValueNulled: a constant on the left became a labeled null on the
	// right (information was lost or masked).
	ValueNulled
	// NullInstantiated: a labeled null on the left became a constant on
	// the right (information was gained).
	NullInstantiated
	// ValueChanged: different constants (possible only under partial
	// matching).
	ValueChanged
	// Conflict: cells a partial match could not reconcile.
	Conflict
	// ColumnDropped: the attribute exists only on the left side (the
	// comparison ran with schema alignment).
	ColumnDropped
	// ColumnAdded: the attribute exists only on the right side.
	ColumnAdded
)

func (k CellKind) String() string {
	switch k {
	case Unchanged:
		return "unchanged"
	case NullRenamed:
		return "null-renamed"
	case ValueNulled:
		return "value-nulled"
	case NullInstantiated:
		return "null-instantiated"
	case ValueChanged:
		return "value-changed"
	case Conflict:
		return "conflict"
	case ColumnDropped:
		return "column-dropped"
	case ColumnAdded:
		return "column-added"
	}
	return fmt.Sprintf("CellKind(%d)", int(k))
}

// CellChange describes one cell of an updated tuple pair.
type CellChange struct {
	Attr     string
	Kind     CellKind
	From, To model.Value
}

// TupleChange is one matched pair with at least one non-trivial cell.
type TupleChange struct {
	Relation        string
	LeftID, RightID model.TupleID
	PairScore       float64
	Cells           []CellChange // only non-Unchanged cells
}

// TupleRef lists an unmatched tuple with its values for display.
type TupleRef struct {
	Relation string
	ID       model.TupleID
	Values   []model.Value
}

// Report is the full change summary of a comparison.
type Report struct {
	Similarity float64
	// Stopped carries the comparison's stop reason (instcmp.StoppedTimeout,
	// StoppedNodeBudget, StoppedCanceled), "" for a comparison that ran to
	// its natural end. A stopped report explains the best match found so
	// far — a degraded answer, not a verdict — and says so when rendered.
	Stopped string
	// Mapping is the discovered schema mapping the comparison ran under,
	// nil for a plain (schema-agreeing) comparison. When set, tuple
	// changes compare cells across the mapped attribute pairs instead of
	// by name.
	Mapping *instcmp.SchemaMapping
	// Identical counts matched pairs with no cell change.
	Identical int
	// Updated lists matched pairs with at least one changed cell.
	Updated []TupleChange
	// Removed lists left tuples without a counterpart; Added the right
	// ones.
	Removed, Added []TupleRef
}

// FromResult builds a report from a comparison result and the two original
// instances it was computed on. When the comparison discovered a schema
// mapping (Options.DiscoverMapping), matched pairs legitimately span
// differently-named relations and cells align across the mapped attribute
// pairs; the report carries the mapping so readers see which columns were
// identified and with what confidence.
func FromResult(left, right *instcmp.Instance, res *instcmp.Result) (*Report, error) {
	rep := &Report{Similarity: res.Score, Stopped: res.Stopped, Mapping: res.Mapping}
	mapped := newMappingLookup(res.Mapping)
	leftIdx, err := indexByID(left)
	if err != nil {
		return nil, err
	}
	rightIdx, err := indexByID(right)
	if err != nil {
		return nil, err
	}

	matchedL := map[model.TupleID]bool{}
	matchedR := map[model.TupleID]bool{}
	for _, p := range res.Pairs {
		matchedL[p.LeftID] = true
		matchedR[p.RightID] = true
		lt, ok := leftIdx[p.LeftID]
		if !ok {
			return nil, fmt.Errorf("explain: left tuple t%d not found", p.LeftID)
		}
		rt, ok := rightIdx[p.RightID]
		if !ok {
			return nil, fmt.Errorf("explain: right tuple t%d not found", p.RightID)
		}
		if lt.rel != rt.rel && !mapped.rels(lt.rel, rt.rel) {
			return nil, fmt.Errorf("explain: pair spans relations %s and %s", lt.rel, rt.rel)
		}
		tc := TupleChange{Relation: p.Relation, LeftID: p.LeftID, RightID: p.RightID, PairScore: p.Score}
		// Attributes align by name — or, under a discovered mapping,
		// across the mapped attribute pairs: comparisons run with schema
		// alignment may pair tuples across differing schemas.
		lrel, rrel := left.Relation(lt.rel), right.Relation(rt.rel)
		for li, attr := range lrel.Attrs {
			ri := mapped.attrIndex(lt.rel, attr, rrel)
			if ri < 0 {
				tc.Cells = append(tc.Cells, CellChange{
					Attr: attr, Kind: ColumnDropped, From: lt.t.Values[li],
				})
				continue
			}
			cc := classify(lt.t.Values[li], rt.t.Values[ri], res)
			if cc.Kind == Unchanged {
				continue
			}
			cc.Attr = attr
			if ra := rrel.Attrs[ri]; ra != attr {
				cc.Attr = attr + "→" + ra
			}
			tc.Cells = append(tc.Cells, cc)
		}
		for ri, attr := range rrel.Attrs {
			if mapped.rightAttrIndex(lt.rel, attr, lrel) < 0 {
				tc.Cells = append(tc.Cells, CellChange{
					Attr: attr, Kind: ColumnAdded, To: rt.t.Values[ri],
				})
			}
		}
		if len(tc.Cells) == 0 {
			rep.Identical++
		} else {
			rep.Updated = append(rep.Updated, tc)
		}
	}

	collect := func(in *instcmp.Instance, matched map[model.TupleID]bool) []TupleRef {
		var out []TupleRef
		for _, rel := range in.Relations() {
			for _, t := range rel.Tuples {
				if !matched[t.ID] {
					out = append(out, TupleRef{Relation: rel.Name, ID: t.ID, Values: t.Values})
				}
			}
		}
		return out
	}
	rep.Removed = collect(left, matchedL)
	rep.Added = collect(right, matchedR)
	sort.SliceStable(rep.Updated, func(i, j int) bool {
		return rep.Updated[i].LeftID < rep.Updated[j].LeftID
	})
	return rep, nil
}

// mappingLookup answers "which right relation/attribute corresponds to
// this left one" under a discovered schema mapping; with no mapping it
// degrades to name equality.
type mappingLookup struct {
	byLeft map[string]*instcmp.RelationMapping
}

func newMappingLookup(m *instcmp.SchemaMapping) mappingLookup {
	if m == nil {
		return mappingLookup{}
	}
	byLeft := make(map[string]*instcmp.RelationMapping, len(m.Relations))
	for i := range m.Relations {
		byLeft[m.Relations[i].Left] = &m.Relations[i]
	}
	return mappingLookup{byLeft: byLeft}
}

// rels reports whether the mapping pairs the two relations.
func (ml mappingLookup) rels(leftRel, rightRel string) bool {
	rm := ml.byLeft[leftRel]
	return rm != nil && rm.Right == rightRel
}

// attrIndex resolves a left attribute to its column index in the right
// relation: through the mapping when one covers leftRel, by name otherwise.
func (ml mappingLookup) attrIndex(leftRel, attr string, rrel *model.Relation) int {
	if rm := ml.byLeft[leftRel]; rm != nil {
		for _, c := range rm.Columns {
			if c.Left == attr {
				return rrel.AttrIndex(c.Right)
			}
		}
		return -1 // unmapped left column: dropped
	}
	return rrel.AttrIndex(attr)
}

// rightAttrIndex resolves a right attribute back to the left relation, for
// added-column detection.
func (ml mappingLookup) rightAttrIndex(leftRel, attr string, lrel *model.Relation) int {
	if rm := ml.byLeft[leftRel]; rm != nil {
		for _, c := range rm.Columns {
			if c.Right == attr {
				return lrel.AttrIndex(c.Left)
			}
		}
		return -1
	}
	return lrel.AttrIndex(attr)
}

type located struct {
	rel string
	t   model.Tuple
}

func indexByID(in *instcmp.Instance) (map[model.TupleID]located, error) {
	idx := map[model.TupleID]located{}
	for _, rel := range in.Relations() {
		for _, t := range rel.Tuples {
			if _, dup := idx[t.ID]; dup {
				return nil, fmt.Errorf("explain: duplicate tuple id %d", t.ID)
			}
			idx[t.ID] = located{rel: rel.Name, t: t}
		}
	}
	return idx, nil
}

// classify determines the cell change kind from the two cell values and the
// match's value mappings.
func classify(lv, rv model.Value, res *instcmp.Result) CellChange {
	cc := CellChange{From: lv, To: rv}
	switch {
	case lv.IsConst() && rv.IsConst():
		if lv == rv {
			cc.Kind = Unchanged
		} else {
			cc.Kind = ValueChanged
		}
	case lv.IsConst() && rv.IsNull():
		cc.Kind = ValueNulled
	case lv.IsNull() && rv.IsConst():
		cc.Kind = NullInstantiated
	default:
		// Both nulls: renamed if the match equates them, otherwise a
		// partial-match conflict. The value mappings are keyed on the
		// normalized (renamed-apart) nulls, so compare images with a
		// fallback to name equality for the common case.
		li, lok := res.LeftValueMapping[lv]
		ri, rok := res.RightValueMapping[rv]
		if lok && rok && li == ri {
			cc.Kind = NullRenamed
		} else if !lok && !rok && lv == rv {
			cc.Kind = NullRenamed
		} else {
			cc.Kind = Conflict
		}
	}
	return cc
}

// String renders the report as a human-readable summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "similarity %.4f: %d identical, %d updated, %d removed, %d added\n",
		r.Similarity, r.Identical, len(r.Updated), len(r.Removed), len(r.Added))
	if r.Stopped != "" {
		fmt.Fprintf(&b, "stopped early (%s): this explains the best match found, not a completed comparison\n", r.Stopped)
	}
	if m := r.Mapping; m != nil {
		fmt.Fprintf(&b, "schema mapping (confidence %.2f):\n", m.Confidence)
		for _, rm := range m.Relations {
			fmt.Fprintf(&b, "  %s -> %s (%.2f)\n", rm.Left, rm.Right, rm.Confidence)
			for _, c := range rm.Columns {
				fmt.Fprintf(&b, "    %s -> %s (%s, %.2f)\n", c.Left, c.Right, c.Method, c.Similarity)
			}
			if len(rm.LeftUnmapped) > 0 {
				fmt.Fprintf(&b, "    left-only columns: %s\n", strings.Join(rm.LeftUnmapped, ", "))
			}
			if len(rm.RightUnmapped) > 0 {
				fmt.Fprintf(&b, "    right-only columns: %s\n", strings.Join(rm.RightUnmapped, ", "))
			}
		}
		if len(m.LeftOnly) > 0 {
			fmt.Fprintf(&b, "  left-only relations: %s\n", strings.Join(m.LeftOnly, ", "))
		}
		if len(m.RightOnly) > 0 {
			fmt.Fprintf(&b, "  right-only relations: %s\n", strings.Join(m.RightOnly, ", "))
		}
	}
	for _, u := range r.Updated {
		fmt.Fprintf(&b, "~ %s t%d -> t%d (%.2f):", u.Relation, u.LeftID, u.RightID, u.PairScore)
		for _, c := range u.Cells {
			fmt.Fprintf(&b, " %s[%s: %v -> %v]", c.Attr, c.Kind, c.From, c.To)
		}
		b.WriteByte('\n')
	}
	for _, t := range r.Removed {
		fmt.Fprintf(&b, "- %s t%d %v\n", t.Relation, t.ID, model.Tuple{ID: t.ID, Values: t.Values})
	}
	for _, t := range r.Added {
		fmt.Fprintf(&b, "+ %s t%d %v\n", t.Relation, t.ID, model.Tuple{ID: t.ID, Values: t.Values})
	}
	return b.String()
}

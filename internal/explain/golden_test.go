package explain

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"instcmp"
)

var update = flag.Bool("update", false, "rewrite the golden report")

// TestReportGolden pins the rendered report byte for byte for a comparison
// that exercises the three rendering paths reviewers read most: the
// discovered-mapping block, cells labeled across renamed attributes
// (attr→renamed), and the stopped-early banner of a degraded result. The
// engine's determinism contract (DESIGN.md §16) makes the comparison —
// scores, mapping, pair order — reproducible, so the report text is too;
// regenerate with `go test ./internal/explain/ -run Golden -update` after
// an intentional rendering change.
func TestReportGolden(t *testing.T) {
	l := instcmp.NewInstance()
	l.AddRelation("Conf", "Name", "Year", "Org")
	l.Append("Conf", c("VLDB"), c("1975"), n("N1"))
	l.Append("Conf", c("ICDE"), n("N2"), c("IEEE"))
	l.Append("Conf", c("EDBT"), c("1988"), c("OpenProc"))

	// Same data under a renamed relation and renamed/reordered columns, so
	// the comparison must run under a discovered mapping; one year drifts
	// and one tuple disappears to populate the updated/removed sections.
	r := instcmp.NewInstance()
	r.AddRelation("Conference", "Organizer", "Title", "Held")
	r.Append("Conference", n("V1"), c("VLDB"), c("1975"))
	r.Append("Conference", c("IEEE"), c("ICDE"), c("1984"))

	res, err := instcmp.Compare(l, r, &instcmp.Options{
		Mode:            instcmp.OneToOne,
		Algorithm:       instcmp.AlgoSignature,
		DiscoverMapping: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A deadline-degraded result carries the same match with a stop
	// reason; pin its banner without racing a real timeout.
	res.Stopped = instcmp.StoppedTimeout

	rep, err := FromResult(l, r, res)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stopped != instcmp.StoppedTimeout {
		t.Fatalf("report Stopped = %q, want %q", rep.Stopped, instcmp.StoppedTimeout)
	}
	got := rep.String()

	golden := filepath.Join("testdata", "report.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("report drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

package explain

import (
	"strings"
	"testing"

	"instcmp"
)

func conf(rows ...[]instcmp.Value) *instcmp.Instance {
	in := instcmp.NewInstance()
	in.AddRelation("Conf", "Name", "Year", "Org")
	for _, row := range rows {
		in.Append("Conf", row...)
	}
	return in
}

func c(s string) instcmp.Value { return instcmp.Const(s) }
func n(s string) instcmp.Value { return instcmp.Null(s) }

func report(t *testing.T, left, right *instcmp.Instance, opt *instcmp.Options) *Report {
	t.Helper()
	res, err := instcmp.Compare(left, right, opt)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := FromResult(left, right, res)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestReportIdentical(t *testing.T) {
	l := conf([]instcmp.Value{c("VLDB"), c("1975"), c("x")})
	rep := report(t, l, l.Clone(), &instcmp.Options{Mode: instcmp.OneToOne})
	if rep.Identical != 1 || len(rep.Updated) != 0 || len(rep.Added) != 0 || len(rep.Removed) != 0 {
		t.Errorf("identical report wrong: %+v", rep)
	}
	if rep.Similarity != 1 {
		t.Errorf("similarity = %v", rep.Similarity)
	}
}

func TestReportCellKinds(t *testing.T) {
	l := conf(
		[]instcmp.Value{c("VLDB"), c("1975"), n("N1")},  // N1 will rename
		[]instcmp.Value{c("ICDE"), n("N2"), c("IEEE")},  // N2 instantiated
		[]instcmp.Value{c("SIGMOD"), c("1975"), c("A")}, // Org nulled
	)
	r := conf(
		[]instcmp.Value{c("VLDB"), c("1975"), n("V1")},
		[]instcmp.Value{c("ICDE"), c("1984"), c("IEEE")},
		[]instcmp.Value{c("SIGMOD"), c("1975"), n("V2")},
	)
	rep := report(t, l, r, &instcmp.Options{Mode: instcmp.OneToOne, Algorithm: instcmp.AlgoSignature})
	if len(rep.Updated) != 3 || rep.Identical != 0 {
		t.Fatalf("updated = %d, identical = %d", len(rep.Updated), rep.Identical)
	}
	kinds := map[CellKind]int{}
	for _, u := range rep.Updated {
		for _, cell := range u.Cells {
			kinds[cell.Kind]++
		}
	}
	if kinds[NullRenamed] != 1 || kinds[NullInstantiated] != 1 || kinds[ValueNulled] != 1 {
		t.Errorf("cell kinds wrong: %v", kinds)
	}
}

func TestReportAddedRemoved(t *testing.T) {
	l := conf(
		[]instcmp.Value{c("VLDB"), c("1975"), c("x")},
		[]instcmp.Value{c("OLD"), c("1970"), c("gone")},
	)
	r := conf(
		[]instcmp.Value{c("VLDB"), c("1975"), c("x")},
		[]instcmp.Value{c("NEW"), c("2024"), c("fresh")},
	)
	rep := report(t, l, r, &instcmp.Options{Mode: instcmp.OneToOne})
	if len(rep.Removed) != 1 || rep.Removed[0].Values[0] != c("OLD") {
		t.Errorf("removed = %+v", rep.Removed)
	}
	if len(rep.Added) != 1 || rep.Added[0].Values[0] != c("NEW") {
		t.Errorf("added = %+v", rep.Added)
	}
}

func TestReportPartialValueChanged(t *testing.T) {
	l := conf([]instcmp.Value{c("VLDB"), c("1975"), c("VLDB End.")})
	r := conf([]instcmp.Value{c("VLDB"), c("1975"), c("VLDB Endow.")})
	rep := report(t, l, r, &instcmp.Options{
		Mode: instcmp.OneToOne, Algorithm: instcmp.AlgoSignature,
		Partial: true, MinPartialSig: 2,
	})
	if len(rep.Updated) != 1 {
		t.Fatalf("updated = %+v", rep.Updated)
	}
	cells := rep.Updated[0].Cells
	if len(cells) != 1 || cells[0].Kind != ValueChanged || cells[0].Attr != "Org" {
		t.Errorf("cells = %+v", cells)
	}
}

func TestReportSharedNullNames(t *testing.T) {
	// Both sides use the null name N1; normalization renames the right
	// one apart, and the report must still classify the cell as a
	// renaming, keyed by the ORIGINAL names.
	l := conf([]instcmp.Value{c("VLDB"), c("1975"), n("N1")})
	r := conf([]instcmp.Value{c("VLDB"), c("1975"), n("N1")})
	rep := report(t, l, r, &instcmp.Options{Mode: instcmp.OneToOne})
	if rep.Identical != 0 || len(rep.Updated) != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Updated[0].Cells[0].Kind != NullRenamed {
		t.Errorf("kind = %v, want null-renamed", rep.Updated[0].Cells[0].Kind)
	}
}

func TestReportString(t *testing.T) {
	l := conf(
		[]instcmp.Value{c("VLDB"), c("1975"), n("N1")},
		[]instcmp.Value{c("OLD"), c("1970"), c("gone")},
	)
	r := conf([]instcmp.Value{c("VLDB"), c("1975"), c("VLDB End.")})
	rep := report(t, l, r, &instcmp.Options{Mode: instcmp.OneToOne})
	s := rep.String()
	for _, want := range []string{"similarity", "null-instantiated", "- Conf"} {
		if !strings.Contains(s, want) {
			t.Errorf("report rendering missing %q:\n%s", want, s)
		}
	}
}

func TestCellKindStrings(t *testing.T) {
	for k := Unchanged; k <= ColumnAdded; k++ {
		if s := k.String(); strings.HasPrefix(s, "CellKind(") {
			t.Errorf("kind %d lacks a name", int(k))
		}
	}
	if !strings.HasPrefix(CellKind(99).String(), "CellKind(") {
		t.Error("unknown kind should fall back to numeric form")
	}
}

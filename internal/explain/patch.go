package explain

import (
	"fmt"

	"instcmp"
	"instcmp/internal/model"
)

// Apply replays a report onto the left instance, producing an instance
// isomorphic to the right one the report was computed against: updated
// pairs have their changed cells rewritten, removed tuples are dropped, and
// added tuples are appended. This turns a comparison into a usable patch —
// the versioning workflow the paper's introduction motivates (store one
// version plus diffs instead of every version).
//
// Cell rewrites follow the change kinds: constants are replaced verbatim;
// nulls are carried over from the report's To values, which keeps shared
// nulls (same null across several cells or tuples) shared in the output.
func Apply(left *instcmp.Instance, rep *Report) (*instcmp.Instance, error) {
	out := left.Clone()
	byID := map[model.TupleID]*model.Tuple{}
	relOf := map[model.TupleID]string{}
	for _, rel := range out.Relations() {
		for i := range rel.Tuples {
			byID[rel.Tuples[i].ID] = &rel.Tuples[i]
			relOf[rel.Tuples[i].ID] = rel.Name
		}
	}

	for _, u := range rep.Updated {
		t, ok := byID[u.LeftID]
		if !ok {
			return nil, fmt.Errorf("explain: patch refers to missing tuple t%d", u.LeftID)
		}
		rel := out.Relation(u.Relation)
		if rel == nil || relOf[u.LeftID] != u.Relation {
			return nil, fmt.Errorf("explain: tuple t%d is not in relation %s", u.LeftID, u.Relation)
		}
		for _, cc := range u.Cells {
			if cc.Kind == ColumnDropped || cc.Kind == ColumnAdded {
				return nil, fmt.Errorf("explain: patch spans a schema change (%s %s); apply it by migrating the schema first", cc.Kind, cc.Attr)
			}
			ai := rel.AttrIndex(cc.Attr)
			if ai < 0 {
				return nil, fmt.Errorf("explain: relation %s has no attribute %s", u.Relation, cc.Attr)
			}
			if t.Values[ai] != cc.From {
				return nil, fmt.Errorf("explain: patch conflict at t%d.%s: have %v, patch expects %v",
					u.LeftID, cc.Attr, t.Values[ai], cc.From)
			}
			t.Values[ai] = cc.To
		}
	}

	removed := map[model.TupleID]bool{}
	for _, tr := range rep.Removed {
		removed[tr.ID] = true
	}
	for _, rel := range out.Relations() {
		kept := rel.Tuples[:0]
		for _, t := range rel.Tuples {
			if !removed[t.ID] {
				kept = append(kept, t)
			}
		}
		rel.Tuples = kept
	}

	for _, tr := range rep.Added {
		if out.Relation(tr.Relation) == nil {
			return nil, fmt.Errorf("explain: patch adds to unknown relation %s", tr.Relation)
		}
		vals := make([]model.Value, len(tr.Values))
		copy(vals, tr.Values)
		out.Append(tr.Relation, vals...)
	}
	return out, nil
}

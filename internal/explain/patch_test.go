package explain

import (
	"math/rand"
	"testing"

	"instcmp"
	"instcmp/internal/datasets"
	"instcmp/internal/generator"
)

// TestApplyRoundTrip is the patch property: for any comparison, applying
// the report to the left instance yields an instance isomorphic to the
// right one (every differing cell is rewritten to the right side's value,
// removed tuples dropped, added tuples appended).
func TestApplyRoundTrip(t *testing.T) {
	base := datasets.Doctors(80, rand.New(rand.NewSource(2)))
	for seed := int64(0); seed < 6; seed++ {
		sc := generator.Make(base, generator.Noise{
			CellPct: 0.08, RandomPct: 0.05, Seed: seed,
		})
		res, err := instcmp.Compare(sc.Source, sc.Target, &instcmp.Options{
			Mode:      instcmp.OneToOne,
			Algorithm: instcmp.AlgoSignature,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := FromResult(sc.Source, sc.Target, res)
		if err != nil {
			t.Fatal(err)
		}
		patched, err := Apply(sc.Source, rep)
		if err != nil {
			t.Fatal(err)
		}
		if !instcmp.IsIsomorphic(patched, sc.Target) {
			t.Fatalf("seed %d: patched instance not isomorphic to target", seed)
		}
		// Apply must not mutate its input.
		again, err := Apply(sc.Source, rep)
		if err != nil {
			t.Fatalf("seed %d: patch not reapplicable (input mutated?): %v", seed, err)
		}
		if !instcmp.IsIsomorphic(again, sc.Target) {
			t.Fatalf("seed %d: second application diverged", seed)
		}
	}
}

func TestApplyDetectsConflicts(t *testing.T) {
	l := conf([]instcmp.Value{c("VLDB"), c("1975"), c("old")})
	r := conf([]instcmp.Value{c("VLDB"), c("1975"), n("V1")})
	res, err := instcmp.Compare(l, r, &instcmp.Options{Mode: instcmp.OneToOne})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := FromResult(l, r, res)
	if err != nil {
		t.Fatal(err)
	}
	// Tamper with the base: the patch expects "old" at Conf.Org.
	l.Relation("Conf").Tuples[0].Values[2] = c("tampered")
	if _, err := Apply(l, rep); err == nil {
		t.Error("patch applied despite a conflicting base")
	}
}

func TestApplyValidation(t *testing.T) {
	l := conf([]instcmp.Value{c("VLDB"), c("1975"), c("x")})
	rep := &Report{
		Updated: []TupleChange{{
			Relation: "Conf", LeftID: 99,
			Cells: []CellChange{{Attr: "Org", From: c("x"), To: c("y")}},
		}},
	}
	if _, err := Apply(l, rep); err == nil {
		t.Error("missing tuple id not reported")
	}
	rep = &Report{Added: []TupleRef{{Relation: "Nope", Values: []instcmp.Value{c("v")}}}}
	if _, err := Apply(l, rep); err == nil {
		t.Error("unknown relation not reported")
	}
	rep = &Report{
		Updated: []TupleChange{{
			Relation: "Conf", LeftID: 0,
			Cells: []CellChange{{Attr: "Ghost", From: c("x"), To: c("y")}},
		}},
	}
	if _, err := Apply(l, rep); err == nil {
		t.Error("unknown attribute not reported")
	}
}

func TestApplyEmptyReportIsIdentity(t *testing.T) {
	l := conf([]instcmp.Value{c("VLDB"), c("1975"), c("x")})
	out, err := Apply(l, &Report{})
	if err != nil {
		t.Fatal(err)
	}
	if !instcmp.IsIsomorphic(l, out) {
		t.Error("empty patch changed the instance")
	}
}

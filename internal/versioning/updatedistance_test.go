package versioning

import (
	"testing"

	"instcmp/internal/model"
)

func mk(rows ...[]model.Value) *model.Instance {
	in := model.NewInstance()
	in.AddRelation("R", "A", "B", "C")
	for _, row := range rows {
		in.Append("R", row...)
	}
	return in
}

func cv(s string) model.Value { return model.Const(s) }
func nv(s string) model.Value { return model.Null(s) }

func TestUpdateDistanceIdentity(t *testing.T) {
	in := mk([]model.Value{cv("a"), cv("b"), nv("N1")})
	d, err := ComputeUpdateDistance(in, in.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if d.Total() != 0 {
		t.Errorf("identity distance = %+v, want 0", d)
	}
	if got := d.Normalized(3, 3, 3); got != 0 {
		t.Errorf("normalized identity = %v", got)
	}
}

func TestUpdateDistanceNullRenamingIsFree(t *testing.T) {
	l := mk([]model.Value{cv("a"), nv("N1"), nv("N2")})
	r := mk([]model.Value{cv("a"), nv("V7"), nv("V9")})
	d, err := ComputeUpdateDistance(l, r)
	if err != nil {
		t.Fatal(err)
	}
	if d.Total() != 0 {
		t.Errorf("null renaming costed %+v, want 0 (same incomplete database)", d)
	}
}

func TestUpdateDistanceCounts(t *testing.T) {
	l := mk(
		[]model.Value{cv("a"), cv("b"), cv("c")},
		[]model.Value{cv("gone"), cv("g"), cv("g")},
	)
	r := mk(
		[]model.Value{cv("a"), cv("b"), nv("V1")}, // one cell masked
		[]model.Value{cv("new"), cv("n"), cv("n")},
	)
	d, err := ComputeUpdateDistance(l, r)
	if err != nil {
		t.Fatal(err)
	}
	if d.CellUpdates != 1 || d.Deletes != 1 || d.Inserts != 1 {
		t.Errorf("distance = %+v, want 1/1/1", d)
	}
	// 1 cell + (1+1)*3 tuple-cells = 7 operations over 6 cells: clamped.
	if got := d.Normalized(6, 6, 3); got != 1 {
		t.Errorf("normalized = %v, want clamped to 1", got)
	}
}

func TestUpdateDistanceSurvivesShuffleAndColumnDrop(t *testing.T) {
	// The whole point vs diff: reordering costs nothing.
	base := mk(
		[]model.Value{cv("a"), cv("b"), cv("c")},
		[]model.Value{cv("d"), cv("e"), cv("f")},
		[]model.Value{cv("g"), cv("h"), cv("i")},
	)
	shuffled, err := MakeVariant(base, Shuffled, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	d, err := ComputeUpdateDistance(base, shuffled)
	if err != nil {
		t.Fatal(err)
	}
	if d.Total() != 0 {
		t.Errorf("shuffle distance = %+v, want 0", d)
	}
	// Dropping a column costs one cell-update per row under schema
	// alignment? No: padding introduces fresh nulls, and constants
	// becoming nulls are value-nulled updates.
	dropped, err := MakeVariant(base, ColumnsRemoved, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	d, err = ComputeUpdateDistance(base, dropped)
	if err != nil {
		t.Fatal(err)
	}
	if d.Inserts != 0 || d.Deletes != 0 {
		t.Errorf("column drop should not insert/delete tuples: %+v", d)
	}
	if d.CellUpdates != 3 {
		t.Errorf("column drop cell updates = %d, want 3 (one per row)", d.CellUpdates)
	}
}

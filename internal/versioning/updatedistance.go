package versioning

import (
	"instcmp"
	"instcmp/internal/explain"
)

// UpdateDistance is the edit-style metric of Müller, Freytag, and Leser
// (CIKM 2006), discussed in the paper's related work (Sec. 8): the number
// of insert, delete, and cell-modification operations that transform one
// instance into the other. Unlike the original — which assumes a given
// correspondence — this implementation derives the correspondence from an
// instance match, so it works without keys and with labeled nulls.
type UpdateDistance struct {
	Inserts, Deletes, CellUpdates int
}

// Total returns the total operation count.
func (d UpdateDistance) Total() int { return d.Inserts + d.Deletes + d.CellUpdates }

// Normalized maps the distance to a dissimilarity in [0, 1] relative to
// the instances' sizes: each delete/insert costs the tuple's arity in cell
// operations; the denominator is the larger instance's cell count.
func (d UpdateDistance) Normalized(leftCells, rightCells, arity int) float64 {
	den := leftCells
	if rightCells > den {
		den = rightCells
	}
	if den == 0 {
		return 0
	}
	ops := d.CellUpdates + (d.Inserts+d.Deletes)*arity
	v := float64(ops) / float64(den)
	if v > 1 {
		v = 1
	}
	return v
}

// ComputeUpdateDistance compares two instances (signature algorithm,
// fully-injective mapping — each tuple is one entity) and counts the edit
// operations the resulting match implies. Null-renaming cells are not
// updates: renaming a null does not change the represented information.
func ComputeUpdateDistance(left, right *instcmp.Instance) (UpdateDistance, error) {
	res, err := instcmp.Compare(left, right, &instcmp.Options{
		Mode:         instcmp.OneToOne,
		Algorithm:    instcmp.AlgoSignature,
		AlignSchemas: true,
	})
	if err != nil {
		return UpdateDistance{}, err
	}
	rep, err := explain.FromResult(left, right, res)
	if err != nil {
		return UpdateDistance{}, err
	}
	var d UpdateDistance
	d.Deletes = len(rep.Removed)
	d.Inserts = len(rep.Added)
	for _, u := range rep.Updated {
		for _, cc := range u.Cells {
			if cc.Kind != explain.NullRenamed {
				d.CellUpdates++
			}
		}
	}
	return d, nil
}

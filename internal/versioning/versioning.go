// Package versioning is the data-versioning substrate of the paper's
// Table 7 experiment: generating modified versions of a dataset (shuffled,
// rows removed, rows removed and shuffled, columns removed) and comparing
// the instance-match approach against the line-oriented `diff` baseline.
//
// The baseline reimplements what `diff` measures: the longest common
// subsequence of the serialized rows, in file order. Lines not in the LCS
// are reported as left/right non-matching — which is why plain diff
// collapses on shuffled rows or dropped columns even when the data is
// unchanged.
package versioning

import (
	"math/rand"
	"sort"

	"instcmp/internal/model"
)

// Variant names a version-generation operation, following Table 7.
type Variant string

// The four variants of Table 7.
const (
	Shuffled          Variant = "S"  // rows shuffled
	Removed           Variant = "R"  // some rows removed
	RemovedShuffled   Variant = "RS" // rows removed, then shuffled
	ColumnsRemoved    Variant = "C"  // a column dropped
	DefaultRemoveFrac         = 0.175
)

// Variants lists the variants in Table 7 order.
var Variants = []Variant{Shuffled, Removed, RemovedShuffled, ColumnsRemoved}

// MakeVariant derives a modified version of the instance. removeFrac is the
// fraction of rows dropped by R/RS (0 means DefaultRemoveFrac); C drops the
// last attribute of every relation.
func MakeVariant(in *model.Instance, v Variant, removeFrac float64, seed int64) (*model.Instance, error) {
	rng := rand.New(rand.NewSource(seed))
	if removeFrac <= 0 {
		removeFrac = DefaultRemoveFrac
	}
	out := in.Clone()
	switch v {
	case Shuffled:
		out.Shuffle(rng)
	case Removed:
		removeRows(out, removeFrac, rng)
	case RemovedShuffled:
		removeRows(out, removeFrac, rng)
		out.Shuffle(rng)
	case ColumnsRemoved:
		for _, rel := range in.Relations() {
			var err error
			out, err = out.DropColumn(rel.Name, rel.Attrs[len(rel.Attrs)-1])
			if err != nil {
				return nil, err
			}
		}
	default:
		return nil, errUnknownVariant(v)
	}
	return out, nil
}

type errUnknownVariant Variant

func (e errUnknownVariant) Error() string { return "versioning: unknown variant " + string(e) }

// removeRows drops a random removeFrac of each relation's rows, preserving
// the order of survivors (as a data deletion would).
func removeRows(in *model.Instance, frac float64, rng *rand.Rand) {
	for _, rel := range in.Relations() {
		n := len(rel.Tuples)
		drop := int(frac * float64(n))
		if drop == 0 && frac > 0 && n > 0 {
			drop = 1
		}
		perm := rng.Perm(n)[:drop]
		sort.Sort(sort.Reverse(sort.IntSlice(perm)))
		for _, i := range perm {
			rel.Tuples = append(rel.Tuples[:i], rel.Tuples[i+1:]...)
		}
	}
}

// DiffStats are the counts Table 7 reports for both tools: matched tuples
// and left/right non-matching tuples.
type DiffStats struct {
	Matched       int
	LeftNonMatch  int
	RightNonMatch int
}

// LineDiff measures what the `diff` command-line tool would report for the
// two instances serialized as row-per-line files: the number of common
// lines (the longest common subsequence, order-sensitive) and the remaining
// left/right lines.
func LineDiff(left, right *model.Instance) DiffStats {
	a := serialize(left)
	b := serialize(right)
	m := lcsLength(a, b)
	return DiffStats{
		Matched:       m,
		LeftNonMatch:  len(a) - m,
		RightNonMatch: len(b) - m,
	}
}

// serialize renders each tuple as one line, relation by relation (the file
// export order a versioning system would produce).
func serialize(in *model.Instance) []string {
	var lines []string
	for _, rel := range in.Relations() {
		for _, t := range rel.Tuples {
			lines = append(lines, rel.Name+"\x00"+t.ValueKey())
		}
	}
	return lines
}

// lcsLength computes the length of the longest common subsequence of two
// line sequences with the Hunt–Szymanski reduction: map line contents to
// occurrence positions, walk sequence a emitting b-positions in descending
// order, then take the longest strictly increasing subsequence. This is
// near-linear for mostly-unique lines (the versioning case).
func lcsLength(a, b []string) int {
	posInB := map[string][]int{}
	for i := len(b) - 1; i >= 0; i-- { // store descending
		posInB[b[i]] = append(posInB[b[i]], i)
	}
	var seq []int
	for _, line := range a {
		seq = append(seq, posInB[line]...)
	}
	// Longest strictly increasing subsequence via patience sorting.
	var tails []int
	for _, x := range seq {
		lo, hi := 0, len(tails)
		for lo < hi {
			mid := (lo + hi) / 2
			if tails[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo == len(tails) {
			tails = append(tails, x)
		} else {
			tails[lo] = x
		}
	}
	return len(tails)
}

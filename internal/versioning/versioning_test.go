package versioning

import (
	"math/rand"
	"testing"

	"instcmp/internal/datasets"
	"instcmp/internal/model"
)

func iris(rows int) *model.Instance {
	return datasets.IrisData(rows, rand.New(rand.NewSource(1)))
}

func TestMakeVariantShuffle(t *testing.T) {
	base := iris(120)
	v, err := MakeVariant(base, Shuffled, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if v.NumTuples() != base.NumTuples() {
		t.Error("shuffle changed cardinality")
	}
	if v.String() == base.String() {
		t.Error("shuffle did not reorder (seed collision?)")
	}
}

func TestMakeVariantRemove(t *testing.T) {
	base := iris(120)
	v, err := MakeVariant(base, Removed, 0.175, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := v.NumTuples(); got != 99 {
		t.Errorf("removed variant rows = %d, want 99 (120 - 17.5%%)", got)
	}
	// Survivors keep their original relative order.
	d := LineDiff(base, v)
	if d.Matched != 99 || d.LeftNonMatch != 21 || d.RightNonMatch != 0 {
		t.Errorf("diff vs removed = %+v, want 99/21/0", d)
	}
}

func TestMakeVariantColumns(t *testing.T) {
	base := iris(120)
	v, err := MakeVariant(base, ColumnsRemoved, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Relation("Iris").Arity(); got != 4 {
		t.Errorf("column variant arity = %d, want 4", got)
	}
	// diff finds nothing in common: every line changed.
	d := LineDiff(base, v)
	if d.Matched != 0 {
		t.Errorf("diff matched %d lines across a column drop, want 0", d.Matched)
	}
}

func TestMakeVariantUnknown(t *testing.T) {
	if _, err := MakeVariant(iris(10), Variant("nope"), 0, 1); err == nil {
		t.Error("unknown variant accepted")
	}
}

func TestLineDiffIdentical(t *testing.T) {
	base := iris(50)
	d := LineDiff(base, base.Clone())
	if d.Matched != 50 || d.LeftNonMatch != 0 || d.RightNonMatch != 0 {
		t.Errorf("identical diff = %+v", d)
	}
}

func TestLineDiffShuffleCollapses(t *testing.T) {
	// The paper's point: diff matches only a small common subsequence of
	// a shuffled file (17 of 120 for Iris-S in Table 7).
	base := iris(120)
	v, _ := MakeVariant(base, Shuffled, 0, 3)
	d := LineDiff(base, v)
	if d.Matched >= 60 {
		t.Errorf("diff matched %d of 120 shuffled rows; expected far fewer", d.Matched)
	}
	if d.Matched == 0 {
		t.Error("an LCS of a permutation is never empty")
	}
	if d.LeftNonMatch != 120-d.Matched || d.RightNonMatch != 120-d.Matched {
		t.Errorf("non-match counts inconsistent: %+v", d)
	}
}

func TestLCSKnownCases(t *testing.T) {
	cases := []struct {
		a, b []string
		want int
	}{
		{nil, nil, 0},
		{[]string{"x"}, nil, 0},
		{[]string{"a", "b", "c"}, []string{"a", "b", "c"}, 3},
		{[]string{"a", "b", "c"}, []string{"c", "b", "a"}, 1},
		{[]string{"a", "b", "c", "d"}, []string{"b", "d"}, 2},
		{[]string{"a", "a", "b"}, []string{"a", "b", "a"}, 2},
		{[]string{"x", "a", "y", "b", "z"}, []string{"a", "q", "b"}, 2},
	}
	for _, tc := range cases {
		if got := lcsLength(tc.a, tc.b); got != tc.want {
			t.Errorf("lcs(%v, %v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestLCSMatchesDPOnRandomInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	dp := func(a, b []string) int {
		prev := make([]int, len(b)+1)
		cur := make([]int, len(b)+1)
		for i := 1; i <= len(a); i++ {
			for j := 1; j <= len(b); j++ {
				if a[i-1] == b[j-1] {
					cur[j] = prev[j-1] + 1
				} else if prev[j] >= cur[j-1] {
					cur[j] = prev[j]
				} else {
					cur[j] = cur[j-1]
				}
			}
			prev, cur = cur, prev
		}
		return prev[len(b)]
	}
	for trial := 0; trial < 100; trial++ {
		mk := func(n int) []string {
			out := make([]string, n)
			for i := range out {
				out[i] = string(rune('a' + rng.Intn(6)))
			}
			return out
		}
		a, b := mk(rng.Intn(30)), mk(rng.Intn(30))
		if got, want := lcsLength(a, b), dp(a, b); got != want {
			t.Fatalf("trial %d: lcs=%d dp=%d for %v vs %v", trial, got, want, a, b)
		}
	}
}

func TestVariantsDeterministic(t *testing.T) {
	base := iris(60)
	for _, v := range Variants {
		a, err := MakeVariant(base, v, 0.2, 7)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := MakeVariant(base, v, 0.2, 7)
		if a.String() != b.String() {
			t.Errorf("variant %s not deterministic", v)
		}
	}
}

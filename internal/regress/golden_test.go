// Package regress pins the numeric behavior of the comparison algorithms
// against golden scores captured from the pre-interning, string-based
// implementation. The integer-coded core is a pure representation change:
// every score must come out bit-identical, so the comparisons below use
// exact float64 equality, not tolerances.
package regress

import (
	"context"
	"testing"

	"instcmp"
	"instcmp/internal/datasets"
	"instcmp/internal/exact"
	"instcmp/internal/generator"
	"instcmp/internal/match"
	"instcmp/internal/signature"
)

// goldenSignature holds signature-algorithm scores recorded from the
// string-based implementation (λ = 0.5).
var goldenSignature = []struct {
	name  datasets.Name
	rows  int
	noise generator.Noise
	mode  match.Mode
	seed  int64
	want  float64
}{
	{datasets.Doct, 200, generator.Noise{CellPct: 0.05}, match.OneToOne, 1, 0.78300000000000025},
	{datasets.Doct, 200, generator.Noise{CellPct: 0.25, NullReuse: 0.3}, match.Functional, 1, 0.28958333333333336},
	{datasets.Bike, 150, generator.Noise{CellPct: 0.05, RandomPct: 0.1, RedundantPct: 0.1}, match.ManyToMany, 1, 0.5973501125434828},
	{datasets.Git, 150, generator.Noise{CellPct: 0.10}, match.OneToOne, 1, 0.23201754385964912},
	{datasets.Bus, 100, generator.Noise{CellPct: 0.50}, match.ManyToMany, 1, 0},
	{datasets.Doct, 200, generator.Noise{CellPct: 0.05}, match.OneToOne, 2, 0.74950000000000006},
	{datasets.Doct, 200, generator.Noise{CellPct: 0.25, NullReuse: 0.3}, match.Functional, 2, 0.25600000000000006},
	{datasets.Bike, 150, generator.Noise{CellPct: 0.05, RandomPct: 0.1, RedundantPct: 0.1}, match.ManyToMany, 2, 0.53345610804174337},
	{datasets.Git, 150, generator.Noise{CellPct: 0.10}, match.OneToOne, 2, 0.13321637426900584},
	{datasets.Bus, 100, generator.Noise{CellPct: 0.50}, match.ManyToMany, 2, 0},
	{datasets.Doct, 200, generator.Noise{CellPct: 0.05}, match.OneToOne, 3, 0.78400000000000025},
	{datasets.Doct, 200, generator.Noise{CellPct: 0.25, NullReuse: 0.3}, match.Functional, 3, 0.31416666666666665},
	{datasets.Bike, 150, generator.Noise{CellPct: 0.05, RandomPct: 0.1, RedundantPct: 0.1}, match.ManyToMany, 3, 0.61868221812973201},
	{datasets.Git, 150, generator.Noise{CellPct: 0.10}, match.OneToOne, 3, 0.15067251461988304},
	{datasets.Bus, 100, generator.Noise{CellPct: 0.50}, match.ManyToMany, 3, 0},
}

func TestSignatureGoldenScores(t *testing.T) {
	for _, tc := range goldenSignature {
		base, err := datasets.Generate(tc.name, tc.rows, tc.seed)
		if err != nil {
			t.Fatal(err)
		}
		n := tc.noise
		n.Seed = tc.seed
		sc := generator.Make(base, n)
		res, err := signature.Run(sc.Source, sc.Target, tc.mode, signature.Options{Lambda: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		if res.Score != tc.want {
			t.Errorf("%s rows=%d seed=%d mode=%v: score %.17g, golden %.17g",
				tc.name, tc.rows, tc.seed, tc.mode, res.Score, tc.want)
		}
	}
}

// TestSignatureGoldenAcrossWorkers pins the parallel signature pipeline
// against the same goldens: Workers 1 and 4 must reproduce every score
// bit-identically (mirroring the exact engine's worker pins). The golden
// instances sit below the pipeline's row gate, so this guards the
// option-plumbing and the always-sharded sigMap; the gate-crossing case is
// TestSignatureLargeInstanceWorkerInvariance below.
func TestSignatureGoldenAcrossWorkers(t *testing.T) {
	for _, tc := range goldenSignature {
		base, err := datasets.Generate(tc.name, tc.rows, tc.seed)
		if err != nil {
			t.Fatal(err)
		}
		n := tc.noise
		n.Seed = tc.seed
		sc := generator.Make(base, n)
		for _, workers := range []int{1, 4} {
			res, err := signature.Run(sc.Source, sc.Target, tc.mode, signature.Options{Lambda: 0.5, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if res.Score != tc.want {
				t.Errorf("%s rows=%d seed=%d mode=%v workers=%d: score %.17g, golden %.17g",
					tc.name, tc.rows, tc.seed, tc.mode, workers, res.Score, tc.want)
			}
		}
	}
}

// TestSignatureLargeInstanceWorkerInvariance crosses the pipeline's
// parallel gate (minParallelRows) with a 2000-row Table-2-shaped instance
// and pins SigWorkers 1 and 4 against each other through the public API:
// score, pair count, and signature stats must agree bit-for-bit, and the
// parallel run must actually have committed pipeline blocks.
func TestSignatureLargeInstanceWorkerInvariance(t *testing.T) {
	base, err := datasets.Generate(datasets.Doct, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	sc := generator.Make(base, generator.Noise{CellPct: 0.05, NullReuse: 0.3, Seed: 1})
	var ref *instcmp.Result
	for _, workers := range []int{1, 4} {
		res, err := instcmp.Compare(sc.Source, sc.Target, &instcmp.Options{
			Mode:       instcmp.OneToOne,
			Lambda:     0.5,
			Algorithm:  instcmp.AlgoSignature,
			SigWorkers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.SigWorkers != workers {
			t.Errorf("SigWorkers=%d: Stats.SigWorkers = %d", workers, res.Stats.SigWorkers)
		}
		if workers == 1 {
			ref = res
			if res.Stats.SigParallelBlocks != 0 {
				t.Errorf("sequential run committed %d parallel blocks", res.Stats.SigParallelBlocks)
			}
			continue
		}
		if res.Stats.SigParallelBlocks == 0 {
			t.Errorf("SigWorkers=%d: parallel pipeline never engaged", workers)
		}
		if res.Score != ref.Score {
			t.Errorf("SigWorkers=%d: score %.17g, sequential %.17g", workers, res.Score, ref.Score)
		}
		if len(res.Pairs) != len(ref.Pairs) {
			t.Errorf("SigWorkers=%d: %d pairs, sequential %d", workers, len(res.Pairs), len(ref.Pairs))
		}
		if res.Stats.SigMatches != ref.Stats.SigMatches ||
			res.Stats.CompatMatches != ref.Stats.CompatMatches ||
			res.Stats.ScoreAfterSig != ref.Stats.ScoreAfterSig ||
			res.Stats.PairAttempts != ref.Stats.PairAttempts ||
			res.Stats.PairRejects != ref.Stats.PairRejects ||
			res.Stats.ScoreEvals != ref.Stats.ScoreEvals {
			t.Errorf("SigWorkers=%d: stats diverge from sequential run:\n  got  %+v\n  want %+v",
				workers, res.Stats, ref.Stats)
		}
	}
}

// TestDiscoveryIdentityGoldenScores pins that mapping discovery is inert
// when the schemas already agree: with DiscoverMapping set, every golden
// score must reproduce bit-identically and no mapping may be reported —
// discovery only engages on a schema mismatch.
func TestDiscoveryIdentityGoldenScores(t *testing.T) {
	for _, tc := range goldenSignature {
		base, err := datasets.Generate(tc.name, tc.rows, tc.seed)
		if err != nil {
			t.Fatal(err)
		}
		n := tc.noise
		n.Seed = tc.seed
		sc := generator.Make(base, n)
		res, err := instcmp.Compare(sc.Source, sc.Target, &instcmp.Options{
			Mode:            tc.mode,
			Lambda:          0.5,
			Algorithm:       instcmp.AlgoSignature,
			DiscoverMapping: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Score != tc.want {
			t.Errorf("%s rows=%d seed=%d mode=%v: discovery-enabled score %.17g, golden %.17g",
				tc.name, tc.rows, tc.seed, tc.mode, res.Score, tc.want)
		}
		if res.Mapping != nil {
			t.Errorf("%s seed=%d: mapping reported for identical schemas", tc.name, tc.seed)
		}
	}
}

// goldenExact holds exhaustive exact-search scores (Doct, 12 rows, CellPct
// 0.2, 1-to-1, λ = 0.5) from the string-based implementation.
var goldenExact = []struct {
	seed int64
	want float64
}{
	{1, 0.43333333333333335},
	{2, 0.44166666666666665},
	{3, 0.24166666666666667},
}

// TestExactGoldenScores pins the exact engine's score against the golden
// values across every engine variant: single-threaded and parallel, with
// and without the signature warm start. The four variants must agree
// bit-for-bit with each other and with the goldens — the warm start and
// the parallel decomposition are pure accelerations.
func TestExactGoldenScores(t *testing.T) {
	for _, tc := range goldenExact {
		base, err := datasets.Generate(datasets.Doct, 12, tc.seed)
		if err != nil {
			t.Fatal(err)
		}
		sc := generator.Make(base, generator.Noise{CellPct: 0.2, Seed: tc.seed})
		for _, workers := range []int{1, 4} {
			for _, noWarm := range []bool{false, true} {
				res, err := exact.Run(sc.Source, sc.Target, match.OneToOne,
					exact.Options{Lambda: 0.5, Workers: workers, NoWarmStart: noWarm})
				if err != nil {
					t.Fatal(err)
				}
				if !res.Exhaustive {
					t.Fatalf("seed %d workers=%d noWarm=%v: search not exhaustive",
						tc.seed, workers, noWarm)
				}
				if res.Score != tc.want {
					t.Errorf("seed %d workers=%d noWarm=%v: score %.17g, golden %.17g",
						tc.seed, workers, noWarm, res.Score, tc.want)
				}
			}
		}
	}
}

// TestCompareContextGoldenScores pins that threading a context and
// collecting the unified stats never perturbs the search: CompareContext
// with an uncancelable background context reproduces the goldens
// bit-identically for both algorithms and both worker counts.
func TestCompareContextGoldenScores(t *testing.T) {
	sigCase := goldenSignature[0]
	base, err := datasets.Generate(sigCase.name, sigCase.rows, sigCase.seed)
	if err != nil {
		t.Fatal(err)
	}
	n := sigCase.noise
	n.Seed = sigCase.seed
	sc := generator.Make(base, n)
	res, err := instcmp.CompareContext(context.Background(), sc.Source, sc.Target, &instcmp.Options{
		Mode:      sigCase.mode,
		Lambda:    0.5,
		Algorithm: instcmp.AlgoSignature,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Score != sigCase.want {
		t.Errorf("signature via context: score %.17g, golden %.17g", res.Score, sigCase.want)
	}
	if res.Stopped != "" {
		t.Errorf("uncanceled run reported Stopped = %q", res.Stopped)
	}

	for _, tc := range goldenExact {
		base, err := datasets.Generate(datasets.Doct, 12, tc.seed)
		if err != nil {
			t.Fatal(err)
		}
		sc := generator.Make(base, generator.Noise{CellPct: 0.2, Seed: tc.seed})
		for _, workers := range []int{1, 4} {
			res, err := instcmp.CompareContext(context.Background(), sc.Source, sc.Target, &instcmp.Options{
				Mode:         instcmp.OneToOne,
				Lambda:       0.5,
				Algorithm:    instcmp.AlgoExact,
				ExactWorkers: workers,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Score != tc.want {
				t.Errorf("seed %d ExactWorkers=%d via context: score %.17g, golden %.17g",
					tc.seed, workers, res.Score, tc.want)
			}
			if res.Stopped != "" {
				t.Errorf("seed %d: uncanceled run reported Stopped = %q", tc.seed, res.Stopped)
			}
			if res.Stats.Nodes == 0 || res.Stats.PairAttempts == 0 {
				t.Errorf("seed %d: stats not populated: %+v", tc.seed, res.Stats)
			}
		}
	}
}

// TestCompareGoldenAcrossExactWorkers pins the same property at the public
// API level: Compare with AlgoExact returns bit-identical scores for
// ExactWorkers 1 and 4.
func TestCompareGoldenAcrossExactWorkers(t *testing.T) {
	for _, tc := range goldenExact {
		base, err := datasets.Generate(datasets.Doct, 12, tc.seed)
		if err != nil {
			t.Fatal(err)
		}
		sc := generator.Make(base, generator.Noise{CellPct: 0.2, Seed: tc.seed})
		for _, workers := range []int{1, 4} {
			res, err := instcmp.Compare(sc.Source, sc.Target, &instcmp.Options{
				Mode:         instcmp.OneToOne,
				Lambda:       0.5,
				Algorithm:    instcmp.AlgoExact,
				ExactWorkers: workers,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Score != tc.want {
				t.Errorf("seed %d ExactWorkers=%d: score %.17g, golden %.17g",
					tc.seed, workers, res.Score, tc.want)
			}
		}
	}
}

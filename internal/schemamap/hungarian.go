package schemamap

// Hungarian-style assignment for the broader mapping search. The fast path
// only fixes mutually-best distinctive columns; whatever remains is a small
// rectangular assignment problem — at most 64 columns per side
// (match.ErrTooManyAttributes bounds arity) — solved exactly here. The
// solver is the classic O(n³) shortest-augmenting-path formulation with
// potentials (Jonker-Volgenant style), deterministic by construction: rows
// are augmented in index order and scan ties resolve to the lowest index.

// assignMax solves the maximum-weight assignment for a rows×cols similarity
// matrix sim (sim[i][j] ≥ 0). It returns match[i] = assigned column of row
// i, or -1 when rows > cols leaves row i unassigned. Weights are
// maximized; every row is assigned when rows ≤ cols (the caller drops
// low-similarity pairs afterwards).
func assignMax(sim [][]float64) []int {
	rows := len(sim)
	if rows == 0 {
		return nil
	}
	cols := len(sim[0])
	// Square the problem: pad with zero-weight dummy rows/columns, then
	// minimize cost = maxSim - sim.
	n := rows
	if cols > n {
		n = cols
	}
	maxSim := 0.0
	for i := range sim {
		for j := range sim[i] {
			if sim[i][j] > maxSim {
				maxSim = sim[i][j]
			}
		}
	}
	cost := func(i, j int) float64 {
		if i < rows && j < cols {
			return maxSim - sim[i][j]
		}
		return maxSim // dummy cell: as bad as the worst real pair
	}

	const inf = 1e18
	// Potentials and matching, 1-indexed internally (position 0 is the
	// virtual root of each augmenting search).
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	way := make([]int, n+1)
	matchCol := make([]int, n+1) // matchCol[j] = row matched to column j (0 = free)
	for i := 1; i <= n; i++ {
		matchCol[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := 0; j <= n; j++ {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := matchCol[j0]
			delta := inf
			j1 := -1
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost(i0-1, j-1) - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[matchCol[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if matchCol[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			matchCol[j0] = matchCol[j1]
			j0 = j1
		}
	}

	match := make([]int, rows)
	for i := range match {
		match[i] = -1
	}
	for j := 1; j <= n; j++ {
		i := matchCol[j]
		if i >= 1 && i <= rows && j <= cols {
			match[i-1] = j - 1
		}
	}
	return match
}

// Package schemamap discovers attribute mappings between two instances
// whose schemas have drifted apart: renamed columns, reordered columns,
// dropped columns, renamed relations. The engine proper (internal/match)
// requires both sides to share attribute names and order; the paper's
// Sec. 4 alignment recipe only covers *missing* attributes. This package
// closes the gap with a pre-matching phase: profile every column
// (uniqueness ratio under labeled nulls, null share, type hints, a MinHash
// sketch of the value set reusing internal/lakeindex's splitmix64 sketch
// machinery), anchor a mapping on mutually-best distinctive columns (the
// fast path — a column that stays near-unique even under nulls is an
// approximate key in the sense of Alatar & Sali and the most trustworthy
// anchor), and resolve the remaining columns with a Hungarian-style
// assignment on profile similarity. The discovered mapping rewrites the
// right instance into the left schema's spelling so the existing engine
// runs unchanged, and carries a confidence the caller can fold into
// results and explanations.
//
// Everything here is deterministic: profiles scan rows in schema order,
// candidate loops run over index ranges, the assignment solver breaks ties
// by index, and sketches are order-insensitive folds. Equal inputs always
// discover equal mappings.
package schemamap

import (
	"strconv"
	"strings"

	"instcmp/internal/lakeindex"
	"instcmp/internal/model"
)

// ColumnProfile summarizes one attribute of one relation: the statistics
// the mapping search compares columns by.
type ColumnProfile struct {
	// Attr is the attribute name; Index its position in the relation.
	Attr  string
	Index int
	// Rows is the relation's cardinality, NonNull the number of constant
	// cells in this column, Distinct the number of distinct constants.
	Rows, NonNull, Distinct int
	// Uniqueness is Distinct/NonNull — the approximate-key signal: a
	// column that stays near 1 even with nulls present identifies rows.
	// It is 0 for a fully-null (or empty) column.
	Uniqueness float64
	// NullShare is the fraction of cells that are labeled nulls.
	NullShare float64
	// NumericShare is the fraction of non-null cells parsing as numbers
	// (a cheap type hint).
	NumericShare float64
	// AvgLen is the mean byte length of the constant cells.
	AvgLen float64
	// Sketch is a MinHash sketch of the column's distinct constant
	// hashes; Estimate between two columns approximates the Jaccard
	// similarity of their value sets.
	Sketch *lakeindex.Sketch
}

// RelationProfile holds one relation's column profiles plus a
// relation-level sketch over the union of its columns' values, used to
// pair renamed relations.
type RelationProfile struct {
	Name  string
	Index int
	Cols  []ColumnProfile
	// Sketch summarizes every distinct constant in the relation.
	Sketch *lakeindex.Sketch
}

// maxSketchFeatures caps the distinct values folded into one column (or
// relation) sketch, bounding profiling at O(cap·K) hash work per column on
// huge instances. Distinct counting (and so uniqueness) is never capped —
// only the sketch degrades to a first-seen sample, which still estimates
// value overlap well enough to rank candidate columns.
const maxSketchFeatures = 1 << 12

// ProfileInstance profiles every relation of the instance in schema order.
func ProfileInstance(in *model.Instance) []RelationProfile {
	rels := in.Relations()
	out := make([]RelationProfile, len(rels))
	for ri, rel := range rels {
		out[ri] = profileRelation(rel, ri)
	}
	return out
}

// profileRelation computes per-column statistics in one pass over the
// relation's rows. Distinct-value hashes are collected in first-seen order
// (a slice guarded by a set), so no step depends on map iteration order.
func profileRelation(rel *model.Relation, ri int) RelationProfile {
	arity := rel.Arity()
	rp := RelationProfile{Name: rel.Name, Index: ri, Cols: make([]ColumnProfile, arity)}
	seen := make([]map[uint64]bool, arity)
	feats := make([][]uint64, arity)
	var relSeen map[uint64]bool
	var relFeats []uint64
	relSeen = make(map[uint64]bool)
	lenSum := make([]int, arity)
	numeric := make([]int, arity)
	for a := 0; a < arity; a++ {
		rp.Cols[a] = ColumnProfile{Attr: rel.Attrs[a], Index: a, Rows: len(rel.Tuples)}
		seen[a] = make(map[uint64]bool)
	}
	for ti := range rel.Tuples {
		vals := rel.Tuples[ti].Values
		for a, v := range vals {
			c := &rp.Cols[a]
			if v.IsNull() {
				continue
			}
			c.NonNull++
			raw := v.Raw()
			lenSum[a] += len(raw)
			if isNumeric(raw) {
				numeric[a]++
			}
			h := model.ValueHash(v)
			if !seen[a][h] {
				seen[a][h] = true
				if len(feats[a]) < maxSketchFeatures {
					feats[a] = append(feats[a], h)
				}
			}
			if !relSeen[h] {
				relSeen[h] = true
				if len(relFeats) < maxSketchFeatures {
					relFeats = append(relFeats, h)
				}
			}
		}
	}
	for a := 0; a < arity; a++ {
		c := &rp.Cols[a]
		c.Distinct = len(seen[a])
		if c.Rows > 0 {
			c.NullShare = float64(c.Rows-c.NonNull) / float64(c.Rows)
		}
		if c.NonNull > 0 {
			c.Uniqueness = float64(c.Distinct) / float64(c.NonNull)
			c.NumericShare = float64(numeric[a]) / float64(c.NonNull)
			c.AvgLen = float64(lenSum[a]) / float64(c.NonNull)
		}
		c.Sketch = lakeindex.NewSketch(feats[a])
	}
	rp.Sketch = lakeindex.NewSketch(relFeats)
	return rp
}

// isNumeric reports whether a constant's text parses as a number after
// trimming surrounding space.
func isNumeric(s string) bool {
	s = strings.TrimSpace(s)
	if s == "" {
		return false
	}
	_, err := strconv.ParseFloat(s, 64)
	return err == nil
}

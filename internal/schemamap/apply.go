package schemamap

import (
	"fmt"

	"instcmp/internal/model"
)

// Apply rewrites the right instance into the left schema's spelling under
// the mapping: mapped relations are renamed to their left name and their
// mapped columns renamed and reordered to the left attribute order
// (unmapped right columns follow, keeping their own names), while
// right-only relations are carried over verbatim. Tuple values and
// per-relation tuple order are preserved, so positional lookups into the
// original right instance stay valid; the returned map translates each
// rewritten relation name back to its original right name.
//
// When the mapping covers every column of every relation, the rewritten
// instance has exactly the left schema, and comparing left against it is
// bit-identical to comparing the undrifted pair. Partial mappings leave
// the leftover columns/relations for the Sec. 4 alignment recipe
// (Options.AlignSchemas) to pad.
//
// The right instance is not modified. Apply returns an error when the
// mapping does not describe the instance (stale indices or names).
func (m *Mapping) Apply(right *model.Instance) (*model.Instance, map[string]string, error) {
	rels := right.Relations()
	out := model.NewInstance()
	names := map[string]string{}
	usedRel := map[string]bool{}

	mappedRight := make([]bool, len(rels))
	for _, rp := range m.Rels {
		if rp.Right < 0 || rp.Right >= len(rels) {
			return nil, nil, fmt.Errorf("schemamap: mapping names right relation #%d, instance has %d", rp.Right, len(rels))
		}
		src := rels[rp.Right]
		if src.Name != rp.RightName {
			return nil, nil, fmt.Errorf("schemamap: mapping expects relation %q at #%d, found %q", rp.RightName, rp.Right, src.Name)
		}
		mappedRight[rp.Right] = true

		// Output columns: mapped columns in left order (Attrs is sorted by
		// left position), then unmapped right columns.
		type colSrc struct {
			from int
			name string
		}
		cols := make([]colSrc, 0, len(rp.Attrs)+len(rp.RightUnmapped))
		usedAttr := map[string]bool{}
		for _, ap := range rp.Attrs {
			if ap.Right < 0 || ap.Right >= src.Arity() || src.Attrs[ap.Right] != ap.RightAttr {
				return nil, nil, fmt.Errorf("schemamap: mapping expects attribute %q at %s#%d", ap.RightAttr, src.Name, ap.Right)
			}
			cols = append(cols, colSrc{from: ap.Right, name: uniquify(ap.LeftAttr, usedAttr)})
		}
		for _, j := range rp.RightUnmapped {
			if j < 0 || j >= src.Arity() {
				return nil, nil, fmt.Errorf("schemamap: mapping names unmapped attribute #%d of %s, arity is %d", j, src.Name, src.Arity())
			}
			cols = append(cols, colSrc{from: j, name: uniquify(src.Attrs[j], usedAttr)})
		}

		name := uniquify(rp.LeftName, usedRel)
		attrs := make([]string, len(cols))
		for k, c := range cols {
			attrs[k] = c.name
		}
		out.AddRelation(name, attrs...)
		names[name] = src.Name
		for ti := range src.Tuples {
			vals := make([]model.Value, len(cols))
			for k, c := range cols {
				vals[k] = src.Tuples[ti].Values[c.from]
			}
			out.Append(name, vals...)
		}
	}

	// Right-only relations ride along unchanged; schema alignment will pad
	// the left side for them (or the caller compares them as extra weight).
	for ri, src := range rels {
		if mappedRight[ri] {
			continue
		}
		name := uniquify(src.Name, usedRel)
		out.AddRelation(name, append([]string(nil), src.Attrs...)...)
		names[name] = src.Name
		for ti := range src.Tuples {
			out.Append(name, append([]model.Value(nil), src.Tuples[ti].Values...)...)
		}
	}
	return out, names, nil
}

// uniquify reserves name in used, suffixing "·" until it is free. Clashes
// are only possible with adversarial mappings (Discover's name-equal pass
// makes them unreachable), but Apply must never build an invalid schema.
func uniquify(name string, used map[string]bool) string {
	for used[name] {
		name += "·"
	}
	used[name] = true
	return name
}

package schemamap

import (
	"instcmp/internal/model"
	"instcmp/internal/strsim"
)

// Options tunes mapping discovery. The zero value is valid and means the
// defaults documented per field.
type Options struct {
	// MinDistinctiveUniqueness is the uniqueness ratio a column needs to
	// count as distinctive for the fast path (default 0.8). Distinctive
	// columns behave like approximate keys: their value sets identify
	// rows, so a strong value-overlap between two of them is the most
	// trustworthy mapping anchor.
	MinDistinctiveUniqueness float64
	// MinFastPathSim is the similarity floor for fixing a mutually-best
	// distinctive pair without running the assignment (default 0.5).
	MinFastPathSim float64
	// MinAttrSim is the floor under which an assigned column pair is
	// discarded and both columns stay unmapped (default 0.2); unmapped
	// columns are later padded by schema alignment, so a bad forced match
	// is strictly worse than no match.
	MinAttrSim float64
}

func (o Options) minDistinctive() float64 {
	if o.MinDistinctiveUniqueness == 0 {
		return 0.8
	}
	return o.MinDistinctiveUniqueness
}

func (o Options) minFastPath() float64 {
	if o.MinFastPathSim == 0 {
		return 0.5
	}
	return o.MinFastPathSim
}

func (o Options) minAttrSim() float64 {
	if o.MinAttrSim == 0 {
		return 0.2
	}
	return o.MinAttrSim
}

// Match methods, in decreasing order of trust.
const (
	// MethodName: the attribute names are equal on both sides.
	MethodName = "name"
	// MethodFastPath: mutually-best distinctive-column value overlap.
	MethodFastPath = "fast-path"
	// MethodAssignment: resolved by the Hungarian assignment fallback.
	MethodAssignment = "assignment"
)

// AttrPair is one discovered attribute correspondence within a relation
// pair.
type AttrPair struct {
	// Left and Right are attribute positions; LeftAttr and RightAttr the
	// corresponding names.
	Left, Right         int
	LeftAttr, RightAttr string
	// Sim is the profile similarity in [0, 1] that justified the pair.
	Sim float64
	// Method is MethodName, MethodFastPath, or MethodAssignment.
	Method string
}

// RelPair is one discovered relation correspondence with its attribute
// mapping.
type RelPair struct {
	// Left and Right are relation positions in each instance's schema
	// order; LeftName and RightName the relation names.
	Left, Right         int
	LeftName, RightName string
	// Attrs is the attribute mapping, sorted by left position.
	Attrs []AttrPair
	// LeftUnmapped and RightUnmapped list attribute positions without a
	// counterpart (dropped or added columns).
	LeftUnmapped, RightUnmapped []int
	// Confidence is the relation's mapping confidence: the mean matched
	// similarity scaled by schema coverage.
	Confidence float64
}

// Mapping is a discovered schema mapping between two instances.
type Mapping struct {
	// Rels lists matched relations in left schema order.
	Rels []RelPair
	// LeftOnly and RightOnly name relations without a counterpart.
	LeftOnly, RightOnly []string
	// Confidence aggregates the per-relation confidences (weighted by
	// column count); 1 means every column anchored with perfect profile
	// agreement, 0 means nothing mapped.
	Confidence float64
}

// Discover profiles both instances and searches for the attribute mapping
// that best explains them. It is deterministic: equal instances always
// yield equal mappings. Neither instance is modified.
func Discover(left, right *model.Instance, opt Options) *Mapping {
	lp := ProfileInstance(left)
	rp := ProfileInstance(right)
	m := &Mapping{}

	// Relation pairing: equal names first (the common case — drift usually
	// renames columns, not tables), then leftovers greedily by
	// relation-sketch overlap, mutual-best, in left schema order.
	rightTaken := make([]bool, len(rp))
	pairs := make([][2]int, 0, len(lp))
	for li := range lp {
		for ri := range rp {
			if !rightTaken[ri] && lp[li].Name == rp[ri].Name {
				rightTaken[ri] = true
				pairs = append(pairs, [2]int{li, ri})
				break
			}
		}
	}
	paired := make([]bool, len(lp))
	for _, p := range pairs {
		paired[p[0]] = true
	}
	for li := range lp {
		if paired[li] {
			continue
		}
		best, bestSim := -1, 0.0
		for ri := range rp {
			if rightTaken[ri] {
				continue
			}
			s := lp[li].Sketch.Estimate(rp[ri].Sketch)
			if s > bestSim {
				best, bestSim = ri, s
			}
		}
		// A relation pair with no value overlap at all is not a pair.
		if best >= 0 && bestSim > 0 {
			rightTaken[best] = true
			pairs = append(pairs, [2]int{li, best})
			paired[li] = true
		}
	}
	for li := range lp {
		if !paired[li] {
			m.LeftOnly = append(m.LeftOnly, lp[li].Name)
		}
	}
	for ri := range rp {
		if !rightTaken[ri] {
			m.RightOnly = append(m.RightOnly, rp[ri].Name)
		}
	}

	// Attribute mapping per relation pair, in left schema order.
	totalCols, weighted := 0, 0.0
	for li := range lp {
		for _, p := range pairs {
			if p[0] != li {
				continue
			}
			rel := mapAttrs(&lp[p[0]], &rp[p[1]], opt)
			m.Rels = append(m.Rels, rel)
			w := len(lp[p[0]].Cols)
			if rc := len(rp[p[1]].Cols); rc > w {
				w = rc
			}
			totalCols += w
			weighted += rel.Confidence * float64(w)
		}
	}
	for li := range lp {
		if !paired[li] {
			totalCols += len(lp[li].Cols)
		}
	}
	for ri := range rp {
		if !rightTaken[ri] {
			totalCols += len(rp[ri].Cols)
		}
	}
	if totalCols > 0 {
		m.Confidence = weighted / float64(totalCols)
	}
	return m
}

// mapAttrs maps one relation pair's attributes: name-equal columns first,
// then the mutually-best distinctive fast path, then the assignment
// fallback over whatever remains.
func mapAttrs(l, r *RelationProfile, opt Options) RelPair {
	rel := RelPair{Left: l.Index, Right: r.Index, LeftName: l.Name, RightName: r.Name}
	nl, nr := len(l.Cols), len(r.Cols)
	lTaken := make([]bool, nl)
	rTaken := make([]bool, nr)
	add := func(i, j int, sim float64, method string) {
		lTaken[i], rTaken[j] = true, true
		rel.Attrs = append(rel.Attrs, AttrPair{
			Left: i, Right: j, LeftAttr: l.Cols[i].Attr, RightAttr: r.Cols[j].Attr,
			Sim: sim, Method: method,
		})
	}

	// Name-equal columns are fixed outright: drift that renames SOME
	// columns leaves the rest as exact anchors, and a spurious name
	// collision still has its real profile similarity recorded for the
	// confidence to reflect.
	for i := range l.Cols {
		for j := range r.Cols {
			if !rTaken[j] && l.Cols[i].Attr == r.Cols[j].Attr {
				add(i, j, colSim(&l.Cols[i], &r.Cols[j]), MethodName)
				break
			}
		}
	}

	// Fast path: mutually-best matches between distinctive columns, by
	// value overlap. Iterate to a fixed point — fixing one pair can make
	// another pair mutually best.
	for {
		progress := false
		for i := range l.Cols {
			if lTaken[i] || !distinctive(&l.Cols[i], opt) {
				continue
			}
			bi, bs := bestFree(&l.Cols[i], r.Cols, rTaken)
			if bi < 0 || bs < opt.minFastPath() || !distinctive(&r.Cols[bi], opt) {
				continue
			}
			// Mutual: is i also the best free left column for bi?
			bj, _ := bestFree(&r.Cols[bi], l.Cols, lTaken)
			if bj == i {
				add(i, bi, bs, MethodFastPath)
				progress = true
			}
		}
		if !progress {
			break
		}
	}

	// Assignment fallback on the remaining columns.
	var lRest, rRest []int
	for i := range l.Cols {
		if !lTaken[i] {
			lRest = append(lRest, i)
		}
	}
	for j := range r.Cols {
		if !rTaken[j] {
			rRest = append(rRest, j)
		}
	}
	if len(lRest) > 0 && len(rRest) > 0 {
		sim := make([][]float64, len(lRest))
		for a, i := range lRest {
			sim[a] = make([]float64, len(rRest))
			for b, j := range rRest {
				sim[a][b] = colSim(&l.Cols[i], &r.Cols[j])
			}
		}
		match := assignMax(sim)
		for a, b := range match {
			if b < 0 {
				continue
			}
			if s := sim[a][b]; s >= opt.minAttrSim() {
				add(lRest[a], rRest[b], s, MethodAssignment)
			}
		}
	}

	sortAttrPairs(rel.Attrs)
	for i := range l.Cols {
		if !lTaken[i] {
			rel.LeftUnmapped = append(rel.LeftUnmapped, i)
		}
	}
	for j := range r.Cols {
		if !rTaken[j] {
			rel.RightUnmapped = append(rel.RightUnmapped, j)
		}
	}
	// Confidence: mean matched similarity scaled by coverage of the wider
	// side, so dropped columns and weak anchors both pull it down.
	wide := nl
	if nr > wide {
		wide = nr
	}
	if wide > 0 {
		sum := 0.0
		for _, ap := range rel.Attrs {
			sum += ap.Sim
		}
		rel.Confidence = sum / float64(wide)
	}
	return rel
}

// sortAttrPairs orders a relation's attribute pairs by left position.
func sortAttrPairs(ps []AttrPair) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j].Left < ps[j-1].Left; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

// distinctive reports whether a column qualifies as a fast-path anchor: a
// near-unique, mostly non-null column — an approximate key under nulls.
func distinctive(c *ColumnProfile, opt Options) bool {
	return c.NonNull > 0 && c.Uniqueness >= opt.minDistinctive() && c.NullShare <= 0.5
}

// bestFree returns the free column of cands most similar to c (lowest
// index wins ties), with its similarity.
func bestFree(c *ColumnProfile, cands []ColumnProfile, taken []bool) (int, float64) {
	best, bestSim := -1, 0.0
	for j := range cands {
		if taken[j] {
			continue
		}
		if s := colSim(c, &cands[j]); s > bestSim {
			best, bestSim = j, s
		}
	}
	return best, bestSim
}

// Column-similarity weights. Value overlap dominates — it is the only
// signal that survives arbitrary renames — with the scalar profile
// statistics and the (possibly drifted) names as tie-breakers.
const (
	wValues  = 0.55
	wUniq    = 0.15
	wNull    = 0.10
	wNumeric = 0.10
	wName    = 0.10
)

// colSim scores two column profiles in [0, 1].
func colSim(a, b *ColumnProfile) float64 {
	// Value overlap: MinHash estimate of the Jaccard similarity of the
	// two value sets. Two fully-null columns sketch identically (both
	// empty), which is right: they constrain nothing and may map.
	val := a.Sketch.Estimate(b.Sketch)
	s := wValues*val +
		wUniq*(1-abs(a.Uniqueness-b.Uniqueness)) +
		wNull*(1-abs(a.NullShare-b.NullShare)) +
		wNumeric*(1-abs(a.NumericShare-b.NumericShare)) +
		wName*strsim.Levenshtein(a.Attr, b.Attr)
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

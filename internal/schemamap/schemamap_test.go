package schemamap

import (
	"fmt"
	"reflect"
	"testing"

	"instcmp/internal/model"
)

// people builds a small instance with columns of very different character:
// a near-unique id, a near-unique email, a low-cardinality city, a numeric
// age, and a mostly-null note.
func people() *model.Instance {
	in := model.NewInstance()
	in.AddRelation("people", "id", "email", "city", "age", "note")
	cities := []string{"oslo", "bergen", "oslo", "oslo", "bergen", "tromsø", "oslo", "bergen"}
	for i := 0; i < 8; i++ {
		note := model.Value(in.FreshNull("n"))
		if i == 0 {
			note = model.Const("vip")
		}
		in.Append("people",
			model.Const(fmt.Sprintf("id-%d", i)),
			model.Const(fmt.Sprintf("user%d@example.com", i)),
			model.Const(cities[i]),
			model.Const(fmt.Sprintf("%d", 20+i%5)),
			note,
		)
	}
	return in
}

func TestProfileRelation(t *testing.T) {
	p := ProfileInstance(people())
	if len(p) != 1 || len(p[0].Cols) != 5 {
		t.Fatalf("profile shape = %d rels / %v cols", len(p), len(p[0].Cols))
	}
	id := p[0].Cols[0]
	if id.Attr != "id" || id.Rows != 8 || id.NonNull != 8 || id.Distinct != 8 {
		t.Errorf("id profile = %+v", id)
	}
	if id.Uniqueness != 1 || id.NullShare != 0 {
		t.Errorf("id uniqueness=%v nullShare=%v", id.Uniqueness, id.NullShare)
	}
	city := p[0].Cols[2]
	if city.Distinct != 3 || city.Uniqueness >= 0.5 {
		t.Errorf("city profile = %+v", city)
	}
	age := p[0].Cols[3]
	if age.NumericShare != 1 {
		t.Errorf("age numericShare = %v", age.NumericShare)
	}
	note := p[0].Cols[4]
	if note.NonNull != 1 || note.NullShare != 7.0/8 {
		t.Errorf("note profile = %+v", note)
	}
	if got := p[0].Cols[0].Sketch.Estimate(p[0].Cols[0].Sketch); got != 1 {
		t.Errorf("self estimate = %v", got)
	}
}

// drift renames and reorders people's columns without touching the data.
func driftPeople(in *model.Instance) *model.Instance {
	out := model.NewInstance()
	// Reordered: note, city, id, age, email — and every name rewritten.
	out.AddRelation("people", "remark", "town", "pk", "years", "mail")
	src := in.Relations()[0]
	for _, tu := range src.Tuples {
		out.Append("people", tu.Values[4], tu.Values[2], tu.Values[0], tu.Values[3], tu.Values[1])
	}
	return out
}

func TestDiscoverRenameReorder(t *testing.T) {
	l := people()
	r := driftPeople(l)
	m := Discover(l, r, Options{})
	if len(m.Rels) != 1 || len(m.LeftOnly)+len(m.RightOnly) != 0 {
		t.Fatalf("relation pairing = %+v", m)
	}
	rel := m.Rels[0]
	want := map[string]string{"id": "pk", "email": "mail", "city": "town", "age": "years", "note": "remark"}
	if len(rel.Attrs) != len(want) {
		t.Fatalf("attr pairs = %+v", rel.Attrs)
	}
	for _, ap := range rel.Attrs {
		if want[ap.LeftAttr] != ap.RightAttr {
			t.Errorf("mapped %q -> %q, want %q", ap.LeftAttr, ap.RightAttr, want[ap.LeftAttr])
		}
	}
	if len(rel.LeftUnmapped)+len(rel.RightUnmapped) != 0 {
		t.Errorf("unmapped = %v / %v", rel.LeftUnmapped, rel.RightUnmapped)
	}
	if m.Confidence <= 0 || m.Confidence > 1 {
		t.Errorf("confidence = %v", m.Confidence)
	}

	// A complete mapping's Apply reconstructs the left schema exactly, and
	// the values land back in their pre-drift columns.
	rewritten, names, err := m.Apply(r)
	if err != nil {
		t.Fatal(err)
	}
	if !model.SameSchema(l, rewritten) {
		t.Fatalf("rewritten schema differs:\n%s\nvs\n%s", rewritten, l)
	}
	if names["people"] != "people" {
		t.Errorf("name translation = %v", names)
	}
	lt := l.Relations()[0].Tuples
	rt := rewritten.Relations()[0].Tuples
	for i := range lt {
		if !reflect.DeepEqual(lt[i].Values, rt[i].Values) {
			t.Errorf("row %d: %v vs %v", i, lt[i].Values, rt[i].Values)
		}
	}
}

func TestDiscoverDeterministic(t *testing.T) {
	l := people()
	r := driftPeople(l)
	a := Discover(l, r, Options{})
	b := Discover(l, r, Options{})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two discoveries differ:\n%+v\n%+v", a, b)
	}
}

func TestDiscoverDropColumn(t *testing.T) {
	l := people()
	r, err := driftPeople(l).DropColumn("people", "town")
	if err != nil {
		t.Fatal(err)
	}
	m := Discover(l, r, Options{})
	rel := m.Rels[0]
	if len(rel.LeftUnmapped) != 1 || l.Relations()[0].Attrs[rel.LeftUnmapped[0]] != "city" {
		t.Fatalf("dropped column not detected: %+v", rel)
	}
	for _, ap := range rel.Attrs {
		if ap.LeftAttr == "city" {
			t.Fatalf("city mapped to %q despite drop", ap.RightAttr)
		}
	}
	full := Discover(l, driftPeople(l), Options{})
	if m.Confidence >= full.Confidence {
		t.Errorf("confidence did not degrade: drop %v vs full %v", m.Confidence, full.Confidence)
	}
}

func TestDiscoverRenamedRelation(t *testing.T) {
	l := people()
	r := driftPeople(l)
	// Rename the relation too: pairing must fall back to the sketch.
	r2 := model.NewInstance()
	src := r.Relations()[0]
	r2.AddRelation("persons", src.Attrs...)
	for _, tu := range src.Tuples {
		r2.Append("persons", tu.Values...)
	}
	m := Discover(l, r2, Options{})
	if len(m.Rels) != 1 || m.Rels[0].RightName != "persons" {
		t.Fatalf("relation pairing = %+v", m)
	}
	rewritten, names, err := m.Apply(r2)
	if err != nil {
		t.Fatal(err)
	}
	if !model.SameSchema(l, rewritten) {
		t.Fatalf("rewritten schema differs")
	}
	if names["people"] != "persons" {
		t.Errorf("name translation = %v", names)
	}
}

func TestDiscoverDisjointRelations(t *testing.T) {
	l := model.NewInstance()
	l.AddRelation("a", "x")
	l.Append("a", model.Const("1"))
	r := model.NewInstance()
	r.AddRelation("b", "y")
	r.Append("b", model.Const("completely-different"))
	m := Discover(l, r, Options{})
	if len(m.Rels) != 0 {
		t.Fatalf("disjoint instances paired: %+v", m.Rels)
	}
	if !reflect.DeepEqual(m.LeftOnly, []string{"a"}) || !reflect.DeepEqual(m.RightOnly, []string{"b"}) {
		t.Fatalf("only-lists = %v / %v", m.LeftOnly, m.RightOnly)
	}
	if m.Confidence != 0 {
		t.Fatalf("confidence = %v", m.Confidence)
	}
}

func TestApplyStaleMapping(t *testing.T) {
	l := people()
	r := driftPeople(l)
	m := Discover(l, r, Options{})
	other := model.NewInstance()
	other.AddRelation("elsewhere", "z")
	if _, _, err := m.Apply(other); err == nil {
		t.Fatal("Apply on a foreign instance succeeded")
	}
	dropped, _ := r.DropColumn("people", "years")
	if _, _, err := m.Apply(dropped); err == nil {
		t.Fatal("Apply with stale attribute positions succeeded")
	}
}

func TestAssignMax(t *testing.T) {
	cases := []struct {
		sim  [][]float64
		want []int
	}{
		// Diagonal is optimal.
		{[][]float64{{0.9, 0.1}, {0.1, 0.9}}, []int{0, 1}},
		// Greedy would take (0,0); optimum crosses.
		{[][]float64{{0.9, 0.8}, {0.85, 0.1}}, []int{1, 0}},
		// Rectangular: more columns than rows.
		{[][]float64{{0.1, 0.9, 0.2}}, []int{1}},
		// More rows than columns: one row stays unassigned.
		{[][]float64{{0.9}, {0.8}}, []int{0, -1}},
		// All-zero similarities still assign (caller filters by floor).
		{[][]float64{{0, 0}, {0, 0}}, []int{0, 1}},
	}
	for i, c := range cases {
		if got := assignMax(c.sim); !reflect.DeepEqual(got, c.want) {
			t.Errorf("case %d: assignMax = %v, want %v", i, got, c.want)
		}
	}
	if got := assignMax(nil); got != nil {
		t.Errorf("assignMax(nil) = %v", got)
	}
}

func TestUniquify(t *testing.T) {
	used := map[string]bool{}
	if got := uniquify("a", used); got != "a" {
		t.Fatalf("first = %q", got)
	}
	if got := uniquify("a", used); got != "a·" {
		t.Fatalf("second = %q", got)
	}
	if got := uniquify("a", used); got != "a··" {
		t.Fatalf("third = %q", got)
	}
}

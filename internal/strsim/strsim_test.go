package strsim

import (
	"math"
	"testing"
	"testing/quick"
)

var metrics = map[string]Func{
	"Levenshtein":    Levenshtein,
	"Jaro":           Jaro,
	"JaroWinkler":    JaroWinkler,
	"TrigramJaccard": TrigramJaccard,
}

func TestMetricAxioms(t *testing.T) {
	for name, f := range metrics {
		prop := func(a, b string) bool {
			s := f(a, b)
			if s < 0 || s > 1+1e-12 {
				t.Logf("%s(%q, %q) = %v out of range", name, a, b, s)
				return false
			}
			if math.Abs(s-f(b, a)) > 1e-12 {
				t.Logf("%s not symmetric for %q, %q", name, a, b)
				return false
			}
			if f(a, a) != 1 {
				t.Logf("%s(%q, %q) != 1", name, a, a)
				return false
			}
			return true
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestLevenshteinKnown(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"kitten", "sitting", 1 - 3.0/7},
		{"abc", "abc", 1},
		{"abc", "", 0},
		{"", "", 1},
		{"ab", "ba", 0},       // two substitutions over length 2
		{"flaw", "lawn", 0.5}, // distance 2 over length 4
	}
	for _, tc := range cases {
		if got := Levenshtein(tc.a, tc.b); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Levenshtein(%q, %q) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestJaroWinklerKnown(t *testing.T) {
	// The classic MARTHA/MARHTA example: Jaro 0.944, JW 0.961.
	if got := Jaro("MARTHA", "MARHTA"); math.Abs(got-0.9444444) > 1e-4 {
		t.Errorf("Jaro(MARTHA, MARHTA) = %v", got)
	}
	if got := JaroWinkler("MARTHA", "MARHTA"); math.Abs(got-0.9611111) > 1e-4 {
		t.Errorf("JaroWinkler(MARTHA, MARHTA) = %v", got)
	}
	if got := Jaro("abc", "xyz"); got != 0 {
		t.Errorf("Jaro of disjoint strings = %v, want 0", got)
	}
	// Winkler boost rewards shared prefixes.
	if JaroWinkler("prefix_aaa", "prefix_bbb") <= Jaro("prefix_aaa", "prefix_bbb") {
		t.Error("JaroWinkler should exceed Jaro on shared prefixes")
	}
}

func TestTrigramJaccard(t *testing.T) {
	if got := TrigramJaccard("hello", "hello"); got != 1 {
		t.Errorf("equal strings = %v", got)
	}
	if got := TrigramJaccard("abcdef", "uvwxyz"); got != 0 {
		t.Errorf("disjoint strings = %v", got)
	}
	near := TrigramJaccard("conference", "conferences")
	far := TrigramJaccard("conference", "confusion")
	if !(near > far && far >= 0) {
		t.Errorf("trigram ordering broken: near=%v far=%v", near, far)
	}
}

func TestThresholded(t *testing.T) {
	f := Thresholded(Levenshtein, 0.8)
	if got := f("same", "same"); got != 1 {
		t.Errorf("thresholded equal = %v", got)
	}
	if got := f("completely", "different!"); got != 0 {
		t.Errorf("thresholded far = %v, want 0", got)
	}
	// Values at or above the threshold pass through unchanged.
	raw := Levenshtein("versions", "version")
	if raw < 0.8 {
		t.Fatalf("fixture too dissimilar: %v", raw)
	}
	if got := f("versions", "version"); got != raw {
		t.Errorf("thresholded near = %v, want %v", got, raw)
	}
}

func TestUnicodeHandling(t *testing.T) {
	// Rune-based distances: one substitution in a 4-rune string.
	if got := Levenshtein("ünïco", "ünico"); math.Abs(got-0.8) > 1e-9 {
		t.Errorf("unicode Levenshtein = %v, want 0.8", got)
	}
	if Jaro("héllo", "héllo") != 1 {
		t.Error("unicode Jaro identity broken")
	}
}

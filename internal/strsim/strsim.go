// Package strsim provides string-similarity metrics for the fine-grained
// constant comparison the paper names as future work (Sec. 9): instead of
// scoring two different constants 0, a partial match can credit them with
// their textual similarity. All metrics return values in [0, 1] with 1 for
// equal strings, and are symmetric.
package strsim

import "unicode/utf8"

// Func is a normalized string-similarity function: symmetric, in [0, 1],
// and 1 exactly for equal strings.
type Func func(a, b string) float64

// Levenshtein returns 1 - editDistance(a, b) / max(len(a), len(b)), the
// normalized edit-distance similarity (distance counted in runes).
func Levenshtein(a, b string) float64 {
	if a == b {
		return 1
	}
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 || lb == 0 {
		return 0
	}
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	maxLen := la
	if lb > maxLen {
		maxLen = lb
	}
	return 1 - float64(prev[lb])/float64(maxLen)
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// Jaro returns the Jaro similarity of two strings.
func Jaro(a, b string) float64 {
	if a == b {
		return 1
	}
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 || lb == 0 {
		return 0
	}
	window := max2(la, lb)/2 - 1
	if window < 0 {
		window = 0
	}
	matchA := make([]bool, la)
	matchB := make([]bool, lb)
	matches := 0
	for i := range ra {
		lo, hi := i-window, i+window+1
		if lo < 0 {
			lo = 0
		}
		if hi > lb {
			hi = lb
		}
		for j := lo; j < hi; j++ {
			if !matchB[j] && ra[i] == rb[j] {
				matchA[i], matchB[j] = true, true
				matches++
				break
			}
		}
	}
	if matches == 0 {
		return 0
	}
	// Count transpositions among matched characters.
	transpositions := 0
	j := 0
	for i := range ra {
		if !matchA[i] {
			continue
		}
		for !matchB[j] {
			j++
		}
		if ra[i] != rb[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	return (m/float64(la) + m/float64(lb) + (m-float64(transpositions)/2)/m) / 3
}

// JaroWinkler boosts Jaro similarity for strings sharing a prefix (up to 4
// runes, scaling factor 0.1), the classic record-linkage metric.
func JaroWinkler(a, b string) float64 {
	j := Jaro(a, b)
	if j == 0 {
		return 0
	}
	prefix := 0
	ra, rb := []rune(a), []rune(b)
	for prefix < len(ra) && prefix < len(rb) && prefix < 4 && ra[prefix] == rb[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

// TrigramJaccard returns the Jaccard similarity of the strings' rune
// trigram sets (strings shorter than 3 runes compare by equality of their
// padded forms).
func TrigramJaccard(a, b string) float64 {
	if a == b {
		return 1
	}
	ta, tb := trigrams(a), trigrams(b)
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	inter := 0
	for g := range ta {
		if tb[g] {
			inter++
		}
	}
	union := len(ta) + len(tb) - inter
	return float64(inter) / float64(union)
}

func trigrams(s string) map[string]bool {
	if utf8.RuneCountInString(s) == 0 {
		return nil
	}
	padded := "\x01\x01" + s + "\x02\x02"
	rs := []rune(padded)
	out := make(map[string]bool, len(rs))
	for i := 0; i+3 <= len(rs); i++ {
		out[string(rs[i:i+3])] = true
	}
	return out
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Thresholded wraps a metric so values below the threshold drop to 0 —
// useful to keep vaguely similar constants from matching at all.
func Thresholded(f Func, threshold float64) Func {
	return func(a, b string) float64 {
		s := f(a, b)
		if s < threshold {
			return 0
		}
		return s
	}
}

// Package score implements the scoring of instance matches from Section 5
// of the paper: cell scores (Def. 5.5 with the non-injectivity measure ⊓ of
// Eq. 6 and the null-to-constant penalty λ), tuple scores (Def. 5.2), and
// the normalized instance-match score (Def. 5.3).
//
// Scoring runs on the comparison's integer-coded representation: cells are
// compared by dense ValueID (equal constants are equal IDs), ⊓ comes from
// the ID-indexed union-find, and per-tuple accumulation uses flat arrays
// instead of Ref-keyed maps. The Value-based Cell/CellP entry points remain
// for callers outside the coded world.
package score

import (
	"sync"
	"sync/atomic"

	"instcmp/internal/match"
	"instcmp/internal/model"
	"instcmp/internal/unify"
)

// DefaultLambda is the default penalty for mapping a labeled null to a
// constant. The paper requires 0 ≤ λ < 1; 0.5 weighs a null-constant
// agreement as half a constant-constant agreement.
const DefaultLambda = 0.5

// Params extends the scoring function for the paper's Sec. 9 extension:
// besides the λ penalty, an optional constant-similarity function gives
// partial credit to matched cells holding different constants (only
// partial matches, Sec. 6.3, ever contain such cells; complete matches
// score them 0 regardless).
type Params struct {
	// Lambda is the null-to-constant penalty of Def. 5.5.
	Lambda float64
	// ConstSim scores two distinct constants in [0, 1); nil means 0
	// (the paper's base measure).
	ConstSim func(a, b string) float64
}

// Cell returns score(M, t, t', A) for the A-th attribute of a matched pair,
// per Def. 5.5:
//
//	0                  if h_l(t.A) ≠ h_r(t'.A)
//	1                  if both cells are equal constants
//	2 / (⊓l + ⊓r)      if both cells are nulls equated by the match
//	2λ / (⊓l + ⊓r)     if a null is matched against a constant
//
// where ⊓ of a constant is 1 and ⊓ of a null is the number of same-side
// nulls its value mapping collapses together (Eq. 6).
func Cell(u *unify.Unifier, lv, rv model.Value, lambda float64) float64 {
	return CellP(u, lv, rv, Params{Lambda: lambda})
}

// CellP is Cell with full scoring parameters: unequal constants earn their
// ConstSim similarity instead of 0 when one is configured.
func CellP(u *unify.Unifier, lv, rv model.Value, p Params) float64 {
	in := u.Interner()
	return CellIDP(u, in.Intern(lv), in.Intern(rv), p)
}

// CellIDP is the coded-cell form of CellP: the hot path of all pair scoring.
// Equal constants are equal IDs; the interner is consulted for raw strings
// only on the rare differing-constants-with-ConstSim branch.
func CellIDP(u *unify.Unifier, lv, rv model.ValueID, p Params) float64 {
	ln, rn := u.IsNullID(lv), u.IsNullID(rv)
	if !ln && !rn {
		if lv == rv {
			return 1
		}
		if p.ConstSim != nil {
			return p.ConstSim(u.Raw(lv), u.Raw(rv))
		}
		return 0
	}
	if !u.SameClassID(lv, rv) {
		return 0
	}
	den := float64(u.SideCountID(lv, unify.Left) + u.SideCountID(rv, unify.Right))
	if ln && rn {
		return 2 / den
	}
	return 2 * p.Lambda / den
}

// PairScore returns score(M, t, t'): the sum of cell scores over the
// relation's attributes.
func PairScore(e *match.Env, p match.Pair, lambda float64) float64 {
	return PairScoreP(e, p, Params{Lambda: lambda})
}

// PairScoreP is PairScore with full scoring parameters.
func PairScoreP(e *match.Env, pair match.Pair, p Params) float64 {
	e.Stats.ScoreEvals++
	return pairScoreRaw(e, pair, p)
}

// pairScoreRaw is PairScoreP without the stats update: the parallel
// scoring fan-out counts its evaluations in one batch on the caller, so
// its workers must not write the shared counter. Everything it reads (the
// coded rows, the unifier after a Sync) is immutable during scoring.
func pairScoreRaw(e *match.Env, pair match.Pair, p Params) float64 {
	lrow, rrow := e.LeftRow(pair.L), e.RightRow(pair.R)
	s := 0.0
	for i := range lrow {
		s += CellIDP(e.U, lrow[i], rrow[i], p)
	}
	return s
}

// TupleScores returns the Def. 5.2 tuple scores summed over all left tuples
// and all right tuples: each matched tuple contributes the average pair
// score over its image, unmatched tuples contribute 0.
func TupleScores(e *match.Env, lambda float64) (left, right float64) {
	return TupleScoresP(e, Params{Lambda: lambda})
}

// TupleScoresP is TupleScores with full scoring parameters. Accumulation is
// indexed by flattened tuple position, and summation follows the tuple
// mapping's insertion order, so equal matches always yield bit-identical
// scores (no map-iteration nondeterminism).
func TupleScoresP(e *match.Env, params Params) (left, right float64) {
	// Pair scores are symmetric in the pair, so compute each once and
	// credit both endpoints' averages.
	lsum := make([]float64, e.NumLeftTuples())
	rsum := make([]float64, e.NumRightTuples())
	lcnt := make([]int32, e.NumLeftTuples())
	rcnt := make([]int32, e.NumRightTuples())
	var lorder, rorder []int32
	for _, p := range e.Pairs() {
		s := PairScoreP(e, p, params)
		fl, fr := e.FlatL(p.L), e.FlatR(p.R)
		if lcnt[fl] == 0 {
			lorder = append(lorder, int32(fl))
		}
		lsum[fl] += s
		lcnt[fl]++
		if rcnt[fr] == 0 {
			rorder = append(rorder, int32(fr))
		}
		rsum[fr] += s
		rcnt[fr]++
	}
	for _, fl := range lorder {
		left += lsum[fl] / float64(lcnt[fl])
	}
	for _, fr := range rorder {
		right += rsum[fr] / float64(rcnt[fr])
	}
	return left, right
}

// Match returns score(M) per Def. 5.3: the tuple scores of both sides
// normalized by size(I) + size(I'). Two empty instances score 1 (they are
// trivially isomorphic).
func Match(e *match.Env, lambda float64) float64 {
	return MatchP(e, Params{Lambda: lambda})
}

// MatchP is Match with full scoring parameters.
func MatchP(e *match.Env, params Params) float64 {
	return MatchPW(e, params, 1)
}

// MatchPW is MatchP with a parallel pair-scoring fan-out across workers
// (<= 1 means sequential). Pair scores are independent of one another —
// scoring only reads the frozen match and unifier — so workers fill a
// per-pair score array and the fold runs in the exact sequential
// accumulation order. The result is bit-identical to MatchP for every
// worker count.
func MatchPW(e *match.Env, params Params, workers int) float64 {
	den := float64(e.Left.Size() + e.Right.Size())
	if den == 0 {
		return 1
	}
	l, r := TupleScoresPW(e, params, workers)
	return (l + r) / den
}

// minParallelPairs gates parallel tuple scoring: below this many matched
// pairs the fan-out costs more than the scoring it splits.
const minParallelPairs = 2048

// scoreBlockPairs is the work unit of the parallel scoring fan-out.
const scoreBlockPairs = 512

// TupleScoresPW is TupleScoresP with a parallel pair-scoring fan-out
// across workers (<= 1 means sequential).
func TupleScoresPW(e *match.Env, params Params, workers int) (left, right float64) {
	pairs := e.Pairs()
	if workers <= 1 || len(pairs) < minParallelPairs {
		return TupleScoresP(e, params)
	}
	// Grow the unifier's lazily-sized arrays up front so the workers'
	// reads never observe a growth (comparisons never intern mid-run, so
	// this is a no-op in practice).
	e.U.Sync()
	scores := make([]float64, len(pairs))
	nBlocks := (len(pairs) + scoreBlockPairs - 1) / scoreBlockPairs
	if workers > nBlocks {
		workers = nBlocks
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				b := int(next.Add(1)) - 1
				if b >= nBlocks {
					return
				}
				end := min((b+1)*scoreBlockPairs, len(pairs))
				for i := b * scoreBlockPairs; i < end; i++ {
					scores[i] = pairScoreRaw(e, pairs[i], params)
				}
			}
		}()
	}
	wg.Wait()
	// One batch update instead of the sequential path's per-pair
	// increments: the final counter is identical.
	e.Stats.ScoreEvals += int64(len(pairs))

	// Fold in the exact sequential accumulation order (the tuple
	// mapping's insertion order), mirroring TupleScoresP.
	lsum := make([]float64, e.NumLeftTuples())
	rsum := make([]float64, e.NumRightTuples())
	lcnt := make([]int32, e.NumLeftTuples())
	rcnt := make([]int32, e.NumRightTuples())
	var lorder, rorder []int32
	for i, p := range pairs {
		s := scores[i]
		fl, fr := e.FlatL(p.L), e.FlatR(p.R)
		if lcnt[fl] == 0 {
			lorder = append(lorder, int32(fl))
		}
		lsum[fl] += s
		lcnt[fl]++
		if rcnt[fr] == 0 {
			rorder = append(rorder, int32(fr))
		}
		rsum[fr] += s
		rcnt[fr]++
	}
	for _, fl := range lorder {
		left += lsum[fl] / float64(lcnt[fl])
	}
	for _, fr := range rorder {
		right += rsum[fr] / float64(rcnt[fr])
	}
	return left, right
}

package score

import (
	"math"
	"testing"
)

func TestSameScore(t *testing.T) {
	cases := []struct {
		name string
		a, b float64
		want bool
	}{
		{"identical", 0.75, 0.75, true},
		{"different", 0.75, 0.7500000001, false},
		{"zero signs differ", 0.0, math.Copysign(0, -1), false},
		{"same nan payload", math.NaN(), math.NaN(), true},
		{"inf", math.Inf(1), math.Inf(1), true},
	}
	for _, c := range cases {
		if got := SameScore(c.a, c.b); got != c.want {
			t.Errorf("%s: SameScore(%v, %v) = %v, want %v", c.name, c.a, c.b, got, c.want)
		}
	}
}

func TestLessEps(t *testing.T) {
	// LessEps(a, b, eps) must be exactly a < b-eps: the signature pass
	// goldens depend on the rewritten forms computing the same branch.
	cases := []struct {
		name string
		a, b float64
		eps  float64
		want bool
	}{
		{"clearly less", 1.0, 2.0, PerfectEps, true},
		{"equal", 2.0, 2.0, PerfectEps, false},
		{"within eps", 2.0 - 1e-10, 2.0, PerfectEps, false},
		{"just outside eps", 2.0 - 1e-8, 2.0, PerfectEps, true},
		{"gain guard noise", -1e-13, 0, GainEps, false},
		{"gain guard real loss", -1e-9, 0, GainEps, true},
	}
	for _, c := range cases {
		got := LessEps(c.a, c.b, c.eps)
		if got != c.want {
			t.Errorf("%s: LessEps(%v, %v, %v) = %v, want %v", c.name, c.a, c.b, c.eps, got, c.want)
		}
		if exact := c.a < c.b-c.eps; got != exact {
			t.Errorf("%s: LessEps diverges from inline form", c.name)
		}
	}
}

func TestNamedEpsilonsMatchHistoricalInlineValues(t *testing.T) {
	// The constants replaced inline literals in internal/signature; the
	// golden scores stay bit-identical only if they are exactly equal.
	if PerfectEps != 1e-9 {
		t.Errorf("PerfectEps = %v, want 1e-9", PerfectEps)
	}
	if GainEps != 1e-12 {
		t.Errorf("GainEps = %v, want 1e-12", GainEps)
	}
	// The gain-guard rewrite LessEps(dl+dr, 0, GainEps) relies on
	// 0-GainEps being exactly -GainEps.
	if 0-GainEps != -1e-12 {
		t.Error("0-GainEps is not exactly -1e-12")
	}
}

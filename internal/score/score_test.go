package score

import (
	"math"
	"testing"

	"instcmp/internal/match"
	"instcmp/internal/model"
)

func c(s string) model.Value { return model.Const(s) }
func n(s string) model.Value { return model.Null(s) }

const lambda = 0.4 // a non-default λ so tests catch hard-coded 0.5

func approx(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("%s = %.9f, want %.9f", name, got, want)
	}
}

// env builds a match environment and adds the given pairs, failing the test
// on any incompatibility.
func env(t *testing.T, l, r *model.Instance, pairs ...match.Pair) *match.Env {
	t.Helper()
	e, err := match.NewEnv(l, r, match.ManyToMany)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		if !e.TryAddPair(p) {
			t.Fatalf("pair %v refused", p)
		}
	}
	return e
}

func rel3(rows ...[3]model.Value) *model.Instance {
	in := model.NewInstance()
	in.AddRelation("Conf", "Id", "Year", "Org")
	for _, row := range rows {
		in.Append("Conf", row[0], row[1], row[2])
	}
	return in
}

// TestExample57 reproduces Ex. 5.7: renamed nulls, score 1.
func TestExample57(t *testing.T) {
	l := rel3(
		[3]model.Value{n("N1"), c("1975"), c("VLDB End.")},
		[3]model.Value{n("N2"), c("1976"), c("VLDB End.")},
	)
	r := rel3(
		[3]model.Value{n("Na"), c("1975"), c("VLDB End.")},
		[3]model.Value{n("Nb"), c("1976"), c("VLDB End.")},
	)
	e := env(t, l, r,
		match.Pair{L: match.Ref{Rel: 0, Idx: 0}, R: match.Ref{Rel: 0, Idx: 0}},
		match.Pair{L: match.Ref{Rel: 0, Idx: 1}, R: match.Ref{Rel: 0, Idx: 1}},
	)
	approx(t, "Ex 5.7 score", Match(e, lambda), 1)
}

// TestExample58 reproduces Ex. 5.8: a constant approximated by a null on
// the right; score (8+4λ)/12.
func TestExample58(t *testing.T) {
	l := rel3(
		[3]model.Value{n("N1"), c("1975"), c("VLDB End.")},
		[3]model.Value{n("N2"), c("1976"), c("VLDB End.")},
	)
	r := rel3(
		[3]model.Value{n("Na"), c("1975"), n("V1")},
		[3]model.Value{n("Nb"), c("1976"), n("V1")},
	)
	e := env(t, l, r,
		match.Pair{L: match.Ref{Rel: 0, Idx: 0}, R: match.Ref{Rel: 0, Idx: 0}},
		match.Pair{L: match.Ref{Rel: 0, Idx: 1}, R: match.Ref{Rel: 0, Idx: 1}},
	)
	approx(t, "Ex 5.8 score", Match(e, lambda), (8+4*lambda)/12)
}

// TestExample59 reproduces Ex. 5.9 / Fig. 6 (with Sec. 6.2's reading of t5,
// see DESIGN.md): score (12+4λ)/24.
func TestExample59(t *testing.T) {
	l := model.NewInstance()
	l.AddRelation("Conf", "Id", "Name", "Year", "Org")
	l.Append("Conf", n("N1"), c("VLDB"), c("1975"), c("VLDB End."))
	l.Append("Conf", n("N2"), c("VLDB"), n("N4"), c("VLDB End."))
	l.Append("Conf", n("N3"), c("SIGMOD"), c("1977"), c("ACM"))
	r := model.NewInstance()
	r.AddRelation("Conf", "Id", "Name", "Year", "Org")
	r.Append("Conf", n("Va"), c("VLDB"), c("1975"), c("VLDB End."))
	r.Append("Conf", n("Vb"), c("VLDB"), c("1976"), n("Vc"))
	r.Append("Conf", c("3"), c("ICDE"), c("1984"), c("IEEE"))
	e := env(t, l, r,
		match.Pair{L: match.Ref{Rel: 0, Idx: 0}, R: match.Ref{Rel: 0, Idx: 0}},
		match.Pair{L: match.Ref{Rel: 0, Idx: 1}, R: match.Ref{Rel: 0, Idx: 1}},
	)
	approx(t, "Ex 5.9 score", Match(e, lambda), (12+4*lambda)/24)
}

// TestExample510 reproduces Ex. 5.10: S vs S' scores (4+4λ)/8 and S vs S”
// scores (2+2λ)/6.
func TestExample510(t *testing.T) {
	rel2 := func(rows ...[2]model.Value) *model.Instance {
		in := model.NewInstance()
		in.AddRelation("S", "Dept", "Name")
		for _, row := range rows {
			in.Append("S", row[0], row[1])
		}
		return in
	}
	s := rel2(
		[2]model.Value{c("A"), c("Mike")},
		[2]model.Value{c("A"), c("Laure")},
	)
	s1 := rel2(
		[2]model.Value{c("A"), n("N1")},
		[2]model.Value{c("A"), n("N2")},
	)
	e := env(t, s, s1,
		match.Pair{L: match.Ref{Rel: 0, Idx: 0}, R: match.Ref{Rel: 0, Idx: 0}},
		match.Pair{L: match.Ref{Rel: 0, Idx: 1}, R: match.Ref{Rel: 0, Idx: 1}},
	)
	approx(t, "S vs S'", Match(e, lambda), (4+4*lambda)/8)

	s2 := rel2([2]model.Value{c("A"), n("N3")})
	e2 := env(t, s, s2,
		match.Pair{L: match.Ref{Rel: 0, Idx: 0}, R: match.Ref{Rel: 0, Idx: 0}},
	)
	approx(t, "S vs S''", Match(e2, lambda), (2+2*lambda)/6)
}

// TestNonInjectivityPenalty checks Eq. 6: collapsing two left nulls onto
// one right null costs 2/(2+1) per cell.
func TestNonInjectivityPenalty(t *testing.T) {
	l := model.NewInstance()
	l.AddRelation("R", "A")
	l.Append("R", n("N1"))
	l.Append("R", n("N2"))
	r := model.NewInstance()
	r.AddRelation("R", "A")
	r.Append("R", n("V"))
	r.Append("R", n("V"))
	e := env(t, l, r,
		match.Pair{L: match.Ref{Rel: 0, Idx: 0}, R: match.Ref{Rel: 0, Idx: 0}},
		match.Pair{L: match.Ref{Rel: 0, Idx: 1}, R: match.Ref{Rel: 0, Idx: 1}},
	)
	// Each cell scores 2/(⊓l+⊓r) = 2/(2+1); four tuple scores over size 4.
	approx(t, "collapse score", Match(e, lambda), 4*(2.0/3)/4)
}

// TestUnmatchedTuplesScoreZero checks Def. 5.2 for empty images.
func TestUnmatchedTuplesScoreZero(t *testing.T) {
	l := rel3([3]model.Value{c("a"), c("b"), c("c")}, [3]model.Value{c("x"), c("y"), c("z")})
	r := rel3([3]model.Value{c("a"), c("b"), c("c")})
	e := env(t, l, r,
		match.Pair{L: match.Ref{Rel: 0, Idx: 0}, R: match.Ref{Rel: 0, Idx: 0}},
	)
	approx(t, "partial score", Match(e, lambda), (3.0+3.0)/9)
}

// TestDisjointGroundInstancesScoreZero checks Eq. 4.
func TestDisjointGroundInstancesScoreZero(t *testing.T) {
	l := rel3([3]model.Value{c("a"), c("b"), c("c")})
	r := rel3([3]model.Value{c("x"), c("y"), c("z")})
	e := env(t, l, r) // no compatible pairs exist
	approx(t, "disjoint score", Match(e, lambda), 0)
}

// TestEmptyInstances: two empty instances are isomorphic, score 1.
func TestEmptyInstances(t *testing.T) {
	l := rel3()
	r := rel3()
	e := env(t, l, r)
	approx(t, "empty score", Match(e, lambda), 1)
}

// TestNonInjectiveTupleMappingAveraging checks Def. 5.2's averaging: a left
// tuple matched to a perfect and to an imperfect partner scores the mean.
func TestNonInjectiveTupleMappingAveraging(t *testing.T) {
	l := model.NewInstance()
	l.AddRelation("R", "A", "B")
	l.Append("R", c("a"), n("N1"))
	r := model.NewInstance()
	r.AddRelation("R", "A", "B")
	r.Append("R", c("a"), n("V1"))
	r.Append("R", c("a"), c("k"))
	e := env(t, l, r,
		match.Pair{L: match.Ref{Rel: 0, Idx: 0}, R: match.Ref{Rel: 0, Idx: 0}},
		match.Pair{L: match.Ref{Rel: 0, Idx: 0}, R: match.Ref{Rel: 0, Idx: 1}},
	)
	// N1 unifies with V1 and with k, so the class holds constant k:
	// pair 1: A=1, B: null-null 2/(1+1) = 1     -> 2
	// pair 2: A=1, B: null-const 2λ/(1+1) = λ   -> 1+λ
	// left tuple avg = (2 + 1 + λ)/2; right tuples: 2 and 1+λ.
	want := ((3+lambda)/2 + 2 + 1 + lambda) / (2 + 4)
	approx(t, "averaged score", Match(e, lambda), want)
}

// TestCellScoreCases exercises Cell directly.
func TestCellScoreCases(t *testing.T) {
	l := model.NewInstance()
	l.AddRelation("R", "A", "B", "C")
	l.Append("R", c("a"), n("N"), n("M"))
	r := model.NewInstance()
	r.AddRelation("R", "A", "B", "C")
	r.Append("R", c("a"), n("V"), c("k"))
	e := env(t, l, r, match.Pair{L: match.Ref{Rel: 0, Idx: 0}, R: match.Ref{Rel: 0, Idx: 0}})

	approx(t, "const-const equal", Cell(e.U, c("a"), c("a"), lambda), 1)
	approx(t, "const-const differ", Cell(e.U, c("a"), c("b"), lambda), 0)
	approx(t, "null-null matched", Cell(e.U, n("N"), n("V"), lambda), 1)
	approx(t, "null-const matched", Cell(e.U, n("M"), c("k"), lambda), lambda)
	approx(t, "null-null unrelated", Cell(e.U, n("N"), c("zzz"), lambda), 0)
}

// TestSymmetry checks Eq. 5 on an asymmetric example: swapping sides and
// inverting the mapping yields the same score.
func TestSymmetry(t *testing.T) {
	l := rel3(
		[3]model.Value{n("N1"), c("1975"), c("VLDB End.")},
		[3]model.Value{n("N2"), n("N9"), c("VLDB End.")},
		[3]model.Value{c("77"), c("1977"), c("ACM")},
	)
	r := rel3(
		[3]model.Value{n("Va"), c("1975"), n("Vx")},
		[3]model.Value{n("Vb"), c("1976"), c("VLDB End.")},
	)
	e := env(t, l, r,
		match.Pair{L: match.Ref{Rel: 0, Idx: 0}, R: match.Ref{Rel: 0, Idx: 0}},
		match.Pair{L: match.Ref{Rel: 0, Idx: 1}, R: match.Ref{Rel: 0, Idx: 1}},
	)
	fwd := Match(e, lambda)

	// Swap sides (rename nulls so sides stay disjoint in spirit; they
	// already are, swapping is enough).
	e2, err := match.NewEnv(r, l, match.ManyToMany)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []match.Pair{
		{L: match.Ref{Rel: 0, Idx: 0}, R: match.Ref{Rel: 0, Idx: 0}},
		{L: match.Ref{Rel: 0, Idx: 1}, R: match.Ref{Rel: 0, Idx: 1}},
	} {
		if !e2.TryAddPair(p) {
			t.Fatalf("mirror pair %v refused", p)
		}
	}
	approx(t, "mirror score", Match(e2, lambda), fwd)
}

// TestLambdaZeroAndRange: at λ=0 null-const matches contribute nothing.
func TestLambdaZero(t *testing.T) {
	l := rel3([3]model.Value{n("N1"), c("1975"), c("VLDB End.")})
	r := rel3([3]model.Value{c("5"), c("1975"), c("VLDB End.")})
	e := env(t, l, r, match.Pair{L: match.Ref{Rel: 0, Idx: 0}, R: match.Ref{Rel: 0, Idx: 0}})
	approx(t, "λ=0", Match(e, 0), (2.0+2.0)/6)
	approx(t, "λ=0.9", Match(e, 0.9), (2.9+2.9)/6)
}

func TestPairScoreSumsCells(t *testing.T) {
	l := rel3([3]model.Value{n("N1"), c("1975"), c("VLDB End.")})
	r := rel3([3]model.Value{n("Va"), c("1975"), n("Vx")})
	e := env(t, l, r, match.Pair{L: match.Ref{Rel: 0, Idx: 0}, R: match.Ref{Rel: 0, Idx: 0}})
	approx(t, "pair score", PairScore(e, e.Pairs()[0], lambda), 1+1+lambda)
}

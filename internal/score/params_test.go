package score

import (
	"testing"

	"instcmp/internal/match"
	"instcmp/internal/model"
	"instcmp/internal/strsim"
)

// TestCellPConstSim: with a ConstSim configured, unequal constants earn
// their similarity; everything else behaves as the base measure.
func TestCellPConstSim(t *testing.T) {
	l := model.NewInstance()
	l.AddRelation("R", "A")
	l.Append("R", n("N"))
	r := model.NewInstance()
	r.AddRelation("R", "A")
	r.Append("R", c("x"))
	e := env(t, l, r, match.Pair{L: match.Ref{Rel: 0, Idx: 0}, R: match.Ref{Rel: 0, Idx: 0}})

	p := Params{Lambda: 0.5, ConstSim: strsim.Levenshtein}
	approx(t, "equal consts", CellP(e.U, c("same"), c("same"), p), 1)
	approx(t, "similar consts", CellP(e.U, c("Boston"), c("Bostom"), p), strsim.Levenshtein("Boston", "Bostom"))
	approx(t, "disjoint consts", CellP(e.U, c("abc"), c("xyz"), p), 0)
	// Null cells are unaffected by ConstSim.
	approx(t, "null-const", CellP(e.U, n("N"), c("x"), p), 0.5)
}

// TestMatchPEqualsMatchWithoutSim: MatchP with a nil ConstSim must equal
// the base Match for any environment.
func TestMatchPEqualsMatchWithoutSim(t *testing.T) {
	l := rel3(
		[3]model.Value{n("N1"), c("1975"), c("VLDB End.")},
		[3]model.Value{n("N2"), n("N9"), c("VLDB End.")},
	)
	r := rel3(
		[3]model.Value{n("Va"), c("1975"), n("Vx")},
		[3]model.Value{n("Vb"), c("1976"), c("VLDB End.")},
	)
	e := env(t, l, r,
		match.Pair{L: match.Ref{Rel: 0, Idx: 0}, R: match.Ref{Rel: 0, Idx: 0}},
		match.Pair{L: match.Ref{Rel: 0, Idx: 1}, R: match.Ref{Rel: 0, Idx: 1}},
	)
	approx(t, "MatchP == Match", MatchP(e, Params{Lambda: lambda}), Match(e, lambda))
}

// TestScoreDeterministic: repeated scoring of the same environment is
// bit-identical (ordered summation, no map-iteration nondeterminism).
func TestScoreDeterministic(t *testing.T) {
	l := rel3(
		[3]model.Value{n("N1"), c("a"), c("b")},
		[3]model.Value{n("N2"), c("a"), c("c")},
		[3]model.Value{n("N3"), c("d"), c("e")},
	)
	r := rel3(
		[3]model.Value{n("V1"), c("a"), c("b")},
		[3]model.Value{n("V2"), c("a"), c("c")},
		[3]model.Value{n("V3"), c("d"), c("e")},
	)
	e := env(t, l, r,
		match.Pair{L: match.Ref{Rel: 0, Idx: 0}, R: match.Ref{Rel: 0, Idx: 0}},
		match.Pair{L: match.Ref{Rel: 0, Idx: 1}, R: match.Ref{Rel: 0, Idx: 1}},
		match.Pair{L: match.Ref{Rel: 0, Idx: 2}, R: match.Ref{Rel: 0, Idx: 2}},
	)
	first := Match(e, lambda)
	for i := 0; i < 20; i++ {
		if got := Match(e, lambda); got != first {
			t.Fatalf("scoring not deterministic: %v then %v", first, got)
		}
	}
}

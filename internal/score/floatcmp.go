// Float comparison helpers: the only sanctioned ways to compare scores.
//
// The engine's determinism contract (internal/regress) pins scores to the
// bit level, so score comparisons must be explicit about their tolerance.
// Raw == / != on float64 is banned by the floatscore analyzer (DESIGN.md
// §11): identity checks go through SameScore, which compares bit patterns
// and therefore distinguishes nothing the goldens don't; tolerance checks
// go through LessEps with one of the named epsilons below, so every slack
// in the engine is documented at its declaration rather than scattered as
// inline literals.
package score

import "math"

// Epsilons used by the engine, named so each tolerance is declared once.
const (
	// PerfectEps is the slack under which a per-tuple score counts as a
	// perfect (full-arity) match in the signature pass: accumulated
	// per-column contributions of an exact match can sit a few ulps under
	// the integer arity.
	PerfectEps = 1e-9

	// GainEps is the minimum improvement the signature rescue pass must
	// see before it accepts a swap; anything smaller is float noise and
	// would make pass output depend on evaluation order.
	GainEps = 1e-12
)

// SameScore reports whether two scores are bit-identical. This is the
// equality the golden tests enforce, so it is also the equality the engine
// uses: NaNs with the same payload compare equal, +0 and -0 do not.
func SameScore(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// LessEps reports whether a is smaller than b by more than eps. It is the
// sanctioned form of every "a < b - 1e-k" tolerance comparison.
func LessEps(a, b, eps float64) bool {
	return a < b-eps
}

// Package hom implements homomorphisms between instances with labeled
// nulls (Sec. 2 of the paper), isomorphism testing, and core computation by
// tuple folding. These are the substrate for the data-exchange experiments
// (Sec. 7.2): universal solutions are compared through homomorphisms, and
// the gold standard is the core solution, the smallest instance
// homomorphically equivalent to a universal solution.
package hom

import (
	"sort"

	"instcmp/internal/model"
)

// Find returns a homomorphism from one instance into another: a mapping h
// on adom(from) with h(c) = c for constants such that h(t) ∈ to for every
// tuple t ∈ from. It returns nil when none exists. The search is
// backtracking over from's tuples, most-constrained first, with
// hash-indexed candidate lookup.
func Find(from, to *model.Instance) map[model.Value]model.Value {
	return find(from, to, nil)
}

// Exists reports whether a homomorphism from -> to exists.
func Exists(from, to *model.Instance) bool { return Find(from, to) != nil }

// Equivalent reports whether the instances are homomorphically equivalent
// (homomorphisms exist in both directions), the relationship of two
// universal solutions of the same data-exchange scenario.
func Equivalent(a, b *model.Instance) bool {
	return Exists(a, b) && Exists(b, a)
}

// exclusion identifies one tuple of the target instance to pretend absent.
type exclusion struct {
	rel string
	idx int
}

func find(from, to *model.Instance, excl *exclusion) map[model.Value]model.Value {
	if len(from.Relations()) == 0 {
		return map[model.Value]model.Value{}
	}
	indexes := map[string]*targetIndex{}
	for _, rel := range from.Relations() {
		target := to.Relation(rel.Name)
		if target == nil {
			if len(rel.Tuples) == 0 {
				continue
			}
			return nil
		}
		indexes[rel.Name] = newTargetIndex(target, excl)
	}
	binding := map[model.Value]model.Value{}
	// Tuples sharing no nulls constrain each other not at all, so the
	// search decomposes into the connected components of the
	// null-sharing graph. Solving components independently turns a
	// potentially exponential interleaved backtracking into many small
	// local searches.
	for _, comp := range components(from) {
		s := &homSearch{goals: comp, binding: binding, indexes: indexes}
		if !s.solve(0) {
			return nil
		}
	}
	// Make the mapping total on adom(from).
	for v := range from.ActiveDomain() {
		if _, ok := binding[v]; !ok {
			binding[v] = v
		}
	}
	return binding
}

// components partitions the instance's tuples into connected components of
// the null-sharing graph (ground tuples are singletons). Within each
// component, goals are ordered most-constrained first.
func components(in *model.Instance) [][]goal {
	// Union-find over component ids, driven by shared nulls.
	parent := map[int]int{}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	type tref struct {
		rel string
		t   *model.Tuple
	}
	var tuples []tref
	nullOwner := map[model.Value]int{}
	for _, rel := range in.Relations() {
		for i := range rel.Tuples {
			id := len(tuples)
			tuples = append(tuples, tref{rel.Name, &rel.Tuples[i]})
			parent[id] = id
			for _, v := range rel.Tuples[i].Values {
				if v.IsNull() {
					if o, ok := nullOwner[v]; ok {
						union(id, o)
					} else {
						nullOwner[v] = id
					}
				}
			}
		}
	}
	groups := map[int][]goal{}
	var roots []int
	for id, tr := range tuples {
		r := find(id)
		if _, seen := groups[r]; !seen {
			roots = append(roots, r)
		}
		groups[r] = append(groups[r], goal{rel: tr.rel, t: tr.t})
	}
	out := make([][]goal, 0, len(groups))
	for _, r := range roots {
		comp := groups[r]
		sort.SliceStable(comp, func(i, j int) bool {
			return comp[i].t.NullCount() < comp[j].t.NullCount()
		})
		out = append(out, comp)
	}
	return out
}

type goal struct {
	rel string
	t   *model.Tuple
}

type targetIndex struct {
	rel     *model.Relation
	byAttr  []map[model.Value][]int
	all     []int
	skipped int // excluded tuple position, or -1
}

func newTargetIndex(rel *model.Relation, excl *exclusion) *targetIndex {
	ti := &targetIndex{
		rel:     rel,
		byAttr:  make([]map[model.Value][]int, rel.Arity()),
		skipped: -1,
	}
	if excl != nil && excl.rel == rel.Name {
		ti.skipped = excl.idx
	}
	for a := range ti.byAttr {
		ti.byAttr[a] = map[model.Value][]int{}
	}
	for i := range rel.Tuples {
		if i == ti.skipped {
			continue
		}
		ti.all = append(ti.all, i)
		for a, v := range rel.Tuples[i].Values {
			ti.byAttr[a][v] = append(ti.byAttr[a][v], i)
		}
	}
	return ti
}

type homSearch struct {
	goals   []goal
	binding map[model.Value]model.Value
	indexes map[string]*targetIndex
}

func (s *homSearch) solve(gi int) bool {
	if gi == len(s.goals) {
		return true
	}
	g := s.goals[gi]
	ti := s.indexes[g.rel]

	// Candidate generation: use the most selective attribute whose source
	// value is fixed (a constant, or a null already bound).
	bestAttr, bestVal, bestLen := -1, model.Value{}, 0
	for a, v := range g.t.Values {
		fixed := v
		if v.IsNull() {
			b, ok := s.binding[v]
			if !ok {
				continue
			}
			fixed = b
		}
		l := len(ti.byAttr[a][fixed])
		if bestAttr < 0 || l < bestLen {
			bestAttr, bestVal, bestLen = a, fixed, l
		}
	}
	cands := ti.all
	if bestAttr >= 0 {
		cands = ti.byAttr[bestAttr][bestVal]
	}
	for _, ci := range cands {
		cand := &ti.rel.Tuples[ci]
		var bound []model.Value
		ok := true
		for a, v := range g.t.Values {
			target := cand.Values[a]
			if v.IsConst() {
				if v != target {
					ok = false
					break
				}
				continue
			}
			if b, has := s.binding[v]; has {
				if b != target {
					ok = false
					break
				}
				continue
			}
			s.binding[v] = target
			bound = append(bound, v)
		}
		if ok && s.solve(gi+1) {
			return true
		}
		for _, v := range bound {
			delete(s.binding, v)
		}
	}
	return false
}

// IsIsomorphic reports whether the two instances are isomorphic: a
// bijective homomorphism exists (nulls rename one-to-one, constants are
// fixed, and tuples correspond one-to-one per relation counting
// multiplicity). Isomorphic instances represent the same incomplete
// database and must have similarity 1 (Eq. 2).
func IsIsomorphic(a, b *model.Instance) bool {
	if !model.SameSchema(a, b) {
		return false
	}
	for i, ra := range a.Relations() {
		if len(ra.Tuples) != len(b.Relations()[i].Tuples) {
			return false
		}
	}
	if len(a.Vars()) != len(b.Vars()) {
		return false
	}
	s := &isoSearch{
		fwd:  map[model.Value]model.Value{},
		bwd:  map[model.Value]model.Value{},
		used: map[string]map[int]bool{},
	}
	for _, rel := range a.Relations() {
		s.used[rel.Name] = map[int]bool{}
		for i := range rel.Tuples {
			s.goals = append(s.goals, goal{rel: rel.Name, t: &rel.Tuples[i]})
		}
	}
	sort.SliceStable(s.goals, func(i, j int) bool {
		return s.goals[i].t.NullCount() < s.goals[j].t.NullCount()
	})
	s.target = b
	return s.solve(0)
}

type isoSearch struct {
	goals  []goal
	target *model.Instance
	fwd    map[model.Value]model.Value // null of a -> null of b
	bwd    map[model.Value]model.Value
	used   map[string]map[int]bool
}

func (s *isoSearch) solve(gi int) bool {
	if gi == len(s.goals) {
		return true
	}
	g := s.goals[gi]
	rel := s.target.Relation(g.rel)
	for ci := range rel.Tuples {
		if s.used[g.rel][ci] {
			continue
		}
		cand := &rel.Tuples[ci]
		var bound []model.Value
		ok := true
		for a, v := range g.t.Values {
			tv := cand.Values[a]
			if v.IsConst() {
				if v != tv {
					ok = false
					break
				}
				continue
			}
			// Nulls must map bijectively to nulls.
			if tv.IsConst() {
				ok = false
				break
			}
			if b, has := s.fwd[v]; has {
				if b != tv {
					ok = false
					break
				}
				continue
			}
			if _, taken := s.bwd[tv]; taken {
				ok = false
				break
			}
			s.fwd[v] = tv
			s.bwd[tv] = v
			bound = append(bound, v)
		}
		if ok {
			s.used[g.rel][ci] = true
			if s.solve(gi + 1) {
				return true
			}
			s.used[g.rel][ci] = false
		}
		for _, v := range bound {
			delete(s.bwd, s.fwd[v])
			delete(s.fwd, v)
		}
	}
	return false
}

// Core computes the core of an instance: the smallest subinstance it has a
// homomorphism into (unique up to isomorphism; Fagin, Kolaitis, Popa). It
// repeatedly looks for a tuple t such that the instance maps
// homomorphically into itself minus t; such a tuple is redundant and can be
// folded away. The result is a fresh instance.
func Core(in *model.Instance) *model.Instance {
	cur := in.Clone()
	for {
		folded := false
		for _, rel := range cur.Relations() {
			// A ground tuple's homomorphic image is itself, so it can
			// only fold onto an identical duplicate.
			dupes := map[string]int{}
			for i := range rel.Tuples {
				dupes[rel.Tuples[i].ValueKey()]++
			}
			for i := 0; i < len(rel.Tuples); i++ {
				if rel.Tuples[i].IsGround() && dupes[rel.Tuples[i].ValueKey()] < 2 {
					continue
				}
				if find(cur, cur, &exclusion{rel: rel.Name, idx: i}) != nil {
					dupes[rel.Tuples[i].ValueKey()]--
					rel.Tuples = append(rel.Tuples[:i], rel.Tuples[i+1:]...)
					i--
					folded = true
				}
			}
		}
		if !folded {
			return cur
		}
	}
}

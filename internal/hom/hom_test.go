package hom

import (
	"testing"

	"instcmp/internal/model"
)

func c(s string) model.Value { return model.Const(s) }
func n(s string) model.Value { return model.Null(s) }

func build(rows ...[]model.Value) *model.Instance {
	in := model.NewInstance()
	attrs := []string{"A", "B", "C"}
	if len(rows) > 0 {
		attrs = attrs[:len(rows[0])]
	}
	in.AddRelation("R", attrs...)
	for _, row := range rows {
		in.Append("R", row...)
	}
	return in
}

func TestFindGround(t *testing.T) {
	a := build([]model.Value{c("x"), c("y")})
	b := build([]model.Value{c("x"), c("y")}, []model.Value{c("p"), c("q")})
	if Find(a, b) == nil {
		t.Error("identity embedding not found")
	}
	if Find(b, a) != nil {
		t.Error("hom found despite missing target tuple")
	}
}

func TestFindBindsNulls(t *testing.T) {
	a := build([]model.Value{n("N1"), c("y")}, []model.Value{n("N1"), n("N2")})
	b := build([]model.Value{c("x"), c("y")}, []model.Value{c("x"), c("z")})
	h := Find(a, b)
	if h == nil {
		t.Fatal("hom not found")
	}
	if h[n("N1")] != c("x") {
		t.Errorf("h(N1) = %v, want x", h[n("N1")])
	}
	if h[c("y")] != c("y") {
		t.Error("hom must be identity on constants")
	}
	checkHom(t, a, b, h)
}

// checkHom verifies the homomorphism property: h applied to every tuple of
// from yields a tuple present in to.
func checkHom(t *testing.T, from, to *model.Instance, h map[model.Value]model.Value) {
	t.Helper()
	for _, rel := range from.Relations() {
		target := to.Relation(rel.Name)
	tuples:
		for _, tu := range rel.Tuples {
			img := make([]model.Value, len(tu.Values))
			for i, v := range tu.Values {
				img[i] = h[v]
			}
		cands:
			for _, cand := range target.Tuples {
				for i := range img {
					if cand.Values[i] != img[i] {
						continue cands
					}
				}
				continue tuples
			}
			t.Fatalf("h(%v) = %v not in target", tu, img)
		}
	}
}

func TestFindRespectsSharedNullConstraint(t *testing.T) {
	// N1 appears twice and would need to be both x and z.
	a := build([]model.Value{n("N1"), c("y")}, []model.Value{c("w"), n("N1")})
	b := build([]model.Value{c("x"), c("y")}, []model.Value{c("w"), c("z")})
	if Find(a, b) != nil {
		t.Error("hom found despite inconsistent null use")
	}
}

func TestFindNullToNull(t *testing.T) {
	a := build([]model.Value{n("N1"), c("y")})
	b := build([]model.Value{n("V1"), c("y")})
	h := Find(a, b)
	if h == nil {
		t.Fatal("null-to-null hom not found")
	}
	if h[n("N1")] != n("V1") {
		t.Errorf("N1 bound to %v, want V1", h[n("N1")])
	}
}

func TestFindCrossRelationNulls(t *testing.T) {
	// The same null is a surrogate key across two relations (Fig. 4).
	mk := func(key model.Value, place model.Value) *model.Instance {
		in := model.NewInstance()
		in.AddRelation("Conf", "Id", "Place")
		in.AddRelation("Paper", "Title", "ConfId")
		in.Append("Conf", key, place)
		in.Append("Paper", c("QBE"), key)
		return in
	}
	a := mk(n("N1"), n("N2"))
	b := mk(c("1"), c("Rome"))
	if Find(a, b) == nil {
		t.Error("cross-relation hom not found")
	}
	// Break the key join on the right: now N1 must be 1 and 2 at once.
	bad := model.NewInstance()
	bad.AddRelation("Conf", "Id", "Place")
	bad.AddRelation("Paper", "Title", "ConfId")
	bad.Append("Conf", c("1"), c("Rome"))
	bad.Append("Paper", c("QBE"), c("2"))
	if Find(a, bad) != nil {
		t.Error("hom found despite broken join")
	}
}

func TestEquivalent(t *testing.T) {
	// Two universal-style solutions: same facts, different redundancy.
	a := build(
		[]model.Value{c("VLDB"), c("1976"), n("N1")},
		[]model.Value{c("VLDB"), n("N2"), c("Brussels")},
	)
	b := build([]model.Value{c("VLDB"), c("1976"), c("Brussels")})
	if !Exists(a, b) {
		t.Error("a should map into b")
	}
	if Exists(b, a) {
		t.Error("b must not map into a (no single matching tuple)")
	}
	if Equivalent(a, b) {
		t.Error("not equivalent")
	}
	if !Equivalent(a, a.RenameNulls("X_")) {
		t.Error("renamed copy must be equivalent")
	}
}

func TestIsIsomorphic(t *testing.T) {
	a := build([]model.Value{n("N1"), c("y")}, []model.Value{n("N2"), n("N1")})
	iso := a.RenameNulls("Z_")
	if !IsIsomorphic(a, iso) {
		t.Error("renamed instance not recognized as isomorphic")
	}
	// Collapsing two nulls into one breaks isomorphism.
	col := build([]model.Value{n("M"), c("y")}, []model.Value{n("M"), n("M")})
	if IsIsomorphic(a, col) {
		t.Error("collapse wrongly isomorphic")
	}
	if IsIsomorphic(a, build([]model.Value{n("N9"), c("y")})) {
		t.Error("different cardinalities wrongly isomorphic")
	}
	// Null cannot map to a constant under isomorphism.
	g := build([]model.Value{c("k"), c("y")}, []model.Value{c("k"), c("k")})
	if IsIsomorphic(a, g) {
		t.Error("null-to-constant wrongly isomorphic")
	}
}

func TestCoreFoldsRedundancy(t *testing.T) {
	// (VLDB, 1976, N1) and (VLDB, N2, Brussels) both fold into the full
	// tuple (VLDB, 1976, Brussels).
	in := build(
		[]model.Value{c("VLDB"), c("1976"), n("N1")},
		[]model.Value{c("VLDB"), n("N2"), c("Brussels")},
		[]model.Value{c("VLDB"), c("1976"), c("Brussels")},
	)
	core := Core(in)
	if got := core.NumTuples(); got != 1 {
		t.Fatalf("core size = %d, want 1:\n%s", got, core)
	}
	if !core.Relation("R").Tuples[0].IsGround() {
		t.Error("core kept a redundant null tuple")
	}
	if !Equivalent(in, core) {
		t.Error("core not equivalent to original")
	}
}

func TestCoreOfCoreIsFixpoint(t *testing.T) {
	in := build(
		[]model.Value{c("a"), n("N1"), n("N2")},
		[]model.Value{c("a"), n("N3"), c("z")},
		[]model.Value{c("b"), c("y"), c("z")},
	)
	core := Core(in)
	again := Core(core)
	if core.NumTuples() != again.NumTuples() {
		t.Errorf("core not a fixpoint: %d then %d tuples", core.NumTuples(), again.NumTuples())
	}
	if !Equivalent(in, core) {
		t.Error("core not equivalent to original")
	}
}

func TestCoreKeepsIncomparableTuples(t *testing.T) {
	in := build(
		[]model.Value{c("a"), c("b"), n("N1")},
		[]model.Value{c("x"), c("y"), n("N2")},
	)
	core := Core(in)
	if got := core.NumTuples(); got != 2 {
		t.Errorf("core folded incomparable tuples: %d left", got)
	}
}

func TestCoreFoldsGroundDuplicates(t *testing.T) {
	in := build(
		[]model.Value{c("a"), c("b"), c("z")},
		[]model.Value{c("a"), c("b"), c("z")},
	)
	core := Core(in)
	if got := core.NumTuples(); got != 1 {
		t.Errorf("ground duplicate not folded: %d tuples", got)
	}
}

func TestFindEmptyAndMissingRelations(t *testing.T) {
	empty := model.NewInstance()
	if Find(empty, empty) == nil {
		t.Error("empty-to-empty hom must exist")
	}
	a := build([]model.Value{c("x"), c("y")})
	other := model.NewInstance()
	other.AddRelation("S", "A", "B")
	other.Append("S", c("x"), c("y"))
	if Find(a, other) != nil {
		t.Error("hom into instance lacking the relation")
	}
}

package hom

import (
	"testing"

	"instcmp/internal/model"
)

// TestFindRequiresBacktracking builds an instance where the first candidate
// choice for an early goal is wrong and the search must undo bindings:
// N must map to b (not a) so that the second tuple finds its image.
func TestFindRequiresBacktracking(t *testing.T) {
	from := build(
		[]model.Value{n("N"), c("k")},
		[]model.Value{n("N"), c("q")},
	)
	to := build(
		[]model.Value{c("a"), c("k")}, // tempting first candidate: N -> a
		[]model.Value{c("b"), c("k")},
		[]model.Value{c("b"), c("q")}, // only b supports the second goal
	)
	h := Find(from, to)
	if h == nil {
		t.Fatal("hom exists (N -> b) but was not found")
	}
	if h[n("N")] != c("b") {
		t.Errorf("h(N) = %v, want b", h[n("N")])
	}
	checkHom(t, from, to, h)
}

// TestFindDeepChain: a chain of joined tuples forces consistent propagation
// through many goals in one component.
func TestFindDeepChain(t *testing.T) {
	from := model.NewInstance()
	from.AddRelation("E", "Src", "Dst")
	to := model.NewInstance()
	to.AddRelation("E", "Src", "Dst")
	// from: path of nulls N0 -> N1 -> ... -> N6
	for i := 0; i < 6; i++ {
		from.Append("E", model.Nullf("N%d", i), model.Nullf("N%d", i+1))
	}
	// to: a cycle a -> b -> a plus a 7-node path p0..p6.
	to.Append("E", c("a"), c("b"))
	to.Append("E", c("b"), c("a"))
	for i := 0; i < 6; i++ {
		to.Append("E", model.Constf("p%d", i), model.Constf("p%d", i+1))
	}
	h := Find(from, to)
	if h == nil {
		t.Fatal("path must embed (into the cycle or the path)")
	}
	checkHom(t, from, to, h)

	// Remove the cycle and shorten the path: now only 4 edges exist, the
	// 6-edge path cannot embed into a DAG path of 4 edges... it can fold
	// onto... no: a path of nulls CAN fold only if the target has a
	// walk of length 6; a 4-edge simple path has none.
	short := model.NewInstance()
	short.AddRelation("E", "Src", "Dst")
	for i := 0; i < 4; i++ {
		short.Append("E", model.Constf("p%d", i), model.Constf("p%d", i+1))
	}
	if Find(from, short) != nil {
		t.Error("6-edge path cannot map into a 4-edge acyclic path")
	}
}

// TestIsoRequiresBacktracking: tuple-level choices interact through the
// null bijection.
func TestIsoRequiresBacktracking(t *testing.T) {
	a := build(
		[]model.Value{n("X"), c("k")},
		[]model.Value{n("X"), n("Y")},
	)
	b := build(
		[]model.Value{n("P"), n("Q")},
		[]model.Value{n("P"), c("k")},
	)
	if !IsIsomorphic(a, b) {
		t.Error("instances are isomorphic (X=P, Y=Q) up to tuple order")
	}
}

package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"instcmp"
)

func wireSingle(name string, rows [][]string) WireInstance {
	return WireInstance{Relations: []WireRelation{{
		Name:   name,
		Attrs:  []string{"A", "B"},
		Tuples: rows,
	}}}
}

func TestWireDecodeEncodeRoundTrip(t *testing.T) {
	w := wireSingle("R", [][]string{{"x", "_:N1"}, {"_:N2", "y"}})
	in, err := w.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if in.NumTuples() != 2 {
		t.Fatalf("decoded %d tuples, want 2", in.NumTuples())
	}
	vals := in.Relation("R").Tuples[0].Values
	if !vals[0].IsConst() || vals[0].Raw() != "x" {
		t.Errorf("cell 0 decoded as %#v", vals[0])
	}
	if !vals[1].IsNull() || vals[1].Raw() != "N1" {
		t.Errorf("cell 1 decoded as %#v, want null N1", vals[1])
	}
	back := EncodeInstance(in)
	buf1, _ := json.Marshal(w)
	buf2, _ := json.Marshal(back)
	if !bytes.Equal(buf1, buf2) {
		t.Errorf("round trip changed the instance:\n%s\n%s", buf1, buf2)
	}
}

func TestWireDecodeRejectsMalformedInstances(t *testing.T) {
	cases := []struct {
		name string
		w    WireInstance
	}{
		{"no relations", WireInstance{}},
		{"empty relation name", wireSingle("", nil)},
		{"no attrs", WireInstance{Relations: []WireRelation{{Name: "R"}}}},
		{"arity mismatch", wireSingle("R", [][]string{{"only-one-cell"}})},
		{"duplicate relation", WireInstance{Relations: []WireRelation{
			{Name: "R", Attrs: []string{"A"}},
			{Name: "R", Attrs: []string{"A"}},
		}}},
	}
	for _, tc := range cases {
		if _, err := tc.w.Decode(); err == nil {
			t.Errorf("%s: Decode accepted a malformed instance", tc.name)
		}
	}
}

func TestRegistryLifecycle(t *testing.T) {
	g := NewRegistry()
	in, err := wireSingle("R", [][]string{{"x", "y"}}).Decode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Register("a", in); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Register("a", in); err == nil {
		t.Error("duplicate registration accepted")
	}
	if _, err := g.Register("", in); err == nil {
		t.Error("empty name accepted")
	}
	if e, ok := g.Get("a"); !ok || e.Name != "a" {
		t.Errorf("Get(a) = %v, %v", e, ok)
	}
	if _, err := g.Register("b", in); err != nil {
		t.Fatal(err)
	}
	names := []string{}
	for _, e := range g.List() {
		names = append(names, e.Name)
	}
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("List() = %v, want [a b]", names)
	}
	if !g.Delete("a") || g.Delete("a") {
		t.Error("Delete should succeed once and then report absent")
	}
	if g.Len() != 1 {
		t.Errorf("Len() = %d, want 1", g.Len())
	}
}

// TestRegistryConcurrentUse hammers the registry from concurrent
// goroutines — registrations, deletions, listings, and comparisons against
// a shared resident entry — and is meaningful under -race: the registry's
// lock discipline and the immutability of prepared state are what keep it
// silent.
func TestRegistryConcurrentUse(t *testing.T) {
	g := NewRegistry()
	base, err := wireSingle("R", [][]string{{"x", "_:L1"}, {"z", "w"}}).Decode()
	if err != nil {
		t.Fatal(err)
	}
	other, err := wireSingle("R", [][]string{{"x", "_:R1"}, {"p", "q"}}).Decode()
	if err != nil {
		t.Fatal(err)
	}
	shared, err := g.Register("shared", base)
	if err != nil {
		t.Fatal(err)
	}
	right, err := g.Register("right", other)
	if err != nil {
		t.Fatal(err)
	}
	want, err := instcmp.ComparePrepared(shared.Prepared, right.Prepared, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	// Two goroutines comparing against the same Prepared entries...
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				res, err := instcmp.ComparePrepared(shared.Prepared, right.Prepared, nil)
				if err != nil {
					errc <- err
					return
				}
				if math.Float64bits(res.Score) != math.Float64bits(want.Score) {
					errc <- fmt.Errorf("concurrent score %v != %v", res.Score, want.Score)
					return
				}
			}
		}()
	}
	// ...while others churn the registry around them.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("churn%d", i)
			for j := 0; j < 20; j++ {
				if _, err := g.Register(name, base); err != nil {
					errc <- err
					return
				}
				g.List()
				g.Get("shared")
				g.Delete(name)
			}
		}(i)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// newTestServer spins up the full HTTP stack over a fresh registry.
func newTestServer(t *testing.T) (*httptest.Server, *Registry) {
	t.Helper()
	reg := NewRegistry()
	ts := httptest.NewServer(New(reg, Options{Workers: 2}).Handler())
	t.Cleanup(ts.Close)
	return ts, reg
}

func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp.StatusCode
}

func register(t *testing.T, ts *httptest.Server, name string, w WireInstance) {
	t.Helper()
	status := postJSON(t, ts.URL+"/v1/instances", RegisterRequest{Name: name, Instance: w}, nil)
	if status != http.StatusCreated {
		t.Fatalf("register %s: status %d", name, status)
	}
}

func TestServerCompareRoundTrip(t *testing.T) {
	ts, _ := newTestServer(t)
	register(t, ts, "left", wireSingle("R", [][]string{{"x", "_:L1"}, {"a", "b"}}))
	register(t, ts, "right", wireSingle("R", [][]string{{"x", "_:R1"}, {"a", "b"}}))

	var out CompareResponse
	status := postJSON(t, ts.URL+"/v1/compare", CompareRequest{Left: "left", Right: "right"}, &out)
	if status != http.StatusOK {
		t.Fatalf("compare: status %d", status)
	}
	if out.Score != 1 {
		t.Errorf("isomorphic instances scored %v, want 1", out.Score)
	}
	if out.Stats == nil {
		t.Error("compare response carries no stats")
	}

	// The same comparison through the library gives the same score.
	l, _ := wireSingle("R", [][]string{{"x", "_:L1"}, {"a", "b"}}).Decode()
	r, _ := wireSingle("R", [][]string{{"x", "_:R1"}, {"a", "b"}}).Decode()
	res, err := instcmp.Compare(l, r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(res.Score) != math.Float64bits(out.Score) {
		t.Errorf("served score %v != library score %v", out.Score, res.Score)
	}
}

func TestServerExplainCarriesMatch(t *testing.T) {
	ts, _ := newTestServer(t)
	register(t, ts, "left", wireSingle("R", [][]string{{"x", "_:L1"}, {"solo", "left"}}))
	register(t, ts, "right", wireSingle("R", [][]string{{"x", "y"}}))

	var out ExplainResponse
	status := postJSON(t, ts.URL+"/v1/explain", ExplainRequest{Left: "left", Right: "right"}, &out)
	if status != http.StatusOK {
		t.Fatalf("explain: status %d", status)
	}
	if len(out.Pairs) != 1 {
		t.Fatalf("pairs = %+v, want exactly one", out.Pairs)
	}
	if out.Pairs[0].Relation != "R" {
		t.Errorf("pair relation %q", out.Pairs[0].Relation)
	}
	if len(out.LeftUnmatched) != 1 {
		t.Errorf("left unmatched = %v, want one tuple", out.LeftUnmatched)
	}
	// The left null L1 was matched against the constant y.
	if got := out.LeftValueMapping["_:L1"]; got != "y" {
		t.Errorf("value mapping for _:L1 = %q, want y", got)
	}
}

func TestServerRankOrdersCandidates(t *testing.T) {
	ts, _ := newTestServer(t)
	register(t, ts, "example", wireSingle("R", [][]string{{"x", "y"}, {"p", "q"}}))
	// near: same rows, table named differently inside the instance — name
	// alignment must kick in through the prepared view.
	register(t, ts, "near", WireInstance{Relations: []WireRelation{{
		Name: "other", Attrs: []string{"A", "B"},
		Tuples: [][]string{{"x", "y"}, {"p", "q"}},
	}}})
	register(t, ts, "far", wireSingle("R", [][]string{{"no", "overlap"}}))

	var out RankResponse
	status := postJSON(t, ts.URL+"/v1/rank", RankRequest{Example: "example"}, &out)
	if status != http.StatusOK {
		t.Fatalf("rank: status %d", status)
	}
	if len(out.Results) != 2 {
		t.Fatalf("results = %+v, want 2", out.Results)
	}
	if out.Results[0].Name != "near" || out.Results[1].Name != "far" {
		t.Errorf("ranking order %v, want [near far]", out.Results)
	}
	if out.Results[0].Score != 1 {
		t.Errorf("near scored %v, want 1", out.Results[0].Score)
	}
}

func TestServerDeadlineDegradesToStopped(t *testing.T) {
	ts, _ := newTestServer(t)
	// Overlapping-but-conflicting constant patterns: the signature warm
	// start cannot reach the optimistic bound, so the exact search has real
	// work to do and a one-node budget must trip.
	rows := make([][]string, 24)
	for i := range rows {
		rows[i] = []string{fmt.Sprintf("v%d", i%4), fmt.Sprintf("w%d", i%3)}
	}
	register(t, ts, "left", wireSingle("R", rows))
	rows2 := make([][]string, 24)
	for i := range rows2 {
		rows2[i] = []string{fmt.Sprintf("v%d", (i+1)%4), fmt.Sprintf("_:n%d", i)}
	}
	register(t, ts, "right", wireSingle("R", rows2))

	// A one-node exact budget cannot finish a 48-tuple search: the
	// response must be a 200 carrying the warm-started best match with
	// stopped set, not an error.
	var out CompareResponse
	status := postJSON(t, ts.URL+"/v1/compare", CompareRequest{
		Left: "left", Right: "right",
		Options: WireOptions{Algorithm: "exact", ExactMaxNodes: 1},
	}, &out)
	if status != http.StatusOK {
		t.Fatalf("budgeted compare: status %d", status)
	}
	if out.Stopped == "" {
		t.Error("budget-bound comparison did not report stopped")
	}
	if out.Score <= 0 {
		t.Errorf("stopped comparison lost its anytime result: score %v", out.Score)
	}
}

func TestServerErrorCases(t *testing.T) {
	ts, _ := newTestServer(t)
	register(t, ts, "a", wireSingle("R", [][]string{{"x", "y"}}))

	cases := []struct {
		name   string
		path   string
		body   any
		status int
	}{
		{"unknown left", "/v1/compare", CompareRequest{Left: "ghost", Right: "a"}, http.StatusNotFound},
		{"unknown right", "/v1/compare", CompareRequest{Left: "a", Right: "ghost"}, http.StatusNotFound},
		{"bad mode", "/v1/compare", CompareRequest{Left: "a", Right: "a", Options: WireOptions{Mode: "zigzag"}}, http.StatusBadRequest},
		{"bad algorithm", "/v1/compare", CompareRequest{Left: "a", Right: "a", Options: WireOptions{Algorithm: "quantum"}}, http.StatusBadRequest},
		{"bad lambda", "/v1/compare", CompareRequest{Left: "a", Right: "a", Options: WireOptions{Lambda: 2}}, http.StatusUnprocessableEntity},
		{"duplicate register", "/v1/instances", RegisterRequest{Name: "a", Instance: wireSingle("R", nil)}, http.StatusConflict},
		{"invalid instance", "/v1/instances", RegisterRequest{Name: "b", Instance: WireInstance{}}, http.StatusBadRequest},
		{"unknown rank example", "/v1/rank", RankRequest{Example: "ghost"}, http.StatusNotFound},
		{"unknown rank candidate", "/v1/rank", RankRequest{Example: "a", Candidates: []string{"ghost"}}, http.StatusNotFound},
	}
	for _, tc := range cases {
		var e errorResponse
		if status := postJSON(t, ts.URL+tc.path, tc.body, &e); status != tc.status {
			t.Errorf("%s: status %d, want %d (error %q)", tc.name, status, tc.status, e.Error)
		} else if e.Error == "" {
			t.Errorf("%s: no error message in body", tc.name)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/instances/ghost")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET unknown instance: status %d", resp.StatusCode)
	}
}

func TestServerListAndDelete(t *testing.T) {
	ts, _ := newTestServer(t)
	register(t, ts, "b", wireSingle("R", [][]string{{"x", "y"}}))
	register(t, ts, "a", wireSingle("R", [][]string{{"x", "_:n"}}))

	resp, err := http.Get(ts.URL + "/v1/instances")
	if err != nil {
		t.Fatal(err)
	}
	var infos []InstanceInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(infos) != 2 || infos[0].Name != "a" || infos[1].Name != "b" {
		t.Fatalf("list = %+v, want [a b]", infos)
	}
	if infos[0].Tuples != 1 || infos[0].Nulls != 1 {
		t.Errorf("info for a = %+v", infos[0])
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/instances/a", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Errorf("delete: status %d", dresp.StatusCode)
	}
	resp2, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("expvar endpoint: status %d", resp2.StatusCode)
	}
}

// TestRegistryMaintainsSketchIndex pins the register/delete ↔ index
// contract: every registered instance becomes probe-able, and deletion
// unindexes it.
func TestRegistryMaintainsSketchIndex(t *testing.T) {
	g := NewRegistry()
	in, err := wireSingle("R", [][]string{{"x", "y"}, {"p", "q"}}).Decode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Register("a", in); err != nil {
		t.Fatal(err)
	}
	if !g.Index().Contains("a") || g.Index().Len() != 1 {
		t.Fatalf("index after register: Contains=%v Len=%d", g.Index().Contains("a"), g.Index().Len())
	}
	// A failed duplicate registration must not disturb the index.
	if _, err := g.Register("a", in); err == nil {
		t.Fatal("duplicate accepted")
	}
	if g.Index().Len() != 1 {
		t.Errorf("index grew on failed registration: Len=%d", g.Index().Len())
	}
	g.Delete("a")
	if g.Index().Contains("a") || g.Index().Len() != 0 {
		t.Errorf("index after delete: Contains=%v Len=%d", g.Index().Contains("a"), g.Index().Len())
	}
}

// TestServerRankProbesIndex exercises /rank through the resident sketch
// index: a small shortlist leaves distant candidates index-pruned, while
// no_index compares everything — and both agree on the winner.
func TestServerRankProbesIndex(t *testing.T) {
	ts, _ := newTestServer(t)
	register(t, ts, "example", wireSingle("R", [][]string{{"x", "y"}, {"p", "q"}, {"u", "v"}}))
	register(t, ts, "twin", wireSingle("R", [][]string{{"p", "q"}, {"x", "y"}, {"u", "v"}}))
	for i := 0; i < 9; i++ {
		register(t, ts, fmt.Sprintf("noise-%d", i), wireSingle("R", [][]string{
			{fmt.Sprintf("n%da", i), fmt.Sprintf("n%db", i)},
			{fmt.Sprintf("n%dc", i), fmt.Sprintf("n%dd", i)},
		}))
	}

	var indexed RankResponse
	status := postJSON(t, ts.URL+"/v1/rank", RankRequest{
		Example: "example", TopK: 1, MinShortlist: 2,
	}, &indexed)
	if status != http.StatusOK {
		t.Fatalf("indexed rank: status %d", status)
	}
	if indexed.Index.FullScan {
		t.Fatalf("indexed rank fell back to a full scan: %+v", indexed.Index)
	}
	if got, want := indexed.Index.ShortlistSize, 4; got != want {
		t.Errorf("shortlist size = %d, want %d", got, want)
	}
	if len(indexed.Results) != 10 {
		t.Fatalf("results = %d, want all 10 candidates", len(indexed.Results))
	}
	if indexed.Results[0].Name != "twin" || indexed.Results[0].Score != 1 {
		t.Errorf("top result = %+v, want twin at score 1", indexed.Results[0])
	}
	pruned := 0
	for _, r := range indexed.Results {
		if r.Pruned {
			pruned++
		}
	}
	if pruned != 10-indexed.Index.ShortlistSize {
		t.Errorf("pruned = %d, want %d index-pruned candidates", pruned, 10-indexed.Index.ShortlistSize)
	}

	var full RankResponse
	status = postJSON(t, ts.URL+"/v1/rank", RankRequest{Example: "example", NoIndex: true}, &full)
	if status != http.StatusOK {
		t.Fatalf("no_index rank: status %d", status)
	}
	if !full.Index.FullScan || full.Index.ShortlistSize != 10 {
		t.Errorf("no_index stats = %+v, want a full scan over 10", full.Index)
	}
	if full.Results[0].Name != indexed.Results[0].Name {
		t.Errorf("index and full scan disagree on the winner: %q vs %q",
			indexed.Results[0].Name, full.Results[0].Name)
	}
}

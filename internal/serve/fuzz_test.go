package serve

import (
	"encoding/json"
	"testing"
)

// FuzzWireDecode: the server's JSON request shapes plus WireInstance.Decode
// must hold up against arbitrary bodies — the exact bytes an HTTP client
// controls. Whatever parses must satisfy the decoder's invariants (named
// relations, consistent arity, unique names) and survive an encode/decode
// round trip; whatever does not must come back as an error, never a panic.
func FuzzWireDecode(f *testing.F) {
	f.Add([]byte(`{"name":"a","instance":{"relations":[{"name":"R","attrs":["A","B"],"tuples":[["x","_:n1"],["y",""]]}]}}`))
	f.Add([]byte(`{"left":"a","right":"b","options":{"mode":"1to1","algorithm":"exact","timeout_ms":50}}`))
	f.Add([]byte(`{"example":"a","candidates":["b","c"],"workers":4,"top_k":3,"no_index":true}`))
	f.Add([]byte(`{"instance":{"relations":[]}}`))
	f.Add([]byte(`{"instance":{"relations":[{"name":"","attrs":["A"]}]}}`))
	f.Add([]byte(`{"instance":{"relations":[{"name":"R","attrs":["A"],"tuples":[["x","extra"]]}]}}`))
	f.Add([]byte(`{"instance":{"relations":[{"name":"R","attrs":["A"]},{"name":"R","attrs":["B"]}]}}`))
	f.Add([]byte(`{"options":{"mode":"bogus","lambda":-1}}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		var reg RegisterRequest
		if json.Unmarshal(data, &reg) == nil {
			in, err := reg.Instance.Decode()
			if err == nil {
				rels := in.Relations()
				if len(rels) == 0 {
					t.Fatal("decode succeeded on an instance with no relations")
				}
				seen := map[string]bool{}
				for _, rel := range rels {
					if rel.Name == "" || seen[rel.Name] {
						t.Fatalf("decode let through relation name %q (dup=%v)", rel.Name, seen[rel.Name])
					}
					seen[rel.Name] = true
					if len(rel.Attrs) == 0 {
						t.Fatalf("relation %q decoded with no attributes", rel.Name)
					}
					for _, tu := range rel.Tuples {
						if len(tu.Values) != rel.Arity() {
							t.Fatalf("relation %q tuple arity %d != %d", rel.Name, len(tu.Values), rel.Arity())
						}
					}
				}
				// Encode/decode must round-trip the instance shape and cell
				// values (nulls travel as their "_:" rendering).
				back, err := EncodeInstance(in).Decode()
				if err != nil {
					t.Fatalf("re-decoding an encoded instance failed: %v", err)
				}
				brels := back.Relations()
				if len(brels) != len(rels) {
					t.Fatalf("round trip changed relation count %d -> %d", len(rels), len(brels))
				}
				for i, rel := range rels {
					brel := brels[i]
					if brel.Name != rel.Name || brel.Arity() != rel.Arity() || len(brel.Tuples) != len(rel.Tuples) {
						t.Fatalf("round trip changed relation %q shape", rel.Name)
					}
					for ti := range rel.Tuples {
						for vi := range rel.Tuples[ti].Values {
							a := rel.Tuples[ti].Values[vi]
							b := brel.Tuples[ti].Values[vi]
							if a.String() != b.String() {
								t.Fatalf("round trip changed %s[%d][%d]: %q -> %q",
									rel.Name, ti, vi, a.String(), b.String())
							}
						}
					}
				}
			}
		}
		// The option parsers behind compare/explain/rank must never panic,
		// whatever numbers and strings land in the fields.
		var cr CompareRequest
		if json.Unmarshal(data, &cr) == nil {
			if _, err := cr.Options.engineOptions(); err == nil {
				_ = cr.Options.timeout()
			}
		}
		var rr RankRequest
		if json.Unmarshal(data, &rr) == nil {
			if _, err := rr.Options.engineOptions(); err == nil {
				_ = rr.Options.timeout()
			}
		}
	})
}

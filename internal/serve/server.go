// Package serve implements instcmp-serve, the resident-registry comparison
// service: instances are registered once, held in prepared form
// (instcmp.Prepared), and compared many times over HTTP without paying
// normalization or coding per request.
//
// The service inherits the engine's anytime contract: a request deadline
// (options.timeout_ms, or the engines' own budgets) does not fail the
// request — the response carries the best match found so far with "stopped"
// set, exactly like Result.Stopped in the library API. Comparison endpoints
// run on a bounded worker pool so a burst of expensive comparisons degrades
// to queueing (and then to deadline-degraded responses) instead of
// oversubscribing the machine.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"runtime"
	"time"

	"instcmp"
	"instcmp/internal/lake"
	"instcmp/internal/lakeindex"
)

// vars exports cumulative service counters (expvar key "instcmp.serve"):
// requests, registered, deleted, compares, ranks, explains, stopped,
// errors, queue_waits.
var vars = expvar.NewMap("instcmp.serve")

// Options configures a Server.
type Options struct {
	// Workers bounds concurrently running comparison requests
	// (compare/rank/explain); 0 means GOMAXPROCS. Requests beyond the
	// bound queue until a worker frees up or their deadline expires.
	Workers int
	// MaxBodyBytes caps request body size (0 = 64 MiB).
	MaxBodyBytes int64
}

// Server is the HTTP comparison service over one registry.
type Server struct {
	reg     *Registry
	sem     chan struct{}
	maxBody int64
	mux     *http.ServeMux
}

// New builds a server over the registry.
func New(reg *Registry, opt Options) *Server {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	maxBody := opt.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = 64 << 20
	}
	s := &Server{
		reg:     reg,
		sem:     make(chan struct{}, workers),
		maxBody: maxBody,
		mux:     http.NewServeMux(),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/instances", s.handleList)
	s.mux.HandleFunc("POST /v1/instances", s.handleRegister)
	s.mux.HandleFunc("GET /v1/instances/{name}", s.handleGet)
	s.mux.HandleFunc("DELETE /v1/instances/{name}", s.handleDelete)
	s.mux.HandleFunc("POST /v1/compare", s.handleCompare)
	s.mux.HandleFunc("POST /v1/explain", s.handleExplain)
	s.mux.HandleFunc("POST /v1/rank", s.handleRank)
	s.mux.Handle("GET /debug/vars", expvar.Handler())
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		vars.Add("requests", 1)
		s.mux.ServeHTTP(w, r)
	})
}

// acquire claims a worker slot, waiting until one frees up or the request
// context ends. It returns a release func, or ctx's error.
func (s *Server) acquire(ctx context.Context) (func(), error) {
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, nil
	default:
	}
	// Pool exhausted: queue (counted) until a slot or the deadline.
	vars.Add("queue_waits", 1)
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	vars.Add("errors", 1)
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// readJSON decodes a JSON body with a size cap and strict field checking.
func (s *Server) readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: %v", err)
		return false
	}
	return true
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "instances": s.reg.Len()})
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	infos := []InstanceInfo{}
	for _, e := range s.reg.List() {
		infos = append(infos, e.Info())
	}
	writeJSON(w, http.StatusOK, infos)
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	in, err := req.Instance.Decode()
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid instance: %v", err)
		return
	}
	e, err := s.reg.Register(req.Name, in)
	if err != nil {
		status := http.StatusBadRequest
		if _, dup := s.reg.Get(req.Name); dup {
			status = http.StatusConflict
		}
		writeError(w, status, "%v", err)
		return
	}
	vars.Add("registered", 1)
	writeJSON(w, http.StatusCreated, e.Info())
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	e, ok := s.reg.Get(r.PathValue("name"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown instance %q", r.PathValue("name"))
		return
	}
	writeJSON(w, http.StatusOK, e.Info())
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if !s.reg.Delete(r.PathValue("name")) {
		writeError(w, http.StatusNotFound, "unknown instance %q", r.PathValue("name"))
		return
	}
	vars.Add("deleted", 1)
	writeJSON(w, http.StatusOK, map[string]bool{"deleted": true})
}

// requestContext derives the comparison context: the request's own context
// (canceled when the client disconnects) bounded by the options deadline.
func requestContext(r *http.Request, opt *WireOptions) (context.Context, context.CancelFunc) {
	if d := opt.timeout(); d > 0 {
		return context.WithTimeout(r.Context(), d)
	}
	return r.Context(), func() {}
}

// runCompare resolves the two named entries and runs one prepared
// comparison on the worker pool.
func (s *Server) runCompare(w http.ResponseWriter, r *http.Request, left, right string, wopt *WireOptions) (*instcmp.Result, bool) {
	opt, err := wopt.engineOptions()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return nil, false
	}
	le, ok := s.reg.Get(left)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown instance %q", left)
		return nil, false
	}
	re, ok := s.reg.Get(right)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown instance %q", right)
		return nil, false
	}
	ctx, cancel := requestContext(r, wopt)
	defer cancel()
	release, err := s.acquire(ctx)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "no worker available before deadline: %v", err)
		return nil, false
	}
	defer release()
	res, err := instcmp.ComparePreparedContext(ctx, le.Prepared, re.Prepared, opt)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return nil, false
	}
	if res.Stopped != "" {
		vars.Add("stopped", 1)
	}
	return res, true
}

func compareResponse(req CompareRequest, res *instcmp.Result, withStats bool) CompareResponse {
	out := CompareResponse{
		Left:       req.Left,
		Right:      req.Right,
		Score:      res.Score,
		Algorithm:  res.Algorithm.String(),
		Exhaustive: res.Exhaustive,
		Stopped:    res.Stopped,
		Mapping:    wireMapping(res.Mapping),
		ElapsedMS:  float64(res.Elapsed) / float64(time.Millisecond),
	}
	if withStats {
		st := res.Stats
		out.Stats = &st
	}
	return out
}

func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	var req CompareRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	res, ok := s.runCompare(w, r, req.Left, req.Right, &req.Options)
	if !ok {
		return
	}
	vars.Add("compares", 1)
	writeJSON(w, http.StatusOK, compareResponse(req, res, true))
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req ExplainRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	res, ok := s.runCompare(w, r, req.Left, req.Right, &req.Options)
	if !ok {
		return
	}
	vars.Add("explains", 1)
	out := ExplainResponse{
		CompareResponse:   compareResponse(CompareRequest(req), res, false),
		Pairs:             []WirePair{},
		LeftUnmatched:     []int64{},
		RightUnmatched:    []int64{},
		LeftValueMapping:  map[string]string{},
		RightValueMapping: map[string]string{},
	}
	for _, p := range res.Pairs {
		out.Pairs = append(out.Pairs, WirePair{
			Relation: p.Relation,
			LeftID:   int64(p.LeftID),
			RightID:  int64(p.RightID),
			Score:    p.Score,
		})
	}
	for _, id := range res.LeftUnmatched {
		out.LeftUnmatched = append(out.LeftUnmatched, int64(id))
	}
	for _, id := range res.RightUnmatched {
		out.RightUnmatched = append(out.RightUnmatched, int64(id))
	}
	for k, v := range res.LeftValueMapping {
		out.LeftValueMapping[k.String()] = v.String()
	}
	for k, v := range res.RightValueMapping {
		out.RightValueMapping[k.String()] = v.String()
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleRank(w http.ResponseWriter, r *http.Request) {
	var req RankRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	mode, err := parseMode(req.Options.Mode)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ex, ok := s.reg.Get(req.Example)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown instance %q", req.Example)
		return
	}
	cands, err := s.reg.Candidates(req.Example, req.Candidates)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	ctx, cancel := requestContext(r, &req.Options)
	defer cancel()
	release, err := s.acquire(ctx)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "no worker available before deadline: %v", err)
		return
	}
	defer release()
	start := time.Now()
	// The registry's resident sketch index narrows the ranking to a
	// shortlist; no_index (or a lake smaller than the shortlist) degrades
	// to the full scan transparently.
	var idx lakeindex.Searcher
	if !req.NoIndex {
		idx = s.reg.Index()
	}
	results, ist, err := lake.RankIndexedContext(ctx, ex.Prepared, cands, idx, lake.Options{
		MinValueOverlap:     req.MinValueOverlap,
		MaxSample:           req.MaxSample,
		Lambda:              req.Options.Lambda,
		ExplicitZeroLambda:  req.Options.ExplicitZeroLambda,
		Mode:                mode,
		Workers:             req.Workers,
		SigWorkers:          req.Options.SigWorkers,
		PerCandidateTimeout: time.Duration(req.PerCandidateTimeoutMS) * time.Millisecond,
		TopK:                req.TopK,
		MinShortlist:        req.MinShortlist,
		DiscoverMapping:     req.DiscoverMapping,
	})
	if err != nil {
		// A canceled ranking is a deadline outcome, not a bad request:
		// report it as such so load clients can tell the cases apart.
		status := http.StatusUnprocessableEntity
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			status = http.StatusRequestTimeout
			vars.Add("stopped", 1)
		}
		writeError(w, status, "%v", err)
		return
	}
	vars.Add("ranks", 1)
	out := RankResponse{
		Example: req.Example,
		Results: []RankedResult{},
		Index: RankIndexInfo{
			FullScan:      ist.FullScan,
			Probed:        ist.Probed,
			Widened:       ist.Widened,
			ShortlistSize: ist.ShortlistSize,
			Unindexed:     ist.Unindexed,
			SketchBuildMS: float64(ist.SketchBuild) / float64(time.Millisecond),
		},
		ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond),
	}
	for _, res := range results {
		rr := RankedResult{
			Name:     res.Name,
			Score:    res.Score,
			Overlap:  res.Overlap,
			Pruned:   res.Pruned,
			TimedOut: res.TimedOut,
		}
		if res.Mapping != nil {
			rr.MappingConfidence = res.Mapping.Confidence
		}
		out.Results = append(out.Results, rr)
	}
	writeJSON(w, http.StatusOK, out)
}

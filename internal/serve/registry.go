package serve

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"instcmp"
	"instcmp/internal/lake"
	"instcmp/internal/lakeindex"
)

// Entry is one resident instance: the prepared comparison state plus
// metadata. Entries are immutable once registered; the registry hands out
// the same *Entry to every request, and any number of comparisons may read
// the prepared state concurrently.
type Entry struct {
	Name       string
	Prepared   *instcmp.Prepared
	Registered time.Time
}

// Info summarizes the entry for listings.
func (e *Entry) Info() InstanceInfo {
	st := e.Prepared.Instance().Stats()
	return InstanceInfo{
		Name:       e.Name,
		Relations:  st.Relations,
		Tuples:     st.Tuples,
		Nulls:      st.DistinctNulls,
		Registered: e.Registered,
	}
}

// Registry keeps instances resident in prepared form, so the cost of
// normalizing and coding an instance is paid once at registration and every
// later compare/rank/explain request starts from the prepared state.
//
// The map is guarded by an RWMutex: reads (Get, List, Snapshot) take the
// read lock and can proceed concurrently with running comparisons, which
// hold no lock at all — they operate on immutable *Entry values obtained
// under the read lock. Register prepares OUTSIDE the lock (preparation is
// the expensive step) and only the map insert is serialized.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*Entry
	// index is the resident sketch index over the registered instances,
	// maintained on Register/Delete and probed by /rank. It has its own
	// internal lock; it is touched outside mu so a slow probe never blocks
	// registration. The two can therefore disagree for an instant — an
	// entry registered but not yet indexed — which indexed ranking absorbs
	// by force-shortlisting unindexed candidates.
	index *lakeindex.Dynamic
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		entries: map[string]*Entry{},
		index:   lakeindex.NewDynamic(),
	}
}

// Index returns the live sketch index over the registered instances.
func (g *Registry) Index() *lakeindex.Dynamic { return g.index }

// Register prepares the instance and stores it under the name. Registering
// an existing name is an error (delete first to replace): silently swapping
// an instance under a running comparison would make results unattributable.
func (g *Registry) Register(name string, in *instcmp.Instance) (*Entry, error) {
	if name == "" {
		return nil, fmt.Errorf("serve: instance name must be non-empty")
	}
	prep, err := instcmp.Prepare(in)
	if err != nil {
		return nil, err
	}
	// Sketch outside both locks: like preparation, sketching is the
	// expensive step (one pass over the coded rows).
	sk := lakeindex.NewSketch(prep.SketchFeatures())
	e := &Entry{Name: name, Prepared: prep, Registered: time.Now()}
	g.mu.Lock()
	if _, dup := g.entries[name]; dup {
		g.mu.Unlock()
		return nil, fmt.Errorf("serve: instance %q already registered", name)
	}
	g.entries[name] = e
	g.mu.Unlock()
	g.index.Add(name, sk)
	return e, nil
}

// Get returns the entry registered under the name, or false.
func (g *Registry) Get(name string) (*Entry, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	e, ok := g.entries[name]
	return e, ok
}

// Delete removes the entry registered under the name and reports whether it
// existed. Comparisons already running against the entry finish normally:
// they hold the immutable *Entry, not the registry slot.
func (g *Registry) Delete(name string) bool {
	g.mu.Lock()
	_, ok := g.entries[name]
	delete(g.entries, name)
	g.mu.Unlock()
	if ok {
		g.index.Remove(name)
	}
	return ok
}

// Len returns the number of registered instances.
func (g *Registry) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.entries)
}

// List returns every entry sorted by name.
func (g *Registry) List() []*Entry {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]*Entry, 0, len(g.entries))
	for _, e := range g.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Candidates resolves a rank request's candidate list to prepared lake
// candidates: the named entries, or — with no names — every registered
// instance except the example, in name order (a deterministic default, so
// equal requests rank equal lakes).
func (g *Registry) Candidates(example string, names []string) ([]lake.PreparedCandidate, error) {
	if len(names) == 0 {
		var cands []lake.PreparedCandidate
		for _, e := range g.List() {
			if e.Name == example {
				continue
			}
			cands = append(cands, lake.PreparedCandidate{Name: e.Name, Prepared: e.Prepared})
		}
		return cands, nil
	}
	cands := make([]lake.PreparedCandidate, len(names))
	for i, name := range names {
		e, ok := g.Get(name)
		if !ok {
			return nil, fmt.Errorf("serve: unknown instance %q", name)
		}
		cands[i] = lake.PreparedCandidate{Name: e.Name, Prepared: e.Prepared}
	}
	return cands, nil
}

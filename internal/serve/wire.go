package serve

import (
	"fmt"
	"time"

	"instcmp"
	"instcmp/internal/model"
)

// WireInstance is the JSON shape of an instance: relations of named,
// schema'd string tuples. Cells reuse the CSV convention — a cell starting
// with "_:" (model.NullPrefix) is the labeled null named by the rest of the
// cell, everything else is a constant.
type WireInstance struct {
	Relations []WireRelation `json:"relations"`
}

// WireRelation is one relation of a WireInstance.
type WireRelation struct {
	Name   string     `json:"name"`
	Attrs  []string   `json:"attrs"`
	Tuples [][]string `json:"tuples"`
}

// Decode validates and converts the wire instance into a model instance.
func (w WireInstance) Decode() (*instcmp.Instance, error) {
	if len(w.Relations) == 0 {
		return nil, fmt.Errorf("instance has no relations")
	}
	in := instcmp.NewInstance()
	seen := map[string]bool{}
	//instlint:allow ctxpoll -- one linear pass over a body already capped by MaxBytesReader; decoding that body cost more
	for _, rel := range w.Relations {
		if rel.Name == "" {
			return nil, fmt.Errorf("relation with empty name")
		}
		if seen[rel.Name] {
			return nil, fmt.Errorf("duplicate relation %q", rel.Name)
		}
		seen[rel.Name] = true
		if len(rel.Attrs) == 0 {
			return nil, fmt.Errorf("relation %q has no attributes", rel.Name)
		}
		in.AddRelation(rel.Name, rel.Attrs...)
		for ti, row := range rel.Tuples {
			if len(row) != len(rel.Attrs) {
				return nil, fmt.Errorf("relation %q tuple %d has %d cells, want %d",
					rel.Name, ti, len(row), len(rel.Attrs))
			}
			vals := make([]instcmp.Value, len(row))
			for i, cell := range row {
				vals[i] = model.Parse(cell)
			}
			in.Append(rel.Name, vals...)
		}
	}
	return in, nil
}

// EncodeInstance converts an instance to its wire shape (nulls rendered
// with the "_:" marker).
func EncodeInstance(in *instcmp.Instance) *WireInstance {
	w := &WireInstance{}
	//instlint:allow ctxpoll -- one linear pass over an already-registered instance, cheaper than the JSON encode that follows
	for _, rel := range in.Relations() {
		wr := WireRelation{Name: rel.Name, Attrs: append([]string(nil), rel.Attrs...)}
		for _, t := range rel.Tuples {
			row := make([]string, len(t.Values))
			for i, v := range t.Values {
				row[i] = v.String()
			}
			wr.Tuples = append(wr.Tuples, row)
		}
		w.Relations = append(w.Relations, wr)
	}
	return w
}

// WireOptions is the JSON shape of comparison options shared by the
// compare and explain endpoints. The zero value means the engine defaults
// (n-to-m mode, default λ, automatic algorithm).
type WireOptions struct {
	// Mode is "1to1", "functional", or "ntom" (default), matching the CLI.
	Mode string `json:"mode,omitempty"`
	// Lambda is the null-to-constant penalty (0 = default; set
	// ExplicitZeroLambda for λ = 0).
	Lambda             float64 `json:"lambda,omitempty"`
	ExplicitZeroLambda bool    `json:"explicit_zero_lambda,omitempty"`
	// Algorithm is "auto" (default), "signature", or "exact".
	Algorithm     string `json:"algorithm,omitempty"`
	ExactMaxNodes int64  `json:"exact_max_nodes,omitempty"`
	ExactWorkers  int    `json:"exact_workers,omitempty"`
	SigWorkers    int    `json:"sig_workers,omitempty"`
	Partial       bool   `json:"partial,omitempty"`
	MinPartialSig int    `json:"min_partial_sig,omitempty"`
	AlignSchemas  bool   `json:"align_schemas,omitempty"`
	// DiscoverMapping compares under a discovered attribute mapping when
	// the schemas mismatch (renamed/reordered columns); the response then
	// carries the mapping and its confidence.
	DiscoverMapping bool `json:"discover_mapping,omitempty"`
	// TimeoutMS bounds the whole request. A request that exceeds it does
	// not fail: the engines are anytime, so the response carries the best
	// match found with "stopped" set (see Result.Stopped).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// parseMode maps a wire mode string to an engine mode.
func parseMode(s string) (instcmp.Mode, error) {
	switch s {
	case "1to1":
		return instcmp.OneToOne, nil
	case "functional":
		return instcmp.Functional, nil
	case "ntom", "":
		return instcmp.ManyToMany, nil
	}
	return instcmp.ManyToMany, fmt.Errorf("unknown mode %q (want 1to1, functional, or ntom)", s)
}

// parseAlgorithm maps a wire algorithm string to an engine selector.
func parseAlgorithm(s string) (instcmp.Algorithm, error) {
	switch s {
	case "auto", "":
		return instcmp.AlgoAuto, nil
	case "signature":
		return instcmp.AlgoSignature, nil
	case "exact":
		return instcmp.AlgoExact, nil
	}
	return instcmp.AlgoAuto, fmt.Errorf("unknown algorithm %q (want auto, signature, or exact)", s)
}

// engineOptions converts wire options to engine options (TimeoutMS is
// handled by the request context, not here).
func (w *WireOptions) engineOptions() (*instcmp.Options, error) {
	mode, err := parseMode(w.Mode)
	if err != nil {
		return nil, err
	}
	algo, err := parseAlgorithm(w.Algorithm)
	if err != nil {
		return nil, err
	}
	return &instcmp.Options{
		Mode:               mode,
		Lambda:             w.Lambda,
		ExplicitZeroLambda: w.ExplicitZeroLambda,
		Algorithm:          algo,
		ExactMaxNodes:      w.ExactMaxNodes,
		ExactWorkers:       w.ExactWorkers,
		SigWorkers:         w.SigWorkers,
		Partial:            w.Partial,
		MinPartialSig:      w.MinPartialSig,
		AlignSchemas:       w.AlignSchemas,
		DiscoverMapping:    w.DiscoverMapping,
	}, nil
}

func (w *WireOptions) timeout() time.Duration {
	if w.TimeoutMS <= 0 {
		return 0
	}
	return time.Duration(w.TimeoutMS) * time.Millisecond
}

// CompareRequest asks for the similarity of two registered instances.
type CompareRequest struct {
	Left    string      `json:"left"`
	Right   string      `json:"right"`
	Options WireOptions `json:"options"`
}

// CompareResponse reports a comparison outcome. Stopped is "" for a
// comparison that ran to its natural end and a Stopped* reason when the
// request deadline (or an engine budget) cut it short — the score is then
// the best match found so far, not an error.
type CompareResponse struct {
	Left       string                   `json:"left"`
	Right      string                   `json:"right"`
	Score      float64                  `json:"score"`
	Algorithm  string                   `json:"algorithm"`
	Exhaustive bool                     `json:"exhaustive"`
	Stopped    string                   `json:"stopped,omitempty"`
	Mapping    *WireMapping             `json:"mapping,omitempty"`
	ElapsedMS  float64                  `json:"elapsed_ms"`
	Stats      *instcmp.ComparisonStats `json:"stats,omitempty"`
}

// WireColumnMapping is one discovered attribute pair.
type WireColumnMapping struct {
	Left       string  `json:"left"`
	Right      string  `json:"right"`
	Similarity float64 `json:"similarity"`
	Method     string  `json:"method"`
}

// WireRelationMapping is one discovered relation pair with its columns.
type WireRelationMapping struct {
	Left          string              `json:"left"`
	Right         string              `json:"right"`
	Confidence    float64             `json:"confidence"`
	Columns       []WireColumnMapping `json:"columns"`
	LeftUnmapped  []string            `json:"left_unmapped,omitempty"`
	RightUnmapped []string            `json:"right_unmapped,omitempty"`
}

// WireMapping is the JSON shape of a discovered schema mapping
// (instcmp.SchemaMapping).
type WireMapping struct {
	Confidence float64               `json:"confidence"`
	Relations  []WireRelationMapping `json:"relations"`
	LeftOnly   []string              `json:"left_only,omitempty"`
	RightOnly  []string              `json:"right_only,omitempty"`
}

// wireMapping converts a discovered mapping to its wire shape (nil in,
// nil out).
func wireMapping(m *instcmp.SchemaMapping) *WireMapping {
	if m == nil {
		return nil
	}
	w := &WireMapping{Confidence: m.Confidence, LeftOnly: m.LeftOnly, RightOnly: m.RightOnly}
	//instlint:allow ctxpoll -- one linear pass over a mapping bounded by the schemas' column counts, cheaper than the JSON encode that follows
	for _, rm := range m.Relations {
		wr := WireRelationMapping{
			Left: rm.Left, Right: rm.Right, Confidence: rm.Confidence,
			LeftUnmapped: rm.LeftUnmapped, RightUnmapped: rm.RightUnmapped,
		}
		for _, c := range rm.Columns {
			wr.Columns = append(wr.Columns, WireColumnMapping{
				Left: c.Left, Right: c.Right, Similarity: c.Similarity, Method: c.Method,
			})
		}
		w.Relations = append(w.Relations, wr)
	}
	return w
}

// ExplainRequest asks for the full instance match between two registered
// instances, not just the score.
type ExplainRequest struct {
	Left    string      `json:"left"`
	Right   string      `json:"right"`
	Options WireOptions `json:"options"`
}

// WirePair is one matched tuple pair.
type WirePair struct {
	Relation string  `json:"relation"`
	LeftID   int64   `json:"left_id"`
	RightID  int64   `json:"right_id"`
	Score    float64 `json:"score"`
}

// ExplainResponse is a CompareResponse plus the match itself: the tuple
// mapping, the unmatched tuples, and the value mappings restricted to
// labeled nulls (values rendered with the "_:" marker).
type ExplainResponse struct {
	CompareResponse
	Pairs             []WirePair        `json:"pairs"`
	LeftUnmatched     []int64           `json:"left_unmatched"`
	RightUnmatched    []int64           `json:"right_unmatched"`
	LeftValueMapping  map[string]string `json:"left_value_mapping"`
	RightValueMapping map[string]string `json:"right_value_mapping"`
}

// RankRequest ranks registered instances against a registered example.
// Empty Candidates means every registered instance except the example.
type RankRequest struct {
	Example    string      `json:"example"`
	Candidates []string    `json:"candidates,omitempty"`
	Options    WireOptions `json:"options"`
	// MinValueOverlap, MaxSample, and PerCandidateTimeoutMS tune the
	// lake prefilter and per-candidate budget (see lake.Options).
	MinValueOverlap       float64 `json:"min_value_overlap,omitempty"`
	MaxSample             int     `json:"max_sample,omitempty"`
	PerCandidateTimeoutMS int64   `json:"per_candidate_timeout_ms,omitempty"`
	// Workers fans candidate comparisons out (0 or 1 = sequential).
	Workers int `json:"workers,omitempty"`
	// TopK and MinShortlist size the sketch-index shortlist as
	// max(4*top_k, min_shortlist); zero means the lake defaults (10 / 64).
	TopK         int `json:"top_k,omitempty"`
	MinShortlist int `json:"min_shortlist,omitempty"`
	// NoIndex forces a full scan, comparing every candidate: the recall
	// oracle, and the right call when scores beyond the top-k matter.
	NoIndex bool `json:"no_index,omitempty"`
	// DiscoverMapping compares drifted candidates under discovered
	// attribute mappings (see lake.Options.DiscoverMapping); ranked
	// results then report the per-candidate mapping confidence.
	DiscoverMapping bool `json:"discover_mapping,omitempty"`
}

// RankedResult is one ranked candidate.
type RankedResult struct {
	Name     string  `json:"name"`
	Score    float64 `json:"score"`
	Overlap  float64 `json:"overlap"`
	Pruned   bool    `json:"pruned,omitempty"`
	TimedOut bool    `json:"timed_out,omitempty"`
	// MappingConfidence is the discovered mapping's confidence when the
	// ranking ran with discover_mapping and this candidate's schema
	// drifted from the example's; 0 otherwise.
	MappingConfidence float64 `json:"mapping_confidence,omitempty"`
}

// RankIndexInfo reports how a ranking used the registry's sketch index
// (lake.IndexStats on the wire). FullScan = true means every candidate was
// compared — because the caller sent no_index, or the lake was no larger
// than the shortlist; candidates outside the shortlist otherwise come back
// with pruned = true and score 0.
type RankIndexInfo struct {
	FullScan      bool    `json:"full_scan"`
	Probed        int     `json:"probed,omitempty"`
	Widened       bool    `json:"widened,omitempty"`
	ShortlistSize int     `json:"shortlist_size"`
	Unindexed     int     `json:"unindexed,omitempty"`
	SketchBuildMS float64 `json:"sketch_build_ms,omitempty"`
}

// RankResponse reports a ranking, best candidate first.
type RankResponse struct {
	Example   string         `json:"example"`
	Results   []RankedResult `json:"results"`
	Index     RankIndexInfo  `json:"index"`
	ElapsedMS float64        `json:"elapsed_ms"`
}

// InstanceInfo summarizes one registered instance.
type InstanceInfo struct {
	Name       string    `json:"name"`
	Relations  int       `json:"relations"`
	Tuples     int       `json:"tuples"`
	Nulls      int       `json:"nulls"`
	Registered time.Time `json:"registered"`
}

// RegisterRequest registers an instance under a name.
type RegisterRequest struct {
	Name     string       `json:"name"`
	Instance WireInstance `json:"instance"`
}

// errorResponse is the JSON error envelope.
type errorResponse struct {
	Error string `json:"error"`
}

// Package compat implements Algorithm 2 of the paper (CompatibleTuples):
// finding, for each tuple of one instance, the tuples of the other instance
// it could be matched with. It combines the per-attribute hash indexes and
// c-compatibility pruning of Sec. 6.1 with the exact pairwise unification
// check (t ≃ t').
//
// Two index flavors exist. CodedIndex is what the comparison algorithms use:
// it runs on the integer-coded rows of a model.CodedRelation, buckets by
// ValueID, and performs the pairwise unification check with a reusable
// scratch union-find — no per-candidate allocation and no string hashing.
// The Value/Tuple-based Index remains for callers outside the coded world
// (the scenario generator's gold-extension, tests).
package compat

import (
	"instcmp/internal/model"
)

// CCompatible implements Def. 6.1's necessary condition t ~ t': the tuples
// hold no conflicting constants (every attribute has equal constants or at
// least one null).
func CCompatible(lt, rt *model.Tuple) bool {
	for i, lv := range lt.Values {
		rv := rt.Values[i]
		if lv.IsConst() && rv.IsConst() && lv != rv {
			return false
		}
	}
	return true
}

// Compatible implements Def. 6.1's t ≃ t': value mappings h_l, h_r with
// h_l(t) = h_r(t') exist. This is a unification over the at most 2·arity
// values of the pair; it fails exactly when some equivalence class would
// contain two distinct constants (e.g. ⟨a1,b1,c1⟩ vs ⟨a1,N1,N1⟩, where N1
// would need to equal both b1 and c1).
func Compatible(lt, rt *model.Tuple) bool {
	// A tiny union-find over the pair's values, with constants kept at
	// class roots so conflicts surface as two constant roots meeting.
	var parent map[model.Value]model.Value
	find := func(v model.Value) model.Value {
		for {
			p, ok := parent[v]
			if !ok {
				return v
			}
			v = p
		}
	}
	for i, lv := range lt.Values {
		rv := rt.Values[i]
		if lv.IsConst() && rv.IsConst() {
			if lv != rv {
				return false
			}
			continue
		}
		if parent == nil {
			parent = make(map[model.Value]model.Value, 2*len(lt.Values))
		}
		ra, rb := find(lv), find(rv)
		if ra == rb {
			continue
		}
		if ra.IsConst() && rb.IsConst() {
			return false
		}
		if rb.IsConst() {
			parent[ra] = rb
		} else {
			parent[rb] = ra
		}
	}
	return true
}

// pairUF is a scratch union-find over the ≤ 2·arity distinct ValueIDs of one
// tuple pair. Elements are located by linear scan — with at most 128
// entries that beats any map — and the backing slices are reused across
// calls, so a pairwise check allocates nothing after warm-up. Constants are
// kept at class roots, mirroring Compatible above.
type pairUF struct {
	ids    []model.ValueID
	parent []int32
	isC    []bool
}

func (u *pairUF) reset() {
	u.ids = u.ids[:0]
	u.parent = u.parent[:0]
	u.isC = u.isC[:0]
}

// add returns the element index of id, registering it on first sight.
func (u *pairUF) add(id model.ValueID, isConst bool) int32 {
	for j, x := range u.ids {
		if x == id {
			return int32(j)
		}
	}
	j := int32(len(u.ids))
	u.ids = append(u.ids, id)
	u.parent = append(u.parent, j)
	u.isC = append(u.isC, isConst)
	return j
}

func (u *pairUF) find(j int32) int32 {
	for u.parent[j] != j {
		j = u.parent[j]
	}
	return j
}

// compatibleRows is the coded form of CCompatible && Compatible: it reports
// whether two coded rows admit value mappings with h_l(t) = h_r(t'),
// reading nullness from the ID-indexed flag table.
func compatibleRows(a, b []model.ValueID, null []bool, uf *pairUF) bool {
	uf.reset()
	for i, la := range a {
		lb := b[i]
		an, bn := null[la], null[lb]
		if !an && !bn {
			if la != lb {
				return false
			}
			continue
		}
		ra := uf.find(uf.add(la, !an))
		rb := uf.find(uf.add(lb, !bn))
		if ra == rb {
			continue
		}
		if uf.isC[ra] && uf.isC[rb] {
			return false
		}
		if uf.isC[rb] {
			uf.parent[ra] = rb
		} else {
			uf.parent[rb] = ra
		}
	}
	return true
}

// Index is the per-attribute hash index V_A of Alg. 2: for each attribute,
// constant values map to the positions holding them. Instead of the paper's
// single * bucket per attribute, tuples are additionally grouped by their
// ground mask (the set of constant-valued attributes), which lets Candidates
// enumerate "all probe-constant attributes are null here" tuples without
// scanning every tuple that has a null somewhere.
type Index struct {
	rel     *model.Relation
	idxs    []int
	byConst []map[model.Value][]int
	byMask  map[uint64][]int // ground mask -> positions
	masks   []uint64         // distinct ground masks
	stamp   []int            // de-duplication stamps, len(rel.Tuples)
	gen     int
}

// MaxIndexArity bounds relation arity for mask-based indexing.
const MaxIndexArity = 64

// NewIndex builds the index over the listed tuple positions of a relation
// (nil means all tuples).
func NewIndex(rel *model.Relation, idxs []int) *Index {
	if rel.Arity() > MaxIndexArity {
		panic("compat: relation arity exceeds 64")
	}
	if idxs == nil {
		idxs = make([]int, len(rel.Tuples))
		for i := range idxs {
			idxs[i] = i
		}
	}
	ix := &Index{
		rel:     rel,
		idxs:    idxs,
		byConst: make([]map[model.Value][]int, rel.Arity()),
		byMask:  map[uint64][]int{},
		stamp:   make([]int, len(rel.Tuples)),
	}
	for a := range ix.byConst {
		ix.byConst[a] = map[model.Value][]int{}
	}
	for _, ti := range idxs {
		t := &rel.Tuples[ti]
		var mask uint64
		for a, v := range t.Values {
			if v.IsConst() {
				mask |= 1 << a
				ix.byConst[a][v] = append(ix.byConst[a][v], ti)
			}
		}
		if _, seen := ix.byMask[mask]; !seen {
			ix.masks = append(ix.masks, mask)
		}
		ix.byMask[mask] = append(ix.byMask[mask], ti)
	}
	return ix
}

// GroundMask returns the bitmask of constant-valued attributes of a tuple.
func GroundMask(t *model.Tuple) uint64 {
	var mask uint64
	for a, v := range t.Values {
		if v.IsConst() {
			mask |= 1 << a
		}
	}
	return mask
}

// Candidates returns the positions of indexed tuples compatible (t ≃ t')
// with the given probe tuple. Every compatible tuple either shares a
// constant with the probe on some attribute (and is found in that
// attribute's V_A bucket) or is null on every probe-constant attribute (and
// is found through a ground mask disjoint from the probe's); both groups
// are filtered through the exact pairwise check.
func (ix *Index) Candidates(t *model.Tuple) []int {
	ix.gen++
	var out []int
	check := func(ti int) {
		if ix.stamp[ti] == ix.gen {
			return
		}
		ix.stamp[ti] = ix.gen
		cand := &ix.rel.Tuples[ti]
		if CCompatible(t, cand) && Compatible(t, cand) {
			out = append(out, ti)
		}
	}
	probeMask := GroundMask(t)
	for a, v := range t.Values {
		if v.IsConst() {
			for _, ti := range ix.byConst[a][v] {
				check(ti)
			}
		}
	}
	for _, mask := range ix.masks {
		if mask&probeMask == 0 {
			for _, ti := range ix.byMask[mask] {
				check(ti)
			}
		}
	}
	return out
}

// Candidates computes the full compatibility map of Alg. 2 for one
// relation pair: for every listed left position, the compatible right
// positions. Passing nil position lists means all tuples of that side.
func Candidates(lrel, rrel *model.Relation, leftIdxs, rightIdxs []int) map[int][]int {
	ix := NewIndex(rrel, rightIdxs)
	if leftIdxs == nil {
		leftIdxs = make([]int, len(lrel.Tuples))
		for i := range leftIdxs {
			leftIdxs[i] = i
		}
	}
	out := make(map[int][]int, len(leftIdxs))
	for _, li := range leftIdxs {
		out[li] = ix.Candidates(&lrel.Tuples[li])
	}
	return out
}

// CodedIndex is the Alg. 2 index over a coded relation: per-attribute
// buckets keyed by ValueID plus the ground-mask grouping of Index, probed
// with coded rows. It is what the exact search and the signature
// algorithm's completion step run on.
type CodedIndex struct {
	crel    *model.CodedRelation
	null    []bool
	byConst []map[model.ValueID][]int32
	byMask  map[uint64][]int32
	masks   []uint64
	// p is the index's own probe cursor, backing the Candidates method;
	// concurrent probers come from NewProber.
	p Prober
}

// NewCodedIndex builds the index over the listed row positions (nil means
// all rows). The interner must be the one the relation was coded with.
func NewCodedIndex(crel *model.CodedRelation, idxs []int, in *model.Interner) *CodedIndex {
	ix := &CodedIndex{
		crel:    crel,
		null:    in.NullFlags(),
		byConst: make([]map[model.ValueID][]int32, crel.Arity),
		byMask:  map[uint64][]int32{},
	}
	ix.p = Prober{ix: ix, stamp: make([]int32, crel.Rows())}
	for a := range ix.byConst {
		ix.byConst[a] = map[model.ValueID][]int32{}
	}
	add := func(ti int) {
		row, mask := ix.crel.Row(ti), ix.crel.Masks[ti]
		for a, id := range row {
			if mask&(1<<a) != 0 {
				ix.byConst[a][id] = append(ix.byConst[a][id], int32(ti))
			}
		}
		if _, seen := ix.byMask[mask]; !seen {
			ix.masks = append(ix.masks, mask)
		}
		ix.byMask[mask] = append(ix.byMask[mask], int32(ti))
	}
	if idxs == nil {
		for ti := 0; ti < crel.Rows(); ti++ {
			add(ti)
		}
	} else {
		for _, ti := range idxs {
			add(ti)
		}
	}
	return ix
}

// Candidates returns the positions of indexed rows compatible (t ≃ t') with
// the probe row, whose ground mask the caller supplies (the coded relations
// precompute it). The returned slice is reused by the index and only valid
// until the next Candidates call. For concurrent probing use NewProber.
func (ix *CodedIndex) Candidates(row []model.ValueID, probeMask uint64) []int {
	return ix.p.Candidates(row, probeMask)
}

// Prober is a probe cursor over a CodedIndex: it shares the index's
// immutable buckets but owns the per-probe scratch (the dedup stamps, the
// pairwise union-find, the output slice), so any number of Probers may
// probe one index concurrently — the signature algorithm's parallel
// completion step creates one per worker. Candidate order is a function of
// the index alone, so every prober returns identical lists for identical
// probes.
type Prober struct {
	ix    *CodedIndex
	stamp []int32
	gen   int32
	uf    pairUF
	out   []int
}

// NewProber returns a fresh probe cursor over the index.
func (ix *CodedIndex) NewProber() *Prober {
	return &Prober{ix: ix, stamp: make([]int32, ix.crel.Rows())}
}

// Candidates is CodedIndex.Candidates on this prober's private scratch.
// The returned slice is reused and only valid until the prober's next call.
func (p *Prober) Candidates(row []model.ValueID, probeMask uint64) []int {
	ix := p.ix
	p.gen++
	p.out = p.out[:0]
	check := func(ti int32) {
		if p.stamp[ti] == p.gen {
			return
		}
		p.stamp[ti] = p.gen
		if compatibleRows(row, ix.crel.Row(int(ti)), ix.null, &p.uf) {
			p.out = append(p.out, int(ti))
		}
	}
	for a, id := range row {
		if probeMask&(1<<a) != 0 {
			for _, ti := range ix.byConst[a][id] {
				check(ti)
			}
		}
	}
	for _, mask := range ix.masks {
		if mask&probeMask == 0 {
			for _, ti := range ix.byMask[mask] {
				check(ti)
			}
		}
	}
	return p.out
}

// Package compat implements Algorithm 2 of the paper (CompatibleTuples):
// finding, for each tuple of one instance, the tuples of the other instance
// it could be matched with. It combines the per-attribute hash indexes and
// c-compatibility pruning of Sec. 6.1 with the exact pairwise unification
// check (t ≃ t').
package compat

import (
	"instcmp/internal/model"
)

// CCompatible implements Def. 6.1's necessary condition t ~ t': the tuples
// hold no conflicting constants (every attribute has equal constants or at
// least one null).
func CCompatible(lt, rt *model.Tuple) bool {
	for i, lv := range lt.Values {
		rv := rt.Values[i]
		if lv.IsConst() && rv.IsConst() && lv != rv {
			return false
		}
	}
	return true
}

// Compatible implements Def. 6.1's t ≃ t': value mappings h_l, h_r with
// h_l(t) = h_r(t') exist. This is a unification over the at most 2·arity
// values of the pair; it fails exactly when some equivalence class would
// contain two distinct constants (e.g. ⟨a1,b1,c1⟩ vs ⟨a1,N1,N1⟩, where N1
// would need to equal both b1 and c1).
func Compatible(lt, rt *model.Tuple) bool {
	// A tiny union-find over the pair's values, with constants kept at
	// class roots so conflicts surface as two constant roots meeting.
	var parent map[model.Value]model.Value
	find := func(v model.Value) model.Value {
		for {
			p, ok := parent[v]
			if !ok {
				return v
			}
			v = p
		}
	}
	for i, lv := range lt.Values {
		rv := rt.Values[i]
		if lv.IsConst() && rv.IsConst() {
			if lv != rv {
				return false
			}
			continue
		}
		if parent == nil {
			parent = make(map[model.Value]model.Value, 2*len(lt.Values))
		}
		ra, rb := find(lv), find(rv)
		if ra == rb {
			continue
		}
		if ra.IsConst() && rb.IsConst() {
			return false
		}
		if rb.IsConst() {
			parent[ra] = rb
		} else {
			parent[rb] = ra
		}
	}
	return true
}

// Index is the per-attribute hash index V_A of Alg. 2: for each attribute,
// constant values map to the positions holding them. Instead of the paper's
// single * bucket per attribute, tuples are additionally grouped by their
// ground mask (the set of constant-valued attributes), which lets Candidates
// enumerate "all probe-constant attributes are null here" tuples without
// scanning every tuple that has a null somewhere.
type Index struct {
	rel     *model.Relation
	idxs    []int
	byConst []map[model.Value][]int
	byMask  map[uint64][]int // ground mask -> positions
	masks   []uint64         // distinct ground masks
	stamp   []int            // de-duplication stamps, len(rel.Tuples)
	gen     int
}

// MaxIndexArity bounds relation arity for mask-based indexing.
const MaxIndexArity = 64

// NewIndex builds the index over the listed tuple positions of a relation
// (nil means all tuples).
func NewIndex(rel *model.Relation, idxs []int) *Index {
	if rel.Arity() > MaxIndexArity {
		panic("compat: relation arity exceeds 64")
	}
	if idxs == nil {
		idxs = make([]int, len(rel.Tuples))
		for i := range idxs {
			idxs[i] = i
		}
	}
	ix := &Index{
		rel:     rel,
		idxs:    idxs,
		byConst: make([]map[model.Value][]int, rel.Arity()),
		byMask:  map[uint64][]int{},
		stamp:   make([]int, len(rel.Tuples)),
	}
	for a := range ix.byConst {
		ix.byConst[a] = map[model.Value][]int{}
	}
	for _, ti := range idxs {
		t := &rel.Tuples[ti]
		var mask uint64
		for a, v := range t.Values {
			if v.IsConst() {
				mask |= 1 << a
				ix.byConst[a][v] = append(ix.byConst[a][v], ti)
			}
		}
		if _, seen := ix.byMask[mask]; !seen {
			ix.masks = append(ix.masks, mask)
		}
		ix.byMask[mask] = append(ix.byMask[mask], ti)
	}
	return ix
}

// GroundMask returns the bitmask of constant-valued attributes of a tuple.
func GroundMask(t *model.Tuple) uint64 {
	var mask uint64
	for a, v := range t.Values {
		if v.IsConst() {
			mask |= 1 << a
		}
	}
	return mask
}

// Candidates returns the positions of indexed tuples compatible (t ≃ t')
// with the given probe tuple. Every compatible tuple either shares a
// constant with the probe on some attribute (and is found in that
// attribute's V_A bucket) or is null on every probe-constant attribute (and
// is found through a ground mask disjoint from the probe's); both groups
// are filtered through the exact pairwise check.
func (ix *Index) Candidates(t *model.Tuple) []int {
	ix.gen++
	var out []int
	check := func(ti int) {
		if ix.stamp[ti] == ix.gen {
			return
		}
		ix.stamp[ti] = ix.gen
		cand := &ix.rel.Tuples[ti]
		if CCompatible(t, cand) && Compatible(t, cand) {
			out = append(out, ti)
		}
	}
	probeMask := GroundMask(t)
	for a, v := range t.Values {
		if v.IsConst() {
			for _, ti := range ix.byConst[a][v] {
				check(ti)
			}
		}
	}
	for _, mask := range ix.masks {
		if mask&probeMask == 0 {
			for _, ti := range ix.byMask[mask] {
				check(ti)
			}
		}
	}
	return out
}

// Candidates computes the full compatibility map of Alg. 2 for one
// relation pair: for every listed left position, the compatible right
// positions. Passing nil position lists means all tuples of that side.
func Candidates(lrel, rrel *model.Relation, leftIdxs, rightIdxs []int) map[int][]int {
	ix := NewIndex(rrel, rightIdxs)
	if leftIdxs == nil {
		leftIdxs = make([]int, len(lrel.Tuples))
		for i := range leftIdxs {
			leftIdxs[i] = i
		}
	}
	out := make(map[int][]int, len(leftIdxs))
	for _, li := range leftIdxs {
		out[li] = ix.Candidates(&lrel.Tuples[li])
	}
	return out
}

package compat

import (
	"math/rand"
	"testing"

	"instcmp/internal/model"
)

func c(s string) model.Value { return model.Const(s) }
func n(s string) model.Value { return model.Null(s) }

func tup(vals ...model.Value) *model.Tuple {
	return &model.Tuple{Values: vals}
}

func TestCCompatible(t *testing.T) {
	cases := []struct {
		name string
		a, b *model.Tuple
		want bool
	}{
		{"equal consts", tup(c("a"), c("b")), tup(c("a"), c("b")), true},
		{"conflicting consts", tup(c("a"), c("b")), tup(c("a"), c("x")), false},
		{"null absorbs", tup(c("a"), n("N")), tup(c("a"), c("x")), true},
		{"both null", tup(n("M"), n("N")), tup(n("P"), n("Q")), true},
	}
	for _, tc := range cases {
		if got := CCompatible(tc.a, tc.b); got != tc.want {
			t.Errorf("%s: CCompatible = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestCompatiblePaperExample reproduces the Sec. 6.1 example: ⟨a1,b1,c1⟩ and
// ⟨a1,N1,N1⟩ are c-compatible but not compatible (N1 cannot be both b1 and c1).
func TestCompatiblePaperExample(t *testing.T) {
	a := tup(c("a1"), c("b1"), c("c1"))
	b := tup(c("a1"), n("N1"), n("N1"))
	if !CCompatible(a, b) {
		t.Error("pair should be c-compatible")
	}
	if Compatible(a, b) {
		t.Error("pair should not be compatible: N1 would equal b1 and c1")
	}
}

func TestCompatibleTransitiveThroughNulls(t *testing.T) {
	// N unifies with M (via col 1) and M with x (via col 2): consistent.
	a := tup(n("N"), n("N"))
	b := tup(n("M"), c("x"))
	if !Compatible(a, b) {
		t.Error("transitive unification should succeed")
	}
	// N must equal x (col 1) and y (col 2) transitively: inconsistent.
	a2 := tup(n("N"), n("N"))
	b2 := tup(c("x"), c("y"))
	if Compatible(a2, b2) {
		t.Error("transitive constant conflict missed")
	}
}

func TestCompatibleRepeatedNullAcrossSides(t *testing.T) {
	// Left repeats N; right has two distinct constants in those positions.
	a := tup(n("N"), n("N"), c("k"))
	b := tup(c("u"), c("u"), c("k"))
	if !Compatible(a, b) {
		t.Error("N -> u consistently should be compatible")
	}
	// Right repeats V where left has conflicting constants.
	a2 := tup(c("p"), c("q"), c("k"))
	b2 := tup(n("V"), n("V"), c("k"))
	if Compatible(a2, b2) {
		t.Error("V cannot equal both p and q")
	}
}

func TestCompatibleSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vals := []model.Value{c("a"), c("b"), c("x"), n("N1"), n("N2"), n("V1")}
	for trial := 0; trial < 500; trial++ {
		arity := 1 + rng.Intn(4)
		a := &model.Tuple{Values: make([]model.Value, arity)}
		b := &model.Tuple{Values: make([]model.Value, arity)}
		for i := 0; i < arity; i++ {
			a.Values[i] = vals[rng.Intn(3)] // left draws consts and N's
			if rng.Intn(2) == 0 {
				a.Values[i] = vals[3+rng.Intn(2)]
			}
			b.Values[i] = vals[rng.Intn(len(vals))]
		}
		if Compatible(a, b) != Compatible(b, a) {
			t.Fatalf("Compatible not symmetric for %v / %v", a, b)
		}
		if Compatible(a, b) && !CCompatible(a, b) {
			t.Fatalf("compatible pair not c-compatible: %v / %v", a, b)
		}
	}
}

func buildRel(rows ...[]model.Value) *model.Relation {
	r := &model.Relation{Name: "R"}
	if len(rows) > 0 {
		for i := range rows[0] {
			r.Attrs = append(r.Attrs, string(rune('A'+i)))
		}
	}
	for i, row := range rows {
		r.Tuples = append(r.Tuples, model.Tuple{ID: model.TupleID(i), Values: row})
	}
	return r
}

func TestIndexCandidates(t *testing.T) {
	right := buildRel(
		[]model.Value{c("a"), c("b")},
		[]model.Value{c("a"), n("V1")},
		[]model.Value{c("z"), c("b")},
		[]model.Value{n("V2"), n("V3")},
	)
	ix := NewIndex(right, nil)

	got := ix.Candidates(tup(c("a"), c("b")))
	want := map[int]bool{0: true, 1: true, 3: true}
	if len(got) != len(want) {
		t.Fatalf("candidates = %v, want keys %v", got, want)
	}
	for _, i := range got {
		if !want[i] {
			t.Errorf("unexpected candidate %d", i)
		}
	}

	// All-null probe matches everything.
	if got := ix.Candidates(tup(n("N1"), n("N2"))); len(got) != 4 {
		t.Errorf("all-null probe candidates = %v, want all 4", got)
	}

	// Probe with a constant unseen on the right matches only null slots.
	got = ix.Candidates(tup(c("q"), c("b")))
	if len(got) != 1 || got[0] != 3 {
		t.Errorf("unseen-constant probe = %v, want [3]", got)
	}
}

func TestCandidatesSubsets(t *testing.T) {
	left := buildRel(
		[]model.Value{c("a"), c("b")},
		[]model.Value{c("z"), c("z")},
	)
	right := buildRel(
		[]model.Value{c("a"), c("b")},
		[]model.Value{c("a"), n("V1")},
	)
	all := Candidates(left, right, nil, nil)
	if len(all) != 2 {
		t.Fatalf("expected entries for both left tuples, got %v", all)
	}
	if len(all[0]) != 2 {
		t.Errorf("left 0 candidates = %v, want 2", all[0])
	}
	if len(all[1]) != 0 {
		t.Errorf("left 1 candidates = %v, want none", all[1])
	}

	restricted := Candidates(left, right, []int{0}, []int{1})
	if len(restricted) != 1 || len(restricted[0]) != 1 || restricted[0][0] != 1 {
		t.Errorf("restricted candidates = %v", restricted)
	}
}

// TestCandidatesAgainstBruteForce cross-checks the indexed candidate
// computation against the quadratic definition on random relations.
func TestCandidatesAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	mk := func(rows, arity, doms int, side string) *model.Relation {
		r := &model.Relation{Name: "R"}
		for i := 0; i < arity; i++ {
			r.Attrs = append(r.Attrs, string(rune('A'+i)))
		}
		for i := 0; i < rows; i++ {
			vals := make([]model.Value, arity)
			for j := range vals {
				if rng.Intn(4) == 0 {
					vals[j] = model.Nullf("%s%d_%d", side, i, j)
				} else {
					vals[j] = model.Constf("c%d", rng.Intn(doms))
				}
			}
			r.Tuples = append(r.Tuples, model.Tuple{ID: model.TupleID(i), Values: vals})
		}
		return r
	}
	for trial := 0; trial < 20; trial++ {
		left := mk(15, 3, 4, "L")
		right := mk(15, 3, 4, "R")
		got := Candidates(left, right, nil, nil)
		for li := range left.Tuples {
			want := map[int]bool{}
			for ri := range right.Tuples {
				if Compatible(&left.Tuples[li], &right.Tuples[ri]) {
					want[ri] = true
				}
			}
			if len(got[li]) != len(want) {
				t.Fatalf("trial %d left %d: got %v, want %v", trial, li, got[li], want)
			}
			for _, ri := range got[li] {
				if !want[ri] {
					t.Fatalf("trial %d left %d: spurious candidate %d", trial, li, ri)
				}
			}
		}
	}
}

package model

import (
	"strings"
	"testing"
)

func TestRenderingHelpers(t *testing.T) {
	in := NewInstance()
	in.AddRelation("Conf", "Name", "Org")
	id := in.Append("Conf", Const("VLDB"), Null("N1"))
	rel := in.Relation("Conf")

	if got := rel.Cardinality(); got != 1 {
		t.Errorf("Cardinality = %d", got)
	}
	if tu := rel.Tuple(id); tu == nil || tu.Values[0] != Const("VLDB") {
		t.Errorf("Tuple(%d) = %v", id, tu)
	}
	if rel.Tuple(999) != nil {
		t.Error("missing id should return nil")
	}

	s := in.String()
	for _, want := range []string{"Conf(Name, Org)", "VLDB", "_:N1"} {
		if !strings.Contains(s, want) {
			t.Errorf("Instance.String missing %q:\n%s", want, s)
		}
	}
	ts := rel.Tuples[0].String()
	if ts != "(VLDB, _:N1)" {
		t.Errorf("Tuple.String = %q", ts)
	}
	if gs := Null("N1").GoString(); !strings.Contains(gs, `model.Null("N1")`) {
		t.Errorf("GoString = %q", gs)
	}
	if gs := Const("x").GoString(); !strings.Contains(gs, `model.Const("x")`) {
		t.Errorf("GoString = %q", gs)
	}
	if Constf("c%d", 7) != Const("c7") {
		t.Error("Constf formatting broken")
	}
}

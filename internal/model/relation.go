package model

import (
	"fmt"
	"slices"
	"strings"
)

// Relation is a named relation: an attribute list (the schema) and a list of
// tuples. Tuples are stored in insertion order; order carries no semantics.
type Relation struct {
	Name   string
	Attrs  []string
	Tuples []Tuple
}

// Arity returns the number of attributes of the relation.
func (r *Relation) Arity() int { return len(r.Attrs) }

// Cardinality returns the number of tuples in the relation.
func (r *Relation) Cardinality() int { return len(r.Tuples) }

// Size returns |r| * arity(r), the paper's Def. 5.1 size of a relation.
func (r *Relation) Size() int { return len(r.Tuples) * len(r.Attrs) }

// AttrIndex returns the position of the named attribute, or -1 if absent.
func (r *Relation) AttrIndex(attr string) int {
	return slices.Index(r.Attrs, attr)
}

// AttrOrder returns the relation's attribute positions sorted
// lexicographically by attribute name — the canonical enumeration order of
// the signature algorithm's hashes (Def. 6.2). It is a pure function of the
// schema, computed once per prepared instance and reused across runs.
func AttrOrder(r *Relation) []int {
	order := make([]int, r.Arity())
	for i := range order {
		order[i] = i
	}
	slices.SortFunc(order, func(i, j int) int {
		return strings.Compare(r.Attrs[i], r.Attrs[j])
	})
	return order
}

// Tuple returns the tuple with the given identifier, or nil if absent.
func (r *Relation) Tuple(id TupleID) *Tuple {
	for i := range r.Tuples {
		if r.Tuples[i].ID == id {
			return &r.Tuples[i]
		}
	}
	return nil
}

// Clone returns a deep copy of the relation.
func (r *Relation) Clone() *Relation {
	c := &Relation{
		Name:   r.Name,
		Attrs:  slices.Clone(r.Attrs),
		Tuples: make([]Tuple, len(r.Tuples)),
	}
	for i := range r.Tuples {
		c.Tuples[i] = r.Tuples[i].Clone()
	}
	return c
}

// String renders the relation header and tuples, one per line.
func (r *Relation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(%s)\n", r.Name, strings.Join(r.Attrs, ", "))
	for _, t := range r.Tuples {
		fmt.Fprintf(&b, "  t%d %s\n", t.ID, t.String())
	}
	return b.String()
}

package model

// This file implements the integer-coded representation the comparison
// engine runs on. String-backed Values are interned once per comparison into
// dense ValueID codes; tuples become flat []ValueID rows. Every hot path —
// union-find merges, signature hashing, cell scoring, candidate indexing —
// then works on small integers and array indexing instead of string-keyed
// maps. The textual Values are recovered through the Interner only at the
// explanation boundary (see instcmp's fillExplanation).

// ValueID is a dense integer code for a Value within one comparison. IDs are
// assigned consecutively from 0 by an Interner; the same Value always
// receives the same ID from a given Interner, and distinct Values receive
// distinct IDs, so two cells hold the same value exactly when their IDs are
// equal.
type ValueID int32

// NoValueID is a sentinel that is never a valid ValueID.
const NoValueID ValueID = -1

// Interner assigns dense ValueID codes to Values and decodes them back. It
// is shared by both sides of one comparison: left and right cells that hold
// the same constant receive the same ID, which is what makes ID equality
// meaningful. The zero value is not usable; call NewInterner.
type Interner struct {
	ids  map[Value]ValueID
	vals []Value
	null []bool
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{ids: make(map[Value]ValueID)}
}

// Intern returns v's ID, assigning the next dense code on first sight.
func (in *Interner) Intern(v Value) ValueID {
	if id, ok := in.ids[v]; ok {
		return id
	}
	id := ValueID(len(in.vals))
	in.ids[v] = id
	in.vals = append(in.vals, v)
	in.null = append(in.null, v.IsNull())
	return id
}

// Lookup returns v's ID without interning it.
func (in *Interner) Lookup(v Value) (ValueID, bool) {
	id, ok := in.ids[v]
	return id, ok
}

// Clone returns an independent copy of the interner: the copy can keep
// interning new values without affecting the original. Cloning costs one map
// copy over the distinct values — typically far fewer than the cell count —
// which is what lets a prepared instance's coding be extended into a joint
// per-comparison ID space without re-interning the instance cell by cell.
// Clone never mutates the receiver, so any number of goroutines may clone a
// quiescent interner concurrently.
func (in *Interner) Clone() *Interner {
	c := &Interner{
		ids:  make(map[Value]ValueID, len(in.ids)),
		vals: append([]Value(nil), in.vals...),
		null: append([]bool(nil), in.null...),
	}
	for v, id := range in.ids {
		c.ids[v] = id
	}
	return c
}

// ValueOf decodes an ID back to its Value.
func (in *Interner) ValueOf(id ValueID) Value { return in.vals[id] }

// IsNull reports whether the coded value is a labeled null.
func (in *Interner) IsNull(id ValueID) bool { return in.null[id] }

// Len returns the number of interned values; valid IDs are [0, Len).
func (in *Interner) Len() int { return len(in.vals) }

// NullFlags exposes the ID-indexed nullness table for hot loops. The slice
// is shared with the interner and only valid until the next Intern call;
// callers must treat it as read-only.
func (in *Interner) NullFlags() []bool { return in.null }

// CodedRelation is the integer-coded image of one relation: all rows
// flattened into a single []ValueID (row-major, cache-friendly) plus each
// row's ground mask (the bitmask of constant-valued attributes, the quantity
// the signature algorithm's null-pattern machinery works with).
type CodedRelation struct {
	Arity int
	// Masks holds the per-row ground masks; len(Masks) is the row count.
	Masks []uint64
	vals  []ValueID
}

// Code interns every cell of the relation and returns its coded image.
// Relations wider than 64 attributes cannot be mask-coded; callers validate
// arity beforehand (match.NewEnv does).
func (in *Interner) Code(rel *Relation) *CodedRelation {
	c := &CodedRelation{
		Arity: rel.Arity(),
		Masks: make([]uint64, len(rel.Tuples)),
		vals:  make([]ValueID, 0, len(rel.Tuples)*rel.Arity()),
	}
	for ti := range rel.Tuples {
		var mask uint64
		for a, v := range rel.Tuples[ti].Values {
			if v.IsConst() {
				mask |= 1 << a
			}
			c.vals = append(c.vals, in.Intern(v))
		}
		c.Masks[ti] = mask
	}
	return c
}

// Remap returns a copy of the relation recoded through an ID translation
// table: every cell id becomes table[id]. Ground masks are a property of the
// values, not their codes, so the Masks slice is shared with the receiver.
// Remapping is how a prepared instance's self-coded rows are moved into a
// comparison's joint ID space: a flat int32 rewrite, with no map lookups and
// no Value hashing.
func (c *CodedRelation) Remap(table []ValueID) *CodedRelation {
	out := &CodedRelation{
		Arity: c.Arity,
		Masks: c.Masks,
		vals:  make([]ValueID, len(c.vals)),
	}
	for i, id := range c.vals {
		out.vals[i] = table[id]
	}
	return out
}

// Rows returns the number of coded rows.
func (c *CodedRelation) Rows() int { return len(c.Masks) }

// Row returns the i-th coded row. The slice aliases the relation's flat
// storage; callers must not mutate it.
func (c *CodedRelation) Row(i int) []ValueID {
	return c.vals[i*c.Arity : (i+1)*c.Arity : (i+1)*c.Arity]
}

package model

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Instance is a relational instance with labeled nulls: an ordered set of
// relations sharing one tuple-identifier space and one null namespace.
type Instance struct {
	rels   []*Relation
	byName map[string]*Relation
	nextID TupleID
	nulls  int // counter backing FreshNull
	// usedNulls indexes the null names in use, so FreshNull can skip a name
	// the instance already contains (a user null literally called "anon_1"
	// must not merge with the counter's output). It is built lazily on the
	// first FreshNull or ReserveNulls call and from then on maintained by
	// Append; nil means "not built yet", never "empty".
	usedNulls map[string]bool
}

// NewInstance returns an empty instance.
func NewInstance() *Instance {
	return &Instance{byName: map[string]*Relation{}}
}

// AddRelation creates an empty relation with the given name and attributes
// and returns it. Adding a relation whose name already exists panics: schema
// construction errors are programming errors.
func (in *Instance) AddRelation(name string, attrs ...string) *Relation {
	if _, dup := in.byName[name]; dup {
		panic(fmt.Sprintf("model: duplicate relation %q", name))
	}
	r := &Relation{Name: name, Attrs: attrs}
	in.rels = append(in.rels, r)
	in.byName[name] = r
	return r
}

// Relation returns the relation with the given name, or nil if absent.
func (in *Instance) Relation(name string) *Relation { return in.byName[name] }

// Relations returns the instance's relations in creation order. The slice
// is shared with the instance; callers must not mutate it.
func (in *Instance) Relations() []*Relation { return in.rels }

// Append adds a tuple with a fresh identifier to the named relation and
// returns the identifier. The number of values must equal the relation's
// arity.
func (in *Instance) Append(rel string, vals ...Value) TupleID {
	r := in.byName[rel]
	if r == nil {
		panic(fmt.Sprintf("model: unknown relation %q", rel))
	}
	if len(vals) != r.Arity() {
		panic(fmt.Sprintf("model: relation %q has arity %d, got %d values",
			rel, r.Arity(), len(vals)))
	}
	id := in.nextID
	in.nextID++
	r.Tuples = append(r.Tuples, Tuple{ID: id, Values: vals})
	if in.usedNulls != nil {
		for _, v := range vals {
			if v.IsNull() {
				in.usedNulls[v.Raw()] = true
			}
		}
	}
	return id
}

// usedNullSet returns the used-null index, building it from the current
// tuples on first use.
func (in *Instance) usedNullSet() map[string]bool {
	if in.usedNulls == nil {
		in.usedNulls = map[string]bool{}
		for _, r := range in.rels {
			for _, t := range r.Tuples {
				for _, v := range t.Values {
					if v.IsNull() {
						in.usedNulls[v.Raw()] = true
					}
				}
			}
		}
	}
	return in.usedNulls
}

// FreshNull returns a labeled null that does not occur in the instance and
// has not been used by previous FreshNull calls on it: the backing counter
// advances past any name already present (a user null literally named
// "anon_3" cannot be silently merged with a minted one). The prefix keeps
// nulls of different origins (e.g. chase steps vs. noise injection)
// readable.
func (in *Instance) FreshNull(prefix string) Value {
	used := in.usedNullSet()
	for {
		in.nulls++
		name := fmt.Sprintf("%s%d", prefix, in.nulls)
		if !used[name] {
			used[name] = true
			return Null(name)
		}
	}
}

// ReserveNulls marks the given null names (without the NullPrefix marker) as
// in use, so FreshNull never mints them. Use it when tuples known to carry
// these nulls will be appended only after FreshNull has already run — e.g.
// when rebuilding an instance row by row with padding interleaved.
func (in *Instance) ReserveNulls(names ...string) {
	used := in.usedNullSet()
	for _, n := range names {
		used[n] = true
	}
}

// ReserveNullsFrom reserves every null name occurring in src, see
// ReserveNulls.
func (in *Instance) ReserveNullsFrom(src *Instance) {
	used := in.usedNullSet()
	for _, r := range src.rels {
		for _, t := range r.Tuples {
			for _, v := range t.Values {
				if v.IsNull() {
					used[v.Raw()] = true
				}
			}
		}
	}
}

// NumTuples returns the total number of tuples across all relations.
func (in *Instance) NumTuples() int {
	n := 0
	for _, r := range in.rels {
		n += len(r.Tuples)
	}
	return n
}

// Size returns the paper's Def. 5.1 size: the sum over relations of
// cardinality times arity.
func (in *Instance) Size() int {
	n := 0
	for _, r := range in.rels {
		n += r.Size()
	}
	return n
}

// IsGround reports whether the instance contains no labeled nulls.
func (in *Instance) IsGround() bool {
	for _, r := range in.rels {
		for _, t := range r.Tuples {
			if !t.IsGround() {
				return false
			}
		}
	}
	return true
}

// Consts returns the set of constants occurring in the instance.
func (in *Instance) Consts() map[Value]bool {
	return in.values(func(v Value) bool { return v.IsConst() })
}

// Vars returns the set of labeled nulls occurring in the instance.
func (in *Instance) Vars() map[Value]bool {
	return in.values(Value.IsNull)
}

// ActiveDomain returns adom(I): all values occurring in the instance.
func (in *Instance) ActiveDomain() map[Value]bool {
	return in.values(func(Value) bool { return true })
}

func (in *Instance) values(keep func(Value) bool) map[Value]bool {
	set := map[Value]bool{}
	for _, r := range in.rels {
		for _, t := range r.Tuples {
			for _, v := range t.Values {
				if keep(v) {
					set[v] = true
				}
			}
		}
	}
	return set
}

// Stats summarizes an instance the way the paper's Table 1 and Tables 2-3
// report datasets: tuple count, constant and null cell counts, distinct
// values, and arity (of the widest relation for multi-relation instances).
type Stats struct {
	Relations     int
	Tuples        int
	ConstCells    int
	NullCells     int
	DistinctVals  int
	DistinctNulls int
	MaxArity      int
}

// Stats computes summary statistics for the instance.
func (in *Instance) Stats() Stats {
	s := Stats{Relations: len(in.rels)}
	distinct := map[Value]bool{}
	for _, r := range in.rels {
		if r.Arity() > s.MaxArity {
			s.MaxArity = r.Arity()
		}
		s.Tuples += len(r.Tuples)
		for _, t := range r.Tuples {
			for _, v := range t.Values {
				distinct[v] = true
				if v.IsNull() {
					s.NullCells++
				} else {
					s.ConstCells++
				}
			}
		}
	}
	for v := range distinct {
		if v.IsNull() {
			s.DistinctNulls++
		}
	}
	s.DistinctVals = len(distinct)
	return s
}

// Clone returns a deep copy of the instance (same tuple ids, same nulls).
func (in *Instance) Clone() *Instance {
	c := &Instance{
		byName: make(map[string]*Relation, len(in.byName)),
		nextID: in.nextID,
		nulls:  in.nulls,
	}
	for _, r := range in.rels {
		cr := r.Clone()
		c.rels = append(c.rels, cr)
		c.byName[cr.Name] = cr
	}
	return c
}

// RenameNulls returns a deep copy in which every labeled null N is replaced
// by a null named prefix+N. Renaming nulls does not change the incomplete
// database an instance represents (Sec. 2); it is used to guarantee the
// disjoint-null precondition of instance comparison.
func (in *Instance) RenameNulls(prefix string) *Instance {
	c := in.Clone()
	for _, r := range c.rels {
		for ti := range r.Tuples {
			for vi, v := range r.Tuples[ti].Values {
				if v.IsNull() {
					r.Tuples[ti].Values[vi] = Null(prefix + v.Raw())
				}
			}
		}
	}
	return c
}

// ReassignIDs returns a deep copy whose tuples are renumbered starting at
// the given identifier, so that two instances can be given disjoint
// identifier spaces before comparison.
func (in *Instance) ReassignIDs(start TupleID) *Instance {
	c := in.Clone()
	id := start
	for _, r := range c.rels {
		for ti := range r.Tuples {
			r.Tuples[ti].ID = id
			id++
		}
	}
	c.nextID = id
	return c
}

// Shuffle permutes the tuple order of every relation in place using the
// given source of randomness. Tuple order carries no semantics; shuffling
// exists so experiments can destroy any accidental positional alignment.
func (in *Instance) Shuffle(rng *rand.Rand) {
	for _, r := range in.rels {
		rng.Shuffle(len(r.Tuples), func(i, j int) {
			r.Tuples[i], r.Tuples[j] = r.Tuples[j], r.Tuples[i]
		})
	}
}

// DropColumn returns a deep copy of the instance with the named attribute
// removed from the named relation. It is used by the versioning experiments
// (variant "C").
func (in *Instance) DropColumn(rel, attr string) (*Instance, error) {
	c := in.Clone()
	r := c.byName[rel]
	if r == nil {
		return nil, fmt.Errorf("model: unknown relation %q", rel)
	}
	ai := r.AttrIndex(attr)
	if ai < 0 {
		return nil, fmt.Errorf("model: relation %q has no attribute %q", rel, attr)
	}
	r.Attrs = append(r.Attrs[:ai], r.Attrs[ai+1:]...)
	for ti := range r.Tuples {
		vs := r.Tuples[ti].Values
		r.Tuples[ti].Values = append(vs[:ai], vs[ai+1:]...)
	}
	return c, nil
}

// AddNullColumn returns a deep copy with a new attribute appended to the
// named relation, filled with a distinct fresh null per row. This is the
// paper's Sec. 4 recipe for comparing instances whose schemas differ by an
// attribute.
func (in *Instance) AddNullColumn(rel, attr, nullPrefix string) (*Instance, error) {
	c := in.Clone()
	r := c.byName[rel]
	if r == nil {
		return nil, fmt.Errorf("model: unknown relation %q", rel)
	}
	if r.AttrIndex(attr) >= 0 {
		return nil, fmt.Errorf("model: relation %q already has attribute %q", rel, attr)
	}
	r.Attrs = append(r.Attrs, attr)
	for ti := range r.Tuples {
		r.Tuples[ti].Values = append(r.Tuples[ti].Values, c.FreshNull(nullPrefix))
	}
	return c, nil
}

// WithRelationName returns a view of a single-relation instance whose
// relation carries the given name: the attribute list and tuple slice are
// shared with the receiver, not copied, so the view costs two small
// allocations regardless of instance size. The receiver is returned
// unchanged when it is not single-relation or already carries the name.
// While a view is live, both instances must be treated as read-only.
func (in *Instance) WithRelationName(name string) *Instance {
	if len(in.rels) != 1 || in.rels[0].Name == name {
		return in
	}
	r := &Relation{Name: name, Attrs: in.rels[0].Attrs, Tuples: in.rels[0].Tuples}
	return &Instance{
		rels:   []*Relation{r},
		byName: map[string]*Relation{name: r},
		nextID: in.nextID,
		nulls:  in.nulls,
	}
}

// SameSchema reports whether two instances have identical relation names,
// attribute lists, and relation order.
func SameSchema(a, b *Instance) bool {
	if len(a.rels) != len(b.rels) {
		return false
	}
	for i, ra := range a.rels {
		rb := b.rels[i]
		if ra.Name != rb.Name || len(ra.Attrs) != len(rb.Attrs) {
			return false
		}
		for j := range ra.Attrs {
			if ra.Attrs[j] != rb.Attrs[j] {
				return false
			}
		}
	}
	return true
}

// String renders every relation of the instance.
func (in *Instance) String() string {
	var b strings.Builder
	for _, r := range in.rels {
		b.WriteString(r.String())
	}
	return b.String()
}

// SortedVars returns the instance's nulls in a deterministic order, which
// keeps experiment output and tests stable.
func (in *Instance) SortedVars() []Value {
	set := in.Vars()
	vars := make([]Value, 0, len(set))
	for v := range set {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i].Raw() < vars[j].Raw() })
	return vars
}

package model

import "strings"

// TupleID identifies a tuple within an instance. Identifiers are unique
// inside one instance; when two instances are compared the comparison layer
// additionally distinguishes tuples by side, so identifiers never collide.
// Tuple identifiers are not semantic keys (Sec. 2 of the paper): they exist
// only so tuples can be referenced in matches and explanations.
type TupleID int

// Tuple is a row of an instance: an identifier plus one value per attribute
// of the owning relation.
type Tuple struct {
	ID     TupleID
	Values []Value
}

// Clone returns a deep copy of the tuple (same ID, copied value slice).
func (t Tuple) Clone() Tuple {
	vs := make([]Value, len(t.Values))
	copy(vs, t.Values)
	return Tuple{ID: t.ID, Values: vs}
}

// IsGround reports whether the tuple contains no labeled nulls.
func (t Tuple) IsGround() bool {
	for _, v := range t.Values {
		if v.IsNull() {
			return false
		}
	}
	return true
}

// NullCount returns the number of null-valued cells in the tuple.
func (t Tuple) NullCount() int {
	n := 0
	for _, v := range t.Values {
		if v.IsNull() {
			n++
		}
	}
	return n
}

// EqualValues reports whether two tuples agree on every attribute value
// (identifiers are ignored). Nulls compare by name.
func (t Tuple) EqualValues(o Tuple) bool {
	if len(t.Values) != len(o.Values) {
		return false
	}
	for i, v := range t.Values {
		if v != o.Values[i] {
			return false
		}
	}
	return true
}

// String renders the tuple as "(v1, v2, ...)".
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t.Values {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}

// ValueKey returns a string that is identical for tuples with identical
// value sequences, usable as a hash-map key for duplicate detection.
func (t Tuple) ValueKey() string {
	var b strings.Builder
	for i, v := range t.Values {
		if i > 0 {
			b.WriteByte('\x1f')
		}
		if v.IsNull() {
			b.WriteByte('\x02')
		}
		b.WriteString(v.Raw())
	}
	return b.String()
}

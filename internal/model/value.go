// Package model defines relational instances with labeled nulls: values,
// tuples, relations, and instances, together with the basic operations the
// instance-comparison framework is built on (cloning, null renaming,
// statistics, active domains).
//
// The model follows Section 2 of "Similarity Measures For Incomplete
// Database Instances" (EDBT 2024): an instance is a finite set of relations
// whose tuples draw values from a domain of constants (Consts) and a domain
// of labeled nulls (Vars). Tuples carry unique identifiers that are not
// semantic keys; they only provide a way to reference tuples.
package model

import (
	"fmt"
	"strings"
)

// NullPrefix is the textual marker that identifies a labeled null when
// values are parsed from or rendered to text (CSV files, CLI output).
// A value spelled "_:N1" denotes the labeled null N1; everything else is a
// constant.
const NullPrefix = "_:"

// Value is a single attribute value: either a constant or a labeled null.
// The zero Value is the empty-string constant. Value is comparable and can
// be used as a map key; two Values are the same value exactly when they are
// == to each other.
type Value struct {
	s    string
	null bool
}

// Const returns the constant value with the given text.
func Const(s string) Value { return Value{s: s} }

// Null returns the labeled null with the given name. Null("N1") and
// Null("N1") are the same null; nulls with different names are different.
func Null(name string) Value { return Value{s: name, null: true} }

// Parse interprets a textual value: strings starting with NullPrefix are
// labeled nulls, everything else is a constant.
func Parse(s string) Value {
	if rest, ok := strings.CutPrefix(s, NullPrefix); ok {
		return Null(rest)
	}
	return Const(s)
}

// IsNull reports whether v is a labeled null.
func (v Value) IsNull() bool { return v.null }

// IsConst reports whether v is a constant.
func (v Value) IsConst() bool { return !v.null }

// Raw returns the constant text or the null's name, without any marker.
func (v Value) Raw() string { return v.s }

// String renders constants verbatim and nulls with the NullPrefix marker,
// so that Parse(v.String()) == v for every value whose constant text does
// not itself start with NullPrefix.
func (v Value) String() string {
	if v.null {
		return NullPrefix + v.s
	}
	return v.s
}

// GoString implements fmt.GoStringer for readable test failures.
func (v Value) GoString() string {
	if v.null {
		return fmt.Sprintf("model.Null(%q)", v.s)
	}
	return fmt.Sprintf("model.Const(%q)", v.s)
}

// Constf returns a constant built with fmt.Sprintf.
func Constf(format string, args ...any) Value {
	return Const(fmt.Sprintf(format, args...))
}

// Nullf returns a labeled null whose name is built with fmt.Sprintf.
func Nullf(format string, args ...any) Value {
	return Null(fmt.Sprintf(format, args...))
}

package model

// This file defines the canonical 64-bit value hashing the sketch layer is
// built on. ValueIDs are deliberately NOT hashable across instances: they
// are dense per-interner codes, so the same constant receives different IDs
// in different instances. Anything that compares instances without a joint
// interner — the lake's MinHash sketches, the banded signature index — must
// hash value *content* instead. These hashes are part of the persisted index
// format (internal/lakeindex), so changing them requires bumping
// lakeindex.SeedVersion to invalidate old index files.

// FNV-1a constants, shared with the signature algorithm's per-comparison
// (attribute, ValueID) hashing.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// valueTag domain-separates constants from labeled nulls, so Const("x") and
// Null("x") never collide.
const (
	constTag byte = 0x01
	nullTag  byte = 0x02
)

// ValueHash returns a canonical FNV-1a hash of a value's content: equal
// values hash equal in every instance, which is what makes sketches built in
// different processes (or index files built in past runs) comparable.
func ValueHash(v Value) uint64 {
	tag := constTag
	if v.null {
		tag = nullTag
	}
	h := fnvOffset
	h ^= uint64(tag)
	h *= fnvPrime
	for i := 0; i < len(v.s); i++ {
		h ^= uint64(v.s[i])
		h *= fnvPrime
	}
	return h
}

// NameHash returns a canonical FNV-1a hash of an attribute (or relation)
// name, for composing (attribute, value) feature hashes.
func NameHash(s string) uint64 {
	h := fnvOffset
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// MixHash folds two 64-bit hashes into one with an FNV-1a step, the
// composition used for (attribute, value) sketch features.
func MixHash(a, b uint64) uint64 {
	h := fnvOffset
	h ^= a
	h *= fnvPrime
	h ^= b
	h *= fnvPrime
	return h
}

package model

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	c := Const("VLDB")
	n := Null("N1")
	if !c.IsConst() || c.IsNull() {
		t.Errorf("Const kind wrong: %#v", c)
	}
	if !n.IsNull() || n.IsConst() {
		t.Errorf("Null kind wrong: %#v", n)
	}
	if c.Raw() != "VLDB" || n.Raw() != "N1" {
		t.Errorf("Raw: got %q, %q", c.Raw(), n.Raw())
	}
}

func TestValueIdentity(t *testing.T) {
	if Const("x") != Const("x") {
		t.Error("equal constants must be identical")
	}
	if Null("N1") != Null("N1") {
		t.Error("equal nulls must be identical")
	}
	if Const("N1") == Null("N1") {
		t.Error("constant and null with same text must differ")
	}
}

func TestValueParseRoundTrip(t *testing.T) {
	f := func(s string) bool {
		c := Const(s)
		n := Null(s)
		return Parse(n.String()) == n &&
			(len(s) >= 2 && s[:2] == NullPrefix || Parse(c.String()) == c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueStringMarkers(t *testing.T) {
	if got := Null("N1").String(); got != "_:N1" {
		t.Errorf("null rendering: got %q", got)
	}
	if got := Const("abc").String(); got != "abc" {
		t.Errorf("const rendering: got %q", got)
	}
	if Parse("_:X7") != Null("X7") {
		t.Error("Parse should detect the null marker")
	}
	if Parse("plain") != Const("plain") {
		t.Error("Parse should default to constant")
	}
}

func TestTupleHelpers(t *testing.T) {
	tu := Tuple{ID: 3, Values: []Value{Const("a"), Null("N1"), Const("b")}}
	if tu.IsGround() {
		t.Error("tuple with null reported ground")
	}
	if got := tu.NullCount(); got != 1 {
		t.Errorf("NullCount = %d, want 1", got)
	}
	g := Tuple{ID: 4, Values: []Value{Const("a"), Const("x"), Const("b")}}
	if !g.IsGround() {
		t.Error("ground tuple reported non-ground")
	}
	if tu.EqualValues(g) {
		t.Error("different tuples reported equal")
	}
	cp := tu.Clone()
	if !tu.EqualValues(cp) || cp.ID != tu.ID {
		t.Error("clone differs from original")
	}
	cp.Values[0] = Const("z")
	if tu.EqualValues(cp) {
		t.Error("clone shares backing array with original")
	}
}

func TestTupleValueKeyDistinguishesKinds(t *testing.T) {
	a := Tuple{Values: []Value{Const("x"), Null("y")}}
	b := Tuple{Values: []Value{Const("x"), Const("y")}}
	if a.ValueKey() == b.ValueKey() {
		t.Error("ValueKey must distinguish null from constant")
	}
	c := Tuple{Values: []Value{Const("x"), Null("y")}}
	if a.ValueKey() != c.ValueKey() {
		t.Error("ValueKey must agree for equal tuples")
	}
}

func newConf() *Instance {
	in := NewInstance()
	in.AddRelation("Conference", "Name", "Year", "Place", "Org")
	in.Append("Conference", Const("VLDB"), Const("1975"), Const("Framingham"), Const("VLDB End."))
	in.Append("Conference", Const("VLDB"), Const("1976"), Null("N1"), Null("N2"))
	in.Append("Conference", Const("SIGMOD"), Const("1975"), Const("San Jose"), Const("ACM"))
	return in
}

func TestInstanceBasics(t *testing.T) {
	in := newConf()
	if got := in.NumTuples(); got != 3 {
		t.Errorf("NumTuples = %d, want 3", got)
	}
	if got := in.Size(); got != 12 {
		t.Errorf("Size = %d, want 12 (3 tuples x arity 4)", got)
	}
	if in.IsGround() {
		t.Error("instance with nulls reported ground")
	}
	if got := len(in.Vars()); got != 2 {
		t.Errorf("Vars = %d, want 2", got)
	}
	if !in.Consts()[Const("ACM")] {
		t.Error("Consts missing ACM")
	}
	if got := len(in.ActiveDomain()); got != len(in.Consts())+2 {
		t.Errorf("ActiveDomain size inconsistent: %d", got)
	}
}

func TestInstanceStats(t *testing.T) {
	s := newConf().Stats()
	if s.Tuples != 3 || s.Relations != 1 || s.MaxArity != 4 {
		t.Errorf("stats shape wrong: %+v", s)
	}
	if s.NullCells != 2 || s.ConstCells != 10 {
		t.Errorf("cell counts wrong: %+v", s)
	}
	if s.DistinctNulls != 2 {
		t.Errorf("DistinctNulls = %d, want 2", s.DistinctNulls)
	}
}

func TestCloneIsDeep(t *testing.T) {
	in := newConf()
	c := in.Clone()
	c.Relation("Conference").Tuples[0].Values[0] = Const("ICDE")
	if in.Relation("Conference").Tuples[0].Values[0] != Const("VLDB") {
		t.Error("Clone shares tuple storage")
	}
	c.Append("Conference", Const("x"), Const("x"), Const("x"), Const("x"))
	if in.NumTuples() != 3 {
		t.Error("Clone shares relation storage")
	}
}

func TestRenameNulls(t *testing.T) {
	in := newConf()
	r := in.RenameNulls("L_")
	if len(r.Vars()) != 2 {
		t.Fatalf("renamed instance lost nulls")
	}
	for v := range r.Vars() {
		if v.Raw()[:2] != "L_" {
			t.Errorf("null %v not renamed", v)
		}
	}
	for v := range in.Vars() {
		if r.Vars()[v] {
			t.Errorf("original null %v leaked into renamed instance", v)
		}
	}
}

func TestReassignIDs(t *testing.T) {
	in := newConf()
	r := in.ReassignIDs(100)
	ids := map[TupleID]bool{}
	for _, rel := range r.Relations() {
		for _, tu := range rel.Tuples {
			if tu.ID < 100 {
				t.Errorf("id %d below start", tu.ID)
			}
			if ids[tu.ID] {
				t.Errorf("duplicate id %d", tu.ID)
			}
			ids[tu.ID] = true
		}
	}
	// Fresh appends must not collide with reassigned ids.
	nid := r.Append("Conference", Const("a"), Const("b"), Const("c"), Const("d"))
	if ids[nid] {
		t.Errorf("fresh id %d collides", nid)
	}
}

func TestFreshNullUnique(t *testing.T) {
	in := NewInstance()
	seen := map[Value]bool{}
	for i := 0; i < 100; i++ {
		v := in.FreshNull("N")
		if seen[v] {
			t.Fatalf("FreshNull repeated %v", v)
		}
		seen[v] = true
	}
}

func TestFreshNullSkipsPresentNames(t *testing.T) {
	// An adversarially named user null that literally spells a counter
	// output ("anon_1", "pad·l·2") must not be re-minted: that would
	// silently merge two unrelated nulls.
	in := NewInstance()
	in.AddRelation("R", "A")
	in.Append("R", Null("anon_1"))
	in.Append("R", Null("anon_3"))
	in.Append("R", Null("pad·l·2"))
	vars := in.Vars()
	for i := 0; i < 5; i++ {
		if v := in.FreshNull("anon_"); vars[v] {
			t.Fatalf("FreshNull minted existing null %v", v)
		}
	}
	for i := 0; i < 5; i++ {
		if v := in.FreshNull("pad·l·"); vars[v] {
			t.Fatalf("FreshNull minted existing null %v", v)
		}
	}
}

func TestFreshNullSkipsAppendedNames(t *testing.T) {
	// Names appended after the first FreshNull call must be skipped too:
	// the used-null index is maintained incrementally, not a one-shot
	// snapshot.
	in := NewInstance()
	in.AddRelation("R", "A", "B")
	first := in.FreshNull("n") // builds the used-null index
	in.Append("R", Null("n2"), first)
	for i := 0; i < 3; i++ {
		if v := in.FreshNull("n"); v == Null("n2") {
			t.Fatalf("FreshNull re-minted appended null %v", v)
		}
	}
}

func TestFreshNullReserveNulls(t *testing.T) {
	in := NewInstance()
	in.ReserveNulls("p1", "p3")
	got := map[Value]bool{}
	for i := 0; i < 4; i++ {
		got[in.FreshNull("p")] = true
	}
	for _, banned := range []Value{Null("p1"), Null("p3")} {
		if got[banned] {
			t.Errorf("FreshNull minted reserved null %v", banned)
		}
	}

	src := NewInstance()
	src.AddRelation("S", "A")
	src.Append("S", Null("q2"))
	dst := NewInstance()
	dst.ReserveNullsFrom(src)
	for i := 0; i < 4; i++ {
		if v := dst.FreshNull("q"); v == Null("q2") {
			t.Fatalf("FreshNull minted null reserved from src: %v", v)
		}
	}
}

func TestShufflePreservesContent(t *testing.T) {
	in := newConf()
	before := map[string]int{}
	for _, tu := range in.Relation("Conference").Tuples {
		before[tu.ValueKey()]++
	}
	in.Shuffle(rand.New(rand.NewSource(7)))
	after := map[string]int{}
	for _, tu := range in.Relation("Conference").Tuples {
		after[tu.ValueKey()]++
	}
	if len(before) != len(after) {
		t.Fatal("shuffle changed tuple multiset")
	}
	for k, n := range before {
		if after[k] != n {
			t.Fatalf("shuffle changed multiplicity of %q", k)
		}
	}
}

func TestDropColumn(t *testing.T) {
	in := newConf()
	out, err := in.DropColumn("Conference", "Place")
	if err != nil {
		t.Fatal(err)
	}
	r := out.Relation("Conference")
	if r.Arity() != 3 {
		t.Fatalf("arity after drop = %d, want 3", r.Arity())
	}
	if r.AttrIndex("Place") >= 0 {
		t.Error("Place still present")
	}
	if r.Tuples[0].Values[2] != Const("VLDB End.") {
		t.Errorf("values not shifted: %v", r.Tuples[0])
	}
	if in.Relation("Conference").Arity() != 4 {
		t.Error("DropColumn mutated the original")
	}
	if _, err := in.DropColumn("Conference", "Nope"); err == nil {
		t.Error("expected error for unknown attribute")
	}
	if _, err := in.DropColumn("Nope", "Place"); err == nil {
		t.Error("expected error for unknown relation")
	}
}

func TestAddNullColumn(t *testing.T) {
	in := newConf()
	out, err := in.AddNullColumn("Conference", "Budget", "P")
	if err != nil {
		t.Fatal(err)
	}
	r := out.Relation("Conference")
	if r.Arity() != 5 {
		t.Fatalf("arity after add = %d, want 5", r.Arity())
	}
	seen := map[Value]bool{}
	for _, tu := range r.Tuples {
		v := tu.Values[4]
		if !v.IsNull() {
			t.Fatalf("padding value %v is not a null", v)
		}
		if seen[v] {
			t.Fatal("padding nulls must be distinct per row")
		}
		seen[v] = true
	}
	if _, err := in.AddNullColumn("Conference", "Name", "P"); err == nil {
		t.Error("expected error for existing attribute")
	}
}

func TestSameSchema(t *testing.T) {
	a, b := newConf(), newConf()
	if !SameSchema(a, b) {
		t.Error("identical schemas reported different")
	}
	c, _ := b.DropColumn("Conference", "Org")
	if SameSchema(a, c) {
		t.Error("different arities reported same")
	}
	d := NewInstance()
	d.AddRelation("Conf", "Name", "Year", "Place", "Org")
	if SameSchema(a, d) {
		t.Error("different relation names reported same")
	}
}

func TestAppendValidation(t *testing.T) {
	in := NewInstance()
	in.AddRelation("R", "A", "B")
	assertPanics(t, "arity mismatch", func() { in.Append("R", Const("x")) })
	assertPanics(t, "unknown relation", func() { in.Append("S", Const("x"), Const("y")) })
	assertPanics(t, "duplicate relation", func() { in.AddRelation("R", "A") })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestSortedVarsDeterministic(t *testing.T) {
	in := NewInstance()
	in.AddRelation("R", "A")
	in.Append("R", Null("Nc"))
	in.Append("R", Null("Na"))
	in.Append("R", Null("Nb"))
	vs := in.SortedVars()
	if len(vs) != 3 || vs[0] != Null("Na") || vs[2] != Null("Nc") {
		t.Errorf("SortedVars = %v", vs)
	}
}

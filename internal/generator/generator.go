// Package generator implements the paper's ground-truth construction for
// the evaluation (Sec. 7.1): starting from a base table, it clones a source
// and a target instance with a known positional gold mapping, perturbs both
// with the modCell and addRandomAndRedundant noise processes, updates the
// gold mapping accordingly, and shuffles. The gold mapping yields the
// "score by construction" the paper reports where the exact algorithm times
// out.
package generator

import (
	"math/rand"

	"instcmp/internal/compat"
	"instcmp/internal/match"
	"instcmp/internal/model"
	"instcmp/internal/score"
)

// Noise parameterizes scenario generation.
type Noise struct {
	// CellPct is the paper's C%: the fraction of cells modified in each
	// of source and target (independently).
	CellPct float64
	// NullShare is the probability a modified cell becomes a labeled
	// null rather than a fresh random constant. Negative means 0; the
	// zero value is interpreted as the paper's equal probability (0.5).
	NullShare float64
	// NullReuse is the probability that a cell whose original value was
	// already replaced by a null elsewhere in the same instance reuses
	// that null ("the same null might have multiple occurrences",
	// Table 2). Zero keeps every injected null fresh.
	NullReuse float64
	// RandomPct is the paper's Rnd%: fraction of fresh random tuples
	// appended to each side (addRandomAndRedundant only).
	RandomPct float64
	// RedundantPct is the paper's Red%: fraction of duplicated tuples
	// appended to each side.
	RedundantPct float64
	// Columns restricts modCell to the given attribute positions (nil =
	// all attributes). Used by the null-attribute ablation.
	Columns []int
	// Seed drives all randomness; equal seeds give equal scenarios.
	Seed int64
}

func (n Noise) nullShare() float64 {
	if n.NullShare < 0 {
		return 0
	}
	if n.NullShare == 0 {
		return 0.5
	}
	return n.NullShare
}

// IDPair is one gold correspondence, by tuple identifier.
type IDPair struct {
	Left, Right model.TupleID
}

// Scenario is a generated comparison problem with its gold mapping.
type Scenario struct {
	Source, Target *model.Instance
	// GoldPairs is the by-construction tuple mapping (n-to-m once
	// duplicates are added). Pairs that the noise made incompatible are
	// dropped when scoring.
	GoldPairs []IDPair
}

// ModCell builds a modCell scenario (Table 2): C% cell changes, mappings
// stay functional and injective.
func ModCell(base *model.Instance, cellPct float64, seed int64) *Scenario {
	return Make(base, Noise{CellPct: cellPct, Seed: seed})
}

// AddRandomAndRedundant builds the Table 3 scenario: modCell plus Rnd%
// random and Red% duplicated tuples on both sides, making the gold mapping
// non-functional and non-injective.
func AddRandomAndRedundant(base *model.Instance, cellPct, rndPct, redPct float64, seed int64) *Scenario {
	return Make(base, Noise{CellPct: cellPct, RandomPct: rndPct, RedundantPct: redPct, Seed: seed})
}

// Make generates a scenario from a base instance. The base is not modified.
func Make(base *model.Instance, n Noise) *Scenario {
	rng := rand.New(rand.NewSource(n.Seed))
	src := base.RenameNulls("s·")
	maxID := model.TupleID(0)
	for _, rel := range src.Relations() {
		for _, t := range rel.Tuples {
			if t.ID > maxID {
				maxID = t.ID
			}
		}
	}
	tgt := base.RenameNulls("t·").ReassignIDs(maxID + 1)

	s := &Scenario{Source: src, Target: tgt}
	// Positional gold mapping: the clones are aligned tuple by tuple.
	for ri, rel := range src.Relations() {
		trel := tgt.Relations()[ri]
		for i := range rel.Tuples {
			s.GoldPairs = append(s.GoldPairs, IDPair{rel.Tuples[i].ID, trel.Tuples[i].ID})
		}
	}

	modCell(src, "s", n, rng)
	modCell(tgt, "t", n, rng)

	// Duplicate Red% of the original rows; a duplicate inherits the gold
	// partners of the row it copies (n-to-m).
	if n.RedundantPct > 0 {
		s.duplicate(src, tgt, n.RedundantPct, rng)
	}
	// Append Rnd% fresh random rows: no gold partners.
	if n.RandomPct > 0 {
		addRandom(src, "s", n.RandomPct, rng)
		addRandom(tgt, "t", n.RandomPct, rng)
	}

	src.Shuffle(rng)
	tgt.Shuffle(rng)
	return s
}

// modCell implements the paper's modCell noise: each cell is modified with
// probability CellPct, becoming a labeled null or a fresh random constant.
func modCell(in *model.Instance, side string, n Noise, rng *rand.Rand) {
	if n.CellPct <= 0 {
		return
	}
	var colMask map[int]bool
	if n.Columns != nil {
		colMask = map[int]bool{}
		for _, c := range n.Columns {
			colMask[c] = true
		}
	}
	reuse := map[model.Value]model.Value{} // original value -> minted null
	rndCount := 0
	for _, rel := range in.Relations() {
		for ti := range rel.Tuples {
			for vi := range rel.Tuples[ti].Values {
				if colMask != nil && !colMask[vi] {
					continue
				}
				if rng.Float64() >= n.CellPct {
					continue
				}
				orig := rel.Tuples[ti].Values[vi]
				if rng.Float64() < n.nullShare() {
					if nv, ok := reuse[orig]; ok && n.NullReuse > 0 && rng.Float64() < n.NullReuse {
						rel.Tuples[ti].Values[vi] = nv
						continue
					}
					nv := in.FreshNull("m" + side)
					reuse[orig] = nv
					rel.Tuples[ti].Values[vi] = nv
					continue
				}
				rndCount++
				rel.Tuples[ti].Values[vi] = model.Constf("rnd%s_%d", side, rndCount)
			}
		}
	}
}

// duplicate copies Red% random original rows on both sides and extends the
// gold mapping so the copies share the originals' partners.
func (s *Scenario) duplicate(src, tgt *model.Instance, pct float64, rng *rand.Rand) {
	partnersOf := map[model.TupleID][]model.TupleID{}
	partnersRev := map[model.TupleID][]model.TupleID{}
	for _, p := range s.GoldPairs {
		partnersOf[p.Left] = append(partnersOf[p.Left], p.Right)
		partnersRev[p.Right] = append(partnersRev[p.Right], p.Left)
	}
	dup := func(in *model.Instance, left bool) {
		for _, rel := range in.Relations() {
			base := len(rel.Tuples)
			count := int(pct * float64(base))
			for k := 0; k < count; k++ {
				t := rel.Tuples[rng.Intn(base)]
				id := in.Append(rel.Name, t.Clone().Values...)
				if left {
					for _, r := range partnersOf[t.ID] {
						s.GoldPairs = append(s.GoldPairs, IDPair{id, r})
					}
				} else {
					for _, l := range partnersRev[t.ID] {
						s.GoldPairs = append(s.GoldPairs, IDPair{l, id})
					}
				}
			}
		}
	}
	dup(src, true)
	dup(tgt, false)
}

// addRandom appends Rnd% rows of fresh constants that match nothing.
func addRandom(in *model.Instance, side string, pct float64, rng *rand.Rand) {
	count := 0
	for _, rel := range in.Relations() {
		base := len(rel.Tuples)
		extra := int(pct * float64(base))
		for k := 0; k < extra; k++ {
			vals := make([]model.Value, rel.Arity())
			for i := range vals {
				count++
				vals[i] = model.Constf("xtr%s_%d_%d", side, count, rng.Intn(1<<30))
			}
			in.Append(rel.Name, vals...)
		}
	}
}

// GoldEnv replays the gold mapping into a fresh match environment,
// dropping pairs the noise made incompatible (the paper's "updating the
// mappings according to these changes"). The returned environment can be
// scored or inspected.
func (s *Scenario) GoldEnv() (*match.Env, error) {
	return s.goldEnv(match.ManyToMany)
}

func (s *Scenario) goldEnv(mode match.Mode) (*match.Env, error) {
	env, err := match.NewEnv(s.Source, s.Target, mode)
	if err != nil {
		return nil, err
	}
	refs := map[model.TupleID]match.Ref{}
	for ri, rel := range s.Source.Relations() {
		for ti, t := range rel.Tuples {
			refs[t.ID] = match.Ref{Rel: ri, Idx: ti}
		}
	}
	for ri, rel := range s.Target.Relations() {
		for ti, t := range rel.Tuples {
			refs[t.ID] = match.Ref{Rel: ri, Idx: ti}
		}
	}
	for _, p := range s.GoldPairs {
		env.TryAddPair(match.Pair{L: refs[p.Left], R: refs[p.Right]})
	}
	return env, nil
}

// GoldScore computes the paper's "score by construction": the Def. 5.3
// score of the gold mapping.
func (s *Scenario) GoldScore(lambda float64) (float64, error) {
	env, err := s.GoldEnv()
	if err != nil {
		return 0, err
	}
	return score.Match(env, lambda), nil
}

// BestKnownScore computes a stronger reference than GoldScore: the gold
// mapping extended greedily with every remaining compatible pair allowed by
// the mode. The similarity is a maximum over complete matches, so any
// complete match is a lower bound; in n-to-m scenarios the raw gold mapping
// loses the pairs the noise made incompatible, while the extension
// re-captures the score an optimal match would find elsewhere (e.g.
// matching a modified tuple against a different but compatible
// counterpart).
func (s *Scenario) BestKnownScore(lambda float64, mode match.Mode) (float64, error) {
	env, err := s.goldEnv(mode)
	if err != nil {
		return 0, err
	}
	gold := score.Match(env, lambda)
	for ri, lrel := range env.LRels {
		ix := compat.NewIndex(env.RRels[ri], nil)
		for li := range lrel.Tuples {
			lref := match.Ref{Rel: ri, Idx: li}
			if mode.LeftInjective && env.LeftDegree(lref) > 0 {
				continue
			}
			for _, ci := range ix.Candidates(&lrel.Tuples[li]) {
				p := match.Pair{L: lref, R: match.Ref{Rel: ri, Idx: ci}}
				if !env.Has(p) {
					env.TryAddPair(p)
				}
				if mode.LeftInjective && env.LeftDegree(lref) > 0 {
					break
				}
			}
		}
	}
	extended := score.Match(env, lambda)
	if gold > extended {
		// Greedy extension is not monotone (tuple scores average
		// over images); both are complete matches, keep the better.
		return gold, nil
	}
	return extended, nil
}

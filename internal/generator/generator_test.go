package generator

import (
	"math"
	"math/rand"
	"testing"

	"instcmp/internal/datasets"
	"instcmp/internal/match"
	"instcmp/internal/model"
	"instcmp/internal/score"
	"instcmp/internal/signature"
)

const lambda = 0.5

func base(rows int) *model.Instance {
	return datasets.Doctors(rows, rand.New(rand.NewSource(3)))
}

func TestNoNoiseGivesIsomorphicPair(t *testing.T) {
	s := Make(base(50), Noise{Seed: 1})
	gold, err := s.GoldScore(lambda)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gold-1) > 1e-9 {
		t.Errorf("gold score without noise = %v, want 1", gold)
	}
	if got := len(s.GoldPairs); got != 50 {
		t.Errorf("gold pairs = %d, want 50", got)
	}
}

func TestModCellLowersScore(t *testing.T) {
	s := ModCell(base(100), 0.05, 7)
	gold, err := s.GoldScore(lambda)
	if err != nil {
		t.Fatal(err)
	}
	if gold >= 1 || gold < 0.5 {
		t.Errorf("gold score at 5%% noise = %v, want in [0.5, 1)", gold)
	}
	// Source and target must differ from the base and contain noise.
	srcStats := s.Source.Stats()
	if srcStats.NullCells == 0 {
		t.Error("modCell injected no nulls")
	}
}

func TestScenarioDeterministic(t *testing.T) {
	a := Make(base(60), Noise{CellPct: 0.1, Seed: 5})
	b := Make(base(60), Noise{CellPct: 0.1, Seed: 5})
	if a.Source.String() != b.Source.String() || a.Target.String() != b.Target.String() {
		t.Error("same seed produced different scenarios")
	}
}

func TestDisjointNamespaces(t *testing.T) {
	s := Make(base(40), Noise{CellPct: 0.2, Seed: 9})
	for v := range s.Source.Vars() {
		if s.Target.Vars()[v] {
			t.Fatalf("null %v shared between source and target", v)
		}
	}
	ids := map[model.TupleID]bool{}
	for _, rel := range s.Source.Relations() {
		for _, tu := range rel.Tuples {
			ids[tu.ID] = true
		}
	}
	for _, rel := range s.Target.Relations() {
		for _, tu := range rel.Tuples {
			if ids[tu.ID] {
				t.Fatalf("tuple id %d shared between source and target", tu.ID)
			}
		}
	}
}

func TestAddRandomAndRedundant(t *testing.T) {
	s := AddRandomAndRedundant(base(100), 0.05, 0.10, 0.10, 11)
	// Each side gains ~10% random and ~10% duplicates.
	if got := s.Source.NumTuples(); got < 115 || got > 125 {
		t.Errorf("source rows = %d, want ~120", got)
	}
	// Duplicates make the mapping n-to-m: more pairs than base rows.
	if len(s.GoldPairs) <= 100 {
		t.Errorf("gold pairs = %d, want > 100 (duplicates add pairs)", len(s.GoldPairs))
	}
	gold, err := s.GoldScore(lambda)
	if err != nil {
		t.Fatal(err)
	}
	if gold <= 0 || gold >= 1 {
		t.Errorf("gold score = %v, want in (0, 1)", gold)
	}
}

func TestNullReuseProducesRepeatedNulls(t *testing.T) {
	in := model.NewInstance()
	in.AddRelation("R", "A")
	for i := 0; i < 200; i++ {
		in.Append("R", model.Const("same")) // all cells share the original value
	}
	s := Make(in, Noise{CellPct: 0.5, NullShare: 1.0, NullReuse: 1.0, Seed: 2})
	counts := map[model.Value]int{}
	for _, tu := range s.Source.Relation("R").Tuples {
		if v := tu.Values[0]; v.IsNull() {
			counts[v]++
		}
	}
	reused := false
	for _, c := range counts {
		if c > 1 {
			reused = true
		}
	}
	if !reused {
		t.Error("NullReuse=1 never reused a null")
	}
}

// TestGoldScoreMatchesSignatureOnCleanScenario: when nothing was modified,
// the signature algorithm must rediscover the full gold mapping.
func TestGoldScoreMatchesSignatureOnCleanScenario(t *testing.T) {
	s := Make(base(80), Noise{Seed: 4})
	res, err := signature.Run(s.Source, s.Target, match.OneToOne, signature.Options{Lambda: lambda})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Score-1) > 1e-9 {
		t.Errorf("signature score on clean scenario = %v, want 1", res.Score)
	}
}

// TestSignatureCloseToGold reproduces the paper's central claim in miniature:
// on a modCell scenario the signature score is within 1% of the
// by-construction score (Table 2's Diff column).
func TestSignatureCloseToGold(t *testing.T) {
	s := ModCell(base(300), 0.05, 13)
	gold, err := s.GoldScore(lambda)
	if err != nil {
		t.Fatal(err)
	}
	res, err := signature.Run(s.Source, s.Target, match.OneToOne, signature.Options{Lambda: lambda})
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(gold - res.Score); diff > 0.01 {
		t.Errorf("signature %.4f vs gold %.4f: diff %.4f > 0.01", res.Score, gold, diff)
	}
}

func TestGoldEnvConsistent(t *testing.T) {
	s := AddRandomAndRedundant(base(150), 0.10, 0.10, 0.10, 17)
	env, err := s.GoldEnv()
	if err != nil {
		t.Fatal(err)
	}
	if !env.IsComplete() {
		t.Error("gold env is not a complete match")
	}
	if sc := score.Match(env, lambda); sc < 0 || sc > 1 {
		t.Errorf("gold score out of range: %v", sc)
	}
}

// TestBestKnownScoreDominatesGold: the greedy-extended reference is never
// below the raw gold score, and stays a valid lower bound (≤ 1).
func TestBestKnownScoreDominatesGold(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		s := AddRandomAndRedundant(base(120), 0.08, 0.10, 0.10, seed)
		gold, err := s.GoldScore(lambda)
		if err != nil {
			t.Fatal(err)
		}
		best, err := s.BestKnownScore(lambda, match.ManyToMany)
		if err != nil {
			t.Fatal(err)
		}
		if best < gold-1e-9 {
			t.Errorf("seed %d: best-known %v below gold %v", seed, best, gold)
		}
		if best > 1+1e-9 {
			t.Errorf("seed %d: best-known %v above 1", seed, best)
		}
	}
}

// TestBestKnownScoreCleanScenario: without noise the gold is already the
// optimum; the extension must not change it.
func TestBestKnownScoreCleanScenario(t *testing.T) {
	s := Make(base(60), Noise{Seed: 3})
	best, err := s.BestKnownScore(lambda, match.OneToOne)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(best-1) > 1e-9 {
		t.Errorf("best-known on clean scenario = %v, want 1", best)
	}
}

func TestBaseNotModified(t *testing.T) {
	b := base(30)
	before := b.String()
	Make(b, Noise{CellPct: 0.5, RandomPct: 0.5, RedundantPct: 0.5, Seed: 1})
	if b.String() != before {
		t.Error("Make modified the base instance")
	}
}

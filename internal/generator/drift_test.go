package generator

import (
	"reflect"
	"testing"

	"instcmp/internal/model"
)

func driftBase() *model.Instance {
	in := model.NewInstance()
	in.AddRelation("people", "id", "email", "city", "age")
	rows := [][]string{
		{"id-1", "ann@example.com", "Tacoma", "34"},
		{"id-2", "bob@example.com", "Loveland", "41"},
		{"id-3", "cho@example.com", "Tacoma", "28"},
	}
	for _, row := range rows {
		vals := make([]model.Value, len(row))
		for i, c := range row {
			vals[i] = model.Const(c)
		}
		in.Append("people", vals...)
	}
	in.AddRelation("orders", "sku", "qty")
	in.Append("orders", model.Const("sku-9"), model.Null("q1"))
	return in
}

func TestDriftTargetRenameReorderPreservesData(t *testing.T) {
	base := driftBase()
	got, log := DriftTarget(base, Drift{RenamePct: 1, Reorder: true, Seed: 7})

	if len(log.RenamedAttrs["people"]) != 4 || len(log.RenamedAttrs["orders"]) != 2 {
		t.Fatalf("RenamePct 1 should rename every attribute: %+v", log.RenamedAttrs)
	}
	for _, rel := range base.Relations() {
		drel := got.Relation(rel.Name)
		if drel == nil {
			t.Fatalf("relation %q renamed without RenameRelations", rel.Name)
		}
		if drel.Arity() != rel.Arity() || len(drel.Tuples) != len(rel.Tuples) {
			t.Fatalf("%q changed shape: %d×%d vs %d×%d",
				rel.Name, drel.Arity(), len(drel.Tuples), rel.Arity(), len(rel.Tuples))
		}
		// Every original column must survive under its drifted name with
		// the same values in the same row order.
		for ci, attr := range rel.Attrs {
			dname := log.RenamedAttrs[rel.Name][attr]
			if dname == "" || dname == attr {
				t.Fatalf("%q.%q not renamed: %q", rel.Name, attr, dname)
			}
			di := drel.AttrIndex(dname)
			if di < 0 {
				t.Fatalf("drifted column %q missing in %q", dname, rel.Name)
			}
			for ti := range rel.Tuples {
				if drel.Tuples[ti].Values[di] != rel.Tuples[ti].Values[ci] {
					t.Fatalf("%q.%q row %d: value changed", rel.Name, attr, ti)
				}
				if drel.Tuples[ti].ID != rel.Tuples[ti].ID {
					t.Fatalf("%q row %d: tuple id not preserved", rel.Name, ti)
				}
			}
		}
	}

	// Same seed, same drift — scenario generation must be reproducible.
	again, log2 := DriftTarget(base, Drift{RenamePct: 1, Reorder: true, Seed: 7})
	if !model.SameSchema(got, again) || !reflect.DeepEqual(log, log2) {
		t.Error("equal seeds produced different drifts")
	}
}

func TestDriftTargetDropCols(t *testing.T) {
	base := driftBase()
	got, log := DriftTarget(base, Drift{DropCols: 1, Seed: 3})
	if got.Relation("people").Arity() != 3 || got.Relation("orders").Arity() != 1 {
		t.Fatalf("DropCols 1 left arities %d and %d",
			got.Relation("people").Arity(), got.Relation("orders").Arity())
	}
	if len(log.DroppedAttrs["people"]) != 1 || len(log.DroppedAttrs["orders"]) != 1 {
		t.Fatalf("dropped attrs not logged: %+v", log.DroppedAttrs)
	}
	if got.Relation("people").AttrIndex(log.DroppedAttrs["people"][0]) >= 0 {
		t.Error("dropped attribute still present")
	}

	// Drops are capped so at least one column survives.
	capped, _ := DriftTarget(base, Drift{DropCols: 99, Seed: 3})
	for _, rel := range capped.Relations() {
		if rel.Arity() != 1 {
			t.Errorf("%q: arity %d after capped drop, want 1", rel.Name, rel.Arity())
		}
	}

	// The drop set for k columns nests inside the set for k+1 at equal
	// seeds, which is what makes degradation comparisons meaningful.
	one, log1 := DriftTarget(base, Drift{DropCols: 1, Seed: 5})
	_, log2 := DriftTarget(base, Drift{DropCols: 2, Seed: 5})
	_ = one
	for relName, dropped1 := range log1.DroppedAttrs {
		set2 := map[string]bool{}
		for _, a := range log2.DroppedAttrs[relName] {
			set2[a] = true
		}
		for _, a := range dropped1 {
			if !set2[a] {
				t.Errorf("%q: drop set not nested: %q dropped at k=1 but not k=2", relName, a)
			}
		}
	}
}

func TestDriftTargetRenameRelations(t *testing.T) {
	base := driftBase()
	got, log := DriftTarget(base, Drift{RenameRelations: true, Seed: 9})
	for _, rel := range base.Relations() {
		nn := log.RenamedRelations[rel.Name]
		if nn == "" || nn == rel.Name {
			t.Fatalf("relation %q not renamed: %q", rel.Name, nn)
		}
		if got.Relation(nn) == nil {
			t.Fatalf("renamed relation %q missing", nn)
		}
		if got.Relation(rel.Name) != nil {
			t.Fatalf("original relation name %q still present", rel.Name)
		}
	}
}

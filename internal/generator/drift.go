package generator

import (
	"fmt"
	"math/rand"
	"sort"

	"instcmp/internal/model"
)

// Drift parameterizes schema-drift generation: the data stays put while the
// schema presentation changes, the way a dataset drifts across versions of a
// pipeline — columns renamed, reordered, or dropped. Drifted targets are the
// ground truth for mapping discovery: by construction the pre-drift schema
// is the right answer.
type Drift struct {
	// RenamePct is the fraction of surviving attributes renamed per
	// relation (rounded to the nearest count).
	RenamePct float64
	// Reorder shuffles the column order of every relation.
	Reorder bool
	// DropCols is the number of attributes dropped per relation, capped so
	// at least one column survives.
	DropCols int
	// RenameRelations renames every relation, exercising relation-level
	// pairing by content.
	RenameRelations bool
	// Seed drives all randomness; equal seeds give equal drifts, and the
	// drop sets for DropCols = k are nested in those for k+1.
	Seed int64
}

// DriftLog records what DriftTarget did, keyed by original relation name, so
// tests can assert a discovered mapping inverts the drift.
type DriftLog struct {
	// RenamedRelations maps original relation names to their drifted names.
	RenamedRelations map[string]string
	// RenamedAttrs maps, per original relation, original attribute names to
	// their drifted names.
	RenamedAttrs map[string]map[string]string
	// DroppedAttrs lists, per original relation, the dropped attributes.
	DroppedAttrs map[string][]string
	// ReorderedRels lists the relations whose column order changed.
	ReorderedRels []string
}

// DriftTarget returns a drifted deep copy of in plus a log of the applied
// drift. Tuple values, identifiers, and order are preserved — only the
// schema presentation moves, so comparing source against the drifted copy
// under a correctly discovered mapping must reproduce the undrifted score.
func DriftTarget(in *model.Instance, d Drift) (*model.Instance, *DriftLog) {
	rng := rand.New(rand.NewSource(d.Seed))
	log := &DriftLog{
		RenamedRelations: map[string]string{},
		RenamedAttrs:     map[string]map[string]string{},
		DroppedAttrs:     map[string][]string{},
	}
	out := model.NewInstance()
	usedRel := map[string]bool{}
	for _, rel := range in.Relations() {
		arity := rel.Arity()

		drop := d.DropCols
		if drop > arity-1 {
			drop = arity - 1
		}
		dropped := map[int]bool{}
		if drop > 0 {
			for _, ci := range rng.Perm(arity)[:drop] {
				dropped[ci] = true
			}
		}
		keep := make([]int, 0, arity-drop)
		for ci := 0; ci < arity; ci++ {
			if dropped[ci] {
				log.DroppedAttrs[rel.Name] = append(log.DroppedAttrs[rel.Name], rel.Attrs[ci])
				continue
			}
			keep = append(keep, ci)
		}

		if d.Reorder && len(keep) > 1 {
			rng.Shuffle(len(keep), func(i, j int) { keep[i], keep[j] = keep[j], keep[i] })
			if !sort.IntsAreSorted(keep) {
				log.ReorderedRels = append(log.ReorderedRels, rel.Name)
			}
		}

		attrs := make([]string, len(keep))
		used := map[string]bool{}
		for i, ci := range keep {
			attrs[i] = rel.Attrs[ci]
			used[attrs[i]] = true
		}
		if n := int(d.RenamePct*float64(len(attrs)) + 0.5); n > 0 {
			if n > len(attrs) {
				n = len(attrs)
			}
			for _, ai := range rng.Perm(len(attrs))[:n] {
				old := attrs[ai]
				nn := rename(old, rng, used)
				used[nn] = true
				attrs[ai] = nn
				if log.RenamedAttrs[rel.Name] == nil {
					log.RenamedAttrs[rel.Name] = map[string]string{}
				}
				log.RenamedAttrs[rel.Name][old] = nn
			}
		}

		name := rel.Name
		if d.RenameRelations {
			name = rename(rel.Name, rng, usedRel)
			log.RenamedRelations[rel.Name] = name
		}
		usedRel[name] = true

		out.AddRelation(name, attrs...)
		or := out.Relation(name)
		for _, t := range rel.Tuples {
			vals := make([]model.Value, len(keep))
			for i, ci := range keep {
				vals[i] = t.Values[ci]
			}
			out.Append(name, vals...)
			// Preserve the original identifier, like alignSchemas does, so
			// gold pairings survive the drift.
			or.Tuples[len(or.Tuples)-1].ID = t.ID
		}
	}
	return out, log
}

// rename mints a drifted name: a version-style suffix, guaranteed distinct
// from the original and from every name in used.
func rename(old string, rng *rand.Rand, used map[string]bool) string {
	nn := fmt.Sprintf("%s_v%d", old, rng.Intn(8)+2)
	for used[nn] {
		nn += "x"
	}
	return nn
}

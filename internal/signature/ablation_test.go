package signature

// Ablation tests for the implementation's refinements over the paper's
// literal greedy: the sub-signature rescue round, the perfect-pairs-first
// round, and the net-gain guard. Each test constructs a scenario where the
// refinement matters and checks that disabling it reproduces the weaker
// behaviour — documenting *why* the refinement exists.

import (
	"math/rand"
	"testing"

	"instcmp/internal/datasets"
	"instcmp/internal/generator"
	"instcmp/internal/match"
	"instcmp/internal/model"
)

// TestAblationRescueRound: pairs whose null positions differ on both sides
// are invisible to maximal signatures; without the rescue round they fall
// to the completion step.
func TestAblationRescueRound(t *testing.T) {
	l := model.NewInstance()
	l.AddRelation("R", "A", "B", "C")
	l.Append("R", model.Null("N1"), model.Const("x"), model.Const("y"))
	r := model.NewInstance()
	r.AddRelation("R", "A", "B", "C")
	r.Append("R", model.Const("k"), model.Const("x"), model.Null("V1"))

	with, err := Run(l, r, match.OneToOne, Options{Lambda: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Run(l, r, match.OneToOne, Options{Lambda: 0.5, DisableRescue: true})
	if err != nil {
		t.Fatal(err)
	}
	if with.Score != without.Score {
		t.Errorf("final scores must agree: %v vs %v", with.Score, without.Score)
	}
	if with.Stats.SigMatches != 1 || with.Stats.CompatMatches != 0 {
		t.Errorf("rescue round should find the pair signature-side: %+v", with.Stats)
	}
	if without.Stats.SigMatches != 0 || without.Stats.CompatMatches != 1 {
		t.Errorf("without rescue the pair must come from completion: %+v", without.Stats)
	}
}

// TestAblationGainGuard: without the guard, the greedy happily adds a
// score-lowering cross pair and isomorphic instances drop below 1 in the
// n-to-m mode.
func TestAblationGainGuard(t *testing.T) {
	mk := func(prefix string) *model.Instance {
		in := model.NewInstance()
		in.AddRelation("R", "A", "B", "C")
		q1, q2 := model.Null(prefix+"q1"), model.Null(prefix+"q2")
		in.Append("R", q2, model.Const("c0"), model.Const("c2"))
		in.Append("R", model.Const("c3"), model.Const("c0"), q1)
		in.Append("R", q2, q2, model.Const("c1"))
		in.Append("R", model.Const("c2"), model.Const("c0"), model.Const("c0"))
		return in
	}
	l, r := mk(""), mk("r·")
	guarded, err := Run(l, r, match.ManyToMany, Options{Lambda: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if guarded.Score != 1 {
		t.Errorf("guarded self-comparison = %v, want 1", guarded.Score)
	}
	raw, err := Run(l, r, match.ManyToMany, Options{Lambda: 0.5, NoGainGuard: true})
	if err != nil {
		t.Fatal(err)
	}
	if raw.Score >= guarded.Score {
		t.Errorf("literal greedy should lose score here: %v vs %v", raw.Score, guarded.Score)
	}
}

// TestAblationTwoRound: on noisy workloads, matching perfect pairs first
// never hurts the final score.
func TestAblationTwoRound(t *testing.T) {
	base := datasets.Doctors(200, rand.New(rand.NewSource(5)))
	for seed := int64(0); seed < 5; seed++ {
		sc := generator.Make(base, generator.Noise{CellPct: 0.1, Seed: seed})
		two, err := Run(sc.Source, sc.Target, match.OneToOne, Options{Lambda: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		one, err := Run(sc.Source, sc.Target, match.OneToOne, Options{Lambda: 0.5, SingleRound: true})
		if err != nil {
			t.Fatal(err)
		}
		if two.Score < one.Score-1e-9 {
			t.Errorf("seed %d: two-round %v below single-round %v", seed, two.Score, one.Score)
		}
	}
}

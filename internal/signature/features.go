package signature

// This file exposes the engine's signature-hash stream as a per-instance
// feature set for the sketch layer (internal/lakeindex). A comparison hashes
// (attribute, ValueID) pairs in a joint ID space; an index has no joint
// space, so features decode each self-coded cell back through the prepared
// side's interner and hash (attribute name, value content) canonically
// (model.ValueHash/NameHash). Two instances therefore emit equal feature
// hashes exactly for cells that agree on attribute name and constant value —
// the same agreements maximal signatures are made of — which is what makes
// MinHash over this stream a cheap proxy for signature similarity.

import (
	"instcmp/internal/match"
	"instcmp/internal/model"
)

// SketchFeatures returns the deduplicated canonical feature hashes of a
// prepared instance: one 64-bit hash per distinct (attribute name, constant)
// cell, in first-seen scan order. Labeled nulls contribute nothing — their
// labels are instance-local names, meaningless across instances. The stream
// is computed from the prepared side's resident coded rows: each distinct
// value's content is hashed once, and every further cell is an integer table
// lookup plus one hash fold.
func SketchFeatures(side *match.PreparedSide) []uint64 {
	// Per-ID content hashes, computed once over the interner's distinct
	// values rather than once per cell.
	valHash := make([]uint64, side.In.Len())
	nulls := side.In.NullFlags()
	for id := range valHash {
		if !nulls[id] {
			valHash[id] = model.ValueHash(side.In.ValueOf(model.ValueID(id)))
		}
	}
	seen := make(map[uint64]struct{}, side.In.Len())
	out := make([]uint64, 0, side.In.Len())
	//instlint:allow ctxpoll -- one linear pass over already-resident coded rows, on par with the preparation that produced them; sketching has no ctx to poll
	for ri, rel := range side.Rels {
		crel := side.Code[ri]
		attrHash := make([]uint64, len(rel.Attrs))
		for a, name := range rel.Attrs {
			attrHash[a] = model.NameHash(name)
		}
		for ti := 0; ti < crel.Rows(); ti++ {
			row, mask := crel.Row(ti), crel.Masks[ti]
			for a := range attrHash {
				if mask&(1<<a) == 0 {
					continue // labeled null: no cross-instance content
				}
				h := model.MixHash(attrHash[a], valHash[row[a]])
				if _, dup := seen[h]; dup {
					continue
				}
				seen[h] = struct{}{}
				out = append(out, h)
			}
		}
	}
	return out
}

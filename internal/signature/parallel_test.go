package signature

// Worker-invariance tests for the parallel produce/commit pipeline: the
// whole point of the design (DESIGN.md §12) is that Workers only changes
// wall-clock time, never the result. Scenarios are sized above
// minParallelRows so the parallel paths genuinely engage (asserted via the
// Stats block counters, so a silently-skipped gate fails the test).

import (
	"context"
	"slices"
	"testing"
	"time"

	"instcmp/internal/datasets"
	"instcmp/internal/generator"
	"instcmp/internal/match"
)

// TestRunBlocksOrderedCommit pins the pipeline helper itself: every block
// is produced exactly once, committed exactly once, and committed in
// ascending block order regardless of worker count.
func TestRunBlocksOrderedCommit(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		const n = 97
		produced := make([]int, n)
		var committed []int
		runBlocks(workers, n,
			func() int { return 0 },
			func(state int, b int) int {
				// Skew per-block work so completion order differs from
				// block order.
				x := state
				for i := 0; i < (b%7)*1000; i++ {
					x += i
				}
				produced[b]++
				return b
			},
			func(b int, got int) {
				if got != b {
					t.Fatalf("workers=%d: block %d committed result %d", workers, b, got)
				}
				committed = append(committed, b)
			})
		for b, c := range produced {
			if c != 1 {
				t.Errorf("workers=%d: block %d produced %d times", workers, b, c)
			}
		}
		if !slices.IsSorted(committed) || len(committed) != n {
			t.Errorf("workers=%d: committed %d blocks, order sorted=%v", workers, len(committed), slices.IsSorted(committed))
		}
	}
}

// invarianceScenarios are Table-2- and Table-3-shaped workloads large
// enough to cross the parallel gates, plus a rescue-heavy and a
// partial-mode variant.
var invarianceScenarios = []struct {
	label string
	name  datasets.Name
	rows  int
	noise generator.Noise
	mode  match.Mode
	opt   Options
	// wantCompleteBlocks / wantRescueTasks assert that the respective
	// parallel phase actually ran for Workers > 1.
	wantCompleteBlocks bool
	wantRescueTasks    bool
}{
	{
		label: "table2-doct",
		name:  datasets.Doct, rows: 1500,
		noise: generator.Noise{CellPct: 0.05, NullReuse: 0.3},
		mode:  match.OneToOne,
		opt:   Options{Lambda: 0.5},
	},
	{
		label: "table2-git-wide",
		name:  datasets.Git, rows: 1200,
		noise: generator.Noise{CellPct: 0.10},
		mode:  match.OneToOne,
		opt:   Options{Lambda: 0.5},
	},
	{
		label: "table3-doct",
		name:  datasets.Doct, rows: 1200,
		noise: generator.Noise{CellPct: 0.05, NullReuse: 0.3, RandomPct: 0.10, RedundantPct: 0.10},
		mode:  match.ManyToMany,
		opt:   Options{Lambda: 0.5},
		// n-to-m never saturates, so every left row reaches completion.
		wantCompleteBlocks: true,
	},
	{
		label: "rescue-heavy",
		name:  datasets.Doct, rows: 1500,
		noise:              generator.Noise{CellPct: 0.25, NullReuse: 0.3},
		mode:               match.Functional,
		opt:                Options{Lambda: 0.5},
		wantRescueTasks:    true,
		wantCompleteBlocks: true,
	},
	{
		label: "partial",
		name:  datasets.Doct, rows: 1200,
		noise: generator.Noise{CellPct: 0.15, NullReuse: 0.3},
		mode:  match.OneToOne,
		opt:   Options{Lambda: 0.5, Partial: true, MinPartialSig: 2},
	},
}

// TestSignatureWorkerInvariance runs every scenario at Workers 1, 2, and 8
// and requires the score, the phase stats, the full pair list, and the
// EnvStats counters to be identical — not approximately, bit-for-bit.
func TestSignatureWorkerInvariance(t *testing.T) {
	for _, sc := range invarianceScenarios {
		t.Run(sc.label, func(t *testing.T) {
			base, err := datasets.Generate(sc.name, sc.rows, 42)
			if err != nil {
				t.Fatal(err)
			}
			noise := sc.noise
			noise.Seed = 42
			gen := generator.Make(base, noise)

			type outcome struct {
				score, afterSig           float64
				sigMatches, compatMatches int
				pairs                     []match.Pair
				envStats                  match.EnvStats
			}
			runWith := func(workers int) (outcome, *Result) {
				opt := sc.opt
				opt.Workers = workers
				res, err := Run(gen.Source, gen.Target, sc.mode, opt)
				if err != nil {
					t.Fatal(err)
				}
				return outcome{
					score:         res.Score,
					afterSig:      res.Stats.ScoreAfterSig,
					sigMatches:    res.Stats.SigMatches,
					compatMatches: res.Stats.CompatMatches,
					pairs:         slices.Clone(res.Env.Pairs()),
					envStats:      res.Env.Stats,
				}, res
			}

			ref, seqRes := runWith(1)
			if seqRes.Stats.ScanBlocks != 0 || seqRes.Stats.RescueTasks != 0 || seqRes.Stats.CompleteBlocks != 0 {
				t.Errorf("Workers=1 reported parallel blocks: %+v", seqRes.Stats)
			}
			for _, workers := range []int{2, 8} {
				got, res := runWith(workers)
				if got.score != ref.score {
					t.Errorf("Workers=%d: score %.17g, sequential %.17g", workers, got.score, ref.score)
				}
				if got.afterSig != ref.afterSig {
					t.Errorf("Workers=%d: ScoreAfterSig %.17g, sequential %.17g", workers, got.afterSig, ref.afterSig)
				}
				if got.sigMatches != ref.sigMatches || got.compatMatches != ref.compatMatches {
					t.Errorf("Workers=%d: matches sig=%d compat=%d, sequential sig=%d compat=%d",
						workers, got.sigMatches, got.compatMatches, ref.sigMatches, ref.compatMatches)
				}
				if !slices.Equal(got.pairs, ref.pairs) {
					t.Errorf("Workers=%d: pair list diverges from sequential run", workers)
				}
				if got.envStats != ref.envStats {
					t.Errorf("Workers=%d: EnvStats %+v, sequential %+v", workers, got.envStats, ref.envStats)
				}
				if res.Stats.Workers != workers {
					t.Errorf("Workers=%d: Stats.Workers = %d", workers, res.Stats.Workers)
				}
				if res.Stats.ScanBlocks == 0 {
					t.Errorf("Workers=%d: parallel scan never engaged (ScanBlocks = 0)", workers)
				}
				if sc.wantCompleteBlocks && res.Stats.CompleteBlocks == 0 {
					t.Errorf("Workers=%d: parallel completion never engaged", workers)
				}
				if sc.wantRescueTasks && res.Stats.RescueTasks == 0 {
					t.Errorf("Workers=%d: parallel rescue never engaged", workers)
				}
			}
		})
	}
}

// TestSignatureWorkerInvarianceAblations pins invariance under the ablation
// switches too: the committer replays the sequential decision sequence no
// matter which greedy refinements are on.
func TestSignatureWorkerInvarianceAblations(t *testing.T) {
	base, err := datasets.Generate(datasets.Doct, 1200, 7)
	if err != nil {
		t.Fatal(err)
	}
	gen := generator.Make(base, generator.Noise{CellPct: 0.15, NullReuse: 0.3, Seed: 7})
	for _, abl := range []struct {
		label string
		opt   Options
	}{
		{"no-rescue", Options{Lambda: 0.5, DisableRescue: true}},
		{"single-round", Options{Lambda: 0.5, SingleRound: true}},
		{"no-gain-guard", Options{Lambda: 0.5, NoGainGuard: true}},
	} {
		t.Run(abl.label, func(t *testing.T) {
			var ref *Result
			for _, workers := range []int{1, 4} {
				opt := abl.opt
				opt.Workers = workers
				res, err := Run(gen.Source, gen.Target, match.Functional, opt)
				if err != nil {
					t.Fatal(err)
				}
				if ref == nil {
					ref = res
					continue
				}
				if res.Score != ref.Score || res.Stats.SigMatches != ref.Stats.SigMatches {
					t.Errorf("Workers=%d: score %.17g matches %d, sequential %.17g / %d",
						workers, res.Score, res.Stats.SigMatches, ref.Score, ref.Stats.SigMatches)
				}
				if !slices.Equal(res.Env.Pairs(), ref.Env.Pairs()) {
					t.Errorf("Workers=%d: pair list diverges from sequential run", workers)
				}
			}
		})
	}
}

// TestParallelRunCancellation: a canceled parallel run terminates promptly,
// reports StoppedCanceled, and leaves a usable (prefix) match, like the
// sequential path.
func TestParallelRunCancellation(t *testing.T) {
	base, err := datasets.Generate(datasets.Doct, 2000, 42)
	if err != nil {
		t.Fatal(err)
	}
	gen := generator.Make(base, generator.Noise{CellPct: 0.25, NullReuse: 0.3, Seed: 42})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done := make(chan *Result, 1)
	go func() {
		res, err := RunContext(ctx, gen.Source, gen.Target, match.Functional, Options{Lambda: 0.5, Workers: 4})
		if err != nil {
			t.Error(err)
		}
		done <- res
	}()
	select {
	case res := <-done:
		if res == nil {
			t.Fatal("run failed")
		}
		if res.Stopped != StoppedCanceled {
			t.Errorf("Stopped = %q, want %q", res.Stopped, StoppedCanceled)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("canceled parallel run did not return")
	}
}

package signature

import (
	"math"
	"math/rand"
	"testing"

	"instcmp/internal/match"
	"instcmp/internal/model"
)

func c(s string) model.Value { return model.Const(s) }
func n(s string) model.Value { return model.Null(s) }

const lambda = 0.5

func build(rows [][]model.Value) *model.Instance {
	in := model.NewInstance()
	attrs := []string{"A", "B", "C", "D"}
	if len(rows) > 0 {
		attrs = attrs[:len(rows[0])]
	}
	in.AddRelation("R", attrs...)
	for _, row := range rows {
		in.Append("R", row...)
	}
	return in
}

func run(t *testing.T, l, r *model.Instance, mode match.Mode) *Result {
	t.Helper()
	res, err := Run(l, r, mode, Options{Lambda: lambda})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestIdenticalInstances(t *testing.T) {
	l := build([][]model.Value{{c("a"), c("b")}, {c("x"), n("N1")}})
	r := build([][]model.Value{{c("a"), c("b")}, {c("x"), n("V1")}})
	if got := run(t, l, r, match.OneToOne).Score; math.Abs(got-1) > 1e-9 {
		t.Errorf("isomorphic score = %v, want 1", got)
	}
}

// TestFig6Scenario: the signature algorithm must find the Sec. 6.2 match,
// including the (t2,t5) pair that has no maximal-signature match because
// the null positions differ — the rescue round's sub-signature probing
// (Property 2) finds it within the signature phase.
func TestFig6Scenario(t *testing.T) {
	l := model.NewInstance()
	l.AddRelation("Conf", "Id", "Name", "Year", "Org")
	l.Append("Conf", n("N1"), c("VLDB"), c("1975"), c("VLDB End."))
	l.Append("Conf", n("N2"), c("VLDB"), n("N4"), c("VLDB End."))
	l.Append("Conf", n("N3"), c("SIGMOD"), c("1977"), c("ACM"))
	r := model.NewInstance()
	r.AddRelation("Conf", "Id", "Name", "Year", "Org")
	r.Append("Conf", n("Va"), c("VLDB"), c("1975"), c("VLDB End."))
	r.Append("Conf", n("Vb"), c("VLDB"), c("1976"), n("Vc"))
	r.Append("Conf", c("3"), c("ICDE"), c("1984"), c("IEEE"))

	res := run(t, l, r, match.OneToOne)
	want := (12 + 4*lambda) / 24
	if math.Abs(res.Score-want) > 1e-9 {
		t.Errorf("Fig 6 score = %v, want %v", res.Score, want)
	}
	if res.Stats.SigMatches != 2 || res.Stats.CompatMatches != 0 {
		t.Errorf("phase split = %d sig + %d compat, want 2 + 0",
			res.Stats.SigMatches, res.Stats.CompatMatches)
	}
}

func TestScoreInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		mk := func(side string) *model.Instance {
			nrows := 1 + rng.Intn(6)
			rows := make([][]model.Value, nrows)
			for i := range rows {
				rows[i] = make([]model.Value, 2)
				for j := range rows[i] {
					if rng.Intn(3) == 0 {
						rows[i][j] = model.Nullf("%s%d_%d_%d", side, trial, i, j)
					} else {
						rows[i][j] = model.Constf("c%d", rng.Intn(3))
					}
				}
			}
			return build(rows)
		}
		res := run(t, mk("L"), mk("R"), match.ManyToMany)
		if res.Score < 0 || res.Score > 1+1e-9 {
			t.Fatalf("score out of range: %v", res.Score)
		}
		if !res.Env.IsComplete() {
			t.Fatal("signature produced an incomplete match")
		}
	}
}

func TestInjectiveModesRespectDegrees(t *testing.T) {
	l := build([][]model.Value{{c("a"), c("b")}, {c("a"), c("b")}})
	r := build([][]model.Value{{c("a"), c("b")}, {c("a"), c("b")}})
	res := run(t, l, r, match.OneToOne)
	if got := res.Env.NumPairs(); got != 2 {
		t.Errorf("1-to-1 pairs = %d, want 2", got)
	}
	for _, p := range res.Env.Pairs() {
		if res.Env.LeftDegree(p.L) != 1 || res.Env.RightDegree(p.R) != 1 {
			t.Error("injectivity violated")
		}
	}
	gen := run(t, l, r, match.ManyToMany)
	if got := gen.Env.NumPairs(); got != 4 {
		t.Errorf("n-to-m pairs = %d, want 4 (all duplicates cross-matched)", got)
	}
}

func TestStatsPhaseSplit(t *testing.T) {
	// All matches here are signature-based: identical ground tuples.
	l := build([][]model.Value{{c("a"), c("b")}, {c("x"), c("y")}})
	r := build([][]model.Value{{c("a"), c("b")}, {c("x"), c("y")}})
	res := run(t, l, r, match.OneToOne)
	if res.Stats.SigMatches != 2 || res.Stats.CompatMatches != 0 {
		t.Errorf("phase split = %+v, want all signature-based", res.Stats)
	}
	if math.Abs(res.Stats.ScoreAfterSig-1) > 1e-9 {
		t.Errorf("ScoreAfterSig = %v, want 1", res.Stats.ScoreAfterSig)
	}
}

func TestSchemaMismatchError(t *testing.T) {
	l := build([][]model.Value{{c("a"), c("b")}})
	r := model.NewInstance()
	r.AddRelation("S", "A", "B")
	if _, err := Run(l, r, match.OneToOne, Options{Lambda: lambda}); err == nil {
		t.Error("expected schema mismatch error")
	}
}

// TestPartialMatching: with Partial enabled, tuples sharing a signature but
// conflicting on one constant can still be matched (Sec. 6.3, Property 2).
func TestPartialMatching(t *testing.T) {
	l := build([][]model.Value{{c("alice"), c("sales"), c("100")}})
	r := build([][]model.Value{{c("alice"), c("sales"), c("200")}})

	full := run(t, l, r, match.OneToOne)
	if full.Score != 0 {
		t.Fatalf("complete-match score = %v, want 0 (conflicting constants)", full.Score)
	}

	part, err := Run(l, r, match.OneToOne, Options{Lambda: lambda, Partial: true, MinPartialSig: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := (2.0 + 2.0) / 6 // two agreeing cells per side, one conflict
	if math.Abs(part.Score-want) > 1e-9 {
		t.Errorf("partial score = %v, want %v", part.Score, want)
	}

	// A floor of 3 shared constants rejects the pair again.
	strict, err := Run(l, r, match.OneToOne, Options{Lambda: lambda, Partial: true, MinPartialSig: 3})
	if err != nil {
		t.Fatal(err)
	}
	if strict.Score != 0 {
		t.Errorf("strict partial score = %v, want 0", strict.Score)
	}
}

func TestPartialStillAcceptsCompatiblePairs(t *testing.T) {
	l := build([][]model.Value{{n("N1"), c("b")}})
	r := build([][]model.Value{{c("a"), c("b")}})
	res, err := Run(l, r, match.OneToOne, Options{Lambda: lambda, Partial: true, MinPartialSig: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Fully compatible pairs bypass the shared-constant floor.
	want := (1 + lambda + 1 + lambda) / 4
	if math.Abs(res.Score-want) > 1e-9 {
		t.Errorf("compatible-pair partial score = %v, want %v", res.Score, want)
	}
}

func TestEmptyInstances(t *testing.T) {
	l := build(nil)
	r := build(nil)
	if got := run(t, l, r, match.OneToOne).Score; got != 1 {
		t.Errorf("empty instances score = %v, want 1", got)
	}
}

func TestAllNullTuples(t *testing.T) {
	l := build([][]model.Value{{n("N1"), n("N2")}})
	r := build([][]model.Value{{n("V1"), n("V2")}})
	if got := run(t, l, r, match.OneToOne).Score; math.Abs(got-1) > 1e-9 {
		t.Errorf("all-null isomorphic score = %v, want 1", got)
	}
}

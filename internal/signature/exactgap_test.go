// External test package: the exact engine imports signature for its warm
// start, so tests that compare the greedy against the exact optimum must
// live outside the signature package to avoid an import cycle.
package signature_test

import (
	"math/rand"
	"testing"

	"instcmp/internal/exact"
	"instcmp/internal/match"
	"instcmp/internal/model"
	"instcmp/internal/signature"
)

func TestAgreesWithExactOnRandomSmallInstances(t *testing.T) {
	const lambda = 0.5
	build := func(rows [][]model.Value) *model.Instance {
		in := model.NewInstance()
		attrs := []string{"A", "B", "C", "D"}
		if len(rows) > 0 {
			attrs = attrs[:len(rows[0])]
		}
		in.AddRelation("R", attrs...)
		for _, row := range rows {
			in.Append("R", row...)
		}
		return in
	}
	rng := rand.New(rand.NewSource(7))
	modes := []match.Mode{match.OneToOne, match.Functional, match.ManyToMany}
	var worst float64
	for trial := 0; trial < 60; trial++ {
		mk := func(side string) *model.Instance {
			rows := make([][]model.Value, 4)
			for i := range rows {
				rows[i] = make([]model.Value, 3)
				for j := range rows[i] {
					if rng.Intn(4) == 0 {
						rows[i][j] = model.Nullf("%s%d_%d_%d", side, trial, i, j)
					} else {
						rows[i][j] = model.Constf("c%d", rng.Intn(4))
					}
				}
			}
			return build(rows)
		}
		l, r := mk("L"), mk("R")
		mode := modes[trial%len(modes)]
		ex, err := exact.Run(l, r, mode, exact.Options{Lambda: lambda, MaxNodes: 2_000_000})
		if err != nil {
			t.Fatal(err)
		}
		if !ex.Exhaustive {
			continue
		}
		sig, err := signature.Run(l, r, mode, signature.Options{Lambda: lambda})
		if err != nil {
			t.Fatal(err)
		}
		if sig.Score > ex.Score+1e-9 {
			t.Fatalf("trial %d: signature %v exceeds exact optimum %v", trial, sig.Score, ex.Score)
		}
		if d := ex.Score - sig.Score; d > worst {
			worst = d
		}
	}
	// The paper reports <1% score difference; on these tiny instances the
	// greedy may lose a bit more, but must stay close.
	if worst > 0.15 {
		t.Errorf("worst exact-signature gap = %v, want <= 0.15", worst)
	}
}

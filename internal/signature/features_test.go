package signature

import (
	"testing"

	"instcmp/internal/match"
	"instcmp/internal/model"
)

func prepareInstance(t *testing.T, build func(in *model.Instance)) *match.PreparedSide {
	t.Helper()
	in := model.NewInstance()
	build(in)
	side, err := match.PrepareSide(in)
	if err != nil {
		t.Fatal(err)
	}
	return side
}

// TestSketchFeaturesCanonicalAcrossInstances is the property the sketch layer
// rests on: two instances sharing (attribute, constant) cells emit equal
// feature hashes for exactly those cells, even though their self-coded
// ValueIDs differ (interning order is per-instance).
func TestSketchFeaturesCanonicalAcrossInstances(t *testing.T) {
	a := prepareInstance(t, func(in *model.Instance) {
		in.AddRelation("r", "x", "y")
		in.Append("r", model.Const("alpha"), model.Const("beta"))
		in.Append("r", model.Const("gamma"), model.Const("delta"))
	})
	// Same cells, reversed insertion order → different interner IDs.
	b := prepareInstance(t, func(in *model.Instance) {
		in.AddRelation("r", "x", "y")
		in.Append("r", model.Const("gamma"), model.Const("delta"))
		in.Append("r", model.Const("alpha"), model.Const("beta"))
	})
	fa, fb := SketchFeatures(a), SketchFeatures(b)
	if len(fa) != 4 || len(fb) != 4 {
		t.Fatalf("feature counts = %d, %d, want 4 each", len(fa), len(fb))
	}
	setA := map[uint64]bool{}
	for _, f := range fa {
		setA[f] = true
	}
	for _, f := range fb {
		if !setA[f] {
			t.Fatalf("feature %x of b missing from a; hashing is not canonical", f)
		}
	}
}

func TestSketchFeaturesAttributeMatters(t *testing.T) {
	a := prepareInstance(t, func(in *model.Instance) {
		in.AddRelation("r", "x", "y")
		in.Append("r", model.Const("v"), model.Const("w"))
	})
	// Same constants under swapped attribute names must hash differently:
	// a signature agreement is per (attribute, value), not per value.
	b := prepareInstance(t, func(in *model.Instance) {
		in.AddRelation("r", "y", "x")
		in.Append("r", model.Const("v"), model.Const("w"))
	})
	setA := map[uint64]bool{}
	for _, f := range SketchFeatures(a) {
		setA[f] = true
	}
	for _, f := range SketchFeatures(b) {
		if setA[f] {
			t.Fatalf("feature %x shared despite attribute swap", f)
		}
	}
}

func TestSketchFeaturesSkipNullsAndDedupe(t *testing.T) {
	side := prepareInstance(t, func(in *model.Instance) {
		in.AddRelation("r", "x", "y")
		in.Append("r", model.Const("a"), model.Null("n1"))
		in.Append("r", model.Const("a"), model.Const("b")) // ("x","a") repeats
		in.Append("r", model.Null("n2"), model.Null("n1"))
	})
	feats := SketchFeatures(side)
	// Distinct constant cells: ("x","a"), ("y","b"). Nulls contribute nothing.
	if len(feats) != 2 {
		t.Fatalf("features = %d, want 2 (deduped, nulls excluded): %v", len(feats), feats)
	}
	seen := map[uint64]bool{}
	for _, f := range feats {
		if seen[f] {
			t.Fatalf("duplicate feature %x", f)
		}
		seen[f] = true
	}
}

func TestSketchFeaturesDeterministicOrder(t *testing.T) {
	build := func(in *model.Instance) {
		in.AddRelation("r", "x", "y", "z")
		in.Append("r", model.Const("1"), model.Const("2"), model.Const("3"))
		in.Append("r", model.Const("4"), model.Const("2"), model.Null("n"))
	}
	f1 := SketchFeatures(prepareInstance(t, build))
	f2 := SketchFeatures(prepareInstance(t, build))
	if len(f1) != len(f2) {
		t.Fatalf("lengths differ: %d vs %d", len(f1), len(f2))
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatalf("feature order not deterministic at %d", i)
		}
	}
}

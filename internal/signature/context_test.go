package signature

import (
	"context"
	"testing"

	"instcmp/internal/match"
	"instcmp/internal/model"
)

// TestRunContextCanceled: a canceled context stops the greedy rounds and the
// completion step, returning the (possibly empty) match grown so far with
// Stopped = StoppedCanceled — still a valid, consistently scored match.
func TestRunContextCanceled(t *testing.T) {
	rows := make([][]model.Value, 40)
	rows2 := make([][]model.Value, 40)
	for i := range rows {
		rows[i] = []model.Value{c(model.Constf("v%d", i).Raw()), n(model.Nullf("L%d", i).Raw())}
		rows2[i] = []model.Value{c(model.Constf("v%d", i).Raw()), n(model.Nullf("R%d", i).Raw())}
	}
	l, r := build(rows), build(rows2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, l, r, match.OneToOne, Options{Lambda: lambda})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped != StoppedCanceled {
		t.Errorf("Stopped = %q, want %q", res.Stopped, StoppedCanceled)
	}
	// The partial match must still be internally consistent: every reported
	// pair is in the environment, and the score matches its state.
	if got := res.Env.NumPairs(); got != res.Stats.SigMatches+res.Stats.CompatMatches {
		t.Errorf("pair accounting inconsistent: %d pairs vs %d+%d",
			got, res.Stats.SigMatches, res.Stats.CompatMatches)
	}
	if res.Score < 0 || res.Score > 1 {
		t.Errorf("canceled score out of range: %v", res.Score)
	}

	// The same comparison uncanceled completes with a perfect score and no
	// Stopped reason.
	full, err := Run(l, r, match.OneToOne, Options{Lambda: lambda})
	if err != nil {
		t.Fatal(err)
	}
	if full.Stopped != "" {
		t.Errorf("uncanceled run reported Stopped = %q", full.Stopped)
	}
	if full.Score <= res.Score && res.Score != full.Score {
		t.Errorf("full score %v not above canceled %v", full.Score, res.Score)
	}
	if full.Score != 1 {
		t.Errorf("full score = %v, want 1 (null-renamed copy)", full.Score)
	}
}

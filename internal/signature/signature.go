// Package signature implements the paper's approximate instance-comparison
// algorithm (Sec. 6.2, Algorithms 3 and 4). The algorithm greedily grows an
// instance match in two phases:
//
//  1. Signature-based matching: tuples are hashed by their maximal
//     signatures (the positional encoding of their constant attributes,
//     Def. 6.2) and probed from the other side through progressively
//     smaller attribute subsets, in both directions (Property 1).
//  2. Completion: the remaining candidate pairs are produced by
//     CompatibleTuples (Alg. 2) and confirmed greedily.
//
// The per-tuple subset enumeration is restricted to attribute sets that
// actually occur as some indexed tuple's maximal-signature set (the
// "null-pattern" optimization): enumerating any other subset can never hit
// a signature-map entry, so this is a pure optimization that keeps the
// fully-signature-based case (Case 2 of Sec. 6.2) linear in the instance
// size and combinatorial only in the number of distinct null patterns.
//
// The whole phase runs on the comparison's integer-coded representation:
// signatures are FNV-1a hashes over (attribute, ValueID) sequences instead
// of built strings, ground masks are precomputed per coded row, and the
// greedy bookkeeping (per-tuple score sums) lives in flat arrays indexed by
// flattened tuple position.
package signature

import (
	"context"
	"expvar"
	"fmt"
	"math/bits"
	"runtime"
	"sort"
	"time"

	"instcmp/internal/compat"
	"instcmp/internal/match"
	"instcmp/internal/model"
	"instcmp/internal/score"
)

// StoppedCanceled is the Result.Stopped reason for a run cut short by
// context cancellation.
const StoppedCanceled = "canceled"

// vars exports cumulative run counters for long-running processes
// (expvar key "instcmp.signature"): runs, sig_matches, compat_matches,
// canceled, plus the parallel-pipeline unit counters scan_blocks,
// rescue_tasks, complete_blocks (zero while runs stay sequential).
var vars = expvar.NewMap("instcmp.signature")

// Options configures a signature-algorithm run.
type Options struct {
	// Lambda is the null-to-constant penalty of Def. 5.5.
	Lambda float64
	// Partial enables the Sec. 6.3 partial-mapping variant: tuples may be
	// matched when they share a (non-maximal) signature even if they
	// conflict on other constants; conflicting cells score 0.
	Partial bool
	// MinPartialSig is the minimum number of shared constant attributes a
	// partial signature must cover (ignored unless Partial). Values < 1
	// are treated as 1.
	MinPartialSig int
	// ConstSim, when set, scores conflicting constant cells of partial
	// matches with their string similarity instead of 0 (the paper's
	// Sec. 9 extension). Only meaningful with Partial.
	ConstSim func(a, b string) float64
	// Workers is the number of parallel pipeline workers inside a single
	// run: 0 means GOMAXPROCS, 1 selects the plain sequential path. The
	// result is bit-identical for every worker count — workers only do
	// read-only work (signature hashing, pattern probing, candidate
	// generation) and a single committer applies pairs in canonical scan
	// order (DESIGN.md §12) — so only wall-clock time changes.
	Workers int

	// Ablation switches (benchmarks only; the defaults are what the
	// library ships with):

	// DisableRescue skips the sub-signature rescue round, leaving
	// cross-null pairs to the completion step (the paper's literal
	// Alg. 3).
	DisableRescue bool
	// SingleRound skips the perfect-pairs-first round, accepting pairs
	// in pure scan order like the paper's literal greedy.
	SingleRound bool
	// NoGainGuard disables the net-gain check in tryPair, accepting
	// every compatible pair like the paper's literal UpdateInstanceMatch.
	NoGainGuard bool
}

// params bundles the scoring parameters for this run.
func (o Options) params() score.Params {
	return score.Params{Lambda: o.Lambda, ConstSim: o.ConstSim}
}

// Stats reports how the match was assembled, feeding the paper's Table 4
// ablation.
type Stats struct {
	// SigMatches counts tuple pairs discovered by signature probing.
	SigMatches int
	// CompatMatches counts pairs added by the completion step.
	CompatMatches int
	// ScoreAfterSig is the match score before the completion step.
	ScoreAfterSig float64
	// SigPhase and CompatPhase record wall-clock time per phase.
	SigPhase    time.Duration
	CompatPhase time.Duration
	// Workers is the resolved pipeline worker count of the run (1 means
	// the sequential path ran).
	Workers int
	// ScanBlocks, RescueTasks, and CompleteBlocks count the produce/commit
	// units the parallel pipeline processed per phase (scan blocks of the
	// signature passes, per-mask rescue tasks, completion candidate
	// blocks). All three stay 0 on the sequential path.
	ScanBlocks, RescueTasks, CompleteBlocks int
}

// Result is a completed signature run: the environment holds the final
// instance match (tuple mapping plus unifier).
type Result struct {
	Env   *match.Env
	Score float64
	Stats Stats
	// Stopped is empty for a run that completed normally, and
	// StoppedCanceled when the context was canceled mid-run. A canceled
	// run still returns the match grown so far and its score (the
	// algorithm is greedy, so any prefix of its work is a valid — merely
	// smaller — instance match).
	Stopped string
}

// Run executes the signature algorithm on two instances under the given
// mode. The instances must share a schema and have disjoint nulls.
func Run(left, right *model.Instance, mode match.Mode, opt Options) (*Result, error) {
	return RunContext(context.Background(), left, right, mode, opt)
}

// RunContext is Run with a cancellation context, polled between phases and
// relations (the algorithm is polynomial, so per-relation granularity keeps
// cancellation prompt without per-pair overhead).
func RunContext(ctx context.Context, left, right *model.Instance, mode match.Mode, opt Options) (*Result, error) {
	env, err := match.NewEnv(left, right, mode)
	if err != nil {
		return nil, err
	}
	return RunEnvContext(ctx, env, opt)
}

// RunPreparedContext is RunContext over prepared instances: the environment
// is assembled from the two sides' resident codings (match.NewEnvPrepared)
// instead of normalizing and interning from scratch. Scores, stats, and
// stop behavior are bit-identical to RunContext on the same instances.
func RunPreparedContext(ctx context.Context, left, right *match.PreparedSide, mode match.Mode, opt Options) (*Result, error) {
	env, err := match.NewEnvPrepared(left, right, mode)
	if err != nil {
		return nil, err
	}
	return RunEnvContext(ctx, env, opt)
}

// RunEnv executes the signature algorithm on a caller-prepared environment
// whose tuple mapping must be empty. It exists so other engines can reuse
// the algorithm as a bound provider without re-interning the instances: the
// exact search warm-starts its branch-and-bound by running RunEnv on its
// own environment, reading off the match, and rolling it back with
// Mark/Undo (every mutation goes through the environment's trail).
func RunEnv(env *match.Env, opt Options) (*Result, error) {
	return RunEnvContext(context.Background(), env, opt)
}

// RunEnvContext is RunEnv with a cancellation context.
func RunEnvContext(ctx context.Context, env *match.Env, opt Options) (*Result, error) {
	if env.NumPairs() != 0 {
		return nil, fmt.Errorf("signature: RunEnv requires an empty tuple mapping, got %d pairs", env.NumPairs())
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	r := &Result{Env: env}
	s := &runner{
		env:     env,
		ctx:     ctx,
		opt:     opt,
		workers: workers,
		sumL:    make([]float64, env.NumLeftTuples()),
		sumR:    make([]float64, env.NumRightTuples()),
	}

	//instlint:allow nondet -- phase stopwatch feeds Stats.SigPhase, a human-facing duration, never a score
	start := time.Now()
	// Round 1 accepts only perfect pairs (pair score = arity: unchanged
	// tuples, pure null renamings), so imperfect candidates cannot steal
	// a tuple from its exact counterpart; round 2 fills in the rest.
	rounds := []bool{true, false}
	if opt.SingleRound {
		rounds = []bool{false}
	}
rounds:
	for _, perfect := range rounds {
		s.perfectOnly = perfect
		for ri := range env.LRels {
			if s.canceled() {
				break rounds
			}
			// Pass 1: signature map over the left relation, scan
			// the right; pass 2 the reverse.
			s.pass(ri, true)
			s.pass(ri, false)
			// Rescue round: sub-signature probing for tuples both
			// passes missed because their null positions differ
			// (Fig. 6's t2/t5). A rescued pair always holds a null
			// opposite a constant somewhere, so it can never be
			// perfect — skip the round entirely while perfectOnly.
			if !opt.DisableRescue && !perfect {
				s.rescue(ri)
			}
		}
	}
	r.Stats.SigMatches = env.NumPairs()
	r.Stats.SigPhase = time.Since(start)
	r.Stats.ScoreAfterSig = score.MatchPW(env, opt.params(), workers)

	//instlint:allow nondet -- phase stopwatch feeds Stats.CompatPhase, a human-facing duration, never a score
	start = time.Now()
	if !s.canceled() {
		s.complete()
	}
	r.Stats.CompatMatches = env.NumPairs() - r.Stats.SigMatches
	r.Stats.CompatPhase = time.Since(start)

	r.Score = score.MatchPW(env, opt.params(), workers)
	if s.canceled() {
		r.Stopped = StoppedCanceled
		vars.Add("canceled", 1)
	}
	r.Stats.Workers = workers
	r.Stats.ScanBlocks = s.scanBlocks
	r.Stats.RescueTasks = s.rescueTasks
	r.Stats.CompleteBlocks = s.completeBlocks
	vars.Add("runs", 1)
	vars.Add("sig_matches", int64(r.Stats.SigMatches))
	vars.Add("compat_matches", int64(r.Stats.CompatMatches))
	vars.Add("scan_blocks", int64(s.scanBlocks))
	vars.Add("rescue_tasks", int64(s.rescueTasks))
	vars.Add("complete_blocks", int64(s.completeBlocks))
	return r, nil
}

type runner struct {
	env *match.Env
	ctx context.Context
	opt Options
	// workers is the resolved pipeline worker count (>= 1); 1 selects the
	// sequential code paths throughout.
	workers int
	// perfectOnly restricts tryPair to pairs scoring the full arity.
	perfectOnly bool
	// Running per-tuple pair-score sums (values as of insertion time),
	// backing the net-gain guard in tryPair. Indexed by flattened tuple
	// position.
	sumL, sumR []float64
	// rescueEntries is scratch for rescue's per-mask hash index, reused
	// across masks and relations (sequential path only; parallel rescue
	// builds per-task indexes on the workers).
	rescueEntries []sigEntry
	// patScratch and seenMasks are buildSigMap scratch reused across the
	// four builds per relation (two rounds × two directions).
	patScratch []uint64
	seenMasks  map[uint64]bool
	// scanBlocks, rescueTasks, and completeBlocks count committed parallel
	// pipeline units, feeding Stats.
	scanBlocks, rescueTasks, completeBlocks int
	// stopped latches the first observed context cancellation so later
	// checks are a plain field read. It is only ever touched from the
	// goroutine running the phases; pipeline workers poll ctx directly.
	stopped bool
}

// order returns the environment's cached lexicographic attribute order of a
// relation. Environments built from prepared instances carry the order
// precomputed at Prepare time, so repeated runs against the same prepared
// side never re-derive it.
func (s *runner) order(ri int) []int { return s.env.AttrOrder(ri) }

// cancelPollInterval bounds how many tuples a scan processes between
// context polls: lakes are dominated by single-relation instances, so
// between-relation checks alone would not bound cancellation latency.
const cancelPollInterval = 1024

// canceled reports (and latches) context cancellation.
func (s *runner) canceled() bool {
	if s.stopped {
		return true
	}
	if s.ctx.Err() != nil {
		s.stopped = true
	}
	return s.stopped
}

// sigEntry is one row of rescue's sorted hash index: the row's
// sub-signature hash and its position.
type sigEntry struct {
	h  uint64
	li int32
}

// leftSaturated reports whether a left tuple cannot take further partners.
func (s *runner) leftSaturated(ref match.Ref) bool {
	return s.env.Mode.LeftInjective && s.env.LeftDegree(ref) > 0
}

func (s *runner) rightSaturated(ref match.Ref) bool {
	return s.env.Mode.RightInjective && s.env.RightDegree(ref) > 0
}

// FNV-1a constants for sigHash.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// sigHash hashes the Def. 6.2 signature of a coded row on the attribute set
// given as a bitmask: an FNV-1a hash of the (attribute, ValueID) sequence
// in lexicographic attribute order. With interned cells this touches 8
// bytes per attribute instead of rebuilding and hashing the value strings.
// Hash collisions are harmless — a colliding candidate merely reaches the
// pair-compatibility check (TryAddPair / TryAddPartialPair), which verifies
// the real values — so hashing only ever adds spurious candidates, never
// drops real ones.
func sigHash(row []model.ValueID, mask uint64, attrOrder []int) uint64 {
	h := uint64(fnvOffset)
	for _, a := range attrOrder {
		if mask&(1<<a) == 0 {
			continue
		}
		h ^= uint64(a) + 1
		h *= fnvPrime
		h ^= uint64(uint32(row[a]))
		h *= fnvPrime
	}
	return h
}

// sigMap indexes the rows of one coded relation side by signature hashes.
// Buckets are split across power-of-two shards keyed by the low hash bits,
// so the parallel build can fill shards independently; the sequential build
// uses a single shard. Bucket contents are in row order either way, which
// the scan's commit order relies on.
type sigMap struct {
	shards   []map[uint64][]int
	mask     uint64   // len(shards) - 1
	patterns []uint64 // distinct indexed attribute sets, largest first
}

// bucket returns the rows indexed under the given signature hash.
func (m *sigMap) bucket(sig uint64) []int {
	return m.shards[sig&m.mask][sig]
}

// sortPatterns orders distinct signature masks canonically: larger
// attribute sets first, ties by value. The order is total over distinct
// masks, so sequential and parallel builds agree on it.
func sortPatterns(patterns []uint64) {
	sort.Slice(patterns, func(i, j int) bool {
		pi, pj := bits.OnesCount64(patterns[i]), bits.OnesCount64(patterns[j])
		if pi != pj {
			return pi > pj
		}
		return patterns[i] < patterns[j]
	})
}

// buildSigMap indexes every row of the coded relation. In the default mode
// each row is indexed once, under its maximal signature (Alg. 4 line 3). In
// partial mode each row is indexed under every signature with at least
// minSig attributes (Sec. 6.3). Cancellation is polled every
// cancelPollInterval rows; a canceled build returns the partial index,
// which is safe because the scan that consumes it polls before its first
// row and bails out immediately.
func (s *runner) buildSigMap(crel *model.CodedRelation, order []int) *sigMap {
	if s.workers > 1 && crel.Rows() >= minParallelRows {
		return s.buildSigMapParallel(crel, order)
	}
	partial, minSig := s.opt.Partial, s.opt.MinPartialSig
	// Size the bucket map from the row count (exact in the default mode,
	// a floor in partial mode) and reuse the pattern scratch: the previous
	// pass's sigMap is dead by the time the next one is built.
	bySig := make(map[uint64][]int, crel.Rows())
	m := &sigMap{shards: []map[uint64][]int{bySig}, patterns: s.patScratch[:0]}
	if s.seenMasks == nil {
		s.seenMasks = map[uint64]bool{}
	} else {
		clear(s.seenMasks)
	}
	seen := s.seenMasks
	add := func(ti int, row []model.ValueID, mask uint64) {
		if !seen[mask] {
			seen[mask] = true
			m.patterns = append(m.patterns, mask)
		}
		sig := sigHash(row, mask, order)
		bySig[sig] = append(bySig[sig], ti)
	}
	for ti := 0; ti < crel.Rows(); ti++ {
		if ti%cancelPollInterval == 0 && s.canceled() {
			break
		}
		row, maxMask := crel.Row(ti), crel.Masks[ti]
		if !partial {
			add(ti, row, maxMask)
			continue
		}
		// Enumerate sub-signatures of the maximal signature with at
		// least minSig attributes.
		if minSig < 1 {
			minSig = 1
		}
		for sub := maxMask; ; sub = (sub - 1) & maxMask {
			if bits.OnesCount64(sub) >= minSig {
				add(ti, row, sub)
			}
			if sub == 0 {
				break
			}
		}
	}
	sortPatterns(m.patterns)
	s.patScratch = m.patterns
	return m
}

// pass runs FindSigMatches (Alg. 4) for one relation in one direction.
// mapLeft selects which side the signature map is built over: true indexes
// the left relation and scans the right (Alg. 3 line 3), false the reverse
// (line 4).
func (s *runner) pass(ri int, mapLeft bool) {
	mapCode, scanCode := s.env.LCode[ri], s.env.RCode[ri]
	if !mapLeft {
		mapCode, scanCode = scanCode, mapCode
	}
	order := s.order(ri)
	sm := s.buildSigMap(mapCode, order)
	if s.workers > 1 && scanCode.Rows() >= minParallelRows {
		s.passParallel(ri, mapLeft, scanCode, sm, order)
		return
	}

	mapSaturated := s.leftSaturated
	scanSaturated := s.rightSaturated
	if !mapLeft {
		mapSaturated, scanSaturated = s.rightSaturated, s.leftSaturated
	}
	mkPair := func(mapIdx, scanIdx int) match.Pair {
		if mapLeft {
			return match.Pair{L: match.Ref{Rel: ri, Idx: mapIdx}, R: match.Ref{Rel: ri, Idx: scanIdx}}
		}
		return match.Pair{L: match.Ref{Rel: ri, Idx: scanIdx}, R: match.Ref{Rel: ri, Idx: mapIdx}}
	}

scan:
	for si := 0; si < scanCode.Rows(); si++ {
		if si%cancelPollInterval == 0 && s.canceled() {
			return
		}
		row, ground := scanCode.Row(si), scanCode.Masks[si]
		// Progressively smaller indexed attribute subsets (Alg. 4
		// line 6, via the null-pattern optimization).
		for _, pm := range sm.patterns {
			if pm&^ground != 0 {
				continue // pattern uses an attribute that is null in t
			}
			sig := sigHash(row, pm, order)
			for _, mi := range sm.bucket(sig) {
				if mapSaturated(match.Ref{Rel: ri, Idx: mi}) {
					continue
				}
				if !s.tryPair(mkPair(mi, si)) {
					continue
				}
				if scanSaturated(match.Ref{Rel: ri, Idx: si}) {
					continue scan // Alg. 4 "goto next scanned tuple"
				}
			}
		}
	}
}

// tryPair adds a pair to the match if it is compatible with the current
// match and the mode, using the partial variant when configured.
//
// Beyond Alg. 3's bare greedy, tryPair applies a net-gain guard: since
// Def. 5.2 averages a tuple's score over its image, adding a mediocre pair
// to two already-matched tuples can lower the total score (and would break
// Eq. 2 on isomorphic inputs in the n-to-m mode). A pair is kept only when
// the two endpoints' combined average-score change is positive; the change
// is evaluated with insertion-time pair scores, which keeps the guard O(1).
func (s *runner) tryPair(p match.Pair) bool {
	if s.opt.Partial {
		added, _ := s.env.TryAddPartialPair(p, s.opt.MinPartialSig)
		return added
	}
	kl, kr := float64(s.env.LeftDegree(p.L)), float64(s.env.RightDegree(p.R))
	m := s.env.Mark()
	if !s.env.TryAddPair(p) {
		return false
	}
	sc := score.PairScoreP(s.env, p, s.opt.params())
	if s.perfectOnly && score.LessEps(sc, float64(s.env.LRels[p.L.Rel].Arity()), score.PerfectEps) {
		s.env.Undo(m)
		return false
	}
	fl, fr := s.env.FlatL(p.L), s.env.FlatR(p.R)
	dl, dr := sc, sc
	if kl > 0 {
		dl = (s.sumL[fl]+sc)/(kl+1) - s.sumL[fl]/kl
	}
	if kr > 0 {
		dr = (s.sumR[fr]+sc)/(kr+1) - s.sumR[fr]/kr
	}
	// score.LessEps(x, 0, GainEps) is exactly x < -1e-12: 0-GainEps has an
	// exact float64 representation, so the guard's branch is unchanged.
	if score.LessEps(dl+dr, 0, score.GainEps) && !s.opt.NoGainGuard {
		s.env.Undo(m)
		return false
	}
	s.sumL[fl] += sc
	s.sumR[fr] += sc
	return true
}

// maxRescueMasks caps the number of shared-attribute masks the rescue round
// enumerates; anything beyond falls through to the completion step.
const maxRescueMasks = 256

// rescue probes tuples that remain unmatched after both maximal-signature
// passes. A pair whose tuples hold nulls at different positions (left null
// at A, right null at B) is invisible to maximal signatures: neither side's
// constant set contains the other's. Such pairs still share the signature
// on the intersection of their ground attributes (Property 2), so this
// round enumerates the distinct ground-mask intersections of the unmatched
// tuples — a small set in practice — and hash-joins on those
// sub-signatures. Pairs sharing no constant attribute at all are left to
// the completion step.
func (s *runner) rescue(ri int) {
	lcode, rcode := s.env.LCode[ri], s.env.RCode[ri]
	order := s.order(ri)

	unmatched := func(crel *model.CodedRelation, left bool) []int {
		var out []int
		for ti := 0; ti < crel.Rows(); ti++ {
			ref := match.Ref{Rel: ri, Idx: ti}
			var deg int
			if left {
				deg = s.env.LeftDegree(ref)
			} else {
				deg = s.env.RightDegree(ref)
			}
			if deg == 0 {
				out = append(out, ti)
			}
		}
		return out
	}
	leftUn, rightUn := unmatched(lcode, true), unmatched(rcode, false)
	if len(leftUn) == 0 || len(rightUn) == 0 {
		return
	}

	distinctMasks := func(crel *model.CodedRelation, idxs []int) []uint64 {
		seen := map[uint64]bool{}
		var out []uint64
		for _, ti := range idxs {
			m := crel.Masks[ti]
			if !seen[m] {
				seen[m] = true
				out = append(out, m)
			}
		}
		return out
	}
	lMasks, rMasks := distinctMasks(lcode, leftUn), distinctMasks(rcode, rightUn)
	seen := map[uint64]bool{}
	var masks []uint64
	for _, gl := range lMasks {
		// The mask product is quadratic in distinct null patterns; bail
		// out between left masks so a cancel is answered promptly.
		if s.canceled() {
			return
		}
		for _, gr := range rMasks {
			m := gl & gr
			if m != 0 && !seen[m] {
				seen[m] = true
				masks = append(masks, m)
			}
		}
	}
	sort.Slice(masks, func(i, j int) bool {
		pi, pj := bits.OnesCount64(masks[i]), bits.OnesCount64(masks[j])
		if pi != pj {
			return pi > pj
		}
		return masks[i] < masks[j]
	})
	if len(masks) > maxRescueMasks {
		masks = masks[:maxRescueMasks]
	}

	// Tuple pairs share many mask intersections; attempt each pair once.
	attempted := map[match.Pair]bool{}
	if s.workers > 1 && len(masks) > 1 && len(leftUn)+len(rightUn) >= minParallelRows {
		s.rescueParallel(ri, masks, leftUn, rightUn, order, attempted)
		return
	}
	for _, m := range masks {
		if s.canceled() {
			return
		}
		// Per-mask hash index over the eligible left rows: a slice of
		// (hash, position) entries sorted by hash, probed by binary
		// search. The backing array is scratch reused across masks; the
		// stable sort keeps equal-hash entries in leftUn order, so
		// probes visit candidates in the same order a bucket map built
		// by appending would.
		entries := s.rescueEntries[:0]
		for _, li := range leftUn {
			if s.leftSaturated(match.Ref{Rel: ri, Idx: li}) {
				continue
			}
			if lcode.Masks[li]&m == m {
				entries = append(entries, sigEntry{h: sigHash(lcode.Row(li), m, order), li: int32(li)})
			}
		}
		s.rescueEntries = entries
		if len(entries) == 0 {
			continue
		}
		sort.SliceStable(entries, func(i, j int) bool { return entries[i].h < entries[j].h })
		for _, ci := range rightUn {
			rref := match.Ref{Rel: ri, Idx: ci}
			if s.rightSaturated(rref) {
				continue
			}
			if rcode.Masks[ci]&m != m {
				continue
			}
			h := sigHash(rcode.Row(ci), m, order)
			lo := sort.Search(len(entries), func(i int) bool { return entries[i].h >= h })
			for j := lo; j < len(entries) && entries[j].h == h; j++ {
				li := int(entries[j].li)
				lref := match.Ref{Rel: ri, Idx: li}
				if s.leftSaturated(lref) {
					continue
				}
				p := match.Pair{L: lref, R: rref}
				if attempted[p] {
					continue
				}
				attempted[p] = true
				if s.tryPair(p) && s.rightSaturated(rref) {
					break
				}
			}
		}
	}
}

// complete runs the final step of Alg. 3 (lines 5-13): candidate pairs from
// CompatibleTuples, confirmed greedily against the current match.
func (s *runner) complete() {
	for ri := range s.env.LRels {
		if s.canceled() {
			return
		}
		lcode, rcode := s.env.LCode[ri], s.env.RCode[ri]
		// Injective sides only need their unmatched tuples considered;
		// non-injective sides stay fully in play (Cases 1-4, Sec. 6.2).
		var leftIdxs, rightIdxs []int
		for ti := 0; ti < lcode.Rows(); ti++ {
			if !s.leftSaturated(match.Ref{Rel: ri, Idx: ti}) {
				leftIdxs = append(leftIdxs, ti)
			}
		}
		for ti := 0; ti < rcode.Rows(); ti++ {
			if !s.rightSaturated(match.Ref{Rel: ri, Idx: ti}) {
				rightIdxs = append(rightIdxs, ti)
			}
		}
		if len(leftIdxs) == 0 || len(rightIdxs) == 0 {
			continue
		}
		ix := compat.NewCodedIndex(rcode, rightIdxs, s.env.In)
		if s.workers > 1 && len(leftIdxs) >= minParallelRows {
			s.completeParallel(ri, leftIdxs, ix)
			continue
		}
		for n, li := range leftIdxs {
			if n%cancelPollInterval == 0 && s.canceled() {
				return
			}
			lref := match.Ref{Rel: ri, Idx: li}
			for _, ci := range ix.Candidates(lcode.Row(li), lcode.Masks[li]) {
				if s.rightSaturated(match.Ref{Rel: ri, Idx: ci}) {
					continue
				}
				if !s.tryPair(match.Pair{L: lref, R: match.Ref{Rel: ri, Idx: ci}}) {
					continue
				}
				if s.leftSaturated(lref) {
					break // Alg. 3 "goto next left tuple"
				}
			}
		}
	}
}

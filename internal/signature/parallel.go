// Parallel produce/commit pipeline for the signature algorithm (DESIGN.md
// §12). The greedy phase is order-sensitive: tryPair's net-gain guard reads
// insertion-time score sums and live degrees, so the set of accepted pairs
// depends on the exact order in which candidates are attempted. The
// pipeline therefore never lets workers touch the match: workers do the
// read-only work (signature hashing, pattern probing, compatible-candidate
// generation) for fixed-size blocks of the scan index, and the calling
// goroutine commits every block's candidates in canonical scan order,
// re-checking the live conditions (saturation, pair dedup, the guard
// itself) exactly where the sequential loop checks them.
//
// Worker invariance rests on two facts. First, candidate generation is
// independent of the match state: signature hashes, pattern lists, and
// CompatibleTuples lists are functions of the coded inputs alone. Second,
// saturation is monotone during a run — degrees only grow, Undo only
// occurs inside a failed tryPair — so producing candidates without the
// sequential loop's saturation early-outs is harmless: the committer's
// live checks skip exactly the candidates the sequential loop would have
// skipped, in the same order. The committed pair sequence, the EnvStats
// counters, and every score are therefore bit-identical for any worker
// count (pinned by the regress goldens and TestSignatureWorkerInvariance).
package signature

import (
	"sort"
	"sync"
	"sync/atomic"

	"instcmp/internal/compat"
	"instcmp/internal/match"
	"instcmp/internal/model"

	"math/bits"
)

const (
	// minParallelRows gates the parallel paths: below this many scan rows
	// (or unmatched rescue rows) the fan-out overhead dominates the work
	// being split and the sequential path is used even with Workers > 1.
	minParallelRows = 512
	// scanBlockRows is the produce/commit unit of the parallel pass and
	// completion scans: big enough to amortize channel traffic, small
	// enough that a handful of blocks are always in flight ahead of the
	// committer.
	scanBlockRows = 256
	// sigBuildBlockRows is the hashing unit of the parallel sigMap build.
	sigBuildBlockRows = 1024
)

// runBlocks drives the ordered produce/commit pipeline: produce(state, b)
// runs on one of workers goroutines (each with its own state from
// newState), and commit(b, result) runs on the calling goroutine for
// b = 0, 1, ..., n-1 in ascending order. At most 2×workers blocks are in
// flight at once, bounding payload memory. Workers claim blocks in
// ascending order, so the lowest uncommitted block is always being
// produced and the committer never stalls behind an unclaimed block.
func runBlocks[S, T any](workers, n int, newState func() S, produce func(S, int) T, commit func(int, T)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	inflight := 2 * workers
	if inflight > n {
		inflight = n
	}
	results := make([]chan T, n)
	for i := range results {
		results[i] = make(chan T, 1)
	}
	// tokens carries permission to produce one block; capacity n keeps
	// the committer's release sends non-blocking. Exactly n tokens are
	// issued in total, one per block.
	tokens := make(chan struct{}, n)
	for i := 0; i < inflight; i++ {
		tokens <- struct{}{}
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			state := newState()
			for range tokens {
				b := int(next.Add(1)) - 1
				if b >= n {
					return
				}
				results[b] <- produce(state, b)
			}
		}()
	}
	released := inflight
	for b := 0; b < n; b++ {
		commit(b, <-results[b])
		if released < n {
			tokens <- struct{}{}
			released++
		}
	}
	// Every result has been received, so every produce call has finished
	// and the workers are idle on the token channel; closing it lets them
	// exit.
	close(tokens)
	wg.Wait()
}

// parallelFor runs fn(i) for i in [0, n) across the runner's workers and
// waits for all of them (a plain barrier, used where every sub-result is
// needed before the next step can start).
func (s *runner) parallelFor(n int, fn func(int)) {
	workers := s.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// sigItem is one record of the parallel sigMap build: a row's signature
// hash under one indexed pattern, plus the row position. Shard filling
// replays items in row order, reproducing the sequential bucket order.
type sigItem struct {
	h  uint64
	ti int32
}

// buildSigMapParallel is the sharded two-phase form of buildSigMap. Phase 1
// hashes fixed-size row blocks in parallel, each block recording its
// (hash, row) items in row order plus the distinct patterns it saw. Phase 2
// assigns each worker one shard — the hashes whose low bits select it —
// and replays every block in order into that shard's private map, so
// bucket contents end up in row order without any cross-worker merge.
// The pattern list is the sorted union of the per-block pattern sets;
// sortPatterns is a total order over distinct masks, so the result is
// independent of discovery order and identical to the sequential build's.
func (s *runner) buildSigMapParallel(crel *model.CodedRelation, order []int) *sigMap {
	rows := crel.Rows()
	nshards := 1
	for nshards < s.workers {
		nshards <<= 1
	}
	m := &sigMap{shards: make([]map[uint64][]int, nshards), mask: uint64(nshards - 1)}
	partial, minSig := s.opt.Partial, s.opt.MinPartialSig
	if minSig < 1 {
		minSig = 1
	}
	nBlocks := (rows + sigBuildBlockRows - 1) / sigBuildBlockRows
	type buildBlock struct {
		items []sigItem
		masks []uint64 // distinct patterns of the block, first-seen order
	}
	blocks := make([]buildBlock, nBlocks)
	ctx := s.ctx
	s.parallelFor(nBlocks, func(b int) {
		start := b * sigBuildBlockRows
		end := min(start+sigBuildBlockRows, rows)
		bb := buildBlock{}
		if !partial {
			bb.items = make([]sigItem, 0, end-start)
		}
		seen := map[uint64]bool{}
		add := func(ti int, row []model.ValueID, mask uint64) {
			if !seen[mask] {
				seen[mask] = true
				bb.masks = append(bb.masks, mask)
			}
			bb.items = append(bb.items, sigItem{h: sigHash(row, mask, order), ti: int32(ti)})
		}
		for ti := start; ti < end; ti++ {
			if (ti-start)%cancelPollInterval == 0 && ctx.Err() != nil {
				// A canceled build may stay partial: the scan that
				// consumes it polls before its first row and bails.
				break
			}
			row, maxMask := crel.Row(ti), crel.Masks[ti]
			if !partial {
				add(ti, row, maxMask)
				continue
			}
			for sub := maxMask; ; sub = (sub - 1) & maxMask {
				if bits.OnesCount64(sub) >= minSig {
					add(ti, row, sub)
				}
				if sub == 0 {
					break
				}
			}
		}
		blocks[b] = bb
	})
	s.parallelFor(nshards, func(sh int) {
		want := uint64(sh)
		bySig := make(map[uint64][]int, rows/nshards+1)
		for _, bb := range blocks {
			if ctx.Err() != nil {
				break
			}
			for _, it := range bb.items {
				if it.h&m.mask == want {
					bySig[it.h] = append(bySig[it.h], int(it.ti))
				}
			}
		}
		m.shards[sh] = bySig
	})
	if s.seenMasks == nil {
		s.seenMasks = map[uint64]bool{}
	} else {
		clear(s.seenMasks)
	}
	m.patterns = s.patScratch[:0]
	for b, bb := range blocks {
		if b%cancelPollInterval == 0 && s.canceled() {
			break
		}
		for _, mask := range bb.masks {
			if !s.seenMasks[mask] {
				s.seenMasks[mask] = true
				m.patterns = append(m.patterns, mask)
			}
		}
	}
	sortPatterns(m.patterns)
	s.patScratch = m.patterns
	return m
}

// scanBlock is one produced unit of a parallel pass: for each row of the
// block, the signature-map buckets its eligible patterns hit, flattened in
// probe order. The bucket slices are the sigMap's own (read-only).
type scanBlock struct {
	nbkts   []int32 // per row of the block: how many bucket refs follow
	buckets [][]int
}

// passParallel is the produce/commit form of pass's scan loop. Workers
// probe the (immutable) signature map for each row's eligible patterns;
// the committer replays the sequential scan loop — map-side saturation,
// tryPair, the scan-side saturation early-out — over the produced buckets
// in scan order. Empty buckets are skipped at produce time, which the
// sequential loop treats as no-ops, so the attempt sequence is unchanged.
func (s *runner) passParallel(ri int, mapLeft bool, scanCode *model.CodedRelation, sm *sigMap, order []int) {
	mapSaturated, scanSaturated := s.leftSaturated, s.rightSaturated
	if !mapLeft {
		mapSaturated, scanSaturated = s.rightSaturated, s.leftSaturated
	}
	mkPair := func(mapIdx, scanIdx int) match.Pair {
		if mapLeft {
			return match.Pair{L: match.Ref{Rel: ri, Idx: mapIdx}, R: match.Ref{Rel: ri, Idx: scanIdx}}
		}
		return match.Pair{L: match.Ref{Rel: ri, Idx: scanIdx}, R: match.Ref{Rel: ri, Idx: mapIdx}}
	}
	rows := scanCode.Rows()
	nBlocks := (rows + scanBlockRows - 1) / scanBlockRows
	ctx := s.ctx
	produce := func(_ struct{}, b int) scanBlock {
		start := b * scanBlockRows
		end := min(start+scanBlockRows, rows)
		bb := scanBlock{nbkts: make([]int32, end-start)}
		for si := start; si < end; si++ {
			if (si-start)%cancelPollInterval == 0 && ctx.Err() != nil {
				// Unproduced rows keep zero bucket counts; the
				// committer bails on its own poll before using them.
				break
			}
			row, ground := scanCode.Row(si), scanCode.Masks[si]
			for _, pm := range sm.patterns {
				if pm&^ground != 0 {
					continue
				}
				if bkt := sm.bucket(sigHash(row, pm, order)); len(bkt) > 0 {
					bb.buckets = append(bb.buckets, bkt)
					bb.nbkts[si-start]++
				}
			}
		}
		return bb
	}
	commit := func(b int, bb scanBlock) {
		s.scanBlocks++
		base := b * scanBlockRows
		k := 0
	scan:
		for i, n := range bb.nbkts {
			if i%cancelPollInterval == 0 && s.canceled() {
				return
			}
			si := base + i
			rowBkts := bb.buckets[k : k+int(n)]
			k += int(n)
			for _, bkt := range rowBkts {
				for _, mi := range bkt {
					if mapSaturated(match.Ref{Rel: ri, Idx: mi}) {
						continue
					}
					if !s.tryPair(mkPair(mi, si)) {
						continue
					}
					if scanSaturated(match.Ref{Rel: ri, Idx: si}) {
						continue scan // Alg. 4 "goto next scanned tuple"
					}
				}
			}
		}
	}
	runBlocks(s.workers, nBlocks, func() struct{} { return struct{}{} }, produce, commit)
}

// rescueTask is one produced unit of a parallel rescue round (one mask):
// the hash index over the mask-eligible unmatched left rows, sorted by
// hash (stable, so equal-hash entries stay in leftUn order), plus the
// hash probes of the mask-eligible unmatched right rows in rightUn order.
type rescueTask struct {
	entries []sigEntry
	probes  []sigEntry // li holds the right row index here
}

// rescueParallel fans the per-mask hash-join rounds of rescue out over
// workers. Unlike the sequential round, workers do not filter saturated
// left rows out of the index — saturation moves while earlier masks
// commit — so the committer re-checks it at probe time, exactly where the
// sequential probe loop checks it; extra (saturated) entries are skipped
// there and change nothing else. The attempted-pair dedup map lives on the
// committer and is shared across masks in mask order, as sequentially.
func (s *runner) rescueParallel(ri int, masks []uint64, leftUn, rightUn []int, order []int, attempted map[match.Pair]bool) {
	lcode, rcode := s.env.LCode[ri], s.env.RCode[ri]
	ctx := s.ctx
	produce := func(_ struct{}, mi int) rescueTask {
		m := masks[mi]
		var t rescueTask
		for n, li := range leftUn {
			if n%cancelPollInterval == 0 && ctx.Err() != nil {
				return t
			}
			if lcode.Masks[li]&m == m {
				t.entries = append(t.entries, sigEntry{h: sigHash(lcode.Row(li), m, order), li: int32(li)})
			}
		}
		sort.SliceStable(t.entries, func(i, j int) bool { return t.entries[i].h < t.entries[j].h })
		for n, ci := range rightUn {
			if n%cancelPollInterval == 0 && ctx.Err() != nil {
				return t
			}
			if rcode.Masks[ci]&m == m {
				t.probes = append(t.probes, sigEntry{h: sigHash(rcode.Row(ci), m, order), li: int32(ci)})
			}
		}
		return t
	}
	commit := func(_ int, t rescueTask) {
		s.rescueTasks++
		for n, pr := range t.probes {
			if n%cancelPollInterval == 0 && s.canceled() {
				return
			}
			ci := int(pr.li)
			rref := match.Ref{Rel: ri, Idx: ci}
			if s.rightSaturated(rref) {
				continue
			}
			h := pr.h
			lo := sort.Search(len(t.entries), func(i int) bool { return t.entries[i].h >= h })
			for j := lo; j < len(t.entries) && t.entries[j].h == h; j++ {
				li := int(t.entries[j].li)
				lref := match.Ref{Rel: ri, Idx: li}
				if s.leftSaturated(lref) {
					continue
				}
				p := match.Pair{L: lref, R: rref}
				if attempted[p] {
					continue
				}
				attempted[p] = true
				if s.tryPair(p) && s.rightSaturated(rref) {
					break
				}
			}
		}
	}
	runBlocks(s.workers, len(masks), func() struct{} { return struct{}{} }, produce, commit)
}

// candBlock is one produced unit of a parallel completion: for each left
// row of the block, its CompatibleTuples candidates, flattened.
type candBlock struct {
	ncands []int32 // per left row of the block: how many candidates follow
	cands  []int32
}

// completeParallel fans completion's candidate generation out over
// leftIdxs blocks. Candidate lists are fully static — the coded index is
// built once from a snapshot of the unsaturated right rows, and pairwise
// compatibility does not depend on the match state — so workers compute
// them with private Probers and the committer replays the sequential
// confirmation loop (live right-saturation filter, tryPair, left-saturation
// early-out) in left order.
func (s *runner) completeParallel(ri int, leftIdxs []int, ix *compat.CodedIndex) {
	lcode := s.env.LCode[ri]
	nBlocks := (len(leftIdxs) + scanBlockRows - 1) / scanBlockRows
	ctx := s.ctx
	produce := func(p *compat.Prober, b int) candBlock {
		start := b * scanBlockRows
		end := min(start+scanBlockRows, len(leftIdxs))
		bb := candBlock{ncands: make([]int32, end-start)}
		for n := start; n < end; n++ {
			if (n-start)%cancelPollInterval == 0 && ctx.Err() != nil {
				break
			}
			li := leftIdxs[n]
			cs := p.Candidates(lcode.Row(li), lcode.Masks[li])
			bb.ncands[n-start] = int32(len(cs))
			for _, ci := range cs {
				bb.cands = append(bb.cands, int32(ci))
			}
		}
		return bb
	}
	commit := func(b int, bb candBlock) {
		s.completeBlocks++
		base := b * scanBlockRows
		k := 0
		for i, n := range bb.ncands {
			if i%cancelPollInterval == 0 && s.canceled() {
				return
			}
			li := leftIdxs[base+i]
			lref := match.Ref{Rel: ri, Idx: li}
			row := bb.cands[k : k+int(n)]
			k += int(n)
			for _, ci := range row {
				if s.rightSaturated(match.Ref{Rel: ri, Idx: int(ci)}) {
					continue
				}
				if !s.tryPair(match.Pair{L: lref, R: match.Ref{Rel: ri, Idx: int(ci)}}) {
					continue
				}
				if s.leftSaturated(lref) {
					break // Alg. 3 "goto next left tuple"
				}
			}
		}
	}
	runBlocks(s.workers, nBlocks, ix.NewProber, produce, commit)
}

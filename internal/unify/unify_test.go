package unify

import (
	"math/rand"
	"testing"

	"instcmp/internal/model"
)

func TestMergeNullsAndConstants(t *testing.T) {
	u := New()
	n1, n2 := model.Null("N1"), model.Null("N2")
	u.AddNull(n1, Left)
	u.AddNull(n2, Right)
	c := model.Const("c")

	if !u.Merge(n1, c) {
		t.Fatal("null-const merge refused")
	}
	if got := u.Representative(n1); got != c {
		t.Errorf("Representative(N1) = %v, want c", got)
	}
	if !u.Merge(n1, n2) {
		t.Fatal("null-null merge refused")
	}
	if got := u.Representative(n2); got != c {
		t.Errorf("Representative(N2) = %v, want c", got)
	}
	if !u.SameClass(n1, n2) || !u.SameClass(n2, c) {
		t.Error("classes not connected")
	}
}

func TestConstantConflict(t *testing.T) {
	u := New()
	n := model.Null("N")
	u.AddNull(n, Left)
	if !u.Merge(n, model.Const("a")) {
		t.Fatal("first binding refused")
	}
	if u.Merge(n, model.Const("b")) {
		t.Fatal("conflicting binding accepted")
	}
	// The refused merge must leave state intact.
	if got := u.Representative(n); got != model.Const("a") {
		t.Errorf("after refused merge Representative = %v, want a", got)
	}
	if u.Merge(model.Const("a"), model.Const("b")) {
		t.Error("two distinct constants merged")
	}
	if !u.Merge(model.Const("a"), model.Const("a")) {
		t.Error("identical constants must trivially merge")
	}
}

func TestSideCounts(t *testing.T) {
	u := New()
	l1, l2, l3 := model.Null("L1"), model.Null("L2"), model.Null("L3")
	r1 := model.Null("R1")
	for _, v := range []model.Value{l1, l2, l3} {
		u.AddNull(v, Left)
	}
	u.AddNull(r1, Right)

	if got := u.SideCount(l1, Left); got != 1 {
		t.Errorf("singleton ⊓ = %d, want 1", got)
	}
	u.Merge(l1, r1)
	u.Merge(l2, r1)
	if got := u.SideCount(l1, Left); got != 2 {
		t.Errorf("⊓(L1) = %d, want 2 (L1, L2 collapse)", got)
	}
	if got := u.SideCount(r1, Right); got != 1 {
		t.Errorf("⊓(R1) = %d, want 1", got)
	}
	if got := u.SideCount(model.Const("c"), Left); got != 1 {
		t.Errorf("⊓(const) = %d, want 1", got)
	}
	u.Merge(l3, l1)
	if got := u.SideCount(l2, Left); got != 3 {
		t.Errorf("⊓ after third merge = %d, want 3", got)
	}
}

func TestUndoRestoresExactly(t *testing.T) {
	u := New()
	vals := make([]model.Value, 10)
	for i := range vals {
		vals[i] = model.Nullf("N%d", i)
		side := Left
		if i%2 == 1 {
			side = Right
		}
		u.AddNull(vals[i], side)
	}
	mark := u.Mark()
	u.Merge(vals[0], vals[1])
	u.Merge(vals[2], vals[3])
	u.Merge(vals[0], vals[3])
	u.Merge(vals[4], model.Const("k"))
	if !u.SameClass(vals[1], vals[2]) {
		t.Fatal("merges did not connect")
	}
	u.Undo(mark)
	for i := range vals {
		for j := range vals {
			if i != j && u.SameClass(vals[i], vals[j]) {
				t.Fatalf("undo left %d and %d connected", i, j)
			}
		}
		if u.SideCount(vals[i], Left)+u.SideCount(vals[i], Right) != 1 {
			t.Fatalf("undo left nonunit count at %d", i)
		}
	}
	if _, has := u.ClassConst(vals[4]); has {
		t.Error("undo left constant binding")
	}
}

func TestUndoRandomized(t *testing.T) {
	// Property: a sequence of random merges followed by Undo restores all
	// observable state (class membership, representatives, counts).
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		u := New()
		var vs []model.Value
		for i := 0; i < 20; i++ {
			v := model.Nullf("T%d_%d", trial, i)
			side := Left
			if rng.Intn(2) == 1 {
				side = Right
			}
			u.AddNull(v, side)
			vs = append(vs, v)
		}
		// Baseline merges that must survive the undo.
		u.Merge(vs[0], vs[1])
		u.Merge(vs[2], model.Const("base"))
		type obs struct {
			rep    model.Value
			nl, nr int
		}
		snap := make([]obs, len(vs))
		for i, v := range vs {
			snap[i] = obs{u.Representative(v), u.SideCount(v, Left), u.SideCount(v, Right)}
		}
		mark := u.Mark()
		for k := 0; k < 30; k++ {
			a, b := vs[rng.Intn(len(vs))], vs[rng.Intn(len(vs))]
			u.Merge(a, b)
		}
		u.Undo(mark)
		for i, v := range vs {
			got := obs{u.Representative(v), u.SideCount(v, Left), u.SideCount(v, Right)}
			if got != snap[i] {
				t.Fatalf("trial %d: state of %v changed: %+v -> %+v", trial, v, snap[i], got)
			}
		}
	}
}

func TestAddNullValidation(t *testing.T) {
	u := New()
	defer func() {
		if recover() == nil {
			t.Error("AddNull with constant should panic")
		}
	}()
	u.AddNull(model.Const("x"), Left)
}

func TestAddNullBothSidesPanics(t *testing.T) {
	u := New()
	n := model.Null("N")
	u.AddNull(n, Left)
	u.AddNull(n, Left) // idempotent re-registration is fine
	defer func() {
		if recover() == nil {
			t.Error("registering a null on both sides should panic")
		}
	}()
	u.AddNull(n, Right)
}

func TestUnregisteredNullPanics(t *testing.T) {
	u := New()
	defer func() {
		if recover() == nil {
			t.Error("using an unregistered null should panic")
		}
	}()
	u.Merge(model.Null("ghost"), model.Const("c"))
}

func TestRepresentativeOfConstIsItself(t *testing.T) {
	u := New()
	c := model.Const("c")
	if got := u.Representative(c); got != c {
		t.Errorf("Representative(const) = %v", got)
	}
	n := model.Null("N")
	u.AddNull(n, Left)
	if got := u.Representative(n); got != n {
		t.Errorf("unmerged null should represent itself, got %v", got)
	}
}

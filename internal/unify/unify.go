// Package unify implements the value-unification machinery underlying
// instance matches: a union-find structure over constants and labeled nulls
// that detects constant conflicts and supports cheap rollback.
//
// A complete instance match M = (h_l, h_r, m) requires h_l(t) = h_r(t') for
// every matched pair. Growing such a match means repeatedly equating the two
// values found in corresponding cells. The Unifier maintains the resulting
// equivalence classes; a class is inconsistent (and the merge is refused)
// when it would contain two distinct constants. From the final classes both
// value mappings can be read off: every value maps to its class
// representative — the class constant if there is one, otherwise a canonical
// null — and the per-side class sizes yield the paper's non-injectivity
// measure ⊓.
//
// The union-find runs entirely on dense model.ValueID codes: parents, class
// sizes, per-side null counts, and class constants are flat int32 arrays
// indexed by ID, and the undo trail is a slice of plain integers. MergeID /
// UndoTo therefore never touch a map or allocate per merge (the trail slice
// amortizes), which is what the comparison algorithms hammer on. The
// Value-based methods are thin wrappers that intern on demand; they exist
// for callers outside the hot path (tests, explanation assembly).
//
// The Unifier deliberately does not use path compression: all mutations go
// through an undo trail, so tentative merges made while exploring a match
// (exact search backtracking, greedy compatibility probes) can be rolled
// back exactly with Undo.
package unify

import (
	"fmt"

	"instcmp/internal/model"
)

// Side distinguishes the two instances being compared. Labeled nulls belong
// to exactly one side (the comparison precondition Vars(I) ∩ Vars(I') = ∅);
// the per-side class sizes feed the scoring function's ⊓ measure.
type Side int

// The two sides of a comparison.
const (
	Left Side = iota
	Right
)

func (s Side) String() string {
	if s == Left {
		return "left"
	}
	return "right"
}

// side-array states: 0 = unregistered null (using it panics, like the old
// node-based implementation), 1/2 = null registered Left/Right, 3 = constant.
const (
	sideNone  uint8 = 0
	sideLeft  uint8 = 1
	sideRight uint8 = 2
	sideConst uint8 = 3
)

// trailEntry records one merge for exact rollback: the absorbed child root,
// the surviving root, and the root's pre-merge aggregates.
type trailEntry struct {
	child, root int32
	prevCls     model.ValueID
	prevNl      int32
	prevNr      int32
	prevSize    int32
}

// Unifier is a union-find over interned values with constant-conflict
// detection and an undo trail. The zero value is not usable; call New or
// NewInterned.
type Unifier struct {
	in *model.Interner

	// All arrays are indexed by ValueID and grown lazily to the interner's
	// size. cls holds the class constant's ID at roots (NoValueID if the
	// class has none); nl/nr count left/right nulls in the class at roots.
	parent []int32
	size   []int32
	nl     []int32
	nr     []int32
	cls    []model.ValueID
	side   []uint8

	trail []trailEntry
}

// New returns an empty unifier with its own private interner.
func New() *Unifier { return NewInterned(model.NewInterner()) }

// NewInterned returns an empty unifier over a shared interner, so that IDs
// handed to MergeID et al. agree with IDs used elsewhere in the comparison.
func NewInterned(in *model.Interner) *Unifier {
	return &Unifier{in: in}
}

// Interner returns the unifier's interner.
func (u *Unifier) Interner() *model.Interner { return u.in }

// ensure grows the per-ID arrays to cover every interned value. New slots
// start as singleton roots; constants carry themselves as class constant.
func (u *Unifier) ensure() {
	n := u.in.Len()
	for i := len(u.parent); i < n; i++ {
		u.parent = append(u.parent, int32(i))
		u.size = append(u.size, 1)
		u.nl = append(u.nl, 0)
		u.nr = append(u.nr, 0)
		if u.in.IsNull(model.ValueID(i)) {
			u.cls = append(u.cls, model.NoValueID)
			u.side = append(u.side, sideNone)
		} else {
			u.cls = append(u.cls, model.ValueID(i))
			u.side = append(u.side, sideConst)
		}
	}
}

// Sync eagerly grows the per-ID arrays to cover every interned value, so
// that subsequent read-only queries (SameClassID, SideCountID, ...) perform
// no lazy growth. Parallel scoring fans concurrent readers out over one
// unifier; after a Sync — and with no interning or merging in between —
// those reads are write-free and race-free.
func (u *Unifier) Sync() { u.ensure() }

// AddNull registers a labeled null as belonging to the given side. It is
// idempotent; registering the same null with two different sides panics
// because it violates the disjoint-nulls precondition.
func (u *Unifier) AddNull(v model.Value, side Side) {
	if v.IsConst() {
		panic("unify: AddNull called with a constant")
	}
	u.AddNullID(u.in.Intern(v), side)
}

// AddNullID is AddNull for an already-interned null. Nulls must be
// registered before they participate in any merge.
func (u *Unifier) AddNullID(id model.ValueID, side Side) {
	u.ensure()
	want := sideLeft
	if side == Right {
		want = sideRight
	}
	switch u.side[id] {
	case sideNone:
		u.side[id] = want
		if side == Left {
			u.nl[id] = 1
		} else {
			u.nr[id] = 1
		}
	case want:
		// idempotent re-registration
	case sideConst:
		panic("unify: AddNullID called with a constant")
	default:
		panic(fmt.Sprintf("unify: null %v registered on both sides", u.in.ValueOf(id)))
	}
}

// findID returns the root of id's class. Unregistered nulls panic, matching
// the precondition that AddNull precedes use.
func (u *Unifier) findID(id model.ValueID) int32 {
	i := int32(id)
	if u.side[i] == sideNone {
		panic(fmt.Sprintf("unify: null %v used before AddNull", u.in.ValueOf(id)))
	}
	for u.parent[i] != i {
		i = u.parent[i]
	}
	return i
}

// MergeID equates two interned values. It returns false — leaving the
// unifier unchanged — when the merge would put two distinct constants in one
// class. The merge path is map-free and allocation-free (modulo trail
// growth).
func (u *Unifier) MergeID(a, b model.ValueID) bool {
	u.ensure()
	ra, rb := u.findID(a), u.findID(b)
	if ra == rb {
		return true
	}
	ca, cb := u.cls[ra], u.cls[rb]
	if ca >= 0 && cb >= 0 && ca != cb {
		return false
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.trail = append(u.trail, trailEntry{
		child:    rb,
		root:     ra,
		prevCls:  u.cls[ra],
		prevNl:   u.nl[ra],
		prevNr:   u.nr[ra],
		prevSize: u.size[ra],
	})
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
	u.nl[ra] += u.nl[rb]
	u.nr[ra] += u.nr[rb]
	if u.cls[ra] < 0 {
		u.cls[ra] = u.cls[rb]
	}
	return true
}

// Merge equates two values, interning them on demand.
func (u *Unifier) Merge(a, b model.Value) bool {
	return u.MergeID(u.in.Intern(a), u.in.Intern(b))
}

// Clone returns an independent copy of the unifier sharing the interner.
// The clone merges and undoes without affecting the original, which is what
// lets parallel searches explore different matches over the same interned
// comparison; the shared interner must not be mutated while clones are live
// (comparisons never intern after coding). Clone never mutates u, so
// multiple goroutines may clone a quiescent unifier concurrently; the
// clone grows its own per-ID arrays lazily like any other unifier.
func (u *Unifier) Clone() *Unifier {
	return &Unifier{
		in:     u.in,
		parent: append([]int32(nil), u.parent...),
		size:   append([]int32(nil), u.size...),
		nl:     append([]int32(nil), u.nl...),
		nr:     append([]int32(nil), u.nr...),
		cls:    append([]model.ValueID(nil), u.cls...),
		side:   append([]uint8(nil), u.side...),
		trail:  append([]trailEntry(nil), u.trail...),
	}
}

// Mark returns a checkpoint for Undo.
func (u *Unifier) Mark() int { return len(u.trail) }

// Undo rolls back every merge performed after the given checkpoint.
func (u *Unifier) Undo(mark int) {
	for len(u.trail) > mark {
		e := u.trail[len(u.trail)-1]
		u.trail = u.trail[:len(u.trail)-1]
		u.parent[e.child] = e.child
		u.cls[e.root] = e.prevCls
		u.nl[e.root] = e.prevNl
		u.nr[e.root] = e.prevNr
		u.size[e.root] = e.prevSize
	}
}

// SameClassID reports whether two interned values are currently equated.
func (u *Unifier) SameClassID(a, b model.ValueID) bool {
	if a == b {
		return true
	}
	if !u.in.IsNull(a) && !u.in.IsNull(b) {
		return false
	}
	u.ensure()
	return u.findID(a) == u.findID(b)
}

// SameClass reports whether two values are currently equated. Values that
// were never touched are singletons (two distinct untouched values are in
// the same class only if they are the same value).
func (u *Unifier) SameClass(a, b model.Value) bool {
	if a == b {
		return true
	}
	if a.IsConst() && b.IsConst() {
		return false
	}
	return u.SameClassID(u.in.Intern(a), u.in.Intern(b))
}

// ClassConstID returns the ID of the constant of id's class, if any.
func (u *Unifier) ClassConstID(id model.ValueID) (model.ValueID, bool) {
	u.ensure()
	c := u.cls[u.findID(id)]
	return c, c >= 0
}

// ClassConst returns the constant of v's class, if any.
func (u *Unifier) ClassConst(v model.Value) (model.Value, bool) {
	id, ok := u.ClassConstID(u.in.Intern(v))
	if !ok {
		return model.Value{}, false
	}
	return u.in.ValueOf(id), true
}

// RepresentativeID returns the ID every member of id's class maps to under
// the value mappings induced by the unifier: the class constant when the
// class contains one, otherwise the canonical null of the class (the root).
func (u *Unifier) RepresentativeID(id model.ValueID) model.ValueID {
	u.ensure()
	r := u.findID(id)
	if c := u.cls[r]; c >= 0 {
		return c
	}
	return model.ValueID(r)
}

// Representative returns the value every member of v's class maps to under
// the value mappings induced by the unifier: the class constant when the
// class contains one, otherwise the canonical null of the class. Constants
// always map to themselves.
func (u *Unifier) Representative(v model.Value) model.Value {
	return u.in.ValueOf(u.RepresentativeID(u.in.Intern(v)))
}

// SideCountID returns ⊓ for an interned value: 1 for constants, and for a
// null the number of same-side nulls mapped to the same representative
// (Eq. 6 of the paper).
func (u *Unifier) SideCountID(id model.ValueID, side Side) int {
	if !u.in.IsNull(id) {
		return 1
	}
	u.ensure()
	r := u.findID(id)
	if side == Left {
		return int(u.nl[r])
	}
	return int(u.nr[r])
}

// SideCount returns ⊓ for v: 1 for constants, and for a null the number of
// same-side nulls mapped to the same representative (Eq. 6 of the paper).
func (u *Unifier) SideCount(v model.Value, side Side) int {
	if v.IsConst() {
		return 1
	}
	return u.SideCountID(u.in.Intern(v), side)
}

// IsNullID reports whether the coded value is a labeled null.
func (u *Unifier) IsNullID(id model.ValueID) bool { return u.in.IsNull(id) }

// Raw returns the decoded constant text or null name of an interned value.
func (u *Unifier) Raw(id model.ValueID) string { return u.in.ValueOf(id).Raw() }

// Registered reports whether a null has been registered.
func (u *Unifier) Registered(v model.Value) bool {
	id, ok := u.in.Lookup(v)
	if !ok {
		return false
	}
	if v.IsConst() {
		return true
	}
	u.ensure()
	return u.side[id] != sideNone
}

// Package unify implements the value-unification machinery underlying
// instance matches: a union-find structure over constants and labeled nulls
// that detects constant conflicts and supports cheap rollback.
//
// A complete instance match M = (h_l, h_r, m) requires h_l(t) = h_r(t') for
// every matched pair. Growing such a match means repeatedly equating the two
// values found in corresponding cells. The Unifier maintains the resulting
// equivalence classes; a class is inconsistent (and the merge is refused)
// when it would contain two distinct constants. From the final classes both
// value mappings can be read off: every value maps to its class
// representative — the class constant if there is one, otherwise a canonical
// null — and the per-side class sizes yield the paper's non-injectivity
// measure ⊓.
//
// The Unifier deliberately does not use path compression: all mutations go
// through an undo trail, so tentative merges made while exploring a match
// (exact search backtracking, greedy compatibility probes) can be rolled
// back exactly with Undo.
package unify

import (
	"fmt"

	"instcmp/internal/model"
)

// Side distinguishes the two instances being compared. Labeled nulls belong
// to exactly one side (the comparison precondition Vars(I) ∩ Vars(I') = ∅);
// the per-side class sizes feed the scoring function's ⊓ measure.
type Side int

// The two sides of a comparison.
const (
	Left Side = iota
	Right
)

func (s Side) String() string {
	if s == Left {
		return "left"
	}
	return "right"
}

type node struct {
	parent *node
	size   int
	val    model.Value
	side   Side // registration side; meaningful for null nodes only

	// The fields below are only meaningful at class roots.
	hasConst bool
	constVal model.Value
	nl, nr   int // number of left/right nulls in the class
}

type trailEntry struct {
	child        *node // became non-root; undo resets child.parent = child
	root         *node // absorbed child; undo restores the fields below
	prevHasConst bool
	prevConst    model.Value
	prevNl       int
	prevNr       int
	prevSize     int
}

// Unifier is a union-find over values with constant-conflict detection and
// an undo trail. The zero value is not usable; call New.
type Unifier struct {
	nodes map[model.Value]*node
	trail []trailEntry
}

// New returns an empty unifier.
func New() *Unifier {
	return &Unifier{nodes: make(map[model.Value]*node)}
}

// AddNull registers a labeled null as belonging to the given side. It is
// idempotent; registering the same null with two different sides panics
// because it violates the disjoint-nulls precondition.
func (u *Unifier) AddNull(v model.Value, side Side) {
	if v.IsConst() {
		panic("unify: AddNull called with a constant")
	}
	if n, ok := u.nodes[v]; ok {
		if n.side != side {
			panic(fmt.Sprintf("unify: null %v registered on both sides", v))
		}
		return
	}
	n := &node{size: 1, val: v, side: side}
	n.parent = n
	if side == Left {
		n.nl = 1
	} else {
		n.nr = 1
	}
	u.nodes[v] = n
}

// get returns the node for v, creating constant nodes lazily. Nulls must
// have been registered with AddNull first.
func (u *Unifier) get(v model.Value) *node {
	if n, ok := u.nodes[v]; ok {
		return n
	}
	if v.IsNull() {
		panic(fmt.Sprintf("unify: null %v used before AddNull", v))
	}
	n := &node{size: 1, val: v, hasConst: true, constVal: v}
	n.parent = n
	u.nodes[v] = n
	return n
}

func (u *Unifier) find(v model.Value) *node {
	n := u.get(v)
	for n.parent != n {
		n = n.parent
	}
	return n
}

// Merge equates two values. It returns false — leaving the unifier
// unchanged — when the merge would put two distinct constants in one class.
func (u *Unifier) Merge(a, b model.Value) bool {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return true
	}
	if ra.hasConst && rb.hasConst && ra.constVal != rb.constVal {
		return false
	}
	if ra.size < rb.size {
		ra, rb = rb, ra
	}
	u.trail = append(u.trail, trailEntry{
		child:        rb,
		root:         ra,
		prevHasConst: ra.hasConst,
		prevConst:    ra.constVal,
		prevNl:       ra.nl,
		prevNr:       ra.nr,
		prevSize:     ra.size,
	})
	rb.parent = ra
	ra.size += rb.size
	ra.nl += rb.nl
	ra.nr += rb.nr
	if !ra.hasConst && rb.hasConst {
		ra.hasConst = true
		ra.constVal = rb.constVal
	}
	return true
}

// Mark returns a checkpoint for Undo.
func (u *Unifier) Mark() int { return len(u.trail) }

// Undo rolls back every merge performed after the given checkpoint.
func (u *Unifier) Undo(mark int) {
	for len(u.trail) > mark {
		e := u.trail[len(u.trail)-1]
		u.trail = u.trail[:len(u.trail)-1]
		e.child.parent = e.child
		e.root.hasConst = e.prevHasConst
		e.root.constVal = e.prevConst
		e.root.nl = e.prevNl
		e.root.nr = e.prevNr
		e.root.size = e.prevSize
	}
}

// SameClass reports whether two values are currently equated. Values that
// were never touched are singletons (two distinct untouched values are in
// the same class only if they are the same value).
func (u *Unifier) SameClass(a, b model.Value) bool {
	if a == b {
		return true
	}
	if a.IsConst() && b.IsConst() {
		return false
	}
	return u.find(a) == u.find(b)
}

// ClassConst returns the constant of v's class, if any.
func (u *Unifier) ClassConst(v model.Value) (model.Value, bool) {
	r := u.find(v)
	return r.constVal, r.hasConst
}

// Representative returns the value every member of v's class maps to under
// the value mappings induced by the unifier: the class constant when the
// class contains one, otherwise the canonical null of the class (the root's
// value). Constants always map to themselves.
func (u *Unifier) Representative(v model.Value) model.Value {
	r := u.find(v)
	if r.hasConst {
		return r.constVal
	}
	return r.val
}

// SideCount returns ⊓ for v: 1 for constants, and for a null the number of
// same-side nulls mapped to the same representative (Eq. 6 of the paper).
func (u *Unifier) SideCount(v model.Value, side Side) int {
	if v.IsConst() {
		return 1
	}
	r := u.find(v)
	if side == Left {
		return r.nl
	}
	return r.nr
}

// Registered reports whether a null has been registered.
func (u *Unifier) Registered(v model.Value) bool {
	_, ok := u.nodes[v]
	return ok
}

package unify

import (
	"testing"

	"instcmp/internal/model"
)

func TestCloneIndependence(t *testing.T) {
	u := New()
	n1, n2, n3 := model.Null("N1"), model.Null("N2"), model.Null("N3")
	u.AddNull(n1, Left)
	u.AddNull(n2, Left)
	u.AddNull(n3, Right)
	if !u.Merge(n1, model.Const("a")) {
		t.Fatal("merge refused")
	}

	cl := u.Clone()
	if got, _ := cl.ClassConst(n1); got != model.Const("a") {
		t.Fatalf("clone lost class constant: %v", got)
	}

	// Diverge: the clone merges n2 into the "a" class, the original merges
	// n2 with a different constant. Neither sees the other's merge.
	if !cl.Merge(n2, n1) {
		t.Fatal("clone merge refused")
	}
	if !u.Merge(n2, model.Const("b")) {
		t.Fatal("original merge refused (clone state leaked)")
	}
	if c, _ := cl.ClassConst(n2); c != model.Const("a") {
		t.Errorf("clone n2 class constant = %v, want a", c)
	}
	if c, _ := u.ClassConst(n2); c != model.Const("b") {
		t.Errorf("original n2 class constant = %v, want b", c)
	}

	// Undo past the clone point on the clone; the original's trail is its
	// own copy and survives.
	cl.Undo(0)
	if _, ok := cl.ClassConst(n1); ok {
		t.Error("clone undo(0) left a class constant")
	}
	if c, _ := u.ClassConst(n1); c != model.Const("a") {
		t.Errorf("original damaged by clone undo: %v", c)
	}

	// A clone taken before arrays were grown still works: interning new
	// values after cloning grows each copy independently.
	n4 := model.Null("N4")
	cl2 := u.Clone()
	cl2.AddNull(n4, Right)
	if !cl2.Merge(n4, n3) {
		t.Fatal("clone merge of late-interned null refused")
	}
	u.AddNull(n4, Right)
	if u.SameClass(n4, n3) {
		t.Error("original saw the clone's merge")
	}
}

package csvio

import (
	"bytes"
	"strings"
	"testing"

	"instcmp/internal/model"
)

// FuzzReadRelation: arbitrary byte input must either parse into a
// well-formed relation or return an error — never panic, never produce a
// relation whose tuples disagree with the header arity.
func FuzzReadRelation(f *testing.F) {
	f.Add([]byte("A,B\nx,y\n"))
	f.Add([]byte("A,B\n_:N1,\n"))
	f.Add([]byte("A\n\"quoted,comma\"\n"))
	f.Add([]byte(""))
	f.Add([]byte("A,B\nonly-one\n"))
	f.Add([]byte("A,A\nx,y\n")) // duplicate attribute names
	f.Fuzz(func(t *testing.T, data []byte) {
		in := model.NewInstance()
		err := ReadRelation(in, bytes.NewReader(data), ReadOptions{RelationName: "F", AnonymousNulls: true})
		if err != nil {
			return
		}
		rel := in.Relation("F")
		if rel == nil {
			t.Fatal("no error but relation missing")
		}
		attrs := map[string]bool{}
		for _, a := range rel.Attrs {
			if attrs[a] {
				t.Fatalf("duplicate attribute %q survived parsing", a)
			}
			attrs[a] = true
		}
		for _, tu := range rel.Tuples {
			if len(tu.Values) != rel.Arity() {
				t.Fatalf("tuple arity %d != relation arity %d", len(tu.Values), rel.Arity())
			}
		}
		// Successful parses must round-trip (write, re-read, same
		// values) as long as no cell text itself starts with the null
		// marker while being a constant — which AnonymousNulls
		// parsing cannot produce except via literal input; skip those.
		for _, tu := range rel.Tuples {
			for _, v := range tu.Values {
				if v.IsConst() && strings.HasPrefix(v.Raw(), model.NullPrefix) {
					return
				}
			}
		}
		var buf bytes.Buffer
		if err := WriteRelation(&buf, rel); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back := model.NewInstance()
		if err := ReadRelation(back, &buf, ReadOptions{RelationName: "F"}); err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
		brel := back.Relation("F")
		if brel.Cardinality() != rel.Cardinality() {
			t.Fatalf("round trip changed cardinality %d -> %d", rel.Cardinality(), brel.Cardinality())
		}
		for i := range rel.Tuples {
			if !rel.Tuples[i].EqualValues(brel.Tuples[i]) {
				t.Fatalf("round trip changed tuple %d: %v -> %v", i, rel.Tuples[i], brel.Tuples[i])
			}
		}
	})
}

// FuzzParseValue: Parse must never panic and String must round-trip nulls.
func FuzzParseValue(f *testing.F) {
	f.Add("plain")
	f.Add("_:N1")
	f.Add("_:")
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		v := model.Parse(s)
		if v.IsNull() {
			if model.Parse(v.String()) != v {
				t.Fatalf("null round trip broken for %q", s)
			}
		} else if v.Raw() != s {
			t.Fatalf("constant text changed: %q -> %q", s, v.Raw())
		}
	})
}

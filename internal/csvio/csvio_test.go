package csvio

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"instcmp/internal/model"
)

func TestReadRelation(t *testing.T) {
	src := "Name,Year,Org\nVLDB,1975,_:N1\nSIGMOD,,ACM\n"
	in := model.NewInstance()
	if err := ReadRelation(in, strings.NewReader(src), ReadOptions{RelationName: "Conf"}); err != nil {
		t.Fatal(err)
	}
	rel := in.Relation("Conf")
	if rel == nil || rel.Cardinality() != 2 {
		t.Fatalf("bad relation: %v", rel)
	}
	if rel.Tuples[0].Values[2] != model.Null("N1") {
		t.Errorf("null marker not parsed: %v", rel.Tuples[0])
	}
	if rel.Tuples[1].Values[1] != model.Const("") {
		t.Errorf("empty cell should be empty constant by default: %v", rel.Tuples[1])
	}
}

func TestReadRelationStripsHeaderBOM(t *testing.T) {
	// A UTF-8 BOM on the file (Excel's signature move) lands inside the
	// first header cell; without stripping it the attribute is invisibly
	// named "<BOM>Name" and two otherwise-identical instances fail with a
	// schema mismatch.
	bom := model.NewInstance()
	if err := ReadRelation(bom, strings.NewReader("\uFEFFName,Year\nVLDB,1975\n"), ReadOptions{RelationName: "Conf"}); err != nil {
		t.Fatal(err)
	}
	plain := model.NewInstance()
	if err := ReadRelation(plain, strings.NewReader("Name,Year\nVLDB,1975\n"), ReadOptions{RelationName: "Conf"}); err != nil {
		t.Fatal(err)
	}
	if got := bom.Relation("Conf").Attrs[0]; got != "Name" {
		t.Errorf("BOM not stripped from header cell 0: %q", got)
	}
	if !model.SameSchema(bom, plain) {
		t.Error("BOM'd and plain files should parse to the same schema")
	}
	// Only the header's first cell is treated: a BOM in a data cell (or a
	// later header cell) is real content.
	data := model.NewInstance()
	if err := ReadRelation(data, strings.NewReader("A,B\n\uFEFFx,\uFEFFy\n"), ReadOptions{RelationName: "R"}); err != nil {
		t.Fatal(err)
	}
	if got := data.Relation("R").Tuples[0].Values[0]; got != model.Const("\uFEFFx") {
		t.Errorf("data-cell BOM must be preserved, got %q", got.Raw())
	}
	cell2 := model.NewInstance()
	if err := ReadRelation(cell2, strings.NewReader("A,\uFEFFB\nx,y\n"), ReadOptions{RelationName: "R"}); err != nil {
		t.Fatal(err)
	}
	if got := cell2.Relation("R").Attrs[1]; got != "\uFEFFB" {
		t.Errorf("non-first header cell must be preserved, got %q", got)
	}
}

func TestReadRelationAnonymousNulls(t *testing.T) {
	src := "A,B\n,x\n,y\n"
	in := model.NewInstance()
	err := ReadRelation(in, strings.NewReader(src), ReadOptions{RelationName: "R", AnonymousNulls: true})
	if err != nil {
		t.Fatal(err)
	}
	r := in.Relation("R")
	v0, v1 := r.Tuples[0].Values[0], r.Tuples[1].Values[0]
	if !v0.IsNull() || !v1.IsNull() {
		t.Fatal("empty cells should become nulls")
	}
	if v0 == v1 {
		t.Error("anonymous nulls must be fresh per cell")
	}
}

func TestReadRelationAnonymousNullsSkipLiteralNames(t *testing.T) {
	// A literal labeled null spelling a counter output ("_:anon_1") must not
	// merge with a minted anonymous null — whether it appears before or
	// after the empty cell that triggers minting.
	src := "A,B\n,_:anon_2\n_:anon_1,x\n,y\n"
	in := model.NewInstance()
	if err := ReadRelation(in, strings.NewReader(src), ReadOptions{RelationName: "R", AnonymousNulls: true}); err != nil {
		t.Fatal(err)
	}
	r := in.Relation("R")
	minted0, lit2 := r.Tuples[0].Values[0], r.Tuples[0].Values[1]
	lit1, minted1 := r.Tuples[1].Values[0], r.Tuples[2].Values[0]
	if lit1 != model.Null("anon_1") || lit2 != model.Null("anon_2") {
		t.Fatalf("literal nulls not preserved: %v %v", lit1, lit2)
	}
	for _, minted := range []model.Value{minted0, minted1} {
		if !minted.IsNull() {
			t.Fatalf("empty cell not minted as null: %v", minted)
		}
		if minted == lit1 || minted == lit2 {
			t.Errorf("minted null %v merged with a literal null", minted)
		}
	}
	if minted0 == minted1 {
		t.Errorf("minted nulls must be pairwise fresh: %v", minted0)
	}
}

func TestReadRelationErrors(t *testing.T) {
	in := model.NewInstance()
	if err := ReadRelation(in, strings.NewReader(""), ReadOptions{}); err == nil {
		t.Error("missing header not reported")
	}
	in2 := model.NewInstance()
	if err := ReadRelation(in2, strings.NewReader("A,B\nx\n"), ReadOptions{}); err == nil {
		t.Error("ragged row not reported")
	}
}

func TestReadRelationDuplicateAttributes(t *testing.T) {
	// Duplicate attribute names would make per-attribute addressing
	// ambiguous downstream (alignment, signatures); reject at parse time
	// and name both offending columns.
	in := model.NewInstance()
	err := ReadRelation(in, strings.NewReader("A,B,A\nx,y,z\n"), ReadOptions{RelationName: "R"})
	if err == nil {
		t.Fatal("duplicate attribute names not reported")
	}
	for _, want := range []string{`duplicate attribute "A"`, "columns 1 and 3"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
	if in.Relation("R") != nil {
		t.Error("relation added despite duplicate header")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	in := model.NewInstance()
	in.AddRelation("Conf", "Name", "Year")
	in.Append("Conf", model.Const("VLDB"), model.Null("N1"))
	in.Append("Conf", model.Const("comma,quoted\"x"), model.Const(""))

	var buf bytes.Buffer
	if err := WriteRelation(&buf, in.Relation("Conf")); err != nil {
		t.Fatal(err)
	}
	back := model.NewInstance()
	if err := ReadRelation(back, &buf, ReadOptions{RelationName: "Conf"}); err != nil {
		t.Fatal(err)
	}
	got, want := back.Relation("Conf"), in.Relation("Conf")
	if got.Cardinality() != want.Cardinality() {
		t.Fatalf("cardinality %d != %d", got.Cardinality(), want.Cardinality())
	}
	for i := range want.Tuples {
		if !got.Tuples[i].EqualValues(want.Tuples[i]) {
			t.Errorf("tuple %d: %v != %v", i, got.Tuples[i], want.Tuples[i])
		}
	}
}

func TestDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := model.NewInstance()
	in.AddRelation("Conf", "Name", "Year")
	in.AddRelation("Paper", "Title", "ConfId")
	in.Append("Conf", model.Const("VLDB"), model.Const("1975"))
	in.Append("Paper", model.Const("QBE"), model.Null("N1"))
	if err := WriteDir(dir, in); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDir(dir, ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !model.SameSchema(in, back) {
		t.Fatalf("schema mismatch after round trip:\n%s\n%s", in, back)
	}
	if back.Relation("Paper").Tuples[0].Values[1] != model.Null("N1") {
		t.Error("null lost in round trip")
	}
}

func TestReadFileNamesRelationAfterFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "conferences.csv")
	if err := writeString(path, "A,B\nx,y\n"); err != nil {
		t.Fatal(err)
	}
	in, err := ReadFile(path, ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if in.Relation("conferences") == nil {
		t.Error("relation not named after file")
	}
}

func TestReadDirEmpty(t *testing.T) {
	if _, err := ReadDir(t.TempDir(), ReadOptions{}); err == nil {
		t.Error("empty dir should error")
	}
}

func writeString(path, s string) error {
	return os.WriteFile(path, []byte(s), 0o644)
}

// Package csvio reads and writes instances with labeled nulls as CSV files.
//
// One CSV file holds one relation: the first row is the attribute header,
// every other row is a tuple. Cells starting with the model.NullPrefix
// marker ("_:") are labeled nulls; empty cells are read as anonymous nulls
// (each empty cell becomes a fresh null) when AnonymousNulls is set, and as
// empty-string constants otherwise.
package csvio

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"instcmp/internal/model"
)

// ReadOptions configures CSV parsing.
type ReadOptions struct {
	// RelationName overrides the relation name (default: file base name
	// without extension, or "R" for readers).
	RelationName string
	// AnonymousNulls reads empty cells as fresh labeled nulls instead of
	// empty-string constants, matching the common encoding of SQL NULL in
	// exported CSVs.
	AnonymousNulls bool
	// Comma is the field separator (default ',').
	Comma rune
}

// ReadRelation parses one relation from r into the given instance.
func ReadRelation(in *model.Instance, r io.Reader, opt ReadOptions) error {
	name := opt.RelationName
	if name == "" {
		name = "R"
	}
	cr := csv.NewReader(r)
	if opt.Comma != 0 {
		cr.Comma = opt.Comma
	}
	cr.FieldsPerRecord = 0 // all rows must match the header
	header, err := cr.Read()
	if err != nil {
		return fmt.Errorf("csvio: reading header of %s: %w", name, err)
	}
	// Strip a UTF-8 byte-order mark from the first header cell only:
	// Excel and several database exporters emit one, and an invisible
	// BOM-prefixed attribute name makes two otherwise-identical instances
	// fail with a schema mismatch. A BOM anywhere else is real data.
	if len(header) > 0 {
		header[0] = strings.TrimPrefix(header[0], "\uFEFF")
	}
	seen := make(map[string]int, len(header))
	for i, attr := range header {
		if attr == "" {
			return fmt.Errorf("csvio: %s: empty attribute name in header column %d", name, i+1)
		}
		if first, dup := seen[attr]; dup {
			return fmt.Errorf("csvio: %s: duplicate attribute %q in header columns %d and %d", name, attr, first+1, i+1)
		}
		seen[attr] = i
	}
	in.AddRelation(name, header...)
	recs, err := cr.ReadAll()
	if err != nil {
		return fmt.Errorf("csvio: reading %s: %w", name, err)
	}
	if opt.AnonymousNulls {
		// Fresh nulls are minted row by row, so a labeled null in a later
		// row could literally spell a name the counter has already handed
		// out (e.g. "_:anon_2"). Reserve every literal null before minting
		// the first anonymous one.
		for _, rec := range recs {
			for _, cell := range rec {
				if v := model.Parse(cell); v.IsNull() {
					in.ReserveNulls(v.Raw())
				}
			}
		}
	}
	for _, rec := range recs {
		vals := make([]model.Value, len(rec))
		for i, cell := range rec {
			switch {
			case cell == "" && opt.AnonymousNulls:
				vals[i] = in.FreshNull("anon_")
			default:
				vals[i] = model.Parse(cell)
			}
		}
		in.Append(name, vals...)
	}
	return nil
}

// ReadFile parses one relation from a CSV file into a fresh instance. The
// relation is named after the file unless overridden.
func ReadFile(path string, opt ReadOptions) (*model.Instance, error) {
	if opt.RelationName == "" {
		base := filepath.Base(path)
		opt.RelationName = strings.TrimSuffix(base, filepath.Ext(base))
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	in := model.NewInstance()
	if err := ReadRelation(in, f, opt); err != nil {
		return nil, err
	}
	return in, nil
}

// ReadDir parses every *.csv file in a directory into one instance, one
// relation per file, in lexicographic file order.
func ReadDir(dir string, opt ReadOptions) (*model.Instance, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.csv"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("csvio: no CSV files in %s", dir)
	}
	in := model.NewInstance()
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		base := filepath.Base(path)
		o := opt
		o.RelationName = strings.TrimSuffix(base, filepath.Ext(base))
		err = ReadRelation(in, f, o)
		f.Close()
		if err != nil {
			return nil, err
		}
	}
	return in, nil
}

// WriteRelation renders one relation as CSV: header row, then tuples, with
// nulls marked by model.NullPrefix.
func WriteRelation(w io.Writer, rel *model.Relation) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(rel.Attrs); err != nil {
		return err
	}
	rec := make([]string, rel.Arity())
	for _, t := range rel.Tuples {
		for i, v := range t.Values {
			rec[i] = v.String()
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteDir writes every relation of the instance as <dir>/<relation>.csv.
func WriteDir(dir string, in *model.Instance) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, rel := range in.Relations() {
		f, err := os.Create(filepath.Join(dir, rel.Name+".csv"))
		if err != nil {
			return err
		}
		err = WriteRelation(f, rel)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Package tablefmt renders experiment results as fixed-width text tables,
// mirroring the layout of the paper's tables.
package tablefmt

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and renders them with column-wise alignment.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// New returns a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// Add appends a row; values are formatted with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// AddStrings appends a pre-formatted row.
func (t *Table) AddStrings(cells ...string) {
	t.rows = append(t.rows, cells)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.title != "" {
		fmt.Fprintln(w, t.title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(t.headers)
	total := len(t.headers)*2 - 2
	for _, wd := range widths {
		total += wd
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.rows {
		line(row)
	}
}

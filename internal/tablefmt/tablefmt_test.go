package tablefmt

import (
	"strings"
	"testing"
)

func TestRenderAlignsColumns(t *testing.T) {
	tb := New("Title", "Name", "Value")
	tb.Add("short", 1)
	tb.Add("a-much-longer-name", 2.5)
	tb.AddStrings("pre", "formatted")
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()

	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("lines = %d, want title+header+rule+3 rows:\n%s", len(lines), out)
	}
	if lines[0] != "Title" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "Name") {
		t.Errorf("header = %q", lines[1])
	}
	if !strings.Contains(lines[2], "---") {
		t.Errorf("rule = %q", lines[2])
	}
	// The Value column starts at the same offset in every row.
	col := strings.Index(lines[1], "Value")
	if got := strings.Index(lines[4], "2.500"); got != col {
		t.Errorf("column misaligned: header at %d, value at %d\n%s", col, got, out)
	}
}

func TestRenderFloatsFormatted(t *testing.T) {
	tb := New("", "X")
	tb.Add(0.123456789)
	var sb strings.Builder
	tb.Render(&sb)
	if !strings.Contains(sb.String(), "0.123") || strings.Contains(sb.String(), "0.123456") {
		t.Errorf("float not rendered with 3 decimals:\n%s", sb.String())
	}
}

func TestRenderNoTitle(t *testing.T) {
	tb := New("", "A")
	tb.Add("x")
	var sb strings.Builder
	tb.Render(&sb)
	if strings.HasPrefix(sb.String(), "\n") {
		t.Error("empty title produced a blank line")
	}
}

// Package reduction makes the paper's hardness theorem (Thm. 5.11)
// executable: it encodes graph 3-colorability — the NP-complete problem the
// paper reduces from — as an instance-comparison problem. A graph G is
// 3-colorable exactly when the labeled-null encoding of its edge relation
// maps homomorphically into the triangle K3, which in turn holds exactly
// when the two instances reach a computable similarity threshold under a
// left-total instance match.
//
// Besides serving as a test bed for the theory (the tests check classic
// graphs against both the homomorphism check and the exact similarity
// algorithm), the package documents *why* instance comparison cannot be
// both exact and fast: any polynomial exact comparator would decide
// 3-colorability.
package reduction

import (
	"fmt"

	"instcmp/internal/hom"
	"instcmp/internal/match"
	"instcmp/internal/model"
	"instcmp/internal/score"
)

// Graph is an undirected graph on vertices 0..N-1.
type Graph struct {
	N     int
	Edges [][2]int
}

// Validate checks vertex indexes and rejects self-loops (a self-loop makes
// any proper coloring impossible; callers may still encode them, but the
// encoding below assumes simple graphs).
func (g Graph) Validate() error {
	for _, e := range g.Edges {
		if e[0] < 0 || e[0] >= g.N || e[1] < 0 || e[1] >= g.N {
			return fmt.Errorf("reduction: edge %v out of range", e)
		}
		if e[0] == e[1] {
			return fmt.Errorf("reduction: self-loop at %d", e[0])
		}
	}
	return nil
}

// Encode builds the two instances of the reduction. The left instance
// holds one Edge(u, v) and Edge(v, u) tuple per edge, with one labeled
// null per vertex (the same null everywhere the vertex occurs — exactly
// the role labeled nulls play in the paper). The right instance is the
// triangle K3 over color constants: all ordered pairs of distinct colors.
//
// A value mapping sending every vertex null to a color constant that
// matches all edge tuples into K3 is precisely a proper 3-coloring.
func Encode(g Graph) (left, right *model.Instance, err error) {
	if err := g.Validate(); err != nil {
		return nil, nil, err
	}
	left = model.NewInstance()
	left.AddRelation("Edge", "From", "To")
	vertex := make([]model.Value, g.N)
	for i := range vertex {
		vertex[i] = model.Nullf("v%d", i)
	}
	for _, e := range g.Edges {
		left.Append("Edge", vertex[e[0]], vertex[e[1]])
		left.Append("Edge", vertex[e[1]], vertex[e[0]])
	}

	right = model.NewInstance()
	right.AddRelation("Edge", "From", "To")
	colors := []model.Value{model.Const("red"), model.Const("green"), model.Const("blue")}
	for i, a := range colors {
		for j, b := range colors {
			if i != j {
				right.Append("Edge", a, b)
			}
		}
	}
	return left, right, nil
}

// ThreeColorable decides 3-colorability through the reduction: the graph
// is 3-colorable iff the encoding's left instance maps homomorphically
// into K3 (the existence-of-homomorphism special case of the paper's
// instance matches, Sec. 4.3).
func ThreeColorable(g Graph) (bool, error) {
	left, right, err := Encode(g)
	if err != nil {
		return false, err
	}
	return hom.Exists(left, right), nil
}

// Coloring returns a proper 3-coloring (vertex index -> color name) when
// one exists, extracted from the homomorphism's value mapping — the
// "instance match explains the score" property of the paper, applied to
// the reduction.
func Coloring(g Graph) (map[int]string, error) {
	left, right, err := Encode(g)
	if err != nil {
		return nil, err
	}
	h := hom.Find(left, right)
	if h == nil {
		return nil, nil
	}
	out := make(map[int]string, g.N)
	for i := 0; i < g.N; i++ {
		v := h[model.Nullf("v%d", i)]
		if v.IsNull() {
			// An isolated vertex is unconstrained; give it any color.
			out[i] = "red"
			continue
		}
		out[i] = v.Raw()
	}
	return out, nil
}

// MatchFromColoring turns a proper 3-coloring into the complete, left-total
// instance match the reduction's forward direction promises, and returns
// its Def. 5.3 score. It errors when the coloring is not proper (some edge
// tuple finds no K3 counterpart under the induced value mapping) — which is
// exactly the reverse direction: a left-total complete match exists only
// for proper colorings.
func MatchFromColoring(g Graph, coloring map[int]string, lambda float64) (float64, error) {
	left, right, err := Encode(g)
	if err != nil {
		return 0, err
	}
	env, err := match.NewEnv(left, right, match.ManyToMany)
	if err != nil {
		return 0, err
	}
	// Index K3 tuples by their color pair.
	rrel := right.Relations()[0]
	byPair := map[[2]string]int{}
	for ti, t := range rrel.Tuples {
		byPair[[2]string{t.Values[0].Raw(), t.Values[1].Raw()}] = ti
	}
	lrel := left.Relations()[0]
	for li, t := range lrel.Tuples {
		u := vertexOf(t.Values[0])
		v := vertexOf(t.Values[1])
		ri, ok := byPair[[2]string{coloring[u], coloring[v]}]
		if !ok {
			return 0, fmt.Errorf("reduction: edge (%d,%d) is monochromatic under the coloring", u, v)
		}
		p := match.Pair{L: match.Ref{Rel: 0, Idx: li}, R: match.Ref{Rel: 0, Idx: ri}}
		if !env.TryAddPair(p) {
			return 0, fmt.Errorf("reduction: coloring induced an inconsistent match at edge (%d,%d)", u, v)
		}
	}
	return score.Match(env, lambda), nil
}

// vertexOf recovers the vertex index from an encoding null ("v<i>").
func vertexOf(v model.Value) int {
	var i int
	fmt.Sscanf(v.Raw(), "v%d", &i)
	return i
}

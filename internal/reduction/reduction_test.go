package reduction

// Exercising Thm. 5.11's reduction on classic graphs: deciding
// 3-colorability through instance homomorphisms, extracting colorings from
// value mappings, and checking both directions of the equivalence.

import (
	"testing"
)

func cycle(n int) Graph {
	g := Graph{N: n}
	for i := 0; i < n; i++ {
		g.Edges = append(g.Edges, [2]int{i, (i + 1) % n})
	}
	return g
}

func complete(n int) Graph {
	g := Graph{N: n}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.Edges = append(g.Edges, [2]int{i, j})
		}
	}
	return g
}

// petersen returns the Petersen graph (3-chromatic).
func petersen() Graph {
	g := Graph{N: 10}
	for i := 0; i < 5; i++ {
		g.Edges = append(g.Edges,
			[2]int{i, (i + 1) % 5},     // outer cycle
			[2]int{i, i + 5},           // spokes
			[2]int{i + 5, (i+2)%5 + 5}, // inner pentagram
		)
	}
	return g
}

func TestThreeColorableClassics(t *testing.T) {
	cases := []struct {
		name string
		g    Graph
		want bool
	}{
		{"triangle", complete(3), true},
		{"K4", complete(4), false},
		{"even cycle C6", cycle(6), true},
		{"odd cycle C5", cycle(5), true}, // 3-chromatic
		{"Petersen", petersen(), true},
		{"bipartite K33", k33(), true},
		{"empty graph", Graph{N: 4}, true},
		{"single edge", Graph{N: 2, Edges: [][2]int{{0, 1}}}, true},
	}
	for _, tc := range cases {
		got, err := ThreeColorable(tc.g)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got != tc.want {
			t.Errorf("%s: 3-colorable = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func k33() Graph {
	g := Graph{N: 6}
	for i := 0; i < 3; i++ {
		for j := 3; j < 6; j++ {
			g.Edges = append(g.Edges, [2]int{i, j})
		}
	}
	return g
}

// TestColoringIsProper extracts colorings and verifies them directly.
func TestColoringIsProper(t *testing.T) {
	for _, g := range []Graph{complete(3), cycle(5), petersen(), k33()} {
		col, err := Coloring(g)
		if err != nil {
			t.Fatal(err)
		}
		if col == nil {
			t.Fatalf("no coloring for a 3-colorable graph: %+v", g)
		}
		for _, e := range g.Edges {
			if col[e[0]] == col[e[1]] {
				t.Fatalf("monochromatic edge %v: %v", e, col)
			}
		}
	}
	col, err := Coloring(complete(4))
	if err != nil {
		t.Fatal(err)
	}
	if col != nil {
		t.Error("K4 returned a coloring")
	}
}

// TestMatchFromColoring: the forward direction — a proper coloring induces
// a complete left-total match with positive score; an improper one is
// rejected.
func TestMatchFromColoring(t *testing.T) {
	g := cycle(6)
	col, err := Coloring(g)
	if err != nil || col == nil {
		t.Fatal(err)
	}
	s, err := MatchFromColoring(g, col, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if s <= 0 || s >= 1 {
		t.Errorf("coloring match score = %v, want in (0, 1)", s)
	}
	// An improper coloring (all red) must be rejected.
	bad := map[int]string{}
	for i := 0; i < g.N; i++ {
		bad[i] = "red"
	}
	if _, err := MatchFromColoring(g, bad, 0.5); err == nil {
		t.Error("monochromatic coloring accepted")
	}
}

func TestValidate(t *testing.T) {
	if err := (Graph{N: 2, Edges: [][2]int{{0, 5}}}).Validate(); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if err := (Graph{N: 2, Edges: [][2]int{{1, 1}}}).Validate(); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := ThreeColorable(Graph{N: 1, Edges: [][2]int{{0, 0}}}); err == nil {
		t.Error("ThreeColorable accepted an invalid graph")
	}
}

// TestIsolatedVertices: vertices with no edges are unconstrained and get a
// default color.
func TestIsolatedVertices(t *testing.T) {
	g := Graph{N: 4, Edges: [][2]int{{0, 1}}}
	col, err := Coloring(g)
	if err != nil {
		t.Fatal(err)
	}
	if col == nil || len(col) != 4 {
		t.Fatalf("coloring = %v", col)
	}
	if col[0] == col[1] {
		t.Error("edge endpoints share a color")
	}
}

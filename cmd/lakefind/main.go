// Command lakefind ranks the datasets of a data lake by similarity to an
// example instance — the dataset-discovery application of the paper's
// introduction ("find more census data or medical records"), working
// without keys and with labeled nulls.
//
// Usage:
//
//	lakefind [flags] <example> <lake-dir>
//
// The example is a CSV file or a directory of CSVs (one relation per
// file). The lake directory contains one dataset per entry: either a CSV
// file or a subdirectory of CSVs.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"instcmp"
	"instcmp/internal/lake"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lakefind:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("lakefind", flag.ContinueOnError)
	var (
		minOverlap  = fs.Float64("min-overlap", 0.05, "constant-overlap prefilter threshold (0 disables)")
		top         = fs.Int("top", 0, "print only the best N candidates (0 = all)")
		anonNulls   = fs.Bool("anon-nulls", false, "treat empty CSV cells as fresh labeled nulls")
		workers     = fs.Int("workers", runtime.GOMAXPROCS(0), "concurrent candidate comparisons (ranking order is identical for every value)")
		sigWorkers  = fs.Int("sig-workers", 1, "signature-pipeline workers inside each comparison (1 = sequential; raise for lakes with few large datasets)")
		lambda      = fs.Float64("lambda", -1, "null-to-constant penalty λ in [0, 1); -1 = paper default, 0 = nulls matched to constants score nothing")
		candTimeout = fs.Duration("candidate-timeout", 0, "per-candidate comparison budget; a candidate over budget degrades to its prefilter overlap (0 = none)")
		timeout     = fs.Duration("timeout", 0, "overall ranking deadline; exceeding it aborts the ranking (0 = none)")
		stats       = fs.Bool("stats", false, "print per-candidate comparison statistics after the ranking")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return fmt.Errorf("expected <example> <lake-dir>, got %d arguments", fs.NArg())
	}

	example, err := load(fs.Arg(0), *anonNulls)
	if err != nil {
		return err
	}
	entries, err := os.ReadDir(fs.Arg(1))
	if err != nil {
		return err
	}
	var cands []lake.Candidate
	for _, e := range entries {
		path := filepath.Join(fs.Arg(1), e.Name())
		if !e.IsDir() && !strings.HasSuffix(e.Name(), ".csv") {
			continue
		}
		in, err := load(path, *anonNulls)
		if err != nil {
			fmt.Fprintf(out, "skipping %s: %v\n", e.Name(), err)
			continue
		}
		cands = append(cands, lake.Candidate{Name: e.Name(), Instance: in})
	}
	if len(cands) == 0 {
		return fmt.Errorf("no datasets found in %s", fs.Arg(1))
	}

	opt := lake.Options{
		MinValueOverlap:     *minOverlap,
		Workers:             *workers,
		SigWorkers:          *sigWorkers,
		PerCandidateTimeout: *candTimeout,
	}
	switch {
	case *lambda == 0:
		opt.ExplicitZeroLambda = true
	case *lambda > 0:
		opt.Lambda = *lambda
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	res, err := lake.RankContext(ctx, example, cands, opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%-30s  %9s  %8s\n", "dataset", "similarity", "overlap")
	for i, r := range res {
		if *top > 0 && i >= *top {
			break
		}
		score := fmt.Sprintf("%.4f", r.Score)
		switch {
		case r.Pruned:
			score = "(pruned)"
		case r.TimedOut:
			score = "(timeout)"
		}
		fmt.Fprintf(out, "%-30s  %9s  %8.3f\n", r.Name, score, r.Overlap)
	}
	if *stats {
		fmt.Fprintln(out)
		for _, r := range res {
			if r.Stats == nil {
				continue // pruned before comparison: nothing to report
			}
			s := r.Stats
			fmt.Fprintf(out, "stats %-24s  sig=%d compat=%d attempts=%d rejects=%d evals=%d search=%v\n",
				r.Name, s.SigMatches, s.CompatMatches, s.PairAttempts, s.PairRejects, s.ScoreEvals, s.SearchTime)
		}
	}
	return nil
}

func load(path string, anon bool) (*instcmp.Instance, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	opt := instcmp.CSVOptions{AnonymousNulls: anon}
	if info.IsDir() {
		return instcmp.LoadCSVDir(path, opt)
	}
	return instcmp.LoadCSV(path, opt)
}

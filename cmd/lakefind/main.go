// Command lakefind ranks the datasets of a data lake by similarity to an
// example instance — the dataset-discovery application of the paper's
// introduction ("find more census data or medical records"), working
// without keys and with labeled nulls.
//
// Usage:
//
//	lakefind [flags] <example> <lake-dir>
//	lakefind -build-index -index lake.idx <lake-dir>
//
// The example is a CSV file or a directory of CSVs (one relation per
// file). The lake directory contains one dataset per entry: either a CSV
// file or a subdirectory of CSVs.
//
// With -build-index, lakefind sketches every dataset once and persists a
// sketch index (internal/lakeindex). A later query run with -index probes
// that index to shortlist the likely candidates and loads and compares ONLY
// the shortlist — a cold start over a 1k-dataset lake parses a handful of
// CSVs instead of a thousand. Datasets the index has never seen are still
// loaded and compared (a stale index costs comparisons, not recall), and an
// unreadable, corrupted, or version-mismatched index degrades to the plain
// full scan with a warning, never a crash.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"instcmp"
	"instcmp/internal/lake"
	"instcmp/internal/lakeindex"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lakefind:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("lakefind", flag.ContinueOnError)
	var (
		minOverlap  = fs.Float64("min-overlap", 0.05, "constant-overlap prefilter threshold (0 disables)")
		top         = fs.Int("top", 0, "print only the best N candidates (0 = all; with -index, also sizes the shortlist)")
		anonNulls   = fs.Bool("anon-nulls", false, "treat empty CSV cells as fresh labeled nulls")
		workers     = fs.Int("workers", runtime.GOMAXPROCS(0), "concurrent candidate comparisons (ranking order is identical for every value)")
		sigWorkers  = fs.Int("sig-workers", 1, "signature-pipeline workers inside each comparison (1 = sequential; raise for lakes with few large datasets)")
		lambda      = fs.Float64("lambda", -1, "null-to-constant penalty λ in [0, 1); -1 = paper default, 0 = nulls matched to constants score nothing")
		candTimeout = fs.Duration("candidate-timeout", 0, "per-candidate comparison budget; a candidate over budget degrades to its prefilter overlap (0 = none)")
		timeout     = fs.Duration("timeout", 0, "overall ranking deadline; exceeding it aborts the ranking (0 = none)")
		stats       = fs.Bool("stats", false, "print per-candidate comparison statistics after the ranking")
		indexPath   = fs.String("index", "", "sketch index file: load and compare only an index-shortlisted subset of the lake (see -build-index)")
		buildIndex  = fs.Bool("build-index", false, "sketch every dataset of <lake-dir> and write the index to -index instead of ranking")
		discover    = fs.Bool("discover-mapping", false, "compare drifted candidates under discovered attribute mappings (renamed/reordered columns)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *buildIndex {
		if *indexPath == "" {
			return fmt.Errorf("-build-index requires -index <file>")
		}
		if fs.NArg() != 1 {
			fs.Usage()
			return fmt.Errorf("expected <lake-dir>, got %d arguments", fs.NArg())
		}
		return runBuildIndex(fs.Arg(0), *indexPath, *anonNulls, out)
	}

	if fs.NArg() != 2 {
		fs.Usage()
		return fmt.Errorf("expected <example> <lake-dir>, got %d arguments", fs.NArg())
	}

	opt := lake.Options{
		MinValueOverlap:     *minOverlap,
		Workers:             *workers,
		SigWorkers:          *sigWorkers,
		PerCandidateTimeout: *candTimeout,
		TopK:                *top,
		DiscoverMapping:     *discover,
	}
	switch {
	case *lambda == 0:
		opt.ExplicitZeroLambda = true
	case *lambda > 0:
		opt.Lambda = *lambda
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// An index that fails to load is a warning, not an error: the full scan
	// is always available and always correct.
	var ix *lakeindex.Index
	if *indexPath != "" {
		var err error
		ix, err = lakeindex.ReadFile(*indexPath)
		if err != nil {
			fmt.Fprintf(out, "index %s unusable (%v); falling back to full scan\n", *indexPath, err)
			ix = nil
		}
		// An index built under different read options sketched a different
		// feature stream (e.g. -anon-nulls excludes former empty cells from
		// features): probing it would silently mis-rank, so warn and scan.
		if want := readFlags(*anonNulls); ix != nil && ix.Flags() != want {
			fmt.Fprintf(out, "index %s was built with read options %q, this query uses %q; ignoring it and falling back to full scan (rebuild with -build-index)\n",
				*indexPath, ix.Flags(), want)
			ix = nil
		}
	}

	start := time.Now()
	example, err := load(fs.Arg(0), *anonNulls)
	if err != nil {
		return err
	}

	var res []lake.Result
	if ix != nil {
		res, err = rankThroughIndex(ctx, example, fs.Arg(1), ix, opt, *anonNulls, start, out)
	} else {
		res, err = rankFullScan(ctx, example, fs.Arg(1), opt, *anonNulls, out)
	}
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "%-30s  %9s  %8s\n", "dataset", "similarity", "overlap")
	for i, r := range res {
		if *top > 0 && i >= *top {
			break
		}
		score := fmt.Sprintf("%.4f", r.Score)
		switch {
		case r.Pruned:
			score = "(pruned)"
		case r.TimedOut:
			score = "(timeout)"
		}
		fmt.Fprintf(out, "%-30s  %9s  %8.3f\n", r.Name, score, r.Overlap)
	}
	if *stats {
		fmt.Fprintln(out)
		for _, r := range res {
			if r.Stats == nil {
				continue // pruned before comparison: nothing to report
			}
			s := r.Stats
			fmt.Fprintf(out, "stats %-24s  sig=%d compat=%d attempts=%d rejects=%d evals=%d search=%v\n",
				r.Name, s.SigMatches, s.CompatMatches, s.PairAttempts, s.PairRejects, s.ScoreEvals, s.SearchTime)
		}
	}
	return nil
}

// datasetNames lists the lake directory's dataset entries (CSV files and
// subdirectories), without loading anything.
func datasetNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && !strings.HasSuffix(e.Name(), ".csv") {
			continue
		}
		names = append(names, e.Name())
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no datasets found in %s", dir)
	}
	return names, nil
}

// loadLake loads the named datasets from the lake directory, reporting (and
// skipping) unreadable ones.
func loadLake(dir string, names []string, anon bool, out io.Writer) []lake.Candidate {
	var cands []lake.Candidate
	for _, name := range names {
		in, err := load(filepath.Join(dir, name), anon)
		if err != nil {
			fmt.Fprintf(out, "skipping %s: %v\n", name, err)
			continue
		}
		cands = append(cands, lake.Candidate{Name: name, Instance: in})
	}
	return cands
}

// rankFullScan is the classic path: load every dataset, compare every
// dataset.
func rankFullScan(ctx context.Context, example *instcmp.Instance, dir string, opt lake.Options, anon bool, out io.Writer) ([]lake.Result, error) {
	names, err := datasetNames(dir)
	if err != nil {
		return nil, err
	}
	cands := loadLake(dir, names, anon, out)
	if len(cands) == 0 {
		return nil, fmt.Errorf("no datasets found in %s", dir)
	}
	return lake.RankContext(ctx, example, cands, opt)
}

// rankThroughIndex probes the persisted sketch index before touching any
// candidate CSV: only shortlisted datasets (plus datasets the index has
// never seen) are parsed and compared; the rest are reported pruned without
// being read at all — the cold-start payoff of a persisted index.
func rankThroughIndex(ctx context.Context, example *instcmp.Instance, dir string, ix *lakeindex.Index, opt lake.Options, anon bool, start time.Time, out io.Writer) ([]lake.Result, error) {
	names, err := datasetNames(dir)
	if err != nil {
		return nil, err
	}
	topK := opt.TopK
	if topK <= 0 {
		topK = lake.DefaultTopK
	}
	target := max(4*topK, lake.DefaultMinShortlist)
	if len(names) <= target {
		fmt.Fprintf(out, "index: lake of %d fits the shortlist of %d; comparing everything\n", len(names), target)
		cands := loadLake(dir, names, anon, out)
		if len(cands) == 0 {
			return nil, fmt.Errorf("no datasets found in %s", dir)
		}
		return lake.RankContext(ctx, example, cands, opt)
	}

	prep, err := instcmp.Prepare(example)
	if err != nil {
		return nil, err
	}
	query := lakeindex.NewSketch(prep.SketchFeatures())

	onDisk := make(map[string]bool, len(names))
	for _, name := range names {
		onDisk[name] = true
	}
	// Ask for extra hits in case the index covers datasets that have since
	// been deleted from the lake; keep the best target that still exist.
	var hits []lakeindex.Hit
	var ps lakeindex.ProbeStats
	shortlisted := make(map[string]bool, target)
	for probeTarget := target; ; probeTarget *= 2 {
		hits, ps = ix.Shortlist(query, probeTarget)
		members := 0
		for _, h := range hits {
			if onDisk[h.Name] {
				members++
			}
		}
		if members >= target || len(hits) < probeTarget {
			break
		}
	}
	for _, h := range hits {
		if onDisk[h.Name] {
			shortlisted[h.Name] = true
			if len(shortlisted) >= target {
				break
			}
		}
	}

	var shortNames []string
	var rest []lake.Result
	unindexed := 0
	for _, name := range names {
		switch {
		case shortlisted[name]:
			shortNames = append(shortNames, name)
		case !ix.Contains(name):
			// New dataset the index predates: compare unconditionally.
			unindexed++
			shortNames = append(shortNames, name)
		default:
			rest = append(rest, lake.Result{Name: name, Pruned: true})
		}
	}
	cands := loadLake(dir, shortNames, anon, out)
	res, err := lake.RankContext(ctx, example, cands, opt)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(out, "index: compared %d of %d datasets (probed %d, widened=%v, unindexed=%d) in %v\n",
		len(cands), len(names), ps.Probed, ps.Widened, unindexed, time.Since(start).Round(time.Millisecond))
	res = append(res, rest...)
	return res, nil
}

// runBuildIndex sketches every dataset of the lake and persists the index.
func runBuildIndex(dir, indexPath string, anon bool, out io.Writer) error {
	start := time.Now()
	names, err := datasetNames(dir)
	if err != nil {
		return err
	}
	var prepared []lake.PreparedCandidate
	for _, name := range names {
		in, err := load(filepath.Join(dir, name), anon)
		if err != nil {
			fmt.Fprintf(out, "skipping %s: %v\n", name, err)
			continue
		}
		p, err := instcmp.Prepare(in)
		if err != nil {
			fmt.Fprintf(out, "skipping %s: %v\n", name, err)
			continue
		}
		prepared = append(prepared, lake.PreparedCandidate{Name: name, Prepared: p})
	}
	if len(prepared) == 0 {
		return fmt.Errorf("no datasets found in %s", dir)
	}
	ix, err := lake.BuildIndex(prepared)
	if err != nil {
		return err
	}
	ix = ix.WithFlags(readFlags(anon))
	if err := ix.WriteFile(indexPath); err != nil {
		return err
	}
	fmt.Fprintf(out, "index: wrote %d sketches to %s in %v\n",
		ix.Len(), indexPath, time.Since(start).Round(time.Millisecond))
	return nil
}

// readFlags encodes the CSV read options that shape the sketch feature
// stream; persisted with -build-index and compared at query time.
func readFlags(anon bool) lakeindex.ReadFlags {
	var f lakeindex.ReadFlags
	if anon {
		f |= lakeindex.FlagAnonymousNulls
	}
	return f
}

func load(path string, anon bool) (*instcmp.Instance, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	opt := instcmp.CSVOptions{AnonymousNulls: anon}
	if info.IsDir() {
		return instcmp.LoadCSVDir(path, opt)
	}
	return instcmp.LoadCSV(path, opt)
}

package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func setupLake(t *testing.T) (string, string) {
	t.Helper()
	dir := t.TempDir()
	example := filepath.Join(dir, "example.csv")
	write(t, example, "Name,Year\nVLDB,1975\nSIGMOD,1976\n")
	lakeDir := filepath.Join(dir, "lake")
	write(t, filepath.Join(lakeDir, "twin.csv"), "Name,Year\nSIGMOD,1976\nVLDB,1975\n")
	write(t, filepath.Join(lakeDir, "partial.csv"), "Name,Year\nVLDB,_:N1\nICDE,1984\n")
	write(t, filepath.Join(lakeDir, "unrelated.csv"), "Name,Year\nfoo,1\nbar,2\n")
	write(t, filepath.Join(lakeDir, "nested", "conf.csv"), "Name,Year\nVLDB,1975\n")
	write(t, filepath.Join(lakeDir, "notes.txt"), "not a dataset")
	return example, lakeDir
}

func TestRunRanksLake(t *testing.T) {
	example, lakeDir := setupLake(t)
	var out strings.Builder
	if err := run([]string{example, lakeDir}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	lines := strings.Split(strings.TrimSpace(got), "\n")
	if len(lines) != 5 { // header + 4 datasets (txt skipped)
		t.Fatalf("lines = %d:\n%s", len(lines), got)
	}
	if !strings.HasPrefix(lines[1], "twin.csv") {
		t.Errorf("twin should rank first:\n%s", got)
	}
	if !strings.Contains(lines[1], "1.0000") {
		t.Errorf("twin score should be 1:\n%s", got)
	}
	if !strings.Contains(got, "nested") {
		t.Errorf("nested dataset missing:\n%s", got)
	}
}

func TestRunTopAndPrefilter(t *testing.T) {
	example, lakeDir := setupLake(t)
	var out strings.Builder
	if err := run([]string{"-top", "1", "-min-overlap", "0.3", example, lakeDir}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("-top 1 printed %d lines:\n%s", len(lines), out.String())
	}
}

func TestRunStatsFlag(t *testing.T) {
	example, lakeDir := setupLake(t)
	var out strings.Builder
	if err := run([]string{"-stats", example, lakeDir}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "stats twin.csv") {
		t.Errorf("-stats printed no per-candidate line:\n%s", got)
	}
	if !strings.Contains(got, "attempts=") || !strings.Contains(got, "search=") {
		t.Errorf("stats line missing counters:\n%s", got)
	}
}

func TestRunLambdaFlag(t *testing.T) {
	example, lakeDir := setupLake(t)
	// partial.csv holds a null where the example has a constant; λ = 0
	// removes that cell's credit, so partial's score must drop.
	var def, zero strings.Builder
	if err := run([]string{example, lakeDir}, &def); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-lambda", "0", example, lakeDir}, &zero); err != nil {
		t.Fatal(err)
	}
	score := func(s, name string) string {
		for _, line := range strings.Split(s, "\n") {
			if strings.HasPrefix(line, name) {
				return strings.Fields(line)[1]
			}
		}
		t.Fatalf("%s missing:\n%s", name, s)
		return ""
	}
	d, z := score(def.String(), "partial.csv"), score(zero.String(), "partial.csv")
	if d <= z {
		t.Errorf("λ=0 should lower partial.csv's score: default %s, zero %s", d, z)
	}
	if score(def.String(), "twin.csv") != score(zero.String(), "twin.csv") {
		t.Error("λ=0 changed a null-free candidate's score")
	}
}

func TestRunCandidateTimeout(t *testing.T) {
	example, lakeDir := setupLake(t)
	var out strings.Builder
	if err := run([]string{"-candidate-timeout", "1ns", example, lakeDir}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "(timeout)") {
		t.Errorf("no candidate marked (timeout):\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	example, lakeDir := setupLake(t)
	if err := run([]string{example}, &strings.Builder{}); err == nil {
		t.Error("missing lake dir not reported")
	}
	if err := run([]string{example, filepath.Join(lakeDir, "missing")}, &strings.Builder{}); err == nil {
		t.Error("unreadable lake not reported")
	}
	empty := t.TempDir()
	if err := run([]string{example, empty}, &strings.Builder{}); err == nil {
		t.Error("empty lake not reported")
	}
}

// setupBigLake builds a lake large enough (80 datasets > the 64-candidate
// shortlist floor) that -index genuinely prunes, with one twin of the
// example hidden among disjoint noise datasets.
func setupBigLake(t *testing.T) (string, string, string) {
	t.Helper()
	dir := t.TempDir()
	example := filepath.Join(dir, "example.csv")
	write(t, example, "Name,Year\nVLDB,1975\nSIGMOD,1976\nICDE,1984\n")
	lakeDir := filepath.Join(dir, "lake")
	write(t, filepath.Join(lakeDir, "twin.csv"), "Name,Year\nICDE,1984\nVLDB,1975\nSIGMOD,1976\n")
	for i := 0; i < 79; i++ {
		write(t, filepath.Join(lakeDir, fmt.Sprintf("noise-%02d.csv", i)),
			fmt.Sprintf("Name,Year\nn%da,%d\nn%db,%d\n", i, 3000+i, i, 4000+i))
	}
	return example, lakeDir, filepath.Join(dir, "lake.idx")
}

func TestRunBuildIndexAndQuery(t *testing.T) {
	example, lakeDir, idx := setupBigLake(t)

	var bout strings.Builder
	if err := run([]string{"-build-index", "-index", idx, lakeDir}, &bout); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(bout.String(), "wrote 80 sketches") {
		t.Fatalf("build output: %s", bout.String())
	}
	if _, err := os.Stat(idx); err != nil {
		t.Fatalf("index file missing: %v", err)
	}

	// Cold-start query: a fresh process would do exactly this — read the
	// index, shortlist, and load only the shortlist.
	var qout strings.Builder
	if err := run([]string{"-min-overlap", "0", "-index", idx, example, lakeDir}, &qout); err != nil {
		t.Fatal(err)
	}
	got := qout.String()
	if !strings.Contains(got, "index: compared 64 of 80 datasets") {
		t.Errorf("indexed run did not shortlist:\n%s", got)
	}
	lines := strings.Split(strings.TrimSpace(got), "\n")
	// index line + header + 80 datasets.
	if len(lines) != 82 {
		t.Fatalf("lines = %d:\n%s", len(lines), got)
	}
	if !strings.HasPrefix(lines[2], "twin.csv") || !strings.Contains(lines[2], "1.0000") {
		t.Errorf("twin should rank first at score 1:\n%s", got)
	}
	if !strings.Contains(got, "(pruned)") {
		t.Errorf("no candidate reported index-pruned:\n%s", got)
	}

	// The full scan agrees on the winner.
	var fout strings.Builder
	if err := run([]string{"-min-overlap", "0", example, lakeDir}, &fout); err != nil {
		t.Fatal(err)
	}
	flines := strings.Split(strings.TrimSpace(fout.String()), "\n")
	if !strings.HasPrefix(flines[1], "twin.csv") {
		t.Errorf("full scan disagrees:\n%s", fout.String())
	}
}

func TestRunIndexStaleAndMissingDatasets(t *testing.T) {
	example, lakeDir, idx := setupBigLake(t)
	if err := run([]string{"-build-index", "-index", idx, lakeDir}, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	// A dataset registered AFTER the index was built — and it is the best
	// match. The stale index must not hide it.
	write(t, filepath.Join(lakeDir, "newcomer.csv"), "Name,Year\nVLDB,1975\nSIGMOD,1976\nICDE,1984\n")
	// And one indexed dataset disappears from disk.
	if err := os.Remove(filepath.Join(lakeDir, "noise-42.csv")); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	if err := run([]string{"-min-overlap", "0", "-index", idx, example, lakeDir}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "unindexed=1") {
		t.Errorf("newcomer not reported unindexed:\n%s", got)
	}
	lines := strings.Split(strings.TrimSpace(got), "\n")
	if !strings.HasPrefix(lines[2], "newcomer.csv") && !strings.HasPrefix(lines[2], "twin.csv") {
		t.Errorf("best match missing from the top despite stale index:\n%s", got)
	}
	if strings.Contains(got, "noise-42.csv") {
		t.Errorf("deleted dataset resurfaced:\n%s", got)
	}
}

func TestRunIndexUnusableFallsBack(t *testing.T) {
	example, lakeDir, idx := setupBigLake(t)
	if err := run([]string{"-build-index", "-index", idx, lakeDir}, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	corrupt := func(name string, mutate func([]byte) []byte) string {
		t.Helper()
		data, err := os.ReadFile(idx)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), name)
		if err := os.WriteFile(path, mutate(data), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	cases := map[string]string{
		"not an index": corrupt("garbage.idx", func([]byte) []byte { return []byte("Name,Year\nno,1\n") }),
		"version": corrupt("version.idx", func(b []byte) []byte {
			b[4]++ // format version field
			return b
		}),
		"corrupt": corrupt("bitflip.idx", func(b []byte) []byte {
			b[len(b)-1] ^= 0xff
			return b
		}),
		"missing": filepath.Join(t.TempDir(), "nope.idx"),
	}
	for name, path := range cases {
		var out strings.Builder
		if err := run([]string{"-index", path, example, lakeDir}, &out); err != nil {
			t.Errorf("%s: indexed run failed instead of falling back: %v", name, err)
			continue
		}
		got := out.String()
		if !strings.Contains(got, "falling back to full scan") {
			t.Errorf("%s: no fallback warning:\n%s", name, got)
		}
		if !strings.Contains(got, "twin.csv") {
			t.Errorf("%s: fallback scan lost the ranking:\n%s", name, got)
		}
	}
}

func TestRunIndexReadFlagsMismatch(t *testing.T) {
	// An index built under -anon-nulls describes different sketches than a
	// plain query would compute; the query must warn and fall back to a
	// full scan rather than prune against incompatible sketches.
	example, lakeDir, idx := setupBigLake(t)
	if err := run([]string{"-build-index", "-index", idx, "-anon-nulls", lakeDir}, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	if err := run([]string{"-min-overlap", "0", "-index", idx, example, lakeDir}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "falling back to full scan") {
		t.Errorf("flags mismatch not warned about:\n%s", got)
	}
	if !strings.Contains(got, `"anon-nulls"`) || !strings.Contains(got, `"none"`) {
		t.Errorf("warning does not name both option sets:\n%s", got)
	}
	if strings.Contains(got, "(pruned)") {
		t.Errorf("mismatched index still pruned candidates:\n%s", got)
	}
	lines := strings.Split(strings.TrimSpace(got), "\n")
	if !strings.Contains(lines[0], "index ") {
		t.Errorf("warning missing:\n%s", got)
	}
	// lines[0] is the warning, lines[1] the table header.
	if !strings.HasPrefix(lines[2], "twin.csv") {
		t.Errorf("fallback scan lost the ranking:\n%s", got)
	}

	// Matching options: the index is honored.
	var ok strings.Builder
	if err := run([]string{"-min-overlap", "0", "-index", idx, "-anon-nulls", example, lakeDir}, &ok); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ok.String(), "index: compared") {
		t.Errorf("matching options did not use the index:\n%s", ok.String())
	}
}

func TestRunBuildIndexErrors(t *testing.T) {
	_, lakeDir, idx := setupBigLake(t)
	if err := run([]string{"-build-index", lakeDir}, &strings.Builder{}); err == nil {
		t.Error("-build-index without -index accepted")
	}
	if err := run([]string{"-build-index", "-index", idx}, &strings.Builder{}); err == nil {
		t.Error("-build-index without a lake dir accepted")
	}
	if err := run([]string{"-build-index", "-index", idx, t.TempDir()}, &strings.Builder{}); err == nil {
		t.Error("-build-index over an empty dir accepted")
	}
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func setupLake(t *testing.T) (string, string) {
	t.Helper()
	dir := t.TempDir()
	example := filepath.Join(dir, "example.csv")
	write(t, example, "Name,Year\nVLDB,1975\nSIGMOD,1976\n")
	lakeDir := filepath.Join(dir, "lake")
	write(t, filepath.Join(lakeDir, "twin.csv"), "Name,Year\nSIGMOD,1976\nVLDB,1975\n")
	write(t, filepath.Join(lakeDir, "partial.csv"), "Name,Year\nVLDB,_:N1\nICDE,1984\n")
	write(t, filepath.Join(lakeDir, "unrelated.csv"), "Name,Year\nfoo,1\nbar,2\n")
	write(t, filepath.Join(lakeDir, "nested", "conf.csv"), "Name,Year\nVLDB,1975\n")
	write(t, filepath.Join(lakeDir, "notes.txt"), "not a dataset")
	return example, lakeDir
}

func TestRunRanksLake(t *testing.T) {
	example, lakeDir := setupLake(t)
	var out strings.Builder
	if err := run([]string{example, lakeDir}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	lines := strings.Split(strings.TrimSpace(got), "\n")
	if len(lines) != 5 { // header + 4 datasets (txt skipped)
		t.Fatalf("lines = %d:\n%s", len(lines), got)
	}
	if !strings.HasPrefix(lines[1], "twin.csv") {
		t.Errorf("twin should rank first:\n%s", got)
	}
	if !strings.Contains(lines[1], "1.0000") {
		t.Errorf("twin score should be 1:\n%s", got)
	}
	if !strings.Contains(got, "nested") {
		t.Errorf("nested dataset missing:\n%s", got)
	}
}

func TestRunTopAndPrefilter(t *testing.T) {
	example, lakeDir := setupLake(t)
	var out strings.Builder
	if err := run([]string{"-top", "1", "-min-overlap", "0.3", example, lakeDir}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("-top 1 printed %d lines:\n%s", len(lines), out.String())
	}
}

func TestRunStatsFlag(t *testing.T) {
	example, lakeDir := setupLake(t)
	var out strings.Builder
	if err := run([]string{"-stats", example, lakeDir}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "stats twin.csv") {
		t.Errorf("-stats printed no per-candidate line:\n%s", got)
	}
	if !strings.Contains(got, "attempts=") || !strings.Contains(got, "search=") {
		t.Errorf("stats line missing counters:\n%s", got)
	}
}

func TestRunLambdaFlag(t *testing.T) {
	example, lakeDir := setupLake(t)
	// partial.csv holds a null where the example has a constant; λ = 0
	// removes that cell's credit, so partial's score must drop.
	var def, zero strings.Builder
	if err := run([]string{example, lakeDir}, &def); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-lambda", "0", example, lakeDir}, &zero); err != nil {
		t.Fatal(err)
	}
	score := func(s, name string) string {
		for _, line := range strings.Split(s, "\n") {
			if strings.HasPrefix(line, name) {
				return strings.Fields(line)[1]
			}
		}
		t.Fatalf("%s missing:\n%s", name, s)
		return ""
	}
	d, z := score(def.String(), "partial.csv"), score(zero.String(), "partial.csv")
	if d <= z {
		t.Errorf("λ=0 should lower partial.csv's score: default %s, zero %s", d, z)
	}
	if score(def.String(), "twin.csv") != score(zero.String(), "twin.csv") {
		t.Error("λ=0 changed a null-free candidate's score")
	}
}

func TestRunCandidateTimeout(t *testing.T) {
	example, lakeDir := setupLake(t)
	var out strings.Builder
	if err := run([]string{"-candidate-timeout", "1ns", example, lakeDir}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "(timeout)") {
		t.Errorf("no candidate marked (timeout):\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	example, lakeDir := setupLake(t)
	if err := run([]string{example}, &strings.Builder{}); err == nil {
		t.Error("missing lake dir not reported")
	}
	if err := run([]string{example, filepath.Join(lakeDir, "missing")}, &strings.Builder{}); err == nil {
		t.Error("unreadable lake not reported")
	}
	empty := t.TempDir()
	if err := run([]string{example, empty}, &strings.Builder{}); err == nil {
		t.Error("empty lake not reported")
	}
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func setupLake(t *testing.T) (string, string) {
	t.Helper()
	dir := t.TempDir()
	example := filepath.Join(dir, "example.csv")
	write(t, example, "Name,Year\nVLDB,1975\nSIGMOD,1976\n")
	lakeDir := filepath.Join(dir, "lake")
	write(t, filepath.Join(lakeDir, "twin.csv"), "Name,Year\nSIGMOD,1976\nVLDB,1975\n")
	write(t, filepath.Join(lakeDir, "partial.csv"), "Name,Year\nVLDB,_:N1\nICDE,1984\n")
	write(t, filepath.Join(lakeDir, "unrelated.csv"), "Name,Year\nfoo,1\nbar,2\n")
	write(t, filepath.Join(lakeDir, "nested", "conf.csv"), "Name,Year\nVLDB,1975\n")
	write(t, filepath.Join(lakeDir, "notes.txt"), "not a dataset")
	return example, lakeDir
}

func TestRunRanksLake(t *testing.T) {
	example, lakeDir := setupLake(t)
	var out strings.Builder
	if err := run([]string{example, lakeDir}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	lines := strings.Split(strings.TrimSpace(got), "\n")
	if len(lines) != 5 { // header + 4 datasets (txt skipped)
		t.Fatalf("lines = %d:\n%s", len(lines), got)
	}
	if !strings.HasPrefix(lines[1], "twin.csv") {
		t.Errorf("twin should rank first:\n%s", got)
	}
	if !strings.Contains(lines[1], "1.0000") {
		t.Errorf("twin score should be 1:\n%s", got)
	}
	if !strings.Contains(got, "nested") {
		t.Errorf("nested dataset missing:\n%s", got)
	}
}

func TestRunTopAndPrefilter(t *testing.T) {
	example, lakeDir := setupLake(t)
	var out strings.Builder
	if err := run([]string{"-top", "1", "-min-overlap", "0.3", example, lakeDir}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("-top 1 printed %d lines:\n%s", len(lines), out.String())
	}
}

func TestRunErrors(t *testing.T) {
	example, lakeDir := setupLake(t)
	if err := run([]string{example}, &strings.Builder{}); err == nil {
		t.Error("missing lake dir not reported")
	}
	if err := run([]string{example, filepath.Join(lakeDir, "missing")}, &strings.Builder{}); err == nil {
		t.Error("unreadable lake not reported")
	}
	empty := t.TempDir()
	if err := run([]string{example, empty}, &strings.Builder{}); err == nil {
		t.Error("empty lake not reported")
	}
}

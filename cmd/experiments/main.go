// Command experiments regenerates the tables and figures of "Similarity
// Measures For Incomplete Database Instances" (EDBT 2024).
//
// Usage:
//
//	experiments [flags] <experiment> [<experiment> ...]
//	experiments [flags] all
//
// Experiments: table1 table2 table3 table4 table5 table6 table7 fig8
// ablation-nullattrs.
//
// Flags control scale so a laptop run finishes in minutes; pass
// -sizes/-rows matching the paper to reproduce full-scale numbers.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"instcmp/internal/experiments"
	"instcmp/internal/tablefmt"
)

func main() {
	var (
		seed      = flag.Int64("seed", 42, "random seed for all generators")
		lambda    = flag.Float64("lambda", 0.5, "null-to-constant penalty λ (0 ≤ λ < 1)")
		sizes     = flag.String("sizes", "500,1000,5000", "per-side row counts for tables 2 and 3 (paper: 500,1000,5000,10000,100000)")
		rows      = flag.Int("rows", 1000, "row count for table 4, fig 8, and the null-attribute ablation")
		busRows   = flag.Int("bus-rows", 20000, "row count for table 5 (paper: 20000)")
		exSizes   = flag.String("exchange-sizes", "1000,2000", "source sizes for table 6")
		verRows   = flag.Int("versioning-rows", 0, "row count for table 7 (0 = paper sizes: Iris 120, NBA 9360)")
		exactRows = flag.Int("exact-max-rows", 1000, "run the exact algorithm for configurations up to this many rows (0 = never; larger rows report the score by construction, the paper's *)")
		exactTO   = flag.Duration("exact-timeout", 60*time.Second, "budget per exact run")
		exactW    = flag.Int("exact-workers", 0, "exact-search workers (0 = GOMAXPROCS)")
		sigW      = flag.Int("sig-workers", 0, "signature-pipeline workers per comparison (0 = GOMAXPROCS, 1 = sequential; scores are identical either way)")
		noWarm    = flag.Bool("exact-no-warm-start", false, "disable the exact search's signature warm start (ablation)")
		stats     = flag.Bool("stats", false, "print cumulative engine counters (expvar) after each experiment")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	cfg := experiments.Config{
		Seed:             *seed,
		Lambda:           *lambda,
		ExactMaxRows:     *exactRows,
		ExactTimeout:     *exactTO,
		ExactWorkers:     *exactW,
		ExactNoWarmStart: *noWarm,
		SigWorkers:       *sigW,
	}

	args := flag.Args()
	if len(args) == 1 && args[0] == "all" {
		args = []string{"table1", "table2", "table3", "table4", "table5", "table6", "table7", "fig8", "ablation-nullattrs"}
	}
	for _, name := range args {
		start := time.Now()
		var err error
		switch name {
		case "table1":
			err = runTable1(cfg)
		case "table2":
			err = runScores(cfg, 2, parseSizes(*sizes))
		case "table3":
			err = runScores(cfg, 3, parseSizes(*sizes))
		case "table4":
			err = runTable4(cfg, *rows)
		case "table5":
			err = runTable5(cfg, *busRows)
		case "table6":
			err = runTable6(cfg, parseSizes(*exSizes))
		case "table7":
			err = runTable7(cfg, *verRows)
		case "fig8":
			err = runFig8(cfg, *rows)
		case "ablation-nullattrs":
			err = runNullAttrs(cfg, *rows)
		default:
			err = fmt.Errorf("unknown experiment %q", name)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		if *stats {
			printEngineStats(os.Stdout)
		}
		fmt.Printf("(%s finished in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}

// printEngineStats dumps the engines' cumulative expvar counters — the same
// maps a long-running process would expose over /debug/vars.
func printEngineStats(w io.Writer) {
	for _, name := range []string{"instcmp.api", "instcmp.exact", "instcmp.signature", "instcmp.lake"} {
		m, ok := expvar.Get(name).(*expvar.Map)
		if !ok {
			continue
		}
		fmt.Fprintf(w, "%s:", name)
		m.Do(func(kv expvar.KeyValue) {
			fmt.Fprintf(w, " %s=%s", kv.Key, kv.Value)
		})
		fmt.Fprintln(w)
	}
}

func parseSizes(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "experiments: bad size %q\n", part)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}

func runTable1(cfg experiments.Config) error {
	rows, err := experiments.RunTable1(cfg, 0)
	if err != nil {
		return err
	}
	t := tablefmt.New("Table 1: Statistics for the (synthesized) datasets.",
		"Dataset", "Rows", "#Distinct val.", "Attrs")
	for _, r := range rows {
		t.Add(r.Dataset, r.Rows, r.DistinctVal, r.Attrs)
	}
	t.Render(os.Stdout)
	return nil
}

func runScores(cfg experiments.Config, table int, sizes []int) error {
	var rows []experiments.ScoreRow
	var err error
	title := "Table 2: Exact (Ex) vs Signature (Sig). Noise: 5% modCell, functional and injective (1 to 1)."
	if table == 2 {
		rows, err = experiments.RunTable2(cfg, sizes)
	} else {
		title = "Table 3: Exact (Ex) vs Signature (Sig). Noise: 5% + addRandomAndRedundant, non-functional and non-injective (n to m)."
		rows, err = experiments.RunTable3(cfg, sizes)
	}
	if err != nil {
		return err
	}
	t := tablefmt.New(title+"\n* = score by construction (exact not run at this size)",
		"Data", "#T", "#C", "#V", "#T'", "#C'", "#V'", "Ex Score", "Sig Score", "Diff", "Sig T(s)", "Ex T(s)")
	for _, r := range rows {
		ex := fmt.Sprintf("%.3f", r.ExScore)
		exT := "-"
		if r.ByConstruction {
			ex += "*"
		}
		if r.ExTime > 0 {
			exT = fmt.Sprintf("%.1f", r.ExTime.Seconds())
			if !r.ExExhaustive {
				exT += ">"
			}
		}
		t.AddStrings(r.Dataset,
			fmt.Sprint(r.Source.Tuples), fmt.Sprint(r.Source.Consts), fmt.Sprint(r.Source.Nulls),
			fmt.Sprint(r.Target.Tuples), fmt.Sprint(r.Target.Consts), fmt.Sprint(r.Target.Nulls),
			ex, fmt.Sprintf("%.3f", r.SigScore), fmt.Sprintf("%.3f", r.Diff),
			fmt.Sprintf("%.1f", r.SigTime.Seconds()), exT)
	}
	t.Render(os.Stdout)
	return nil
}

func runTable4(cfg experiments.Config, rows int) error {
	res, err := experiments.RunTable4(cfg, rows)
	if err != nil {
		return err
	}
	t := tablefmt.New("Table 4: Impact of CompatibleTuples in the Signature Algorithm.",
		"Dataset", "% Matches SB", "% Matches Ex", "Score SB", "Score Final")
	for _, r := range res {
		t.AddStrings(fmt.Sprintf("%s %d", r.Dataset, rows),
			fmt.Sprintf("%.2f", r.PctSig), fmt.Sprintf("%.2f", r.PctExact),
			fmt.Sprintf("%.3f", r.ScoreSig), fmt.Sprintf("%.3f", r.ScoreFinal))
	}
	t.Render(os.Stdout)
	return nil
}

func runTable5(cfg experiments.Config, rows int) error {
	res, err := experiments.RunTable5(cfg, rows)
	if err != nil {
		return err
	}
	t := tablefmt.New("Table 5: Data Cleaning — F1, F1 Instance, and Signature score.",
		"Dataset", "System", "F1", "F1 Inst.", "Sig Score")
	for _, r := range res {
		t.Add(r.Dataset, r.System, r.F1, r.F1Inst, r.SigScore)
	}
	t.Render(os.Stdout)
	return nil
}

func runTable6(cfg experiments.Config, sizes []int) error {
	res, err := experiments.RunTable6(cfg, sizes)
	if err != nil {
		return err
	}
	t := tablefmt.New("Table 6: Data Exchange — Wrong (W) and user (U1, U2) mappings vs the core solution (gold).",
		"Scenario", "#T", "#C", "#V", "Gold #T", "Gold #C", "Gold #V", "Miss. Rows", "Row Score", "Sig Score", "Universal")
	for _, r := range res {
		t.AddStrings(r.Scenario,
			fmt.Sprint(r.Solution.Tuples), fmt.Sprint(r.Solution.Consts), fmt.Sprint(r.Solution.Nulls),
			fmt.Sprint(r.Gold.Tuples), fmt.Sprint(r.Gold.Consts), fmt.Sprint(r.Gold.Nulls),
			fmt.Sprint(r.MissingRows),
			fmt.Sprintf("%.2f", r.RowScore), fmt.Sprintf("%.2f", r.SigScore),
			fmt.Sprint(r.SolutionUniversal))
	}
	t.Render(os.Stdout)
	return nil
}

func runTable7(cfg experiments.Config, rows int) error {
	res, err := experiments.RunTable7(cfg, rows)
	if err != nil {
		return err
	}
	t := tablefmt.New("Table 7: Data Versioning — diff vs Signature on S/R/RS/C variants.",
		"Orig.", "Mod.", "#TO", "#TM",
		"diff #M", "diff #LNM", "diff #RNM",
		"Sig #M", "Sig #LNM", "Sig #RNM")
	for _, r := range res {
		t.Add(r.Dataset, r.Dataset+"-"+r.Variant, r.TO, r.TM,
			r.Diff.Matched, r.Diff.LeftNonMatch, r.Diff.RightNonMatch,
			r.Sig.Matched, r.Sig.LeftNonMatch, r.Sig.RightNonMatch)
	}
	t.Render(os.Stdout)
	return nil
}

func runFig8(cfg experiments.Config, rows int) error {
	pts, err := experiments.RunFigure8(cfg, rows, nil)
	if err != nil {
		return err
	}
	t := tablefmt.New(fmt.Sprintf("Figure 8: Sig score difference vs %% of changed cells (instances of %d rows).", rows),
		"Dataset", "C%", "Sig Score Difference")
	for _, p := range pts {
		t.AddStrings(p.Dataset, fmt.Sprintf("%.0f", p.CellPct*100), fmt.Sprintf("%.4f", p.Diff))
	}
	t.Render(os.Stdout)
	return nil
}

func runNullAttrs(cfg experiments.Config, rows int) error {
	pts, err := experiments.RunAblationNullAttrs(cfg, rows)
	if err != nil {
		return err
	}
	t := tablefmt.New("Ablation: number of null-bearing attributes vs Signature (fixed 5% cell budget, Bike).",
		"Dataset", "#Null Attrs", "Score Diff", "Sig T(s)")
	for _, p := range pts {
		t.AddStrings(p.Dataset, fmt.Sprint(p.NullAttrs),
			fmt.Sprintf("%.4f", p.Diff), fmt.Sprintf("%.2f", p.SigTime.Seconds()))
	}
	t.Render(os.Stdout)
	return nil
}

// Command instcmp-serve runs the resident-registry comparison service:
// instances are registered once over HTTP, kept resident in prepared form,
// and compared many times without per-request normalization or coding.
//
//	instcmp-serve -addr :8080 -workers 8
//
// Endpoints (JSON; "_:" marks labeled nulls in cells):
//
//	GET    /healthz              liveness + instance count
//	GET    /v1/instances         list registered instances
//	POST   /v1/instances         register {"name": ..., "instance": {...}}
//	GET    /v1/instances/{name}  one instance's summary
//	DELETE /v1/instances/{name}  drop an instance
//	POST   /v1/compare           {"left","right","options"} -> score
//	POST   /v1/explain           compare + tuple pairs and value mappings
//	POST   /v1/rank              {"example","candidates","options"} -> ranking
//	GET    /debug/vars           expvar counters (instcmp.api/serve/...)
//
// Comparison requests honor options.timeout_ms as an anytime deadline: an
// expired request answers with the best match found so far and "stopped"
// set, it does not fail.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"instcmp/internal/serve"
)

func main() {
	fs := flag.NewFlagSet("instcmp-serve", flag.ExitOnError)
	var (
		addr     = fs.String("addr", ":8080", "listen address")
		workers  = fs.Int("workers", 0, "max concurrently running comparison requests (0 = GOMAXPROCS)")
		maxBody  = fs.Int64("max-body", 0, "max request body bytes (0 = 64 MiB)")
		shutdown = fs.Duration("shutdown-grace", 10*time.Second, "graceful shutdown grace period")
	)
	fs.Parse(os.Args[1:])

	srv := serve.New(serve.NewRegistry(), serve.Options{
		Workers:      *workers,
		MaxBodyBytes: *maxBody,
	})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("instcmp-serve listening on %s", *addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatalf("instcmp-serve: %v", err)
	case sig := <-sigc:
		log.Printf("instcmp-serve: %v, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *shutdown)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "instcmp-serve: shutdown: %v\n", err)
			os.Exit(1)
		}
	}
}

// Command serveload is the load harness for instcmp-serve: it generates a
// fleet of instances, registers them, replays a mixed stream of compare and
// rank requests at a fixed concurrency, and reports latency percentiles and
// degradation counts.
//
// With -addr it targets a running server; without it, it starts the service
// in-process on a loopback listener and drives it over real HTTP — the form
// CI uses as a smoke test.
//
// A fraction of requests (-degrade-pct) carry an anytime budget (a 1 ms
// request deadline, a 1-node exact budget, or a 1 ms per-candidate rank
// budget). Those must come back as degraded 200 responses ("stopped" set,
// or timed-out rank candidates), not errors: serveload exits non-zero on
// any request error, and also when degradation was requested but never
// observed (the anytime contract would be broken).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"instcmp/internal/serve"
)

func main() {
	fs := flag.NewFlagSet("serveload", flag.ExitOnError)
	var (
		addr        = fs.String("addr", "", "target server address (empty = start the service in-process)")
		instances   = fs.Int("instances", 120, "number of generated instances to register")
		rows        = fs.Int("rows", 40, "rows per generated instance")
		requests    = fs.Int("requests", 2000, "number of mixed requests to replay")
		concurrency = fs.Int("concurrency", runtime.GOMAXPROCS(0), "concurrent client connections")
		rankPct     = fs.Float64("rank-pct", 0.15, "fraction of requests that are rankings")
		rankCands   = fs.Int("rank-candidates", 8, "candidates per ranking request")
		rankTop     = fs.Int("rank-top", 0, "top_k for rank requests (0 = lake default); with -rank-shortlist it sizes the sketch-index shortlist")
		rankShort   = fs.Int("rank-shortlist", 0, "min_shortlist for rank requests (0 = lake default); set low to exercise the sketch-index path on small lakes")
		degradePct  = fs.Float64("degrade-pct", 0.15, "fraction of requests carrying an anytime budget")
		seed        = fs.Int64("seed", 1, "generation seed")
	)
	fs.Parse(os.Args[1:])

	base := *addr
	if base == "" {
		reg := serve.NewRegistry()
		srv := serve.New(reg, serve.Options{Workers: *concurrency})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatalf("serveload: listen: %v", err)
		}
		go http.Serve(ln, srv.Handler())
		base = "http://" + ln.Addr().String()
		log.Printf("serveload: in-process server on %s (workers=%d)", base, *concurrency)
	} else if base[0] == ':' {
		base = "http://127.0.0.1" + base
	} else {
		base = "http://" + base
	}
	c := &client{base: base, hc: &http.Client{Timeout: 60 * time.Second}}

	rng := rand.New(rand.NewSource(*seed))
	names := make([]string, *instances)
	regStart := time.Now()
	for i := range names {
		names[i] = fmt.Sprintf("t%03d", i)
		req := serve.RegisterRequest{Name: names[i], Instance: genInstance(i, *rows, rng)}
		status, body, err := c.post("/v1/instances", req)
		if err != nil || status != http.StatusCreated {
			log.Fatalf("serveload: register %s: status %d err %v body %s", names[i], status, err, body)
		}
	}
	log.Printf("serveload: registered %d instances (%d rows each) in %v",
		*instances, *rows, time.Since(regStart).Round(time.Millisecond))

	plan := makePlan(names, *requests, *rankPct, *rankCands, *rankTop, *rankShort, *degradePct, rng)
	var (
		mu        sync.Mutex
		lats      []time.Duration
		stopped   int
		timedOut  int
		pruned    int
		indexed   int
		nErrs     int
		nCompares int
		nRanks    int
	)
	work := make(chan request)
	var wg sync.WaitGroup
	loadStart := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for req := range work {
				t0 := time.Now()
				st, to, pr, isRank, ixd, err := c.replay(req)
				lat := time.Since(t0)
				mu.Lock()
				lats = append(lats, lat)
				if err != nil {
					nErrs++
					log.Printf("serveload: request error: %v", err)
				}
				if isRank {
					nRanks++
				} else {
					nCompares++
				}
				if st {
					stopped++
				}
				timedOut += to
				pruned += pr
				if ixd {
					indexed++
				}
				mu.Unlock()
			}
		}()
	}
	for _, req := range plan {
		work <- req
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(loadStart)

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	fmt.Printf("serveload: %d requests (%d compare, %d rank) at concurrency %d in %v (%.1f req/s)\n",
		len(plan), nCompares, nRanks, *concurrency,
		elapsed.Round(time.Millisecond), float64(len(plan))/elapsed.Seconds())
	fmt.Printf("latency: p50 %v  p90 %v  p99 %v  max %v\n",
		pct(lats, 0.50), pct(lats, 0.90), pct(lats, 0.99), pct(lats, 1.00))
	fmt.Printf("degraded: %d stopped responses, %d timed-out rank candidates, %d pruned rank candidates\n",
		stopped, timedOut, pruned)
	fmt.Printf("rank path: %d of %d rankings used the sketch index\n", indexed, nRanks)
	fmt.Printf("errors: %d\n", nErrs)
	if nErrs > 0 {
		os.Exit(1)
	}
	if *degradePct > 0 && stopped+timedOut == 0 {
		fmt.Println("serveload: degradation was requested but never observed — anytime contract broken")
		os.Exit(1)
	}
}

// request is one planned load request.
type request struct {
	compare *serve.CompareRequest
	rank    *serve.RankRequest
}

// makePlan builds a deterministic mixed request stream.
func makePlan(names []string, n int, rankPct float64, rankCands, rankTop, rankShort int, degradePct float64, rng *rand.Rand) []request {
	plan := make([]request, 0, n)
	for i := 0; i < n; i++ {
		degrade := rng.Float64() < degradePct
		if rng.Float64() < rankPct {
			req := &serve.RankRequest{
				Example:         names[rng.Intn(len(names))],
				MinValueOverlap: 0.05,
				Workers:         2,
				TopK:            rankTop,
				MinShortlist:    rankShort,
				Options:         serve.WireOptions{SigWorkers: 1},
			}
			for j := 0; j < rankCands; j++ {
				cand := names[rng.Intn(len(names))]
				if cand != req.Example {
					req.Candidates = append(req.Candidates, cand)
				}
			}
			if degrade {
				req.PerCandidateTimeoutMS = 1
			}
			plan = append(plan, request{rank: req})
			continue
		}
		l := rng.Intn(len(names))
		r := rng.Intn(len(names))
		if r == l {
			r = (r + 1) % len(names)
		}
		req := &serve.CompareRequest{Left: names[l], Right: names[r]}
		if degrade {
			// Alternate between the two anytime budgets: a request
			// deadline (the engines poll and stop) and an exact node
			// budget (stops after one search node, deterministically).
			if rng.Intn(2) == 0 {
				req.Options.TimeoutMS = 1
			} else {
				req.Options.Algorithm = "exact"
				req.Options.ExactMaxNodes = 1
			}
		}
		plan = append(plan, request{compare: req})
	}
	return plan
}

// genInstance builds one single-relation instance: constants drawn from a
// pool shared across instances (so rankings have real overlap), nulls from
// a per-instance namespace (so prepared instances compare on the fast path,
// without per-request null renaming).
func genInstance(idx, rows int, rng *rand.Rand) serve.WireInstance {
	attrs := []string{"a", "b", "c", "d"}
	rel := serve.WireRelation{Name: "data", Attrs: attrs}
	pool := rows * 3
	nulls := 0
	for r := 0; r < rows; r++ {
		row := make([]string, len(attrs))
		for c := range row {
			switch {
			case rng.Float64() < 0.12 && nulls > 0 && rng.Float64() < 0.3:
				row[c] = fmt.Sprintf("_:i%d_n%d", idx, rng.Intn(nulls))
			case rng.Float64() < 0.12:
				row[c] = fmt.Sprintf("_:i%d_n%d", idx, nulls)
				nulls++
			default:
				row[c] = fmt.Sprintf("v%d", rng.Intn(pool))
			}
		}
		rel.Tuples = append(rel.Tuples, row)
	}
	return serve.WireInstance{Relations: []serve.WireRelation{rel}}
}

// client is a minimal JSON POST client.
type client struct {
	base string
	hc   *http.Client
}

func (c *client) post(path string, body any) (int, []byte, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return 0, nil, err
	}
	resp, err := c.hc.Post(c.base+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	return resp.StatusCode, out, err
}

// replay sends one planned request and classifies the outcome: stopped
// response, timed-out/pruned rank candidates, or an error.
func (c *client) replay(req request) (stopped bool, timedOut, pruned int, isRank, indexed bool, err error) {
	if req.compare != nil {
		status, body, err := c.post("/v1/compare", req.compare)
		if err != nil {
			return false, 0, 0, false, false, err
		}
		if status != http.StatusOK {
			return false, 0, 0, false, false, fmt.Errorf("compare %s/%s: status %d: %s",
				req.compare.Left, req.compare.Right, status, body)
		}
		var out serve.CompareResponse
		if err := json.Unmarshal(body, &out); err != nil {
			return false, 0, 0, false, false, fmt.Errorf("compare response: %v", err)
		}
		return out.Stopped != "", 0, 0, false, false, nil
	}
	status, body, err := c.post("/v1/rank", req.rank)
	if err != nil {
		return false, 0, 0, true, false, err
	}
	if status != http.StatusOK {
		return false, 0, 0, true, false, fmt.Errorf("rank %s: status %d: %s", req.rank.Example, status, body)
	}
	var out serve.RankResponse
	if err := json.Unmarshal(body, &out); err != nil {
		return false, 0, 0, true, false, fmt.Errorf("rank response: %v", err)
	}
	for _, r := range out.Results {
		if r.TimedOut {
			timedOut++
		}
		if r.Pruned {
			pruned++
		}
	}
	return false, timedOut, pruned, true, !out.Index.FullScan, nil
}

// pct returns the q-quantile of sorted latencies.
func pct(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i].Round(10 * time.Microsecond)
}

// Command expgen generates benchmark comparison scenarios as CSV files: a
// source and a target instance derived from one of the paper's base
// datasets with modCell / addRandomAndRedundant noise (Sec. 7.1), plus the
// gold tuple mapping.
//
// Usage:
//
//	expgen -dataset Doct -rows 1000 -cells 0.05 -out ./scenario
//
// writes ./scenario/source/<rel>.csv, ./scenario/target/<rel>.csv, and
// ./scenario/gold_pairs.csv (left tuple index, right tuple index — indexes
// are positions in the shuffled CSVs' row order).
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"instcmp/internal/csvio"
	"instcmp/internal/datasets"
	"instcmp/internal/generator"
	"instcmp/internal/model"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "expgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("expgen", flag.ContinueOnError)
	var (
		dataset = fs.String("dataset", "Doct", "base dataset: Doct, Bike, Git, Bus, Iris, Nba")
		rows    = fs.Int("rows", 1000, "base rows (0 = the dataset's Table 1 default)")
		cells   = fs.Float64("cells", 0.05, "fraction of cells to modify (C%)")
		rnd     = fs.Float64("random", 0, "fraction of random tuples to add (Rnd%)")
		red     = fs.Float64("redundant", 0, "fraction of tuples to duplicate (Red%)")
		seed    = fs.Int64("seed", 42, "random seed")
		out     = fs.String("out", "scenario", "output directory")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	base, err := datasets.Generate(datasets.Name(*dataset), *rows, *seed)
	if err != nil {
		return err
	}
	sc := generator.Make(base, generator.Noise{
		CellPct:      *cells,
		NullReuse:    0.3,
		RandomPct:    *rnd,
		RedundantPct: *red,
		Seed:         *seed,
	})

	if err := csvio.WriteDir(filepath.Join(*out, "source"), sc.Source); err != nil {
		return err
	}
	if err := csvio.WriteDir(filepath.Join(*out, "target"), sc.Target); err != nil {
		return err
	}
	if err := writeGold(filepath.Join(*out, "gold_pairs.csv"), sc); err != nil {
		return err
	}

	srcStats, tgtStats := sc.Source.Stats(), sc.Target.Stats()
	fmt.Fprintf(stdout, "wrote %s: source %d tuples (%d nulls), target %d tuples (%d nulls), %d gold pairs\n",
		*out, srcStats.Tuples, srcStats.NullCells, tgtStats.Tuples, tgtStats.NullCells, len(sc.GoldPairs))
	return nil
}

// writeGold records the gold mapping as row positions within each side's
// CSV export order.
func writeGold(path string, sc *generator.Scenario) error {
	pos := map[model.TupleID]int{}
	record := func(in *model.Instance) {
		i := 0
		for _, rel := range in.Relations() {
			for _, t := range rel.Tuples {
				pos[t.ID] = i
				i++
			}
		}
	}
	record(sc.Source)
	record(sc.Target)

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write([]string{"left_row", "right_row"}); err != nil {
		return err
	}
	for _, p := range sc.GoldPairs {
		rec := []string{strconv.Itoa(pos[p.Left]), strconv.Itoa(pos[p.Right])}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

package main

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"instcmp"
)

func TestRunGeneratesScenario(t *testing.T) {
	out := filepath.Join(t.TempDir(), "sc")
	var buf strings.Builder
	err := run([]string{"-dataset", "Iris", "-rows", "50", "-cells", "0.1", "-seed", "7", "-out", out}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "50 tuples") {
		t.Errorf("summary wrong: %s", buf.String())
	}

	src, err := instcmp.LoadCSVDir(filepath.Join(out, "source"), instcmp.CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := instcmp.LoadCSVDir(filepath.Join(out, "target"), instcmp.CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if src.NumTuples() != 50 || tgt.NumTuples() != 50 {
		t.Errorf("tuples = %d / %d", src.NumTuples(), tgt.NumTuples())
	}
	if len(src.Vars()) == 0 {
		t.Error("source lost its injected nulls in CSV")
	}

	// The gold mapping's row positions must be in range and the mapped
	// rows compatible enough to score well.
	f, err := os.Open(filepath.Join(out, "gold_pairs.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 51 { // header + 50 pairs
		t.Fatalf("gold rows = %d", len(recs))
	}
	for _, rec := range recs[1:] {
		l, err1 := strconv.Atoi(rec[0])
		r, err2 := strconv.Atoi(rec[1])
		if err1 != nil || err2 != nil || l < 0 || l >= 50 || r < 0 || r >= 50 {
			t.Fatalf("bad gold record %v", rec)
		}
	}

	s, err := instcmp.Similarity(src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if s < 0.5 {
		t.Errorf("generated scenario similarity = %v, want moderate", s)
	}
}

func TestRunRejectsUnknownDataset(t *testing.T) {
	if err := run([]string{"-dataset", "Nope", "-out", t.TempDir()}, &strings.Builder{}); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	a, b := filepath.Join(t.TempDir(), "a"), filepath.Join(t.TempDir(), "b")
	for _, out := range []string{a, b} {
		if err := run([]string{"-dataset", "Iris", "-rows", "30", "-seed", "9", "-out", out}, &strings.Builder{}); err != nil {
			t.Fatal(err)
		}
	}
	fa, err := os.ReadFile(filepath.Join(a, "source", "Iris.csv"))
	if err != nil {
		t.Fatal(err)
	}
	fb, err := os.ReadFile(filepath.Join(b, "source", "Iris.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(fa) != string(fb) {
		t.Error("same seed produced different scenario files")
	}
}

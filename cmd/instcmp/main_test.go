package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeCSV(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunBasicComparison(t *testing.T) {
	dir := t.TempDir()
	l := writeCSV(t, dir, "left.csv", "Name,Year\nVLDB,1975\nSIGMOD,_:N1\n")
	r := writeCSV(t, dir, "right.csv", "Name,Year\nVLDB,1975\nSIGMOD,1976\n")
	var out strings.Builder
	if err := run([]string{l, r}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"similarity:", "matched: 2", "_:N1 -> 1976"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunReportMode(t *testing.T) {
	dir := t.TempDir()
	l := writeCSV(t, dir, "left.csv", "Name,Year\nVLDB,1975\nGONE,1960\n")
	r := writeCSV(t, dir, "right.csv", "Name,Year\nVLDB,1975\nNEW,2024\n")
	var out strings.Builder
	if err := run([]string{"-report", l, r}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"1 identical", "1 removed, 1 added", "- left", "+ left"} {
		if !strings.Contains(got, want) {
			t.Errorf("report missing %q:\n%s", want, got)
		}
	}
}

func TestRunDirectoryInputs(t *testing.T) {
	ldir, rdir := t.TempDir(), t.TempDir()
	writeCSV(t, ldir, "conf.csv", "Name\nVLDB\n")
	writeCSV(t, rdir, "conf.csv", "Name\nVLDB\n")
	var out strings.Builder
	if err := run([]string{ldir, rdir}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "similarity: 1.000000") {
		t.Errorf("directory comparison wrong:\n%s", out.String())
	}
}

func TestRunFuzzyPartial(t *testing.T) {
	dir := t.TempDir()
	l := writeCSV(t, dir, "l.csv", "Name,City\nalice,Boston\n")
	r := writeCSV(t, dir, "r.csv", "Name,City\nalice,Bostom\n")
	var strict, fuzzy strings.Builder
	if err := run([]string{l, r}, &strict); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-partial", "-fuzzy", l, r}, &fuzzy); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strict.String(), "similarity: 0.000000") {
		t.Errorf("strict comparison should be 0:\n%s", strict.String())
	}
	if strings.Contains(fuzzy.String(), "similarity: 0.000000") {
		t.Errorf("fuzzy comparison should be positive:\n%s", fuzzy.String())
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	l := writeCSV(t, dir, "l.csv", "A\nx\n")
	cases := [][]string{
		{l},                                 // missing argument
		{"-mode", "bogus", l, l},            // bad mode
		{"-algo", "bogus", l, l},            // bad algorithm
		{l, filepath.Join(dir, "nope.csv")}, // missing file
	}
	for _, args := range cases {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}

func TestRunSchemaMismatchSuggestsAlign(t *testing.T) {
	dir := t.TempDir()
	l := writeCSV(t, dir, "l.csv", "A,B\nx,y\n")
	r := writeCSV(t, dir, "r.csv", "A\nx\n")
	var out strings.Builder
	if err := run([]string{l, r}, &out); err == nil {
		t.Fatal("schema mismatch not reported")
	}
	out.Reset()
	if err := run([]string{"-align-schemas", l, r}, &out); err != nil {
		t.Fatalf("align-schemas failed: %v", err)
	}
	if !strings.Contains(out.String(), "matched: 1") {
		t.Errorf("aligned comparison wrong:\n%s", out.String())
	}
}

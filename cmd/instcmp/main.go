// Command instcmp compares two database instances stored as CSV files and
// prints their similarity score together with the instance match that
// explains it: which tuples correspond, how labeled nulls were mapped, and
// which tuples have no counterpart.
//
// Usage:
//
//	instcmp [flags] <left.csv|leftdir> <right.csv|rightdir>
//
// A path may be a single CSV file (one relation) or a directory of CSV
// files (one relation per file). Cells starting with "_:" are labeled
// nulls; with -anon-nulls empty cells become fresh nulls.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"instcmp"
	"instcmp/internal/explain"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "instcmp:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("instcmp", flag.ContinueOnError)
	var (
		mode        = fs.String("mode", "1to1", `tuple-mapping mode: "1to1", "functional", or "ntom"`)
		algo        = fs.String("algo", "auto", `algorithm: "auto", "signature", or "exact"`)
		lambda      = fs.Float64("lambda", instcmp.DefaultLambda, "null-to-constant penalty λ (0 ≤ λ < 1)")
		timeout     = fs.Duration("exact-timeout", time.Minute, "budget for the exact algorithm")
		sigWorkers  = fs.Int("sig-workers", 0, "signature-pipeline workers (0 = GOMAXPROCS, 1 = sequential; the score is identical either way)")
		anonNulls   = fs.Bool("anon-nulls", false, "treat empty CSV cells as fresh labeled nulls")
		align       = fs.Bool("align-schemas", false, "pad missing relations/attributes with fresh nulls instead of failing")
		discover    = fs.Bool("discover-mapping", false, "discover an attribute mapping when schemas differ (renamed/reordered columns) and compare under it")
		partial     = fs.Bool("partial", false, "allow partial matches (tuples may conflict on constants)")
		fuzzy       = fs.Bool("fuzzy", false, "with -partial, score conflicting constants by Levenshtein similarity")
		explainFlag = fs.Bool("explain", true, "print the tuple mapping and value mappings")
		report      = fs.Bool("report", false, "print a versioning-style change report (added/removed/updated tuples)")
		maxShow     = fs.Int("max-show", 20, "maximum pairs/unmatched tuples to print per section")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return fmt.Errorf("expected two paths, got %d", fs.NArg())
	}

	left, err := load(fs.Arg(0), *anonNulls)
	if err != nil {
		return err
	}
	right, err := load(fs.Arg(1), *anonNulls)
	if err != nil {
		return err
	}
	// Two single-file inputs denote the same logical relation even when
	// the file names differ; align the relation name.
	if lr, rr := left.Relations(), right.Relations(); len(lr) == 1 && len(rr) == 1 && lr[0].Name != rr[0].Name {
		renamed := instcmp.NewInstance()
		nr := renamed.AddRelation(lr[0].Name, rr[0].Attrs...)
		nr.Tuples = rr[0].Tuples
		right = renamed
	}

	opt := &instcmp.Options{
		Lambda:          *lambda,
		ExactTimeout:    *timeout,
		AlignSchemas:    *align,
		DiscoverMapping: *discover,
		Partial:         *partial,
		SigWorkers:      *sigWorkers,
	}
	if *fuzzy {
		opt.ConstSimilarity = instcmp.Levenshtein
	}
	switch *mode {
	case "1to1":
		opt.Mode = instcmp.OneToOne
	case "functional":
		opt.Mode = instcmp.Functional
	case "ntom":
		opt.Mode = instcmp.ManyToMany
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	switch *algo {
	case "auto":
		opt.Algorithm = instcmp.AlgoAuto
	case "signature":
		opt.Algorithm = instcmp.AlgoSignature
	case "exact":
		opt.Algorithm = instcmp.AlgoExact
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}

	res, err := instcmp.Compare(left, right, opt)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "similarity: %.6f\n", res.Score)
	fmt.Fprintf(out, "algorithm:  %s", res.Algorithm)
	if res.Algorithm == instcmp.AlgoExact && !res.Exhaustive {
		fmt.Fprintf(out, " (budget hit; score is a lower bound)")
	}
	fmt.Fprintf(out, "  elapsed: %v\n", res.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(out, "matched: %d   left-unmatched: %d   right-unmatched: %d\n",
		len(res.Pairs), len(res.LeftUnmatched), len(res.RightUnmatched))
	if m := res.Mapping; m != nil {
		fmt.Fprintf(out, "\ndiscovered schema mapping (confidence %.2f):\n", m.Confidence)
		for _, rm := range m.Relations {
			fmt.Fprintf(out, "  %s -> %s:", rm.Left, rm.Right)
			for _, c := range rm.Columns {
				fmt.Fprintf(out, " %s=%s(%s)", c.Left, c.Right, c.Method)
			}
			fmt.Fprintln(out)
			if len(rm.LeftUnmapped) > 0 {
				fmt.Fprintf(out, "    left-only columns: %v\n", rm.LeftUnmapped)
			}
			if len(rm.RightUnmapped) > 0 {
				fmt.Fprintf(out, "    right-only columns: %v\n", rm.RightUnmapped)
			}
		}
	}

	if *report {
		rep, err := explain.FromResult(left, right, res)
		if err != nil {
			return err
		}
		fmt.Fprintln(out)
		fmt.Fprint(out, rep)
		return nil
	}
	if !*explainFlag {
		return nil
	}
	fmt.Fprintln(out, "\ntuple mapping (left id -> right id, pair score):")
	for i, p := range res.Pairs {
		if i == *maxShow {
			fmt.Fprintf(out, "  ... %d more\n", len(res.Pairs)-i)
			break
		}
		fmt.Fprintf(out, "  %s: t%d -> t%d  (%.3f)\n", p.Relation, p.LeftID, p.RightID, p.Score)
	}
	printUnmatched(out, "left unmatched", res.LeftUnmatched, *maxShow)
	printUnmatched(out, "right unmatched", res.RightUnmatched, *maxShow)
	printMapping(out, "h_l (left nulls)", res.LeftValueMapping, *maxShow)
	printMapping(out, "h_r (right nulls)", res.RightValueMapping, *maxShow)
	return nil
}

func load(path string, anon bool) (*instcmp.Instance, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	opt := instcmp.CSVOptions{AnonymousNulls: anon}
	if info.IsDir() {
		return instcmp.LoadCSVDir(path, opt)
	}
	return instcmp.LoadCSV(path, opt)
}

func printUnmatched(out io.Writer, label string, ids []instcmp.TupleID, maxShow int) {
	if len(ids) == 0 {
		return
	}
	fmt.Fprintf(out, "\n%s (%d):", label, len(ids))
	for i, id := range ids {
		if i == maxShow {
			fmt.Fprintf(out, " ...")
			break
		}
		fmt.Fprintf(out, " t%d", id)
	}
	fmt.Fprintln(out)
}

func printMapping(out io.Writer, label string, m map[instcmp.Value]instcmp.Value, maxShow int) {
	if len(m) == 0 {
		return
	}
	type entry struct{ from, to string }
	var entries []entry
	for k, v := range m {
		if k != v { // identity entries are noise
			entries = append(entries, entry{k.String(), v.String()})
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].from < entries[j].from })
	if len(entries) == 0 {
		return
	}
	fmt.Fprintf(out, "\n%s:\n", label)
	for i, e := range entries {
		if i == maxShow {
			fmt.Fprintf(out, "  ... %d more\n", len(entries)-i)
			break
		}
		fmt.Fprintf(out, "  %s -> %s\n", e.from, e.to)
	}
}

package main

import (
	"strings"
	"testing"
)

const canned = `goos: linux
goarch: amd64
pkg: instcmp
cpu: Some CPU @ 2.00GHz
BenchmarkSignatureParallel/workers-1-4         	      10	 110000000 ns/op	12000000 B/op	   90000 allocs/op
BenchmarkSignatureParallel/workers-1-4         	      10	 130000000 ns/op	12000000 B/op	   90000 allocs/op
BenchmarkSignatureParallel/workers-4-4         	      20	  40000000 ns/op	13000000 B/op	   95000 allocs/op
BenchmarkTable2/doct/500-4                     	      50	  21000000 ns/op	         0.9123 sig-score	         0.001 score-diff
BenchmarkNoMem-4                               	     100	   5000000 ns/op
PASS
ok  	instcmp	12.345s
`

func TestParse(t *testing.T) {
	var echoed strings.Builder
	doc, n, err := parse(strings.NewReader(canned), &echoed)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %v", n, sortedNames(doc))
	}

	w1 := doc.Benchmarks["BenchmarkSignatureParallel/workers-1-4"]
	if w1 == nil {
		t.Fatal("workers-1 entry missing")
	}
	if w1.Runs != 2 || w1.NsPerOp != 120000000 {
		t.Errorf("workers-1: runs=%d ns/op=%v, want 2 runs averaged to 1.2e8", w1.Runs, w1.NsPerOp)
	}
	if w1.AllocsPerOp != 90000 || w1.BytesPerOp != 12000000 {
		t.Errorf("workers-1 mem: %v B/op %v allocs/op", w1.BytesPerOp, w1.AllocsPerOp)
	}
	if w1.Iterations != 20 {
		t.Errorf("workers-1 iterations summed to %d, want 20", w1.Iterations)
	}

	t2 := doc.Benchmarks["BenchmarkTable2/doct/500-4"]
	if t2 == nil {
		t.Fatal("table2 entry missing")
	}
	if got := t2.Extra["sig-score"]; got != 0.9123 {
		t.Errorf("sig-score extra metric = %v", got)
	}
	if got := t2.Extra["score-diff"]; got != 0.001 {
		t.Errorf("score-diff extra metric = %v", got)
	}

	nomem := doc.Benchmarks["BenchmarkNoMem-4"]
	if nomem == nil {
		t.Fatal("no-mem entry missing")
	}
	if nomem.BytesPerOp != -1 || nomem.AllocsPerOp != -1 {
		t.Errorf("no -benchmem run should report -1 mem stats, got %v / %v", nomem.BytesPerOp, nomem.AllocsPerOp)
	}

	// Non-benchmark lines pass through for CI logs.
	for _, want := range []string{"goos: linux", "PASS", "ok  \tinstcmp"} {
		if !strings.Contains(echoed.String(), want) {
			t.Errorf("echo output lost line %q", want)
		}
	}
}

func TestParseLineRejects(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"ok  	instcmp	1.2s",
		"Benchmark",                       // no fields
		"BenchmarkX notanumber 5 ns/op",   // bad iteration count
		"BenchmarkX 10 5 bogus-unit-only", // no ns/op pair
	} {
		if _, _, ok := parseLine(line); ok {
			t.Errorf("parseLine accepted %q", line)
		}
	}
}

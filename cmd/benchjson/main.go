// Command benchjson converts `go test -bench -benchmem` text output into a
// stable JSON document, so benchmark numbers can be committed (BENCH_PR5.json)
// and diffed across PRs without scraping free-form text.
//
// Usage:
//
//	go test -bench=Signature -benchmem ./... | benchjson -o BENCH_PR5.json
//
// Each benchmark line ("BenchmarkFoo/sub-4  12  345 ns/op  67 B/op  8
// allocs/op  1.5 extra-metric") becomes one entry keyed by the benchmark
// name; repeated runs of the same name (-count > 1) are averaged. Lines that
// are not benchmark results (PASS, ok, pkg headers) pass through untouched
// to stderr so the run's verdict stays visible in CI logs.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Entry is the aggregated result of one benchmark across its runs.
type Entry struct {
	Runs       int     `json:"runs"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are -1 when -benchmem was not in effect.
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Extra holds any custom b.ReportMetric units (e.g. "sig-score").
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Doc is the emitted JSON document.
type Doc struct {
	// Note is a free-form label for the run (-note), e.g. which PR or
	// experiment produced the numbers.
	Note string `json:"note,omitempty"`
	// Env records what the numbers mean: nominal parallelism and CPU count
	// at conversion time (benchmarks inherit the same environment in CI).
	Env struct {
		GOOS       string `json:"goos"`
		GOARCH     string `json:"goarch"`
		GOMAXPROCS int    `json:"gomaxprocs"`
		NumCPU     int    `json:"num_cpu"`
	} `json:"env"`
	Benchmarks map[string]*Entry `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	note := flag.String("note", "", "free-form label recorded in the document")
	flag.Parse()
	doc, n, err := parse(os.Stdin, os.Stderr)
	if err == nil {
		doc.Note = *note
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if n == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines in input")
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", n, *out)
}

// parse consumes go-test bench output from r, echoing non-benchmark lines to
// echo, and returns the aggregated document plus the number of distinct
// benchmark names seen.
func parse(r io.Reader, echo io.Writer) (*Doc, int, error) {
	doc := &Doc{Benchmarks: map[string]*Entry{}}
	doc.Env.GOOS = runtime.GOOS
	doc.Env.GOARCH = runtime.GOARCH
	doc.Env.GOMAXPROCS = runtime.GOMAXPROCS(0)
	doc.Env.NumCPU = runtime.NumCPU()

	sums := map[string]*Entry{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		name, res, ok := parseLine(line)
		if !ok {
			fmt.Fprintln(echo, line)
			continue
		}
		e := sums[name]
		if e == nil {
			e = &Entry{BytesPerOp: -1, AllocsPerOp: -1}
			sums[name] = e
		}
		e.Runs++
		e.Iterations += res.Iterations
		e.NsPerOp += res.NsPerOp
		if res.BytesPerOp >= 0 {
			if e.BytesPerOp < 0 {
				e.BytesPerOp = 0
			}
			e.BytesPerOp += res.BytesPerOp
		}
		if res.AllocsPerOp >= 0 {
			if e.AllocsPerOp < 0 {
				e.AllocsPerOp = 0
			}
			e.AllocsPerOp += res.AllocsPerOp
		}
		for k, v := range res.Extra {
			if e.Extra == nil {
				e.Extra = map[string]float64{}
			}
			e.Extra[k] += v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	for name, e := range sums {
		n := float64(e.Runs)
		e.NsPerOp /= n
		if e.BytesPerOp >= 0 {
			e.BytesPerOp /= n
		}
		if e.AllocsPerOp >= 0 {
			e.AllocsPerOp /= n
		}
		for k := range e.Extra {
			e.Extra[k] /= n
		}
		doc.Benchmarks[name] = e
	}
	return doc, len(doc.Benchmarks), nil
}

// parseLine recognizes one benchmark result line. The go tool appends the
// GOMAXPROCS suffix ("-4") to the name; it is kept as-is so runs at
// different parallelism stay distinct keys.
func parseLine(line string) (string, *Entry, bool) {
	fields := strings.Fields(line)
	// Minimum shape: Benchmark<Name>-P  N  F ns/op
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", nil, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", nil, false
	}
	e := &Entry{Iterations: iters, BytesPerOp: -1, AllocsPerOp: -1}
	seenNs := false
	// Values come in "<number> <unit>" pairs after the iteration count.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", nil, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			e.NsPerOp = v
			seenNs = true
		case "B/op":
			e.BytesPerOp = v
		case "allocs/op":
			e.AllocsPerOp = v
		case "MB/s":
			// throughput is derivable from ns/op; skip
		default:
			if e.Extra == nil {
				e.Extra = map[string]float64{}
			}
			e.Extra[unit] = v
		}
	}
	if !seenNs {
		return "", nil, false
	}
	return fields[0], e, true
}

// sortedNames is used by tests to iterate deterministically.
func sortedNames(doc *Doc) []string {
	names := make([]string, 0, len(doc.Benchmarks))
	for name := range doc.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

package main

import (
	"bytes"
	"testing"
)

// TestSelfRun runs the full analyzer suite over the repository tree. The
// tree must stay lint-clean: every invariant violation is either fixed or
// carries a justified //instlint:allow directive.
func TestSelfRun(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module from source; skipped in -short")
	}
	var out, errOut bytes.Buffer
	if code := run("../..", []string{"./..."}, &out, &errOut); code != 0 {
		t.Fatalf("instlint exited %d on the repository tree:\n%s%s", code, out.String(), errOut.String())
	}
}

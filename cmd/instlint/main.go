// Command instlint runs the project's invariant analyzers (DESIGN.md §11)
// over the module, go-vet style:
//
//	go run ./cmd/instlint ./...
//
// Each finding prints as file:line:col: message (analyzer). The exit code
// is 1 when any finding survives the //instlint:allow directives, 2 on
// load/typecheck errors, 0 otherwise. Scoping — which analyzer applies to
// which package — lives in internal/lint/suite.
package main

import (
	"fmt"
	"io"
	"os"

	"instcmp/internal/lint"
	"instcmp/internal/lint/load"
	"instcmp/internal/lint/suite"
)

func main() {
	patterns := os.Args[1:]
	os.Exit(run(".", patterns, os.Stdout, os.Stderr))
}

// run is main without the process plumbing, so the self-check test can
// invoke the linter in-process against the repository tree.
func run(dir string, patterns []string, out, errOut io.Writer) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Packages(dir, patterns)
	if err != nil {
		fmt.Fprintf(errOut, "instlint: %v\n", err)
		return 2
	}
	found := false
	for _, pkg := range pkgs {
		analyzers := suite.For(pkg.ImportPath)
		if len(analyzers) == 0 {
			continue
		}
		diags, err := lint.Analyze(pkg.Pass, analyzers)
		if err != nil {
			fmt.Fprintf(errOut, "instlint: %s: %v\n", pkg.ImportPath, err)
			return 2
		}
		for _, d := range diags {
			pos := pkg.Pass.Fset.Position(d.Pos)
			fmt.Fprintf(out, "%s: %s (%s)\n", pos, d.Message, d.Analyzer)
			found = true
		}
	}
	if found {
		return 1
	}
	return 0
}

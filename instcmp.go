// Package instcmp computes similarity scores and explanatory matches
// between relational database instances with labeled nulls, implementing
// "Similarity Measures For Incomplete Database Instances" (EDBT 2024).
//
// An incomplete instance contains labeled nulls (Null values) alongside
// constants; two such instances are compared by finding an instance match —
// a pair of value mappings plus a tuple mapping — that maximizes a
// normalized score in [0, 1]. Isomorphic instances (equal up to null
// renaming) score 1; ground instances without common tuples score 0.
//
// The package offers the paper's two algorithms: the exponential exact
// algorithm (for small instances or with a budget) and the fast greedy
// signature algorithm, whose score differs from the exact optimum by less
// than 1% on the paper's workloads.
//
// Basic usage:
//
//	left := instcmp.NewInstance()
//	left.AddRelation("Conf", "Name", "Year")
//	left.Append("Conf", instcmp.Const("VLDB"), instcmp.Null("N1"))
//	...
//	res, err := instcmp.Compare(left, right, &instcmp.Options{Mode: instcmp.OneToOne})
//	fmt.Println(res.Score, res.Pairs)
package instcmp

import (
	"context"
	"expvar"
	"fmt"
	"strings"
	"time"

	"instcmp/internal/exact"
	"instcmp/internal/match"
	"instcmp/internal/model"
	"instcmp/internal/score"
	"instcmp/internal/signature"
)

// Core model types, re-exported so applications only import instcmp.
type (
	// Instance is a relational instance with labeled nulls.
	Instance = model.Instance
	// Relation is one named relation of an instance.
	Relation = model.Relation
	// Tuple is one row.
	Tuple = model.Tuple
	// TupleID identifies a tuple within its instance.
	TupleID = model.TupleID
	// Value is a constant or a labeled null.
	Value = model.Value
	// Mode restricts tuple mappings (injectivity, totality).
	Mode = match.Mode
)

// Mode presets (Sec. 4.3 of the paper).
var (
	// OneToOne requires fully-injective tuple mappings: data versioning
	// of unique entities, repair-vs-gold comparison.
	OneToOne = match.OneToOne
	// Functional requires left-injective mappings: comparing a universal
	// solution against a core solution.
	Functional = match.Functional
	// ManyToMany places no restriction: comparing two universal
	// solutions, the most general setting.
	ManyToMany = match.ManyToMany
)

// NewInstance returns an empty instance.
func NewInstance() *Instance { return model.NewInstance() }

// Const returns the constant value with the given text.
func Const(s string) Value { return model.Const(s) }

// Null returns the labeled null with the given name.
func Null(name string) Value { return model.Null(name) }

// DefaultLambda is the default null-to-constant penalty (0 ≤ λ < 1).
const DefaultLambda = score.DefaultLambda

// Algorithm selects the comparison algorithm.
type Algorithm int

const (
	// AlgoAuto uses the exact algorithm for small inputs and the
	// signature algorithm otherwise.
	AlgoAuto Algorithm = iota
	// AlgoSignature always uses the greedy signature algorithm (Sec. 6.2).
	AlgoSignature
	// AlgoExact always uses the exact algorithm (Sec. 6.1); combine with
	// ExactMaxNodes/ExactTimeout on non-trivial inputs.
	AlgoExact
)

func (a Algorithm) String() string {
	switch a {
	case AlgoSignature:
		return "signature"
	case AlgoExact:
		return "exact"
	default:
		return "auto"
	}
}

// autoExactLimit is the AlgoAuto cutoff: instances with at most this many
// tuples combined go to the exact algorithm. Raised from 16 after the
// warm-started search landed: seeding the incumbent with the signature
// match keeps exact runs on 32 combined tuples in the low milliseconds
// (see EXPERIMENTS.md "Auto cutoff"), comparable to the signature
// algorithm's own cost at that size.
const autoExactLimit = 32

// Options configures Compare. The zero value is valid: the most general
// mode (n-to-m), λ = DefaultLambda, automatic algorithm selection.
type Options struct {
	// Mode restricts tuple mappings; zero value is ManyToMany.
	Mode Mode
	// Lambda is the null-to-constant penalty and must satisfy 0 ≤ λ < 1;
	// 0 means DefaultLambda (use ExplicitZeroLambda to request λ = 0).
	// Compare rejects values outside the paper's range.
	Lambda float64
	// ExplicitZeroLambda forces λ = 0 (nulls matched to constants score
	// nothing).
	ExplicitZeroLambda bool
	// Algorithm selects exact or signature; default automatic.
	Algorithm Algorithm
	// ExactMaxNodes bounds exact-search nodes (0 = unbounded).
	ExactMaxNodes int64
	// ExactTimeout bounds exact-search wall-clock time (0 = unbounded).
	ExactTimeout time.Duration
	// ExactWorkers is the number of parallel exact-search workers:
	// 0 = GOMAXPROCS, 1 = single-threaded. The score is identical for
	// every worker count; only wall-clock time changes.
	ExactWorkers int
	// SigWorkers is the number of parallel pipeline workers inside a
	// single signature run: 0 = GOMAXPROCS, 1 = single-threaded. Workers
	// only do read-only work and a single committer applies pairs in
	// canonical scan order, so scores and stats are bit-identical for
	// every worker count; only wall-clock time changes.
	SigWorkers int
	// Partial enables the Sec. 6.3 partial-mapping variant of the
	// signature algorithm.
	Partial bool
	// MinPartialSig is the minimum shared-constant floor for partial
	// matches (default 1).
	MinPartialSig int
	// ConstSimilarity, with Partial, scores conflicting constant cells
	// with their string similarity instead of 0 — the paper's Sec. 9
	// extension. See Levenshtein, JaroWinkler, TrigramJaccard.
	ConstSimilarity func(a, b string) float64
	// AlignSchemas pads attributes present on only one side with fresh
	// distinct nulls and adds missing relations as empty, instead of
	// failing on schema mismatch (Sec. 4's recipe).
	AlignSchemas bool
	// DiscoverMapping, when the schemas mismatch, first discovers an
	// attribute mapping (see MapSchemas) and compares under it: the right
	// instance is rewritten into the left schema's spelling, residual
	// differences (dropped/added columns or relations) are padded as with
	// AlignSchemas, and Result.Mapping reports what was discovered. When
	// the schemas already agree, discovery is skipped and results are
	// bit-identical to a plain comparison.
	DiscoverMapping bool
}

// validate rejects option values outside the paper's (or the engines')
// domains. It is the single validation gate shared by the one-shot and the
// prepared comparison paths, so both reject exactly the same inputs with
// exactly the same errors.
func (o *Options) validate() error {
	if o.Lambda < 0 || o.Lambda >= 1 {
		return fmt.Errorf("instcmp: Lambda must satisfy 0 <= λ < 1, got %v", o.Lambda)
	}
	if o.MinPartialSig < 0 {
		return fmt.Errorf("instcmp: MinPartialSig must be non-negative, got %d", o.MinPartialSig)
	}
	if o.ExactWorkers < 0 {
		return fmt.Errorf("instcmp: ExactWorkers must be non-negative, got %d", o.ExactWorkers)
	}
	if o.SigWorkers < 0 {
		return fmt.Errorf("instcmp: SigWorkers must be non-negative, got %d", o.SigWorkers)
	}
	return nil
}

func (o *Options) lambda() float64 {
	if o.ExplicitZeroLambda {
		return 0
	}
	if o.Lambda == 0 {
		return DefaultLambda
	}
	return o.Lambda
}

// Stopped reasons reported by Result.Stopped: comparing incomplete
// instances is NP-hard (Thm. 5.11), so any budgeted or canceled comparison
// can stop early — the result then carries the best match found so far and
// one of these reasons.
const (
	// StoppedTimeout: Options.ExactTimeout expired.
	StoppedTimeout = exact.StoppedTimeout
	// StoppedNodeBudget: Options.ExactMaxNodes was exhausted.
	StoppedNodeBudget = exact.StoppedNodeBudget
	// StoppedCanceled: the CompareContext context was canceled.
	StoppedCanceled = exact.StoppedCanceled
)

// ComparisonStats is the unified observability record populated by every
// comparison, regardless of algorithm. Collecting it never perturbs the
// search: all counters are observations of decisions the algorithms make
// anyway, so scores are bit-identical with and without anyone reading them.
type ComparisonStats struct {
	// Exact-search counters (zero for signature runs).

	// Nodes is the number of search-tree nodes visited across all
	// workers.
	Nodes int64
	// Prunes counts subtrees cut by the optimistic bounds.
	Prunes int64
	// Improvements counts incumbent improvements recorded by searchers.
	Improvements int64
	// WarmScore is the incumbent the exact search started from (-1 when
	// not warm-started or for signature runs).
	WarmScore float64

	// Signature phase breakdown: the signature algorithm's own run, or
	// the exact search's warm start.

	// SigMatches counts tuple pairs discovered by signature probing.
	SigMatches int
	// CompatMatches counts pairs added by the completion step.
	CompatMatches int
	// ScoreAfterSig is the signature match's score before completion.
	ScoreAfterSig float64
	// SigPhase and CompatPhase record signature wall-clock time per phase.
	SigPhase, CompatPhase time.Duration
	// SigWorkers is the signature pipeline's resolved worker count (1 for
	// a sequential run, 0 when no signature phase ran at all).
	SigWorkers int
	// SigParallelBlocks totals the signature pipeline's committed
	// produce/commit units across phases (scan blocks, rescue tasks,
	// completion blocks); 0 when the run stayed sequential.
	SigParallelBlocks int

	// Match-construction counters (both algorithms).

	// PairAttempts and PairRejects count tuple-pair insertion attempts
	// and their rejections (mode or unification conflicts).
	PairAttempts, PairRejects int64
	// ScoreEvals counts pair-score evaluations.
	ScoreEvals int64

	// Per-phase wall clock of the comparison as a whole.

	// NormalizeTime covers input normalization (copying, null renaming,
	// schema alignment).
	NormalizeTime time.Duration
	// SearchTime covers the algorithm run itself.
	SearchTime time.Duration
	// ExplainTime covers extracting pairs, unmatched tuples, and value
	// mappings from the final match.
	ExplainTime time.Duration
}

// apiVars exports cumulative comparison counters for long-running processes
// (expvar key "instcmp.api"): comparisons, comparisons_exact,
// comparisons_signature, stopped, nodes, pair_attempts, elapsed_ns. The
// engine packages export finer-grained counters under "instcmp.exact" and
// "instcmp.signature".
var apiVars = expvar.NewMap("instcmp.api")

// MatchedPair is one element of the resulting tuple mapping, with its
// contribution to the score.
type MatchedPair struct {
	Relation string
	// LeftID and RightID are the matched tuples' identifiers in the
	// caller's original instances.
	LeftID, RightID TupleID
	// Score is the tuple-pair score in [0, arity].
	Score float64
}

// Result is the outcome of a comparison: the similarity score plus the
// explanation the paper's abstract promises — which tuples correspond, how
// nulls were mapped, and which tuples have no counterpart.
type Result struct {
	// Score is the similarity in [0, 1].
	Score float64
	// Algorithm is the algorithm that produced the score.
	Algorithm Algorithm
	// Exhaustive is true when the exact search explored its whole space;
	// always false for the signature algorithm (whose score is a lower
	// bound on the true similarity).
	Exhaustive bool
	// Pairs is the tuple mapping of the best match found.
	Pairs []MatchedPair
	// LeftUnmatched and RightUnmatched list tuples without counterparts.
	LeftUnmatched, RightUnmatched []TupleID
	// LeftValueMapping and RightValueMapping are h_l and h_r restricted
	// to labeled nulls (constants always map to themselves).
	LeftValueMapping, RightValueMapping map[Value]Value
	// Stopped is empty for a comparison that ran to its natural end, and
	// one of StoppedTimeout, StoppedNodeBudget, StoppedCanceled when it
	// was cut short. A stopped comparison still reports the best match
	// found so far (anytime behavior); for the exact algorithm Score is
	// then a lower bound on the true similarity.
	Stopped string
	// Mapping is the discovered schema mapping when Options.DiscoverMapping
	// rewrote the right side, nil otherwise (including when the schemas
	// already agreed and discovery was skipped).
	Mapping *SchemaMapping
	// Stats is the unified run record, populated by both algorithms.
	Stats ComparisonStats
	// Elapsed is the total comparison time.
	Elapsed time.Duration
}

// Compare computes the similarity of two instances and the instance match
// explaining it. The inputs are not modified: comparison runs on normalized
// copies (disjoint tuple identifiers and null namespaces, and — with
// AlignSchemas — padded schemas).
func Compare(left, right *Instance, opt *Options) (*Result, error) {
	return CompareContext(context.Background(), left, right, opt)
}

// CompareContext is Compare with a cancellation context. Because the
// underlying problem is NP-hard, cancellation is an anytime operation, not
// an error: when ctx is canceled (or times out) mid-comparison, the call
// returns promptly — within a bounded polling interval of the engines' node
// and scan loops — with the best match found so far, Result.Stopped set to
// StoppedCanceled, and the explanation filled in for that partial match.
// Callers that need hard failure semantics can check Result.Stopped (or
// ctx.Err()) themselves.
func CompareContext(ctx context.Context, left, right *Instance, opt *Options) (*Result, error) {
	if left == nil || right == nil {
		return nil, fmt.Errorf("instcmp: Compare requires two non-nil instances")
	}
	if opt == nil {
		opt = &Options{}
	}
	if err := opt.validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	var lp, rp *Prepared
	var err error
	switch {
	case !model.SameSchema(left, right) && opt.DiscoverMapping:
		// Mapping discovery rewrites the right side inside comparePrepared
		// (the prepared path needs the same treatment); just snapshot here.
		if lp, err = prepareOwned(left.Clone()); err != nil {
			return nil, err
		}
		if rp, err = prepareOwned(right.Clone()); err != nil {
			return nil, err
		}
	case !model.SameSchema(left, right) && opt.AlignSchemas:
		// alignSchemas rebuilds both sides from scratch, so the rebuilt
		// instances are owned outright — no defensive clone needed.
		al, ar := alignSchemas(left, right)
		if lp, err = prepareOwned(al); err != nil {
			return nil, err
		}
		if rp, err = prepareOwned(ar); err != nil {
			return nil, err
		}
	case !model.SameSchema(left, right):
		return nil, match.ErrSchemaMismatch
	default:
		if lp, err = prepareOwned(left.Clone()); err != nil {
			return nil, err
		}
		if rp, err = prepareOwned(right.Clone()); err != nil {
			return nil, err
		}
	}
	return comparePrepared(ctx, lp, rp, opt, start)
}

// fillEnv copies match-construction counters into the unified stats. The
// exact engine passes its aggregate over all worker environments; the
// signature engine its single environment's counters.
func (s *ComparisonStats) fillEnv(st match.EnvStats) {
	s.PairAttempts = st.PairAttempts
	s.PairRejects = st.PairRejects
	s.ScoreEvals = st.ScoreEvals
}

// fillSignature copies a signature phase breakdown into the unified stats.
func (s *ComparisonStats) fillSignature(sig signature.Stats) {
	s.SigMatches = sig.SigMatches
	s.CompatMatches = sig.CompatMatches
	s.ScoreAfterSig = sig.ScoreAfterSig
	s.SigPhase = sig.SigPhase
	s.CompatPhase = sig.CompatPhase
	s.SigWorkers = sig.Workers
	s.SigParallelBlocks = sig.ScanBlocks + sig.RescueTasks + sig.CompleteBlocks
}

// publish feeds the comparison's aggregates into the package expvars.
func (r *Result) publish() {
	apiVars.Add("comparisons", 1)
	apiVars.Add("comparisons_"+r.Algorithm.String(), 1)
	if r.Stopped != "" {
		apiVars.Add("stopped", 1)
	}
	apiVars.Add("nodes", r.Stats.Nodes)
	apiVars.Add("pair_attempts", r.Stats.PairAttempts)
	apiVars.Add("elapsed_ns", int64(r.Elapsed))
}

// Similarity is a convenience wrapper returning only the score, computed
// with the signature algorithm in the most general mode.
func Similarity(left, right *Instance) (float64, error) {
	res, err := Compare(left, right, &Options{Algorithm: AlgoSignature})
	if err != nil {
		return 0, err
	}
	return res.Score, nil
}

// fillExplanation reports the match in terms of the ORIGINAL instances'
// tuple identifiers. Normalization preserves per-relation tuple order, so a
// position in the normalized copies addresses the same tuple in the
// originals. When mapping discovery renamed right relations, relNames
// translates a compared relation name back to the original right name
// (names absent from a non-nil map were added by discovery or alignment
// and have no original counterpart).
func (r *Result) fillExplanation(env *match.Env, lambda float64, origLeft, origRight *Instance, rightPrefix string, relNames map[string]string) {
	rightRel := func(name string) string {
		if relNames == nil {
			return name
		}
		if orig, ok := relNames[name]; ok {
			return orig
		}
		return name
	}
	origID := func(orig *Instance, relName string, idx int) TupleID {
		return orig.Relation(relName).Tuples[idx].ID
	}
	matchedL := map[match.Ref]bool{}
	matchedR := map[match.Ref]bool{}
	for _, p := range env.Pairs() {
		matchedL[p.L] = true
		matchedR[p.R] = true
		name := env.LRels[p.L.Rel].Name
		r.Pairs = append(r.Pairs, MatchedPair{
			Relation: name,
			LeftID:   origID(origLeft, name, p.L.Idx),
			RightID:  origID(origRight, rightRel(name), p.R.Idx),
			Score:    score.PairScore(env, p, lambda),
		})
	}
	for ri, rel := range env.LRels {
		if origLeft.Relation(rel.Name) == nil {
			continue // relation added empty by schema alignment
		}
		for ti := range rel.Tuples {
			if !matchedL[match.Ref{Rel: ri, Idx: ti}] {
				r.LeftUnmatched = append(r.LeftUnmatched, origID(origLeft, rel.Name, ti))
			}
		}
	}
	for ri, rel := range env.RRels {
		if origRight.Relation(rightRel(rel.Name)) == nil {
			continue
		}
		for ti := range rel.Tuples {
			if !matchedR[match.Ref{Rel: ri, Idx: ti}] {
				r.RightUnmatched = append(r.RightUnmatched, origID(origRight, rightRel(rel.Name), ti))
			}
		}
	}
	// Value mappings are reported in terms of the ORIGINAL instances'
	// null names: right nulls were renamed apart with rightPrefix during
	// normalization, and representatives pointing at renamed right nulls
	// are translated back. Nulls introduced by schema padding stay as
	// they are (they have no original name).
	unrename := func(v Value) Value {
		if rightPrefix == "" || v.IsConst() {
			return v
		}
		if name, ok := strings.CutPrefix(v.Raw(), rightPrefix); ok {
			return Null(name)
		}
		return v
	}
	r.LeftValueMapping = map[Value]Value{}
	r.RightValueMapping = map[Value]Value{}
	for v := range env.Left.Vars() {
		r.LeftValueMapping[v] = unrename(env.U.Representative(v))
	}
	for v := range env.Right.Vars() {
		r.RightValueMapping[unrename(v)] = unrename(env.U.Representative(v))
	}
}

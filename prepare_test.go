package instcmp

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// prepScenario is one shape of the prepared-equivalence suite. Each
// exercises a different path through comparePrepared: the direct fast path,
// the null-rename re-prepare, the schema-align re-prepare, multi-relation
// environments, and the partial signature variant.
type prepScenario struct {
	name  string
	build func() (*Instance, *Instance)
	opt   Options
}

func prepScenarios() []prepScenario {
	return []prepScenario{
		{
			// Small ground instances with overlapping rows: exact search,
			// fully injective.
			name: "ground-exact-1to1",
			build: func() (*Instance, *Instance) {
				l, r := NewInstance(), NewInstance()
				for _, in := range []*Instance{l, r} {
					in.AddRelation("R", "A", "B")
				}
				for i := 0; i < 6; i++ {
					l.Append("R", Const(fmt.Sprintf("a%d", i)), Const(fmt.Sprintf("b%d", i)))
				}
				for i := 3; i < 9; i++ {
					r.Append("R", Const(fmt.Sprintf("a%d", i)), Const(fmt.Sprintf("b%d", i)))
				}
				return l, r
			},
			opt: Options{Algorithm: AlgoExact, Mode: OneToOne},
		},
		{
			// Both sides use the same null names: the prepared path must
			// rename the right side apart and re-prepare it, landing on the
			// same environment the one-shot normalization builds.
			name: "shared-null-names-functional",
			build: func() (*Instance, *Instance) {
				l, r := NewInstance(), NewInstance()
				for _, in := range []*Instance{l, r} {
					in.AddRelation("R", "A", "B")
				}
				l.Append("R", Const("x"), Null("N1"))
				l.Append("R", Null("N1"), Const("y"))
				l.Append("R", Null("N2"), Const("z"))
				r.Append("R", Const("x"), Null("N1"))
				r.Append("R", Null("N2"), Const("y"))
				r.Append("R", Null("N2"), Const("w"))
				return l, r
			},
			opt: Options{Algorithm: AlgoExact, Mode: Functional},
		},
		{
			// Different schemas: AlignSchemas pads attributes and relations,
			// and the prepared path re-prepares the aligned rebuilds.
			name: "align-schemas-signature",
			build: func() (*Instance, *Instance) {
				l, r := NewInstance(), NewInstance()
				l.AddRelation("R", "A", "B")
				l.AddRelation("S", "C")
				r.AddRelation("R", "A", "B", "C")
				l.Append("R", Const("x"), Const("y"))
				l.Append("S", Const("c1"))
				r.Append("R", Const("x"), Const("y"), Null("v1"))
				r.Append("R", Const("p"), Const("q"), Const("c1"))
				return l, r
			},
			opt: Options{Algorithm: AlgoSignature, AlignSchemas: true},
		},
		{
			// Multi-relation with disjoint null namespaces: the prepared
			// fast path end to end, exact search.
			name: "multirel-exact-ntom",
			build: func() (*Instance, *Instance) {
				l, r := NewInstance(), NewInstance()
				for _, in := range []*Instance{l, r} {
					in.AddRelation("Conf", "Name", "Year")
					in.AddRelation("Loc", "Name", "City")
				}
				l.Append("Conf", Const("VLDB"), Null("ly1"))
				l.Append("Conf", Const("EDBT"), Const("2024"))
				l.Append("Loc", Const("VLDB"), Null("lc1"))
				r.Append("Conf", Const("VLDB"), Const("2024"))
				r.Append("Conf", Const("EDBT"), Null("ry1"))
				r.Append("Loc", Const("VLDB"), Const("Guangzhou"))
				r.Append("Loc", Const("EDBT"), Null("rc1"))
				return l, r
			},
			opt: Options{Algorithm: AlgoExact, Mode: ManyToMany},
		},
		{
			// A larger seeded pair through the partial signature variant,
			// where the parallel pipeline has real work per phase.
			name: "large-partial-signature",
			build: func() (*Instance, *Instance) {
				rng := rand.New(rand.NewSource(7))
				build := func(side string) *Instance {
					in := NewInstance()
					in.AddRelation("T", "A", "B", "C")
					for i := 0; i < 60; i++ {
						row := make([]Value, 3)
						for c := range row {
							if rng.Float64() < 0.2 {
								row[c] = Null(fmt.Sprintf("%s%d", side, rng.Intn(30)))
							} else {
								row[c] = Const(fmt.Sprintf("v%d", rng.Intn(80)))
							}
						}
						in.Append("T", row...)
					}
					return in
				}
				return build("l"), build("r")
			},
			opt: Options{Algorithm: AlgoSignature, Partial: true, MinPartialSig: 1},
		},
	}
}

// assertSameResult fails unless the two results are bit-identical in score,
// explanation, and deterministic stats counters. The exact engine's node,
// prune, and pair counters are schedule-dependent when ExactWorkers > 1
// (workers share the incumbent through an atomic CAS, so pruning varies
// run to run); those are skipped for parallel exact runs — everything the
// engine documents as deterministic is compared bitwise.
func assertSameResult(t *testing.T, label string, a, b *Result, exactParallel bool) {
	t.Helper()
	if math.Float64bits(a.Score) != math.Float64bits(b.Score) {
		t.Errorf("%s: score %v != %v", label, a.Score, b.Score)
	}
	if a.Algorithm != b.Algorithm || a.Exhaustive != b.Exhaustive || a.Stopped != b.Stopped {
		t.Errorf("%s: outcome (%v, %v, %q) != (%v, %v, %q)", label,
			a.Algorithm, a.Exhaustive, a.Stopped, b.Algorithm, b.Exhaustive, b.Stopped)
	}
	if !reflect.DeepEqual(a.Pairs, b.Pairs) {
		t.Errorf("%s: pairs differ:\n%v\n%v", label, a.Pairs, b.Pairs)
	}
	if !reflect.DeepEqual(a.LeftUnmatched, b.LeftUnmatched) || !reflect.DeepEqual(a.RightUnmatched, b.RightUnmatched) {
		t.Errorf("%s: unmatched differ", label)
	}
	if !reflect.DeepEqual(a.LeftValueMapping, b.LeftValueMapping) {
		t.Errorf("%s: left value mappings differ:\n%v\n%v", label, a.LeftValueMapping, b.LeftValueMapping)
	}
	if !reflect.DeepEqual(a.RightValueMapping, b.RightValueMapping) {
		t.Errorf("%s: right value mappings differ:\n%v\n%v", label, a.RightValueMapping, b.RightValueMapping)
	}
	as, bs := a.Stats, b.Stats
	if !exactParallel {
		if as.Nodes != bs.Nodes || as.Prunes != bs.Prunes || as.Improvements != bs.Improvements {
			t.Errorf("%s: search counters (%d,%d,%d) != (%d,%d,%d)", label,
				as.Nodes, as.Prunes, as.Improvements, bs.Nodes, bs.Prunes, bs.Improvements)
		}
		if as.PairAttempts != bs.PairAttempts || as.PairRejects != bs.PairRejects || as.ScoreEvals != bs.ScoreEvals {
			t.Errorf("%s: pair counters (%d,%d,%d) != (%d,%d,%d)", label,
				as.PairAttempts, as.PairRejects, as.ScoreEvals, bs.PairAttempts, bs.PairRejects, bs.ScoreEvals)
		}
	}
	if math.Float64bits(as.WarmScore) != math.Float64bits(bs.WarmScore) {
		t.Errorf("%s: warm score %v != %v", label, as.WarmScore, bs.WarmScore)
	}
	if as.SigMatches != bs.SigMatches || as.CompatMatches != bs.CompatMatches ||
		math.Float64bits(as.ScoreAfterSig) != math.Float64bits(bs.ScoreAfterSig) ||
		as.SigWorkers != bs.SigWorkers || as.SigParallelBlocks != bs.SigParallelBlocks {
		t.Errorf("%s: signature stats differ: %+v vs %+v", label, as, bs)
	}
}

// TestPreparedEquivalentToOneShot is the prepared-equivalence suite: for
// every scenario shape and worker count, comparing prepared instances must
// be indistinguishable — scores, stats, explanations — from the one-shot
// path the regress goldens pin.
func TestPreparedEquivalentToOneShot(t *testing.T) {
	for _, sc := range prepScenarios() {
		t.Run(sc.name, func(t *testing.T) {
			l, r := sc.build()
			lp, err := Prepare(l)
			if err != nil {
				t.Fatal(err)
			}
			rp, err := Prepare(r)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 4} {
				opt := sc.opt
				opt.ExactWorkers = workers
				opt.SigWorkers = workers
				oneShot, err := CompareContext(context.Background(), l, r, &opt)
				if err != nil {
					t.Fatalf("workers=%d: one-shot: %v", workers, err)
				}
				prepared, err := ComparePreparedContext(context.Background(), lp, rp, &opt)
				if err != nil {
					t.Fatalf("workers=%d: prepared: %v", workers, err)
				}
				exactParallel := prepared.Algorithm == AlgoExact && workers > 1
				assertSameResult(t, fmt.Sprintf("workers=%d", workers), oneShot, prepared, exactParallel)

				// Prepared state is reusable: a second run over the same
				// Prepared values must reproduce the result exactly.
				again, err := ComparePreparedContext(context.Background(), lp, rp, &opt)
				if err != nil {
					t.Fatalf("workers=%d: prepared again: %v", workers, err)
				}
				assertSameResult(t, fmt.Sprintf("workers=%d reuse", workers), prepared, again, exactParallel)
			}
		})
	}
}

// TestPrepareSnapshots pins the ownership contract: Prepare clones, so
// mutating the input afterwards does not change what the prepared instance
// compares as.
func TestPrepareSnapshots(t *testing.T) {
	l, r := NewInstance(), NewInstance()
	for _, in := range []*Instance{l, r} {
		in.AddRelation("R", "A")
	}
	l.Append("R", Const("x"))
	r.Append("R", Const("x"))
	lp, err := Prepare(l)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Prepare(r)
	if err != nil {
		t.Fatal(err)
	}
	before, err := ComparePrepared(lp, rp, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Degrade the live inputs; the snapshots must not notice.
	l.Append("R", Const("noise1"))
	r.Append("R", Const("noise2"))
	after, err := ComparePrepared(lp, rp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(before.Score) != math.Float64bits(after.Score) {
		t.Errorf("mutating inputs changed a prepared comparison: %v -> %v", before.Score, after.Score)
	}
	if before.Score != 1 {
		t.Errorf("identical singleton instances should score 1, got %v", before.Score)
	}
}

// TestConcurrentComparesShareSamePrepared runs many comparisons against the
// same Prepared values from concurrent goroutines (the registry serving
// pattern); under -race this pins that comparing never mutates prepared
// state, and every goroutine must see bit-identical scores.
func TestConcurrentComparesShareSamePrepared(t *testing.T) {
	scenarios := prepScenarios()
	sc := scenarios[4] // the large signature scenario: real shared state
	l, r := sc.build()
	lp, err := Prepare(l)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Prepare(r)
	if err != nil {
		t.Fatal(err)
	}
	opt := sc.opt
	want, err := ComparePrepared(lp, rp, &opt)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	scores := make([]float64, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				res, err := ComparePrepared(lp, rp, &opt)
				if err != nil {
					errs[g] = err
					return
				}
				scores[g] = res.Score
			}
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if math.Float64bits(scores[g]) != math.Float64bits(want.Score) {
			t.Errorf("goroutine %d: score %v != %v", g, scores[g], want.Score)
		}
	}
}

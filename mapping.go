package instcmp

// Schema-drift discovery: the public face of internal/schemamap. The engine
// proper requires both instances to agree on relation names, attribute
// names, and attribute order; MapSchemas (and Options.DiscoverMapping)
// recover a correspondence when they do not — renamed or reordered columns,
// renamed relations, dropped columns — by profiling every column and
// anchoring a mapping on distinctive (approximate-key) columns first.

import (
	"fmt"

	"instcmp/internal/schemamap"
)

// ColumnMapping is one discovered attribute correspondence.
type ColumnMapping struct {
	// Left and Right are the attribute names on each side.
	Left, Right string
	// Similarity is the profile similarity in [0, 1] that justified the
	// pair.
	Similarity float64
	// Method records how the pair was found: "name" (equal names),
	// "fast-path" (mutually-best distinctive columns), or "assignment"
	// (Hungarian fallback) — in decreasing order of trust.
	Method string
}

// RelationMapping is one discovered relation correspondence.
type RelationMapping struct {
	// Left and Right are the relation names on each side.
	Left, Right string
	// Columns lists the attribute pairs in left schema order.
	Columns []ColumnMapping
	// LeftUnmapped and RightUnmapped name attributes without a counterpart
	// (dropped or added columns); schema alignment pads them with fresh
	// nulls during comparison.
	LeftUnmapped, RightUnmapped []string
	// Confidence is the mean matched similarity scaled by coverage of the
	// wider schema.
	Confidence float64
}

// SchemaMapping is a discovered correspondence between two instances'
// schemas, with a confidence the caller can use to gate automatic decisions.
type SchemaMapping struct {
	// Relations lists matched relations in left schema order.
	Relations []RelationMapping
	// LeftOnly and RightOnly name relations without a counterpart.
	LeftOnly, RightOnly []string
	// Confidence aggregates per-relation confidences weighted by column
	// count: 1 means every column anchored with perfect profile agreement.
	Confidence float64
}

// MapSchemas discovers the attribute mapping between two instances without
// comparing them: per-column profiles (uniqueness under labeled nulls, null
// share, type hints, MinHash value sketches), a fast path over
// mutually-best distinctive columns, and a Hungarian-style assignment on
// profile similarity for the rest. It is deterministic and does not modify
// its inputs. Use Options.DiscoverMapping to run a comparison under the
// discovered mapping in one call.
func MapSchemas(left, right *Instance) (*SchemaMapping, error) {
	if left == nil || right == nil {
		return nil, fmt.Errorf("instcmp: MapSchemas requires two non-nil instances")
	}
	return newSchemaMapping(schemamap.Discover(left, right, schemamap.Options{}), left, right), nil
}

// newSchemaMapping converts the internal mapping, resolving unmapped
// column indices to names via the original instances.
func newSchemaMapping(m *schemamap.Mapping, left, right *Instance) *SchemaMapping {
	out := &SchemaMapping{
		LeftOnly:   append([]string(nil), m.LeftOnly...),
		RightOnly:  append([]string(nil), m.RightOnly...),
		Confidence: m.Confidence,
	}
	lrels, rrels := left.Relations(), right.Relations()
	for _, rp := range m.Rels {
		rm := RelationMapping{Left: rp.LeftName, Right: rp.RightName, Confidence: rp.Confidence}
		for _, ap := range rp.Attrs {
			rm.Columns = append(rm.Columns, ColumnMapping{
				Left: ap.LeftAttr, Right: ap.RightAttr,
				Similarity: ap.Sim, Method: ap.Method,
			})
		}
		for _, i := range rp.LeftUnmapped {
			rm.LeftUnmapped = append(rm.LeftUnmapped, lrels[rp.Left].Attrs[i])
		}
		for _, j := range rp.RightUnmapped {
			rm.RightUnmapped = append(rm.RightUnmapped, rrels[rp.Right].Attrs[j])
		}
		out.Relations = append(out.Relations, rm)
	}
	return out
}

// discoverForCompare runs discovery for a comparison whose schemas
// mismatch: it rewrites the right instance into the left schema's spelling
// and returns the rewritten instance, the public mapping, and the
// rewritten-to-original relation-name translation that keeps explanations
// reported in the caller's names.
func discoverForCompare(left, right *Instance) (*Instance, *SchemaMapping, map[string]string, error) {
	dm := schemamap.Discover(left, right, schemamap.Options{})
	rewritten, names, err := dm.Apply(right)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("instcmp: applying discovered mapping: %w", err)
	}
	return rewritten, newSchemaMapping(dm, left, right), names, nil
}

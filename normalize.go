package instcmp

import (
	"instcmp/internal/match"
	"instcmp/internal/model"
)

// Normalize prepares two instances for comparison without touching the
// originals: it clones both, optionally aligns their schemas (missing
// relations become empty, missing attributes are padded with fresh distinct
// nulls per row, Sec. 4), renames the right instance's nulls if the null
// namespaces overlap, and renumbers the right instance's tuples if the
// identifier spaces overlap. Tuple order within each relation is preserved,
// so positions in the normalized copies address the same tuples as in the
// originals.
func Normalize(left, right *Instance, align bool) (*Instance, *Instance, error) {
	l, r, _, err := normalize(left, right, align)
	return l, r, err
}

// normalize additionally returns the prefix prepended to the right
// instance's null names ("" when no renaming was needed), so results can be
// reported in terms of the caller's original nulls.
func normalize(left, right *Instance, align bool) (*Instance, *Instance, string, error) {
	l, r := left.Clone(), right.Clone()
	if align {
		l, r = alignSchemas(l, r)
	}
	if !model.SameSchema(l, r) {
		return nil, nil, "", match.ErrSchemaMismatch
	}
	prefix := ""
	if varsOverlap(l, r) {
		r, prefix = renameApart(l, r)
	}
	if idsOverlap(l, r) {
		r = r.ReassignIDs(maxID(l) + 1)
	}
	return l, r, prefix, nil
}

func varsOverlap(l, r *Instance) bool {
	lv := l.Vars()
	for v := range r.Vars() {
		if lv[v] {
			return true
		}
	}
	return false
}

// renameApart renames the right instance's nulls with a prefix that makes
// them disjoint from the left instance's, growing the prefix until no
// collision remains. It returns the renamed instance and the prefix used.
func renameApart(l, r *Instance) (*Instance, string) {
	prefix := "r·"
	for {
		ren := r.RenameNulls(prefix)
		if !varsOverlap(l, ren) {
			return ren, prefix
		}
		prefix += "·"
	}
}

func idsOverlap(l, r *Instance) bool {
	seen := map[TupleID]bool{}
	for _, rel := range l.Relations() {
		for _, t := range rel.Tuples {
			seen[t.ID] = true
		}
	}
	for _, rel := range r.Relations() {
		for _, t := range rel.Tuples {
			if seen[t.ID] {
				return true
			}
		}
	}
	return false
}

func maxID(in *Instance) TupleID {
	var mx TupleID
	for _, rel := range in.Relations() {
		for _, t := range rel.Tuples {
			if t.ID > mx {
				mx = t.ID
			}
		}
	}
	return mx
}

// alignSchemas rebuilds both instances over the union schema: relations in
// left-then-right order, attributes per relation in left-then-right order.
// Cells for attributes a side lacks are filled with fresh, pairwise
// distinct nulls, which is the paper's recipe for comparing instances whose
// schemas differ: the padded attribute constrains nothing.
func alignSchemas(l, r *Instance) (*Instance, *Instance) {
	type relSchema struct {
		name  string
		attrs []string
	}
	var order []relSchema
	pos := map[string]int{}
	addRel := func(rel *Relation) {
		i, ok := pos[rel.Name]
		if !ok {
			pos[rel.Name] = len(order)
			order = append(order, relSchema{name: rel.Name, attrs: append([]string(nil), rel.Attrs...)})
			return
		}
		have := map[string]bool{}
		for _, a := range order[i].attrs {
			have[a] = true
		}
		for _, a := range rel.Attrs {
			if !have[a] {
				order[i].attrs = append(order[i].attrs, a)
			}
		}
	}
	for _, rel := range l.Relations() {
		addRel(rel)
	}
	for _, rel := range r.Relations() {
		addRel(rel)
	}

	rebuild := func(src *Instance, padPrefix string) *Instance {
		out := model.NewInstance()
		// Padding is minted row by row while src's tuples are still being
		// copied over, so a later row could carry a user null whose name the
		// counter has already handed out. Reserving src's nulls up front
		// closes that window: FreshNull skips every name that will ever be
		// appended.
		out.ReserveNullsFrom(src)
		for _, rs := range order {
			out.AddRelation(rs.name, rs.attrs...)
			srcRel := src.Relation(rs.name)
			if srcRel == nil {
				continue
			}
			srcIdx := make([]int, len(rs.attrs))
			for i, a := range rs.attrs {
				srcIdx[i] = srcRel.AttrIndex(a)
			}
			for _, t := range srcRel.Tuples {
				vals := make([]Value, len(rs.attrs))
				for i, si := range srcIdx {
					if si < 0 {
						vals[i] = out.FreshNull(padPrefix)
					} else {
						vals[i] = t.Values[si]
					}
				}
				out.Append(rs.name, vals...)
				// Preserve the original identifier.
				rel := out.Relation(rs.name)
				rel.Tuples[len(rel.Tuples)-1].ID = t.ID
			}
		}
		return out
	}
	// The unicode-marked prefixes keep padding nulls readable and out of
	// ordinary namespaces, but freshness does not rely on the convention:
	// FreshNull skips names already present, so even a user null literally
	// named "pad·l·1" stays distinct from the padding.
	return rebuild(l, "pad·l·"), rebuild(r, "pad·r·")
}

package instcmp_test

import (
	"fmt"
	"sort"

	"instcmp"
)

// ExampleCompare reproduces the paper's Ex. 5.7: two instances whose nulls
// are pure renamings of each other are maximally similar.
func ExampleCompare() {
	left := instcmp.NewInstance()
	left.AddRelation("Conf", "Id", "Year", "Org")
	left.Append("Conf", instcmp.Null("N1"), instcmp.Const("1975"), instcmp.Const("VLDB End."))
	left.Append("Conf", instcmp.Null("N2"), instcmp.Const("1976"), instcmp.Const("VLDB End."))

	right := instcmp.NewInstance()
	right.AddRelation("Conf", "Id", "Year", "Org")
	right.Append("Conf", instcmp.Null("Na"), instcmp.Const("1975"), instcmp.Const("VLDB End."))
	right.Append("Conf", instcmp.Null("Nb"), instcmp.Const("1976"), instcmp.Const("VLDB End."))

	res, err := instcmp.Compare(left, right, &instcmp.Options{Mode: instcmp.OneToOne})
	if err != nil {
		panic(err)
	}
	fmt.Printf("similarity: %.2f, matched pairs: %d\n", res.Score, len(res.Pairs))
	// Output:
	// similarity: 1.00, matched pairs: 2
}

// ExampleCompare_valueMappings shows how a match explains what each null
// stands for.
func ExampleCompare_valueMappings() {
	left := instcmp.NewInstance()
	left.AddRelation("Conf", "Name", "Place")
	left.Append("Conf", instcmp.Const("VLDB"), instcmp.Null("N1"))

	right := instcmp.NewInstance()
	right.AddRelation("Conf", "Name", "Place")
	right.Append("Conf", instcmp.Const("VLDB"), instcmp.Const("Framingham"))

	res, err := instcmp.Compare(left, right, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println("N1 stands for", res.LeftValueMapping[instcmp.Null("N1")])
	// Output:
	// N1 stands for Framingham
}

// ExampleSimilarity is the one-call form.
func ExampleSimilarity() {
	a := instcmp.NewInstance()
	a.AddRelation("R", "X")
	a.Append("R", instcmp.Const("v"))

	s, err := instcmp.Similarity(a, a.Clone())
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.1f\n", s)
	// Output:
	// 1.0
}

// ExampleIsIsomorphic: renaming labeled nulls never changes the incomplete
// database an instance represents.
func ExampleIsIsomorphic() {
	in := instcmp.NewInstance()
	in.AddRelation("R", "A", "B")
	in.Append("R", instcmp.Null("N1"), instcmp.Const("x"))

	fmt.Println(instcmp.IsIsomorphic(in, in.RenameNulls("other_")))
	// Output:
	// true
}

// ExampleCore folds a redundant universal solution down to its core.
func ExampleCore() {
	in := instcmp.NewInstance()
	in.AddRelation("Conf", "Name", "Year", "Place")
	in.Append("Conf", instcmp.Const("VLDB"), instcmp.Const("1976"), instcmp.Null("N1"))
	in.Append("Conf", instcmp.Const("VLDB"), instcmp.Null("N2"), instcmp.Const("Brussels"))
	in.Append("Conf", instcmp.Const("VLDB"), instcmp.Const("1976"), instcmp.Const("Brussels"))

	core := instcmp.Core(in)
	fmt.Println("core size:", core.NumTuples())
	// Output:
	// core size: 1
}

// ExampleOptions_partial: partial matching with string similarity credits
// near-matching constants (the paper's future-work extension).
func ExampleOptions_partial() {
	left := instcmp.NewInstance()
	left.AddRelation("P", "Name", "City")
	left.Append("P", instcmp.Const("alice"), instcmp.Const("Boston"))

	right := instcmp.NewInstance()
	right.AddRelation("P", "Name", "City")
	right.Append("P", instcmp.Const("alice"), instcmp.Const("Bostom")) // typo

	strict, _ := instcmp.Compare(left, right, nil)
	fuzzy, _ := instcmp.Compare(left, right, &instcmp.Options{
		Partial:         true,
		ConstSimilarity: instcmp.Levenshtein,
	})
	fmt.Printf("strict %.2f, fuzzy %.2f\n", strict.Score, fuzzy.Score)
	// Output:
	// strict 0.00, fuzzy 0.92
}

// ExampleResult_pairs shows iterating a match in a stable order.
func ExampleResult_pairs() {
	mk := func() *instcmp.Instance {
		in := instcmp.NewInstance()
		in.AddRelation("R", "A")
		in.Append("R", instcmp.Const("x"))
		in.Append("R", instcmp.Const("y"))
		return in
	}
	res, _ := instcmp.Compare(mk(), mk(), &instcmp.Options{Mode: instcmp.OneToOne})
	sort.Slice(res.Pairs, func(i, j int) bool { return res.Pairs[i].LeftID < res.Pairs[j].LeftID })
	for _, p := range res.Pairs {
		fmt.Printf("%s: t%d -> t%d\n", p.Relation, p.LeftID, p.RightID)
	}
	// Output:
	// R: t0 -> t0
	// R: t1 -> t1
}

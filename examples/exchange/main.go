// Data-exchange evaluation example (Sec. 7.2, Table 6): chase a Doctors
// source through four schema mappings, compute the gold core solution, and
// evaluate each generated solution against it. A naive row-count metric
// rates the completely wrong solution 1.0; the instance-similarity score
// exposes it, rewards the compact correct mapping, and quantifies the
// redundancy of the verbose one. The example also shows the homomorphism
// API the evaluation builds on.
//
// Run with: go run ./examples/exchange
package main

import (
	"fmt"
	"log"

	"instcmp"
	"instcmp/internal/exchange"
)

func main() {
	ex := exchange.NewDoctorsExchange(400, 1)

	fmt.Println("gold mapping:")
	fmt.Println("  " + ex.Gold.Describe())

	gold, err := exchange.CoreSolution(ex.Source, ex.TargetSchema, ex.Gold)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gold core solution: %d tuples\n\n", gold.NumTuples())

	cases := []struct {
		name string
		m    exchange.Mapping
		note string
	}{
		{"U2", ex.U2, "correct, mildly redundant (re-exports senior doctors)"},
		{"U1", ex.U1, "correct, heavily redundant (re-exports everyone with unknown spec)"},
		{"W", ex.Wrong, "wrong (populates the target from the Office table)"},
	}
	fmt.Printf("%-3s  %7s  %6s  %9s  %9s  %-9s\n",
		"map", "tuples", "miss", "RowScore", "SigScore", "universal")
	for _, c := range cases {
		sol, err := exchange.Chase(ex.Source, ex.TargetSchema, c.m)
		if err != nil {
			log.Fatal(err)
		}
		// Universal solutions admit a homomorphism into every other
		// solution — in particular into the core.
		universal := instcmp.HasHomomorphism(sol, gold.RenameNulls("g·"))

		// Universal-vs-core comparison uses left-injective
		// (functional) tuple mappings: every solution tuple folds
		// onto exactly one core tuple.
		res, err := instcmp.Compare(sol, gold, &instcmp.Options{
			Mode:      instcmp.Functional,
			Algorithm: instcmp.AlgoSignature,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-3s  %7d  %6d  %9.2f  %9.2f  %-9v  %s\n",
			c.name, sol.NumTuples(), exchange.MissingRows(sol, gold),
			exchange.RowScore(sol, gold), res.Score, universal, c.note)
	}

	fmt.Println("\nRowScore rates the wrong mapping 1.0 (same row count as the gold);")
	fmt.Println("the similarity score rates it 0 and orders U2 above U1 by redundancy.")
}

// Data-cleaning evaluation example (Sec. 7.2, Table 5): inject FD
// violations into a clean Bus dataset, repair it with four strategies
// modeled after published systems, and score each repair against the gold
// three ways — classic F1 on error cells, whole-instance F1, and the
// instance-similarity score. The point of the experiment: F1 punishes a
// system for marking a conflict with a labeled null as hard as for leaving
// the error, while the similarity score gives nulls partial credit (λ) and
// still preserves the quality ranking.
//
// Run with: go run ./examples/cleaning
package main

import (
	"fmt"
	"log"

	"instcmp"
	"instcmp/internal/cleaning"
	"instcmp/internal/datasets"
)

func main() {
	const rows = 5000
	clean, err := datasets.Generate(datasets.Bus, rows, 1)
	if err != nil {
		log.Fatal(err)
	}

	// The Bus schema carries FDs like RouteId -> RouteName: the same
	// route must always show the same name.
	var fds []cleaning.FD
	for _, fd := range datasets.BusFDs() {
		fds = append(fds, cleaning.FD{Relation: "Bus", Lhs: fd[0], Rhs: fd[1]})
	}

	// Corrupt 5% of the FD-dependent cells (BART-style error injection).
	dirty, errs := cleaning.InjectErrors(clean, fds, 0.05, 2)
	fmt.Printf("injected %d errors into %d rows; %d violating groups\n\n",
		len(errs), rows, len(cleaning.FindViolations(dirty, fds)))

	fmt.Printf("%-10s  %6s  %8s  %9s\n", "system", "F1", "F1 Inst.", "Sig Score")
	for _, sys := range cleaning.Systems {
		repaired, err := cleaning.Repair(dirty, fds, sys, 3)
		if err != nil {
			log.Fatal(err)
		}
		m := cleaning.Evaluate(clean, dirty, repaired, errs)

		// Repair vs gold: fully-injective complete matches (every
		// tuple is one real-world trip).
		res, err := instcmp.Compare(repaired, clean, &instcmp.Options{
			Mode:      instcmp.OneToOne,
			Algorithm: instcmp.AlgoSignature,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s  %6.3f  %8.3f  %9.3f\n", sys, m.F1, m.F1Inst, res.Score)
	}

	fmt.Println("\nF1 separates the systems sharply because labeled nulls count as")
	fmt.Println("failures; the similarity score stays high for all systems, ranks")
	fmt.Println("them the same way, and needs no cell-level ground truth alignment.")
}

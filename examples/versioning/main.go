// Data versioning example (Sec. 7.2, Table 7): recover what changed between
// two versions of a dataset that share no keys — rows were shuffled, some
// were deleted, and a column was dropped — and contrast the instance-match
// answer with what a line-oriented diff would report.
//
// Run with: go run ./examples/versioning
package main

import (
	"fmt"
	"log"
	"math/rand"

	"instcmp"
	"instcmp/internal/datasets"
	"instcmp/internal/versioning"
)

func main() {
	// A small Iris-like measurement table (no key attributes at all).
	base := datasets.IrisData(120, rand.New(rand.NewSource(7)))

	for _, variant := range versioning.Variants {
		mod, err := versioning.MakeVariant(base, variant, 0, 11)
		if err != nil {
			log.Fatal(err)
		}

		// The diff baseline: longest common subsequence of serialized
		// rows, exactly what `diff old.csv new.csv` measures.
		d := versioning.LineDiff(base, mod)

		// The instance-match answer. AlignSchemas pads a dropped
		// column with fresh nulls so the comparison still goes
		// through (Sec. 4).
		res, err := instcmp.Compare(base, mod, &instcmp.Options{
			Mode:         instcmp.OneToOne,
			Algorithm:    instcmp.AlgoSignature,
			AlignSchemas: true,
		})
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("variant %-2s (%s)\n", variant, describe(variant))
		fmt.Printf("  diff     : %3d matched, %3d only-old, %3d only-new\n",
			d.Matched, d.LeftNonMatch, d.RightNonMatch)
		fmt.Printf("  instcmp  : %3d matched, %3d only-old, %3d only-new  (similarity %.3f)\n\n",
			len(res.Pairs), len(res.LeftUnmatched), len(res.RightUnmatched), res.Score)
	}

	fmt.Println("diff collapses on shuffles and dropped columns; the instance")
	fmt.Println("match recovers the true row correspondence in every variant.")
}

func describe(v versioning.Variant) string {
	switch v {
	case versioning.Shuffled:
		return "rows shuffled"
	case versioning.Removed:
		return "rows removed"
	case versioning.RemovedShuffled:
		return "rows removed and shuffled"
	case versioning.ColumnsRemoved:
		return "a column dropped"
	}
	return string(v)
}

// Version-history reconstruction (the paper's introduction): a data lake
// holds several versions of a dataset, uploaded without any lineage
// metadata, keys, or consistent null names. Pairwise instance similarity
// recovers the evolution order: each edit step lowers similarity a little,
// so consecutive versions are the most similar pairs.
//
// The example fabricates a chain V0 -> V1 -> ... -> V4 of cumulative edits
// (cell updates, value masking with nulls, inserts, deletes), shuffles the
// versions, and reconstructs the chain from the similarity matrix alone.
//
// Run with: go run ./examples/history
package main

import (
	"fmt"
	"log"
	"math/rand"

	"instcmp"
	"instcmp/internal/datasets"
	"instcmp/internal/model"
)

const versions = 5

func main() {
	rng := rand.New(rand.NewSource(3))
	chain := makeChain(rng)

	// Pairwise similarity matrix (the lake does not know the order; we
	// keep indexes only to check the reconstruction at the end).
	simMat := make([][]float64, versions)
	for i := range simMat {
		simMat[i] = make([]float64, versions)
		simMat[i][i] = 1
	}
	for i := 0; i < versions; i++ {
		for j := i + 1; j < versions; j++ {
			res, err := instcmp.Compare(chain[i], chain[j], &instcmp.Options{
				Mode:      instcmp.OneToOne,
				Algorithm: instcmp.AlgoSignature,
			})
			if err != nil {
				log.Fatal(err)
			}
			simMat[i][j], simMat[j][i] = res.Score, res.Score
		}
	}

	fmt.Println("similarity matrix:")
	for i := range simMat {
		fmt.Printf("  V%d:", i)
		for j := range simMat[i] {
			fmt.Printf(" %.3f", simMat[i][j])
		}
		fmt.Println()
	}

	order := reconstructChain(simMat)
	fmt.Printf("\nreconstructed evolution: ")
	for i, v := range order {
		if i > 0 {
			fmt.Print(" -> ")
		}
		fmt.Printf("V%d", v)
	}
	fmt.Println()
	fmt.Println("(the true chain is V0 -> V1 -> V2 -> V3 -> V4; either " +
		"reading direction is correct — similarity cannot tell time's arrow)")
}

// makeChain builds V0..V4, each derived from its predecessor by a batch of
// edits: some cells updated, some masked with fresh nulls, a few rows
// deleted and inserted.
func makeChain(rng *rand.Rand) []*instcmp.Instance {
	chain := make([]*instcmp.Instance, versions)
	chain[0] = datasets.NbaData(300, rng)
	for v := 1; v < versions; v++ {
		next := chain[v-1].Clone()
		rel := next.Relations()[0]
		for k := 0; k < 12; k++ { // update or mask cells
			t := &rel.Tuples[rng.Intn(len(rel.Tuples))]
			a := rng.Intn(len(t.Values))
			if rng.Intn(2) == 0 {
				t.Values[a] = next.FreshNull(fmt.Sprintf("v%d_", v))
			} else {
				t.Values[a] = model.Constf("upd_%d_%d", v, k)
			}
		}
		for k := 0; k < 4; k++ { // delete rows
			i := rng.Intn(len(rel.Tuples))
			rel.Tuples = append(rel.Tuples[:i], rel.Tuples[i+1:]...)
		}
		for k := 0; k < 4; k++ { // insert rows
			next.Append(rel.Name,
				model.Constf("player_new%d_%d", v, k), model.Constf("team_%d", rng.Intn(30)),
				model.Constf("%d", 2020+v), model.Constf("%d", rng.Intn(82)),
				model.Constf("%d", rng.Intn(40)), model.Constf("%d", rng.Intn(35)),
				model.Constf("%d", rng.Intn(15)), model.Constf("%d", rng.Intn(12)),
				model.Constf("%d", rng.Intn(4)), model.Constf("%d", rng.Intn(4)),
				model.Constf("pos_%d", rng.Intn(5)))
		}
		next.Shuffle(rng)
		chain[v] = next
	}
	return chain
}

// reconstructChain orders the versions as a maximum-similarity Hamiltonian
// path, built greedily from the globally most similar pair outward — the
// heuristic a versioning system would use to propose a lineage.
func reconstructChain(sim [][]float64) []int {
	n := len(sim)
	used := make([]bool, n)
	// Seed with the most similar pair.
	bi, bj := 0, 1
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if sim[i][j] > sim[bi][bj] {
				bi, bj = i, j
			}
		}
	}
	path := []int{bi, bj}
	used[bi], used[bj] = true, true
	for len(path) < n {
		head, tail := path[0], path[len(path)-1]
		bestV, bestS, atHead := -1, -1.0, false
		for v := 0; v < n; v++ {
			if used[v] {
				continue
			}
			if sim[head][v] > bestS {
				bestV, bestS, atHead = v, sim[head][v], true
			}
			if sim[tail][v] > bestS {
				bestV, bestS, atHead = v, sim[tail][v], false
			}
		}
		if atHead {
			path = append([]int{bestV}, path...)
		} else {
			path = append(path, bestV)
		}
		used[bestV] = true
	}
	return path
}

// Quickstart: compare two small conference tables with labeled nulls and
// print the similarity score together with the match that explains it.
//
// This is the running example of the paper's Sections 1-3: two versions of
// a Conference relation where missing values are labeled nulls, no keys are
// shared, and the best instance match maps nulls to the values they stand
// for.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"instcmp"
)

func main() {
	// The original instance I (Fig. 1): missing values are labeled nulls.
	left := instcmp.NewInstance()
	left.AddRelation("Conference", "Name", "Year", "Place", "Org")
	left.Append("Conference",
		instcmp.Const("VLDB"), instcmp.Const("1975"), instcmp.Const("Framingham"), instcmp.Const("VLDB End."))
	left.Append("Conference",
		instcmp.Const("VLDB"), instcmp.Const("1976"), instcmp.Null("N1"), instcmp.Null("N2"))
	left.Append("Conference",
		instcmp.Const("SIGMOD"), instcmp.Const("1975"), instcmp.Const("San Jose"), instcmp.Const("ACM"))

	// An evolved version I1: a year went missing, a new conference
	// appeared, and the 1976 edition gained its place and organizer.
	right := instcmp.NewInstance()
	right.AddRelation("Conference", "Name", "Year", "Place", "Org")
	right.Append("Conference",
		instcmp.Const("SIGMOD"), instcmp.Const("1975"), instcmp.Const("San Jose"), instcmp.Const("ACM"))
	right.Append("Conference",
		instcmp.Const("VLDB"), instcmp.Null("V1"), instcmp.Const("Framingham"), instcmp.Const("VLDB End."))
	right.Append("Conference",
		instcmp.Const("VLDB"), instcmp.Const("1976"), instcmp.Const("Brussels"), instcmp.Const("VLDB End."))
	right.Append("Conference",
		instcmp.Const("CC&P"), instcmp.Const("1980"), instcmp.Const("Montreal"), instcmp.Null("V2"))

	res, err := instcmp.Compare(left, right, &instcmp.Options{Mode: instcmp.OneToOne})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("similarity(I, I1) = %.4f  (algorithm: %s)\n\n", res.Score, res.Algorithm)

	fmt.Println("tuple mapping (which row evolved into which):")
	for _, p := range res.Pairs {
		fmt.Printf("  left t%d -> right t%d  (pair score %.2f of 4)\n", p.LeftID, p.RightID, p.Score)
	}

	fmt.Println("\nhow the nulls were interpreted:")
	for null, val := range res.LeftValueMapping {
		if null != val {
			fmt.Printf("  left  %v stands for %v\n", null, val)
		}
	}
	for null, val := range res.RightValueMapping {
		if null != val {
			fmt.Printf("  right %v stands for %v\n", null, val)
		}
	}

	fmt.Println("\nrows without a counterpart (inserted or deleted):")
	for _, id := range res.LeftUnmatched {
		fmt.Printf("  deleted:  left t%d\n", id)
	}
	for _, id := range res.RightUnmatched {
		fmt.Printf("  inserted: right t%d\n", id)
	}

	// An instance is maximally similar to any renaming of its nulls.
	clone := left.RenameNulls("renamed_")
	s, err := instcmp.Similarity(left, clone)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimilarity(I, I-with-renamed-nulls) = %.4f (isomorphic instances score 1)\n", s)
}

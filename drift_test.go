package instcmp

import (
	"fmt"
	"math"
	"testing"

	"instcmp/internal/generator"
)

// driftFixture builds a source instance and a lightly perturbed copy with
// content-distinctive columns (a unique id, unique emails, a low-cardinality
// city, numeric ages), so mapping discovery has real signal to work with —
// the same regime the schema-drift walkthrough targets.
func driftFixture() (*Instance, *Instance) {
	cities := []string{"Tacoma", "Loveland", "Kent"}
	mk := func() *Instance {
		in := NewInstance()
		in.AddRelation("people", "id", "email", "city", "age", "note")
		for i := 0; i < 40; i++ {
			in.Append("people",
				Const(fmt.Sprintf("id-%03d", i)),
				Const(fmt.Sprintf("user%03d@example.com", i)),
				Const(cities[i%3]),
				Const(fmt.Sprintf("%d", 20+i%50)),
				Const(fmt.Sprintf("note %d", i%7)),
			)
		}
		return in
	}
	left, right := mk(), mk()
	r := right.Relation("people")
	r.Tuples[3].Values[2] = Null("u1")
	r.Tuples[8].Values[4] = Null("u2")
	r.Tuples[12].Values[3] = Const("99")
	r.Tuples[20].Values[2] = Const("Fargo")
	return left, right
}

// TestDiscoverRecoversDriftedScore is the ISSUE's central property: renaming
// and reordering columns (no drops) loses no information, so comparing under
// a discovered mapping must reproduce the pre-drift score within the
// signature algorithm's epsilon — at every worker count.
func TestDiscoverRecoversDriftedScore(t *testing.T) {
	left, right := driftFixture()
	drifted, dlog := generator.DriftTarget(right, generator.Drift{RenamePct: 1, Reorder: true, Seed: 7})
	if len(dlog.RenamedAttrs["people"]) != 5 {
		t.Fatalf("drift did not rename everything: %+v", dlog.RenamedAttrs)
	}

	// Plain mode must refuse the drifted pair: nothing lines up by name.
	if _, err := Compare(left, drifted, &Options{Algorithm: AlgoSignature}); err == nil {
		t.Fatal("schema mismatch not reported without discovery")
	}

	for _, workers := range []int{1, 4} {
		opt := &Options{Algorithm: AlgoSignature, Lambda: 0.5, SigWorkers: workers}
		base, err := Compare(left, right, opt)
		if err != nil {
			t.Fatal(err)
		}
		dopt := *opt
		dopt.DiscoverMapping = true
		res, err := Compare(left, drifted, &dopt)
		if err != nil {
			t.Fatalf("SigWorkers=%d: %v", workers, err)
		}
		if math.Abs(res.Score-base.Score) > 1e-9 {
			t.Errorf("SigWorkers=%d: drifted score %.17g, pre-drift %.17g", workers, res.Score, base.Score)
		}
		if res.Mapping == nil || res.Mapping.Confidence <= 0 {
			t.Errorf("SigWorkers=%d: mapping not reported: %+v", workers, res.Mapping)
		}
	}
}

// TestDiscoverDropColumnDegrades pins the other half of the property: each
// additional dropped column can only lose information, so the discovered-
// mapping score must be non-increasing in the drop count (the drift's drop
// sets are nested at equal seeds).
func TestDiscoverDropColumnDegrades(t *testing.T) {
	left, right := driftFixture()
	for _, workers := range []int{1, 4} {
		opt := &Options{Algorithm: AlgoSignature, Lambda: 0.5, SigWorkers: workers, DiscoverMapping: true}
		prev := math.Inf(1)
		for k := 0; k <= 3; k++ {
			drifted, _ := generator.DriftTarget(right, generator.Drift{RenamePct: 1, Reorder: true, DropCols: k, Seed: 11})
			res, err := Compare(left, drifted, opt)
			if err != nil {
				t.Fatalf("SigWorkers=%d DropCols=%d: %v", workers, k, err)
			}
			if res.Score > prev+1e-9 {
				t.Errorf("SigWorkers=%d: dropping %d columns raised the score: %.17g > %.17g",
					workers, k, res.Score, prev)
			}
			prev = res.Score
		}
	}
}

// TestDiscoverRenamedRelationEndToEnd drifts the relation name too, so the
// content-based relation pairing carries the whole recovery.
func TestDiscoverRenamedRelationEndToEnd(t *testing.T) {
	left, right := driftFixture()
	drifted, dlog := generator.DriftTarget(right, generator.Drift{RenamePct: 1, Reorder: true, RenameRelations: true, Seed: 13})
	if dlog.RenamedRelations["people"] == "" {
		t.Fatal("relation not renamed")
	}
	base, err := Compare(left, right, &Options{Algorithm: AlgoSignature, Lambda: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compare(left, drifted, &Options{Algorithm: AlgoSignature, Lambda: 0.5, DiscoverMapping: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Score-base.Score) > 1e-9 {
		t.Errorf("drifted score %.17g, pre-drift %.17g", res.Score, base.Score)
	}
	if res.Mapping == nil || len(res.Mapping.Relations) != 1 ||
		res.Mapping.Relations[0].Right != dlog.RenamedRelations["people"] {
		t.Errorf("mapping did not pair the renamed relation: %+v", res.Mapping)
	}
}

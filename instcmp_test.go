package instcmp

import (
	"math"
	"testing"
	"time"
)

func conf(rows ...[]Value) *Instance {
	in := NewInstance()
	in.AddRelation("Conf", "Name", "Year", "Org")
	for _, row := range rows {
		in.Append("Conf", row...)
	}
	return in
}

func TestCompareIdentical(t *testing.T) {
	l := conf([]Value{Const("VLDB"), Const("1975"), Null("N1")})
	r := conf([]Value{Const("VLDB"), Const("1975"), Null("N1")}) // same null name: must be renamed apart
	res, err := Compare(l, r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Score-1) > 1e-9 {
		t.Errorf("score = %v, want 1", res.Score)
	}
	if len(res.Pairs) != 1 || len(res.LeftUnmatched) != 0 || len(res.RightUnmatched) != 0 {
		t.Errorf("explanation wrong: %+v", res)
	}
}

func TestCompareReportsOriginalIDs(t *testing.T) {
	l := conf(
		[]Value{Const("VLDB"), Const("1975"), Const("x")},
		[]Value{Const("ICDE"), Const("1984"), Const("y")},
	)
	r := conf(
		[]Value{Const("ICDE"), Const("1984"), Const("y")},
	)
	res, err := Compare(l, r, &Options{Mode: OneToOne})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 1 {
		t.Fatalf("pairs = %v", res.Pairs)
	}
	wantL := l.Relation("Conf").Tuples[1].ID
	wantR := r.Relation("Conf").Tuples[0].ID
	if res.Pairs[0].LeftID != wantL || res.Pairs[0].RightID != wantR {
		t.Errorf("pair ids = %+v, want %d -> %d", res.Pairs[0], wantL, wantR)
	}
	if len(res.LeftUnmatched) != 1 || res.LeftUnmatched[0] != l.Relation("Conf").Tuples[0].ID {
		t.Errorf("unmatched = %v", res.LeftUnmatched)
	}
}

func TestCompareDoesNotMutateInputs(t *testing.T) {
	l := conf([]Value{Const("VLDB"), Null("N1"), Null("N1")})
	r := conf([]Value{Const("VLDB"), Null("N1"), Const("k")})
	lBefore, rBefore := l.String(), r.String()
	if _, err := Compare(l, r, nil); err != nil {
		t.Fatal(err)
	}
	if l.String() != lBefore || r.String() != rBefore {
		t.Error("Compare mutated its inputs")
	}
}

func TestCompareAlgorithmSelection(t *testing.T) {
	l := conf([]Value{Const("a"), Const("b"), Const("c")})
	r := conf([]Value{Const("a"), Const("b"), Const("c")})
	res, err := Compare(l, r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != AlgoExact || !res.Exhaustive {
		t.Errorf("small input should use exhaustive exact, got %v", res.Algorithm)
	}

	big := NewInstance()
	big.AddRelation("R", "A")
	for i := 0; i < 20; i++ {
		big.Append("R", Const("v"))
	}
	res, err = Compare(big, big.Clone(), &Options{Mode: OneToOne})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != AlgoSignature {
		t.Errorf("large input should use signature, got %v", res.Algorithm)
	}
	if res.Stats.SigMatches == 0 && res.Stats.CompatMatches == 0 {
		t.Error("signature stats missing")
	}
	if math.Abs(res.Score-1) > 1e-9 {
		t.Errorf("self-comparison score = %v", res.Score)
	}
}

func TestCompareValueMappings(t *testing.T) {
	l := conf([]Value{Const("VLDB"), Null("N1"), Const("org")})
	r := conf([]Value{Const("VLDB"), Const("1975"), Const("org")})
	res, err := Compare(l, r, &Options{Algorithm: AlgoExact})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.LeftValueMapping[Null("N1")]; got != Const("1975") {
		t.Errorf("h_l(N1) = %v, want 1975", got)
	}
}

func TestCompareSchemaMismatch(t *testing.T) {
	l := conf([]Value{Const("a"), Const("b"), Const("c")})
	r := NewInstance()
	r.AddRelation("Conf", "Name", "Year") // narrower schema
	r.Append("Conf", Const("a"), Const("b"))
	if _, err := Compare(l, r, nil); err == nil {
		t.Fatal("schema mismatch not reported")
	}
	res, err := Compare(l, r, &Options{AlignSchemas: true})
	if err != nil {
		t.Fatalf("AlignSchemas failed: %v", err)
	}
	// Matched pair: Name=a (1), Year=b (1), Org: const vs padding null (λ).
	want := (2 + 2*DefaultLambda + 2) / 6.0
	if math.Abs(res.Score-want) > 1e-9 {
		t.Errorf("aligned score = %v, want %v", res.Score, want)
	}
}

func TestAlignPaddingSkipsAdversarialNullNames(t *testing.T) {
	// The right side's first row is padded before its second row — which
	// carries a user null literally named like the padding counter's next
	// output — is copied over. The padding null must stay distinct from the
	// unrelated user null.
	l := NewInstance()
	l.AddRelation("R", "A", "B")
	l.Append("R", Const("x"), Const("y"))
	r := NewInstance()
	r.AddRelation("R", "A")
	r.Append("R", Const("x"))
	r.Append("R", Null("pad·r·1"))
	_, ar := alignSchemas(l.Clone(), r.Clone())
	rel := ar.Relation("R")
	pad0, user, pad1 := rel.Tuples[0].Values[1], rel.Tuples[1].Values[0], rel.Tuples[1].Values[1]
	if !pad0.IsNull() || !user.IsNull() || !pad1.IsNull() {
		t.Fatalf("expected three nulls, got %v %v %v", pad0, user, pad1)
	}
	if pad0 == user || pad1 == user {
		t.Fatalf("padding null merged with unrelated user null %v", user)
	}
	if pad0 == pad1 {
		t.Fatalf("padding nulls not pairwise distinct: %v", pad0)
	}

	// Behavioral pin: the adversarial name must score exactly like an
	// innocent one — the null's spelling carries no semantics.
	benign := NewInstance()
	benign.AddRelation("R", "A")
	benign.Append("R", Const("x"))
	benign.Append("R", Null("harmless"))
	resAdv, err := Compare(l, r, &Options{AlignSchemas: true})
	if err != nil {
		t.Fatal(err)
	}
	resBenign, err := Compare(l, benign, &Options{AlignSchemas: true})
	if err != nil {
		t.Fatal(err)
	}
	if resAdv.Score != resBenign.Score {
		t.Errorf("adversarial null name changed the score: %v != %v", resAdv.Score, resBenign.Score)
	}
}

func TestCompareAlignAddsMissingRelation(t *testing.T) {
	l := conf([]Value{Const("a"), Const("b"), Const("c")})
	r := l.Clone()
	extra := l.Clone()
	extra.AddRelation("Extra", "X")
	extra.Append("Extra", Const("q"))
	res, err := Compare(extra, r, &Options{AlignSchemas: true})
	if err != nil {
		t.Fatal(err)
	}
	// Conf matches fully (3+3); Extra's tuple is unmatched (0 of 1 cell).
	want := 6.0 / 7.0
	if math.Abs(res.Score-want) > 1e-9 {
		t.Errorf("score = %v, want %v", res.Score, want)
	}
	if len(res.LeftUnmatched) != 1 {
		t.Errorf("unmatched = %v", res.LeftUnmatched)
	}
}

func TestSimilarityConvenience(t *testing.T) {
	l := conf([]Value{Const("a"), Const("b"), Const("c")})
	s, err := Similarity(l, l.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-1) > 1e-9 {
		t.Errorf("Similarity = %v, want 1", s)
	}
}

func TestLambdaOptions(t *testing.T) {
	l := conf([]Value{Null("N1"), Const("b"), Const("c")})
	r := conf([]Value{Const("k"), Const("b"), Const("c")})
	def, _ := Compare(l, r, nil)
	zero, _ := Compare(l, r, &Options{ExplicitZeroLambda: true})
	custom, _ := Compare(l, r, &Options{Lambda: 0.9})
	if !(zero.Score < def.Score && def.Score < custom.Score) {
		t.Errorf("λ ordering violated: %v %v %v", zero.Score, def.Score, custom.Score)
	}
}

func TestExactBudgetSurfaced(t *testing.T) {
	// All-null left vs mixed null/constant right: the warm start cannot
	// reach the root's optimistic bound (constants only earn λ against
	// nulls), so the search descends and trips the 10-node budget.
	in := NewInstance()
	in.AddRelation("R", "A")
	for i := 0; i < 9; i++ {
		in.Append("R", Null(Nullf(i)))
	}
	other := NewInstance()
	other.AddRelation("R", "A")
	for i := 0; i < 9; i++ {
		if i%2 == 0 {
			other.Append("R", Null("V"+Nullf(i)))
		} else {
			other.Append("R", Const("k"+Nullf(i)))
		}
	}
	res, err := Compare(in, other, &Options{Algorithm: AlgoExact, ExactMaxNodes: 10, Mode: ManyToMany})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exhaustive {
		t.Error("budget-capped run reported exhaustive")
	}
	if res.Elapsed <= 0 || res.Elapsed > time.Minute {
		t.Errorf("elapsed implausible: %v", res.Elapsed)
	}
}

func Nullf(i int) string { return string(rune('a' + i)) }

func TestPublicHomAPI(t *testing.T) {
	a := conf([]Value{Const("VLDB"), Const("1976"), Null("N1")})
	b := conf([]Value{Const("VLDB"), Const("1976"), Const("x")})
	if !HasHomomorphism(a, b) {
		t.Error("hom a->b missing")
	}
	if HasHomomorphism(b, a) {
		t.Error("hom b->a should not exist")
	}
	if h := FindHomomorphism(a, b); h == nil || h[Null("N1")] != Const("x") {
		t.Errorf("FindHomomorphism = %v", h)
	}
	if !IsIsomorphic(a, a.RenameNulls("Z")) {
		t.Error("renamed copy not isomorphic")
	}
	if HomEquivalent(a, b) {
		t.Error("not equivalent")
	}
	red := conf(
		[]Value{Const("VLDB"), Const("1976"), Null("N1")},
		[]Value{Const("VLDB"), Const("1976"), Const("x")},
	)
	if got := Core(red).NumTuples(); got != 1 {
		t.Errorf("core size = %d, want 1", got)
	}
}

package instcmp

import (
	"strings"
	"testing"
)

// TestCompareRejectsInvalidOptions pins the Options validation: λ outside
// [0, 1) and negative MinPartialSig are caller errors, reported up front
// instead of producing out-of-range scores.
func TestCompareRejectsInvalidOptions(t *testing.T) {
	l, r := NewInstance(), NewInstance()
	l.AddRelation("R", "A")
	r.AddRelation("R", "A")
	l.Append("R", Const("x"))
	r.Append("R", Const("x"))

	cases := []struct {
		name    string
		opt     Options
		wantSub string
	}{
		{"negative lambda", Options{Lambda: -0.1}, "Lambda"},
		{"lambda one", Options{Lambda: 1}, "Lambda"},
		{"lambda above one", Options{Lambda: 1.5}, "Lambda"},
		{"negative min partial sig", Options{MinPartialSig: -1}, "MinPartialSig"},
	}
	for _, tc := range cases {
		if _, err := Compare(l, r, &tc.opt); err == nil {
			t.Errorf("%s: Compare accepted invalid options %+v", tc.name, tc.opt)
		} else if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: error %q does not mention %s", tc.name, err, tc.wantSub)
		}
	}

	// The boundary values stay valid: λ = 0 (meaning DefaultLambda) and
	// explicit zero λ, plus λ just under 1.
	for _, opt := range []Options{{}, {ExplicitZeroLambda: true}, {Lambda: 0.999}} {
		if _, err := Compare(l, r, &opt); err != nil {
			t.Errorf("Compare rejected valid options %+v: %v", opt, err)
		}
	}
}

package instcmp

import (
	"strings"
	"testing"
)

// TestCompareRejectsInvalidOptions pins the shared Options validation gate:
// every invalid field is rejected up front, with the same error, by both
// the one-shot and the prepared comparison paths (they share
// Options.validate, and this test keeps it that way).
func TestCompareRejectsInvalidOptions(t *testing.T) {
	l, r := NewInstance(), NewInstance()
	l.AddRelation("R", "A")
	r.AddRelation("R", "A")
	l.Append("R", Const("x"))
	r.Append("R", Const("x"))
	lp, err := Prepare(l)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Prepare(r)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		opt     Options
		wantSub string
	}{
		{"negative lambda", Options{Lambda: -0.1}, "Lambda"},
		{"lambda one", Options{Lambda: 1}, "Lambda"},
		{"lambda above one", Options{Lambda: 1.5}, "Lambda"},
		{"negative min partial sig", Options{MinPartialSig: -1}, "MinPartialSig"},
		{"negative exact workers", Options{ExactWorkers: -1}, "ExactWorkers"},
		{"negative sig workers", Options{SigWorkers: -2}, "SigWorkers"},
	}
	paths := []struct {
		name string
		run  func(opt *Options) error
	}{
		{"Compare", func(opt *Options) error {
			_, err := Compare(l, r, opt)
			return err
		}},
		{"ComparePrepared", func(opt *Options) error {
			_, err := ComparePrepared(lp, rp, opt)
			return err
		}},
	}
	for _, path := range paths {
		for _, tc := range cases {
			err := path.run(&tc.opt)
			if err == nil {
				t.Errorf("%s/%s: accepted invalid options %+v", path.name, tc.name, tc.opt)
			} else if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("%s/%s: error %q does not mention %s", path.name, tc.name, err, tc.wantSub)
			}
		}
	}

	// Both paths report the same error text for the same invalid options.
	for _, tc := range cases {
		e1 := paths[0].run(&tc.opt)
		e2 := paths[1].run(&tc.opt)
		if e1 == nil || e2 == nil || e1.Error() != e2.Error() {
			t.Errorf("%s: paths disagree: Compare=%v ComparePrepared=%v", tc.name, e1, e2)
		}
	}

	// The boundary values stay valid: λ = 0 (meaning DefaultLambda) and
	// explicit zero λ, plus λ just under 1 and explicit worker counts.
	for _, opt := range []Options{{}, {ExplicitZeroLambda: true}, {Lambda: 0.999}, {ExactWorkers: 2, SigWorkers: 2}} {
		for _, path := range paths {
			if err := path.run(&opt); err != nil {
				t.Errorf("%s rejected valid options %+v: %v", path.name, opt, err)
			}
		}
	}
}

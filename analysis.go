package instcmp

import (
	"instcmp/internal/csvio"
	"instcmp/internal/hom"
)

// HasHomomorphism reports whether a homomorphism from one instance into the
// other exists (identity on constants, tuples map into the target). The
// paper's Sec. 7.2 uses this as a scalable homomorphism check for data
// exchange, where prior work relied on brute force.
func HasHomomorphism(from, to *Instance) bool {
	return hom.Exists(from, to)
}

// FindHomomorphism returns a homomorphism from one instance into the other,
// total on adom(from), or nil when none exists.
func FindHomomorphism(from, to *Instance) map[Value]Value {
	return hom.Find(from, to)
}

// HomEquivalent reports whether homomorphisms exist in both directions —
// the relationship between any two universal solutions of one data-exchange
// scenario.
func HomEquivalent(a, b *Instance) bool {
	return hom.Equivalent(a, b)
}

// IsIsomorphic reports whether two instances are equal up to renaming of
// labeled nulls. Isomorphic instances represent the same incomplete
// database and have similarity 1.
func IsIsomorphic(a, b *Instance) bool {
	return hom.IsIsomorphic(a, b)
}

// Core returns the core of an instance: the smallest homomorphically
// equivalent subinstance (unique up to isomorphism). Cores are the gold
// standard of the data-exchange evaluation in Sec. 7.2.
func Core(in *Instance) *Instance {
	return hom.Core(in)
}

// CSVOptions configures CSV loading; see the csvio package for field
// semantics.
type CSVOptions = csvio.ReadOptions

// LoadCSV reads one relation from a CSV file into a fresh instance. Cells
// starting with "_:" are labeled nulls.
func LoadCSV(path string, opt CSVOptions) (*Instance, error) {
	return csvio.ReadFile(path, opt)
}

// LoadCSVDir reads every *.csv file of a directory as one instance, one
// relation per file.
func LoadCSVDir(dir string, opt CSVOptions) (*Instance, error) {
	return csvio.ReadDir(dir, opt)
}

// SaveCSVDir writes every relation of an instance as <dir>/<relation>.csv.
func SaveCSVDir(dir string, in *Instance) error {
	return csvio.WriteDir(dir, in)
}

package instcmp

// This file is the public half of the Prepare/Compare split. Preparing an
// instance snapshots it and performs every partner-independent step of a
// comparison up front — validation, the sorted null inventory, integer
// coding of all cells, the signature algorithm's per-relation attribute
// orders — so that a resident instance (in a registry, a lake, a server) is
// compared many times but normalized and coded exactly once. The prepared
// path and the one-shot Compare path produce bit-identical results: both
// funnel into comparePrepared, and the engine assembles identical
// environments from prepared sides (see internal/match/prepared.go).

import (
	"context"
	"fmt"
	"time"

	"instcmp/internal/exact"
	"instcmp/internal/match"
	"instcmp/internal/model"
	"instcmp/internal/signature"
)

// Prepared is an instance made ready for repeated comparison. It is
// immutable and safe for concurrent use: any number of goroutines may pass
// the same Prepared to ComparePreparedContext at once, because comparisons
// only read the prepared state (each comparison clones the value interner
// and remaps coded rows into its own environment).
//
// Preparation pays off when the prepared instance's schema and null
// namespace need no per-comparison fixing: comparing two prepared instances
// with equal schemas and disjoint null names skips normalization and coding
// entirely. When schemas differ (with Options.AlignSchemas) or null names
// collide, the comparison transparently falls back to re-preparing the
// adjusted copies — correct, but no faster than the one-shot path.
type Prepared struct {
	inst *Instance
	side *match.PreparedSide
}

// Prepare snapshots the instance and builds its reusable comparison state.
// The input is cloned first, so later mutations of in do not affect the
// prepared snapshot.
func Prepare(in *Instance) (*Prepared, error) {
	if in == nil {
		return nil, fmt.Errorf("instcmp: Prepare requires a non-nil instance")
	}
	return prepareOwned(in.Clone())
}

// prepareOwned builds prepared state over an instance the caller already
// owns (a clone, an alignSchemas rebuild, a rename) — no defensive copy.
func prepareOwned(inst *Instance) (*Prepared, error) {
	side, err := match.PrepareSide(inst)
	if err != nil {
		return nil, err
	}
	return &Prepared{inst: inst, side: side}, nil
}

// Instance returns the prepared snapshot. It is shared with the prepared
// state, not copied: callers must not modify it.
func (p *Prepared) Instance() *Instance { return p.inst }

// NumTuples returns the total tuple count of the prepared instance.
func (p *Prepared) NumTuples() int { return p.side.NumTuples() }

// SketchFeatures returns the instance's canonical sketch feature stream: the
// deduplicated FNV-1a hashes of its distinct (attribute name, constant)
// cells, computed from the resident coded rows (see signature.SketchFeatures).
// The lake's MinHash sketches and banded signature index are built over this
// stream; equal cells hash equal across instances and across processes.
func (p *Prepared) SketchFeatures() []uint64 { return signature.SketchFeatures(p.side) }

// WithRelationName returns a view of a single-relation prepared instance
// whose relation carries the given name. The coded state is shared — value
// codes and attribute orders do not depend on relation names — so the view
// costs a few small allocations regardless of instance size. Lake ranking
// uses this to align a candidate's table name with the example's without
// re-preparing the candidate. The receiver is returned unchanged when it is
// not single-relation or already carries the name.
func (p *Prepared) WithRelationName(name string) *Prepared {
	inst := p.inst.WithRelationName(name)
	if inst == p.inst {
		return p
	}
	return &Prepared{inst: inst, side: p.side.WithRelations(inst)}
}

// ComparePrepared compares two prepared instances. See
// ComparePreparedContext.
func ComparePrepared(left, right *Prepared, opt *Options) (*Result, error) {
	return ComparePreparedContext(context.Background(), left, right, opt)
}

// ComparePreparedContext is CompareContext over prepared instances: same
// options, same anytime cancellation semantics, bit-identical scores, stats
// counters, and explanations — minus the per-call normalization and coding
// cost when the prepared snapshots are directly comparable (equal schemas,
// disjoint null names). Both arguments may be shared with concurrent
// comparisons.
func ComparePreparedContext(ctx context.Context, left, right *Prepared, opt *Options) (*Result, error) {
	if left == nil || right == nil {
		return nil, fmt.Errorf("instcmp: ComparePrepared requires two non-nil prepared instances")
	}
	if opt == nil {
		opt = &Options{}
	}
	if err := opt.validate(); err != nil {
		return nil, err
	}
	return comparePrepared(ctx, left, right, opt, time.Now())
}

// comparePrepared is the Compare half of the split: both the one-shot and
// the prepared entry points end here with validated options and prepared
// sides. It fixes whatever still depends on the pairing — schema alignment,
// null-namespace disjointness — re-preparing only the sides that actually
// change, then runs the selected engine on the prepared state and reports
// the match in terms of the prepared snapshots' tuple identifiers.
func comparePrepared(ctx context.Context, lp, rp *Prepared, opt *Options, start time.Time) (*Result, error) {
	l, r := lp, rp
	var mapping *SchemaMapping
	var relNames map[string]string
	if opt.DiscoverMapping && !model.SameSchema(l.inst, r.inst) {
		rewritten, sm, names, err := discoverForCompare(l.inst, r.inst)
		if err != nil {
			return nil, err
		}
		if r, err = prepareOwned(rewritten); err != nil {
			return nil, err
		}
		mapping, relNames = sm, names
	}
	// Discovery implies residual alignment: a partial mapping leaves
	// dropped/added columns and unmatched relations for Sec. 4 padding.
	if (opt.AlignSchemas || mapping != nil) && !model.SameSchema(l.inst, r.inst) {
		al, ar := alignSchemas(l.inst, r.inst)
		var err error
		if l, err = prepareOwned(al); err != nil {
			return nil, err
		}
		if r, err = prepareOwned(ar); err != nil {
			return nil, err
		}
	}
	if !model.SameSchema(l.inst, r.inst) {
		return nil, match.ErrSchemaMismatch
	}
	rightPrefix := ""
	if preparedVarsOverlap(l, r) {
		var err error
		r, rightPrefix, err = renameApartPrepared(l, r)
		if err != nil {
			return nil, err
		}
	}

	algo := opt.Algorithm
	if algo == AlgoAuto {
		// Partial matching is implemented by the signature algorithm
		// only; otherwise small inputs afford the exact search.
		if !opt.Partial && l.side.NumTuples()+r.side.NumTuples() <= autoExactLimit {
			algo = AlgoExact
		} else {
			algo = AlgoSignature
		}
	}
	if algo == AlgoExact && opt.Partial {
		return nil, fmt.Errorf("instcmp: the exact algorithm does not support partial matches; use AlgoSignature")
	}

	res := &Result{Algorithm: algo, Mapping: mapping}
	res.Stats.NormalizeTime = time.Since(start)
	res.Stats.WarmScore = -1
	searchStart := time.Now()
	var env *match.Env
	switch algo {
	case AlgoExact:
		ex, err := exact.RunPreparedContext(ctx, l.side, r.side, opt.Mode, exact.Options{
			Lambda:   opt.lambda(),
			MaxNodes: opt.ExactMaxNodes,
			Timeout:  opt.ExactTimeout,
			Workers:  opt.ExactWorkers,
		})
		if err != nil {
			return nil, err
		}
		env = ex.Env
		res.Score = ex.Score
		res.Exhaustive = ex.Exhaustive
		res.Stopped = ex.Stopped
		res.Stats.Nodes = ex.Nodes
		res.Stats.Prunes = ex.Prunes
		res.Stats.Improvements = ex.Improvements
		res.Stats.WarmScore = ex.WarmScore
		if ex.SigStats != nil {
			res.Stats.fillSignature(*ex.SigStats)
		}
		res.Stats.fillEnv(ex.EnvStats)
	case AlgoSignature:
		sig, err := signature.RunPreparedContext(ctx, l.side, r.side, opt.Mode, signature.Options{
			Lambda:        opt.lambda(),
			Partial:       opt.Partial,
			MinPartialSig: opt.MinPartialSig,
			ConstSim:      opt.ConstSimilarity,
			Workers:       opt.SigWorkers,
		})
		if err != nil {
			return nil, err
		}
		env = sig.Env
		res.Score = sig.Score
		res.Stopped = sig.Stopped
		res.Stats.fillSignature(sig.Stats)
		res.Stats.fillEnv(env.Stats)
	default:
		return nil, fmt.Errorf("instcmp: unknown algorithm %d", algo)
	}
	res.Stats.SearchTime = time.Since(searchStart)

	explainStart := time.Now()
	res.fillExplanation(env, opt.lambda(), lp.inst, rp.inst, rightPrefix, relNames)
	res.Stats.ExplainTime = time.Since(explainStart)
	res.Elapsed = time.Since(start)
	res.publish()
	return res, nil
}

// preparedVarsOverlap reports whether the two prepared instances share a
// null name; the left side's interner answers membership in O(right nulls).
func preparedVarsOverlap(l, r *Prepared) bool {
	for _, v := range r.side.Vars {
		if _, shared := l.side.In.Lookup(v); shared {
			return true
		}
	}
	return false
}

// renameApartPrepared renames the right instance's nulls with a prefix
// making them disjoint from the left's, growing the prefix until no
// collision remains (the same loop one-shot normalization runs), and
// prepares the renamed copy.
func renameApartPrepared(l, r *Prepared) (*Prepared, string, error) {
	prefix := "r·"
	for {
		ren := r.inst.RenameNulls(prefix)
		if overlapsPrepared(l, ren) {
			prefix += "·"
			continue
		}
		rp, err := prepareOwned(ren)
		return rp, prefix, err
	}
}

func overlapsPrepared(l *Prepared, inst *Instance) bool {
	for v := range inst.Vars() {
		if _, shared := l.side.In.Lookup(v); shared {
			return true
		}
	}
	return false
}

package instcmp_test

// Property-based tests for the similarity measure's requirements
// (Sec. 3, Eq. 1-5) and metamorphic properties of the algorithms, driven by
// testing/quick over randomly generated instances.

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"instcmp"
	"instcmp/internal/hom"
	"instcmp/internal/model"
)

// randInstance is a random small instance for testing/quick generation.
type randInstance struct {
	in *model.Instance
}

// Generate implements quick.Generator: up to 6 tuples over a fixed 3-column
// schema, drawing from a small constant pool (to force collisions) plus
// per-instance nulls (some repeated across cells).
func (randInstance) Generate(rnd *rand.Rand, size int) reflect.Value {
	in := model.NewInstance()
	in.AddRelation("R", "A", "B", "C")
	rows := 1 + rnd.Intn(6)
	nulls := []model.Value{
		in.FreshNull("q"), in.FreshNull("q"), in.FreshNull("q"),
	}
	for i := 0; i < rows; i++ {
		vals := make([]model.Value, 3)
		for j := range vals {
			switch rnd.Intn(5) {
			case 0:
				vals[j] = nulls[rnd.Intn(len(nulls))]
			default:
				vals[j] = model.Constf("c%d", rnd.Intn(4))
			}
		}
		in.Append("R", vals...)
	}
	return reflect.ValueOf(randInstance{in})
}

var quickCfg = &quick.Config{MaxCount: 60}

func sim(t *testing.T, a, b *instcmp.Instance) float64 {
	t.Helper()
	res, err := instcmp.Compare(a, b, &instcmp.Options{Algorithm: instcmp.AlgoSignature})
	if err != nil {
		t.Fatal(err)
	}
	return res.Score
}

// TestPropertySelfSimilarity: Eq. 1, similarity(I, I) = 1 — and the same
// for any null renaming (Eq. 2, isomorphism invariance).
func TestPropertySelfSimilarity(t *testing.T) {
	f := func(ri randInstance) bool {
		if s := sim(t, ri.in, ri.in.Clone()); math.Abs(s-1) > 1e-9 {
			t.Logf("self similarity %v for\n%s", s, ri.in)
			return false
		}
		renamed := ri.in.RenameNulls("iso_")
		if s := sim(t, ri.in, renamed); math.Abs(s-1) > 1e-9 {
			t.Logf("isomorphic similarity %v for\n%s", s, ri.in)
			return false
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestPropertyScoreRange: scores always land in [0, 1].
func TestPropertyScoreRange(t *testing.T) {
	f := func(a, b randInstance) bool {
		s := sim(t, a.in, b.in)
		return s >= 0 && s <= 1+1e-9
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestPropertySymmetry: Eq. 5 on the exact algorithm (the greedy signature
// algorithm approximates a symmetric measure but is not itself exactly
// symmetric; the exact optimum is).
func TestPropertySymmetry(t *testing.T) {
	f := func(a, b randInstance) bool {
		opts := &instcmp.Options{Algorithm: instcmp.AlgoExact, ExactMaxNodes: 3_000_000}
		fwd, err := instcmp.Compare(a.in, b.in, opts)
		if err != nil {
			t.Fatal(err)
		}
		bwd, err := instcmp.Compare(b.in, a.in, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !fwd.Exhaustive || !bwd.Exhaustive {
			return true // budget hit: no claim
		}
		if math.Abs(fwd.Score-bwd.Score) > 1e-9 {
			t.Logf("asymmetry: %v vs %v for\n%s\n%s", fwd.Score, bwd.Score, a.in, b.in)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropertyNonIsomorphicBelowOne: Eq. 3 via the exact algorithm —
// non-isomorphic instances score strictly below 1.
func TestPropertyNonIsomorphicBelowOne(t *testing.T) {
	f := func(a, b randInstance) bool {
		if hom.IsIsomorphic(a.in, b.in) {
			return true
		}
		res, err := instcmp.Compare(a.in, b.in, &instcmp.Options{
			Algorithm: instcmp.AlgoExact, ExactMaxNodes: 3_000_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Inexhaustive scores are lower bounds — still must be < 1
		// since the optimum of non-isomorphic instances is.
		if res.Score >= 1-1e-12 {
			t.Logf("non-isomorphic score %v for\n%s\n%s", res.Score, a.in, b.in)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyShuffleInvariance: tuple order carries no semantics, so
// shuffling either side leaves the signature score unchanged up to greedy
// tie-breaking; for the exact algorithm it is strictly invariant.
func TestPropertyShuffleInvariance(t *testing.T) {
	f := func(a, b randInstance) bool {
		opts := &instcmp.Options{Algorithm: instcmp.AlgoExact, ExactMaxNodes: 3_000_000}
		before, err := instcmp.Compare(a.in, b.in, opts)
		if err != nil {
			t.Fatal(err)
		}
		sh := b.in.Clone()
		sh.Shuffle(rand.New(rand.NewSource(1)))
		after, err := instcmp.Compare(a.in, sh, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !before.Exhaustive || !after.Exhaustive {
			return true
		}
		if math.Abs(before.Score-after.Score) > 1e-9 {
			t.Logf("shuffle changed score %v -> %v", before.Score, after.Score)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropertySignatureLowerBoundsExact: the greedy score never exceeds the
// exhaustive optimum.
func TestPropertySignatureLowerBoundsExact(t *testing.T) {
	f := func(a, b randInstance) bool {
		ex, err := instcmp.Compare(a.in, b.in, &instcmp.Options{
			Algorithm: instcmp.AlgoExact, ExactMaxNodes: 3_000_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !ex.Exhaustive {
			return true
		}
		sg, err := instcmp.Compare(a.in, b.in, &instcmp.Options{Algorithm: instcmp.AlgoSignature})
		if err != nil {
			t.Fatal(err)
		}
		if sg.Score > ex.Score+1e-9 {
			t.Logf("signature %v above exact optimum %v for\n%s\n%s", sg.Score, ex.Score, a.in, b.in)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPropertyLambdaMonotone: raising λ never lowers the exact score (the
// optimum can only gain from cheaper null-constant matches).
func TestPropertyLambdaMonotone(t *testing.T) {
	f := func(a, b randInstance) bool {
		lo, err := instcmp.Compare(a.in, b.in, &instcmp.Options{
			Algorithm: instcmp.AlgoExact, ExactMaxNodes: 3_000_000, ExplicitZeroLambda: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		hi, err := instcmp.Compare(a.in, b.in, &instcmp.Options{
			Algorithm: instcmp.AlgoExact, ExactMaxNodes: 3_000_000, Lambda: 0.9,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !lo.Exhaustive || !hi.Exhaustive {
			return true
		}
		if hi.Score < lo.Score-1e-9 {
			t.Logf("λ monotonicity broken: λ=0 %v, λ=0.9 %v", lo.Score, hi.Score)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropertyExplanationConsistent: the reported pairs, unmatched lists,
// and instance cardinalities always reconcile.
func TestPropertyExplanationConsistent(t *testing.T) {
	f := func(a, b randInstance) bool {
		res, err := instcmp.Compare(a.in, b.in, &instcmp.Options{
			Mode: instcmp.OneToOne, Algorithm: instcmp.AlgoSignature,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Pairs)+len(res.LeftUnmatched) != a.in.NumTuples() {
			t.Logf("left accounting broken: %d pairs + %d unmatched != %d tuples",
				len(res.Pairs), len(res.LeftUnmatched), a.in.NumTuples())
			return false
		}
		if len(res.Pairs)+len(res.RightUnmatched) != b.in.NumTuples() {
			return false
		}
		seenL := map[instcmp.TupleID]bool{}
		seenR := map[instcmp.TupleID]bool{}
		for _, p := range res.Pairs {
			if seenL[p.LeftID] || seenR[p.RightID] {
				t.Log("1-to-1 mode produced duplicate endpoints")
				return false
			}
			seenL[p.LeftID], seenR[p.RightID] = true, true
			if p.Score < 0 || p.Score > 3+1e-9 {
				t.Logf("pair score %v out of [0, arity]", p.Score)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestPropertyHomomorphismImpliesHighSimilarity is a sanity link between
// the hom API and the measure: an instance is maximally similar to itself
// composed with any valid null grounding only when that grounding is a
// bijective renaming. Ground all nulls to fresh constants: the result is a
// possible world, similarity must stay strictly positive (every tuple still
// matches under null-to-constant mappings with λ > 0).
func TestPropertyGroundingKeepsPositiveSimilarity(t *testing.T) {
	f := func(a randInstance) bool {
		grounded := a.in.Clone()
		for _, rel := range grounded.Relations() {
			for ti := range rel.Tuples {
				for vi, v := range rel.Tuples[ti].Values {
					if v.IsNull() {
						rel.Tuples[ti].Values[vi] = model.Const("g_" + v.Raw())
					}
				}
			}
		}
		if !instcmp.HasHomomorphism(a.in, grounded) {
			t.Logf("instance does not map into its grounding:\n%s\n%s", a.in, grounded)
			return false
		}
		s := sim(t, a.in, grounded)
		return s > 0
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}
